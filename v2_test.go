package ecsort

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestSortV2AgreesWithV1: the Algorithm path must produce the same
// partitions and stats as the deprecated wrappers (which now delegate
// to it), and record the regimen name.
func TestSortV2AgreesWithV1(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	labels := SampleLabels(NewUniform(5), 300, rng)
	o := NewLabelOracle(labels)
	ctx := context.Background()

	for _, tc := range []struct {
		name string
		alg  Algorithm
	}{
		{"cr", CR(5)},
		{"cr-unknown-k", CRUnknownK()},
		{"er", ER()},
		{"round-robin", RoundRobin()},
		{"naive", Naive()},
	} {
		res, err := Sort(ctx, o, tc.alg, Config{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Algorithm != tc.name {
			t.Errorf("%s: Result.Algorithm = %q", tc.name, res.Algorithm)
		}
		if !SameClassification(res.Labels(300), labels) {
			t.Errorf("%s: wrong classification", tc.name)
		}
		if err := Certify(o, res.Classes, Config{}); err != nil {
			t.Errorf("%s: certificate rejected: %v", tc.name, err)
		}
	}
}

// TestAutoFacade: the planner is reachable from the facade, records its
// choice, and the choice certifies.
func TestAutoFacade(t *testing.T) {
	labels := make([]int, 200)
	for i := range labels {
		labels[i] = i % 4
	}
	o := NewLabelOracle(labels)
	res, err := Sort(context.Background(), o, Auto(Hints{Lambda: 0.2, Seed: 5}), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "const-round-er" {
		t.Errorf("Auto chose %q, want const-round-er", res.Algorithm)
	}
	if err := Certify(o, res.Classes, Config{}); err != nil {
		t.Fatalf("certificate rejected: %v", err)
	}

	res, err = Sort(context.Background(), o, Auto(Hints{K: 4, Mode: RequireCR}), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "cr" {
		t.Errorf("Auto chose %q, want cr", res.Algorithm)
	}
}

// TestAlgorithmRegistryFacade: listing and by-name dispatch round-trip
// through the facade, including CLI aliases.
func TestAlgorithmRegistryFacade(t *testing.T) {
	infos := Algorithms()
	if len(infos) < 9 {
		t.Fatalf("registry lists %d regimens, want >= 9", len(infos))
	}
	labels := []int{0, 1, 0, 1, 2, 2, 0, 1, 2, 0, 1, 2}
	twoClass := []int{0, 1, 0, 1, 0, 0, 0, 1, 0, 0, 1, 0}
	for _, info := range infos {
		alg, err := AlgorithmByName(info.Name, Hints{K: 3, Lambda: 0.25, Seed: 7})
		if err != nil {
			t.Errorf("AlgorithmByName(%q): %v", info.Name, err)
			continue
		}
		// two-class-er is only correct when its k <= 2 promise holds.
		truth := labels
		if info.Name == "two-class-er" {
			truth = twoClass
		}
		o := NewLabelOracle(truth)
		res, err := Sort(context.Background(), o, alg, Config{})
		if err != nil {
			t.Errorf("%s: %v", info.Name, err)
			continue
		}
		if !SameClassification(res.Labels(len(truth)), truth) {
			t.Errorf("%s: wrong classification", info.Name)
		}
	}
	if _, err := AlgorithmByName("rr", Hints{}); err != nil {
		t.Errorf("alias rr: %v", err)
	}
	if _, err := AlgorithmByName("bogus", Hints{}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

// cancelAfterOracle cancels a context after a fixed number of tests.
type cancelAfterOracle struct {
	inner  Oracle
	after  int64
	count  atomic.Int64
	cancel context.CancelFunc
}

func (c *cancelAfterOracle) N() int { return c.inner.N() }

func (c *cancelAfterOracle) Same(i, j int) bool {
	if c.count.Add(1) == c.after {
		c.cancel()
	}
	return c.inner.Same(i, j)
}

// TestSortCancellationNoLeak is the acceptance check: a cancelled
// context stops a 10k-element sort between rounds with ctx.Err(), and
// closing the dedicated pool leaves no goroutines behind.
func TestSortCancellationNoLeak(t *testing.T) {
	const n = 10_000
	labels := SampleLabels(NewUniform(8), n, rand.New(rand.NewSource(9)))
	base := NewLabelOracle(labels)

	before := runtime.NumGoroutine()
	pool := NewRuntime(4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	o := &cancelAfterOracle{inner: base, after: 5000, cancel: cancel}

	_, err := Sort(ctx, o, ER(), Config{Workers: 4, Runtime: pool})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Cancellation is checked between physical rounds: the sort must
	// stop far short of the full run's comparison bill.
	if got := o.count.Load(); got >= int64(n)*3 {
		t.Errorf("sort kept comparing after cancel: %d tests", got)
	}

	pool.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("goroutine leak after cancelled sort: %d live, started with %d", got, before)
	}
}

// TestSortDeadline: a deadline context reports DeadlineExceeded.
func TestSortDeadline(t *testing.T) {
	labels := SampleLabels(NewUniform(4), 512, rand.New(rand.NewSource(10)))
	slow := &slowOracle{inner: NewLabelOracle(labels)}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := Sort(ctx, slow, ER(), Config{Workers: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

type slowOracle struct{ inner Oracle }

func (s *slowOracle) N() int { return s.inner.N() }

func (s *slowOracle) Same(i, j int) bool {
	time.Sleep(20 * time.Microsecond)
	return s.inner.Same(i, j)
}

// TestClassifyStrings: the typed front end over a non-integer type.
func TestClassifyStrings(t *testing.T) {
	words := []string{"ant", "bee", "ape", "bat", "cow", "cat", "axe"}
	eq := func(a, b string) bool { return a[0] == b[0] }
	classes, err := Classify(context.Background(), words, eq, CRUnknownK(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if classes.NumClasses() != 3 {
		t.Fatalf("NumClasses = %d, want 3", classes.NumClasses())
	}
	if classes.Algorithm != "cr-unknown-k" {
		t.Errorf("Algorithm = %q", classes.Algorithm)
	}
	got := map[byte]int{}
	for _, cls := range classes.Materialize() {
		for _, w := range cls {
			if w[0] != cls[0][0] {
				t.Errorf("class mixes %q and %q", cls[0], w)
			}
		}
		got[cls[0][0]] = len(cls)
	}
	if got['a'] != 3 || got['b'] != 2 || got['c'] != 2 {
		t.Errorf("class sizes = %v", got)
	}
	labels := classes.Labels()
	if len(labels) != len(words) {
		t.Fatalf("Labels length %d", len(labels))
	}
	for i, w := range words {
		for j, v := range words {
			if (labels[i] == labels[j]) != (w[0] == v[0]) {
				t.Fatalf("labels disagree for %q vs %q", w, v)
			}
		}
	}
}

// TestClassifyWithAuto: Classify composes with the planner and ctx.
func TestClassifyWithAuto(t *testing.T) {
	type user struct{ cohort int }
	users := make([]user, 240)
	for i := range users {
		users[i] = user{cohort: i % 3}
	}
	classes, err := Classify(context.Background(), users,
		func(a, b user) bool { return a.cohort == b.cohort },
		Auto(Hints{K: 3}), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if classes.Algorithm != "cr" {
		t.Errorf("Auto under Classify chose %q", classes.Algorithm)
	}
	if classes.NumClasses() != 3 {
		t.Errorf("NumClasses = %d", classes.NumClasses())
	}
	for i := 0; i < classes.NumClasses(); i++ {
		if len(classes.Class(i)) != 80 {
			t.Errorf("class %d has %d members", i, len(classes.Class(i)))
		}
	}
}

// TestClassifyAllocOverhead guards the satellite promise: the generic
// front end adds no more than 2 allocations over the raw oracle path.
func TestClassifyAllocOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	const n, k = 512, 8
	items := make([]int, n)
	for i := range items {
		items[i] = i % k
	}
	eq := func(a, b int) bool { return a == b }
	ctx := context.Background()
	cfg := Config{Workers: 1}
	alg := CR(k)
	raw := &intSliceOracle{labels: items}

	// Warm both paths (lazy pools, scratch arenas).
	if _, err := Sort(ctx, raw, alg, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := Classify(ctx, items, eq, alg, cfg); err != nil {
		t.Fatal(err)
	}

	rawAllocs := testing.AllocsPerRun(10, func() {
		if _, err := Sort(ctx, raw, alg, cfg); err != nil {
			t.Fatal(err)
		}
	})
	genAllocs := testing.AllocsPerRun(10, func() {
		if _, err := Classify(ctx, items, eq, alg, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if genAllocs > rawAllocs+2 {
		t.Errorf("Classify = %v allocs/op vs raw %v: overhead %v > 2",
			genAllocs, rawAllocs, genAllocs-rawAllocs)
	}
}

// intSliceOracle is the hand-rolled oracle Classify replaces — the
// baseline for the overhead guard.
type intSliceOracle struct{ labels []int }

func (o *intSliceOracle) N() int             { return len(o.labels) }
func (o *intSliceOracle) Same(i, j int) bool { return o.labels[i] == o.labels[j] }

// BenchmarkClassify compares the typed generic front end against the
// raw oracle path it wraps; CI runs it with -benchmem so the alloc
// delta stays visible in the bench artifacts.
func BenchmarkClassify(b *testing.B) {
	const n, k = 2048, 8
	items := make([]int, n)
	for i := range items {
		items[i] = i % k
	}
	eq := func(a, b int) bool { return a == b }
	ctx := context.Background()
	cfg := Config{Workers: 1}
	b.Run("raw-oracle", func(b *testing.B) {
		o := &intSliceOracle{labels: items}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Sort(ctx, o, CR(k), cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("generic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Classify(ctx, items, eq, CR(k), cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ExampleClassify demonstrates the typed quickstart from the README.
func ExampleClassify() {
	words := []string{"go", "rust", "gleam", "ruby", "zig"}
	classes, _ := Classify(context.Background(), words,
		func(a, b string) bool { return a[0] == b[0] },
		CRUnknownK(), Config{})
	for _, cls := range classes.Materialize() {
		fmt.Println(strings.Join(cls, " "))
	}
	// Output:
	// go gleam
	// rust ruby
	// zig
}
