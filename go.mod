module ecsort

go 1.24
