package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ecsort/internal/model"
	"ecsort/internal/oracle"
)

// sorters enumerates the complete-sort algorithms under test, each with
// the session mode it requires.
type sorterCase struct {
	name string
	mode model.Mode
	run  func(s *model.Session, k int, rng *rand.Rand) (Result, error)
}

func allSorters() []sorterCase {
	return []sorterCase{
		{"SortCR", model.CR, func(s *model.Session, k int, _ *rand.Rand) (Result, error) {
			return SortCR(s, k)
		}},
		{"SortER", model.ER, func(s *model.Session, _ int, _ *rand.Rand) (Result, error) {
			return SortER(s)
		}},
		{"RoundRobin", model.ER, func(s *model.Session, _ int, _ *rand.Rand) (Result, error) {
			return RoundRobin(s)
		}},
		{"Naive", model.ER, func(s *model.Session, _ int, _ *rand.Rand) (Result, error) {
			return Naive(s)
		}},
	}
}

func checkResult(t *testing.T, res Result, truth *oracle.Label) {
	t.Helper()
	n := truth.N()
	got := res.Labels(n)
	want := truth.Labels()
	if !SameClassification(got, want) {
		t.Fatalf("classification mismatch:\n got %v\nwant %v", got, want)
	}
	// Every element covered exactly once.
	covered := make([]bool, n)
	for _, c := range res.Classes {
		for _, e := range c {
			if covered[e] {
				t.Fatalf("element %d in two classes", e)
			}
			covered[e] = true
		}
	}
	for e, ok := range covered {
		if !ok {
			t.Fatalf("element %d not classified", e)
		}
	}
}

func TestSortersCorrectOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct{ n, k int }{
		{1, 1}, {2, 1}, {2, 2}, {3, 2}, {7, 3}, {16, 4},
		{33, 5}, {64, 2}, {100, 10}, {257, 17}, {500, 31},
	}
	for _, sc := range allSorters() {
		for _, tc := range cases {
			truth := oracle.RandomBalanced(tc.n, tc.k, rng)
			s := model.NewSession(truth, sc.mode)
			res, err := sc.run(s, truth.NumClasses(), rng)
			if err != nil {
				t.Fatalf("%s n=%d k=%d: %v", sc.name, tc.n, tc.k, err)
			}
			checkResult(t, res, truth)
		}
	}
}

func TestSortersCorrectQuick(t *testing.T) {
	for _, sc := range allSorters() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				n := 1 + rng.Intn(60)
				k := 1 + rng.Intn(n)
				truth := oracle.RandomBalanced(n, k, rng)
				s := model.NewSession(truth, sc.mode)
				res, err := sc.run(s, truth.NumClasses(), rng)
				if err != nil {
					return false
				}
				return SameClassification(res.Labels(n), truth.Labels())
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSortCRSkewedSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	truth := oracle.RandomSizes([]int{1, 1, 5, 40, 200}, rng)
	s := model.NewSession(truth, model.CR)
	res, err := SortCR(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, truth)
}

func TestSortERSkewedSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	truth := oracle.RandomSizes([]int{1, 2, 100, 3, 150}, rng)
	s := model.NewSession(truth, model.ER)
	res, err := SortER(s)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, truth)
}

func TestSortCRWrongMode(t *testing.T) {
	truth := oracle.NewLabel([]int{0, 0, 1})
	if _, err := SortCR(model.NewSession(truth, model.ER), 2); err == nil {
		t.Fatal("SortCR accepted an ER session")
	}
	if _, err := SortER(model.NewSession(truth, model.CR)); err == nil {
		t.Fatal("SortER accepted a CR session")
	}
}

func TestSortCRBadK(t *testing.T) {
	truth := oracle.NewLabel([]int{0, 0, 1})
	if _, err := SortCR(model.NewSession(truth, model.CR), 0); err == nil {
		t.Fatal("SortCR accepted k=0")
	}
}

func TestSortCRWithOverestimatedK(t *testing.T) {
	// k only steers the phase switch; any upper bound keeps correctness.
	rng := rand.New(rand.NewSource(5))
	truth := oracle.RandomBalanced(120, 4, rng)
	s := model.NewSession(truth, model.CR)
	res, err := SortCR(s, 11)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, truth)
}

// TestTheorem1RoundBound checks CR rounds stay within O(k + log log n):
// flat in n for fixed k.
func TestTheorem1RoundBound(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	k := 8
	for _, n := range []int{256, 1024, 4096, 16384} {
		truth := oracle.RandomBalanced(n, k, rng)
		s := model.NewSession(truth, model.CR)
		if _, err := SortCR(s, k); err != nil {
			t.Fatal(err)
		}
		rounds := s.Stats().Rounds
		loglog := math.Log2(math.Log2(float64(n)) + 1)
		bound := int(12*float64(k) + 8*loglog + 24)
		if rounds > bound {
			t.Errorf("n=%d k=%d: CR rounds = %d exceeds O(k + loglog n) budget %d",
				n, k, rounds, bound)
		}
	}
}

// TestTheorem2RoundBound checks ER rounds stay within O(k log n).
func TestTheorem2RoundBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	k := 6
	for _, n := range []int{128, 512, 2048} {
		truth := oracle.RandomBalanced(n, k, rng)
		s := model.NewSession(truth, model.ER)
		if _, err := SortER(s); err != nil {
			t.Fatal(err)
		}
		rounds := s.Stats().Rounds
		bound := int(2*float64(k)*math.Log2(float64(n))) + 8
		if rounds > bound {
			t.Errorf("n=%d k=%d: ER rounds = %d exceeds O(k log n) budget %d",
				n, k, rounds, bound)
		}
	}
}

// TestERSessionsNeverConflict re-runs SortER with a wrapped oracle that
// fails the test if the session ever reports an ER violation; the session
// itself errors in that case, so reaching a result is the assertion.
func TestERSchedulesAreExclusive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(80)
		k := 1 + rng.Intn(n)
		truth := oracle.RandomBalanced(n, k, rng)
		s := model.NewSession(truth, model.ER)
		if _, err := SortER(s); err != nil {
			t.Fatalf("trial %d (n=%d k=%d): %v", trial, n, k, err)
		}
	}
}

// TestNaiveComparisonBound: at most n·k comparisons.
func TestNaiveComparisonBound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	truth := oracle.RandomBalanced(300, 7, rng)
	s := model.NewSession(truth, model.ER)
	res, err := Naive(s)
	if err != nil {
		t.Fatal(err)
	}
	if c := res.Stats.Comparisons; c > int64(300*7) {
		t.Errorf("naive comparisons = %d > n·k = %d", c, 300*7)
	}
}

// TestRoundRobinLemma verifies the [12] lemma underpinning Theorem 7: the
// round-robin regimen performs at most 2·min(Y_i, Y_j) tests between any
// two classes.
func TestRoundRobinLemma(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 25; trial++ {
		n := 20 + rng.Intn(150)
		k := 2 + rng.Intn(8)
		truth := oracle.RandomBalanced(n, k, rng)
		labels := truth.Labels()
		sizes := map[int]int{}
		for _, l := range labels {
			sizes[l]++
		}
		inner := model.NewSession(truth, model.ER, model.Workers(1))
		res, audit, err := CrossClassAudit(inner, labels)
		if err != nil {
			t.Fatal(err)
		}
		checkResult(t, res, truth)
		for pair, tests := range audit {
			if pair[0] == pair[1] {
				continue // within-class tests are not bounded by the lemma
			}
			bound := 2 * min(sizes[pair[0]], sizes[pair[1]])
			if tests > bound {
				t.Fatalf("trial %d: classes %v got %d cross tests, lemma bound %d (sizes %d, %d)",
					trial, pair, tests, bound, sizes[pair[0]], sizes[pair[1]])
			}
		}
	}
}

// TestRoundRobinComparisonsReasonable: for balanced classes the regimen
// should stay well under the all-pairs count.
func TestRoundRobinComparisonsReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n, k := 400, 5
	truth := oracle.RandomBalanced(n, k, rng)
	s := model.NewSession(truth, model.ER)
	res, err := RoundRobin(s)
	if err != nil {
		t.Fatal(err)
	}
	// Σ_{i<j} 2·min(Y_i,Y_j) + (n − k) merges ≤ 2·(k choose 2)·(n/k) + n.
	bound := int64(2*(k*(k-1)/2)*(n/k+1) + n)
	if res.Stats.Comparisons > bound {
		t.Errorf("round-robin comparisons = %d > bound %d", res.Stats.Comparisons, bound)
	}
}

func TestEmptyInput(t *testing.T) {
	truth := oracle.NewLabel(nil)
	for _, sc := range allSorters() {
		s := model.NewSession(truth, sc.mode)
		res, err := sc.run(s, 1, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatalf("%s on empty input: %v", sc.name, err)
		}
		if len(res.Classes) != 0 {
			t.Fatalf("%s on empty input returned classes %v", sc.name, res.Classes)
		}
	}
}

func TestSingleElement(t *testing.T) {
	truth := oracle.NewLabel([]int{42})
	for _, sc := range allSorters() {
		s := model.NewSession(truth, sc.mode)
		res, err := sc.run(s, 1, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		if len(res.Classes) != 1 || len(res.Classes[0]) != 1 || res.Classes[0][0] != 0 {
			t.Fatalf("%s: classes = %v", sc.name, res.Classes)
		}
		if res.Stats.Comparisons != 0 {
			t.Fatalf("%s: single element cost %d comparisons", sc.name, res.Stats.Comparisons)
		}
	}
}

func TestAllSameClass(t *testing.T) {
	labels := make([]int, 50)
	truth := oracle.NewLabel(labels)
	for _, sc := range allSorters() {
		s := model.NewSession(truth, sc.mode)
		res, err := sc.run(s, 1, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		if len(res.Classes) != 1 || len(res.Classes[0]) != 50 {
			t.Fatalf("%s: want one class of 50, got %d classes", sc.name, len(res.Classes))
		}
	}
}

func TestAllDistinctClasses(t *testing.T) {
	labels := make([]int, 24)
	for i := range labels {
		labels[i] = i
	}
	truth := oracle.NewLabel(labels)
	for _, sc := range allSorters() {
		s := model.NewSession(truth, sc.mode)
		res, err := sc.run(s, 24, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		if len(res.Classes) != 24 {
			t.Fatalf("%s: want 24 classes, got %d", sc.name, len(res.Classes))
		}
	}
}
