package core

import (
	"math/rand"
	"testing"

	"ecsort/internal/model"
	"ecsort/internal/oracle"
)

// Allocation regression guards for the flat merge engine. The map-keyed
// engine these bounds replaced spent 213 allocs per MergeGroupCR of 24
// answers and ~8.7k allocs per 128-element flush; the flat engine's
// steady state is the output answer's backing (MergeGroupCR) and
// amortized pool growth (Flush). Workers(1) keeps the session off the
// goroutine-spawning execute path, which allocates by nature.

func TestMergeGroupCRAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	truth := oracle.RandomBalanced(512, 8, rand.New(rand.NewSource(31)))
	s := model.NewSession(truth, model.CR, model.Workers(1))
	ar, answers := newCRArena(512)
	for len(answers) > 24 {
		next, err := mergePairsCR(s, ar, answers)
		if err != nil {
			t.Fatal(err)
		}
		answers = next
	}
	// Copy out of the arena: the benchmark group must survive arena reuse.
	group := make([]Answer, len(answers))
	for i, a := range answers {
		group[i] = NewAnswer(a.Classes())
	}
	if _, err := MergeGroupCR(s, group); err != nil { // warm the scratch pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := MergeGroupCR(s, group); err != nil {
			t.Fatal(err)
		}
	})
	// Steady state: the merged answer's elems+offs plus pool jitter.
	if allocs > 8 {
		t.Errorf("MergeGroupCR steady state = %v allocs/op, want <= 8 (was 213 before the flat engine)", allocs)
	}
}

func TestSortERAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	truth := oracle.RandomBalanced(1024, 6, rand.New(rand.NewSource(17)))
	s := model.NewSession(truth, model.ER, model.Workers(1))
	ar := newERArena(1024)
	if _, err := sortERArena(s, ar); err != nil { // warm the arena
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := sortERArena(s, ar); err != nil {
			t.Fatal(err)
		}
	})
	// Steady state: every rotation round and pair merge runs out of the
	// arena (the map-keyed pairPlan path allocated per merge AND per
	// rotation round).
	if allocs > 2 {
		t.Errorf("SortER steady state = %v allocs/op, want <= 2", allocs)
	}
}

func TestIncrementalFlushAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	truth := oracle.RandomBalanced(1<<16, 8, rand.New(rand.NewSource(33)))
	s := model.NewSession(truth, model.CR, model.Workers(1))
	inc, err := NewIncremental(s)
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	add := func(count int) {
		for i := 0; i < count; i++ {
			if err := inc.Add(next); err != nil {
				t.Fatal(err)
			}
			next++
		}
	}
	add(2048) // reach steady state: all 8 classes discovered, pools warm
	if err := inc.Flush(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		add(128)
		if err := inc.Flush(); err != nil {
			t.Fatal(err)
		}
	})
	// Steady state is zero; allow amortized doubling of the answer pools.
	if allocs > 4 {
		t.Errorf("Add*128+Flush steady state = %v allocs/op, want <= 4 (was ~8.7k before the flat engine)", allocs)
	}
}
