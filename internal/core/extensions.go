package core

import (
	"errors"
	"fmt"
	"math/rand"

	"ecsort/internal/model"
)

// This file implements the extensions the paper sketches but does not
// spell out: running the CR algorithm without knowing k, and running the
// constant-round algorithm without knowing λ (the halving remark after
// Theorem 4).

// SortCRUnknownK solves the CR problem with no prior knowledge of the
// number of classes k. It runs the two-phase compounding algorithm with
// an adaptive threshold: the phase switch uses the largest class count
// observed in any answer so far (a lower bound on k that converges to k
// as answers grow). Because k only steers scheduling, correctness is
// unconditional; the round count matches SortCR's once the observed count
// reaches k, giving O(k + log log n) rounds overall.
func SortCRUnknownK(s *model.Session) (Result, error) {
	if s.Mode() != model.CR {
		return Result{}, fmt.Errorf("core: SortCRUnknownK requires a CR session, got %v", s.Mode())
	}
	n := s.N()
	if n == 0 {
		return Result{Stats: s.Stats()}, nil
	}
	p := n
	ar, answers := newCRArena(n)
	kObs := 1

	observe := func() {
		for _, a := range answers {
			if a.K() > kObs {
				kObs = a.K()
			}
		}
	}

	// Phase 1 with the adaptive threshold 4·kObs².
	for len(answers) > 1 && p/len(answers) < 4*kObs*kObs {
		next, err := mergePairsCR(s, ar, answers)
		if err != nil {
			return Result{}, err
		}
		answers = next
		observe()
	}
	// Phase 2, re-deriving c from the current observation each iteration.
	for len(answers) > 1 {
		c := p / (len(answers) * kObs * kObs)
		if c < 2 {
			c = 2
		}
		g := 2*c + 1
		if g > len(answers) {
			g = len(answers)
		}
		next, err := mergeGroupsCR(s, ar, answers, g)
		if err != nil {
			return Result{}, err
		}
		answers = next
		observe()
		// The observation may have jumped past the phase-2 invariant
		// (c ≥ 2); if so, fall back to pairwise merging until processors
		// per answer catch up again.
		for len(answers) > 1 && p/len(answers) < 4*kObs*kObs {
			next, err := mergePairsCR(s, ar, answers)
			if err != nil {
				return Result{}, err
			}
			answers = next
			observe()
		}
	}
	return Result{Classes: answers[0].Classes(), Stats: s.Stats()}, nil
}

// AdaptiveConstRoundConfig configures SortConstRoundERAdaptive.
type AdaptiveConstRoundConfig struct {
	// StartLambda is the first guess for ℓ/n; it is halved after each
	// failure, per the paper's remark following Theorem 4. Defaults to
	// 0.4 when zero.
	StartLambda float64
	// MinLambda stops the halving; below it the input's smallest class
	// is too small for the constant-round approach to pay off. Defaults
	// to 4/n when zero (a component threshold below one element is
	// meaningless).
	MinLambda float64
	// D and MaxRetries are passed through to each attempt (see
	// ConstRoundConfig).
	D          int
	MaxRetries int
	// Rng drives the random cycles. Required.
	Rng *rand.Rand
}

// ErrAdaptiveExhausted reports that SortConstRoundERAdaptive halved λ down
// to its floor without succeeding.
var ErrAdaptiveExhausted = errors.New("core: adaptive constant-round sort exhausted its λ budget")

// SortConstRoundERAdaptive runs the Theorem 4 algorithm without knowing
// λ: start at StartLambda and halve after every failure. Once the guess
// drops below the true ℓ/n, an attempt succeeds with high probability, so
// the total rounds remain independent of n (a function of the final λ
// only). It returns the λ that succeeded alongside the result.
func SortConstRoundERAdaptive(s *model.Session, cfg AdaptiveConstRoundConfig) (Result, float64, error) {
	if cfg.Rng == nil {
		return Result{}, 0, errors.New("core: AdaptiveConstRoundConfig.Rng is required")
	}
	lambda := cfg.StartLambda
	if lambda == 0 {
		lambda = 0.4
	}
	if lambda <= 0 || lambda > 0.4 {
		return Result{}, 0, fmt.Errorf("core: StartLambda %v outside (0, 0.4]", lambda)
	}
	minLambda := cfg.MinLambda
	if minLambda == 0 {
		n := s.N()
		if n > 0 {
			minLambda = 4 / float64(n)
		}
	}
	for lambda > 0 {
		res, err := SortConstRoundER(s, ConstRoundConfig{
			Lambda:     lambda,
			D:          cfg.D,
			MaxRetries: cfg.MaxRetries,
			Rng:        cfg.Rng,
		})
		if err == nil {
			return res, lambda, nil
		}
		if !errors.Is(err, ErrConstRoundFailed) {
			return Result{}, 0, err
		}
		if lambda <= minLambda {
			break
		}
		lambda /= 2
	}
	return Result{}, 0, ErrAdaptiveExhausted
}
