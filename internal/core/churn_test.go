package core

import (
	"math/rand"
	"sort"
	"testing"

	"ecsort/internal/model"
	"ecsort/internal/oracle"
)

// canonical renders a partition in a comparable normal form: members
// sorted within each class, classes sorted by smallest member.
func canonical(classes [][]int) [][]int {
	out := make([][]int, 0, len(classes))
	for _, c := range classes {
		cc := append([]int(nil), c...)
		sort.Ints(cc)
		out = append(out, cc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// wantPartition groups the live elements by their labels.
func wantPartition(labels []int, live []int) [][]int {
	byLabel := map[int][]int{}
	for _, e := range live {
		byLabel[labels[e]] = append(byLabel[labels[e]], e)
	}
	var out [][]int
	for _, c := range byLabel {
		out = append(out, c)
	}
	return canonical(out)
}

func partitionEq(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func newChurnSorter(t *testing.T, labels []int) *Incremental {
	t.Helper()
	s := model.NewSession(oracle.NewLabel(labels), model.CR)
	inc, err := NewIncremental(s)
	if err != nil {
		t.Fatal(err)
	}
	return inc
}

func TestDeletePending(t *testing.T) {
	inc := newChurnSorter(t, []int{0, 0, 1})
	for e := 0; e < 3; e++ {
		if err := inc.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := inc.Delete(1); err != nil {
		t.Fatal(err)
	}
	if inc.Size() != 2 || inc.Pending() != 2 {
		t.Fatalf("Size=%d Pending=%d after pending delete", inc.Size(), inc.Pending())
	}
	if inc.Has(1) {
		t.Fatal("deleted element still reported added")
	}
	// Deleted pending elements can come back.
	if err := inc.Add(1); err != nil {
		t.Fatalf("re-add after delete: %v", err)
	}
	classes, err := inc.Classes()
	if err != nil {
		t.Fatal(err)
	}
	if !partitionEq(canonical(classes), [][]int{{0, 1}, {2}}) {
		t.Fatalf("classes = %v", classes)
	}
}

func TestDeleteFlushed(t *testing.T) {
	labels := []int{0, 1, 0, 1, 2, 0}
	inc := newChurnSorter(t, labels)
	for e := range labels {
		if err := inc.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := inc.Flush(); err != nil {
		t.Fatal(err)
	}
	// Delete a non-representative, a representative, and a singleton's
	// only member, verifying the surviving partition after each.
	for _, del := range []int{2, 0, 4} {
		if err := inc.Delete(del); err != nil {
			t.Fatalf("Delete(%d): %v", del, err)
		}
		if inc.Has(del) {
			t.Fatalf("Has(%d) after delete", del)
		}
	}
	classes, err := inc.Classes()
	if err != nil {
		t.Fatal(err)
	}
	if want := wantPartition(labels, []int{1, 3, 5}); !partitionEq(canonical(classes), want) {
		t.Fatalf("classes = %v, want %v", classes, want)
	}
	if inc.Size() != 3 {
		t.Fatalf("Size = %d", inc.Size())
	}
	// Deleting down to empty and rebuilding must work: churn full cycle.
	for _, del := range []int{1, 3, 5} {
		if err := inc.Delete(del); err != nil {
			t.Fatal(err)
		}
	}
	if inc.Size() != 0 {
		t.Fatalf("Size = %d after deleting all", inc.Size())
	}
	for e := range labels {
		if err := inc.Add(e); err != nil {
			t.Fatalf("re-add %d: %v", e, err)
		}
	}
	classes, err = inc.Classes()
	if err != nil {
		t.Fatal(err)
	}
	if want := wantPartition(labels, []int{0, 1, 2, 3, 4, 5}); !partitionEq(canonical(classes), want) {
		t.Fatalf("rebuilt classes = %v, want %v", classes, want)
	}
}

func TestDeleteErrors(t *testing.T) {
	inc := newChurnSorter(t, []int{0, 1})
	if err := inc.Delete(0); err == nil {
		t.Fatal("delete of never-added element accepted")
	}
	if err := inc.Delete(-1); err == nil {
		t.Fatal("negative element accepted")
	}
	if err := inc.Delete(7); err == nil {
		t.Fatal("out-of-range element accepted")
	}
	if err := inc.Add(0); err != nil {
		t.Fatal(err)
	}
	if err := inc.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := inc.Delete(0); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestInvalidateClass(t *testing.T) {
	labels := []int{0, 1, 0, 1, 2}
	inc := newChurnSorter(t, labels)
	for e := range labels {
		if err := inc.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := inc.Flush(); err != nil {
		t.Fatal(err)
	}
	members, err := inc.InvalidateClassOf(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 2 {
		t.Fatalf("requeued %v", members)
	}
	if inc.Pending() != 2 {
		t.Fatalf("Pending = %d after invalidate", inc.Pending())
	}
	for _, e := range members {
		if !inc.Has(e) {
			t.Fatalf("invalidated member %d lost", e)
		}
	}
	// The next flush must re-verify and restore the same partition.
	classes, err := inc.Classes()
	if err != nil {
		t.Fatal(err)
	}
	if want := wantPartition(labels, []int{0, 1, 2, 3, 4}); !partitionEq(canonical(classes), want) {
		t.Fatalf("classes after invalidate+flush = %v, want %v", classes, want)
	}
}

func TestInvalidateErrors(t *testing.T) {
	inc := newChurnSorter(t, []int{0, 0})
	if _, err := inc.InvalidateClassOf(0); err == nil {
		t.Fatal("invalidate of never-added element accepted")
	}
	if _, err := inc.InvalidateClass(0); err == nil {
		t.Fatal("invalidate of missing class accepted")
	}
	if err := inc.Add(0); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.InvalidateClassOf(0); err == nil {
		t.Fatal("invalidate of pending element accepted")
	}
}

// TestChurnRandomized drives a random add/delete/invalidate/flush
// workload against the label oracle and checks the partition equals the
// ground-truth grouping of the live elements after every flush.
func TestChurnRandomized(t *testing.T) {
	const n = 60
	rng := rand.New(rand.NewSource(8))
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(7)
	}
	inc := newChurnSorter(t, labels)
	live := map[int]bool{}
	for step := 0; step < 400; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // add
			e := rng.Intn(n)
			if !live[e] {
				if err := inc.Add(e); err != nil {
					t.Fatalf("step %d: Add(%d): %v", step, e, err)
				}
				live[e] = true
			}
		case op < 8: // delete
			e := rng.Intn(n)
			if live[e] {
				if err := inc.Delete(e); err != nil {
					t.Fatalf("step %d: Delete(%d): %v", step, e, err)
				}
				delete(live, e)
			}
		case op < 9: // invalidate the class of a random live element
			e := rng.Intn(n)
			if live[e] {
				if _, err := inc.InvalidateClassOf(e); err != nil {
					// Pending elements have no merged class; that error
					// is part of the contract.
					if inc.Has(e) && inc.Pending() == 0 {
						t.Fatalf("step %d: InvalidateClassOf(%d): %v", step, e, err)
					}
				}
			}
		default: // flush and verify
			classes, err := inc.Classes()
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			var liveList []int
			for e := range live {
				liveList = append(liveList, e)
			}
			want := wantPartition(labels, liveList)
			if !partitionEq(canonical(classes), want) {
				t.Fatalf("step %d: classes = %v, want %v", step, classes, want)
			}
		}
	}
}

// TestChurnRestore checkpoints a churned sorter mid-stream (via
// Flat/PendingElements, as the service does), restores a fresh one, and
// verifies both finish an identical tail of operations bit-identically
// — the recovery anchor for the delete/invalidate WAL records.
func TestChurnRestore(t *testing.T) {
	const n = 40
	rng := rand.New(rand.NewSource(11))
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(5)
	}
	inc := newChurnSorter(t, labels)
	for e := 0; e < 30; e++ {
		if err := inc.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := inc.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, e := range []int{3, 11, 19} {
		if err := inc.Delete(e); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := inc.InvalidateClassOf(0); err != nil {
		t.Fatal(err)
	}
	// Checkpoint: copy the flat answer + pending, as checkpointShard does.
	elems, offs := inc.Flat()
	cpElems := append([]int(nil), elems...)
	cpOffs := append([]int(nil), offs...)
	cpPending := append([]int(nil), inc.PendingElements()...)
	st := inc.Stats()
	flushes := inc.Flushes()

	rec := newChurnSorter(t, labels)
	if err := rec.Restore(cpElems, cpOffs, cpPending, st, flushes); err != nil {
		t.Fatal(err)
	}

	tail := func(x *Incremental) {
		t.Helper()
		for e := 30; e < n; e++ {
			if err := x.Add(e); err != nil {
				t.Fatal(err)
			}
		}
		if err := x.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := x.Delete(35); err != nil {
			t.Fatal(err)
		}
		if _, err := x.InvalidateClassOf(30); err != nil {
			t.Fatal(err)
		}
		if err := x.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	tail(inc)
	tail(rec)

	e1, o1 := inc.Flat()
	e2, o2 := rec.Flat()
	if len(e1) != len(e2) || len(o1) != len(o2) {
		t.Fatalf("flat shapes differ: (%d,%d) vs (%d,%d)", len(e1), len(o1), len(e2), len(o2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("elems diverge at %d: %d vs %d", i, e1[i], e2[i])
		}
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("offs diverge at %d: %d vs %d", i, o1[i], o2[i])
		}
	}
	if s1, s2 := inc.Stats(), rec.Stats(); s1 != s2 {
		t.Fatalf("stats diverge: %+v vs %+v", s1, s2)
	}
}
