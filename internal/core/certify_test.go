package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ecsort/internal/model"
	"ecsort/internal/oracle"
)

func TestCertifyAcceptsCorrectAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(60)
		k := 1 + rng.Intn(6)
		truth := oracle.RandomBalanced(n, k, rng)
		res, err := SortER(model.NewSession(truth, model.ER))
		if err != nil {
			t.Fatal(err)
		}
		cert := model.NewSession(truth, model.ER)
		if err := Certify(cert, res.Classes); err != nil {
			t.Fatalf("trial %d: correct answer rejected: %v", trial, err)
		}
	}
}

func TestCertifyRejectsBadAnswers(t *testing.T) {
	truth := oracle.NewLabel([]int{0, 0, 1, 1})
	cases := []struct {
		name    string
		classes [][]int
		wantSub string
	}{
		{"merged classes", [][]int{{0, 1, 2, 3}}, "non-equivalent"},
		{"split class", [][]int{{0}, {1}, {2, 3}}, "actually the same"},
		{"missing element", [][]int{{0, 1}, {2}}, "cover"},
		{"duplicate element", [][]int{{0, 1}, {2, 3, 0}}, "two classes"},
		{"out of range", [][]int{{0, 1}, {2, 3, 9}}, "out-of-range"},
		{"empty class", [][]int{{0, 1}, {2, 3}, {}}, "empty"},
		{"swapped member", [][]int{{0, 2}, {1, 3}}, "non-equivalent"},
	}
	for _, tc := range cases {
		s := model.NewSession(truth, model.ER)
		err := Certify(s, tc.classes)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
}

// TestCertifyCost: n−k within-class tests plus (k choose 2) cross tests,
// no more.
func TestCertifyCost(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	n, k := 120, 6
	truth := oracle.RandomBalanced(n, k, rng)
	res, err := SortER(model.NewSession(truth, model.ER))
	if err != nil {
		t.Fatal(err)
	}
	s := model.NewSession(truth, model.ER)
	if err := Certify(s, res.Classes); err != nil {
		t.Fatal(err)
	}
	want := int64(n - k + k*(k-1)/2)
	if got := s.Stats().Comparisons; got != want {
		t.Errorf("certification cost %d, want %d", got, want)
	}
}

// TestCertifyQuickAgainstCorruptions: random single-element corruption of
// a correct answer must always be caught.
func TestCertifyQuickAgainstCorruptions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		k := 2 + rng.Intn(3)
		truth := oracle.RandomBalanced(n, k, rng)
		res, err := SortER(model.NewSession(truth, model.ER))
		if err != nil {
			return false
		}
		classes := res.Canonical()
		if len(classes) < 2 {
			return true
		}
		// Move one element to a different class. Need a donor class with
		// at least two members (all-singleton partitions have none).
		donors := 0
		for _, c := range classes {
			if len(c) >= 2 {
				donors++
			}
		}
		if donors == 0 {
			return true
		}
		from := rng.Intn(len(classes))
		for len(classes[from]) < 2 {
			from = rng.Intn(len(classes))
		}
		to := (from + 1 + rng.Intn(len(classes)-1)) % len(classes)
		moved := classes[from][rng.Intn(len(classes[from]))]
		var newFrom []int
		for _, e := range classes[from] {
			if e != moved {
				newFrom = append(newFrom, e)
			}
		}
		classes[from] = newFrom
		classes[to] = append(classes[to], moved)
		s := model.NewSession(truth, model.ER)
		return Certify(s, classes) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestCertifyRoundEfficiency: within-class rounds are shared across
// classes, so a balanced instance certifies in about n/k + k rounds.
func TestCertifyRoundEfficiency(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	n, k := 128, 4
	truth := oracle.RandomBalanced(n, k, rng)
	res, err := SortER(model.NewSession(truth, model.ER))
	if err != nil {
		t.Fatal(err)
	}
	s := model.NewSession(truth, model.ER)
	if err := Certify(s, res.Classes); err != nil {
		t.Fatal(err)
	}
	// Largest class ≈ n/k = 32 → ≤ 35 within rounds; cross ≤ k = 4.
	if r := s.Stats().Rounds; r > n/k+k+8 {
		t.Errorf("certification used %d rounds, want ≈ %d", r, n/k+k)
	}
}
