package core

import (
	"fmt"

	"ecsort/internal/model"
)

// Incremental maintains a complete equivalence class sorting answer while
// elements arrive over time — the online counterpart of the batch sorts,
// built from the same Answer merge calculus. New elements join as
// singleton answers and are folded in with the compounding technique:
// each insert buffers the element, and Flush (or any query) merges all
// buffered singletons into the main answer with one CR group round.
//
// This is the library feature the paper's applications want in steady
// state: a convention where interns keep arriving, a fleet where machines
// come online one by one. Flush is the service's hottest path, so the
// sorter is built for allocation-free steady state: pending elements live
// in one flat buffer viewed as zero-alloc singleton answers, merge
// scratch persists in an arena, and the answer's flat storage
// double-buffers with a spare so each flush is two memmove-style passes.
type Incremental struct {
	session *model.Session
	answer  Answer
	sc      mergeScratch
	// bufElems/bufOffs are the two full-capacity backing pools the answer
	// double-buffers between: the answer views bufElems[cur], and the
	// next flush builds into the other pool. Tracking the pools (not
	// capacity-capped answer views) keeps growth amortized: a pool grown
	// by one flush keeps its capacity for all later ones.
	bufElems [2][]int
	bufOffs  [2][]int
	cur      int
	pending  []int    // buffered elements awaiting the next flush
	group    []Answer // reusable group view: pending singletons + answer
	seen     []bool   // seen[e] reports e was added (universe is fixed)
	added    int
	flushes  int
}

// NewIncremental creates an incremental sorter over the session's
// elements. Elements must still be drawn from 0..N()-1 (the oracle
// defines the universe); they may be added in any order, each at most
// once. The session must be in CR mode.
func NewIncremental(s *model.Session) (*Incremental, error) {
	if s.Mode() != model.CR {
		return nil, fmt.Errorf("core: Incremental requires a CR session, got %v", s.Mode())
	}
	return &Incremental{session: s, seen: make([]bool, s.N())}, nil
}

// Add buffers element e for classification. It returns an error if e is
// out of range or already added.
func (inc *Incremental) Add(e int) error {
	if e < 0 || e >= inc.session.N() {
		return fmt.Errorf("core: element %d out of range [0,%d)", e, inc.session.N())
	}
	if inc.seen[e] {
		return fmt.Errorf("core: element %d added twice", e)
	}
	inc.seen[e] = true
	inc.added++
	inc.pending = append(inc.pending, e)
	return nil
}

// Flush folds all buffered elements into the answer. Buffered singletons
// and the current answer merge as one CR group — a single logical round
// of at most (|pending| + k)² representative tests. In steady state a
// flush allocates nothing: the group is a view over the pending buffer,
// the cross tests stream through the arena, and the merged answer is
// written into the spare backing, which then swaps with the current one.
//
//ecsort:hotpath
func (inc *Incremental) Flush() error {
	if len(inc.pending) == 0 {
		return nil
	}
	group := inc.group[:0]
	for i := range inc.pending {
		group = append(group, Answer{elems: inc.pending[i : i+1 : i+1], offs: singletonOffs})
	}
	if inc.answer.K() > 0 {
		group = append(group, inc.answer)
	}
	inc.group = group
	sc := &inc.sc
	if err := sc.streamGroup(inc.session, group); err != nil {
		return err
	}
	// A context canceled during the final physical round slips past the
	// per-round check inside the session; re-check before committing so
	// an aborted fold never publishes a merge built from a poisoned
	// round. The pending buffer stays intact for the retry.
	if err := inc.session.Err(); err != nil {
		return err
	}
	dst := 1 - inc.cur
	merged, elems, offs := sc.buildMerged(group, inc.bufElems[dst][:0], inc.bufOffs[dst][:0])
	// Retain the (possibly grown) pools and flip buffers: the old
	// answer's pool becomes the next flush's build target.
	inc.bufElems[dst], inc.bufOffs[dst] = elems, offs
	inc.cur = dst
	inc.answer = merged
	inc.pending = inc.pending[:0]
	inc.group = group[:0]
	inc.flushes++
	return nil
}

// Classes returns the current classes over everything added so far,
// flushing first. The classes are fresh copies sharing one backing array;
// they stay valid across later flushes.
func (inc *Incremental) Classes() ([][]int, error) {
	if err := inc.Flush(); err != nil {
		return nil, err
	}
	return inc.answer.Classes(), nil
}

// ClassOf returns the current class of element e (flushing first), or an
// error if e has not been added. The returned slice is a fresh copy.
func (inc *Incremental) ClassOf(e int) ([]int, error) {
	if e < 0 || e >= len(inc.seen) || !inc.seen[e] {
		return nil, fmt.Errorf("core: element %d not added", e)
	}
	if err := inc.Flush(); err != nil {
		return nil, err
	}
	for i := 0; i < inc.answer.K(); i++ {
		cls := inc.answer.Class(i)
		for _, x := range cls {
			if x == e {
				out := make([]int, len(cls))
				copy(out, cls)
				return out, nil
			}
		}
	}
	panic("core: element added and flushed but not in any class")
}

// Size returns how many elements have been added (buffered or merged).
func (inc *Incremental) Size() int { return inc.added }

// Has reports whether element e has already been added (buffered or
// merged). Callers batching inserts can pre-validate a whole batch with
// Has before committing any Add, keeping the batch atomic.
func (inc *Incremental) Has(e int) bool {
	return e >= 0 && e < len(inc.seen) && inc.seen[e]
}

// Pending returns the number of buffered elements awaiting the next
// Flush.
func (inc *Incremental) Pending() int { return len(inc.pending) }

// Flushes returns how many non-empty flushes have folded batches into
// the answer — the number of compounding CR group rounds spent so far.
func (inc *Incremental) Flushes() int { return inc.flushes }

// Snapshot returns a copy of the classes merged so far, excluding pending
// (unflushed) elements. It never triggers a flush, performs no
// comparisons, and the returned classes share no memory with the sorter
// (they are views into one fresh backing array), so a service can publish
// them to concurrent readers while ingestion continues — the
// copy-on-flush pattern. For an index-carrying flat copy, use Flat.
func (inc *Incremental) Snapshot() [][]int {
	return inc.answer.Classes()
}

// Flat exposes the merged answer's flat storage — elements grouped by
// class and the class offset table — as read-only views that are only
// valid until the next Flush. Snapshot publishers copy these two slices
// instead of materializing per-class allocations.
func (inc *Incremental) Flat() (elems, offs []int) {
	return inc.answer.Flat()
}

// Stats exposes the underlying session's cost.
func (inc *Incremental) Stats() model.Stats { return inc.session.Stats() }

// PendingElements exposes the buffered elements in arrival order, as a
// read-only view valid until the next Add or Flush. Arrival order is
// part of the sorter's determinism contract — the next flush merges
// pending singletons in exactly this order — so checkpointing code must
// persist it as is.
func (inc *Incremental) PendingElements() []int { return inc.pending }

// Restore rebuilds a fresh sorter from checkpointed state: the flat
// answer (elems grouped by class, offs the class-offset table), the
// pending buffer in arrival order, the accumulated session cost, and the
// flush count. After Restore the sorter continues bit-identically to one
// that reached this state by live Adds and Flushes — same classes, same
// stats trajectory — which is the recovery correctness anchor. It must
// be called on a sorter with no prior Adds.
func (inc *Incremental) Restore(elems, offs, pending []int, st model.Stats, flushes int) error {
	if inc.added != 0 || inc.flushes != 0 {
		return fmt.Errorf("core: Restore on a used sorter (%d adds, %d flushes)", inc.added, inc.flushes)
	}
	if len(elems) > 0 && (len(offs) < 2 || offs[0] != 0 || offs[len(offs)-1] != len(elems)) {
		return fmt.Errorf("core: Restore: malformed offset table (len %d over %d elements)", len(offs), len(elems))
	}
	if len(elems) == 0 && len(offs) > 1 {
		return fmt.Errorf("core: Restore: %d class offsets over zero elements", len(offs))
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] <= offs[i-1] {
			return fmt.Errorf("core: Restore: class %d is empty or out of order", i-1)
		}
	}
	mark := func(e int) error {
		if e < 0 || e >= len(inc.seen) {
			return fmt.Errorf("core: Restore: element %d out of range [0,%d)", e, len(inc.seen))
		}
		if inc.seen[e] {
			return fmt.Errorf("core: Restore: element %d appears twice", e)
		}
		inc.seen[e] = true
		return nil
	}
	for _, e := range elems {
		if err := mark(e); err != nil {
			return err
		}
	}
	for _, e := range pending {
		if err := mark(e); err != nil {
			return err
		}
	}
	inc.bufElems[0] = append(inc.bufElems[0][:0], elems...)
	inc.bufOffs[0] = append(inc.bufOffs[0][:0], offs...)
	inc.cur = 0
	if len(elems) > 0 {
		inc.answer = Answer{elems: inc.bufElems[0], offs: inc.bufOffs[0]}
	} else {
		inc.answer = Answer{}
	}
	inc.pending = append(inc.pending[:0], pending...)
	inc.added = len(elems) + len(pending)
	inc.flushes = flushes
	inc.session.RestoreStats(st)
	return nil
}
