package core

import (
	"fmt"

	"ecsort/internal/model"
)

// Incremental maintains a complete equivalence class sorting answer while
// elements arrive over time — the online counterpart of the batch sorts,
// built from the same Answer merge calculus. New elements join as
// singleton answers and are folded in with the compounding technique:
// each insert buffers the element, and Flush (or any query) merges all
// buffered singletons into the main answer with one CR group round.
//
// This is the library feature the paper's applications want in steady
// state: a convention where interns keep arriving, a fleet where machines
// come online one by one.
type Incremental struct {
	session *model.Session
	answer  Answer
	pending []Answer
	seen    map[int]bool
	flushes int
}

// NewIncremental creates an incremental sorter over the session's
// elements. Elements must still be drawn from 0..N()-1 (the oracle
// defines the universe); they may be added in any order, each at most
// once. The session must be in CR mode.
func NewIncremental(s *model.Session) (*Incremental, error) {
	if s.Mode() != model.CR {
		return nil, fmt.Errorf("core: Incremental requires a CR session, got %v", s.Mode())
	}
	return &Incremental{session: s, seen: make(map[int]bool)}, nil
}

// Add buffers element e for classification. It returns an error if e is
// out of range or already added.
func (inc *Incremental) Add(e int) error {
	if e < 0 || e >= inc.session.N() {
		return fmt.Errorf("core: element %d out of range [0,%d)", e, inc.session.N())
	}
	if inc.seen[e] {
		return fmt.Errorf("core: element %d added twice", e)
	}
	inc.seen[e] = true
	inc.pending = append(inc.pending, Singleton(e))
	return nil
}

// Flush folds all buffered elements into the answer. Buffered singletons
// and the current answer merge as one CR group — a single logical round
// of at most (|pending| + k)² representative tests.
func (inc *Incremental) Flush() error {
	if len(inc.pending) == 0 {
		return nil
	}
	group := inc.pending
	if inc.answer.K() > 0 {
		group = append(group, inc.answer)
	}
	merged, err := MergeGroupCR(inc.session, group)
	if err != nil {
		return err
	}
	inc.answer = merged
	inc.pending = nil
	inc.flushes++
	return nil
}

// Classes returns the current classes over everything added so far,
// flushing first.
func (inc *Incremental) Classes() ([][]int, error) {
	if err := inc.Flush(); err != nil {
		return nil, err
	}
	return inc.answer.Classes, nil
}

// ClassOf returns the current class of element e (flushing first), or an
// error if e has not been added.
func (inc *Incremental) ClassOf(e int) ([]int, error) {
	if !inc.seen[e] {
		return nil, fmt.Errorf("core: element %d not added", e)
	}
	if err := inc.Flush(); err != nil {
		return nil, err
	}
	for _, cls := range inc.answer.Classes {
		for _, x := range cls {
			if x == e {
				return cls, nil
			}
		}
	}
	panic("core: element added and flushed but not in any class")
}

// Size returns how many elements have been added (buffered or merged).
func (inc *Incremental) Size() int { return len(inc.seen) }

// Has reports whether element e has already been added (buffered or
// merged). Callers batching inserts can pre-validate a whole batch with
// Has before committing any Add, keeping the batch atomic.
func (inc *Incremental) Has(e int) bool { return inc.seen[e] }

// Pending returns the number of buffered elements awaiting the next
// Flush.
func (inc *Incremental) Pending() int { return len(inc.pending) }

// Flushes returns how many non-empty flushes have folded batches into
// the answer — the number of compounding CR group rounds spent so far.
func (inc *Incremental) Flushes() int { return inc.flushes }

// Snapshot returns a deep copy of the classes merged so far, excluding
// pending (unflushed) elements. It never triggers a flush, performs no
// comparisons, and the returned slices share no memory with the sorter,
// so a service can publish them to concurrent readers while ingestion
// continues — the copy-on-flush pattern.
func (inc *Incremental) Snapshot() [][]int {
	out := make([][]int, len(inc.answer.Classes))
	for i, cls := range inc.answer.Classes {
		cp := make([]int, len(cls))
		copy(cp, cls)
		out[i] = cp
	}
	return out
}

// Stats exposes the underlying session's cost.
func (inc *Incremental) Stats() model.Stats { return inc.session.Stats() }
