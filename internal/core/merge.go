package core

import (
	"errors"
	"fmt"
	"sync"

	"ecsort/internal/model"
	"ecsort/internal/unionfind"
)

// This file is the flat CR merge engine: the hot path behind SortCR, the
// ablations, MergeGroupCR, and Incremental.Flush. Cross-representative
// tests stream into one reusable pair buffer in a canonical order, the
// equality results fold into a slice-indexed union-find over (answer,
// class) slots by re-walking that same order — no per-pair bookkeeping is
// ever stored — and the merged answer is written into flat storage with
// two passes. All scratch lives in a mergeScratch arena, so steady-state
// merges allocate nothing beyond the output answer's own backing.

// mergeScratch is the reusable scratch arena of the flat CR merge engine.
// The zero value is ready to use; buffers grow on demand and are retained
// across merges. A mergeScratch is not safe for concurrent use.
type mergeScratch struct {
	pairs   []model.Pair // emitted cross tests of the current logical round
	results []bool       // result buffer threaded through Session.RoundBuf
	dsu     unionfind.DSU
	// slotBase[u] is the slot index of group[u]'s first class; slots
	// number the (answer, class) pairs of one group consecutively.
	slotBase []int
	classID  []int // root slot -> output class id, assigned by first appearance
	cursor   []int // output class id -> write cursor, then offsets scratch
	spans    []mergeSpan
}

// errSmallGroup rejects degenerate merge group sizes; predeclared so the
// per-level hot path never touches fmt.
var errSmallGroup = errors.New("core: merge group size < 2")

// mergeSpan marks one group's slice of a batched logical round.
type mergeSpan struct {
	start, end int // answers[start:end] form the group
	lo, hi     int // its tests occupy pairs[lo:hi]
}

// appendCross appends every cross-answer representative test of the group
// to dst in canonical order — for each u < v, each class i of group[u]
// against each class j of group[v] — and returns the extended slice. The
// unite step re-walks the same order, so no pair-to-slot mapping is ever
// materialized.
//
//ecsort:hotpath
func appendCross(dst []model.Pair, group []Answer) []model.Pair {
	for u := 0; u < len(group); u++ {
		gu := group[u]
		ku := gu.K()
		for v := u + 1; v < len(group); v++ {
			gv := group[v]
			kv := gv.K()
			for i := 0; i < ku; i++ {
				x := gu.Rep(i)
				for j := 0; j < kv; j++ {
					dst = append(dst, model.Pair{A: x, B: gv.Rep(j)})
				}
			}
		}
	}
	return dst
}

// unite folds one group's equality results into the arena's union-find
// over (answer, class) slots. res must hold the answers to the tests
// appendCross emitted for this group, in that order.
//
//ecsort:hotpath
func (sc *mergeScratch) unite(group []Answer, res []bool) {
	slots := 0
	sc.slotBase = sc.slotBase[:0]
	for _, a := range group {
		sc.slotBase = append(sc.slotBase, slots)
		slots += a.K()
	}
	sc.dsu.Reset(slots)
	idx := 0
	for u := 0; u < len(group); u++ {
		ku := group[u].K()
		for v := u + 1; v < len(group); v++ {
			kv := group[v].K()
			for i := 0; i < ku; i++ {
				for j := 0; j < kv; j++ {
					if res[idx] {
						sc.dsu.Union(sc.slotBase[u]+i, sc.slotBase[v]+j)
					}
					idx++
				}
			}
		}
	}
}

// buildMerged writes the united group as one flat answer appended to the
// elems/offs destination slices (typically arena pools or exact-size
// fresh slices) and returns the answer viewing the appended region plus
// the extended slices. Output classes are ordered by the first slot of
// each united component and members concatenate in slot order — exactly
// the ordering the map-based engine produced, so results are
// bit-for-bit identical. Call unite for the group first.
//
//ecsort:hotpath
func (sc *mergeScratch) buildMerged(group []Answer, elems, offs []int) (Answer, []int, []int) {
	slots := sc.dsu.Len()
	if cap(sc.classID) < slots {
		sc.classID = make([]int, slots)
		sc.cursor = make([]int, slots)
	}
	classID := sc.classID[:slots]
	sizes := sc.cursor[:slots] // size per output class, then write cursor
	for i := 0; i < slots; i++ {
		classID[i] = -1
	}
	// Pass 1: assign output class ids by first slot appearance and total
	// the component sizes.
	k := 0
	slot := 0
	for _, a := range group {
		for i := 0; i < a.K(); i++ {
			r := sc.dsu.Find(slot)
			c := classID[r]
			if c < 0 {
				c = k
				k++
				classID[r] = c
				sizes[c] = 0
			}
			sizes[c] += a.offs[i+1] - a.offs[i]
			slot++
		}
	}
	// Offsets from sizes, then turn sizes into write cursors.
	base := len(elems)
	offBase := len(offs)
	offs = append(offs, base)
	for c := 0; c < k; c++ {
		offs = append(offs, offs[len(offs)-1]+sizes[c])
	}
	total := offs[len(offs)-1] - base
	for c := 0; c < k; c++ {
		sizes[c] = offs[offBase+c] - base
	}
	// Pass 2: place members in slot order.
	elems = growInts(elems, base+total)
	slot = 0
	for _, a := range group {
		for i := 0; i < a.K(); i++ {
			c := classID[sc.dsu.Find(slot)]
			cls := a.Class(i)
			copy(elems[base+sizes[c]:], cls)
			sizes[c] += len(cls)
			slot++
		}
	}
	out := Answer{
		elems: elems[base : base+total : base+total],
		offs:  offs[offBase : offBase+k+1 : offBase+k+1],
	}
	// Rebase the answer's offsets to its own elems view.
	if base != 0 {
		for i := range out.offs {
			out.offs[i] -= base
		}
	}
	return out, elems, offs
}

// growInts extends s to length n, preserving contents and doubling the
// capacity when a reallocation is needed so pool growth amortizes away.
//
//ecsort:hotpath
func growInts(s []int, n int) []int {
	if cap(s) < n {
		grown := make([]int, n, max(n, 2*cap(s)))
		copy(grown, s)
		return grown
	}
	return s[:n]
}

// round executes one logical round of the arena's emitted pairs through
// the session, keeping the result buffer for reuse when it grew.
//
//ecsort:hotpath
func (sc *mergeScratch) round(s *model.Session) ([]bool, error) {
	res, err := s.RoundBuf(sc.pairs, sc.results)
	if err != nil {
		return nil, err
	}
	if cap(res) > cap(sc.results) {
		sc.results = res
	}
	return res, nil
}

// streamGroup runs one group's whole merge round through the arena —
// appendCross → session round → unite — leaving the slot union-find
// ready for buildMerged.
//
//ecsort:hotpath
func (sc *mergeScratch) streamGroup(s *model.Session, group []Answer) error {
	sc.pairs = appendCross(sc.pairs[:0], group)
	res, err := sc.round(s)
	if err != nil {
		return err
	}
	sc.unite(group, res)
	return nil
}

// scratchPool recycles arenas across the exported one-shot entry points
// (MergePairCR, MergeGroupCR), keeping their steady state allocation-free
// too. Long-lived callers (SortCR, Incremental) own an arena directly.
var scratchPool = sync.Pool{New: func() any { return new(mergeScratch) }}

// mergeGroupScratch merges a group of answers with one logical round of
// every cross-answer representative test, using the provided arena. The
// output answer is written into fresh exact-size storage.
func mergeGroupScratch(s *model.Session, sc *mergeScratch, group []Answer) (Answer, error) {
	if err := sc.streamGroup(s, group); err != nil {
		return Answer{}, err
	}
	size := 0
	for _, a := range group {
		size += a.Size()
	}
	out, _, _ := sc.buildMerged(group, make([]int, 0, size), make([]int, 0, sc.dsu.Len()+1))
	return out, nil
}

// MergePairCR merges two answers in the CR model with one logical round of
// K(a)·K(b) concurrent representative tests. The session splits the round
// if it exceeds the processor budget.
func MergePairCR(s *model.Session, a, b Answer) (Answer, error) {
	if s.Mode() != model.CR {
		return Answer{}, fmt.Errorf("core: MergePairCR requires a CR session, got %v", s.Mode())
	}
	sc := scratchPool.Get().(*mergeScratch)
	defer scratchPool.Put(sc)
	group := [2]Answer{a, b}
	return mergeGroupScratch(s, sc, group[:])
}

// MergeGroupCR merges a whole group of answers in the CR model with one
// logical round containing every cross-answer representative test — the
// compounding step of phase 2 of the Theorem 1 algorithm. Matching classes
// are united transitively.
func MergeGroupCR(s *model.Session, group []Answer) (Answer, error) {
	switch len(group) {
	case 0:
		return Answer{}, fmt.Errorf("core: MergeGroupCR of empty group")
	case 1:
		return group[0], nil
	}
	if s.Mode() != model.CR {
		return Answer{}, fmt.Errorf("core: MergeGroupCR requires a CR session, got %v", s.Mode())
	}
	sc := scratchPool.Get().(*mergeScratch)
	defer scratchPool.Put(sc)
	return mergeGroupScratch(s, sc, group)
}

// crArena is the per-sort state of the batched level merges of SortCR and
// its variants: the shared merge scratch plus double-buffered flat pools
// for the answers of the current and next level. Total elements across a
// level never exceed n, so after warm-up a whole sort allocates nothing
// per level.
type crArena struct {
	sc    mergeScratch
	elems [2][]int
	offs  [2][]int
	cur   int // pool index holding the current level's answers
	next  []Answer
}

// newCRArena seeds the arena with the singleton level: answers[i] views
// pool element i.
func newCRArena(n int) (*crArena, []Answer) {
	ar := &crArena{}
	pool := make([]int, n)
	answers := make([]Answer, n)
	for i := range answers {
		pool[i] = i
		answers[i] = Answer{elems: pool[i : i+1 : i+1], offs: singletonOffs}
	}
	ar.elems[0] = pool
	ar.offs[0] = make([]int, 0)
	return ar, answers
}

// mergePairsCR merges answers two at a time — (0,1), (2,3), ... — with all
// tests of the iteration batched into one logical round, mirroring that
// the merges happen simultaneously on disjoint processor groups.
func mergePairsCR(s *model.Session, ar *crArena, answers []Answer) ([]Answer, error) {
	return mergeGroupsCR(s, ar, answers, 2)
}

// mergeGroupsCR partitions answers into consecutive groups of size g and
// merges each group, batching every group's cross tests into one logical
// round. A trailing group smaller than g (possibly a single answer) is
// merged or carried over. Outputs are written into the arena's spare
// pool, which then becomes current; the input answers' pool is recycled
// as the next spare, so callers must not retain answers across calls.
//
//ecsort:hotpath
func mergeGroupsCR(s *model.Session, ar *crArena, answers []Answer, g int) ([]Answer, error) {
	if g < 2 {
		return nil, errSmallGroup
	}
	sc := &ar.sc
	sc.pairs = sc.pairs[:0]
	sc.spans = sc.spans[:0]
	for start := 0; start < len(answers); start += g {
		end := min(start+g, len(answers))
		lo := len(sc.pairs)
		if end-start > 1 {
			sc.pairs = appendCross(sc.pairs, answers[start:end])
		}
		sc.spans = append(sc.spans, mergeSpan{start: start, end: end, lo: lo, hi: len(sc.pairs)})
	}
	res, err := sc.round(s)
	if err != nil {
		return nil, err
	}
	dst := 1 - ar.cur
	elems, offs := ar.elems[dst][:0], ar.offs[dst][:0]
	next := ar.next[:0]
	for _, sp := range sc.spans {
		group := answers[sp.start:sp.end]
		var out Answer
		if len(group) == 1 {
			// Carry-over: copy into the destination pool so the source
			// pool can be recycled next level.
			a := group[0]
			base, offBase := len(elems), len(offs)
			elems = append(elems, a.elems...)
			for _, o := range a.offs {
				offs = append(offs, o)
			}
			out = Answer{
				elems: elems[base : base+a.Size() : base+a.Size()],
				offs:  offs[offBase : offBase+len(a.offs) : offBase+len(a.offs)],
			}
		} else {
			sc.unite(group, res[sp.lo:sp.hi])
			out, elems, offs = sc.buildMerged(group, elems, offs)
		}
		next = append(next, out)
	}
	ar.elems[dst], ar.offs[dst] = elems, offs
	ar.cur = dst
	ar.next = answers // recycle the input slice for the level after next
	return next, nil
}
