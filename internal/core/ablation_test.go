package core

import (
	"math/rand"
	"testing"

	"ecsort/internal/model"
	"ecsort/internal/oracle"
)

func TestAblationsCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, tc := range []struct{ n, k int }{
		{1, 1}, {17, 3}, {100, 10}, {256, 4},
	} {
		truth := oracle.RandomBalanced(tc.n, tc.k, rng)
		for _, algo := range []struct {
			name string
			run  func(*model.Session, int) (Result, error)
		}{
			{"pairwise-only", SortCRPairwiseOnly},
			{"eager-groups", SortCREagerGroups},
		} {
			s := model.NewSession(truth, model.CR)
			res, err := algo.run(s, tc.k)
			if err != nil {
				t.Fatalf("%s n=%d k=%d: %v", algo.name, tc.n, tc.k, err)
			}
			checkResult(t, res, truth)
		}
	}
}

// TestAblationPhase2Matters: on large inputs, full SortCR should need
// clearly fewer rounds than the pairwise-only ablation, whose tail is
// Θ(log n) instead of Θ(log log n).
func TestAblationPhase2Matters(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	n, k := 1<<15, 2
	truth := oracle.RandomBalanced(n, k, rng)

	full := model.NewSession(truth, model.CR)
	if _, err := SortCR(full, k); err != nil {
		t.Fatal(err)
	}
	pairwise := model.NewSession(truth, model.CR)
	if _, err := SortCRPairwiseOnly(pairwise, k); err != nil {
		t.Fatal(err)
	}
	if full.Stats().Rounds >= pairwise.Stats().Rounds {
		t.Errorf("compounding did not help: full %d rounds vs pairwise-only %d",
			full.Stats().Rounds, pairwise.Stats().Rounds)
	}
}

// TestAblationPhase1Matters: skipping phase 1 must cost extra rounds
// relative to full SortCR (the early group merges overflow the processor
// budget), while still being correct.
func TestAblationPhase1Matters(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	n, k := 1<<14, 8
	truth := oracle.RandomBalanced(n, k, rng)

	full := model.NewSession(truth, model.CR)
	if _, err := SortCR(full, k); err != nil {
		t.Fatal(err)
	}
	eager := model.NewSession(truth, model.CR)
	if _, err := SortCREagerGroups(eager, k); err != nil {
		t.Fatal(err)
	}
	if eager.Stats().Rounds <= full.Stats().Rounds {
		t.Errorf("eager grouping unexpectedly cheap: eager %d rounds vs full %d",
			eager.Stats().Rounds, full.Stats().Rounds)
	}
}

func TestAblationValidation(t *testing.T) {
	truth := oracle.NewLabel([]int{0, 1})
	er := model.NewSession(truth, model.ER)
	if _, err := SortCRPairwiseOnly(er, 1); err == nil {
		t.Error("pairwise-only accepted ER session")
	}
	if _, err := SortCREagerGroups(er, 1); err == nil {
		t.Error("eager-groups accepted ER session")
	}
	cr := model.NewSession(truth, model.CR)
	if _, err := SortCRPairwiseOnly(cr, 0); err == nil {
		t.Error("pairwise-only accepted k=0")
	}
	if _, err := SortCREagerGroups(cr, 0); err == nil {
		t.Error("eager-groups accepted k=0")
	}
}
