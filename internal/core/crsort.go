package core

import (
	"fmt"

	"ecsort/internal/model"
)

// SortCR solves equivalence class sorting in the concurrent-read model in
// O(k + log log n) parallel rounds using n processors (Theorem 1), where k
// is the number of equivalence classes. It is the two-phased
// compounding-comparison algorithm of Section 2.1:
//
//  1. Start from n singleton answers.
//  2. Phase 1: while the number of processors per answer is below 4k²,
//     merge answers in pairs (k² representative tests per merge). Each
//     iteration's tests form one logical round that the session splits
//     into ⌈total/n⌉ physical rounds; summed over iterations this is O(k)
//     rounds.
//  3. Phase 2: with c·k² processors per answer, merge groups of 2c+1
//     answers in a single round each ((2c+1)·c·k² ≤ n tests per
//     iteration), so the answer count decays doubly exponentially and
//     O(log log n) iterations remain.
//
// k must be the true number of classes or an upper bound on it; the output
// is correct for any k ≥ 1 (k only steers the phase switch and hence the
// round count). The session must be in CR mode.
func SortCR(s *model.Session, k int) (Result, error) {
	if s.Mode() != model.CR {
		return Result{}, fmt.Errorf("core: SortCR requires a CR session, got %v", s.Mode())
	}
	if k < 1 {
		return Result{}, fmt.Errorf("core: SortCR needs k >= 1, got %d", k)
	}
	n := s.N()
	if n == 0 {
		return Result{Stats: s.Stats()}, nil
	}
	p := n // the model grants one processor per element
	answers := Singletons(n)

	// Phase 1: pairwise merges until each answer owns >= 4k² processors.
	for len(answers) > 1 && p/len(answers) < 4*k*k {
		next, err := mergePairsCR(s, answers)
		if err != nil {
			return Result{}, err
		}
		answers = next
	}

	// Phase 2: compounding group merges, one physical round per iteration.
	for len(answers) > 1 {
		c := p / (len(answers) * k * k)
		if c < 2 {
			c = 2
		}
		g := 2*c + 1
		if g > len(answers) {
			g = len(answers)
		}
		next, err := mergeGroupsCR(s, answers, g)
		if err != nil {
			return Result{}, err
		}
		answers = next
	}
	return Result{Classes: answers[0].Classes, Stats: s.Stats()}, nil
}

// mergePairsCR merges answers two at a time — (0,1), (2,3), ... — with all
// tests of the iteration batched into one logical round, mirroring that
// the merges happen simultaneously on disjoint processor groups.
func mergePairsCR(s *model.Session, answers []Answer) ([]Answer, error) {
	return mergeGroupsCR(s, answers, 2)
}

// mergeGroupsCR partitions answers into consecutive groups of size g and
// merges each group, batching every group's cross tests into one logical
// round. A trailing group smaller than g (possibly a single answer) is
// merged or carried over as-is.
func mergeGroupsCR(s *model.Session, answers []Answer, g int) ([]Answer, error) {
	if g < 2 {
		return nil, fmt.Errorf("core: group size %d < 2", g)
	}
	type groupSpan struct {
		group    []Answer
		lo, hi   int // half-open span of the batch owned by this group
		groupIdx int
	}
	var batch []model.Pair
	var spans []groupSpan
	next := make([]Answer, 0, (len(answers)+g-1)/g)
	for start := 0; start < len(answers); start += g {
		end := min(start+g, len(answers))
		group := answers[start:end]
		if len(group) == 1 {
			next = append(next, group[0])
			continue
		}
		lo := len(batch)
		batch = append(batch, crossPairs(group)...)
		spans = append(spans, groupSpan{group: group, lo: lo, hi: len(batch), groupIdx: len(next)})
		next = append(next, Answer{}) // placeholder, filled after execution
	}
	res, err := s.Round(batch)
	if err != nil {
		return nil, err
	}
	for _, sp := range spans {
		next[sp.groupIdx] = uniteGroup(sp.group, batch[sp.lo:sp.hi], res[sp.lo:sp.hi])
	}
	return next, nil
}
