package core

import (
	"fmt"

	"ecsort/internal/model"
)

// SortCR solves equivalence class sorting in the concurrent-read model in
// O(k + log log n) parallel rounds using n processors (Theorem 1), where k
// is the number of equivalence classes. It is the two-phased
// compounding-comparison algorithm of Section 2.1:
//
//  1. Start from n singleton answers.
//  2. Phase 1: while the number of processors per answer is below 4k²,
//     merge answers in pairs (k² representative tests per merge). Each
//     iteration's tests form one logical round that the session splits
//     into ⌈total/n⌉ physical rounds; summed over iterations this is O(k)
//     rounds.
//  3. Phase 2: with c·k² processors per answer, merge groups of 2c+1
//     answers in a single round each ((2c+1)·c·k² ≤ n tests per
//     iteration), so the answer count decays doubly exponentially and
//     O(log log n) iterations remain.
//
// k must be the true number of classes or an upper bound on it; the output
// is correct for any k ≥ 1 (k only steers the phase switch and hence the
// round count). The session must be in CR mode.
//
// One merge arena serves the whole sort: level outputs double-buffer
// between two flat pools sized by n, so after the first level no
// per-merge or per-pair allocation happens.
func SortCR(s *model.Session, k int) (Result, error) {
	if s.Mode() != model.CR {
		return Result{}, fmt.Errorf("core: SortCR requires a CR session, got %v", s.Mode())
	}
	if k < 1 {
		return Result{}, fmt.Errorf("core: SortCR needs k >= 1, got %d", k)
	}
	n := s.N()
	if n == 0 {
		return Result{Stats: s.Stats()}, nil
	}
	p := n // the model grants one processor per element
	ar, answers := newCRArena(n)

	// Phase 1: pairwise merges until each answer owns >= 4k² processors.
	for len(answers) > 1 && p/len(answers) < 4*k*k {
		next, err := mergePairsCR(s, ar, answers)
		if err != nil {
			return Result{}, err
		}
		answers = next
	}

	// Phase 2: compounding group merges, one physical round per iteration.
	for len(answers) > 1 {
		c := p / (len(answers) * k * k)
		if c < 2 {
			c = 2
		}
		g := 2*c + 1
		if g > len(answers) {
			g = len(answers)
		}
		next, err := mergeGroupsCR(s, ar, answers, g)
		if err != nil {
			return Result{}, err
		}
		answers = next
	}
	return Result{Classes: answers[0].Classes(), Stats: s.Stats()}, nil
}
