package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ecsort/internal/model"
	"ecsort/internal/oracle"
)

func TestIncrementalBasics(t *testing.T) {
	truth := oracle.NewLabel([]int{0, 1, 0, 1, 2})
	s := model.NewSession(truth, model.CR)
	inc, err := NewIncremental(s)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 5; e++ {
		if err := inc.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	classes, err := inc.Classes()
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 3 {
		t.Fatalf("classes = %v", classes)
	}
	cls, err := inc.ClassOf(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cls) != 2 {
		t.Fatalf("ClassOf(2) = %v", cls)
	}
	if inc.Size() != 5 {
		t.Fatalf("Size = %d", inc.Size())
	}
}

func TestIncrementalErrors(t *testing.T) {
	truth := oracle.NewLabel([]int{0, 1})
	if _, err := NewIncremental(model.NewSession(truth, model.ER)); err == nil {
		t.Fatal("ER session accepted")
	}
	s := model.NewSession(truth, model.CR)
	inc, _ := NewIncremental(s)
	if err := inc.Add(5); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if err := inc.Add(0); err != nil {
		t.Fatal(err)
	}
	if err := inc.Add(0); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := inc.ClassOf(1); err == nil {
		t.Fatal("un-added element accepted")
	}
}

func TestIncrementalInterleavedFlushes(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	truth := oracle.RandomBalanced(100, 7, rng)
	s := model.NewSession(truth, model.CR)
	inc, err := NewIncremental(s)
	if err != nil {
		t.Fatal(err)
	}
	order := rng.Perm(100)
	for i, e := range order {
		if err := inc.Add(e); err != nil {
			t.Fatal(err)
		}
		if i%13 == 0 {
			if err := inc.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	classes, err := inc.Classes()
	if err != nil {
		t.Fatal(err)
	}
	res := Result{Classes: classes}
	if !SameClassification(res.Labels(100), truth.Labels()) {
		t.Fatal("incremental classification wrong")
	}
}

// TestIncrementalMatchesBatch: any insertion order and flush pattern must
// yield the same partition the batch sort produces.
func TestIncrementalMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		k := 1 + rng.Intn(min(n, 5))
		truth := oracle.RandomBalanced(n, k, rng)
		s := model.NewSession(truth, model.CR)
		inc, err := NewIncremental(s)
		if err != nil {
			return false
		}
		for _, e := range rng.Perm(n) {
			if err := inc.Add(e); err != nil {
				return false
			}
			if rng.Intn(4) == 0 {
				if err := inc.Flush(); err != nil {
					return false
				}
			}
		}
		classes, err := inc.Classes()
		if err != nil {
			return false
		}
		res := Result{Classes: classes}
		return SameClassification(res.Labels(n), truth.Labels())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalPartialUniverse: classifying a strict subset of the
// universe is fine; only added elements appear in classes.
func TestIncrementalPartialUniverse(t *testing.T) {
	truth := oracle.NewLabel([]int{0, 0, 1, 1, 2, 2})
	s := model.NewSession(truth, model.CR)
	inc, _ := NewIncremental(s)
	for _, e := range []int{0, 2, 3} {
		if err := inc.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	classes, err := inc.Classes()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range classes {
		total += len(c)
	}
	if total != 3 || len(classes) != 2 {
		t.Fatalf("classes = %v", classes)
	}
}

func TestIncrementalEmptyFlush(t *testing.T) {
	truth := oracle.NewLabel([]int{0})
	s := model.NewSession(truth, model.CR)
	inc, _ := NewIncremental(s)
	if err := inc.Flush(); err != nil {
		t.Fatal(err)
	}
	classes, err := inc.Classes()
	if err != nil || len(classes) != 0 {
		t.Fatalf("classes = %v, err = %v", classes, err)
	}
}

// TestIncrementalEmptyFlushIsFree: flushing an empty pending buffer must
// charge no comparisons, execute no rounds, and not count as a flush —
// repeatedly, and also between batches.
func TestIncrementalEmptyFlushIsFree(t *testing.T) {
	truth := oracle.NewLabel([]int{0, 1, 0})
	s := model.NewSession(truth, model.CR)
	inc, _ := NewIncremental(s)
	for i := 0; i < 3; i++ {
		if err := inc.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if st := inc.Stats(); st.Comparisons != 0 || st.Rounds != 0 {
		t.Fatalf("empty flushes charged cost: %+v", st)
	}
	if inc.Flushes() != 0 {
		t.Fatalf("Flushes = %d after empty flushes", inc.Flushes())
	}
	for e := 0; e < 3; e++ {
		if err := inc.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := inc.Flush(); err != nil {
		t.Fatal(err)
	}
	st := inc.Stats()
	if err := inc.Flush(); err != nil { // second flush: nothing pending
		t.Fatal(err)
	}
	if inc.Stats() != st {
		t.Fatalf("no-op flush changed stats: %+v -> %+v", st, inc.Stats())
	}
	if inc.Flushes() != 1 {
		t.Fatalf("Flushes = %d, want 1", inc.Flushes())
	}
}

// TestIncrementalDuplicateAfterFlush: duplicates are rejected whether the
// element is still buffered or already merged, and the rejection charges
// nothing.
func TestIncrementalDuplicateAfterFlush(t *testing.T) {
	truth := oracle.NewLabel([]int{0, 1, 0})
	s := model.NewSession(truth, model.CR)
	inc, _ := NewIncremental(s)
	if err := inc.Add(1); err != nil {
		t.Fatal(err)
	}
	if err := inc.Add(1); err == nil {
		t.Fatal("buffered duplicate accepted")
	}
	if err := inc.Flush(); err != nil {
		t.Fatal(err)
	}
	st := inc.Stats()
	if err := inc.Add(1); err == nil {
		t.Fatal("merged duplicate accepted")
	}
	if inc.Stats() != st {
		t.Fatalf("rejected Add changed stats: %+v -> %+v", st, inc.Stats())
	}
	if !inc.Has(1) || inc.Has(0) {
		t.Fatalf("Has(1) = %v, Has(0) = %v", inc.Has(1), inc.Has(0))
	}
}

// TestIncrementalQueryTriggeredFlush: Classes and ClassOf must fold the
// pending buffer implicitly, exactly as an explicit Flush would.
func TestIncrementalQueryTriggeredFlush(t *testing.T) {
	truth := oracle.NewLabel([]int{0, 1, 0, 1})
	s := model.NewSession(truth, model.CR)
	inc, _ := NewIncremental(s)
	for e := 0; e < 3; e++ {
		if err := inc.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	if inc.Pending() != 3 {
		t.Fatalf("Pending = %d", inc.Pending())
	}
	classes, err := inc.Classes() // query triggers the flush
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 2 || inc.Pending() != 0 || inc.Flushes() != 1 {
		t.Fatalf("classes = %v, pending = %d, flushes = %d", classes, inc.Pending(), inc.Flushes())
	}
	if err := inc.Add(3); err != nil {
		t.Fatal(err)
	}
	cls, err := inc.ClassOf(3) // ClassOf triggers the flush too
	if err != nil {
		t.Fatal(err)
	}
	if len(cls) != 2 || inc.Pending() != 0 || inc.Flushes() != 2 {
		t.Fatalf("ClassOf(3) = %v, pending = %d, flushes = %d", cls, inc.Pending(), inc.Flushes())
	}
}

// TestIncrementalSnapshotExcludesPending: Snapshot is copy-on-flush —
// it covers only merged elements, costs nothing, and the returned slices
// are detached from the sorter.
func TestIncrementalSnapshotExcludesPending(t *testing.T) {
	truth := oracle.NewLabel([]int{0, 0, 1, 1})
	s := model.NewSession(truth, model.CR)
	inc, _ := NewIncremental(s)
	if err := inc.Add(0); err != nil {
		t.Fatal(err)
	}
	if err := inc.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := inc.Add(1); err != nil {
		t.Fatal(err)
	}
	st := inc.Stats()
	snap := inc.Snapshot()
	if inc.Stats() != st {
		t.Fatal("Snapshot charged comparisons")
	}
	if len(snap) != 1 || len(snap[0]) != 1 || snap[0][0] != 0 {
		t.Fatalf("snapshot = %v, want [[0]] (pending 1 excluded)", snap)
	}
	snap[0][0] = 99 // mutating the copy must not corrupt the sorter
	classes, err := inc.Classes()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, cls := range classes {
		for _, e := range cls {
			if e == 0 {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("sorter state corrupted through snapshot: %v", classes)
	}
}

// TestIncrementalDeterministicReplay: for a fixed seed, an interleaved
// insert/query schedule must replay to the identical partition AND the
// identical comparison/round cost — the property the service's
// single-writer shards rely on for reproducible accounting.
func TestIncrementalDeterministicReplay(t *testing.T) {
	run := func(seed int64) ([][]int, model.Stats) {
		rng := rand.New(rand.NewSource(seed))
		truth := oracle.RandomBalanced(80, 6, rng)
		s := model.NewSession(truth, model.CR, model.Workers(1))
		inc, err := NewIncremental(s)
		if err != nil {
			t.Fatal(err)
		}
		for i, e := range rng.Perm(80) {
			if err := inc.Add(e); err != nil {
				t.Fatal(err)
			}
			switch i % 11 {
			case 3:
				if err := inc.Flush(); err != nil {
					t.Fatal(err)
				}
			case 7:
				if _, err := inc.Classes(); err != nil {
					t.Fatal(err)
				}
			}
		}
		classes, err := inc.Classes()
		if err != nil {
			t.Fatal(err)
		}
		return classes, inc.Stats()
	}
	const seed = 123
	classesA, statsA := run(seed)
	classesB, statsB := run(seed)
	if statsA != statsB {
		t.Fatalf("stats diverge on replay: %+v vs %+v", statsA, statsB)
	}
	ra := Result{Classes: classesA}
	rb := Result{Classes: classesB}
	canonA, canonB := ra.Canonical(), rb.Canonical()
	if len(canonA) != len(canonB) {
		t.Fatalf("class counts diverge: %d vs %d", len(canonA), len(canonB))
	}
	for i := range canonA {
		if len(canonA[i]) != len(canonB[i]) {
			t.Fatalf("class %d sizes diverge", i)
		}
		for j := range canonA[i] {
			if canonA[i][j] != canonB[i][j] {
				t.Fatalf("classes diverge at [%d][%d]", i, j)
			}
		}
	}
}
