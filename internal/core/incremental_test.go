package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ecsort/internal/model"
	"ecsort/internal/oracle"
)

func TestIncrementalBasics(t *testing.T) {
	truth := oracle.NewLabel([]int{0, 1, 0, 1, 2})
	s := model.NewSession(truth, model.CR)
	inc, err := NewIncremental(s)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 5; e++ {
		if err := inc.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	classes, err := inc.Classes()
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 3 {
		t.Fatalf("classes = %v", classes)
	}
	cls, err := inc.ClassOf(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cls) != 2 {
		t.Fatalf("ClassOf(2) = %v", cls)
	}
	if inc.Size() != 5 {
		t.Fatalf("Size = %d", inc.Size())
	}
}

func TestIncrementalErrors(t *testing.T) {
	truth := oracle.NewLabel([]int{0, 1})
	if _, err := NewIncremental(model.NewSession(truth, model.ER)); err == nil {
		t.Fatal("ER session accepted")
	}
	s := model.NewSession(truth, model.CR)
	inc, _ := NewIncremental(s)
	if err := inc.Add(5); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if err := inc.Add(0); err != nil {
		t.Fatal(err)
	}
	if err := inc.Add(0); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := inc.ClassOf(1); err == nil {
		t.Fatal("un-added element accepted")
	}
}

func TestIncrementalInterleavedFlushes(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	truth := oracle.RandomBalanced(100, 7, rng)
	s := model.NewSession(truth, model.CR)
	inc, err := NewIncremental(s)
	if err != nil {
		t.Fatal(err)
	}
	order := rng.Perm(100)
	for i, e := range order {
		if err := inc.Add(e); err != nil {
			t.Fatal(err)
		}
		if i%13 == 0 {
			if err := inc.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	classes, err := inc.Classes()
	if err != nil {
		t.Fatal(err)
	}
	res := Result{Classes: classes}
	if !SameClassification(res.Labels(100), truth.Labels()) {
		t.Fatal("incremental classification wrong")
	}
}

// TestIncrementalMatchesBatch: any insertion order and flush pattern must
// yield the same partition the batch sort produces.
func TestIncrementalMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		k := 1 + rng.Intn(min(n, 5))
		truth := oracle.RandomBalanced(n, k, rng)
		s := model.NewSession(truth, model.CR)
		inc, err := NewIncremental(s)
		if err != nil {
			return false
		}
		for _, e := range rng.Perm(n) {
			if err := inc.Add(e); err != nil {
				return false
			}
			if rng.Intn(4) == 0 {
				if err := inc.Flush(); err != nil {
					return false
				}
			}
		}
		classes, err := inc.Classes()
		if err != nil {
			return false
		}
		res := Result{Classes: classes}
		return SameClassification(res.Labels(n), truth.Labels())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalPartialUniverse: classifying a strict subset of the
// universe is fine; only added elements appear in classes.
func TestIncrementalPartialUniverse(t *testing.T) {
	truth := oracle.NewLabel([]int{0, 0, 1, 1, 2, 2})
	s := model.NewSession(truth, model.CR)
	inc, _ := NewIncremental(s)
	for _, e := range []int{0, 2, 3} {
		if err := inc.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	classes, err := inc.Classes()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range classes {
		total += len(c)
	}
	if total != 3 || len(classes) != 2 {
		t.Fatalf("classes = %v", classes)
	}
}

func TestIncrementalEmptyFlush(t *testing.T) {
	truth := oracle.NewLabel([]int{0})
	s := model.NewSession(truth, model.CR)
	inc, _ := NewIncremental(s)
	if err := inc.Flush(); err != nil {
		t.Fatal(err)
	}
	classes, err := inc.Classes()
	if err != nil || len(classes) != 0 {
		t.Fatalf("classes = %v, err = %v", classes, err)
	}
}
