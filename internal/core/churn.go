package core

import (
	"context"
	"fmt"
)

// This file is the churn face of the incremental sorter: elements leave
// (Delete) and classes get withdrawn for re-verification
// (InvalidateClass) on the same flat Answer layout the insert path
// builds. Both mutations compact the live backing in place — one
// memmove over the element slice plus an offset-table shift — so they
// never reallocate, never flip the double buffers, and leave the
// answer in exactly the state a fresh build of the surviving classes
// would produce. That in-place determinism is what lets the service
// WAL-log deletes and invalidations as plain records and replay them
// bit-identically.

// Delete removes element e from the sorter entirely: from the pending
// buffer if it is still awaiting a flush, otherwise from the merged
// answer by compacting the flat backing in place. A class emptied by
// the removal disappears; deleting a class representative promotes the
// next member, which is sound because classes within an answer are
// mutually known-unequal. After Delete the element may be re-added
// later — the churn loop of a long-lived collection. It returns an
// error if e is out of range or not currently added.
func (inc *Incremental) Delete(e int) error {
	if e < 0 || e >= len(inc.seen) || !inc.seen[e] {
		return fmt.Errorf("core: element %d not added", e)
	}
	inc.seen[e] = false
	inc.added--
	for i, p := range inc.pending {
		if p == e {
			inc.pending = append(inc.pending[:i], inc.pending[i+1:]...)
			return nil
		}
	}
	ci, pos, ok := inc.locate(e)
	if !ok {
		panic("core: element added and flushed but not in any class")
	}
	inc.removeAt(ci, pos)
	return nil
}

// InvalidateClass withdraws merged class ci (by current class index):
// its members leave the answer and re-enter the pending buffer in
// class-storage order, so the next Flush re-verifies them against the
// oracle from scratch. The members stay added (Has keeps reporting
// true) and are returned as a fresh slice. This is the repair
// primitive: re-queued members re-merge against every surviving
// representative, so both a wrong merge (split repair) and a wrong
// split (merge repair) converge after invalidating the classes
// involved.
func (inc *Incremental) InvalidateClass(ci int) ([]int, error) {
	if ci < 0 || ci >= inc.answer.K() {
		return nil, fmt.Errorf("core: class %d out of range [0,%d)", ci, inc.answer.K())
	}
	cls := inc.answer.Class(ci)
	members := make([]int, len(cls))
	copy(members, cls)
	inc.pending = append(inc.pending, members...)

	elems, offs := inc.answer.elems, inc.answer.offs
	lo, hi := offs[ci], offs[ci+1]
	copy(elems[lo:], elems[hi:])
	elems = elems[:len(elems)-(hi-lo)]
	copy(offs[ci:], offs[ci+1:])
	offs = offs[:len(offs)-1]
	for i := ci; i < len(offs); i++ {
		offs[i] -= hi - lo
	}
	if len(elems) == 0 {
		inc.answer = Answer{}
	} else {
		inc.answer = Answer{elems: elems, offs: offs}
	}
	return members, nil
}

// InvalidateClassOf invalidates the merged class containing element e,
// returning the re-queued members. It fails if e has not been added,
// or is still pending — a buffered element has no merged class to
// withdraw.
func (inc *Incremental) InvalidateClassOf(e int) ([]int, error) {
	if e < 0 || e >= len(inc.seen) || !inc.seen[e] {
		return nil, fmt.Errorf("core: element %d not added", e)
	}
	ci, _, ok := inc.locate(e)
	if !ok {
		return nil, fmt.Errorf("core: element %d is pending, no merged class to invalidate", e)
	}
	return inc.InvalidateClass(ci)
}

// SetContext rebinds the underlying session's context for subsequent
// flushes; see model.Session.SetContext. The service bounds each fold
// with a cancelable context so a tripped oracle circuit breaker aborts
// the fold between rounds instead of wedging the shard goroutine.
func (inc *Incremental) SetContext(ctx context.Context) {
	inc.session.SetContext(ctx)
}

// locate finds the merged class containing element e, returning its
// class index and absolute position in the flat backing. ok is false
// when e is not in the merged answer (never added, deleted, or still
// pending).
func (inc *Incremental) locate(e int) (ci, pos int, ok bool) {
	for i := 0; i < inc.answer.K(); i++ {
		cls := inc.answer.Class(i)
		for p, x := range cls {
			if x == e {
				return i, inc.answer.offs[i] + p, true
			}
		}
	}
	return 0, 0, false
}

// removeAt compacts the element at absolute position pos out of class
// ci: one memmove over the element backing, then an offset shift. Runs
// on the answer's live backing views, so no reallocation and no buffer
// flip.
func (inc *Incremental) removeAt(ci, pos int) {
	elems, offs := inc.answer.elems, inc.answer.offs
	copy(elems[pos:], elems[pos+1:])
	elems = elems[:len(elems)-1]
	for i := ci + 1; i < len(offs); i++ {
		offs[i]--
	}
	if offs[ci] == offs[ci+1] {
		copy(offs[ci+1:], offs[ci+2:])
		offs = offs[:len(offs)-1]
	}
	if len(elems) == 0 {
		inc.answer = Answer{}
	} else {
		inc.answer = Answer{elems: elems, offs: offs}
	}
}
