package core

import (
	"errors"
	"math/rand"
	"testing"

	"ecsort/internal/model"
	"ecsort/internal/oracle"
)

func constCfg(lambda float64, d int, seed int64) ConstRoundConfig {
	return ConstRoundConfig{
		Lambda:     lambda,
		D:          d,
		MaxRetries: 3,
		Rng:        rand.New(rand.NewSource(seed)),
	}
}

func TestConstRoundCorrectBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, tc := range []struct {
		n, k   int
		lambda float64
	}{
		{30, 3, 0.3}, {100, 3, 0.3}, {90, 2, 0.4}, {200, 4, 0.2},
	} {
		truth := oracle.RandomBalanced(tc.n, tc.k, rng)
		s := model.NewSession(truth, model.ER)
		res, err := SortConstRoundER(s, constCfg(tc.lambda, 0, 33))
		if err != nil {
			t.Fatalf("n=%d k=%d λ=%v: %v", tc.n, tc.k, tc.lambda, err)
		}
		checkResult(t, res, truth)
	}
}

func TestConstRoundTinyInputs(t *testing.T) {
	for _, labels := range [][]int{{0}, {0, 0}, {0, 1}} {
		truth := oracle.NewLabel(labels)
		s := model.NewSession(truth, model.ER)
		res, err := SortConstRoundER(s, constCfg(0.4, 0, 1))
		if err != nil {
			t.Fatalf("labels %v: %v", labels, err)
		}
		checkResult(t, res, truth)
	}
}

func TestConstRoundEmpty(t *testing.T) {
	truth := oracle.NewLabel(nil)
	s := model.NewSession(truth, model.ER)
	res, err := SortConstRoundER(s, constCfg(0.4, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Classes) != 0 {
		t.Fatalf("classes = %v", res.Classes)
	}
}

func TestConstRoundValidation(t *testing.T) {
	truth := oracle.NewLabel([]int{0, 0, 1, 1})
	s := model.NewSession(truth, model.ER)
	if _, err := SortConstRoundER(s, ConstRoundConfig{Lambda: 0.5, Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("lambda > 0.4 accepted")
	}
	if _, err := SortConstRoundER(s, ConstRoundConfig{Lambda: 0.3}); err == nil {
		t.Error("nil rng accepted")
	}
	crs := model.NewSession(truth, model.CR)
	if _, err := SortConstRoundER(crs, constCfg(0.3, 0, 1)); err == nil {
		t.Error("CR session accepted")
	}
}

// TestConstRoundFailsGracefullyOnTinyClasses: when the smallest class is
// far below λn and D is small, the algorithm should admit failure rather
// than return a wrong answer.
func TestConstRoundFailsGracefullyOnTinyClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	// 1 lone element among 199 others: ℓ/n = 0.005 « λ = 0.4.
	sizes := []int{1, 99, 100}
	truth := oracle.RandomSizes(sizes, rng)
	s := model.NewSession(truth, model.ER)
	res, err := SortConstRoundER(s, ConstRoundConfig{
		Lambda:     0.4,
		D:          2,
		MaxRetries: 2,
		Rng:        rand.New(rand.NewSource(5)),
	})
	if err == nil {
		// If it succeeded anyway, the answer must still be right (the
		// algorithm only returns complete classifications).
		checkResult(t, res, truth)
		return
	}
	if !errors.Is(err, ErrConstRoundFailed) {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestTheorem4ConstantRounds: for fixed λ the number of rounds must not
// grow with n.
func TestTheorem4ConstantRounds(t *testing.T) {
	lambda := 0.3
	d := 8 // modest constant; retries cover the rare failures
	roundsAt := func(n int) int {
		truth := oracle.RandomBalanced(n, 3, rand.New(rand.NewSource(int64(n))))
		s := model.NewSession(truth, model.ER)
		res, err := SortConstRoundER(s, ConstRoundConfig{
			Lambda:     lambda,
			D:          d,
			MaxRetries: 6,
			Rng:        rand.New(rand.NewSource(int64(n) * 7)),
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got := len(res.Classes); got != 3 {
			t.Fatalf("n=%d: got %d classes, want 3", n, got)
		}
		return s.Stats().Rounds
	}
	small := roundsAt(300)
	large := roundsAt(4800)
	// Allow slack for odd/even cycle splits and retries, but a
	// logarithmic or worse growth would blow this out.
	if large > 3*small+30 {
		t.Errorf("rounds grew with n: %d at n=300 vs %d at n=4800", small, large)
	}
}

// TestConstRoundRetryOnUnluckyDraw: with D=1 failures are common; the
// retry loop must still converge or fail cleanly, never mis-classify.
func TestConstRoundRetrySafety(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		truth := oracle.RandomBalanced(60, 3, rng)
		s := model.NewSession(truth, model.ER)
		res, err := SortConstRoundER(s, ConstRoundConfig{
			Lambda:     0.3,
			D:          1,
			MaxRetries: 4,
			Rng:        rand.New(rand.NewSource(int64(trial))),
		})
		if err != nil {
			if !errors.Is(err, ErrConstRoundFailed) {
				t.Fatalf("trial %d: unexpected error %v", trial, err)
			}
			continue
		}
		checkResult(t, res, truth)
	}
}

// TestConstRoundStrictSCC: the literal Theorem 3 reading (directed SCC
// anchors) must agree with the default undirected-component variant.
func TestConstRoundStrictSCC(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for trial := 0; trial < 8; trial++ {
		truth := oracle.RandomBalanced(120, 3, rng)
		strict := model.NewSession(truth, model.ER)
		res, err := SortConstRoundER(strict, ConstRoundConfig{
			Lambda:     0.2,
			D:          10,
			MaxRetries: 5,
			StrictSCC:  true,
			Rng:        rand.New(rand.NewSource(int64(trial))),
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkResult(t, res, truth)
	}
}

// TestConstRoundStrictSCCNeverLargerAnchors: directed SCCs are contained
// in undirected components, so the strict variant can only see smaller or
// equal anchors — with enough cycles both succeed, and the strict one
// never spends fewer comparisons on sweeps.
func TestConstRoundStrictSCCCost(t *testing.T) {
	truth := oracle.RandomBalanced(200, 2, rand.New(rand.NewSource(26)))
	run := func(strict bool) int64 {
		s := model.NewSession(truth, model.ER)
		_, err := SortConstRoundER(s, ConstRoundConfig{
			Lambda:     0.3,
			D:          12,
			MaxRetries: 5,
			StrictSCC:  strict,
			Rng:        rand.New(rand.NewSource(27)),
		})
		if err != nil {
			t.Fatalf("strict=%v: %v", strict, err)
		}
		return s.Stats().Comparisons
	}
	loose := run(false)
	strict := run(true)
	if strict < loose {
		t.Errorf("strict SCC variant cheaper (%d) than undirected (%d): anchors cannot be larger",
			strict, loose)
	}
}

// TestLambdaHalvingRecipe exercises the paper's remark: when λ is unknown,
// halve a failing guess until the algorithm succeeds.
func TestLambdaHalvingRecipe(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	truth := oracle.RandomSizes([]int{30, 70, 100}, rng) // ℓ/n = 0.15
	s := model.NewSession(truth, model.ER)
	lambda := 0.4
	for {
		res, err := SortConstRoundER(s, ConstRoundConfig{
			Lambda:     lambda,
			D:          10,
			MaxRetries: 1,
			Rng:        rand.New(rand.NewSource(77)),
		})
		if err == nil {
			checkResult(t, res, truth)
			return
		}
		if !errors.Is(err, ErrConstRoundFailed) {
			t.Fatal(err)
		}
		lambda /= 2
		if lambda < 1e-3 {
			t.Fatal("halving recipe never succeeded")
		}
	}
}
