package core

import "ecsort/internal/model"

// Naive is the straightforward sequential baseline: maintain one
// representative per discovered class and compare each new element against
// the representatives in discovery order until it matches or founds a new
// class. It performs at most n·k comparisons — within the O(n²/ℓ) bound of
// the sequential literature, since k ≤ n/ℓ — and serves as the comparison
// baseline for the round-robin regimen and the parallel algorithms.
func Naive(s *model.Session) (Result, error) {
	n := s.N()
	if n == 0 {
		return Result{Stats: s.Stats()}, nil
	}
	classes := [][]int{{0}}
	for x := 1; x < n; x++ {
		// Compare cannot report cancellation; poll between rounds.
		if err := s.Err(); err != nil {
			return Result{}, err
		}
		placed := false
		for ci := range classes {
			if s.Compare(classes[ci][0], x) {
				classes[ci] = append(classes[ci], x)
				placed = true
				break
			}
		}
		if !placed {
			classes = append(classes, []int{x})
		}
	}
	return Result{Classes: classes, Stats: s.Stats()}, nil
}
