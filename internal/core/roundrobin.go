package core

import (
	"fmt"

	"ecsort/internal/knowledge"
	"ecsort/internal/model"
)

// RoundRobin is the sequential equivalence class sorting regimen of
// Jayapaul, Munro, Raman, and Satti used for the distribution-based
// analysis of Section 4: each element x, in cyclic passes, initiates a
// comparison with the next element y whose relationship to x is unknown,
// until all equivalence classes are known.
//
// "Unknown" is judged against the full knowledge graph (Figure 2): x's
// fragment must have no recorded relationship with y's fragment. The key
// property this regimen guarantees — Lemma in [12], relied on by Theorem 7
// — is that at most 2·min(Y_i, Y_j) tests ever occur between classes of
// sizes Y_i and Y_j.
//
// Every comparison is charged as one sequential round; the quantity of
// interest here is Stats().Comparisons.
func RoundRobin(s *model.Session) (Result, error) {
	n := s.N()
	if n == 0 {
		return Result{Stats: s.Stats()}, nil
	}
	g := knowledge.New(n)
	// ptr[x] counts how many cyclic successors of x have been either
	// tested or skipped; the next candidate is (x + 1 + ptr[x]) mod n.
	// Pointers only advance, so each element scans each other element at
	// most once over the whole run.
	ptr := make([]int, n)
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	for !g.Complete() {
		progress := false
		still := active[:0]
		for _, x := range active {
			// Comparisons go through Compare (one sequential round each),
			// which cannot report cancellation — poll the session context
			// here so a cancelled sort stops between rounds.
			if err := s.Err(); err != nil {
				return Result{}, err
			}
			if g.DoneFor(x) {
				continue
			}
			if roundRobinStep(s, g, ptr, x) {
				progress = true
			}
			still = append(still, x)
		}
		active = still
		if !progress {
			if !g.Complete() {
				return Result{}, fmt.Errorf("core: round-robin stalled with %d fragments, %d edges", g.Fragments(), g.Edges())
			}
			break
		}
	}
	return Result{Classes: g.Groups(), Stats: s.Stats()}, nil
}

// roundRobinStep advances x's pointer past known relationships and
// performs at most one comparison. It reports whether a comparison
// happened.
func roundRobinStep(s *model.Session, g *knowledge.Graph, ptr []int, x int) bool {
	n := g.N()
	for ptr[x] < n-1 {
		y := (x + 1 + ptr[x]) % n
		if _, known := g.Known(x, y); known {
			ptr[x]++
			continue
		}
		ptr[x]++
		if s.Compare(x, y) {
			g.RecordEqual(x, y)
		} else {
			g.RecordUnequal(x, y)
		}
		return true
	}
	return false
}

// CrossClassAudit runs the round-robin regimen against a truth labeling
// and returns, for every unordered pair of true classes (i, j), the number
// of tests performed between them. Tests use the same session; the audit
// exists so tests can check the 2·min(Y_i, Y_j) lemma that Theorem 7's
// stochastic-dominance argument rests on.
func CrossClassAudit(s *model.Session, truth []int) (Result, map[[2]int]int, error) {
	audit := make(map[[2]int]int)
	counting := &auditOracle{inner: s, truth: truth, audit: audit}
	res, err := RoundRobin(model.NewSession(counting, s.Mode(), model.Workers(1)))
	if err != nil {
		return Result{}, nil, err
	}
	// Replace stats with the inner session's (the outer session double
	// counts nothing: counting forwards to s.Compare which accounts).
	res.Stats = s.Stats()
	return res, audit, nil
}

// auditOracle forwards comparisons to an underlying session while tallying
// them per true-class pair.
type auditOracle struct {
	inner *model.Session
	truth []int
	audit map[[2]int]int
}

func (a *auditOracle) N() int { return len(a.truth) }

func (a *auditOracle) Same(i, j int) bool {
	ci, cj := a.truth[i], a.truth[j]
	if ci > cj {
		ci, cj = cj, ci
	}
	a.audit[[2]int{ci, cj}]++
	return a.inner.Compare(i, j)
}
