package core

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"

	"ecsort/internal/model"
	"ecsort/internal/oracle"
)

// The golden tests freeze the merge engine's observable semantics: for
// fixed seeds, every algorithm must charge exactly the same comparisons,
// physical rounds, and widest round, and emit exactly the same partition,
// as the reference implementation did before the flat-storage rewrite
// (the map-keyed engine of PR ≤ 2). Any refactor of the hot path must
// keep these numbers bit-for-bit — layout and allocation discipline may
// change, the model-level accounting may not.

// partitionFingerprint hashes the canonical form of a partition.
func partitionFingerprint(classes [][]int) uint64 {
	r := Result{Classes: classes}
	h := fnv.New64a()
	for _, cls := range r.Canonical() {
		for _, e := range cls {
			fmt.Fprintf(h, "%d,", e)
		}
		fmt.Fprintf(h, ";")
	}
	return h.Sum64()
}

type goldenCase struct {
	name         string
	comparisons  int64
	rounds       int
	maxRoundSize int
	fingerprint  uint64
}

// Captured from the pre-rewrite engine at commit 85ba685.
var goldenCases = []goldenCase{
	{"SortCR/n=4096/k=8/seed=7", 35470, 13, 4096, 0x84a87755d67b3c9b},
	{"SortCR/n=1000/k=3/seed=11", 3569, 8, 729, 0xf4736a3fe523b394},
	{"SortCR/n=100/k=10/seed=12", 909, 11, 100, 0xea5848df44aa14d7},
	{"SortCRUnknownK/n=2048/k=5/seed=13", 11425, 11, 2048, 0x89be98f4310c57ec},
	{"SortER/n=1024/k=6/seed=17", 3915, 49, 512, 0xc3c680dc821ccfef},
	{"SortCRPairwiseOnly/n=512/k=4/seed=19", 1985, 9, 457, 0x32d21e2506846511},
	{"SortCREagerGroups/n=512/k=4/seed=19", 3580, 9, 512, 0x32d21e2506846511},
	{"Incremental/n=2048/k=8/seed=23/batch=192", 206336, 104, 2048, 0xba0007a7d8bd8735},
	{"SortCR/n=500/k=6/seed=29/procs=97", 3007, 35, 97, 0x7671511128f1e65b},
}

func TestGoldenStatsAndPartitions(t *testing.T) {
	results := map[string]Result{}
	run := func(name string, res Result, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		results[name] = res
	}

	for _, tc := range []struct {
		n, k int
		seed int64
	}{{4096, 8, 7}, {1000, 3, 11}, {100, 10, 12}} {
		truth := oracle.RandomBalanced(tc.n, tc.k, rand.New(rand.NewSource(tc.seed)))
		s := model.NewSession(truth, model.CR)
		res, err := SortCR(s, tc.k)
		run(fmt.Sprintf("SortCR/n=%d/k=%d/seed=%d", tc.n, tc.k, tc.seed), res, err)
	}
	{
		truth := oracle.RandomBalanced(2048, 5, rand.New(rand.NewSource(13)))
		res, err := SortCRUnknownK(model.NewSession(truth, model.CR))
		run("SortCRUnknownK/n=2048/k=5/seed=13", res, err)
	}
	{
		truth := oracle.RandomBalanced(1024, 6, rand.New(rand.NewSource(17)))
		res, err := SortER(model.NewSession(truth, model.ER))
		run("SortER/n=1024/k=6/seed=17", res, err)
	}
	{
		truth := oracle.RandomBalanced(512, 4, rand.New(rand.NewSource(19)))
		res, err := SortCRPairwiseOnly(model.NewSession(truth, model.CR), 4)
		run("SortCRPairwiseOnly/n=512/k=4/seed=19", res, err)
		res2, err2 := SortCREagerGroups(model.NewSession(truth, model.CR), 4)
		run("SortCREagerGroups/n=512/k=4/seed=19", res2, err2)
	}
	{
		truth := oracle.RandomBalanced(2048, 8, rand.New(rand.NewSource(23)))
		inc, err := NewIncremental(model.NewSession(truth, model.CR))
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < 2048; e++ {
			if err := inc.Add(e); err != nil {
				t.Fatal(err)
			}
			if e%192 == 191 {
				if err := inc.Flush(); err != nil {
					t.Fatal(err)
				}
			}
		}
		classes, err := inc.Classes()
		if err != nil {
			t.Fatal(err)
		}
		run("Incremental/n=2048/k=8/seed=23/batch=192",
			Result{Classes: classes, Stats: inc.Stats()}, nil)
	}
	{
		truth := oracle.RandomBalanced(500, 6, rand.New(rand.NewSource(29)))
		s := model.NewSession(truth, model.CR, model.Processors(97))
		res, err := SortCR(s, 6)
		run("SortCR/n=500/k=6/seed=29/procs=97", res, err)
	}

	for _, g := range goldenCases {
		res, ok := results[g.name]
		if !ok {
			t.Errorf("%s: scenario not executed", g.name)
			continue
		}
		if res.Stats.Comparisons != g.comparisons {
			t.Errorf("%s: comparisons = %d, golden %d", g.name, res.Stats.Comparisons, g.comparisons)
		}
		if res.Stats.Rounds != g.rounds {
			t.Errorf("%s: rounds = %d, golden %d", g.name, res.Stats.Rounds, g.rounds)
		}
		if res.Stats.MaxRoundSize != g.maxRoundSize {
			t.Errorf("%s: max round size = %d, golden %d", g.name, res.Stats.MaxRoundSize, g.maxRoundSize)
		}
		if fp := partitionFingerprint(res.Classes); fp != g.fingerprint {
			t.Errorf("%s: partition fingerprint = %#x, golden %#x", g.name, fp, g.fingerprint)
		}
	}
}
