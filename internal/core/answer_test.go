package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ecsort/internal/model"
	"ecsort/internal/oracle"
)

func TestSingletons(t *testing.T) {
	answers := Singletons(3)
	if len(answers) != 3 {
		t.Fatalf("answers = %d", len(answers))
	}
	for i, a := range answers {
		if a.K() != 1 || a.Size() != 1 || a.Class(0)[0] != i {
			t.Fatalf("answer %d = %+v", i, a)
		}
	}
}

func TestAnswerAccessors(t *testing.T) {
	a := NewAnswer([][]int{{4, 7}, {1}, {2, 3, 5}})
	if a.K() != 3 || a.Size() != 6 {
		t.Fatalf("K=%d Size=%d", a.K(), a.Size())
	}
	reps := a.Reps()
	if reps[0] != 4 || reps[1] != 1 || reps[2] != 2 {
		t.Fatalf("reps = %v", reps)
	}
	if a.Rep(2) != 2 || len(a.Class(2)) != 3 {
		t.Fatalf("class 2 = %v", a.Class(2))
	}
	if len(a.Elements()) != 6 {
		t.Fatalf("elements = %v", a.Elements())
	}
	classes := a.Classes()
	if len(classes) != 3 || classes[2][1] != 3 {
		t.Fatalf("classes = %v", classes)
	}
	// Classes copies: mutating the materialized view must not touch a.
	classes[0][0] = 99
	if a.Rep(0) != 4 {
		t.Fatal("Classes aliases the answer's backing")
	}
}

// buildAnswer groups a set of elements by their true labels.
func buildAnswer(elems []int, labels []int) Answer {
	byClass := map[int][]int{}
	var order []int
	for _, e := range elems {
		l := labels[e]
		if _, ok := byClass[l]; !ok {
			order = append(order, l)
		}
		byClass[l] = append(byClass[l], e)
	}
	classes := make([][]int, 0, len(order))
	for _, l := range order {
		classes = append(classes, byClass[l])
	}
	return NewAnswer(classes)
}

// answerMatchesTruth checks an answer is the exact classification of its
// elements under labels.
func answerMatchesTruth(a Answer, labels []int) bool {
	seen := map[int]bool{}
	classOfLabel := map[int]int{}
	for ci, cls := range a.Classes() {
		if len(cls) == 0 {
			return false
		}
		l := labels[cls[0]]
		if _, dup := classOfLabel[l]; dup {
			return false // same true class split across answer classes
		}
		classOfLabel[l] = ci
		for _, e := range cls {
			if labels[e] != l || seen[e] {
				return false
			}
			seen[e] = true
		}
	}
	return true
}

func TestMergePairCRAndER(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(5)
		}
		truth := oracle.NewLabel(labels)
		// Split elements into two disjoint sets.
		cut := 1 + rng.Intn(n-2)
		var left, right []int
		for i := 0; i < n; i++ {
			if i < cut {
				left = append(left, i)
			} else {
				right = append(right, i)
			}
		}
		a := buildAnswer(left, labels)
		b := buildAnswer(right, labels)

		cr := model.NewSession(truth, model.CR)
		mergedCR, err := MergePairCR(cr, a, b)
		if err != nil || !answerMatchesTruth(mergedCR, labels) {
			return false
		}
		// CR pair merge costs K(a)·K(b) comparisons in one logical round.
		if cr.Stats().Comparisons != int64(a.K()*b.K()) {
			return false
		}

		er := model.NewSession(truth, model.ER)
		mergedER, err := MergePairER(er, a, b)
		if err != nil || !answerMatchesTruth(mergedER, labels) {
			return false
		}
		// ER merge never exceeds max(K(a),K(b)) rounds or K(a)·K(b)
		// comparisons.
		if er.Stats().Rounds > max(a.K(), b.K()) {
			return false
		}
		if er.Stats().Comparisons > int64(a.K()*b.K()) {
			return false
		}
		return mergedER.Size() == n && mergedCR.Size() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestMergeERSavesComparisons: the matched-class skip should usually do
// strictly better than the full K(a)·K(b) grid when classes match.
func TestMergeERSavesComparisons(t *testing.T) {
	labels := []int{0, 1, 2, 0, 1, 2}
	truth := oracle.NewLabel(labels)
	a := buildAnswer([]int{0, 1, 2}, labels)
	b := buildAnswer([]int{3, 4, 5}, labels)
	s := model.NewSession(truth, model.ER)
	merged, err := MergePairER(s, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if merged.K() != 3 {
		t.Fatalf("K = %d, want 3", merged.K())
	}
	// Diagonal matching: rotation round 0 matches everything, so only 3
	// comparisons happen instead of 9.
	if c := s.Stats().Comparisons; c != 3 {
		t.Fatalf("comparisons = %d, want 3 (diagonal match)", c)
	}
}

func TestMergeGroupCR(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(40)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(4)
		}
		truth := oracle.NewLabel(labels)
		// Split into 3–5 random groups.
		groups := 3 + rng.Intn(3)
		parts := make([][]int, groups)
		for i := 0; i < n; i++ {
			g := rng.Intn(groups)
			parts[g] = append(parts[g], i)
		}
		var answers []Answer
		for _, p := range parts {
			if len(p) > 0 {
				answers = append(answers, buildAnswer(p, labels))
			}
		}
		if len(answers) < 2 {
			return true
		}
		s := model.NewSession(truth, model.CR)
		merged, err := MergeGroupCR(s, answers)
		if err != nil {
			return false
		}
		return answerMatchesTruth(merged, labels) && merged.Size() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeGroupCRSingle(t *testing.T) {
	a := NewAnswer([][]int{{0}})
	s := model.NewSession(oracle.NewLabel([]int{0}), model.CR)
	out, err := MergeGroupCR(s, []Answer{a})
	if err != nil || out.K() != 1 {
		t.Fatalf("single group merge: %v %+v", err, out)
	}
	if _, err := MergeGroupCR(s, nil); err == nil {
		t.Fatal("empty group accepted")
	}
}

func TestMergeModeEnforcement(t *testing.T) {
	truth := oracle.NewLabel([]int{0, 1})
	er := model.NewSession(truth, model.ER)
	a, b := Singleton(0), Singleton(1)
	if _, err := MergePairCR(er, a, b); err == nil {
		t.Fatal("MergePairCR accepted ER session")
	}
	if _, err := MergeGroupCR(er, []Answer{a, b}); err == nil {
		t.Fatal("MergeGroupCR accepted ER session")
	}
}

func TestResultCanonicalAndLabels(t *testing.T) {
	r := Result{Classes: [][]int{{5, 2}, {1, 4, 0}, {3}}}
	canon := r.Canonical()
	want := [][]int{{0, 1, 4}, {2, 5}, {3}}
	for i := range want {
		if len(canon[i]) != len(want[i]) {
			t.Fatalf("canonical = %v", canon)
		}
		for j := range want[i] {
			if canon[i][j] != want[i][j] {
				t.Fatalf("canonical = %v", canon)
			}
		}
	}
	labels := r.Labels(6)
	wantLabels := []int{0, 0, 1, 2, 0, 1}
	for i := range wantLabels {
		if labels[i] != wantLabels[i] {
			t.Fatalf("labels = %v, want %v", labels, wantLabels)
		}
	}
	// Uncovered elements get -1.
	partial := Result{Classes: [][]int{{0}}}
	if l := partial.Labels(2); l[1] != -1 {
		t.Fatalf("uncovered label = %d, want -1", l[1])
	}
}

func TestSameClassification(t *testing.T) {
	if !SameClassification([]int{0, 0, 1}, []int{5, 5, 9}) {
		t.Error("identical partitions rejected")
	}
	if SameClassification([]int{0, 0, 1}, []int{0, 1, 1}) {
		t.Error("different partitions accepted")
	}
	if SameClassification([]int{0}, []int{0, 1}) {
		t.Error("length mismatch accepted")
	}
	if !SameClassification(nil, nil) {
		t.Error("empty partitions rejected")
	}
	// Injectivity both ways: a refines b but b doesn't refine a.
	if SameClassification([]int{0, 1, 2}, []int{0, 0, 1}) {
		t.Error("refinement accepted as equality")
	}
	if SameClassification([]int{0, 0, 1}, []int{0, 1, 2}) {
		t.Error("coarsening accepted as equality")
	}
}

func TestSortCRUnknownK(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, tc := range []struct{ n, k int }{
		{1, 1}, {10, 3}, {64, 8}, {200, 5}, {333, 17},
	} {
		truth := oracle.RandomBalanced(tc.n, tc.k, rng)
		s := model.NewSession(truth, model.CR)
		res, err := SortCRUnknownK(s)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		checkResult(t, res, truth)
	}
}

func TestSortCRUnknownKModeCheck(t *testing.T) {
	truth := oracle.NewLabel([]int{0, 1})
	if _, err := SortCRUnknownK(model.NewSession(truth, model.ER)); err == nil {
		t.Fatal("ER session accepted")
	}
}

// TestSortCRUnknownKRoundsComparable: the adaptive variant should not
// spend wildly more rounds than the informed one.
func TestSortCRUnknownKRoundsComparable(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	truth := oracle.RandomBalanced(4096, 8, rng)
	informed := model.NewSession(truth, model.CR)
	if _, err := SortCR(informed, 8); err != nil {
		t.Fatal(err)
	}
	adaptive := model.NewSession(truth, model.CR)
	if _, err := SortCRUnknownK(adaptive); err != nil {
		t.Fatal(err)
	}
	if adaptive.Stats().Rounds > 4*informed.Stats().Rounds+16 {
		t.Errorf("adaptive rounds %d vs informed %d", adaptive.Stats().Rounds, informed.Stats().Rounds)
	}
}

func TestSortConstRoundERAdaptive(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	// ℓ/n = 0.1 < 0.4: the starting guess may or may not fail (success
	// only needs a component of λn/8 per class, which is weaker than
	// ℓ ≥ λn), but the recipe must end with a correct classification at
	// some λ ∈ (0, 0.4].
	truth := oracle.RandomSizes([]int{20, 80, 100}, rng)
	s := model.NewSession(truth, model.ER)
	res, lambda, err := SortConstRoundERAdaptive(s, AdaptiveConstRoundConfig{
		D:          10,
		MaxRetries: 2,
		Rng:        rand.New(rand.NewSource(64)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if lambda <= 0 || lambda > 0.4 {
		t.Errorf("returned λ=%v outside (0, 0.4]", lambda)
	}
	checkResult(t, res, truth)
}

// TestSortConstRoundERAdaptiveMustHalve forces failures with a skewed
// input and D=1 (sparse random graph): the recipe should still converge
// or exhaust cleanly.
func TestSortConstRoundERAdaptiveMustHalve(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	truth := oracle.RandomSizes([]int{5, 95, 100}, rng) // ℓ/n = 0.025
	s := model.NewSession(truth, model.ER)
	res, lambda, err := SortConstRoundERAdaptive(s, AdaptiveConstRoundConfig{
		D:          6,
		MaxRetries: 3,
		Rng:        rand.New(rand.NewSource(66)),
	})
	if err != nil {
		if !errors.Is(err, ErrAdaptiveExhausted) {
			t.Fatalf("unexpected error: %v", err)
		}
		return
	}
	if lambda <= 0 || lambda > 0.4 {
		t.Errorf("returned λ=%v outside (0, 0.4]", lambda)
	}
	checkResult(t, res, truth)
}

func TestSortConstRoundERAdaptiveValidation(t *testing.T) {
	truth := oracle.NewLabel([]int{0, 0, 1, 1})
	s := model.NewSession(truth, model.ER)
	if _, _, err := SortConstRoundERAdaptive(s, AdaptiveConstRoundConfig{}); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, _, err := SortConstRoundERAdaptive(s, AdaptiveConstRoundConfig{
		StartLambda: 0.7, Rng: rand.New(rand.NewSource(1)),
	}); err == nil {
		t.Fatal("StartLambda 0.7 accepted")
	}
}
