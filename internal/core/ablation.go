package core

import (
	"fmt"

	"ecsort/internal/model"
)

// Ablations of the Theorem 1 design, used by the benchmark suite to show
// that each ingredient of the two-phase compounding-comparison technique
// earns its keep (see DESIGN.md's experiment index).

// SortCRPairwiseOnly is SortCR with phase 2 disabled: answers are only
// ever merged in pairs, all the way to a single answer. Without the
// compounding step the answer count halves per iteration, so the
// algorithm needs Θ(log n) iterations after the classes saturate —
// Θ(k + log n) rounds instead of Θ(k + log log n). Correctness is
// unaffected; the ablation isolates the value of group compounding.
func SortCRPairwiseOnly(s *model.Session, k int) (Result, error) {
	if s.Mode() != model.CR {
		return Result{}, fmt.Errorf("core: SortCRPairwiseOnly requires a CR session, got %v", s.Mode())
	}
	if k < 1 {
		return Result{}, fmt.Errorf("core: SortCRPairwiseOnly needs k >= 1, got %d", k)
	}
	n := s.N()
	if n == 0 {
		return Result{Stats: s.Stats()}, nil
	}
	ar, answers := newCRArena(n)
	for len(answers) > 1 {
		next, err := mergePairsCR(s, ar, answers)
		if err != nil {
			return Result{}, err
		}
		answers = next
	}
	return Result{Classes: answers[0].Classes(), Stats: s.Stats()}, nil
}

// SortCREagerGroups is SortCR with phase 1 disabled: it jumps straight to
// group merging with whatever processor ratio is available. With few
// processors per answer the early group rounds blow past the budget and
// must be split into many physical rounds — the ablation isolates why
// phase 1 must first build up 4k² processors per answer.
func SortCREagerGroups(s *model.Session, k int) (Result, error) {
	if s.Mode() != model.CR {
		return Result{}, fmt.Errorf("core: SortCREagerGroups requires a CR session, got %v", s.Mode())
	}
	if k < 1 {
		return Result{}, fmt.Errorf("core: SortCREagerGroups needs k >= 1, got %d", k)
	}
	n := s.N()
	if n == 0 {
		return Result{Stats: s.Stats()}, nil
	}
	p := n
	ar, answers := newCRArena(n)
	for len(answers) > 1 {
		c := p / (len(answers) * k * k)
		if c < 2 {
			c = 2
		}
		g := 2*c + 1
		if g > len(answers) {
			g = len(answers)
		}
		next, err := mergeGroupsCR(s, ar, answers, g)
		if err != nil {
			return Result{}, err
		}
		answers = next
	}
	return Result{Classes: answers[0].Classes(), Stats: s.Stats()}, nil
}
