package core

import (
	"fmt"
	"math/rand"
	"testing"

	"ecsort/internal/model"
	"ecsort/internal/oracle"
	rt "ecsort/internal/runtime"
)

// The parallel determinism guarantee of the persistent round runtime:
// results are written by index, so at ANY Workers value the partitions,
// comparisons, physical rounds, and widest round must stay bit-identical
// to Workers(1) — which the golden cases pin to the pre-rewrite engine.

func goldenByName(t *testing.T, name string) goldenCase {
	t.Helper()
	for _, g := range goldenCases {
		if g.name == name {
			return g
		}
	}
	t.Fatalf("no golden case %q", name)
	return goldenCase{}
}

func checkGolden(t *testing.T, label string, g goldenCase, res Result) {
	t.Helper()
	if res.Stats.Comparisons != g.comparisons {
		t.Errorf("%s: comparisons = %d, golden %d", label, res.Stats.Comparisons, g.comparisons)
	}
	if res.Stats.Rounds != g.rounds {
		t.Errorf("%s: rounds = %d, golden %d", label, res.Stats.Rounds, g.rounds)
	}
	if res.Stats.MaxRoundSize != g.maxRoundSize {
		t.Errorf("%s: max round size = %d, golden %d", label, res.Stats.MaxRoundSize, g.maxRoundSize)
	}
	if fp := partitionFingerprint(res.Classes); fp != g.fingerprint {
		t.Errorf("%s: partition fingerprint = %#x, golden %#x", label, fp, g.fingerprint)
	}
}

// hideBatch masks an oracle's batch capability: its method set is
// exactly N/Same, so sessions over it take the per-pair path.
type hideBatch struct{ o model.Oracle }

func (h hideBatch) N() int             { return h.o.N() }
func (h hideBatch) Same(i, j int) bool { return h.o.Same(i, j) }

// TestParallelGoldenBatchOracle pins batch-vs-pairwise equivalence
// against the recorded goldens: oracle.Label answers whole chunks via
// SameBatch, and hiding that capability must not move a single stat,
// round, or partition bit at any worker count. (The goldens themselves
// were recorded on the per-pair engine, so the batch runs here prove
// the dispatch rewrite is invisible.)
func TestParallelGoldenBatchOracle(t *testing.T) {
	pool := rt.NewPool(4)
	defer pool.Close()
	goldenCR := goldenByName(t, "SortCR/n=1000/k=3/seed=11")
	goldenER := goldenByName(t, "SortER/n=1024/k=6/seed=17")
	for _, workers := range []int{1, 4} {
		for _, hidden := range []bool{false, true} {
			label := fmt.Sprintf("workers=%d hidden=%v", workers, hidden)
			var oCR, oER model.Oracle
			oCR = oracle.RandomBalanced(1000, 3, rand.New(rand.NewSource(11)))
			oER = oracle.RandomBalanced(1024, 6, rand.New(rand.NewSource(17)))
			if _, ok := oCR.(model.BatchOracle); !ok {
				t.Fatal("oracle.Label must be batch-capable for this test to bite")
			}
			if hidden {
				oCR, oER = hideBatch{oCR}, hideBatch{oER}
			}
			s := model.NewSession(oCR, model.CR, model.Workers(workers), model.WithPool(pool))
			res, err := SortCR(s, 3)
			if err != nil {
				t.Fatalf("SortCR %s: %v", label, err)
			}
			checkGolden(t, "SortCR "+label, goldenCR, res)

			sER := model.NewSession(oER, model.ER, model.Workers(workers), model.WithPool(pool))
			resER, err := SortER(sER)
			if err != nil {
				t.Fatalf("SortER %s: %v", label, err)
			}
			checkGolden(t, "SortER "+label, goldenER, resER)
		}
	}
}

func TestParallelGoldenDeterminism(t *testing.T) {
	pool := rt.NewPool(4)
	defer pool.Close()
	goldenCR := goldenByName(t, "SortCR/n=1000/k=3/seed=11")
	goldenER := goldenByName(t, "SortER/n=1024/k=6/seed=17")
	for _, workers := range []int{1, 2, 3, 8} {
		truthCR := oracle.RandomBalanced(1000, 3, rand.New(rand.NewSource(11)))
		s := model.NewSession(truthCR, model.CR, model.Workers(workers), model.WithPool(pool))
		res, err := SortCR(s, 3)
		if err != nil {
			t.Fatalf("SortCR workers=%d: %v", workers, err)
		}
		checkGolden(t, fmt.Sprintf("SortCR workers=%d", workers), goldenCR, res)

		truthER := oracle.RandomBalanced(1024, 6, rand.New(rand.NewSource(17)))
		sER := model.NewSession(truthER, model.ER, model.Workers(workers), model.WithPool(pool))
		resER, err := SortER(sER)
		if err != nil {
			t.Fatalf("SortER workers=%d: %v", workers, err)
		}
		checkGolden(t, fmt.Sprintf("SortER workers=%d", workers), goldenER, resER)
	}
}
