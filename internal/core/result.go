package core

import (
	"sort"

	"ecsort/internal/model"
)

// Result is the output of an equivalence class sorting run: the classes
// found and the cost charged by the session that produced them.
type Result struct {
	// Classes partitions the elements into their equivalence classes.
	Classes [][]int
	// Stats is the session cost snapshot at completion.
	Stats model.Stats
	// Algorithm names the regimen that produced the result. The v2
	// Algorithm values fill it (Auto records the regimen it planned);
	// direct calls into this package leave it empty.
	Algorithm string
}

// NumClasses returns the number of classes found.
func (r Result) NumClasses() int { return len(r.Classes) }

// Canonical returns the classes with members sorted ascending and classes
// ordered by smallest member — a normal form for comparisons in tests.
func (r Result) Canonical() [][]int {
	out := make([][]int, len(r.Classes))
	for i, c := range r.Classes {
		cp := make([]int, len(c))
		copy(cp, c)
		sort.Ints(cp)
		out[i] = cp
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Labels returns a canonical labeling over n elements: elements in the
// same class share a label, labels assigned 0,1,... by order of each
// class's smallest member. Elements not covered by any class get label -1.
func (r Result) Labels(n int) []int {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	for li, c := range r.Canonical() {
		for _, e := range c {
			labels[e] = li
		}
	}
	return labels
}

// SameClassification reports whether two labelings induce the same
// partition (the actual label values are irrelevant).
func SameClassification(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := make(map[int]int)
	bwd := make(map[int]int)
	for i := range a {
		if v, ok := fwd[a[i]]; ok {
			if v != b[i] {
				return false
			}
		} else {
			fwd[a[i]] = b[i]
		}
		if v, ok := bwd[b[i]]; ok {
			if v != a[i] {
				return false
			}
		} else {
			bwd[b[i]] = a[i]
		}
	}
	return true
}
