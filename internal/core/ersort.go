package core

import (
	"fmt"

	"ecsort/internal/model"
)

// SortER solves equivalence class sorting in the exclusive-read model in
// O(k log n) parallel rounds using n processors (Theorem 2), where k is
// the number of equivalence classes. It runs a level-synchronous binary
// merge tree: at each of the ⌈log n⌉ levels, answers are merged in pairs,
// each merge taking at most k rounds of disjoint representative tests via
// the rotation schedule. Merges at one level cover disjoint element sets,
// so round r of every merge executes as a single parallel round; a level
// therefore costs max over its merges ≤ k rounds.
//
// SortER needs no knowledge of k. The session must be in ER mode.
//
// One arena serves the whole sort: level outputs double-buffer between
// two flat pools sized by n, rotation tests stream into one reusable
// batch, and every plan's match state is carved from level-wide backing,
// so — like the CR path — the ER steady state allocates nothing per
// merge or per rotation round.
func SortER(s *model.Session) (Result, error) {
	if s.Mode() != model.ER {
		return Result{}, fmt.Errorf("core: SortER requires an ER session, got %v", s.Mode())
	}
	n := s.N()
	if n == 0 {
		return Result{Stats: s.Stats()}, nil
	}
	final, err := sortERArena(s, newERArena(n))
	if err != nil {
		return Result{}, err
	}
	return Result{Classes: final.Classes(), Stats: s.Stats()}, nil
}

// sortERArena runs the Theorem 2 merge tree on a reusable arena and
// returns the final answer, which views the arena's pools — callers that
// outlive the arena must materialize it (Classes). Reusing one arena
// across sorts keeps the steady state allocation-free.
//
//ecsort:hotpath
func sortERArena(s *model.Session, ar *erArena) (Answer, error) {
	answers := ar.seedSingletons()
	for len(answers) > 1 {
		next, err := mergeLevelER(s, ar, answers)
		if err != nil {
			return Answer{}, err
		}
		ar.nextAns = answers // recycle the headers for the level after next
		answers = next
	}
	return answers[0], nil
}

// erArena is the reusable scratch of the ER merge tree: double-buffered
// flat pools for the answers of the current and next level (a level
// never covers more than n elements), the shared rotation batch and
// result buffer, and level-wide backing carved into per-plan match
// state. Buffers grow on demand and are retained across levels and
// sorts. An erArena is not safe for concurrent use.
type erArena struct {
	n int

	// elems/offs double-buffer the flat answer storage of the current
	// and next level; cur indexes the pool the live answers view.
	elems [2][]int
	offs  [2][]int
	cur   int

	answers []Answer // header slice seeded with the singleton level
	nextAns []Answer // spare header slice the next level builds into

	plans   []pairPlan
	active  []int // indices into plans still merging, in creation order
	spans   []erSpan
	batch   []model.Pair
	results []bool

	classOf  []int32 // element-indexed representative -> class index
	matchOf  []int32 // level-wide backing carved into per-plan matchOf
	matchedB []bool  // level-wide backing carved into per-plan matchedB
}

// erSpan marks one plan's slice of a batched rotation round.
type erSpan struct {
	plan   int // index into the level's plans
	lo, hi int // its tests occupy batch[lo:hi]
}

func newERArena(n int) *erArena {
	return &erArena{
		n:        n,
		classOf:  make([]int32, n),
		matchOf:  make([]int32, n),
		matchedB: make([]bool, n),
	}
}

// seedSingletons resets the arena to the singleton level: answers[i]
// views pool element i (step 0 of the merge tree).
//
//ecsort:hotpath
func (ar *erArena) seedSingletons() []Answer {
	ar.cur = 0
	pool := growInts(ar.elems[0][:0], ar.n)
	answers := ar.answers
	if cap(answers) < ar.n {
		answers = make([]Answer, ar.n)
	}
	answers = answers[:ar.n]
	for i := range answers {
		pool[i] = i
		answers[i] = Answer{elems: pool[i : i+1 : i+1], offs: singletonOffs}
	}
	ar.elems[0] = pool
	ar.answers = answers
	return answers
}

// appendAnswer copies a into the elems/offs destination pools and
// returns the copied view — the carry-over path for an odd answer, so
// the source pool can be recycled next level.
//
//ecsort:hotpath
func appendAnswer(a Answer, elems, offs []int) (Answer, []int, []int) {
	base, offBase := len(elems), len(offs)
	elems = append(elems, a.elems...)
	offs = append(offs, a.offs...)
	out := Answer{
		elems: elems[base : base+a.Size() : base+a.Size()],
		offs:  offs[offBase : offBase+len(a.offs) : offBase+len(a.offs)],
	}
	return out, elems, offs
}

// mergeLevelER merges answers pairwise — (0,1), (2,3), ... — sharing
// rounds across the level: the i-th rotation round of every active merge
// is combined into one parallel round of disjoint tests. Outputs are
// written into the arena's spare pool, which then becomes current; the
// input answers' pool is recycled, so callers must not retain answers
// across calls.
//
//ecsort:hotpath
func mergeLevelER(s *model.Session, ar *erArena, answers []Answer) ([]Answer, error) {
	dst := 1 - ar.cur
	elems, offs := ar.elems[dst][:0], ar.offs[dst][:0]
	next := ar.nextAns[:0]
	plans := ar.plans[:0]
	moUsed, mbUsed := 0, 0
	for start := 0; start < len(answers); start += 2 {
		if start+1 == len(answers) {
			var out Answer
			out, elems, offs = appendAnswer(answers[start], elems, offs)
			next = append(next, out)
			continue
		}
		a, b := answers[start], answers[start+1]
		if a.K() > b.K() {
			a, b = b, a
		}
		mo := ar.matchOf[moUsed : moUsed+a.K() : moUsed+a.K()]
		mb := ar.matchedB[mbUsed : mbUsed+b.K() : mbUsed+b.K()]
		moUsed += a.K()
		mbUsed += b.K()
		for i := range mo {
			mo[i] = -1
			ar.classOf[a.Rep(i)] = int32(i)
		}
		for j := range mb {
			mb[j] = false
			ar.classOf[b.Rep(j)] = int32(j)
		}
		plans = append(plans, pairPlan{
			a: a, b: b, slot: len(next),
			matchOf: mo, matchedB: mb, classOf: ar.classOf,
		})
		next = append(next, Answer{}) // placeholder until the plan finishes
	}

	active := ar.active[:0]
	for i := range plans {
		active = append(active, i)
	}
	batch, spans := ar.batch, ar.spans
	for len(active) > 0 {
		batch, spans = batch[:0], spans[:0]
		still := active[:0]
		for _, pi := range active {
			p := &plans[pi]
			lo := len(batch)
			batch = p.emitNext(batch)
			if len(batch) == lo { // schedule exhausted: finalize the merge
				next[p.slot], elems, offs = appendMatched(p.a, p.b, p.matchOf, p.matchedB, elems, offs)
				continue
			}
			spans = append(spans, erSpan{plan: pi, lo: lo, hi: len(batch)})
			still = append(still, pi)
		}
		active = still
		if len(batch) == 0 {
			continue
		}
		res, err := s.RoundBuf(batch, ar.results)
		if err != nil {
			return nil, err
		}
		if cap(res) > cap(ar.results) {
			ar.results = res
		}
		for _, sp := range spans {
			plans[sp.plan].absorb(batch[sp.lo:sp.hi], res[sp.lo:sp.hi])
		}
	}
	ar.plans, ar.active = plans, active
	ar.batch, ar.spans = batch, spans
	ar.elems[dst], ar.offs[dst] = elems, offs
	ar.cur = dst
	return next, nil
}
