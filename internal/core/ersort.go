package core

import (
	"fmt"

	"ecsort/internal/model"
)

// SortER solves equivalence class sorting in the exclusive-read model in
// O(k log n) parallel rounds using n processors (Theorem 2), where k is
// the number of equivalence classes. It runs a level-synchronous binary
// merge tree: at each of the ⌈log n⌉ levels, answers are merged in pairs,
// each merge taking at most k rounds of disjoint representative tests via
// the rotation schedule. Merges at one level cover disjoint element sets,
// so round r of every merge executes as a single parallel round; a level
// therefore costs max over its merges ≤ k rounds.
//
// SortER needs no knowledge of k. The session must be in ER mode.
func SortER(s *model.Session) (Result, error) {
	if s.Mode() != model.ER {
		return Result{}, fmt.Errorf("core: SortER requires an ER session, got %v", s.Mode())
	}
	n := s.N()
	if n == 0 {
		return Result{Stats: s.Stats()}, nil
	}
	answers := Singletons(n)
	for len(answers) > 1 {
		merged, err := mergeLevelER(s, answers)
		if err != nil {
			return Result{}, err
		}
		answers = merged
	}
	return Result{Classes: answers[0].Classes(), Stats: s.Stats()}, nil
}

// mergeLevelER merges answers pairwise — (0,1), (2,3), ... — sharing
// rounds across the level: the i-th rotation round of every active merge
// is combined into one parallel round of disjoint tests.
func mergeLevelER(s *model.Session, answers []Answer) ([]Answer, error) {
	next := make([]Answer, 0, (len(answers)+1)/2)
	type activeMerge struct {
		plan *pairPlan
		slot int
	}
	var active []activeMerge
	for start := 0; start < len(answers); start += 2 {
		if start+1 == len(answers) {
			next = append(next, answers[start])
			continue
		}
		active = append(active, activeMerge{
			plan: newPairPlan(answers[start], answers[start+1]),
			slot: len(next),
		})
		next = append(next, Answer{}) // placeholder
	}
	for len(active) > 0 {
		var batch []model.Pair
		type span struct {
			idx    int // index into active
			lo, hi int
		}
		var spans []span
		still := active[:0]
		for i := range active {
			pairs := active[i].plan.next()
			if pairs == nil {
				next[active[i].slot] = active[i].plan.result()
				continue
			}
			lo := len(batch)
			batch = append(batch, pairs...)
			spans = append(spans, span{idx: len(still), lo: lo, hi: len(batch)})
			still = append(still, active[i])
		}
		if len(batch) == 0 {
			active = still
			continue
		}
		res, err := s.Round(batch)
		if err != nil {
			return nil, err
		}
		for _, sp := range spans {
			still[sp.idx].plan.absorb(batch[sp.lo:sp.hi], res[sp.lo:sp.hi])
		}
		active = still
	}
	return next, nil
}
