// Package core implements the equivalence class sorting algorithms of the
// paper: the CR two-phase compounding-comparison algorithm (Theorem 1,
// O(k + log log n) rounds), the ER merge-tree algorithm (Theorem 2,
// O(k log n) rounds), the constant-round ER algorithm for inputs whose
// smallest class has size ≥ λn (Theorem 4), the sequential round-robin
// regimen of Jayapaul et al. used for the distribution-based analysis
// (Section 4), and a naive sequential baseline.
package core

import (
	"fmt"

	"ecsort/internal/model"
)

// Answer is a complete equivalence class sorting answer for a subset of
// the elements: a partition of that subset into its equivalence classes.
// Classes within one answer are mutually known-unequal, so merging two
// answers only requires comparing class representatives pairwise — at most
// k² tests — which is the engine of the compounding-comparison technique.
type Answer struct {
	// Classes holds the element indices of each class. Every class is
	// non-empty; Classes[i][0] serves as the class representative.
	Classes [][]int
}

// Singleton returns the trivial answer for the single element e.
func Singleton(e int) Answer {
	return Answer{Classes: [][]int{{e}}}
}

// Singletons returns the initial answer list: one singleton answer per
// element 0..n-1 (step 1 of the Theorem 1 algorithm).
func Singletons(n int) []Answer {
	answers := make([]Answer, n)
	for i := range answers {
		answers[i] = Singleton(i)
	}
	return answers
}

// K returns the number of classes in the answer.
func (a Answer) K() int { return len(a.Classes) }

// Size returns the number of elements covered by the answer.
func (a Answer) Size() int {
	s := 0
	for _, c := range a.Classes {
		s += len(c)
	}
	return s
}

// Reps returns the representative element of each class (the first
// member).
func (a Answer) Reps() []int {
	reps := make([]int, len(a.Classes))
	for i, c := range a.Classes {
		reps[i] = c[0]
	}
	return reps
}

// Elements returns all elements covered by the answer, class by class.
func (a Answer) Elements() []int {
	out := make([]int, 0, a.Size())
	for _, c := range a.Classes {
		out = append(out, c...)
	}
	return out
}

// merge combines answers according to an equality relation on their
// classes, given as a list of matched (class of a, class of b) index
// pairs. Unmatched classes carry over unchanged.
func mergeMatched(a, b Answer, matches []model.Pair) Answer {
	out := Answer{Classes: make([][]int, 0, a.K()+b.K())}
	usedB := make([]bool, b.K())
	matchOf := make([]int, a.K())
	for i := range matchOf {
		matchOf[i] = -1
	}
	for _, m := range matches {
		matchOf[m.A] = m.B
		usedB[m.B] = true
	}
	for i, cls := range a.Classes {
		merged := cls
		if j := matchOf[i]; j >= 0 {
			merged = append(append(make([]int, 0, len(cls)+len(b.Classes[j])), cls...), b.Classes[j]...)
		}
		out.Classes = append(out.Classes, merged)
	}
	for j, cls := range b.Classes {
		if !usedB[j] {
			out.Classes = append(out.Classes, cls)
		}
	}
	return out
}

// MergePairCR merges two answers in the CR model with one logical round of
// K(a)·K(b) concurrent representative tests. The session splits the round
// if it exceeds the processor budget.
func MergePairCR(s *model.Session, a, b Answer) (Answer, error) {
	if s.Mode() != model.CR {
		return Answer{}, fmt.Errorf("core: MergePairCR requires a CR session, got %v", s.Mode())
	}
	ra, rb := a.Reps(), b.Reps()
	pairs := make([]model.Pair, 0, len(ra)*len(rb))
	for _, x := range ra {
		for _, y := range rb {
			pairs = append(pairs, model.Pair{A: x, B: y})
		}
	}
	res, err := s.Round(pairs)
	if err != nil {
		return Answer{}, err
	}
	var matches []model.Pair
	for idx, eq := range res {
		if eq {
			matches = append(matches, model.Pair{A: idx / len(rb), B: idx % len(rb)})
		}
	}
	return mergeMatched(a, b, matches), nil
}

// crossPairs enumerates the representative tests needed to merge a group
// of answers in the CR model: one test per (class of answer u, class of
// answer v) pair over all u < v.
func crossPairs(group []Answer) []model.Pair {
	total := 0
	for u := 0; u < len(group); u++ {
		for v := u + 1; v < len(group); v++ {
			total += group[u].K() * group[v].K()
		}
	}
	pairs := make([]model.Pair, 0, total)
	for u := 0; u < len(group); u++ {
		ru := group[u].Reps()
		for v := u + 1; v < len(group); v++ {
			rv := group[v].Reps()
			for _, x := range ru {
				for _, y := range rv {
					pairs = append(pairs, model.Pair{A: x, B: y})
				}
			}
		}
	}
	return pairs
}

// MergeGroupCR merges a whole group of answers in the CR model with one
// logical round containing every cross-answer representative test — the
// compounding step of phase 2 of the Theorem 1 algorithm. Matching classes
// are united transitively.
func MergeGroupCR(s *model.Session, group []Answer) (Answer, error) {
	switch len(group) {
	case 0:
		return Answer{}, fmt.Errorf("core: MergeGroupCR of empty group")
	case 1:
		return group[0], nil
	}
	if s.Mode() != model.CR {
		return Answer{}, fmt.Errorf("core: MergeGroupCR requires a CR session, got %v", s.Mode())
	}
	pairs := crossPairs(group)
	res, err := s.Round(pairs)
	if err != nil {
		return Answer{}, err
	}
	return uniteGroup(group, pairs, res), nil
}

// uniteGroup folds equality results over a group of answers into a single
// answer, using a tiny union-find over (answer, class) slots keyed by the
// class representative element.
func uniteGroup(group []Answer, pairs []model.Pair, res []bool) Answer {
	// Map representative element -> slot index.
	type slot struct{ members []int }
	repSlot := make(map[int]int)
	slots := make([]slot, 0)
	parent := make([]int, 0)
	for _, ans := range group {
		for _, cls := range ans.Classes {
			repSlot[cls[0]] = len(slots)
			slots = append(slots, slot{members: cls})
			parent = append(parent, len(parent))
		}
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i, eq := range res {
		if !eq {
			continue
		}
		ra, rb := find(repSlot[pairs[i].A]), find(repSlot[pairs[i].B])
		if ra != rb {
			parent[rb] = ra
		}
	}
	merged := make(map[int][]int)
	var order []int
	for i := range slots {
		r := find(i)
		if _, ok := merged[r]; !ok {
			order = append(order, r)
		}
		merged[r] = append(merged[r], slots[i].members...)
	}
	out := Answer{Classes: make([][]int, 0, len(order))}
	for _, r := range order {
		out.Classes = append(out.Classes, merged[r])
	}
	return out
}

// MergePairER merges two answers in the ER model using the Latin-square
// rotation schedule: at most max(K(a), K(b)) rounds of disjoint
// representative tests (the engine of Theorem 2, where this is at most k
// rounds per merge). For round-sharing across independent merges at the
// same level of a merge tree, use pairPlan directly (see SortER).
func MergePairER(s *model.Session, a, b Answer) (Answer, error) {
	plan := newPairPlan(a, b)
	for {
		pairs := plan.next()
		if pairs == nil {
			return plan.result(), nil
		}
		res, err := s.Round(pairs)
		if err != nil {
			return Answer{}, err
		}
		plan.absorb(pairs, res)
	}
}

// pairPlan is the incremental state of one ER pair-merge. Rotation round r
// pairs class i of the smaller side with class (i+r) mod K of the larger
// side, so every class appears in at most one test per round and all
// K(a)·K(b) class pairs are covered after max(K(a), K(b)) rounds. Classes
// that have already found their partner are skipped: classes within one
// answer are mutually distinct, so a matched class needs no further tests.
type pairPlan struct {
	a, b     Answer // K(a) <= K(b) after normalization
	r        int    // next rotation round to emit
	matchedA []bool
	matchedB []bool
	matches  []model.Pair // (class of a, class of b) index pairs
	classOf  map[int]int  // representative element -> class index
}

func newPairPlan(a, b Answer) *pairPlan {
	if a.K() > b.K() {
		a, b = b, a
	}
	p := &pairPlan{
		a:        a,
		b:        b,
		matchedA: make([]bool, a.K()),
		matchedB: make([]bool, b.K()),
		classOf:  make(map[int]int, a.K()+b.K()),
	}
	for i, cls := range p.a.Classes {
		p.classOf[cls[0]] = i
	}
	for j, cls := range p.b.Classes {
		p.classOf[cls[0]] = j
	}
	return p
}

// next returns the disjoint tests of the next non-empty rotation round, or
// nil when the schedule is exhausted. The caller must pass the returned
// tests' results to absorb before calling next again.
func (p *pairPlan) next() []model.Pair {
	kb := p.b.K()
	for ; p.r < kb; p.r++ {
		var pairs []model.Pair
		for i := 0; i < p.a.K(); i++ {
			j := (i + p.r) % kb
			if p.matchedA[i] || p.matchedB[j] {
				continue
			}
			pairs = append(pairs, model.Pair{A: p.a.Classes[i][0], B: p.b.Classes[j][0]})
		}
		if len(pairs) > 0 {
			p.r++
			return pairs
		}
	}
	return nil
}

// absorb records the results of one executed round returned by next.
func (p *pairPlan) absorb(pairs []model.Pair, res []bool) {
	for idx, eq := range res {
		if eq {
			i, j := p.classOf[pairs[idx].A], p.classOf[pairs[idx].B]
			p.matchedA[i] = true
			p.matchedB[j] = true
			p.matches = append(p.matches, model.Pair{A: i, B: j})
		}
	}
}

// result folds the matches into the merged answer.
func (p *pairPlan) result() Answer {
	return mergeMatched(p.a, p.b, p.matches)
}
