// Package core implements the equivalence class sorting algorithms of the
// paper: the CR two-phase compounding-comparison algorithm (Theorem 1,
// O(k + log log n) rounds), the ER merge-tree algorithm (Theorem 2,
// O(k log n) rounds), the constant-round ER algorithm for inputs whose
// smallest class has size ≥ λn (Theorem 4), the sequential round-robin
// regimen of Jayapaul et al. used for the distribution-based analysis
// (Section 4), and a naive sequential baseline.
package core

import "ecsort/internal/model"

// Answer is a complete equivalence class sorting answer for a subset of
// the elements: a partition of that subset into its equivalence classes.
// Classes within one answer are mutually known-unequal, so merging two
// answers only requires comparing class representatives pairwise — at most
// k² tests — which is the engine of the compounding-comparison technique.
//
// Storage is flat: one backing slice of elements grouped by class plus a
// class-offset table, so an answer of any shape is at most two
// allocations, classes are contiguous in memory, and the merge engine can
// copy whole answers with memmove instead of per-class slice churn. An
// Answer is immutable once built; answers produced by the merge engine
// may share backing arrays with an arena, so treat values as read-only
// views.
type Answer struct {
	// elems holds the covered elements grouped by class: class i occupies
	// elems[offs[i]:offs[i+1]], and its first member is the class
	// representative.
	elems []int
	// offs has K+1 entries with offs[0] == 0; nil for the empty answer.
	offs []int
}

// singletonOffs is the shared offset table of every single-element
// answer. It is read-only by the Answer immutability contract, so all
// singleton views alias it instead of allocating.
var singletonOffs = []int{0, 1}

// NewAnswer builds an answer from explicit classes, copying them into
// flat storage. Intended for tests and answer construction at the edges;
// the merge engine builds flat storage directly.
func NewAnswer(classes [][]int) Answer {
	size := 0
	for _, c := range classes {
		size += len(c)
	}
	if size == 0 && len(classes) == 0 {
		return Answer{}
	}
	a := Answer{
		elems: make([]int, 0, size),
		offs:  make([]int, 1, len(classes)+1),
	}
	for _, c := range classes {
		a.elems = append(a.elems, c...)
		a.offs = append(a.offs, len(a.elems))
	}
	return a
}

// Singleton returns the trivial answer for the single element e.
func Singleton(e int) Answer {
	return Answer{elems: []int{e}, offs: singletonOffs}
}

// Singletons returns the initial answer list: one singleton answer per
// element 0..n-1 (step 1 of the Theorem 1 algorithm). All answers are
// views into one shared backing array, so setup is two allocations
// instead of 2n.
func Singletons(n int) []Answer {
	pool := make([]int, n)
	answers := make([]Answer, n)
	for i := range answers {
		pool[i] = i
		answers[i] = Answer{elems: pool[i : i+1 : i+1], offs: singletonOffs}
	}
	return answers
}

// K returns the number of classes in the answer.
func (a Answer) K() int {
	if len(a.offs) == 0 {
		return 0
	}
	return len(a.offs) - 1
}

// Size returns the number of elements covered by the answer.
func (a Answer) Size() int { return len(a.elems) }

// Class returns the members of class i as a read-only view into the
// answer's backing array. Class i's first member is its representative.
func (a Answer) Class(i int) []int { return a.elems[a.offs[i]:a.offs[i+1]] }

// Rep returns the representative element of class i (its first member).
func (a Answer) Rep(i int) int { return a.elems[a.offs[i]] }

// Reps returns the representative element of each class (the first
// member). The slice is freshly allocated; hot paths use Rep directly.
func (a Answer) Reps() []int {
	reps := make([]int, a.K())
	for i := range reps {
		reps[i] = a.Rep(i)
	}
	return reps
}

// Elements returns all elements covered by the answer, class by class, as
// a fresh slice.
func (a Answer) Elements() []int {
	out := make([]int, len(a.elems))
	copy(out, a.elems)
	return out
}

// Classes materializes the partition as [][]int. The classes are views
// into one freshly copied backing array (two allocations total), sharing
// no memory with the answer, so callers may hold the result across arena
// reuse.
func (a Answer) Classes() [][]int {
	k := a.K()
	if k == 0 {
		return nil
	}
	backing := make([]int, len(a.elems))
	copy(backing, a.elems)
	out := make([][]int, k)
	for i := 0; i < k; i++ {
		out[i] = backing[a.offs[i]:a.offs[i+1]:a.offs[i+1]]
	}
	return out
}

// Flat returns the answer's backing element slice and offset table as
// read-only views: class i occupies elems[offs[i]:offs[i+1]]. offs is nil
// for the empty answer. Snapshot publishers use this to copy a whole
// partition with two memmoves.
func (a Answer) Flat() (elems, offs []int) { return a.elems, a.offs }

// mergeMatched combines answers according to an equality relation on
// their classes, given as a list of matched (class of a, class of b)
// index pairs: a's classes in order, each extended by its matched b class
// if any, then b's unmatched classes. Used by the ER pair-merge plan.
func mergeMatched(a, b Answer, matches []model.Pair) Answer {
	ka, kb := a.K(), b.K()
	matchOf := make([]int, ka)
	for i := range matchOf {
		matchOf[i] = -1
	}
	usedB := make([]bool, kb)
	for _, m := range matches {
		matchOf[m.A] = m.B
		usedB[m.B] = true
	}
	out := Answer{
		elems: make([]int, 0, a.Size()+b.Size()),
		offs:  make([]int, 1, ka+kb+1),
	}
	for i := 0; i < ka; i++ {
		out.elems = append(out.elems, a.Class(i)...)
		if j := matchOf[i]; j >= 0 {
			out.elems = append(out.elems, b.Class(j)...)
		}
		out.offs = append(out.offs, len(out.elems))
	}
	for j := 0; j < kb; j++ {
		if !usedB[j] {
			out.elems = append(out.elems, b.Class(j)...)
			out.offs = append(out.offs, len(out.elems))
		}
	}
	return out
}

// MergePairER merges two answers in the ER model using the Latin-square
// rotation schedule: at most max(K(a), K(b)) rounds of disjoint
// representative tests (the engine of Theorem 2, where this is at most k
// rounds per merge). For round-sharing across independent merges at the
// same level of a merge tree, use pairPlan directly (see SortER).
func MergePairER(s *model.Session, a, b Answer) (Answer, error) {
	plan := newPairPlan(a, b)
	for {
		pairs := plan.next()
		if pairs == nil {
			return plan.result(), nil
		}
		res, err := s.Round(pairs)
		if err != nil {
			return Answer{}, err
		}
		plan.absorb(pairs, res)
	}
}

// pairPlan is the incremental state of one ER pair-merge. Rotation round r
// pairs class i of the smaller side with class (i+r) mod K of the larger
// side, so every class appears in at most one test per round and all
// K(a)·K(b) class pairs are covered after max(K(a), K(b)) rounds. Classes
// that have already found their partner are skipped: classes within one
// answer are mutually distinct, so a matched class needs no further tests.
type pairPlan struct {
	a, b     Answer // K(a) <= K(b) after normalization
	r        int    // next rotation round to emit
	matchedA []bool
	matchedB []bool
	matches  []model.Pair // (class of a, class of b) index pairs
	classOf  map[int]int  // representative element -> class index
}

func newPairPlan(a, b Answer) *pairPlan {
	if a.K() > b.K() {
		a, b = b, a
	}
	p := &pairPlan{
		a:        a,
		b:        b,
		matchedA: make([]bool, a.K()),
		matchedB: make([]bool, b.K()),
		classOf:  make(map[int]int, a.K()+b.K()),
	}
	for i := 0; i < p.a.K(); i++ {
		p.classOf[p.a.Rep(i)] = i
	}
	for j := 0; j < p.b.K(); j++ {
		p.classOf[p.b.Rep(j)] = j
	}
	return p
}

// next returns the disjoint tests of the next non-empty rotation round, or
// nil when the schedule is exhausted. The caller must pass the returned
// tests' results to absorb before calling next again.
func (p *pairPlan) next() []model.Pair {
	kb := p.b.K()
	for ; p.r < kb; p.r++ {
		var pairs []model.Pair
		for i := 0; i < p.a.K(); i++ {
			j := (i + p.r) % kb
			if p.matchedA[i] || p.matchedB[j] {
				continue
			}
			pairs = append(pairs, model.Pair{A: p.a.Rep(i), B: p.b.Rep(j)})
		}
		if len(pairs) > 0 {
			p.r++
			return pairs
		}
	}
	return nil
}

// absorb records the results of one executed round returned by next.
func (p *pairPlan) absorb(pairs []model.Pair, res []bool) {
	for idx, eq := range res {
		if eq {
			i, j := p.classOf[pairs[idx].A], p.classOf[pairs[idx].B]
			p.matchedA[i] = true
			p.matchedB[j] = true
			p.matches = append(p.matches, model.Pair{A: i, B: j})
		}
	}
}

// result folds the matches into the merged answer.
func (p *pairPlan) result() Answer {
	return mergeMatched(p.a, p.b, p.matches)
}
