// Package core implements the equivalence class sorting algorithms of the
// paper: the CR two-phase compounding-comparison algorithm (Theorem 1,
// O(k + log log n) rounds), the ER merge-tree algorithm (Theorem 2,
// O(k log n) rounds), the constant-round ER algorithm for inputs whose
// smallest class has size ≥ λn (Theorem 4), the sequential round-robin
// regimen of Jayapaul et al. used for the distribution-based analysis
// (Section 4), and a naive sequential baseline.
package core

import "ecsort/internal/model"

// Answer is a complete equivalence class sorting answer for a subset of
// the elements: a partition of that subset into its equivalence classes.
// Classes within one answer are mutually known-unequal, so merging two
// answers only requires comparing class representatives pairwise — at most
// k² tests — which is the engine of the compounding-comparison technique.
//
// Storage is flat: one backing slice of elements grouped by class plus a
// class-offset table, so an answer of any shape is at most two
// allocations, classes are contiguous in memory, and the merge engine can
// copy whole answers with memmove instead of per-class slice churn. An
// Answer is immutable once built; answers produced by the merge engine
// may share backing arrays with an arena, so treat values as read-only
// views.
type Answer struct {
	// elems holds the covered elements grouped by class: class i occupies
	// elems[offs[i]:offs[i+1]], and its first member is the class
	// representative.
	elems []int
	// offs has K+1 entries with offs[0] == 0; nil for the empty answer.
	offs []int
}

// singletonOffs is the shared offset table of every single-element
// answer. It is read-only by the Answer immutability contract, so all
// singleton views alias it instead of allocating.
var singletonOffs = []int{0, 1}

// NewAnswer builds an answer from explicit classes, copying them into
// flat storage. Intended for tests and answer construction at the edges;
// the merge engine builds flat storage directly.
func NewAnswer(classes [][]int) Answer {
	size := 0
	for _, c := range classes {
		size += len(c)
	}
	if size == 0 && len(classes) == 0 {
		return Answer{}
	}
	a := Answer{
		elems: make([]int, 0, size),
		offs:  make([]int, 1, len(classes)+1),
	}
	for _, c := range classes {
		a.elems = append(a.elems, c...)
		a.offs = append(a.offs, len(a.elems))
	}
	return a
}

// Singleton returns the trivial answer for the single element e.
func Singleton(e int) Answer {
	return Answer{elems: []int{e}, offs: singletonOffs}
}

// Singletons returns the initial answer list: one singleton answer per
// element 0..n-1 (step 1 of the Theorem 1 algorithm). All answers are
// views into one shared backing array, so setup is two allocations
// instead of 2n.
func Singletons(n int) []Answer {
	pool := make([]int, n)
	answers := make([]Answer, n)
	for i := range answers {
		pool[i] = i
		answers[i] = Answer{elems: pool[i : i+1 : i+1], offs: singletonOffs}
	}
	return answers
}

// K returns the number of classes in the answer.
//
//ecsort:hotpath
func (a Answer) K() int {
	if len(a.offs) == 0 {
		return 0
	}
	return len(a.offs) - 1
}

// Size returns the number of elements covered by the answer.
//
//ecsort:hotpath
func (a Answer) Size() int { return len(a.elems) }

// Class returns the members of class i as a read-only view into the
// answer's backing array. Class i's first member is its representative.
//
//ecsort:hotpath
func (a Answer) Class(i int) []int { return a.elems[a.offs[i]:a.offs[i+1]] }

// Rep returns the representative element of class i (its first member).
//
//ecsort:hotpath
func (a Answer) Rep(i int) int { return a.elems[a.offs[i]] }

// Reps returns the representative element of each class (the first
// member). The slice is freshly allocated; hot paths use Rep directly.
func (a Answer) Reps() []int {
	reps := make([]int, a.K())
	for i := range reps {
		reps[i] = a.Rep(i)
	}
	return reps
}

// Elements returns all elements covered by the answer, class by class, as
// a fresh slice.
func (a Answer) Elements() []int {
	out := make([]int, len(a.elems))
	copy(out, a.elems)
	return out
}

// Classes materializes the partition as [][]int. The classes are views
// into one freshly copied backing array (two allocations total), sharing
// no memory with the answer, so callers may hold the result across arena
// reuse.
func (a Answer) Classes() [][]int {
	k := a.K()
	if k == 0 {
		return nil
	}
	backing := make([]int, len(a.elems))
	copy(backing, a.elems)
	out := make([][]int, k)
	for i := 0; i < k; i++ {
		out[i] = backing[a.offs[i]:a.offs[i+1]:a.offs[i+1]]
	}
	return out
}

// Flat returns the answer's backing element slice and offset table as
// read-only views: class i occupies elems[offs[i]:offs[i+1]]. offs is nil
// for the empty answer. Snapshot publishers use this to copy a whole
// partition with two memmoves.
func (a Answer) Flat() (elems, offs []int) { return a.elems, a.offs }

// appendMatched writes the merge of a and b implied by a pair plan's
// match state as one flat answer appended to the elems/offs destination
// slices (typically the ER arena's level pools) and returns the answer
// viewing the appended region plus the extended slices. Output classes
// are a's classes in order, each extended by its matched b class if any,
// then b's unmatched classes — exactly the ordering the map-based ER
// engine produced, so results are bit-for-bit identical.
//
//ecsort:hotpath
func appendMatched(a, b Answer, matchOf []int32, matchedB []bool, elems, offs []int) (Answer, []int, []int) {
	base, offBase := len(elems), len(offs)
	offs = append(offs, base)
	for i := 0; i < a.K(); i++ {
		elems = append(elems, a.Class(i)...)
		if j := matchOf[i]; j >= 0 {
			elems = append(elems, b.Class(int(j))...)
		}
		offs = append(offs, len(elems))
	}
	for j := 0; j < b.K(); j++ {
		if !matchedB[j] {
			elems = append(elems, b.Class(j)...)
			offs = append(offs, len(elems))
		}
	}
	out := Answer{
		elems: elems[base:len(elems):len(elems)],
		offs:  offs[offBase:len(offs):len(offs)],
	}
	// Rebase the answer's offsets to its own elems view.
	if base != 0 {
		for i := range out.offs {
			out.offs[i] -= base
		}
	}
	return out, elems, offs
}

// MergePairER merges two answers in the ER model using the Latin-square
// rotation schedule: at most max(K(a), K(b)) rounds of disjoint
// representative tests (the engine of Theorem 2, where this is at most k
// rounds per merge). For round-sharing across independent merges at the
// same level of a merge tree — with all plan scratch pooled in a
// reusable arena — see SortER.
func MergePairER(s *model.Session, a, b Answer) (Answer, error) {
	if a.K() > b.K() {
		a, b = b, a
	}
	// The rep→class table is sized by the largest representative, not
	// the universe, so a small merge in a huge universe stays cheap.
	maxRep := 0
	for i := 0; i < a.K(); i++ {
		maxRep = max(maxRep, a.Rep(i))
	}
	for j := 0; j < b.K(); j++ {
		maxRep = max(maxRep, b.Rep(j))
	}
	classOf := make([]int32, maxRep+1)
	matchOf := make([]int32, a.K())
	for i := range matchOf {
		matchOf[i] = -1
		classOf[a.Rep(i)] = int32(i)
	}
	matchedB := make([]bool, b.K())
	for j := range matchedB {
		classOf[b.Rep(j)] = int32(j)
	}
	plan := pairPlan{a: a, b: b, matchOf: matchOf, matchedB: matchedB, classOf: classOf}
	var batch []model.Pair
	for {
		batch = plan.emitNext(batch[:0])
		if len(batch) == 0 {
			out, _, _ := appendMatched(a, b, matchOf, matchedB, nil, nil)
			return out, nil
		}
		res, err := s.Round(batch)
		if err != nil {
			return Answer{}, err
		}
		plan.absorb(batch, res)
	}
}

// pairPlan is the incremental state of one ER pair-merge. Rotation round r
// pairs class i of the smaller side with class (i+r) mod K of the larger
// side, so every class appears in at most one test per round and all
// K(a)·K(b) class pairs are covered after max(K(a), K(b)) rounds. Classes
// that have already found their partner are skipped: classes within one
// answer are mutually distinct, so a matched class needs no further tests.
//
// A plan owns no storage: matchOf and matchedB are carved from a level's
// arena (or allocated once by MergePairER) and classOf is the shared
// element-indexed representative→class table, so the ER steady state
// allocates nothing per merge or per rotation round.
type pairPlan struct {
	a, b Answer // K(a) <= K(b) after normalization
	r    int    // next rotation round to emit
	slot int    // output position in the level's answer list
	// matchOf[i] is the b-class index matched to a-class i, or -1.
	matchOf []int32
	// matchedB[j] reports b-class j has found its partner.
	matchedB []bool
	// classOf maps representative element -> class index within its own
	// answer; shared across a level (element sets are disjoint).
	classOf []int32
}

// emitNext appends the disjoint tests of the next non-empty rotation
// round to dst and returns the extended slice; dst comes back unchanged
// when the schedule is exhausted. The caller must pass the emitted
// tests' results to absorb before calling emitNext again.
//
//ecsort:hotpath
func (p *pairPlan) emitNext(dst []model.Pair) []model.Pair {
	kb := p.b.K()
	mark := len(dst)
	for ; p.r < kb; p.r++ {
		for i := 0; i < p.a.K(); i++ {
			j := (i + p.r) % kb
			if p.matchOf[i] >= 0 || p.matchedB[j] {
				continue
			}
			dst = append(dst, model.Pair{A: p.a.Rep(i), B: p.b.Rep(j)})
		}
		if len(dst) > mark {
			p.r++
			return dst
		}
	}
	return dst
}

// absorb records the results of one executed round emitted by emitNext.
//
//ecsort:hotpath
func (p *pairPlan) absorb(pairs []model.Pair, res []bool) {
	for idx, eq := range res {
		if eq {
			i, j := p.classOf[pairs[idx].A], p.classOf[pairs[idx].B]
			p.matchOf[i] = j
			p.matchedB[j] = true
		}
	}
}
