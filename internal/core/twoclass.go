package core

import (
	"errors"
	"fmt"
	"math/rand"

	"ecsort/internal/graphs"
	"ecsort/internal/model"
	"ecsort/internal/sched"
	"ecsort/internal/unionfind"
)

// SortTwoClassER solves the ER problem in O(1) parallel rounds for inputs
// promised to have at most two equivalence classes, with no constraint on
// the smaller class's size. The paper's conclusion notes the k = 2 case
// of its open problem follows from classic parallel fault diagnosis
// [4–6]; the reduction implemented here:
//
//  1. With k ≤ 2, the larger class has ≥ ⌈n/2⌉ elements, so H_d with
//     d = d(0.4) seeds it with a connected component of ≥ n/20 vertices
//     with high probability — test H_d's edges in O(d) rounds.
//  2. Sweep every remaining element against the largest component in
//     O(1) rounds. Matched elements share its class; because k ≤ 2, all
//     unmatched elements must form the other class — no further tests.
//
// The "unmatched ⇒ same class" step is exactly where the two-class
// promise does work a general input cannot: with k ≥ 3 it would lump
// distinct classes together. If the promise is broken, the returned
// partition may be wrong; run Certify afterwards when the promise is not
// trustworthy. ErrConstRoundFailed is reported if the random graph failed
// to seed the majority class after retries (probability e^{−Ω(n)}).
func SortTwoClassER(s *model.Session, maxRetries int, rng *rand.Rand) (Result, error) {
	if s.Mode() != model.ER {
		return Result{}, fmt.Errorf("core: SortTwoClassER requires an ER session, got %v", s.Mode())
	}
	if rng == nil {
		return Result{}, errors.New("core: SortTwoClassER needs an rng")
	}
	n := s.N()
	if n == 0 {
		return Result{Stats: s.Stats()}, nil
	}
	if n < 3 {
		return tinySortER(s, n)
	}
	const lambda = 0.4 // the majority class is at least n/2 ≥ λn
	d := graphs.DegreeForLambda(lambda)
	for attempt := 0; ; attempt++ {
		res, ok, err := twoClassAttempt(s, n, d, rng)
		if err != nil {
			return Result{}, err
		}
		if ok {
			return res, nil
		}
		if attempt >= maxRetries {
			return Result{}, ErrConstRoundFailed
		}
	}
}

func twoClassAttempt(s *model.Session, n, d int, rng *rand.Rand) (Result, bool, error) {
	h := graphs.NewHamiltonian(n, d, rng)
	dsu := unionfind.New(n)
	var edges []model.Pair
	var results []bool
	for _, round := range h.ERRounds() {
		res, err := s.Round(round)
		if err != nil {
			return Result{}, false, err
		}
		edges = append(edges, round...)
		results = append(results, res...)
	}
	for i, e := range edges {
		if results[i] {
			dsu.Union(e.A, e.B)
		}
	}
	comps := graphs.ComponentsFromEqualities(n, edges, results)
	anchor := comps[0]
	// The majority anchor must be large; λn/8 with λ=0.4 is n/20.
	if len(anchor) < max(1, n/20) {
		return Result{}, false, nil
	}
	inAnchor := make([]bool, n)
	for _, e := range anchor {
		inAnchor[e] = true
	}
	var targets []int
	for e := 0; e < n; e++ {
		if !inAnchor[e] {
			targets = append(targets, e)
		}
	}
	var others []int
	for _, round := range sched.Sweep(anchor, targets) {
		res, err := s.Round(round)
		if err != nil {
			return Result{}, false, err
		}
		for i, eq := range res {
			if eq {
				dsu.Union(round[i].A, round[i].B)
			} else {
				others = append(others, round[i].B)
			}
		}
	}
	// Two-class promise: everything that failed the sweep is one class.
	for i := 1; i < len(others); i++ {
		dsu.Union(others[0], others[i])
	}
	return Result{Classes: dsu.Groups(), Stats: s.Stats()}, true, nil
}
