package core

import (
	"math/rand"
	"reflect"
	"testing"

	"ecsort/internal/model"
	"ecsort/internal/oracle"
)

// TestIncrementalRestoreContinuesBitIdentical is the core recovery
// anchor: a sorter rebuilt from a mid-stream snapshot (flat answer +
// pending + stats + flushes) must continue exactly like the sorter it
// was taken from — same classes AND same stats after the same remaining
// operations.
func TestIncrementalRestoreContinuesBitIdentical(t *testing.T) {
	const n, k = 96, 7
	rng := rand.New(rand.NewSource(41))
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(k)
	}
	perm := rng.Perm(n)

	newInc := func() *Incremental {
		inc, err := NewIncremental(model.NewSession(oracle.NewLabel(labels), model.CR))
		if err != nil {
			t.Fatal(err)
		}
		return inc
	}

	// Drive the original through a few batches, snapshotting mid-stream
	// with some elements still pending.
	orig := newInc()
	cut := 0
	for ; cut < 60; cut++ {
		if err := orig.Add(perm[cut]); err != nil {
			t.Fatal(err)
		}
		if cut == 30 || cut == 47 {
			if err := orig.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	elems, offs := orig.Flat()
	state := struct {
		elems, offs, pending []int
		stats                model.Stats
		flushes              int
	}{
		elems:   append([]int(nil), elems...),
		offs:    append([]int(nil), offs...),
		pending: append([]int(nil), orig.PendingElements()...),
		stats:   orig.Stats(),
		flushes: orig.Flushes(),
	}

	restored := newInc()
	if err := restored.Restore(state.elems, state.offs, state.pending, state.stats, state.flushes); err != nil {
		t.Fatal(err)
	}
	if restored.Size() != orig.Size() || restored.Pending() != orig.Pending() || restored.Flushes() != orig.Flushes() {
		t.Fatalf("restored size/pending/flushes = %d/%d/%d, want %d/%d/%d",
			restored.Size(), restored.Pending(), restored.Flushes(), orig.Size(), orig.Pending(), orig.Flushes())
	}

	// Continue both identically: flush, more adds, flush again.
	for _, inc := range []*Incremental{orig, restored} {
		if err := inc.Flush(); err != nil {
			t.Fatal(err)
		}
		for _, e := range perm[cut:] {
			if err := inc.Add(e); err != nil {
				t.Fatal(err)
			}
		}
	}
	origClasses, err := orig.Classes()
	if err != nil {
		t.Fatal(err)
	}
	restClasses, err := restored.Classes()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(origClasses, restClasses) {
		t.Errorf("classes diverged:\n orig %v\n rest %v", origClasses, restClasses)
	}
	if orig.Stats() != restored.Stats() {
		t.Errorf("stats diverged: orig %+v, restored %+v", orig.Stats(), restored.Stats())
	}
	if orig.Flushes() != restored.Flushes() {
		t.Errorf("flushes diverged: %d vs %d", orig.Flushes(), restored.Flushes())
	}
}

// TestIncrementalRestoreValidation rejects malformed checkpoint state
// instead of rebuilding a silently wrong sorter.
func TestIncrementalRestoreValidation(t *testing.T) {
	labels := []int{0, 1, 0, 1}
	fresh := func() *Incremental {
		inc, err := NewIncremental(model.NewSession(oracle.NewLabel(labels), model.CR))
		if err != nil {
			t.Fatal(err)
		}
		return inc
	}
	cases := []struct {
		name                 string
		elems, offs, pending []int
	}{
		{"bad offsets", []int{0, 2}, []int{0, 1}, nil},
		{"empty class", []int{0, 2}, []int{0, 2, 2}, nil},
		{"out of range", []int{0, 9}, []int{0, 2}, nil},
		{"duplicate across answer and pending", []int{0, 2}, []int{0, 2}, []int{2}},
		{"offsets without elements", nil, []int{0, 1}, nil},
	}
	for _, tc := range cases {
		if err := fresh().Restore(tc.elems, tc.offs, tc.pending, model.Stats{}, 1); err == nil {
			t.Errorf("%s: Restore accepted malformed state", tc.name)
		}
	}
	used := fresh()
	if err := used.Add(0); err != nil {
		t.Fatal(err)
	}
	if err := used.Restore(nil, nil, nil, model.Stats{}, 0); err == nil {
		t.Error("Restore accepted a used sorter")
	}
	// The empty state restores to a fresh sorter.
	empty := fresh()
	if err := empty.Restore(nil, nil, nil, model.Stats{}, 0); err != nil {
		t.Errorf("empty restore: %v", err)
	}
}
