package core

import (
	"fmt"

	"ecsort/internal/model"
	"ecsort/internal/sched"
)

// Certify checks a claimed classification against an oracle with the
// minimum testing a certificate needs: every element equals its class
// representative (n − k tests) and representatives are pairwise distinct
// ((k choose 2) tests) — exactly the clique condition under which the
// Figure 2 knowledge graph declares an answer final. Tests are scheduled
// into disjoint rounds so certification is itself a legal ER computation.
//
// It returns nil iff the classes are a correct and complete equivalence
// class sorting of the oracle's elements.
func Certify(s *model.Session, classes [][]int) error {
	n := s.N()
	covered := make([]bool, n)
	total := 0
	for ci, cls := range classes {
		if len(cls) == 0 {
			return fmt.Errorf("core: class %d is empty", ci)
		}
		for _, e := range cls {
			if e < 0 || e >= n {
				return fmt.Errorf("core: class %d contains out-of-range element %d", ci, e)
			}
			if covered[e] {
				return fmt.Errorf("core: element %d appears in two classes", e)
			}
			covered[e] = true
			total++
		}
	}
	if total != n {
		return fmt.Errorf("core: classes cover %d of %d elements", total, n)
	}

	// Within-class checks: rep vs. every other member. A rep can do one
	// test per ER round, so round j tests the (j+1)-th member of every
	// class simultaneously — max class size − 1 rounds in total.
	maxLen := 0
	for _, cls := range classes {
		if len(cls) > maxLen {
			maxLen = len(cls)
		}
	}
	for j := 1; j < maxLen; j++ {
		var round []model.Pair
		var owner []int
		for ci, cls := range classes {
			if j < len(cls) {
				round = append(round, model.Pair{A: cls[0], B: cls[j]})
				owner = append(owner, ci)
			}
		}
		res, err := s.Round(round)
		if err != nil {
			return err
		}
		for i, eq := range res {
			if !eq {
				return fmt.Errorf("core: class %d contains non-equivalent elements %d and %d",
					owner[i], round[i].A, round[i].B)
			}
		}
	}

	// Cross-class checks: all representative pairs via the circle
	// schedule.
	reps := make([]int, len(classes))
	repClass := make(map[int]int, len(classes))
	for ci, cls := range classes {
		reps[ci] = cls[0]
		repClass[cls[0]] = ci
	}
	for _, round := range sched.AllPairs(reps) {
		res, err := s.Round(round)
		if err != nil {
			return err
		}
		for i, eq := range res {
			if eq {
				return fmt.Errorf("core: classes %d and %d are actually the same class",
					repClass[round[i].A], repClass[round[i].B])
			}
		}
	}
	return nil
}
