package core

import (
	"fmt"
	"math/rand"
	"testing"

	"ecsort/internal/model"
	"ecsort/internal/oracle"
)

// Algorithm throughput across input sizes; complements the root-level
// per-figure benchmarks with engine-level numbers.

func benchSorter(b *testing.B, mode model.Mode, n, k int,
	run func(*model.Session) (Result, error)) {
	b.Helper()
	truth := oracle.RandomBalanced(n, k, rand.New(rand.NewSource(7)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := model.NewSession(truth, mode)
		if _, err := run(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSortCR is the tracked-baseline benchmark of the full Theorem 1
// sort (see BENCH_baseline.json and the CI bench smoke): one fixed shape,
// with allocation accounting, so the flat merge engine's ns/op and
// allocs/op trajectory is comparable across PRs. Workers(1) keeps the
// session off the goroutine-spawning parallel execute path, whose alloc
// count would vary with the runner's core count.
func BenchmarkSortCR(b *testing.B) {
	const n, k = 4096, 8
	truth := oracle.RandomBalanced(n, k, rand.New(rand.NewSource(7)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SortCR(model.NewSession(truth, model.CR, model.Workers(1)), k); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMergeGroup is the tracked-baseline benchmark of one compounding
// group merge — the phase 2 step every flush and sort funnels through.
func BenchmarkMergeGroup(b *testing.B) {
	truth := oracle.RandomBalanced(512, 8, rand.New(rand.NewSource(31)))
	s := model.NewSession(truth, model.CR, model.Workers(1))
	ar, answers := newCRArena(512)
	for len(answers) > 24 {
		next, err := mergePairsCR(s, ar, answers)
		if err != nil {
			b.Fatal(err)
		}
		answers = next
	}
	group := make([]Answer, len(answers))
	for i, a := range answers {
		group[i] = NewAnswer(a.Classes())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MergeGroupCR(s, group); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSortCREngine(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 13, 1 << 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchSorter(b, model.CR, n, 8, func(s *model.Session) (Result, error) {
				return SortCR(s, 8)
			})
		})
	}
}

func BenchmarkSortEREngine(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 13, 1 << 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchSorter(b, model.ER, n, 8, SortER)
		})
	}
}

func BenchmarkRoundRobinEngine(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 13} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchSorter(b, model.ER, n, 8, RoundRobin)
		})
	}
}

func BenchmarkNaiveEngine(b *testing.B) {
	benchSorter(b, model.ER, 1<<13, 8, Naive)
}

func BenchmarkCertifyEngine(b *testing.B) {
	truth := oracle.RandomBalanced(1<<13, 8, rand.New(rand.NewSource(8)))
	res, err := SortER(model.NewSession(truth, model.ER))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := model.NewSession(truth, model.ER)
		if err := Certify(s, res.Classes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIncrementalEngine(b *testing.B) {
	const n = 1 << 12
	truth := oracle.RandomBalanced(n, 8, rand.New(rand.NewSource(9)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := model.NewSession(truth, model.CR)
		inc, err := NewIncremental(s)
		if err != nil {
			b.Fatal(err)
		}
		for e := 0; e < n; e++ {
			if err := inc.Add(e); err != nil {
				b.Fatal(err)
			}
			if e%256 == 255 {
				if err := inc.Flush(); err != nil {
					b.Fatal(err)
				}
			}
		}
		if _, err := inc.Classes(); err != nil {
			b.Fatal(err)
		}
	}
}
