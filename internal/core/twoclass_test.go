package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ecsort/internal/model"
	"ecsort/internal/oracle"
)

func TestTwoClassBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, sizes := range [][]int{
		{50, 50}, {99, 1}, {70, 30}, {100}, // last: single class
	} {
		truth := oracle.RandomSizes(sizes, rng)
		s := model.NewSession(truth, model.ER)
		res, err := SortTwoClassER(s, 5, rand.New(rand.NewSource(32)))
		if err != nil {
			t.Fatalf("sizes %v: %v", sizes, err)
		}
		checkResult(t, res, truth)
	}
}

// TestTwoClassConstantRounds: rounds must not grow with n, even with a
// tiny minority class (ℓ = 1) — the case Theorem 4 cannot handle.
func TestTwoClassConstantRounds(t *testing.T) {
	roundsAt := func(n int) int {
		labels := make([]int, n)
		labels[n/2] = 1 // a single minority element
		truth := oracle.NewLabel(labels)
		s := model.NewSession(truth, model.ER)
		res, err := SortTwoClassER(s, 5, rand.New(rand.NewSource(int64(n))))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(res.Classes) != 2 {
			t.Fatalf("n=%d: %d classes", n, len(res.Classes))
		}
		return s.Stats().Rounds
	}
	small := roundsAt(400)
	large := roundsAt(6400)
	if large > 2*small+20 {
		t.Errorf("rounds grew with n: %d → %d", small, large)
	}
}

func TestTwoClassTinyInputs(t *testing.T) {
	for _, labels := range [][]int{{0}, {0, 0}, {0, 1}} {
		truth := oracle.NewLabel(labels)
		s := model.NewSession(truth, model.ER)
		res, err := SortTwoClassER(s, 3, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatalf("labels %v: %v", labels, err)
		}
		checkResult(t, res, truth)
	}
	empty := model.NewSession(oracle.NewLabel(nil), model.ER)
	res, err := SortTwoClassER(empty, 3, rand.New(rand.NewSource(1)))
	if err != nil || len(res.Classes) != 0 {
		t.Fatalf("empty: %v %v", res.Classes, err)
	}
}

func TestTwoClassValidation(t *testing.T) {
	truth := oracle.NewLabel([]int{0, 1})
	cr := model.NewSession(truth, model.CR)
	if _, err := SortTwoClassER(cr, 1, rand.New(rand.NewSource(1))); err == nil {
		t.Error("CR session accepted")
	}
	er := model.NewSession(truth, model.ER)
	if _, err := SortTwoClassER(er, 1, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

// TestTwoClassQuick: arbitrary two-class profiles, including extreme
// skews, classify correctly.
func TestTwoClassQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(200)
		minority := rng.Intn(n/2 + 1)
		labels := make([]int, n)
		for i := 0; i < minority; i++ {
			labels[i] = 1
		}
		rng.Shuffle(n, func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })
		truth := oracle.NewLabel(labels)
		s := model.NewSession(truth, model.ER)
		res, err := SortTwoClassER(s, 6, rand.New(rand.NewSource(seed^0x1234)))
		if err != nil {
			return false
		}
		return SameClassification(res.Labels(n), labels)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestTwoClassBrokenPromise: with three classes the promise is violated;
// the algorithm may return a wrong partition, but Certify must catch it.
func TestTwoClassBrokenPromise(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	truth := oracle.RandomSizes([]int{80, 10, 10}, rng)
	s := model.NewSession(truth, model.ER)
	res, err := SortTwoClassER(s, 5, rand.New(rand.NewSource(34)))
	if err != nil {
		t.Fatal(err)
	}
	correct := SameClassification(res.Labels(100), truth.Labels())
	certErr := Certify(model.NewSession(truth, model.ER), res.Classes)
	if correct && certErr != nil {
		t.Fatalf("correct answer rejected: %v", certErr)
	}
	if !correct && certErr == nil {
		t.Fatal("wrong answer passed certification")
	}
}
