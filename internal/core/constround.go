package core

import (
	"errors"
	"fmt"
	"math/rand"

	"ecsort/internal/graphs"
	"ecsort/internal/model"
	"ecsort/internal/sched"
	"ecsort/internal/unionfind"
)

// ErrConstRoundFailed reports that the randomized constant-round algorithm
// failed to classify every element with the given λ and retry budget. The
// failure probability is e^{-Ω(n)} for correct λ, so in practice this
// means λ was larger than ℓ/n.
var ErrConstRoundFailed = errors.New("core: constant-round algorithm failed; smallest class may be below λn")

// ConstRoundConfig configures SortConstRoundER.
type ConstRoundConfig struct {
	// Lambda is the guaranteed lower bound on (smallest class size)/n,
	// in (0, 0.4]. Required.
	Lambda float64
	// D overrides the number of Hamiltonian cycles. If 0, the
	// theory-driven constant d(λ) from Theorem 3 is used; that constant
	// is pessimistic (hundreds of cycles for small λ), so experiments
	// commonly set a smaller D and rely on retries.
	D int
	// MaxRetries bounds how many times the algorithm redraws its random
	// cycles after a failure. 0 means 1 attempt, no retries.
	MaxRetries int
	// Rng drives the random Hamiltonian cycles. Required.
	Rng *rand.Rand
	// StrictSCC selects anchors as strongly connected components of the
	// directed "equal" edges, the literal reading of Theorem 3. The
	// default uses undirected connected components, which is sound
	// because equivalence is symmetric (an equal edge is traversable
	// both ways) and never produces smaller anchors. StrictSCC exists to
	// validate that reading and for apples-to-apples comparisons with
	// the theorem's statement.
	StrictSCC bool
}

// SortConstRoundER solves equivalence class sorting in the exclusive-read
// model in O(1) parallel rounds using n processors, provided every
// equivalence class has size at least λn (Theorem 4). The algorithm:
//
//  1. Draw H_d, the union of d = d(λ) random Hamiltonian cycles, and test
//     every edge — at most 3d rounds of disjoint tests (step 2).
//  2. The "true" edges induce connected components; by Theorem 3 every
//     class contains a component of size ≥ λn/8 with high probability.
//     Components that big ("anchors") are cross-checked pairwise (O(1)
//     rounds of disjoint tests via the circle schedule) to merge anchors
//     of the same class.
//  3. Each anchor sweeps all still-unclassified elements |C| at a time
//     (step 3): ⌈targets/|C|⌉ ≤ 8/λ rounds per anchor, and at most
//     ⌊1/λ⌋ anchors, so O(1) rounds in total.
//
// If some element matches no anchor, the random graph failed to seed that
// element's class with a large component; the algorithm redraws and
// retries up to cfg.MaxRetries times and reports ErrConstRoundFailed after
// exhausting them. Following the paper's remark, a caller that does not
// know λ can halve its guess and call again.
func SortConstRoundER(s *model.Session, cfg ConstRoundConfig) (Result, error) {
	if s.Mode() != model.ER {
		return Result{}, fmt.Errorf("core: SortConstRoundER requires an ER session, got %v", s.Mode())
	}
	if cfg.Lambda <= 0 || cfg.Lambda > 0.4 {
		return Result{}, fmt.Errorf("core: lambda %v outside (0, 0.4]", cfg.Lambda)
	}
	if cfg.Rng == nil {
		return Result{}, errors.New("core: ConstRoundConfig.Rng is required")
	}
	n := s.N()
	if n == 0 {
		return Result{Stats: s.Stats()}, nil
	}
	if n < 3 {
		// Too small for Hamiltonian cycles; a single ER round suffices.
		return tinySortER(s, n)
	}
	d := cfg.D
	if d == 0 {
		d = graphs.DegreeForLambda(cfg.Lambda)
	}
	for attempt := 0; ; attempt++ {
		res, ok, err := constRoundAttempt(s, n, d, cfg.Lambda, cfg.StrictSCC, cfg.Rng)
		if err != nil {
			return Result{}, err
		}
		if ok {
			return res, nil
		}
		if attempt >= cfg.MaxRetries {
			return Result{}, ErrConstRoundFailed
		}
	}
}

// tinySortER classifies n ∈ {1,2} elements directly.
func tinySortER(s *model.Session, n int) (Result, error) {
	if n == 1 {
		return Result{Classes: [][]int{{0}}, Stats: s.Stats()}, nil
	}
	res, err := s.Round([]model.Pair{{A: 0, B: 1}})
	if err != nil {
		return Result{}, err
	}
	if res[0] {
		return Result{Classes: [][]int{{0, 1}}, Stats: s.Stats()}, nil
	}
	return Result{Classes: [][]int{{0}, {1}}, Stats: s.Stats()}, nil
}

func constRoundAttempt(s *model.Session, n, d int, lambda float64, strictSCC bool, rng *rand.Rand) (Result, bool, error) {
	dsu := unionfind.New(n)

	// Step 2: test the edges of H_d, cycle by cycle, in disjoint rounds.
	h := graphs.NewHamiltonian(n, d, rng)
	var allEdges []model.Pair
	var allResults []bool
	for _, round := range h.ERRounds() {
		res, err := s.Round(round)
		if err != nil {
			return Result{}, false, err
		}
		allEdges = append(allEdges, round...)
		allResults = append(allResults, res...)
	}
	for i, e := range allEdges {
		if allResults[i] {
			dsu.Union(e.A, e.B)
		}
	}

	// Anchors: components of size ≥ max(1, ⌊λn/8⌋), per step 3's bound
	// |C| ≥ λn/8 (Theorem 3 with γ = 1/4 gives λn/4; the paper uses the
	// slack λn/8).
	threshold := int(lambda * float64(n) / 8)
	if threshold < 1 {
		threshold = 1
	}
	var components [][]int
	if strictSCC {
		var equalEdges []model.Pair
		for i, e := range allEdges {
			if allResults[i] {
				equalEdges = append(equalEdges, e)
			}
		}
		components = graphs.StronglyConnectedComponents(n, equalEdges)
	} else {
		components = graphs.ComponentsFromEqualities(n, allEdges, allResults)
	}
	var anchors [][]int
	for _, c := range components {
		if len(c) >= threshold {
			anchors = append(anchors, c)
		}
	}
	if len(anchors) == 0 {
		return Result{}, false, nil
	}

	// Merge anchors of the same class: all representative pairs via the
	// circle schedule (disjoint per round, ≤ |anchors| rounds).
	reps := make([]int, len(anchors))
	for i, c := range anchors {
		reps[i] = c[0]
	}
	for _, round := range sched.AllPairs(reps) {
		res, err := s.Round(round)
		if err != nil {
			return Result{}, false, err
		}
		for i, eq := range res {
			if eq {
				dsu.Union(round[i].A, round[i].B)
			}
		}
	}

	// Sweep: each anchor classifies the elements outside every anchor,
	// |C| targets per round. Elements already matched to an earlier
	// anchor are dropped from later sweeps.
	inAnchor := make([]bool, n)
	for _, c := range anchors {
		for _, e := range c {
			inAnchor[e] = true
		}
	}
	var targets []int
	for e := 0; e < n; e++ {
		if !inAnchor[e] {
			targets = append(targets, e)
		}
	}
	matched := make([]bool, n)
	for _, anchor := range anchors {
		var remaining []int
		for _, t := range targets {
			if !matched[t] {
				remaining = append(remaining, t)
			}
		}
		if len(remaining) == 0 {
			break
		}
		for _, round := range sched.Sweep(anchor, remaining) {
			res, err := s.Round(round)
			if err != nil {
				return Result{}, false, err
			}
			for i, eq := range res {
				if eq {
					dsu.Union(round[i].A, round[i].B)
					matched[round[i].B] = true
				}
			}
		}
	}
	for _, t := range targets {
		if !matched[t] {
			return Result{}, false, nil // some class had no anchor: retry
		}
	}
	return Result{Classes: dsu.Groups(), Stats: s.Stats()}, true, nil
}
