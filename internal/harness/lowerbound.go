package harness

import (
	"fmt"

	"ecsort/internal/adversary"
	"ecsort/internal/core"
	"ecsort/internal/model"
)

// LBPoint is one adversary run: the comparisons an algorithm was forced
// to spend, and that count normalized by the theorem's predicted shape.
type LBPoint struct {
	N int
	// Param is f (equal-size sweep) or ℓ (smallest-class sweep).
	Param int
	// Comparisons is the total spent to finish sorting (equal-size), or
	// the count at the first scc marking (smallest-class).
	Comparisons int64
	// NormalizedNew is Comparisons·Param/n² — flat across the sweep if
	// the new Ω(n²/Param) bound is the right shape.
	NormalizedNew float64
	// NormalizedOld is Comparisons·Param²/n² — grows linearly in Param
	// under the new bound, flat only if the old Ω(n²/Param²) bound were
	// tight.
	NormalizedOld float64
}

// LBSeries is a sweep over the class-size parameter at fixed n.
type LBSeries struct {
	Kind   string // "equal-size" or "smallest-class"
	Points []LBPoint
}

func newLBPoint(n, param int, comparisons int64) LBPoint {
	n2 := float64(n) * float64(n)
	return LBPoint{
		N:             n,
		Param:         param,
		Comparisons:   comparisons,
		NormalizedNew: float64(comparisons) * float64(param) / n2,
		NormalizedOld: float64(comparisons) * float64(param) * float64(param) / n2,
	}
}

// RunAdversaryEqual sweeps the Theorem 5 adversary: for each f, the
// round-robin algorithm sorts n elements against the adaptive adversary
// and the forced comparisons are recorded. Every f must divide n.
func RunAdversaryEqual(n int, fs []int) (LBSeries, error) {
	out := LBSeries{Kind: "equal-size"}
	for _, f := range fs {
		if n%f != 0 {
			return LBSeries{}, fmt.Errorf("lower bound sweep: f=%d does not divide n=%d", f, n)
		}
		adv := adversary.NewEqualSize(n, f)
		s := model.NewSession(adv, model.ER, model.Workers(1))
		res, err := core.RoundRobin(s)
		if err != nil {
			return LBSeries{}, fmt.Errorf("adversary equal f=%d: %w", f, err)
		}
		if err := adv.Audit(); err != nil {
			return LBSeries{}, err
		}
		out.Points = append(out.Points, newLBPoint(n, f, res.Stats.Comparisons))
	}
	return out, nil
}

// RunAdversarySmallest sweeps the Theorem 6 adversary: for each ℓ, the
// recorded cost is the comparison count at the moment the first element
// of the protected smallest class was marked — before which no algorithm
// can correctly identify a smallest-class member.
func RunAdversarySmallest(n int, ls []int) (LBSeries, error) {
	out := LBSeries{Kind: "smallest-class"}
	for _, l := range ls {
		adv := adversary.NewSmallestClass(n, l)
		s := model.NewSession(adv, model.ER, model.Workers(1))
		if _, err := core.RoundRobin(s); err != nil {
			return LBSeries{}, fmt.Errorf("adversary smallest l=%d: %w", l, err)
		}
		if err := adv.Audit(); err != nil {
			return LBSeries{}, err
		}
		mark := adv.FirstSCCMark()
		if mark == 0 {
			return LBSeries{}, fmt.Errorf("adversary smallest l=%d: scc never marked", l)
		}
		out.Points = append(out.Points, newLBPoint(n, l, mark))
	}
	return out, nil
}
