package harness

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"ecsort/internal/core"
	"ecsort/internal/model"
	"ecsort/internal/oracle"
)

// Processor-scaling experiment: Valiant's model grants n processors, and
// the paper's round bounds assume that. This sweep simulates p < n
// processors — the session splits wide rounds into ⌈width/p⌉ physical
// rounds — and records how rounds degrade, the Brent's-theorem picture
// rounds ≤ O(ideal + work/p).

// ProcsPoint is one (algorithm, p) cell of the sweep.
type ProcsPoint struct {
	Algorithm   string
	Processors  int
	Rounds      int
	Comparisons int64
}

// RunProcessorSweep sorts one fixed input repeatedly under different
// processor budgets, for both parallel algorithms.
func RunProcessorSweep(n, k int, procs []int, seed int64) ([]ProcsPoint, error) {
	truth := oracle.RandomBalanced(n, k, rand.New(rand.NewSource(seed)))
	var out []ProcsPoint
	for _, p := range procs {
		cr := model.NewSession(truth, model.CR, model.Processors(p))
		if _, err := core.SortCR(cr, k); err != nil {
			return nil, fmt.Errorf("procs sweep CR p=%d: %w", p, err)
		}
		out = append(out, ProcsPoint{
			Algorithm:   "SortCR",
			Processors:  p,
			Rounds:      cr.Stats().Rounds,
			Comparisons: cr.Stats().Comparisons,
		})
		er := model.NewSession(truth, model.ER, model.Processors(p))
		if _, err := core.SortER(er); err != nil {
			return nil, fmt.Errorf("procs sweep ER p=%d: %w", p, err)
		}
		out = append(out, ProcsPoint{
			Algorithm:   "SortER",
			Processors:  p,
			Rounds:      er.Stats().Rounds,
			Comparisons: er.Stats().Comparisons,
		})
	}
	return out, nil
}

// RenderProcs writes the processor sweep as a table.
func RenderProcs(w io.Writer, n, k int, points []ProcsPoint) error {
	fmt.Fprintf(w, "\n== Processor scaling · n=%d, k=%d ==\n", n, k)
	fmt.Fprintln(w, "rounds under p < n processors (wide rounds split into ⌈width/p⌉):")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tp\trounds\tcomparisons\trounds·p/comparisons")
	for _, pt := range points {
		eff := float64(pt.Rounds) * float64(pt.Processors) / float64(pt.Comparisons)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.2f\n",
			pt.Algorithm, pt.Processors, pt.Rounds, pt.Comparisons, eff)
	}
	return tw.Flush()
}
