package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestProcessorSweep(t *testing.T) {
	n := 1024
	points, err := RunProcessorSweep(n, 4, []int{n, n / 4, n / 16}, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("points = %d", len(points))
	}
	// Per algorithm: comparisons are budget-independent; rounds never
	// decrease as p shrinks; with the smallest p, rounds approach
	// work/p (Brent).
	byAlgo := map[string][]ProcsPoint{}
	for _, pt := range points {
		byAlgo[pt.Algorithm] = append(byAlgo[pt.Algorithm], pt)
	}
	for algo, pts := range byAlgo {
		for i := 1; i < len(pts); i++ {
			if pts[i].Comparisons != pts[0].Comparisons {
				t.Errorf("%s: comparisons changed with p: %d vs %d",
					algo, pts[i].Comparisons, pts[0].Comparisons)
			}
			if pts[i].Rounds < pts[i-1].Rounds {
				t.Errorf("%s: rounds decreased when p shrank: %+v", algo, pts)
			}
		}
		last := pts[len(pts)-1]
		minRounds := int(last.Comparisons) / last.Processors
		if last.Rounds < minRounds {
			t.Errorf("%s: %d rounds below the work/p floor %d", algo, last.Rounds, minRounds)
		}
		if last.Rounds > 3*minRounds+64 {
			t.Errorf("%s: %d rounds far above the Brent bound ≈ %d", algo, last.Rounds, minRounds)
		}
	}
}

func TestRenderProcs(t *testing.T) {
	points, err := RunProcessorSweep(256, 4, []int{256, 64}, 18)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderProcs(&buf, 256, 4, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Processor scaling") {
		t.Fatalf("render output: %s", buf.String())
	}
}
