package harness

import (
	"fmt"
	"math/rand"

	"ecsort/internal/core"
	"ecsort/internal/dist"
	"ecsort/internal/model"
	"ecsort/internal/oracle"
)

// DominanceTrial is one Theorem 7 check: on a single sampled input, the
// round-robin comparison count against its pathwise bound
// 2·Σᵢ V̂ᵢ + (n−1), where V̂ᵢ is element i's class index capped at n (a
// draw from D_N(n)). The 2·Σ V̂ᵢ term is the paper's bound on cross-class
// tests (its double sum runs over pairs of distinct classes); the n−1
// term covers the within-class merge tests the regimen also performs (at
// most Yᵢ−1 per class), which the paper's count omits — without it the
// bound would read 0 on a single-class input.
type DominanceTrial struct {
	Comparisons int64
	Bound       int64
	Holds       bool
}

// DominanceReport aggregates the trials for one distribution.
type DominanceReport struct {
	Distribution string
	N            int
	Trials       []DominanceTrial
	Violations   int
	// MeanRatio is the average Comparisons/Bound — how much slack the
	// bound leaves (well below 1 in practice).
	MeanRatio float64
	// TheoryMeanBound is 2·n·E[D_N] when the mean is finite: the
	// expectation Theorem 7 converts into the linear upper bounds of
	// Theorems 8 and 9. +Inf for zeta with s ≤ 2.
	TheoryMeanBound float64
}

// RunDominance draws `trials` inputs of n elements from d and checks the
// Theorem 7 inequality pathwise on each. The inequality is a theorem, so
// Violations should always be 0; the report exists to regenerate the
// supporting numbers.
func RunDominance(d dist.Distribution, n, trials int, seed int64) (DominanceReport, error) {
	rng := rand.New(rand.NewSource(seed))
	rep := DominanceReport{
		Distribution:    d.Name(),
		N:               n,
		TheoryMeanBound: 2 * float64(n) * d.Mean(),
	}
	sumRatio := 0.0
	for t := 0; t < trials; t++ {
		labels := dist.Labels(d, n, rng)
		var bound int64
		for _, l := range labels {
			bound += int64(dist.CapAt(l, n))
		}
		bound = 2*bound + int64(n-1)
		s := model.NewSession(oracle.NewLabel(labels), model.ER, model.Workers(1))
		res, err := core.RoundRobin(s)
		if err != nil {
			return DominanceReport{}, fmt.Errorf("dominance %s trial %d: %w", d.Name(), t, err)
		}
		trial := DominanceTrial{
			Comparisons: res.Stats.Comparisons,
			Bound:       bound,
			Holds:       res.Stats.Comparisons <= bound,
		}
		if !trial.Holds {
			rep.Violations++
		}
		if bound > 0 {
			sumRatio += float64(trial.Comparisons) / float64(trial.Bound)
		}
		rep.Trials = append(rep.Trials, trial)
	}
	if trials > 0 {
		rep.MeanRatio = sumRatio / float64(trials)
	}
	return rep, nil
}
