package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"ecsort/internal/dist"
)

// The paper leaves open whether the round-robin regimen's comparison count
// can be bounded away from O(n²) for zeta distributions with s < 2. This
// explorer maps the empirical growth exponent as a function of s, the
// experiment Section 5's "how total comparison counts change as parameters
// of the distributions change" question suggests.

// ZetaExponentPoint is one s-value of the sweep: the fitted log–log
// growth exponent of comparisons vs n.
type ZetaExponentPoint struct {
	S        float64
	Exponent float64
}

// RunZetaExponentSweep measures the empirical exponent for each s,
// running the round-robin regimen over the given sizes with `trials`
// repetitions each.
func RunZetaExponentSweep(ss []float64, sizes []int, trials int, seed int64) ([]ZetaExponentPoint, error) {
	out := make([]ZetaExponentPoint, 0, len(ss))
	for i, s := range ss {
		series, err := RunFig5Series(dist.NewZeta(s), Fig5Config{
			Sizes:  sizes,
			Trials: trials,
			Seed:   seed + int64(i)*7919,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, ZetaExponentPoint{S: s, Exponent: series.LogLogSlope})
	}
	return out, nil
}

// RenderZetaExponents writes the sweep as a table. Expected shape: the
// exponent decreases toward 1 as s grows, crossing into "essentially
// linear" around s = 2 (where Theorem 9 proves linear expectation).
func RenderZetaExponents(w io.Writer, sweep []ZetaExponentPoint) error {
	fmt.Fprintf(w, "\n== Zeta growth exponents (open problem: s < 2) ==\n")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "s\tempirical exponent of comparisons ~ n^e")
	for _, p := range sweep {
		marker := ""
		if p.S >= 2 {
			marker = "  (linear in expectation: Thm 9)"
		}
		fmt.Fprintf(tw, "%.2f\t%.3f%s\n", p.S, p.Exponent, marker)
	}
	return tw.Flush()
}
