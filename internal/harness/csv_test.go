package harness

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"

	"ecsort/internal/dist"
)

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	records, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatalf("invalid csv: %v", err)
	}
	return records
}

func TestWriteFig5CSV(t *testing.T) {
	panel, err := RunFig5Panel("uniform", 200, 2, 13)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFig5CSV(&buf, panel); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf)
	if records[0][0] != "distribution" || len(records[0]) != 4 {
		t.Fatalf("header = %v", records[0])
	}
	// 3 series × 20 sizes × 2 trials data rows.
	if want := 1 + 3*20*2; len(records) != want {
		t.Fatalf("rows = %d, want %d", len(records), want)
	}
	// Every comparisons field parses as a positive integer.
	for _, rec := range records[1:] {
		c, err := strconv.ParseInt(rec[3], 10, 64)
		if err != nil || c <= 0 {
			t.Fatalf("bad comparisons field %q", rec[3])
		}
	}
}

func TestWriteRoundsCSV(t *testing.T) {
	series, err := RunRoundsCR(4, []int{64, 128}, 14)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRoundsCSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf)
	if len(records) != 3 {
		t.Fatalf("rows = %d", len(records))
	}
	if records[1][0] != "SortCR" {
		t.Fatalf("algorithm field = %q", records[1][0])
	}
}

func TestWriteLBCSV(t *testing.T) {
	series, err := RunAdversaryEqual(48, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLBCSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf)
	if len(records) != 3 || records[1][0] != "equal-size" {
		t.Fatalf("records = %v", records)
	}
}

func TestWriteZetaExponentCSV(t *testing.T) {
	sweep := []ZetaExponentPoint{{S: 1.5, Exponent: 1.31}, {S: 2.5, Exponent: 1.05}}
	var buf bytes.Buffer
	if err := WriteZetaExponentCSV(&buf, sweep); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf)
	if len(records) != 3 || records[1][0] != "1.500" {
		t.Fatalf("records = %v", records)
	}
}

func TestZetaExponentSweepShape(t *testing.T) {
	sweep, err := RunZetaExponentSweep(
		[]float64{1.1, 2.5},
		[]int{300, 600, 1200, 2400},
		2, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 2 {
		t.Fatalf("sweep = %v", sweep)
	}
	// The s=1.1 exponent must be clearly larger than the s=2.5 one.
	if sweep[0].Exponent < sweep[1].Exponent+0.2 {
		t.Errorf("exponents not separated: s=1.1 → %.3f, s=2.5 → %.3f",
			sweep[0].Exponent, sweep[1].Exponent)
	}
}

func TestRenderZetaExponents(t *testing.T) {
	var buf bytes.Buffer
	err := RenderZetaExponents(&buf, []ZetaExponentPoint{
		{S: 1.5, Exponent: 1.33}, {S: 2.5, Exponent: 1.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "open problem") || !strings.Contains(out, "Thm 9") {
		t.Fatalf("render output missing markers:\n%s", out)
	}
}

func TestFig5CSVMatchesSeriesData(t *testing.T) {
	series, err := RunFig5Series(dist.NewUniform(5), Fig5Config{
		Sizes: []int{100, 200}, Trials: 2, Seed: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	panel := Fig5Panel{Family: "uniform", Series: []Fig5Series{series}}
	var buf bytes.Buffer
	if err := WriteFig5CSV(&buf, panel); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf)
	// Row 1 must match Points[0].Comparisons[0].
	if got := records[1][3]; got != strconv.FormatInt(series.Points[0].Comparisons[0], 10) {
		t.Fatalf("first record %v does not match series %v", records[1], series.Points[0])
	}
}
