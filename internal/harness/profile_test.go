package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestRoundProfileCR(t *testing.T) {
	prof, err := RunRoundProfile("cr", 2048, 4, 19)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Algorithm != "SortCR" || len(prof.Widths) == 0 {
		t.Fatalf("profile = %+v", prof)
	}
	// Width trace must sum to the comparison count and never exceed n.
	total := 0
	for _, w := range prof.Widths {
		if w < 1 || w > 2048 {
			t.Fatalf("round width %d out of range", w)
		}
		total += w
	}
	if total == 0 {
		t.Fatal("empty trace")
	}
}

func TestRoundProfileAllAlgorithms(t *testing.T) {
	for _, algo := range []string{"cr", "er", "const"} {
		prof, err := RunRoundProfile(algo, 512, 4, 20)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(prof.Widths) == 0 {
			t.Fatalf("%s: empty profile", algo)
		}
	}
	if _, err := RunRoundProfile("bogus", 64, 2, 1); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
}

func TestRenderRoundProfile(t *testing.T) {
	prof := RoundProfile{Algorithm: "SortCR", N: 16, K: 2, Widths: []int{8, 16, 4}}
	var buf bytes.Buffer
	if err := RenderRoundProfile(&buf, prof); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "3 rounds") || !strings.Contains(out, "█") {
		t.Fatalf("render output:\n%s", out)
	}
}

func TestJSONReportRoundTrip(t *testing.T) {
	rep := NewReport(99)
	rows := Figure1Schedule(1024, 2)
	rep.Figure1 = rows
	series, err := RunRoundsCR(2, []int{64, 128}, 21)
	if err != nil {
		t.Fatal(err)
	}
	rep.Rounds = []RoundsSeries{series}
	sweep := []ZetaExponentPoint{{S: 2, Exponent: 1.1}}
	rep.ZetaSweep = sweep

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Seed != 99 || len(back.Figure1) != len(rows) || len(back.Rounds) != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Rounds[0].Algorithm != "SortCR" || len(back.Rounds[0].Points) != 2 {
		t.Fatalf("rounds series mangled: %+v", back.Rounds[0])
	}
	if back.ZetaSweep[0].S != 2 {
		t.Fatalf("zeta sweep mangled: %+v", back.ZetaSweep)
	}
	if !strings.Contains(back.Paper, "SPAA 2016") {
		t.Fatalf("paper field: %q", back.Paper)
	}
}

func TestJSONReportRejectsGarbage(t *testing.T) {
	if _, err := ReadReport(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
}
