package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"ecsort/internal/service"
)

// Service-level stress numbers: where the library harnesses measure
// comparisons and rounds in Valiant's model, this harness measures the
// classification service end to end — concurrent clients, sharded
// single-writer ingestion, batched compounding flushes — and reports
// wall-clock throughput. The shard sweep shows how ingestion scales as
// collections stop contending.

// ServiceSweepPoint is one shard-count configuration's measured
// throughput.
type ServiceSweepPoint struct {
	Shards int
	Report service.StressReport
}

// RunServiceStress drives one workload configuration and returns its
// report.
func RunServiceStress(cfg service.StressConfig) (service.StressReport, error) {
	return service.RunStress(cfg)
}

// RunServiceSweep runs the same workload across several shard counts.
func RunServiceSweep(shardCounts []int, cfg service.StressConfig) ([]ServiceSweepPoint, error) {
	points := make([]ServiceSweepPoint, 0, len(shardCounts))
	for _, sc := range shardCounts {
		c := cfg
		c.Service.Shards = sc
		rep, err := service.RunStress(c)
		if err != nil {
			return nil, fmt.Errorf("harness: shards=%d: %w", sc, err)
		}
		points = append(points, ServiceSweepPoint{Shards: sc, Report: rep})
	}
	return points, nil
}

// RenderServiceSweep renders the sweep as an aligned table.
func RenderServiceSweep(w io.Writer, points []ServiceSweepPoint) error {
	if len(points) == 0 {
		return nil
	}
	cfg := points[0].Report.Config
	fmt.Fprintf(w, "service ingestion sweep: %d collections × %d elements (%d classes), batch %d, %d writers\n",
		cfg.Collections, cfg.Elements, cfg.Classes, cfg.Batch, cfg.Writers)
	fmt.Fprintf(w, "%8s %6s %12s %12s %14s %12s %12s %9s\n",
		"shards", "batch", "elements/s", "batches/s", "comparisons", "rounds", "pairs/chunk", "verified")
	for _, p := range points {
		r := p.Report
		if _, err := fmt.Fprintf(w, "%8d %6s %12.0f %12.0f %14d %12d %12s %9v\n",
			p.Shards, batchMode(r), r.ElementsPerSec, r.BatchesPerSec, r.Comparisons, r.Rounds,
			pairsPerChunk(r), r.Verified); err != nil {
			return err
		}
	}
	return nil
}

// batchMode labels a report's oracle dispatch: "on" when worker-pool
// chunks were answered whole through the batch interface, "off" for
// per-pair dispatch (Service.DisableBatchOracle).
func batchMode(r service.StressReport) string {
	if r.Config.Service.DisableBatchOracle {
		return "off"
	}
	return "on"
}

// pairsPerChunk formats the batch amortization factor — equivalence
// tests per whole-chunk oracle invocation — or "-" when no batch
// invocation happened.
func pairsPerChunk(r service.StressReport) string {
	if r.BatchRounds == 0 {
		return "-"
	}
	return strconv.FormatFloat(float64(r.BatchPairs)/float64(r.BatchRounds), 'f', 1, 64)
}

// WriteServiceSweepCSV writes the sweep's raw observations.
func WriteServiceSweepCSV(w io.Writer, points []ServiceSweepPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"shards", "collections", "elements_per_collection", "classes", "batch", "writers",
		"elapsed_seconds", "elements", "batches", "flushes",
		"elements_per_sec", "batches_per_sec", "comparisons", "rounds",
		"batch_oracle", "batch_rounds", "batch_pairs", "batch_pairs_per_round", "verified",
	}); err != nil {
		return err
	}
	for _, p := range points {
		r := p.Report
		cfg := r.Config
		amortized := "0"
		if r.BatchRounds > 0 {
			amortized = strconv.FormatFloat(float64(r.BatchPairs)/float64(r.BatchRounds), 'f', 2, 64)
		}
		if err := cw.Write([]string{
			strconv.Itoa(p.Shards),
			strconv.Itoa(cfg.Collections),
			strconv.Itoa(cfg.Elements),
			strconv.Itoa(cfg.Classes),
			strconv.Itoa(cfg.Batch),
			strconv.Itoa(cfg.Writers),
			strconv.FormatFloat(r.Elapsed.Seconds(), 'f', 6, 64),
			strconv.FormatInt(r.Elements, 10),
			strconv.FormatInt(r.Batches, 10),
			strconv.FormatInt(r.Flushes, 10),
			strconv.FormatFloat(r.ElementsPerSec, 'f', 1, 64),
			strconv.FormatFloat(r.BatchesPerSec, 'f', 1, 64),
			strconv.FormatInt(r.Comparisons, 10),
			strconv.FormatInt(r.Rounds, 10),
			strconv.FormatBool(!cfg.Service.DisableBatchOracle),
			strconv.FormatInt(r.BatchRounds, 10),
			strconv.FormatInt(r.BatchPairs, 10),
			amortized,
			strconv.FormatBool(r.Verified),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
