// Package harness runs the paper's experiments and regenerates its
// quantitative artifacts: every Figure 5 series (Section 5), the Figure 1
// merge-schedule table, the round-complexity validations of Theorems 1, 2
// and 4, the lower-bound sweeps of Theorems 5 and 6, and the stochastic
// dominance audit of Theorem 7. Each runner returns plain data structures;
// render.go turns them into the tables the tools print.
package harness

import (
	"fmt"
	"math/rand"

	"ecsort/internal/core"
	"ecsort/internal/dist"
	"ecsort/internal/model"
	"ecsort/internal/oracle"
	"ecsort/internal/stats"
)

// Fig5Point is one size of a Figure 5 series: the comparison counts of
// `Trials` independent inputs of n elements.
type Fig5Point struct {
	N           int
	Comparisons []int64
}

// Fig5Series is one parameter setting of one distribution — one panel
// line of Figure 5.
type Fig5Series struct {
	Distribution string
	Points       []Fig5Point
	// Fit is the least-squares line through all (n, comparisons) pairs,
	// present when the paper fits one (all distributions except zeta
	// with s < 2).
	Fit *stats.Fit
	// LogLogSlope estimates the growth exponent; ≈1 for the linear
	// regimes and visibly >1 for zeta with small s.
	LogLogSlope float64
}

// Fig5Config controls a Figure 5 run.
type Fig5Config struct {
	Sizes  []int
	Trials int
	Seed   int64
	// FitLine requests the least-squares fit (the paper omits it for
	// zeta with s < 2).
	FitLine bool
}

// PaperSizes returns the element counts of the paper's experiments:
// 10,000 to 200,000 in steps of 10,000 (divided by 10 for zeta, per
// Section 5). scale shrinks everything proportionally for quick runs;
// scale=1 reproduces the paper exactly.
func PaperSizes(zeta bool, scale int) []int {
	if scale < 1 {
		scale = 1
	}
	base := 10000
	if zeta {
		base = 1000
	}
	base /= scale
	if base < 1 {
		base = 1
	}
	sizes := make([]int, 20)
	for i := range sizes {
		sizes[i] = base * (i + 1)
	}
	return sizes
}

// RunFig5Series samples class labels from d and runs the round-robin
// regimen of Jayapaul et al., exactly as Section 5 does, recording total
// comparisons for every (size, trial).
func RunFig5Series(d dist.Distribution, cfg Fig5Config) (Fig5Series, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	series := Fig5Series{Distribution: d.Name()}
	var xs, ys []float64
	for _, n := range cfg.Sizes {
		point := Fig5Point{N: n}
		for trial := 0; trial < cfg.Trials; trial++ {
			labels := dist.Labels(d, n, rng)
			s := model.NewSession(oracle.NewLabel(labels), model.ER, model.Workers(1))
			res, err := core.RoundRobin(s)
			if err != nil {
				return Fig5Series{}, fmt.Errorf("fig5 %s n=%d trial=%d: %w", d.Name(), n, trial, err)
			}
			point.Comparisons = append(point.Comparisons, res.Stats.Comparisons)
			xs = append(xs, float64(n))
			ys = append(ys, float64(res.Stats.Comparisons))
		}
		series.Points = append(series.Points, point)
	}
	if len(cfg.Sizes) >= 2 {
		series.LogLogSlope = stats.LogLogSlope(xs, ys)
		if cfg.FitLine {
			fit := stats.LeastSquares(xs, ys)
			series.Fit = &fit
		}
	}
	return series, nil
}

// Fig5Panel groups the series of one distribution family, mirroring one
// panel of Figure 5.
type Fig5Panel struct {
	Family string
	Series []Fig5Series
}

// Fig5Defaults enumerates the exact parameter grid of Section 5:
// uniform k ∈ {10,25,100}; geometric p ∈ {1/2,1/10,1/50};
// Poisson λ ∈ {1,5,25}; zeta s ∈ {1.1,1.5,2,2.5}.
func Fig5Defaults() map[string][]dist.Distribution {
	return map[string][]dist.Distribution{
		"uniform": {dist.NewUniform(10), dist.NewUniform(25), dist.NewUniform(100)},
		"geometric": {
			dist.NewGeometric(1.0 / 2), dist.NewGeometric(1.0 / 10), dist.NewGeometric(1.0 / 50),
		},
		"poisson": {dist.NewPoisson(1), dist.NewPoisson(5), dist.NewPoisson(25)},
		"zeta": {
			dist.NewZeta(1.1), dist.NewZeta(1.5), dist.NewZeta(2), dist.NewZeta(2.5),
		},
	}
}

// zetaNeedsFit reports whether the paper fits a line for this zeta
// parameter (s ≥ 2 only).
func zetaNeedsFit(d dist.Distribution) bool {
	z, ok := d.(dist.Zeta)
	return !ok || z.S >= 2
}

// RunFig5Panel runs the full series list of one family.
func RunFig5Panel(family string, scale, trials int, seed int64) (Fig5Panel, error) {
	dists, ok := Fig5Defaults()[family]
	if !ok {
		return Fig5Panel{}, fmt.Errorf("harness: unknown fig5 family %q", family)
	}
	panel := Fig5Panel{Family: family}
	for i, d := range dists {
		cfg := Fig5Config{
			Sizes:   PaperSizes(family == "zeta", scale),
			Trials:  trials,
			Seed:    seed + int64(i)*1000003,
			FitLine: zetaNeedsFit(d),
		}
		s, err := RunFig5Series(d, cfg)
		if err != nil {
			return Fig5Panel{}, err
		}
		panel.Series = append(panel.Series, s)
	}
	return panel, nil
}
