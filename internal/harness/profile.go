package harness

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"ecsort/internal/core"
	"ecsort/internal/model"
	"ecsort/internal/oracle"
)

// Round profiles: a per-round view of how the parallel algorithms spend
// their comparison budget over time — the phase structure of Figure 1
// made visible on a live run. Each bar is one physical round, scaled to
// the processor budget.

// RoundProfile is the recorded per-round width trace of one run.
type RoundProfile struct {
	Algorithm string
	N, K      int
	Widths    []int
}

// RunRoundProfile executes one algorithm with round logging enabled.
// algorithm is "cr", "er", or "const".
func RunRoundProfile(algorithm string, n, k int, seed int64) (RoundProfile, error) {
	truth := oracle.RandomBalanced(n, k, rand.New(rand.NewSource(seed)))
	prof := RoundProfile{N: n, K: k}
	switch algorithm {
	case "cr":
		prof.Algorithm = "SortCR"
		s := model.NewSession(truth, model.CR, model.WithRoundLog())
		if _, err := core.SortCR(s, k); err != nil {
			return RoundProfile{}, err
		}
		prof.Widths = s.RoundLog()
	case "er":
		prof.Algorithm = "SortER"
		s := model.NewSession(truth, model.ER, model.WithRoundLog())
		if _, err := core.SortER(s); err != nil {
			return RoundProfile{}, err
		}
		prof.Widths = s.RoundLog()
	case "const":
		prof.Algorithm = "SortConstRoundER"
		s := model.NewSession(truth, model.ER, model.WithRoundLog())
		_, err := core.SortConstRoundER(s, core.ConstRoundConfig{
			Lambda:     0.8 / float64(k),
			D:          8,
			MaxRetries: 8,
			Rng:        rand.New(rand.NewSource(seed ^ 0x5bd1e995)),
		})
		if err != nil {
			return RoundProfile{}, err
		}
		prof.Widths = s.RoundLog()
	default:
		return RoundProfile{}, fmt.Errorf("harness: unknown algorithm %q", algorithm)
	}
	return prof, nil
}

// RenderRoundProfile writes the trace as a bar per round (width scaled to
// 60 columns of '█').
func RenderRoundProfile(w io.Writer, prof RoundProfile) error {
	fmt.Fprintf(w, "\n== Round profile · %s (n=%d, k=%d) — %d rounds ==\n",
		prof.Algorithm, prof.N, prof.K, len(prof.Widths))
	maxW := 1
	for _, width := range prof.Widths {
		if width > maxW {
			maxW = width
		}
	}
	const cols = 60
	for i, width := range prof.Widths {
		bar := (width*cols + maxW - 1) / maxW
		if _, err := fmt.Fprintf(w, "%4d %7d %s\n", i, width, strings.Repeat("█", bar)); err != nil {
			return err
		}
	}
	return nil
}
