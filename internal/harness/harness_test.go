package harness

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"ecsort/internal/dist"
)

func TestPaperSizes(t *testing.T) {
	sizes := PaperSizes(false, 1)
	if len(sizes) != 20 || sizes[0] != 10000 || sizes[19] != 200000 {
		t.Fatalf("non-zeta sizes = %v", sizes)
	}
	zsizes := PaperSizes(true, 1)
	if zsizes[0] != 1000 || zsizes[19] != 20000 {
		t.Fatalf("zeta sizes = %v", zsizes)
	}
	scaled := PaperSizes(false, 10)
	if scaled[0] != 1000 || scaled[19] != 20000 {
		t.Fatalf("scaled sizes = %v", scaled)
	}
}

func TestFig5UniformLinearity(t *testing.T) {
	cfg := Fig5Config{
		Sizes:   []int{1000, 2000, 3000, 4000, 5000},
		Trials:  3,
		Seed:    1,
		FitLine: true,
	}
	series, err := RunFig5Series(dist.NewUniform(10), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if series.Fit == nil {
		t.Fatal("no fit produced")
	}
	if series.Fit.R2 < 0.999 {
		t.Errorf("uniform k=10 fit R² = %v, want ≈1 (paper: points on the line)", series.Fit.R2)
	}
	if series.Fit.MaxRelResidual > 0.05 {
		t.Errorf("uniform residuals %v too wide", series.Fit.MaxRelResidual)
	}
	if math.Abs(series.LogLogSlope-1) > 0.1 {
		t.Errorf("growth exponent %v, want ≈1", series.LogLogSlope)
	}
}

func TestFig5SlopeOrderingUniform(t *testing.T) {
	cfg := Fig5Config{Sizes: []int{2000, 4000, 6000}, Trials: 2, Seed: 2, FitLine: true}
	var slopes []float64
	for _, k := range []int{10, 25, 100} {
		s, err := RunFig5Series(dist.NewUniform(k), cfg)
		if err != nil {
			t.Fatal(err)
		}
		slopes = append(slopes, s.Fit.Slope)
	}
	if !(slopes[0] < slopes[1] && slopes[1] < slopes[2]) {
		t.Errorf("uniform slopes not increasing in k: %v", slopes)
	}
}

func TestFig5ZetaSuperlinearity(t *testing.T) {
	cfg := Fig5Config{Sizes: []int{500, 1000, 2000, 4000}, Trials: 2, Seed: 3}
	shallow, err := RunFig5Series(dist.NewZeta(1.1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	steepOK, err := RunFig5Series(dist.NewZeta(2.5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if shallow.LogLogSlope < 1.15 {
		t.Errorf("zeta s=1.1 exponent %v, expected clearly super-linear", shallow.LogLogSlope)
	}
	if steepOK.LogLogSlope > 1.15 {
		t.Errorf("zeta s=2.5 exponent %v, expected near-linear", steepOK.LogLogSlope)
	}
	if shallow.Fit != nil {
		t.Error("zeta s=1.1 must not get a fit line")
	}
}

func TestRunFig5PanelUnknownFamily(t *testing.T) {
	if _, err := RunFig5Panel("cauchy", 1, 1, 1); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestFig5DefaultsComplete(t *testing.T) {
	d := Fig5Defaults()
	want := map[string]int{"uniform": 3, "geometric": 3, "poisson": 3, "zeta": 4}
	for fam, count := range want {
		if len(d[fam]) != count {
			t.Errorf("family %s has %d settings, want %d", fam, len(d[fam]), count)
		}
	}
}

func TestRoundsCRFlatInN(t *testing.T) {
	series, err := RunRoundsCR(8, []int{512, 2048, 8192}, 4)
	if err != nil {
		t.Fatal(err)
	}
	first := series.Points[0].Rounds
	last := series.Points[len(series.Points)-1].Rounds
	if last > 2*first+10 {
		t.Errorf("CR rounds grew with n: %d → %d", first, last)
	}
}

func TestRoundsERLogarithmic(t *testing.T) {
	series, err := RunRoundsER(4, []int{256, 1024, 4096}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(series.Points); i++ {
		if series.Points[i].Rounds <= series.Points[i-1].Rounds {
			t.Errorf("ER rounds not increasing with n: %+v", series.Points)
		}
	}
	// Growth per 4× size step should be roughly additive (∝ log n), not
	// multiplicative.
	d1 := series.Points[1].Rounds - series.Points[0].Rounds
	d2 := series.Points[2].Rounds - series.Points[1].Rounds
	if d2 > 3*d1+10 {
		t.Errorf("ER round growth looks super-logarithmic: deltas %d, %d", d1, d2)
	}
}

func TestRoundsConstFlat(t *testing.T) {
	series, err := RunRoundsConst(0.3, 8, 3, []int{300, 1200, 4800}, 6)
	if err != nil {
		t.Fatal(err)
	}
	first := series.Points[0].Rounds
	last := series.Points[len(series.Points)-1].Rounds
	if last > 3*first+30 {
		t.Errorf("const-round rounds grew with n: %d → %d", first, last)
	}
}

func TestAdversaryEqualSweep(t *testing.T) {
	series, err := RunAdversaryEqual(96, []int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range series.Points {
		if p.NormalizedNew < 1.0/64 {
			t.Errorf("f=%d: normalized count %.4f below Lemma 3 constant 1/64", p.Param, p.NormalizedNew)
		}
	}
	// The new normalization should be far flatter than the old one.
	newSpread := series.Points[2].NormalizedNew / series.Points[0].NormalizedNew
	oldSpread := series.Points[2].NormalizedOld / series.Points[0].NormalizedOld
	if oldSpread < 2*newSpread {
		t.Errorf("old-bound normalization (spread %.2f) not clearly worse than new (%.2f)",
			oldSpread, newSpread)
	}
}

func TestAdversaryEqualRejectsBadF(t *testing.T) {
	if _, err := RunAdversaryEqual(10, []int{3}); err == nil {
		t.Fatal("f=3 with n=10 accepted")
	}
}

func TestAdversarySmallestSweep(t *testing.T) {
	series, err := RunAdversarySmallest(120, []int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range series.Points {
		if p.Comparisons <= 0 {
			t.Errorf("l=%d: no forced comparisons recorded", p.Param)
		}
	}
}

func TestDominanceHolds(t *testing.T) {
	for _, d := range []dist.Distribution{
		dist.NewUniform(10),
		dist.NewGeometric(0.1),
		dist.NewPoisson(5),
		dist.NewZeta(1.5),
		dist.NewZeta(2.5),
	} {
		rep, err := RunDominance(d, 600, 4, 7)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Violations != 0 {
			t.Errorf("%s: %d Theorem 7 violations", d.Name(), rep.Violations)
		}
		if rep.MeanRatio > 1 {
			t.Errorf("%s: mean ratio %v > 1", d.Name(), rep.MeanRatio)
		}
	}
}

func TestDominanceTheoryBound(t *testing.T) {
	rep, err := RunDominance(dist.NewUniform(10), 100, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2.0 * 100 * 4.5; rep.TheoryMeanBound != want {
		t.Errorf("theory bound %v, want %v", rep.TheoryMeanBound, want)
	}
	zrep, err := RunDominance(dist.NewZeta(1.5), 100, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(zrep.TheoryMeanBound, 1) {
		t.Errorf("zeta s=1.5 theory bound %v, want +Inf", zrep.TheoryMeanBound)
	}
}

func TestFigure1ScheduleShape(t *testing.T) {
	rows := Figure1Schedule(1<<16, 4)
	if len(rows) == 0 {
		t.Fatal("empty schedule")
	}
	// Phases appear in order and answers strictly decrease.
	lastPhase := 1
	for i, r := range rows {
		if r.Phase < lastPhase {
			t.Fatalf("row %d: phase went backwards", i)
		}
		lastPhase = r.Phase
		if i > 0 && r.Answers >= rows[i-1].Answers {
			t.Fatalf("answers not decreasing: %+v", rows)
		}
	}
	// Last iteration ends with a single answer.
	last := rows[len(rows)-1]
	if (last.Answers+last.Reduction-1)/last.Reduction != 1 {
		t.Fatalf("final row does not reach one answer: %+v", last)
	}
	p1, p2 := Figure1Totals(rows)
	if p1 == 0 || p2 == 0 {
		t.Fatalf("totals p1=%d p2=%d, want both phases present at this scale", p1, p2)
	}
	// Lemma 2: phase 2 rounds ≈ iterations, O(log log n).
	if p2 > 12 {
		t.Errorf("phase 2 rounds = %d, want O(log log n) ≈ small", p2)
	}
}

// TestFigure1PredictsActualRounds: the schedule table is derived from
// SortCR's control flow with worst-case class counts, so a real run on a
// balanced input must use at most the predicted physical rounds (plus
// nothing — the prediction is a true upper bound per iteration).
func TestFigure1PredictsActualRounds(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{1 << 10, 2}, {1 << 12, 4}, {1 << 14, 8},
	} {
		rows := Figure1Schedule(tc.n, tc.k)
		predicted := 0
		for _, r := range rows {
			predicted += r.Rounds
		}
		series, err := RunRoundsCR(tc.k, []int{tc.n}, int64(tc.n))
		if err != nil {
			t.Fatal(err)
		}
		actual := series.Points[0].Rounds
		if actual > predicted {
			t.Errorf("n=%d k=%d: actual %d rounds exceed Figure 1 prediction %d",
				tc.n, tc.k, actual, predicted)
		}
		// And the prediction is not wildly loose either (same control
		// flow, so within a small factor).
		if predicted > 4*actual+8 {
			t.Errorf("n=%d k=%d: prediction %d far above actual %d",
				tc.n, tc.k, predicted, actual)
		}
	}
}

func TestFigure1Degenerate(t *testing.T) {
	if rows := Figure1Schedule(0, 3); rows != nil {
		t.Fatal("n=0 should be empty")
	}
	if rows := Figure1Schedule(1, 1); len(rows) != 0 {
		t.Fatalf("n=1 schedule = %v", rows)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	var buf bytes.Buffer

	panel, err := RunFig5Panel("uniform", 100, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderFig5(&buf, panel); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "uniform(k=10)") {
		t.Error("fig5 render missing series header")
	}

	buf.Reset()
	rs, err := RunRoundsCR(4, []int{64, 256}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderRounds(&buf, rs, "note"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SortCR") {
		t.Error("rounds render missing algorithm")
	}

	buf.Reset()
	lb, err := RunAdversaryEqual(48, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderLB(&buf, lb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "equal-size") {
		t.Error("lb render missing kind")
	}

	buf.Reset()
	rep, err := RunDominance(dist.NewUniform(5), 200, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderDominance(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "violations: 0/2") {
		t.Errorf("dominance render unexpected: %s", buf.String())
	}

	buf.Reset()
	if err := RenderFigure1(&buf, 4096, 3, Figure1Schedule(4096, 3)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "phase 1 rounds") {
		t.Error("figure1 render missing totals")
	}
}
