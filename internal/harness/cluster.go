package harness

import (
	"context"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"ecsort/internal/cluster"
	"ecsort/internal/core"
	"ecsort/internal/service"
)

// Cluster-level stress: the service sweep one level up. Where
// RunServiceSweep scales shard counts inside one process, this harness
// scales backend node counts behind a coordinator — same concurrent
// batched writers, same ground-truth verification, with every operation
// crossing the Transport boundary (ChanTransport: the wire codec and
// message-passing discipline without socket noise).

// ClusterStressConfig shapes one cluster drive.
type ClusterStressConfig struct {
	// Collections is the number of independent collections. 0 means 16.
	Collections int
	// Elements is the universe size per collection. 0 means 1024.
	Elements int
	// Classes is the class count per collection. 0 means 16.
	Classes int
	// Batch is the number of elements per ingest call. 0 means 64.
	Batch int
	// Writers is the number of concurrent client goroutines. 0 means 8.
	Writers int
	// Seed drives the synthetic labels and ingestion order.
	Seed int64
	// Service tunes each backend node's service (Shards is per node).
	Service service.Config
}

func (c *ClusterStressConfig) setDefaults() {
	if c.Collections <= 0 {
		c.Collections = 16
	}
	if c.Elements <= 0 {
		c.Elements = 1024
	}
	if c.Classes <= 0 {
		c.Classes = 16
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.Writers <= 0 {
		c.Writers = 8
	}
}

// ClusterStressReport is the outcome of one cluster drive.
type ClusterStressReport struct {
	Config         ClusterStressConfig `json:"config"`
	Nodes          int                 `json:"nodes"`
	Elapsed        time.Duration       `json:"elapsed"`
	Elements       int64               `json:"elements"`
	Batches        int64               `json:"batches"`
	ElementsPerSec float64             `json:"elements_per_sec"`
	BatchesPerSec  float64             `json:"batches_per_sec"`
	// Spread is collections-per-node, routing order — the placement
	// picture the sweep exists to show.
	Spread []int `json:"spread"`
	// HeavyPlacements counts collections the weight estimator steered
	// off their hash slot.
	HeavyPlacements int64 `json:"heavy_placements"`
	// Verified reports every collection's final fresh classes matched
	// its ground-truth partition through the coordinator.
	Verified bool `json:"verified"`
}

// RunClusterStress assembles nodes backends behind a coordinator,
// drives cfg's concurrent batched workload through it, and verifies
// every collection against ground truth.
func RunClusterStress(nodes int, cfg ClusterStressConfig) (ClusterStressReport, error) {
	cfg.setDefaults()
	if nodes <= 0 {
		nodes = 1
	}
	svcs := make([]*service.Service, nodes)
	backends := make([]cluster.Backend, nodes)
	for i := range svcs {
		svcs[i] = service.New(cfg.Service)
		node := cluster.NewNode(svcs[i])
		node.SetLogger(func(string, ...any) {})
		backends[i] = cluster.Backend{Name: fmt.Sprintf("node-%d", i), Transport: cluster.NewChanTransport(node)}
	}
	defer func() {
		for _, s := range svcs {
			s.Close()
		}
	}()
	co, err := cluster.New(cluster.Config{}, backends)
	if err != nil {
		return ClusterStressReport{}, err
	}
	defer co.Close()
	//ecsort:ignore ctxflow harness lifetime root: a stress drive owns its whole run
	ctx := context.Background()

	type job struct {
		key    string
		labels []int
		order  []int
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	jobs := make([]job, cfg.Collections)
	for i := range jobs {
		labels := make([]int, cfg.Elements)
		for e := range labels {
			labels[e] = rng.Intn(cfg.Classes)
		}
		jobs[i] = job{
			key:    fmt.Sprintf("cstress-%03d", i),
			labels: labels,
			order:  rng.Perm(cfg.Elements),
		}
		if _, err := co.CreateCollection(ctx, jobs[i].key, service.OracleSpec{Kind: service.KindLabel, Labels: labels}); err != nil {
			return ClusterStressReport{}, err
		}
	}

	errCh := make(chan error, cfg.Writers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(jobs); i += cfg.Writers {
				j := jobs[i]
				for lo := 0; lo < len(j.order); lo += cfg.Batch {
					hi := min(lo+cfg.Batch, len(j.order))
					if _, err := co.Ingest(ctx, j.key, j.order[lo:hi], false); err != nil {
						errCh <- fmt.Errorf("harness: cluster ingest %s: %w", j.key, err)
						return
					}
				}
				if _, err := co.Ingest(ctx, j.key, nil, true); err != nil {
					errCh <- fmt.Errorf("harness: cluster flush %s: %w", j.key, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return ClusterStressReport{}, err
	default:
	}

	rep := ClusterStressReport{Config: cfg, Nodes: nodes, Elapsed: elapsed}
	rep.Elements = int64(cfg.Collections) * int64(cfg.Elements)
	batchesPerCol := (cfg.Elements + cfg.Batch - 1) / cfg.Batch
	rep.Batches = int64(cfg.Collections) * int64(batchesPerCol+1) // +1 flush call
	if secs := elapsed.Seconds(); secs > 0 {
		rep.ElementsPerSec = float64(rep.Elements) / secs
		rep.BatchesPerSec = float64(rep.Batches) / secs
	}
	rep.HeavyPlacements = co.HeavyPlacements()
	rep.Spread = make([]int, nodes)
	for i, s := range svcs {
		rep.Spread[i] = len(s.Collections())
	}

	rep.Verified = true
	for _, j := range jobs {
		snap, err := co.Classes(ctx, j.key, true)
		if err != nil {
			return ClusterStressReport{}, err
		}
		got := core.Result{Classes: snap.Classes}
		if snap.Size != cfg.Elements || !core.SameClassification(got.Labels(cfg.Elements), j.labels) {
			rep.Verified = false
		}
	}
	if !rep.Verified {
		return rep, errors.New("harness: cluster drive diverged from ground truth")
	}
	return rep, nil
}

// RunClusterSweep runs the same workload across several node counts.
func RunClusterSweep(nodeCounts []int, cfg ClusterStressConfig) ([]ClusterStressReport, error) {
	reports := make([]ClusterStressReport, 0, len(nodeCounts))
	for _, nodes := range nodeCounts {
		rep, err := RunClusterStress(nodes, cfg)
		if err != nil {
			return nil, fmt.Errorf("harness: nodes=%d: %w", nodes, err)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// RenderClusterSweep renders the sweep as an aligned table.
func RenderClusterSweep(w io.Writer, reports []ClusterStressReport) error {
	if len(reports) == 0 {
		return nil
	}
	cfg := reports[0].Config
	fmt.Fprintf(w, "cluster ingestion sweep: %d collections × %d elements (%d classes), batch %d, %d writers, %d shards/node\n",
		cfg.Collections, cfg.Elements, cfg.Classes, cfg.Batch, cfg.Writers, cfg.Service.Shards)
	fmt.Fprintf(w, "%6s %12s %12s %16s %7s %9s\n",
		"nodes", "elements/s", "batches/s", "spread", "heavy", "verified")
	for _, rep := range reports {
		if _, err := fmt.Fprintf(w, "%6d %12.0f %12.0f %16s %7d %9v\n",
			rep.Nodes, rep.ElementsPerSec, rep.BatchesPerSec,
			spreadString(rep.Spread), rep.HeavyPlacements, rep.Verified); err != nil {
			return err
		}
	}
	return nil
}

// spreadString formats collections-per-node compactly.
func spreadString(spread []int) string {
	s := ""
	for i, n := range spread {
		if i > 0 {
			s += "/"
		}
		s += strconv.Itoa(n)
	}
	return s
}

// WriteClusterSweepCSV writes the sweep's raw observations.
func WriteClusterSweepCSV(w io.Writer, reports []ClusterStressReport) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"nodes", "collections", "elements_per_collection", "classes", "batch", "writers",
		"shards_per_node", "elapsed_seconds", "elements", "batches",
		"elements_per_sec", "batches_per_sec", "spread", "heavy_placements", "verified",
	}); err != nil {
		return err
	}
	for _, rep := range reports {
		cfg := rep.Config
		if err := cw.Write([]string{
			strconv.Itoa(rep.Nodes),
			strconv.Itoa(cfg.Collections),
			strconv.Itoa(cfg.Elements),
			strconv.Itoa(cfg.Classes),
			strconv.Itoa(cfg.Batch),
			strconv.Itoa(cfg.Writers),
			strconv.Itoa(cfg.Service.Shards),
			strconv.FormatFloat(rep.Elapsed.Seconds(), 'f', 6, 64),
			strconv.FormatInt(rep.Elements, 10),
			strconv.FormatInt(rep.Batches, 10),
			strconv.FormatFloat(rep.ElementsPerSec, 'f', 1, 64),
			strconv.FormatFloat(rep.BatchesPerSec, 'f', 1, 64),
			spreadString(rep.Spread),
			strconv.FormatInt(rep.HeavyPlacements, 10),
			strconv.FormatBool(rep.Verified),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
