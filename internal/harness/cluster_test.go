package harness

import (
	"bytes"
	"strings"
	"testing"

	"ecsort/internal/service"
)

// TestClusterStressVerifies: a small fixed-seed drive through a 2-node
// coordinator reproduces ground truth, and its accounting covers every
// collection.
func TestClusterStressVerifies(t *testing.T) {
	cfg := ClusterStressConfig{
		Collections: 6,
		Elements:    192,
		Classes:     8,
		Batch:       32,
		Writers:     3,
		Seed:        7,
		Service:     service.Config{Shards: 2, BatchSize: 64},
	}
	rep, err := RunClusterStress(2, cfg)
	if err != nil {
		t.Fatalf("RunClusterStress: %v", err)
	}
	if !rep.Verified {
		t.Fatal("cluster drive did not verify against ground truth")
	}
	if rep.Elements != 6*192 {
		t.Fatalf("elements accounted: got %d, want %d", rep.Elements, 6*192)
	}
	total := 0
	for _, n := range rep.Spread {
		total += n
	}
	if total != cfg.Collections {
		t.Fatalf("spread %v sums to %d, want %d collections", rep.Spread, total, cfg.Collections)
	}
}

// TestClusterSweepOutputs exercises the render and CSV writers.
func TestClusterSweepOutputs(t *testing.T) {
	cfg := ClusterStressConfig{
		Collections: 4,
		Elements:    96,
		Classes:     4,
		Batch:       32,
		Writers:     2,
		Seed:        11,
		Service:     service.Config{Shards: 1, BatchSize: 64},
	}
	reports, err := RunClusterSweep([]int{1, 2}, cfg)
	if err != nil {
		t.Fatalf("RunClusterSweep: %v", err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	var table bytes.Buffer
	if err := RenderClusterSweep(&table, reports); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "nodes") || !strings.Contains(table.String(), "verified") {
		t.Fatalf("render missing columns:\n%s", table.String())
	}
	var csvOut bytes.Buffer
	if err := WriteClusterSweepCSV(&csvOut, reports); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvOut.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV: got %d lines, want header + 2 rows:\n%s", len(lines), csvOut.String())
	}
}
