package harness

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"ecsort/internal/stats"
)

// RenderFig5 writes a Figure 5 panel as a text table: one row per input
// size with per-trial spread, followed by the fit line when present.
func RenderFig5(w io.Writer, panel Fig5Panel) error {
	for _, series := range panel.Series {
		fmt.Fprintf(w, "\n== Figure 5 · %s ==\n", series.Distribution)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "n\tmean comparisons\tmin\tmax\tspread")
		for _, p := range series.Points {
			xs := make([]float64, len(p.Comparisons))
			for i, c := range p.Comparisons {
				xs[i] = float64(c)
			}
			s := stats.Summarize(xs)
			fmt.Fprintf(tw, "%d\t%.0f\t%.0f\t%.0f\t%.2f%%\n",
				p.N, s.Mean, s.Min, s.Max, 100*s.RelSpread)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		if series.Fit != nil {
			fmt.Fprintf(w, "best fit: comparisons ≈ %.4f·n %+.1f   (R²=%.6f, max residual %.2f%%)\n",
				series.Fit.Slope, series.Fit.Intercept, series.Fit.R2, 100*series.Fit.MaxRelResidual)
		} else {
			fmt.Fprintf(w, "no fit line (paper omits fits for zeta s<2; growth is super-linear)\n")
		}
		fmt.Fprintf(w, "log–log growth exponent: %.3f\n", series.LogLogSlope)
	}
	return nil
}

// RenderRounds writes a round-complexity sweep.
func RenderRounds(w io.Writer, series RoundsSeries, note string) error {
	fmt.Fprintf(w, "\n== Rounds · %s ==\n", series.Algorithm)
	if note != "" {
		fmt.Fprintf(w, "%s\n", note)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "n\tk\trounds\tcomparisons\trounds/log2(n)\trounds/k")
	for _, p := range series.Points {
		logN := math.Log2(float64(p.N))
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%.2f\t%.2f\n",
			p.N, p.K, p.Rounds, p.Comparisons,
			float64(p.Rounds)/logN, float64(p.Rounds)/float64(p.K))
	}
	return tw.Flush()
}

// RenderLB writes a lower-bound sweep: the NormalizedNew column should be
// roughly flat (the paper's Ω(n²/f) shape) while NormalizedOld climbs.
func RenderLB(w io.Writer, series LBSeries) error {
	fmt.Fprintf(w, "\n== Lower bound · %s adversary ==\n", series.Kind)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "n\tparam\tforced comparisons\tC·p/n² (new bound, ~flat)\tC·p²/n² (old bound, climbs)")
	for _, p := range series.Points {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.4f\t%.4f\n",
			p.N, p.Param, p.Comparisons, p.NormalizedNew, p.NormalizedOld)
	}
	return tw.Flush()
}

// RenderDominance writes a Theorem 7 audit.
func RenderDominance(w io.Writer, rep DominanceReport) error {
	fmt.Fprintf(w, "\n== Theorem 7 dominance · %s (n=%d) ==\n", rep.Distribution, rep.N)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "trial\tcomparisons\tbound 2·ΣV̂+(n−1)\tholds")
	for i, t := range rep.Trials {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%v\n", i, t.Comparisons, t.Bound, t.Holds)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "violations: %d/%d, mean comparisons/bound ratio: %.3f\n",
		rep.Violations, len(rep.Trials), rep.MeanRatio)
	if !math.IsInf(rep.TheoryMeanBound, 1) {
		fmt.Fprintf(w, "theory mean bound 2·n·E[D_N]: %.0f\n", rep.TheoryMeanBound)
	} else {
		fmt.Fprintf(w, "theory mean bound diverges (zeta with s ≤ 2)\n")
	}
	return nil
}

// RenderFigure1 writes the Figure 1 merge-schedule table.
func RenderFigure1(w io.Writer, n, k int, rows []F1Row) error {
	fmt.Fprintf(w, "\n== Figure 1 schedule · n=%d, k=%d ==\n", n, k)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "phase\tanswers\tprocs/answer\tanswer size ≤\tclasses ≤\tcomparisons ≤\trounds\treduction")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r.Phase, r.Answers, r.ProcsPerAnswer, r.MaxAnswerSize,
			r.MaxClasses, r.Comparisons, r.Rounds, r.Reduction)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	p1, p2 := Figure1Totals(rows)
	fmt.Fprintf(w, "phase 1 rounds: %d (Lemma 1: O(k))   phase 2 rounds: %d (Lemma 2: O(log log n))\n", p1, p2)
	return nil
}
