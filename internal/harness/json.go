package harness

import (
	"encoding/json"
	"io"
	"time"
)

// Report is the JSON envelope bundling a whole experiment run — the
// machine-readable counterpart of the rendered tables, for archiving runs
// and diffing reproductions.
type Report struct {
	// Paper identifies what is being reproduced.
	Paper string `json:"paper"`
	// GeneratedAt stamps the run (RFC 3339).
	GeneratedAt string `json:"generated_at"`
	// Seed makes the run replayable.
	Seed int64 `json:"seed"`

	Fig5      []Fig5Panel         `json:"fig5,omitempty"`
	Rounds    []RoundsSeries      `json:"rounds,omitempty"`
	LowerBnds []LBSeries          `json:"lower_bounds,omitempty"`
	Dominance []DominanceReport   `json:"dominance,omitempty"`
	ZetaSweep []ZetaExponentPoint `json:"zeta_exponents,omitempty"`
	Figure1   []F1Row             `json:"figure1,omitempty"`
}

// NewReport creates an empty report stamped now.
func NewReport(seed int64) *Report {
	return &Report{
		Paper:       "Devanny, Goodrich, Jetviroj: Parallel Equivalence Class Sorting (SPAA 2016)",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Seed:        seed,
	}
}

// WriteJSON serializes the report, indented for direct archiving.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses a previously written report.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, err
	}
	return &r, nil
}
