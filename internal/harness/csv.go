package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV writers for every experiment artifact, so results can be plotted
// with any external tool. One row per observation; headers match the
// field names used in the rendered tables.

// WriteFig5CSV writes a Figure 5 panel as rows of
// (distribution, n, trial, comparisons).
func WriteFig5CSV(w io.Writer, panel Fig5Panel) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"distribution", "n", "trial", "comparisons"}); err != nil {
		return err
	}
	for _, series := range panel.Series {
		for _, p := range series.Points {
			for trial, c := range p.Comparisons {
				rec := []string{
					series.Distribution,
					strconv.Itoa(p.N),
					strconv.Itoa(trial),
					strconv.FormatInt(c, 10),
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteRoundsCSV writes a rounds sweep as rows of
// (algorithm, n, k, rounds, comparisons).
func WriteRoundsCSV(w io.Writer, series RoundsSeries) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"algorithm", "n", "k", "rounds", "comparisons"}); err != nil {
		return err
	}
	for _, p := range series.Points {
		rec := []string{
			series.Algorithm,
			strconv.Itoa(p.N),
			strconv.Itoa(p.K),
			strconv.Itoa(p.Rounds),
			strconv.FormatInt(p.Comparisons, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteLBCSV writes a lower-bound sweep as rows of
// (kind, n, param, comparisons, normalized_new, normalized_old).
func WriteLBCSV(w io.Writer, series LBSeries) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "n", "param", "comparisons", "c_param_over_n2", "c_param2_over_n2"}); err != nil {
		return err
	}
	for _, p := range series.Points {
		rec := []string{
			series.Kind,
			strconv.Itoa(p.N),
			strconv.Itoa(p.Param),
			strconv.FormatInt(p.Comparisons, 10),
			fmt.Sprintf("%.6f", p.NormalizedNew),
			fmt.Sprintf("%.6f", p.NormalizedOld),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteZetaExponentCSV writes a zeta exponent sweep as rows of
// (s, exponent).
func WriteZetaExponentCSV(w io.Writer, sweep []ZetaExponentPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"s", "loglog_exponent"}); err != nil {
		return err
	}
	for _, p := range sweep {
		rec := []string{
			fmt.Sprintf("%.3f", p.S),
			fmt.Sprintf("%.4f", p.Exponent),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
