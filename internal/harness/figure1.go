package harness

// Figure 1 of the paper tabulates, iteration by iteration, how the
// two-phase CR algorithm compounds answers: how many answers remain, how
// many processors each owns, how large an answer can be, how many rounds
// the iteration needs, and by what factor the answer count drops. This
// file regenerates that table for any (n, k) from the algorithm's control
// flow, using worst-case class counts — the same quantities the figure
// tracks.

// F1Row is one loop iteration of the Figure 1 table.
type F1Row struct {
	Phase          int // 1 = pairwise while loop, 2 = compounding while loop
	Answers        int // answers at the start of the iteration
	ProcsPerAnswer int
	MaxAnswerSize  int   // elements per answer (capped at n)
	MaxClasses     int   // ≤ min(size, k)
	Comparisons    int64 // worst-case equivalence tests this iteration
	Rounds         int   // ⌈Comparisons / n⌉ physical rounds
	Reduction      int   // answers merged into one
}

// Figure1Schedule regenerates the Figure 1 table for n elements and k
// classes. It is purely arithmetic — no comparisons are performed — and
// mirrors SortCR's control flow exactly.
func Figure1Schedule(n, k int) []F1Row {
	if n < 1 || k < 1 {
		return nil
	}
	var rows []F1Row
	answers := n
	sizeCap := 1
	classCap := 1

	ceilDiv := func(a, b int64) int64 { return (a + b - 1) / b }

	// Phase 1: pairwise merges until each answer holds ≥ 4k² processors.
	for answers > 1 && n/answers < 4*k*k {
		merges := int64(answers / 2)
		comps := merges * int64(classCap) * int64(classCap)
		rounds := int(ceilDiv(comps, int64(n)))
		if comps == 0 {
			rounds = 0
		}
		rows = append(rows, F1Row{
			Phase:          1,
			Answers:        answers,
			ProcsPerAnswer: n / answers,
			MaxAnswerSize:  sizeCap,
			MaxClasses:     classCap,
			Comparisons:    comps,
			Rounds:         rounds,
			Reduction:      2,
		})
		answers = (answers + 1) / 2
		if sizeCap < n {
			sizeCap = min(2*sizeCap, n)
		}
		classCap = min(sizeCap, k)
	}

	// Phase 2: compounding merges of groups of 2c+1 answers.
	for answers > 1 {
		c := n / (answers * k * k)
		if c < 2 {
			c = 2
		}
		g := min(2*c+1, answers)
		groups := int64((answers + g - 1) / g)
		perGroup := int64(g*(g-1)/2) * int64(classCap) * int64(classCap)
		comps := groups * perGroup
		rows = append(rows, F1Row{
			Phase:          2,
			Answers:        answers,
			ProcsPerAnswer: n / answers,
			MaxAnswerSize:  sizeCap,
			MaxClasses:     classCap,
			Comparisons:    comps,
			Rounds:         int(ceilDiv(comps, int64(n))),
			Reduction:      g,
		})
		answers = (answers + g - 1) / g
		sizeCap = min(sizeCap*g, n)
		classCap = min(sizeCap, k)
	}
	return rows
}

// Figure1Totals sums the rounds of a schedule, split by phase — the
// quantities Lemmas 1 and 2 bound by O(k) and O(log log n).
func Figure1Totals(rows []F1Row) (phase1Rounds, phase2Rounds int) {
	for _, r := range rows {
		if r.Phase == 1 {
			phase1Rounds += r.Rounds
		} else {
			phase2Rounds += r.Rounds
		}
	}
	return phase1Rounds, phase2Rounds
}
