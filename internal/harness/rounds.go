package harness

import (
	"fmt"
	"math/rand"

	"ecsort/internal/core"
	"ecsort/internal/model"
	"ecsort/internal/oracle"
)

// RoundsPoint records the cost of one parallel sort run.
type RoundsPoint struct {
	N           int
	K           int
	Rounds      int
	Comparisons int64
}

// RoundsSeries is a sweep of one algorithm over input sizes, validating a
// round-complexity theorem.
type RoundsSeries struct {
	Algorithm string
	Points    []RoundsPoint
}

// RunRoundsCR sweeps the Theorem 1 CR algorithm over sizes at fixed k.
// Expected shape: rounds flat in n (the k term dominates the log log n
// term at these scales).
func RunRoundsCR(k int, sizes []int, seed int64) (RoundsSeries, error) {
	rng := rand.New(rand.NewSource(seed))
	out := RoundsSeries{Algorithm: "SortCR"}
	for _, n := range sizes {
		truth := oracle.RandomBalanced(n, min(k, n), rng)
		s := model.NewSession(truth, model.CR)
		if _, err := core.SortCR(s, min(k, n)); err != nil {
			return RoundsSeries{}, fmt.Errorf("rounds-cr n=%d: %w", n, err)
		}
		st := s.Stats()
		out.Points = append(out.Points, RoundsPoint{N: n, K: k, Rounds: st.Rounds, Comparisons: st.Comparisons})
	}
	return out, nil
}

// RunRoundsER sweeps the Theorem 2 ER algorithm. Expected shape: rounds
// grow ∝ k·log n.
func RunRoundsER(k int, sizes []int, seed int64) (RoundsSeries, error) {
	rng := rand.New(rand.NewSource(seed))
	out := RoundsSeries{Algorithm: "SortER"}
	for _, n := range sizes {
		truth := oracle.RandomBalanced(n, min(k, n), rng)
		s := model.NewSession(truth, model.ER)
		if _, err := core.SortER(s); err != nil {
			return RoundsSeries{}, fmt.Errorf("rounds-er n=%d: %w", n, err)
		}
		st := s.Stats()
		out.Points = append(out.Points, RoundsPoint{N: n, K: k, Rounds: st.Rounds, Comparisons: st.Comparisons})
	}
	return out, nil
}

// RunRoundsConst sweeps the Theorem 4 constant-round ER algorithm at
// fixed λ and cycle count d. Expected shape: rounds independent of n.
func RunRoundsConst(lambda float64, d, k int, sizes []int, seed int64) (RoundsSeries, error) {
	out := RoundsSeries{Algorithm: "SortConstRoundER"}
	for _, n := range sizes {
		truth := oracle.RandomBalanced(n, k, rand.New(rand.NewSource(seed+int64(n))))
		s := model.NewSession(truth, model.ER)
		_, err := core.SortConstRoundER(s, core.ConstRoundConfig{
			Lambda:     lambda,
			D:          d,
			MaxRetries: 8,
			Rng:        rand.New(rand.NewSource(seed ^ int64(n)*2654435761)),
		})
		if err != nil {
			return RoundsSeries{}, fmt.Errorf("rounds-const n=%d: %w", n, err)
		}
		st := s.Stats()
		out.Points = append(out.Points, RoundsPoint{N: n, K: k, Rounds: st.Rounds, Comparisons: st.Comparisons})
	}
	return out, nil
}
