package oracle

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ecsort/internal/majority"
	"ecsort/internal/model"
)

// Unreliable is an equivalence oracle whose answers can fail or hang:
// the honest interface for oracles backed by networks, flaky hardware,
// or fault injection (adversary.Flaky). TrySame must respect ctx —
// return promptly once it is canceled — which is what lets the
// Resilient middleware enforce per-call timeouts without leaking
// goroutines. Implementations must be safe for concurrent use.
type Unreliable interface {
	// N returns the universe size, as in model.Oracle.
	N() int
	// TrySame reports whether elements i and j are equivalent, or an
	// error when the backend could not answer.
	TrySame(ctx context.Context, i, j int) (bool, error)
}

// BatchUnreliable is an Unreliable backend that can answer a whole
// chunk of tests in one exchange — the failure-aware twin of
// model.BatchOracle. TrySameBatch writes out[i] for pairs[i] and
// returns the indexes it could not answer (nil when every pair was
// answered); a non-nil error means the whole exchange failed and
// nothing in out can be trusted. Like TrySame it must respect ctx and
// be safe for concurrent use.
type BatchUnreliable interface {
	Unreliable
	TrySameBatch(ctx context.Context, pairs []model.Pair, out []bool) (failed []int, err error)
}

// ErrUnavailable is the (wrapped) failure for calls rejected while the
// circuit breaker is open: the oracle is presumed down and calls fail
// fast instead of burning their full timeout+retry budget.
var ErrUnavailable = errors.New("oracle: unavailable (circuit breaker open)")

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed is the healthy state: calls flow to the backend.
	BreakerClosed BreakerState = iota
	// BreakerOpen is the tripped state: calls fail fast with
	// ErrUnavailable until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits probe calls after the cooldown: the first
	// success closes the breaker, the first exhausted failure re-opens
	// it.
	BreakerHalfOpen
)

// String renders the state for logs and metrics labels.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// ResilientConfig tunes the fault-tolerance middleware. The zero value
// is serviceable: 1s per-attempt timeout, 2 retries with 2ms–100ms
// jittered exponential backoff, no vote mode, breaker tripping after 5
// consecutive exhausted asks with a 1s cooldown.
type ResilientConfig struct {
	// Timeout bounds each attempt; 0 means 1s, negative disables.
	Timeout time.Duration
	// Retries is how many extra attempts follow a failed one; 0 means 2,
	// negative means none.
	Retries int
	// Backoff is the base of the jittered exponential backoff between
	// attempts; 0 means 2ms.
	Backoff time.Duration
	// MaxBackoff caps the backoff growth; 0 means 100ms.
	MaxBackoff time.Duration
	// Votes enables k-of-n majority mode: every answer is re-asked until
	// one side is unbeatable among Votes asks (majority.Vote). Values
	// <= 1 ask once. Odd values avoid ties.
	Votes int
	// BreakerThreshold is how many consecutive exhausted asks trip the
	// breaker; 0 means 5, negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is the open → half-open delay; 0 means 1s.
	BreakerCooldown time.Duration
	// Seed makes the backoff jitter reproducible.
	Seed int64
	// Ctx, when non-nil, bounds every attempt's lifetime (the service
	// passes its root context so shutdown interrupts in-flight asks).
	Ctx context.Context
}

func (c ResilientConfig) timeout() time.Duration {
	if c.Timeout == 0 {
		return time.Second
	}
	return c.Timeout
}

func (c ResilientConfig) retries() int {
	if c.Retries == 0 {
		return 2
	}
	return max(c.Retries, 0)
}

func (c ResilientConfig) backoff() time.Duration {
	if c.Backoff <= 0 {
		return 2 * time.Millisecond
	}
	return c.Backoff
}

func (c ResilientConfig) maxBackoff() time.Duration {
	if c.MaxBackoff <= 0 {
		return 100 * time.Millisecond
	}
	return c.MaxBackoff
}

func (c ResilientConfig) threshold() int {
	if c.BreakerThreshold == 0 {
		return 5
	}
	return c.BreakerThreshold
}

func (c ResilientConfig) cooldown() time.Duration {
	if c.BreakerCooldown <= 0 {
		return time.Second
	}
	return c.BreakerCooldown
}

// ResilientStats is a snapshot of the middleware's activity counters.
type ResilientStats struct {
	// Attempts counts calls issued to the backend (including retries and
	// vote re-asks).
	Attempts int64
	// Retries counts backed-off re-attempts after a failure.
	Retries int64
	// Failures counts asks that exhausted their full retry budget.
	Failures int64
	// FastFails counts calls rejected while the breaker was open.
	FastFails int64
	// Trips counts closed/half-open → open transitions.
	Trips int64
	// BatchAsks counts whole-chunk exchanges issued through the batch
	// path: one timeout/breaker/backoff cycle each, however many pairs
	// the chunk carried.
	BatchAsks int64
	// BatchFallbacks counts pairs that a batch exchange could not answer
	// and that were re-asked individually through the per-pair path.
	BatchFallbacks int64
}

// Resilient wraps an Unreliable oracle with the service's
// fault-tolerance middleware: per-attempt timeouts, bounded retries
// with jittered exponential backoff, optional k-of-n majority voting
// for suspected-noisy answers, and a circuit breaker that fails fast —
// and notifies the owner via OnTrip — once the backend looks down.
//
// Resilient implements model.Oracle (Same) so the sorting engines run
// against it unchanged: Same answers false ("not equal") when every
// attempt fails, the conservative side — a missed merge is repairable
// by the repair daemon's re-verification, a wrong merge contaminates a
// class. Service folds bind a cancelable context and abort via OnTrip
// instead of grinding through a dead oracle's remaining tests.
type Resilient struct {
	base Unreliable

	// cfg is behind an atomic pointer so UpdateConfig can swap the
	// tuning live (PATCH …/resilience) while hot paths read it
	// lock-free; each reader loads once per operation, so one ask never
	// mixes two profiles.
	cfg atomic.Pointer[ResilientConfig]

	mu       sync.Mutex
	rng      *rand.Rand
	state    BreakerState
	fails    int // consecutive exhausted asks while closed
	openedAt time.Time
	probeAt  time.Time // half-open probe-write slot claim time; zero = free
	lastErr  error
	onTrip   func(error)

	// bound, when set, overrides cfg.Ctx as the lifetime of Same and
	// SameBatch asks — the service binds each fold's cancelable context
	// here (see BindContext).
	bound atomic.Pointer[boundCtx]

	attempts       atomic.Int64
	retries        atomic.Int64
	failures       atomic.Int64
	fastFails      atomic.Int64
	trips          atomic.Int64
	batchAsks      atomic.Int64
	batchFallbacks atomic.Int64
}

// boundCtx boxes a context so it can sit behind an atomic pointer.
type boundCtx struct{ ctx context.Context }

// NewResilient wraps base with the configured middleware.
func NewResilient(base Unreliable, cfg ResilientConfig) *Resilient {
	r := &Resilient{base: base, rng: rand.New(rand.NewSource(cfg.Seed))}
	r.cfg.Store(&cfg)
	return r
}

// UpdateConfig swaps the middleware's tuning in place; in-flight asks
// finish under the profile they started with, subsequent asks use the
// new one. Breaker position, failure streak, open timestamp, and the
// jitter rng are deliberately preserved: a live PATCH retunes the
// profile, it does not amnesty a tripped backend. The new config's
// Seed is therefore ignored.
func (r *Resilient) UpdateConfig(cfg ResilientConfig) {
	r.cfg.Store(&cfg)
}

// config returns the current tuning. Callers load once per operation.
func (r *Resilient) config() *ResilientConfig { return r.cfg.Load() }

// AsUnreliable adapts an infallible model.Oracle to the Unreliable
// interface: TrySame never fails and ignores ctx (a synchronous
// in-process oracle cannot be interrupted mid-test). It lets the
// middleware — vote mode in particular — wrap oracles with no failure
// modes of their own.
func AsUnreliable(o model.Oracle) Unreliable {
	if b, ok := o.(model.BatchOracle); ok {
		return infallibleBatch{infallible{o}, b}
	}
	return infallible{o}
}

type infallible struct{ o model.Oracle }

func (a infallible) N() int { return a.o.N() }

func (a infallible) TrySame(_ context.Context, i, j int) (bool, error) {
	//ecsort:ignore oracleround middleware adapter: the session accounts the outer Resilient.Same, not this inner call
	return a.o.Same(i, j), nil
}

// infallibleBatch preserves the wrapped oracle's batch capability
// through the adapter, so Resilient's batch path stays one exchange
// per chunk even for fault-free backends.
type infallibleBatch struct {
	infallible
	b model.BatchOracle
}

func (a infallibleBatch) TrySameBatch(_ context.Context, pairs []model.Pair, out []bool) ([]int, error) {
	//ecsort:ignore oracleround middleware adapter: the session accounts the outer Resilient.SameBatch, not this inner call
	a.b.SameBatch(pairs, out)
	return nil, nil
}

// OnTrip registers fn to run — once per trip, on the goroutine whose
// failure tripped the breaker — when the breaker opens. The service
// uses it to cancel the in-flight fold's context so the shard
// goroutine unwinds between rounds instead of timing out on every
// remaining comparison. Register before issuing queries.
func (r *Resilient) OnTrip(fn func(error)) {
	r.mu.Lock()
	r.onTrip = fn
	r.mu.Unlock()
}

// N returns the wrapped oracle's universe size.
func (r *Resilient) N() int { return r.base.N() }

// Same implements model.Oracle through the full middleware stack,
// answering false when every attempt failed (see the type comment for
// why false is the safe degraded answer).
func (r *Resilient) Same(i, j int) bool {
	v, err := r.TrySame(r.lifetime(), i, j)
	if err != nil {
		return false
	}
	return v
}

// TrySame answers one equivalence test with retries, voting, and
// breaker admission, reporting the final error when the middleware
// could not extract an answer.
func (r *Resilient) TrySame(ctx context.Context, i, j int) (bool, error) {
	if k := r.config().Votes; k > 1 {
		return majority.Vote(k, func() (bool, error) { return r.ask(ctx, i, j) })
	}
	return r.ask(ctx, i, j)
}

// SameBatch implements model.BatchOracle: one timeout/breaker/backoff
// cycle answers a whole worker-pool chunk when the backend is itself
// batch-capable (BatchUnreliable), with per-pair fallback only for the
// pairs that actually failed. A backend without the capability — or
// vote mode, whose k-of-n semantics are inherently per answer — walks
// the chunk through the regular Same path, so degradation (breaker
// fast-fails answering false) is identical to per-pair execution.
//
//ecsort:hotpath
func (r *Resilient) SameBatch(pairs []model.Pair, out []bool) {
	bb, ok := r.base.(BatchUnreliable)
	if !ok || r.config().Votes > 1 {
		for i, p := range pairs {
			out[i] = r.Same(p.A, p.B)
		}
		return
	}
	r.batchAsks.Add(1)
	failed, err := r.askBatch(bb, pairs, out)
	if err != nil {
		// The whole exchange failed: every pair degrades to the per-pair
		// path, which re-applies admission per ask — after a mid-batch
		// trip the remaining pairs fast-fail to false exactly as they
		// would have without batching.
		r.batchFallbacks.Add(int64(len(pairs)))
		for i, p := range pairs {
			out[i] = r.Same(p.A, p.B)
		}
		return
	}
	if len(failed) > 0 {
		r.batchFallbacks.Add(int64(len(failed)))
		for _, i := range failed {
			out[i] = r.Same(pairs[i].A, pairs[i].B)
		}
	}
}

// askBatch runs one retry-wrapped whole-chunk exchange under breaker
// admission, mirroring ask at chunk granularity.
func (r *Resilient) askBatch(bb BatchUnreliable, pairs []model.Pair, out []bool) ([]int, error) {
	ctx := r.lifetime()
	if err := r.admit(); err != nil {
		return nil, err
	}
	retries := r.config().retries()
	var (
		failed []int
		err    error
	)
	for try := 0; try <= retries; try++ {
		if try > 0 {
			r.retries.Add(1)
			if werr := r.waitBackoff(ctx, try); werr != nil {
				err = werr
				break
			}
		}
		r.attempts.Add(1)
		if failed, err = r.attemptBatch(ctx, bb, pairs, out); err == nil {
			r.succeed()
			return failed, nil
		}
	}
	r.fail(err)
	return nil, err
}

// attemptBatch issues one bounded whole-chunk call to the backend.
func (r *Resilient) attemptBatch(ctx context.Context, bb BatchUnreliable, pairs []model.Pair, out []bool) ([]int, error) {
	if t := r.config().timeout(); t > 0 {
		tctx, cancel := context.WithTimeout(ctx, t)
		defer cancel()
		return bb.TrySameBatch(tctx, pairs, out)
	}
	return bb.TrySameBatch(ctx, pairs, out)
}

// BindContext binds ctx as the lifetime of subsequent Same/SameBatch
// asks, taking precedence over ResilientConfig.Ctx. The service binds
// each fold's cancelable context here so an OnTrip cancellation (or
// shutdown) interrupts in-flight backoffs and timeouts immediately
// instead of letting them run against the longer-lived root context.
// A nil ctx restores the config binding. Safe for concurrent use.
func (r *Resilient) BindContext(ctx context.Context) {
	if ctx == nil {
		r.bound.Store(nil)
		return
	}
	r.bound.Store(&boundCtx{ctx: ctx})
}

// State reports the breaker's effective position: an open breaker whose
// cooldown has elapsed reports half-open, since the next call probes.
func (r *Resilient) State() BreakerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state == BreakerOpen && time.Since(r.openedAt) >= r.config().cooldown() {
		return BreakerHalfOpen
	}
	return r.state
}

// RetryAfter returns how long until an open breaker admits its next
// probe, and zero when calls are currently admitted. The HTTP layer
// maps a positive value to 503 + Retry-After on writes.
func (r *Resilient) RetryAfter() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state != BreakerOpen {
		return 0
	}
	rem := r.config().cooldown() - time.Since(r.openedAt)
	if rem < 0 {
		return 0
	}
	return rem
}

// AdmitWrite decides whether a write-triggered fold may run right now,
// returning (retryAfter, probe, admitted):
//
//   - breaker closed: admitted, not a probe.
//   - breaker open, still cooling: rejected with the remaining cooldown
//     (the HTTP layer's 503 + Retry-After).
//   - half-open (cooldown elapsed): exactly ONE write per cooldown
//     window is admitted as a probe; concurrent writes are rejected
//     until the probe settles. Without this slot a write-only workload
//     never recovers — the breaker re-closes only when some ask
//     succeeds, and rejecting every write means no ask is ever issued.
//
// The probe slot is claimed here and released by the ask's own
// succeed/fail settlement. It also self-expires after one cooldown, so
// a probe write whose fold happened to issue zero oracle asks (e.g. a
// single-item batch into an empty collection) cannot wedge the slot.
func (r *Resilient) AdmitWrite() (time.Duration, bool, bool) {
	cd := r.config().cooldown()
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.state {
	case BreakerClosed:
		return 0, false, true
	case BreakerOpen:
		if rem := cd - time.Since(r.openedAt); rem > 0 {
			return rem, false, false
		}
	}
	// Half-open, explicitly or as an open breaker whose cooldown has
	// elapsed: one probe writer at a time.
	if !r.probeAt.IsZero() {
		if held := time.Since(r.probeAt); held < cd {
			return cd - held, false, false
		}
	}
	r.probeAt = time.Now()
	return 0, true, true
}

// LastErr returns the failure that most recently exhausted an ask.
func (r *Resilient) LastErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastErr
}

// Stats snapshots the activity counters.
func (r *Resilient) Stats() ResilientStats {
	return ResilientStats{
		Attempts:       r.attempts.Load(),
		Retries:        r.retries.Load(),
		Failures:       r.failures.Load(),
		FastFails:      r.fastFails.Load(),
		Trips:          r.trips.Load(),
		BatchAsks:      r.batchAsks.Load(),
		BatchFallbacks: r.batchFallbacks.Load(),
	}
}

// ask runs one retry-wrapped attempt series and settles its outcome
// with the breaker: a success resets the failure streak (and closes a
// half-open breaker), an exhausted series counts toward tripping.
func (r *Resilient) ask(ctx context.Context, i, j int) (bool, error) {
	if err := r.admit(); err != nil {
		r.fastFails.Add(1)
		return false, err
	}
	retries := r.config().retries()
	var err error
	for try := 0; try <= retries; try++ {
		if try > 0 {
			r.retries.Add(1)
			if werr := r.waitBackoff(ctx, try); werr != nil {
				err = werr
				break
			}
		}
		r.attempts.Add(1)
		var v bool
		if v, err = r.attempt(ctx, i, j); err == nil {
			r.succeed()
			return v, nil
		}
	}
	r.fail(err)
	return false, err
}

// attempt issues one bounded call to the backend.
func (r *Resilient) attempt(ctx context.Context, i, j int) (bool, error) {
	if t := r.config().timeout(); t > 0 {
		tctx, cancel := context.WithTimeout(ctx, t)
		defer cancel()
		return r.base.TrySame(tctx, i, j)
	}
	return r.base.TrySame(ctx, i, j)
}

// admit checks the breaker before an ask, transitioning open →
// half-open when the cooldown has elapsed.
func (r *Resilient) admit() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state == BreakerOpen {
		if time.Since(r.openedAt) < r.config().cooldown() {
			return ErrUnavailable
		}
		r.state = BreakerHalfOpen
	}
	return nil
}

// succeed records a successful ask, releasing any claimed probe slot.
func (r *Resilient) succeed() {
	r.mu.Lock()
	r.fails = 0
	r.probeAt = time.Time{}
	if r.state == BreakerHalfOpen {
		r.state = BreakerClosed
	}
	r.mu.Unlock()
}

// fail records an exhausted ask and trips the breaker when the streak
// reaches the threshold (or immediately in half-open: the probe
// failed).
func (r *Resilient) fail(err error) {
	r.failures.Add(1)
	r.mu.Lock()
	r.lastErr = err
	r.probeAt = time.Time{}
	tripped := false
	switch r.state {
	case BreakerHalfOpen:
		r.state = BreakerOpen
		r.openedAt = time.Now()
		tripped = true
	case BreakerClosed:
		if th := r.config().threshold(); th > 0 {
			if r.fails++; r.fails >= th {
				r.state = BreakerOpen
				r.openedAt = time.Now()
				r.fails = 0
				tripped = true
			}
		}
	}
	fn := r.onTrip
	r.mu.Unlock()
	if tripped {
		r.trips.Add(1)
		if fn != nil {
			fn(err)
		}
	}
}

// waitBackoff sleeps the jittered exponential backoff before retry
// number try (1-based), interruptible by ctx.
func (r *Resilient) waitBackoff(ctx context.Context, try int) error {
	d := r.config().backoff() << (try - 1)
	if mx := r.config().maxBackoff(); d > mx || d <= 0 {
		d = mx
	}
	r.mu.Lock()
	// Jitter into [d/2, d): desynchronizes retry storms across shards.
	d = d/2 + time.Duration(r.rng.Int63n(int64(d/2)+1))
	r.mu.Unlock()
	t := time.NewTimer(d)
	select {
	case <-ctx.Done():
		t.Stop()
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// lifetime is the context bounding Same/SameBatch asks: the
// per-fold BindContext binding when present, else the config's Ctx.
func (r *Resilient) lifetime() context.Context {
	if b := r.bound.Load(); b != nil {
		return b.ctx
	}
	if r.config().Ctx != nil {
		return r.config().Ctx
	}
	//ecsort:ignore ctxflow contract fallback: an unbound Resilient is documented as never-canceled
	return context.Background()
}
