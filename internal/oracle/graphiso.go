package oracle

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Graph is a small simple undirected graph used by the graph-mining
// oracle. Vertices are 0..N-1.
type Graph struct {
	n   int
	adj [][]bool
	m   int
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph {
	g := &Graph{n: n, adj: make([][]bool, n)}
	for i := range g.adj {
		g.adj[i] = make([]bool, n)
	}
	return g
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return g.m }

// AddEdge inserts the undirected edge (u, v); loops and duplicates are
// rejected with a panic (caller bug).
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		panic("oracle: self-loop")
	}
	if g.adj[u][v] {
		panic(fmt.Sprintf("oracle: duplicate edge (%d,%d)", u, v))
	}
	g.adj[u][v] = true
	g.adj[v][u] = true
	g.m++
}

// HasEdge reports whether (u, v) is an edge.
func (g *Graph) HasEdge(u, v int) bool { return g.adj[u][v] }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int {
	d := 0
	for _, e := range g.adj[v] {
		if e {
			d++
		}
	}
	return d
}

// Permute returns an isomorphic copy of g with vertex i of the copy
// playing the role of perm[i] of g.
func (g *Graph) Permute(perm []int) *Graph {
	if len(perm) != g.n {
		panic("oracle: bad permutation length")
	}
	out := NewGraph(g.n)
	for u := 0; u < g.n; u++ {
		for v := u + 1; v < g.n; v++ {
			if g.adj[perm[u]][perm[v]] {
				out.AddEdge(u, v)
			}
		}
	}
	return out
}

// RandomGraph draws G(n, p): each possible edge present independently
// with probability p.
func RandomGraph(n int, p float64, rng *rand.Rand) *Graph {
	g := NewGraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Isomorphic decides whether a and b are isomorphic, using cheap
// invariants, Weisfeiler–Leman (1-dimensional) color refinement, and a
// color-guided backtracking search. Intended for the small graphs a
// graph-mining comparison handles; exact for all inputs.
func Isomorphic(a, b *Graph) bool {
	if a.n != b.n || a.m != b.m {
		return false
	}
	if a.n == 0 {
		return true
	}
	ca, cb, ok := jointRefine(a, b)
	if !ok {
		return false
	}
	return matchBacktrack(a, b, ca, cb)
}

// jointRefine runs WL-1 refinement on both graphs with a shared color
// dictionary. It reports false when the stable color histograms differ
// (a certificate of non-isomorphism).
func jointRefine(a, b *Graph) (ca, cb []int, ok bool) {
	ca = make([]int, a.n)
	cb = make([]int, b.n)
	for i := 0; i < a.n; i++ {
		ca[i] = a.Degree(i)
		cb[i] = b.Degree(i)
	}
	if !sameHistogram(ca, cb) {
		return nil, nil, false
	}
	for iter := 0; iter < a.n; iter++ {
		dict := make(map[string]int)
		na := refineOnce(a, ca, dict)
		nb := refineOnce(b, cb, dict)
		if !sameHistogram(na, nb) {
			return nil, nil, false
		}
		if countColors(na) == countColors(ca) {
			return na, nb, true
		}
		ca, cb = na, nb
	}
	return ca, cb, true
}

func refineOnce(g *Graph, colors []int, dict map[string]int) []int {
	out := make([]int, g.n)
	var sb strings.Builder
	for v := 0; v < g.n; v++ {
		neigh := make([]int, 0, g.n)
		for u := 0; u < g.n; u++ {
			if g.adj[v][u] {
				neigh = append(neigh, colors[u])
			}
		}
		sort.Ints(neigh)
		sb.Reset()
		sb.WriteString(strconv.Itoa(colors[v]))
		for _, c := range neigh {
			sb.WriteByte('|')
			sb.WriteString(strconv.Itoa(c))
		}
		sig := sb.String()
		id, okc := dict[sig]
		if !okc {
			id = len(dict)
			dict[sig] = id
		}
		out[v] = id
	}
	return out
}

func sameHistogram(a, b []int) bool {
	ha := map[int]int{}
	for _, c := range a {
		ha[c]++
	}
	for _, c := range b {
		ha[c]--
	}
	for _, v := range ha {
		if v != 0 {
			return false
		}
	}
	return true
}

func countColors(colors []int) int {
	seen := map[int]struct{}{}
	for _, c := range colors {
		seen[c] = struct{}{}
	}
	return len(seen)
}

// matchBacktrack searches for a color-respecting isomorphism a → b,
// mapping the most constrained (rarest color) vertices first.
func matchBacktrack(a, b *Graph, ca, cb []int) bool {
	n := a.n
	// Candidates of each b-vertex color.
	byColor := map[int][]int{}
	for v, c := range cb {
		byColor[c] = append(byColor[c], v)
	}
	// Order a's vertices by ascending color-class size, then by
	// descending degree for earlier pruning.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		vi, vj := order[i], order[j]
		si, sj := len(byColor[ca[vi]]), len(byColor[ca[vj]])
		if si != sj {
			return si < sj
		}
		return a.Degree(vi) > a.Degree(vj)
	})
	mapped := make([]int, n) // a-vertex -> b-vertex
	for i := range mapped {
		mapped[i] = -1
	}
	usedB := make([]bool, n)
	var rec func(depth int) bool
	rec = func(depth int) bool {
		if depth == n {
			return true
		}
		v := order[depth]
		for _, w := range byColor[ca[v]] {
			if usedB[w] {
				continue
			}
			okMap := true
			for d := 0; d < depth; d++ {
				u := order[d]
				if a.adj[v][u] != b.adj[w][mapped[u]] {
					okMap = false
					break
				}
			}
			if !okMap {
				continue
			}
			mapped[v] = w
			usedB[w] = true
			if rec(depth + 1) {
				return true
			}
			mapped[v] = -1
			usedB[w] = false
		}
		return false
	}
	return rec(0)
}

// GraphIso is the graph-mining oracle: a collection of graphs whose
// equivalence relation is graph isomorphism. Same(i, j) performs a real
// isomorphism test, the nontrivial-but-feasible comparison the paper's
// third application describes.
type GraphIso struct {
	graphs []*Graph
}

// NewGraphIso wraps a collection of graphs.
func NewGraphIso(graphs []*Graph) *GraphIso {
	return &GraphIso{graphs: graphs}
}

// RandomGraphCollection builds a collection realizing the given class
// labels: one random base graph per class (pairwise non-isomorphic by
// construction, retrying collisions) and a freshly permuted copy of the
// appropriate base graph per element.
func RandomGraphCollection(labels []int, vertices int, rng *rand.Rand) *GraphIso {
	bases := map[int]*Graph{}
	var baseList []*Graph
	for _, l := range labels {
		if _, ok := bases[l]; ok {
			continue
		}
	retry:
		for {
			cand := RandomGraph(vertices, 0.5, rng)
			for _, prev := range baseList {
				if Isomorphic(prev, cand) {
					continue retry
				}
			}
			bases[l] = cand
			baseList = append(baseList, cand)
			break
		}
	}
	graphs := make([]*Graph, len(labels))
	for i, l := range labels {
		graphs[i] = bases[l].Permute(rng.Perm(vertices))
	}
	return &GraphIso{graphs: graphs}
}

// N implements model.Oracle.
func (o *GraphIso) N() int { return len(o.graphs) }

// Same implements model.Oracle via an isomorphism test.
func (o *GraphIso) Same(i, j int) bool { return Isomorphic(o.graphs[i], o.graphs[j]) }

// Graph returns the i-th graph of the collection.
func (o *GraphIso) Graph(i int) *Graph { return o.graphs[i] }
