package oracle

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestCanonicalMatchesIsomorphic: certificates agree with the reference
// isomorphism tester on random graph pairs (both positive and negative
// cases).
func TestCanonicalMatchesIsomorphic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := RandomGraph(n, 0.5, rng)
		var b *Graph
		if rng.Intn(2) == 0 {
			b = a.Permute(rng.Perm(n)) // isomorphic copy
		} else {
			b = RandomGraph(n, 0.5, rng) // probably different
		}
		return (Canonical(a) == Canonical(b)) == Isomorphic(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// TestCanonicalInvariantUnderPermutation: every permuted copy yields the
// identical certificate.
func TestCanonicalInvariantUnderPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(9)
		g := RandomGraph(n, 0.4, rng)
		want := Canonical(g)
		for p := 0; p < 5; p++ {
			if got := Canonical(g.Permute(rng.Perm(n))); got != want {
				t.Fatalf("trial %d: certificate changed under relabeling", trial)
			}
		}
	}
}

func TestCanonicalHardPair(t *testing.T) {
	// C6 vs 2×K3 share all degree data; certificates must differ.
	c6 := NewGraph(6)
	for i := 0; i < 6; i++ {
		c6.AddEdge(i, (i+1)%6)
	}
	twoTri := NewGraph(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}} {
		twoTri.AddEdge(e[0], e[1])
	}
	if Canonical(c6) == Canonical(twoTri) {
		t.Fatal("C6 and 2×K3 share a certificate")
	}
}

func TestCanonicalEmptyAndTiny(t *testing.T) {
	if Canonical(NewGraph(0)) != Canonical(NewGraph(0)) {
		t.Fatal("empty graphs disagree")
	}
	if Canonical(NewGraph(1)) == Canonical(NewGraph(2)) {
		t.Fatal("different orders collide")
	}
	e2 := NewGraph(2)
	k2 := NewGraph(2)
	k2.AddEdge(0, 1)
	if Canonical(e2) == Canonical(k2) {
		t.Fatal("edge vs non-edge collide")
	}
}

func TestGraphIsoCachedMatchesUncached(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	labels := []int{0, 1, 2, 0, 1, 2, 0}
	plain := RandomGraphCollection(labels, 9, rng)
	graphs := make([]*Graph, plain.N())
	for i := range graphs {
		graphs[i] = plain.Graph(i)
	}
	cached := NewGraphIsoCached(graphs)
	if cached.N() != plain.N() {
		t.Fatal("sizes differ")
	}
	for i := 0; i < plain.N(); i++ {
		for j := i + 1; j < plain.N(); j++ {
			if cached.Same(i, j) != plain.Same(i, j) {
				t.Fatalf("cached Same(%d,%d) disagrees with isomorphism test", i, j)
			}
		}
	}
	if cached.Graph(0) != graphs[0] {
		t.Fatal("Graph accessor wrong")
	}
}

// TestCanonicalRegularGraphs exercises the branch-and-bound on symmetric
// inputs where WL gives no discrimination (all one color).
func TestCanonicalRegularGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	// Cycles C8 under relabeling.
	c8 := NewGraph(8)
	for i := 0; i < 8; i++ {
		c8.AddEdge(i, (i+1)%8)
	}
	if Canonical(c8) != Canonical(c8.Permute(rng.Perm(8))) {
		t.Fatal("C8 certificate not invariant")
	}
	// C8 vs 2×C4: both 2-regular on 8 vertices.
	twoC4 := NewGraph(8)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {4, 5}, {5, 6}, {6, 7}, {7, 4}} {
		twoC4.AddEdge(e[0], e[1])
	}
	if Canonical(c8) == Canonical(twoC4) {
		t.Fatal("C8 and 2×C4 collide")
	}
}

func BenchmarkCanonical(b *testing.B) {
	rng := rand.New(rand.NewSource(104))
	g := RandomGraph(12, 0.5, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Canonical(g)
	}
}

func BenchmarkCachedVsUncachedSort(b *testing.B) {
	rng := rand.New(rand.NewSource(105))
	labels := make([]int, 60)
	for i := range labels {
		labels[i] = i % 4
	}
	plain := RandomGraphCollection(labels, 10, rng)
	graphs := make([]*Graph, plain.N())
	for i := range graphs {
		graphs[i] = plain.Graph(i)
	}
	b.Run("uncached-allpairs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for x := 0; x < 20; x++ {
				for y := x + 1; y < 20; y++ {
					plain.Same(x, y)
				}
			}
		}
	})
	b.Run("cached-allpairs", func(b *testing.B) {
		cached := NewGraphIsoCached(graphs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for x := 0; x < 20; x++ {
				for y := x + 1; y < 20; y++ {
					cached.Same(x, y)
				}
			}
		}
	})
}
