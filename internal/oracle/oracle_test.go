package oracle

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLabelBasics(t *testing.T) {
	o := NewLabel([]int{5, 5, 7, 5, 9})
	if o.N() != 5 {
		t.Fatalf("N = %d", o.N())
	}
	if !o.Same(0, 1) || !o.Same(0, 3) || o.Same(0, 2) || o.Same(2, 4) {
		t.Fatal("Same answers wrong")
	}
	if o.NumClasses() != 3 {
		t.Fatalf("NumClasses = %d", o.NumClasses())
	}
	if o.MinClassSize() != 1 {
		t.Fatalf("MinClassSize = %d", o.MinClassSize())
	}
	classes := o.Classes()
	if len(classes) != 3 || len(classes[0]) != 3 || classes[0][0] != 0 {
		t.Fatalf("classes = %v", classes)
	}
}

func TestLabelDefensiveCopy(t *testing.T) {
	in := []int{1, 2}
	o := NewLabel(in)
	in[0] = 2
	if o.Same(0, 1) {
		t.Fatal("oracle aliases caller slice")
	}
	out := o.Labels()
	out[0] = 99
	if o.Labels()[0] == 99 {
		t.Fatal("Labels leaks internal slice")
	}
}

func TestRandomBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	o := RandomBalanced(100, 7, rng)
	counts := map[int]int{}
	for _, l := range o.Labels() {
		counts[l]++
	}
	if len(counts) != 7 {
		t.Fatalf("classes = %d, want 7", len(counts))
	}
	for l, c := range counts {
		if c < 100/7 || c > 100/7+1 {
			t.Fatalf("class %d has %d members", l, c)
		}
	}
}

func TestRandomSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	o := RandomSizes([]int{3, 1, 6}, rng)
	if o.N() != 10 {
		t.Fatalf("N = %d", o.N())
	}
	counts := map[int]int{}
	for _, l := range o.Labels() {
		counts[l]++
	}
	if counts[0] != 3 || counts[1] != 1 || counts[2] != 6 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestRandomConstructorsPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []func(){
		func() { RandomBalanced(5, 6, rng) },
		func() { RandomBalanced(5, 0, rng) },
		func() { RandomSizes([]int{2, 0}, rng) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestHandshakeMatchesLabels(t *testing.T) {
	labels := []int{0, 1, 0, 2, 1, 0}
	h := NewHandshake(labels, 99)
	if h.N() != 6 {
		t.Fatalf("N = %d", h.N())
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if i == j {
				continue
			}
			want := labels[i] == labels[j]
			if got := h.Same(i, j); got != want {
				t.Fatalf("handshake(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestHandshakeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(4)
		}
		h := NewHandshake(labels, seed)
		for trial := 0; trial < 20; trial++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			if h.Same(i, j) != (labels[i] == labels[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHandshakeKeysDifferAcrossSeeds(t *testing.T) {
	a := NewHandshake([]int{0, 1}, 1)
	b := NewHandshake([]int{0, 1}, 2)
	if string(a.keys[0]) == string(b.keys[0]) {
		t.Fatal("different master seeds produced the same group key")
	}
}

func TestFaultOracle(t *testing.T) {
	f := NewFault([]uint64{0b101, 0b101, 0b011, 0})
	if f.N() != 4 {
		t.Fatalf("N = %d", f.N())
	}
	if !f.Same(0, 1) || f.Same(0, 2) || f.Same(2, 3) {
		t.Fatal("Same answers wrong")
	}
	if f.NumStates() != 3 {
		t.Fatalf("NumStates = %d", f.NumStates())
	}
	if f.InfectionLoad() != 6 {
		t.Fatalf("InfectionLoad = %d", f.InfectionLoad())
	}
	labels := f.TruthLabels()
	if labels[0] != labels[1] || labels[0] == labels[2] || labels[2] == labels[3] {
		t.Fatalf("labels = %v", labels)
	}
}

func TestRandomInfections(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := RandomInfections(200, 3, 0.5, rng)
	if f.N() != 200 {
		t.Fatalf("N = %d", f.N())
	}
	if k := f.NumStates(); k < 2 || k > 8 {
		t.Fatalf("NumStates = %d, want within [2,8]", k)
	}
	// p=0 and p=1 are degenerate single-state worlds.
	if RandomInfections(50, 4, 0, rng).NumStates() != 1 {
		t.Fatal("p=0 should give one state")
	}
	if RandomInfections(50, 4, 1, rng).NumStates() != 1 {
		t.Fatal("p=1 should give one state")
	}
}

func TestRandomInfectionsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	RandomInfections(5, 65, 0.5, rand.New(rand.NewSource(1)))
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if g.NumVertices() != 4 || g.NumEdges() != 2 {
		t.Fatalf("graph counts wrong: %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Fatal("Degree wrong")
	}
}

func TestGraphPanics(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate edge did not panic")
			}
		}()
		g.AddEdge(1, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("self-loop did not panic")
			}
		}()
		g.AddEdge(2, 2)
	}()
}

func TestIsomorphicBasicCases(t *testing.T) {
	// Path P3 vs P3 relabeled.
	p1 := NewGraph(3)
	p1.AddEdge(0, 1)
	p1.AddEdge(1, 2)
	p2 := NewGraph(3)
	p2.AddEdge(2, 0)
	p2.AddEdge(0, 1)
	if !Isomorphic(p1, p2) {
		t.Fatal("relabeled path not isomorphic")
	}
	// Path P3 vs triangle: same n, different m.
	tri := NewGraph(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(0, 2)
	if Isomorphic(p1, tri) {
		t.Fatal("path equals triangle")
	}
	// C6 vs two triangles: same n, same m, same degree sequence.
	c6 := NewGraph(6)
	for i := 0; i < 6; i++ {
		c6.AddEdge(i, (i+1)%6)
	}
	twoTri := NewGraph(6)
	twoTri.AddEdge(0, 1)
	twoTri.AddEdge(1, 2)
	twoTri.AddEdge(0, 2)
	twoTri.AddEdge(3, 4)
	twoTri.AddEdge(4, 5)
	twoTri.AddEdge(3, 5)
	if Isomorphic(c6, twoTri) {
		t.Fatal("C6 equals 2×K3")
	}
	// Empty graphs.
	if !Isomorphic(NewGraph(0), NewGraph(0)) || !Isomorphic(NewGraph(3), NewGraph(3)) {
		t.Fatal("empty graphs should be isomorphic")
	}
	if Isomorphic(NewGraph(2), NewGraph(3)) {
		t.Fatal("different sizes isomorphic")
	}
}

// TestIsomorphicWLHardPair: the 4x4 rook's graph vs the Shrikhande graph
// are WL-1 equivalent but non-isomorphic — backtracking must separate
// them. Both are strongly regular srg(16, 6, 2, 2).
func TestIsomorphicWLHardPair(t *testing.T) {
	rook := NewGraph(16)
	id := func(r, c int) int { return 4*r + c }
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			for c2 := c + 1; c2 < 4; c2++ {
				rook.AddEdge(id(r, c), id(r, c2))
			}
			for r2 := r + 1; r2 < 4; r2++ {
				rook.AddEdge(id(r, c), id(r2, c))
			}
		}
	}
	// Shrikhande graph: vertices Z4×Z4, adjacent if difference in
	// {±(1,0), ±(0,1), ±(1,1)}.
	shrik := NewGraph(16)
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			for _, d := range [][2]int{{1, 0}, {0, 1}, {1, 1}} {
				u := id(x, y)
				v := id((x+d[0])%4, (y+d[1])%4)
				if u < v && !shrik.HasEdge(u, v) {
					shrik.AddEdge(u, v)
				} else if v < u && !shrik.HasEdge(v, u) {
					shrik.AddEdge(v, u)
				}
			}
		}
	}
	if rook.NumEdges() != 48 || shrik.NumEdges() != 48 {
		t.Fatalf("construction wrong: %d and %d edges, want 48", rook.NumEdges(), shrik.NumEdges())
	}
	if Isomorphic(rook, shrik) {
		t.Fatal("rook's graph reported isomorphic to Shrikhande graph")
	}
	// Sanity: each is isomorphic to a random relabeling of itself.
	rng := rand.New(rand.NewSource(5))
	if !Isomorphic(rook, rook.Permute(rng.Perm(16))) {
		t.Fatal("rook not isomorphic to its own relabeling")
	}
	if !Isomorphic(shrik, shrik.Permute(rng.Perm(16))) {
		t.Fatal("shrikhande not isomorphic to its own relabeling")
	}
}

// TestIsomorphicQuickPermutations: any graph is isomorphic to every
// permuted copy of itself.
func TestIsomorphicQuickPermutations(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		g := RandomGraph(n, 0.4, rng)
		return Isomorphic(g, g.Permute(rng.Perm(n)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestIsomorphicQuickEdgeToggle: removing one edge breaks isomorphism
// with the original (edge counts differ).
func TestIsomorphicQuickEdgeToggle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		g := RandomGraph(n, 0.5, rng)
		if g.NumEdges() == 0 {
			return true
		}
		// Copy without one edge.
		h := NewGraph(n)
		removed := false
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if !g.HasEdge(u, v) {
					continue
				}
				if !removed {
					removed = true
					continue
				}
				h.AddEdge(u, v)
			}
		}
		return !Isomorphic(g, h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphIsoOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	labels := []int{0, 1, 0, 2, 1}
	o := RandomGraphCollection(labels, 8, rng)
	if o.N() != 5 {
		t.Fatalf("N = %d", o.N())
	}
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			want := labels[i] == labels[j]
			if got := o.Same(i, j); got != want {
				t.Fatalf("Same(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
	if o.Graph(0).NumVertices() != 8 {
		t.Fatalf("graph size = %d", o.Graph(0).NumVertices())
	}
}

func TestPermuteValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewGraph(3).Permute([]int{0, 1})
}
