package oracle

import (
	"math/bits"
	"math/rand"
)

// Fault simulates the generalized fault diagnosis application: each of n
// computers carries a hidden malware state — the set of worms infecting
// it, stored as a bitmask. A pairwise test models the mutual probe of the
// paper: each worm present on one machine can detect only its own kind on
// the other, so the two machines jointly learn exactly whether their
// infection sets are identical, and nothing about which worms differ.
type Fault struct {
	states []uint64
}

// NewFault builds the oracle from explicit worm bitmasks.
func NewFault(states []uint64) *Fault {
	cp := make([]uint64, len(states))
	copy(cp, states)
	return &Fault{states: cp}
}

// RandomInfections infects each of n computers independently: every one
// of numWorms worms (numWorms ≤ 64) infects each machine with probability
// p. The number of distinct malware states k is then at most 2^numWorms,
// concentrated around the typical infection patterns.
func RandomInfections(n, numWorms int, p float64, rng *rand.Rand) *Fault {
	if numWorms < 0 || numWorms > 64 {
		panic("oracle: numWorms must be in [0, 64]")
	}
	states := make([]uint64, n)
	for i := range states {
		var s uint64
		for w := 0; w < numWorms; w++ {
			if rng.Float64() < p {
				s |= 1 << uint(w)
			}
		}
		states[i] = s
	}
	return &Fault{states: states}
}

// N implements model.Oracle.
func (f *Fault) N() int { return len(f.states) }

// Same implements model.Oracle: the mutual probe succeeds exactly when
// the infection sets coincide (empty symmetric difference).
func (f *Fault) Same(i, j int) bool {
	return f.states[i]^f.states[j] == 0
}

// States returns a copy of the infection bitmasks.
func (f *Fault) States() []uint64 {
	cp := make([]uint64, len(f.states))
	copy(cp, f.states)
	return cp
}

// NumStates returns the number of distinct malware states present.
func (f *Fault) NumStates() int {
	seen := make(map[uint64]struct{}, len(f.states))
	for _, s := range f.states {
		seen[s] = struct{}{}
	}
	return len(seen)
}

// InfectionLoad returns the total number of (machine, worm) infections —
// a convenience for reporting in examples.
func (f *Fault) InfectionLoad() int {
	total := 0
	for _, s := range f.states {
		total += bits.OnesCount64(s)
	}
	return total
}

// TruthLabels converts the hidden states into class labels, for test
// verification only (a real diagnosis scenario has no access to this).
func (f *Fault) TruthLabels() []int {
	id := make(map[uint64]int)
	labels := make([]int, len(f.states))
	for i, s := range f.states {
		l, ok := id[s]
		if !ok {
			l = len(id)
			id[s] = l
		}
		labels[i] = l
	}
	return labels
}
