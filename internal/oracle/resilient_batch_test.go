package oracle

import (
	"context"
	"sync"
	"testing"
	"time"

	"ecsort/internal/model"
)

// batchScripted is a BatchUnreliable test double: the first healthy
// exchanges (per-pair or whole-chunk alike) answer from labels, then
// the backend goes down for good. When partial is set, a healthy
// TrySameBatch still reports those indexes as unanswered.
type batchScripted struct {
	mu      sync.Mutex
	labels  []int
	healthy int
	calls   int
	partial []int
}

func (b *batchScripted) N() int { return len(b.labels) }

func (b *batchScripted) take() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.calls++
	return b.calls <= b.healthy
}

func (b *batchScripted) TrySame(ctx context.Context, i, j int) (bool, error) {
	if !b.take() {
		return false, errBackend
	}
	return b.labels[i] == b.labels[j], nil
}

func (b *batchScripted) TrySameBatch(ctx context.Context, pairs []model.Pair, out []bool) ([]int, error) {
	if !b.take() {
		return nil, errBackend
	}
	for i, p := range pairs {
		out[i] = b.labels[p.A] == b.labels[p.B]
	}
	return b.partial, nil
}

// pairScripted masks the batch capability, leaving the same scripted
// per-pair backend.
type pairScripted struct{ b *batchScripted }

func (p pairScripted) N() int { return p.b.N() }

func (p pairScripted) TrySame(ctx context.Context, i, j int) (bool, error) {
	return p.b.TrySame(ctx, i, j)
}

func chaosPairs(n int) []model.Pair {
	pairs := make([]model.Pair, n-1)
	for i := range pairs {
		pairs[i] = model.Pair{A: i, B: i + 1}
	}
	return pairs
}

// TestResilientBatchTripDegradesLikePerPair: a backend that dies
// mid-batch trips the breaker, and the chunk's answers degrade exactly
// as the per-pair path degrades — every unanswerable pair reads false,
// none true, and the breaker ends open either way.
func TestResilientBatchTripDegradesLikePerPair(t *testing.T) {
	cfg := fastCfg()
	cfg.Retries = -1
	cfg.BreakerThreshold = 1
	labels := make([]int, 16) // one class: a healthy oracle would answer all true
	pairs := chaosPairs(len(labels))

	dead := &batchScripted{labels: labels}
	rBatch := NewResilient(dead, cfg)
	outBatch := make([]bool, len(pairs))
	rBatch.SameBatch(pairs, outBatch)

	deadPair := &batchScripted{labels: labels}
	rPair := NewResilient(pairScripted{deadPair}, cfg)
	outPair := make([]bool, len(pairs))
	rPair.SameBatch(pairs, outPair) // non-batch base: walks the per-pair path

	for i := range outBatch {
		if outBatch[i] != outPair[i] {
			t.Fatalf("answer %d: batch path %v, per-pair path %v", i, outBatch[i], outPair[i])
		}
		if outBatch[i] {
			t.Fatalf("answer %d: dead backend produced true", i)
		}
	}
	if st := rBatch.State(); st == BreakerClosed {
		t.Error("batch path: breaker still closed after a dead chunk")
	}
	if st := rPair.State(); st == BreakerClosed {
		t.Error("per-pair path: breaker still closed after a dead chunk")
	}

	stB, stP := rBatch.Stats(), rPair.Stats()
	if stB.BatchAsks != 1 {
		t.Errorf("batch path BatchAsks = %d, want 1", stB.BatchAsks)
	}
	if stB.BatchFallbacks != int64(len(pairs)) {
		t.Errorf("batch path BatchFallbacks = %d, want %d (whole chunk degraded)", stB.BatchFallbacks, len(pairs))
	}
	if stB.Trips == 0 {
		t.Error("batch path recorded no breaker trip")
	}
	if stP.BatchAsks != 0 || stP.BatchFallbacks != 0 {
		t.Errorf("per-pair path charged batch counters: %+v", stP)
	}
}

// TestResilientBatchPartialFallback: a healthy exchange that could not
// answer some pairs falls back per pair for exactly those, and the
// answers end correct everywhere.
func TestResilientBatchPartialFallback(t *testing.T) {
	labels := []int{0, 1, 0, 1, 0, 1}
	b := &batchScripted{labels: labels, healthy: 100, partial: []int{1, 3}}
	r := NewResilient(b, fastCfg())
	pairs := []model.Pair{{A: 0, B: 2}, {A: 0, B: 1}, {A: 1, B: 3}, {A: 2, B: 5}}
	out := make([]bool, len(pairs))
	r.SameBatch(pairs, out)
	want := []bool{true, false, true, false}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("answer %d = %v, want %v", i, out[i], want[i])
		}
	}
	st := r.Stats()
	if st.BatchAsks != 1 {
		t.Errorf("BatchAsks = %d, want 1", st.BatchAsks)
	}
	if st.BatchFallbacks != 2 {
		t.Errorf("BatchFallbacks = %d, want 2 (the unanswered indexes)", st.BatchFallbacks)
	}
	if st.Failures != 0 {
		t.Errorf("Failures = %d on a healthy partial exchange", st.Failures)
	}
	if r.State() != BreakerClosed {
		t.Error("breaker opened on a healthy partial exchange")
	}
}

// TestResilientBatchVotesStayPerPair: vote mode's k-of-n semantics are
// per answer, so a batch-capable backend still gets asked pair by pair.
func TestResilientBatchVotesStayPerPair(t *testing.T) {
	labels := []int{0, 0, 1}
	b := &batchScripted{labels: labels, healthy: 1 << 30}
	cfg := fastCfg()
	cfg.Votes = 3
	r := NewResilient(b, cfg)
	pairs := []model.Pair{{A: 0, B: 1}, {A: 0, B: 2}}
	out := make([]bool, len(pairs))
	r.SameBatch(pairs, out)
	if !out[0] || out[1] {
		t.Errorf("answers = %v, want [true false]", out)
	}
	st := r.Stats()
	if st.BatchAsks != 0 {
		t.Errorf("BatchAsks = %d in vote mode, want 0", st.BatchAsks)
	}
	// majority.Vote stops once one side is unbeatable: 2 identical
	// answers settle a 3-vote ask, so each pair costs 2 attempts here.
	if want := int64(2 * len(pairs)); st.Attempts != want {
		t.Errorf("Attempts = %d, want %d (unbeatable-majority asks per pair)", st.Attempts, want)
	}
}

// TestResilientBindContext: a bound canceled context interrupts asks
// that would otherwise wait on the backend forever.
func TestResilientBindContext(t *testing.T) {
	h := &hung{}
	r := NewResilient(h, ResilientConfig{Timeout: -1, Retries: -1, BreakerThreshold: -1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r.BindContext(ctx)
	done := make(chan bool, 1)
	go func() { done <- r.Same(0, 1) }()
	select {
	case v := <-done:
		if v {
			t.Fatal("canceled ask answered true")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Same hung despite the bound canceled context")
	}
	r.BindContext(nil)
	if got := r.lifetime(); got != context.Background() {
		t.Errorf("lifetime after unbind = %v, want Background", got)
	}
}

// TestAsUnreliableKeepsBatchCapability: adapting an infallible batch
// oracle must preserve the whole-chunk path end to end.
func TestAsUnreliableKeepsBatchCapability(t *testing.T) {
	lbl := NewLabel([]int{0, 0, 1, 1})
	un := AsUnreliable(lbl)
	bb, ok := un.(BatchUnreliable)
	if !ok {
		t.Fatal("AsUnreliable dropped the batch capability")
	}
	pairs := []model.Pair{{A: 0, B: 1}, {A: 0, B: 2}, {A: 2, B: 3}}
	out := make([]bool, len(pairs))
	failed, err := bb.TrySameBatch(context.Background(), pairs, out)
	if err != nil || len(failed) != 0 {
		t.Fatalf("TrySameBatch = %v, %v", failed, err)
	}
	if !out[0] || out[1] || !out[2] {
		t.Errorf("answers = %v, want [true false true]", out)
	}
	r := NewResilient(un, fastCfg())
	var _ model.BatchOracle = r
	out2 := make([]bool, len(pairs))
	r.SameBatch(pairs, out2)
	if st := r.Stats(); st.BatchAsks != 1 || st.BatchFallbacks != 0 {
		t.Errorf("stats = %+v, want one clean batch ask", st)
	}
}
