package oracle

import (
	"sort"
	"strings"

	"ecsort/internal/model"
)

// Canonical labeling for small graphs: a string certificate such that two
// graphs are isomorphic iff their certificates are equal. The certificate
// is the lexicographically minimal adjacency bitstring over all vertex
// orderings compatible with the stable WL-1 coloring, found by
// branch-and-bound. Exponential in the worst case (highly symmetric
// graphs) but fast for the sizes a graph-mining comparison handles; the
// cached oracle below amortizes it to one computation per graph.

// Canonical returns g's certificate. Graphs a and b satisfy
// Isomorphic(a, b) iff Canonical(a) == Canonical(b).
func Canonical(g *Graph) string {
	n := g.n
	if n == 0 {
		return "∅"
	}
	// Stable WL coloring bounds the search: only orderings that list
	// color classes in a fixed (sorted) color order can be minimal.
	colors := stableColors(g)
	// Branch and bound over orderings: at each depth pick any unused
	// vertex of the smallest eligible color, keeping the prefix of the
	// adjacency string minimal.
	best := make([]byte, 0, n*(n+1)/2)
	cur := make([]byte, 0, n*(n+1)/2)
	perm := make([]int, 0, n)
	used := make([]bool, n)
	haveBest := false

	// Candidate order: vertices sorted by (color, then index); the color
	// sequence along any explored ordering is forced to be sorted, which
	// preserves the iff property because isomorphic graphs have equal
	// color histograms.
	byColor := make([]int, n)
	for i := range byColor {
		byColor[i] = i
	}
	sort.Slice(byColor, func(i, j int) bool {
		vi, vj := byColor[i], byColor[j]
		if colors[vi] != colors[vj] {
			return colors[vi] < colors[vj]
		}
		return vi < vj
	})
	colorAt := func(depth int) int { return colors[byColor[depth]] }

	var rec func(depth int)
	rec = func(depth int) {
		if depth == n {
			if !haveBest || string(cur) < string(best) {
				best = append(best[:0], cur...)
				haveBest = true
			}
			return
		}
		want := colorAt(depth)
		for _, v := range byColor {
			if used[v] || colors[v] != want {
				continue
			}
			// Extend the adjacency string with v's row against the
			// current prefix.
			mark := len(cur)
			for _, u := range perm {
				if g.adj[v][u] {
					cur = append(cur, '1')
				} else {
					cur = append(cur, '0')
				}
			}
			// Bound: if the prefix already exceeds the best, cut.
			if haveBest {
				cmp := strings.Compare(string(cur), string(best[:len(cur)]))
				if cmp > 0 {
					cur = cur[:mark]
					continue
				}
			}
			used[v] = true
			perm = append(perm, v)
			rec(depth + 1)
			perm = perm[:len(perm)-1]
			used[v] = false
			cur = cur[:mark]
		}
	}
	rec(0)
	// Prefix with the color histogram so graphs with different refined
	// colorings can never collide even with equal adjacency strings.
	return histogramKey(colors) + "|" + string(best)
}

// stableColors runs WL-1 refinement on a single graph to a fixed point,
// then renames colors canonically: classes are ordered by (size, sorted
// member signature) so that isomorphic graphs receive identical color
// names.
func stableColors(g *Graph) []int {
	colors := make([]int, g.n)
	for i := range colors {
		colors[i] = g.Degree(i)
	}
	for iter := 0; iter < g.n; iter++ {
		dict := make(map[string]int)
		next := refineOnce(g, colors, dict)
		if countColors(next) == countColors(colors) {
			colors = next
			break
		}
		colors = next
	}
	// Canonical renaming: order color ids by their class signature
	// (class size, then the multiset signature the refinement produced
	// is already order-dependent, so recompute a stable signature: the
	// sorted list of degrees inside the class — ties are fine, they mean
	// genuinely symmetric classes).
	classes := map[int][]int{}
	for v, c := range colors {
		classes[c] = append(classes[c], g.Degree(v))
	}
	type sig struct {
		id  int
		key string
	}
	sigs := make([]sig, 0, len(classes))
	for id, degs := range classes {
		sort.Ints(degs)
		var sb strings.Builder
		sb.WriteString(itoa(len(degs)))
		for _, d := range degs {
			sb.WriteByte(',')
			sb.WriteString(itoa(d))
		}
		sigs = append(sigs, sig{id: id, key: sb.String()})
	}
	sort.Slice(sigs, func(i, j int) bool {
		if sigs[i].key != sigs[j].key {
			return sigs[i].key < sigs[j].key
		}
		return sigs[i].id < sigs[j].id
	})
	// Classes with identical signatures are interchangeable under
	// isomorphism and MUST share a rank: distinct ranks would pin an
	// arbitrary order that differs between isomorphic copies and break
	// certificate equality. The search below treats same-rank classes as
	// one candidate pool.
	rename := map[int]int{}
	keyRank := map[string]int{}
	for _, s := range sigs {
		rank, ok := keyRank[s.key]
		if !ok {
			rank = len(keyRank)
			keyRank[s.key] = rank
		}
		rename[s.id] = rank
	}
	out := make([]int, g.n)
	for v, c := range colors {
		out[v] = rename[c]
	}
	return out
}

func histogramKey(colors []int) string {
	counts := map[int]int{}
	for _, c := range colors {
		counts[c]++
	}
	keys := make([]int, 0, len(counts))
	for c := range counts {
		keys = append(keys, c)
	}
	sort.Ints(keys)
	var sb strings.Builder
	for _, c := range keys {
		sb.WriteString(itoa(c))
		sb.WriteByte(':')
		sb.WriteString(itoa(counts[c]))
		sb.WriteByte(';')
	}
	return sb.String()
}

func itoa(v int) string {
	// Tiny positive ints only; avoids strconv import churn in the hot
	// signature builder.
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// GraphIsoCached is the graph-mining oracle with certificate caching:
// each graph's canonical form is computed once (lazily), after which
// every equivalence test is a string comparison. Equivalent to GraphIso
// but amortized — the practical way to run large graph-mining workloads.
type GraphIsoCached struct {
	graphs []*Graph
	certs  []string
}

// NewGraphIsoCached wraps a collection with lazy certificate caching.
func NewGraphIsoCached(graphs []*Graph) *GraphIsoCached {
	o := &GraphIsoCached{graphs: graphs, certs: make([]string, len(graphs))}
	// Precompute eagerly: Same must be safe for concurrent use, and
	// filling the cache up front avoids synchronization on the hot path.
	for i, g := range graphs {
		o.certs[i] = Canonical(g)
	}
	return o
}

// N implements model.Oracle.
func (o *GraphIsoCached) N() int { return len(o.graphs) }

// Same implements model.Oracle via certificate comparison.
func (o *GraphIsoCached) Same(i, j int) bool { return o.certs[i] == o.certs[j] }

// SameBatch implements model.BatchOracle: with certificates
// precomputed, a whole chunk of tests is a vectorizable walk over the
// cert index — no per-pair call overhead.
//
//ecsort:hotpath
func (o *GraphIsoCached) SameBatch(pairs []model.Pair, out []bool) {
	certs := o.certs
	for i, p := range pairs {
		out[i] = certs[p.A] == certs[p.B]
	}
}

// Graph returns the i-th graph.
func (o *GraphIsoCached) Graph(i int) *Graph { return o.graphs[i] }
