package oracle

import (
	"context"
	"testing"
	"time"
)

func TestAdmitWriteClosed(t *testing.T) {
	r := NewResilient(&scripted{n: 2, outs: []error{nil}}, fastCfg())
	ra, probe, ok := r.AdmitWrite()
	if !ok || probe || ra != 0 {
		t.Fatalf("AdmitWrite on closed breaker = (%v, %v, %v), want (0, false, true)", ra, probe, ok)
	}
}

func TestAdmitWriteOpenRejectsWithRetryAfter(t *testing.T) {
	s := &scripted{n: 2, outs: []error{errBackend}}
	r := NewResilient(s, fastCfg())
	for i := 0; i < 2; i++ { // threshold = 2
		r.TrySame(context.Background(), 0, 1)
	}
	ra, probe, ok := r.AdmitWrite()
	if ok || probe {
		t.Fatalf("AdmitWrite admitted through an open breaker (probe=%v)", probe)
	}
	if ra <= 0 || ra > fastCfg().BreakerCooldown {
		t.Fatalf("retry-after = %v, want (0, %v]", ra, fastCfg().BreakerCooldown)
	}
}

func TestAdmitWriteSingleProbePerCooldown(t *testing.T) {
	s := &scripted{n: 2, outs: []error{errBackend}}
	cfg := fastCfg()
	r := NewResilient(s, cfg)
	for i := 0; i < 2; i++ {
		r.TrySame(context.Background(), 0, 1)
	}
	time.Sleep(cfg.BreakerCooldown + 5*time.Millisecond)

	// First write after the cooldown claims the probe slot.
	ra, probe, ok := r.AdmitWrite()
	if !ok || !probe || ra != 0 {
		t.Fatalf("first half-open write = (%v, %v, %v), want probe admission", ra, probe, ok)
	}
	// A concurrent write is rejected while the probe is outstanding.
	if ra, probe, ok := r.AdmitWrite(); ok || probe || ra <= 0 {
		t.Fatalf("second half-open write = (%v, %v, %v), want rejection with retry-after", ra, probe, ok)
	}

	// The probe's ask succeeds: breaker closes, writes flow again.
	s.mu.Lock()
	s.outs = []error{nil}
	s.mu.Unlock()
	if v, err := r.TrySame(context.Background(), 0, 1); err != nil || !v {
		t.Fatalf("probe ask = %v, %v", v, err)
	}
	if r.State() != BreakerClosed {
		t.Fatalf("state = %v after successful probe write", r.State())
	}
	if _, probe, ok := r.AdmitWrite(); !ok || probe {
		t.Fatal("writes not freely admitted after recovery")
	}
}

func TestAdmitWriteFailedProbeReopens(t *testing.T) {
	s := &scripted{n: 2, outs: []error{errBackend}}
	cfg := fastCfg()
	cfg.BreakerCooldown = 10 * time.Millisecond
	r := NewResilient(s, cfg)
	for i := 0; i < 2; i++ {
		r.TrySame(context.Background(), 0, 1)
	}
	time.Sleep(cfg.BreakerCooldown + 3*time.Millisecond)
	if _, probe, ok := r.AdmitWrite(); !ok || !probe {
		t.Fatal("probe slot not granted after cooldown")
	}
	// The probe's ask fails: breaker re-opens and the slot is released,
	// so the next write is rejected by the open breaker, not the slot.
	r.TrySame(context.Background(), 0, 1)
	ra, probe, ok := r.AdmitWrite()
	if ok || probe || ra <= 0 {
		t.Fatalf("write after failed probe = (%v, %v, %v), want open-breaker rejection", ra, probe, ok)
	}
	// After another cooldown a fresh probe slot is available.
	time.Sleep(cfg.BreakerCooldown + 3*time.Millisecond)
	if _, probe, ok := r.AdmitWrite(); !ok || !probe {
		t.Fatal("probe slot not re-granted after the second cooldown")
	}
}

func TestAdmitWriteProbeSlotExpires(t *testing.T) {
	s := &scripted{n: 2, outs: []error{errBackend}}
	cfg := fastCfg()
	cfg.BreakerCooldown = 10 * time.Millisecond
	r := NewResilient(s, cfg)
	for i := 0; i < 2; i++ {
		r.TrySame(context.Background(), 0, 1)
	}
	time.Sleep(cfg.BreakerCooldown + 3*time.Millisecond)
	if _, probe, ok := r.AdmitWrite(); !ok || !probe {
		t.Fatal("probe slot not granted after cooldown")
	}
	// The probe write's fold issued no oracle asks (nothing ever calls
	// succeed/fail). The slot must self-expire after one cooldown rather
	// than wedge writes forever.
	time.Sleep(cfg.BreakerCooldown + 3*time.Millisecond)
	if _, probe, ok := r.AdmitWrite(); !ok || !probe {
		t.Fatal("probe slot did not expire after an ask-free probe write")
	}
}

func TestUpdateConfigLive(t *testing.T) {
	s := &scripted{n: 2, outs: []error{errBackend}}
	cfg := fastCfg()
	cfg.Retries = -1 // no retries
	r := NewResilient(s, cfg)
	r.TrySame(context.Background(), 0, 1)
	if s.calls != 1 {
		t.Fatalf("backend calls = %d, want 1 (retries disabled)", s.calls)
	}

	cfg.Retries = 3
	r.UpdateConfig(cfg)
	s.mu.Lock()
	s.calls = 0
	s.mu.Unlock()
	r.TrySame(context.Background(), 0, 1)
	if s.calls != 4 {
		t.Fatalf("backend calls = %d, want 4 (3 retries after live update)", s.calls)
	}
}

func TestUpdateConfigPreservesBreakerState(t *testing.T) {
	s := &scripted{n: 2, outs: []error{errBackend}}
	cfg := fastCfg()
	cfg.BreakerCooldown = time.Hour // stay open for the whole test
	r := NewResilient(s, cfg)
	for i := 0; i < 2; i++ {
		r.TrySame(context.Background(), 0, 1)
	}
	if r.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", r.State())
	}
	cfg.Votes = 3
	r.UpdateConfig(cfg)
	if r.State() != BreakerOpen {
		t.Fatal("UpdateConfig amnestied a tripped breaker")
	}
	if r.RetryAfter() <= 0 {
		t.Fatal("RetryAfter lost across UpdateConfig")
	}
}
