package oracle

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// scripted is an Unreliable test double answering from a queue of
// outcomes; when the queue runs dry it repeats the last outcome.
type scripted struct {
	mu    sync.Mutex
	n     int
	outs  []error // nil = answer true; non-nil = fail with that error
	calls int
}

var errBackend = errors.New("backend down")

func (s *scripted) N() int { return s.n }

func (s *scripted) TrySame(ctx context.Context, i, j int) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.outs[min(s.calls, len(s.outs)-1)]
	s.calls++
	if out != nil {
		return false, out
	}
	return true, nil
}

// hung blocks until ctx cancellation — a stuck backend.
type hung struct{ calls int }

func (h *hung) N() int { return 2 }

func (h *hung) TrySame(ctx context.Context, i, j int) (bool, error) {
	h.calls++
	<-ctx.Done()
	return false, ctx.Err()
}

func fastCfg() ResilientConfig {
	return ResilientConfig{
		Timeout:          50 * time.Millisecond,
		Retries:          2,
		Backoff:          time.Microsecond,
		MaxBackoff:       10 * time.Microsecond,
		BreakerThreshold: 2,
		BreakerCooldown:  20 * time.Millisecond,
	}
}

func TestResilientRetriesThenSucceeds(t *testing.T) {
	s := &scripted{n: 2, outs: []error{errBackend, errBackend, nil}}
	r := NewResilient(s, fastCfg())
	v, err := r.TrySame(context.Background(), 0, 1)
	if err != nil || !v {
		t.Fatalf("TrySame = %v, %v", v, err)
	}
	if s.calls != 3 {
		t.Fatalf("backend calls = %d, want 3 (two retries)", s.calls)
	}
	st := r.Stats()
	if st.Attempts != 3 || st.Retries != 2 || st.Failures != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if r.State() != BreakerClosed {
		t.Fatalf("state = %v after recovery", r.State())
	}
}

func TestResilientTimeoutBounds(t *testing.T) {
	h := &hung{}
	cfg := fastCfg()
	cfg.Timeout = 10 * time.Millisecond
	cfg.Retries = 1
	r := NewResilient(h, cfg)
	start := time.Now()
	_, err := r.TrySame(context.Background(), 0, 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("stuck backend held the call for %v", d)
	}
	if h.calls != 2 {
		t.Fatalf("backend calls = %d, want 2 (1 retry)", h.calls)
	}
}

func TestResilientBreakerLifecycle(t *testing.T) {
	s := &scripted{n: 2, outs: []error{errBackend}}
	cfg := fastCfg()
	var tripErr error
	r := NewResilient(s, cfg)
	r.OnTrip(func(err error) { tripErr = err })

	// Two exhausted asks (threshold) trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := r.TrySame(context.Background(), 0, 1); !errors.Is(err, errBackend) {
			t.Fatalf("ask %d err = %v", i, err)
		}
	}
	if !errors.Is(tripErr, errBackend) {
		t.Fatalf("OnTrip error = %v", tripErr)
	}
	if r.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", r.State())
	}
	if r.RetryAfter() <= 0 {
		t.Fatal("RetryAfter = 0 while open")
	}
	// Open: calls fail fast without touching the backend.
	before := s.calls
	if _, err := r.TrySame(context.Background(), 0, 1); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("open-breaker err = %v", err)
	}
	if s.calls != before {
		t.Fatal("open breaker still called the backend")
	}
	if r.Same(0, 1) {
		t.Fatal("Same returned true through an open breaker")
	}

	// After the cooldown the next ask probes; make the backend healthy.
	time.Sleep(cfg.BreakerCooldown + 5*time.Millisecond)
	if r.State() != BreakerHalfOpen {
		t.Fatalf("state = %v after cooldown, want half-open", r.State())
	}
	s.mu.Lock()
	s.outs = []error{nil}
	s.calls = 0
	s.mu.Unlock()
	if v, err := r.TrySame(context.Background(), 0, 1); err != nil || !v {
		t.Fatalf("probe = %v, %v", v, err)
	}
	if r.State() != BreakerClosed {
		t.Fatalf("state = %v after successful probe", r.State())
	}
	if r.RetryAfter() != 0 {
		t.Fatal("RetryAfter > 0 while closed")
	}
	if got := r.Stats().Trips; got != 1 {
		t.Fatalf("trips = %d", got)
	}
}

func TestResilientHalfOpenFailureReopens(t *testing.T) {
	s := &scripted{n: 2, outs: []error{errBackend}}
	cfg := fastCfg()
	cfg.BreakerCooldown = 5 * time.Millisecond
	r := NewResilient(s, cfg)
	for i := 0; i < 2; i++ {
		r.TrySame(context.Background(), 0, 1)
	}
	time.Sleep(cfg.BreakerCooldown + 2*time.Millisecond)
	// Probe fails: breaker re-opens immediately (no fresh streak needed).
	if _, err := r.TrySame(context.Background(), 0, 1); !errors.Is(err, errBackend) {
		t.Fatalf("probe err = %v", err)
	}
	if st := r.Stats(); st.Trips != 2 {
		t.Fatalf("trips = %d, want 2", st.Trips)
	}
	if r.RetryAfter() <= 0 {
		t.Fatal("breaker not re-opened after failed probe")
	}
}

// flipper answers wrong on a fixed schedule — vote mode must outvote it.
type flipper struct {
	calls int
	truth bool
}

func (f *flipper) N() int { return 2 }

func (f *flipper) TrySame(ctx context.Context, i, j int) (bool, error) {
	f.calls++
	if f.calls%3 == 0 { // every third answer lies
		return !f.truth, nil
	}
	return f.truth, nil
}

func TestResilientVotes(t *testing.T) {
	f := &flipper{truth: true}
	cfg := fastCfg()
	cfg.Votes = 5
	r := NewResilient(f, cfg)
	for q := 0; q < 20; q++ {
		if !r.Same(0, 1) {
			t.Fatalf("query %d: vote mode returned the minority answer", q)
		}
	}
}

func TestAsUnreliable(t *testing.T) {
	r := NewResilient(AsUnreliable(NewLabel([]int{0, 0, 1})), ResilientConfig{})
	if !r.Same(0, 1) || r.Same(0, 2) {
		t.Fatal("adapter answers diverge from base oracle")
	}
	if r.N() != 3 {
		t.Fatalf("N = %d", r.N())
	}
}

func TestBreakerStateString(t *testing.T) {
	for st, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
		BreakerState(9): "unknown",
	} {
		if st.String() != want {
			t.Fatalf("%d.String() = %q", st, st.String())
		}
	}
}
