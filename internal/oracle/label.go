// Package oracle provides concrete equivalence oracles for the equivalence
// class sorting problem: a plain label oracle used as ground truth in
// experiments, plus simulated versions of the paper's three motivating
// applications — cryptographic secret handshakes, generalized fault
// diagnosis, and graph mining via graph isomorphism.
//
// All oracles implement model.Oracle and are safe for concurrent use.
package oracle

import (
	"fmt"
	"math/rand"

	"ecsort/internal/model"
)

// Label is the reference oracle: element i belongs to the class labels[i].
// Same(i,j) is a single slice lookup, so experiments measure the
// combinatorics of the algorithms, not oracle overhead.
type Label struct {
	labels []int
}

// NewLabel builds a label oracle. The label values are arbitrary integers;
// equality of labels defines the equivalence relation.
func NewLabel(labels []int) *Label {
	cp := make([]int, len(labels))
	copy(cp, labels)
	return &Label{labels: cp}
}

// N returns the number of elements.
func (o *Label) N() int { return len(o.labels) }

// Same reports whether elements i and j carry the same label.
func (o *Label) Same(i, j int) bool { return o.labels[i] == o.labels[j] }

// SameBatch implements model.BatchOracle: one slice walk answers a
// whole worker-pool chunk, so a parallel round costs one oracle
// invocation per chunk instead of one per pair.
//
//ecsort:hotpath
func (o *Label) SameBatch(pairs []model.Pair, out []bool) {
	labels := o.labels
	for i, p := range pairs {
		out[i] = labels[p.A] == labels[p.B]
	}
}

// Labels returns a copy of the underlying labels.
func (o *Label) Labels() []int {
	cp := make([]int, len(o.labels))
	copy(cp, o.labels)
	return cp
}

// Classes returns the ground-truth classes as element-index groups, ordered
// by smallest member.
func (o *Label) Classes() [][]int {
	first := make(map[int]int) // label -> order of first appearance
	var order []int
	for i, l := range o.labels {
		if _, ok := first[l]; !ok {
			first[l] = len(order)
			order = append(order, i)
		}
	}
	groups := make([][]int, len(order))
	for i, l := range o.labels {
		groups[first[l]] = append(groups[first[l]], i)
	}
	return groups
}

// NumClasses returns the number of distinct classes.
func (o *Label) NumClasses() int {
	seen := make(map[int]struct{})
	for _, l := range o.labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}

// MinClassSize returns the size of the smallest class (0 for an empty
// oracle).
func (o *Label) MinClassSize() int {
	counts := make(map[int]int)
	for _, l := range o.labels {
		counts[l]++
	}
	m := 0
	for _, c := range counts {
		if m == 0 || c < m {
			m = c
		}
	}
	return m
}

// RandomBalanced returns a label oracle over n elements split into k
// classes whose sizes differ by at most one, with class assignment
// shuffled by rng. It panics if k < 1 or k > n.
func RandomBalanced(n, k int, rng *rand.Rand) *Label {
	if k < 1 || k > n {
		panic(fmt.Sprintf("oracle: invalid balanced split n=%d k=%d", n, k))
	}
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % k
	}
	rng.Shuffle(n, func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })
	return NewLabel(labels)
}

// RandomSizes returns a label oracle whose class c has exactly sizes[c]
// members, positions shuffled by rng.
func RandomSizes(sizes []int, rng *rand.Rand) *Label {
	n := 0
	for c, s := range sizes {
		if s < 1 {
			panic(fmt.Sprintf("oracle: class %d has size %d", c, s))
		}
		n += s
	}
	labels := make([]int, 0, n)
	for c, s := range sizes {
		for i := 0; i < s; i++ {
			labels = append(labels, c)
		}
	}
	rng.Shuffle(n, func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })
	return NewLabel(labels)
}
