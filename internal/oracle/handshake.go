package oracle

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"math/rand"
)

// Handshake simulates the cryptographic secret-handshake application: n
// agents each belong to a hidden group and share that group's secret key.
// An equivalence test runs a two-party challenge–response protocol between
// two agent goroutines over channels: each agent draws a nonce, the nonces
// are exchanged, and each side sends HMAC-SHA256(groupKey, nonce_low ‖
// nonce_high). The tags match exactly when the agents hold the same group
// key, and a tag reveals nothing about the key beyond that equality —
// the zero-knowledge property the ECS analysis needs.
//
// The protocol outcome is deterministic for a given pair (same group or
// not), so Handshake is a drop-in, if slower, replacement for Label in
// every algorithm.
type Handshake struct {
	keys [][]byte // per agent, its group key
	// nonceSeed differentiates nonces across pairs; answers do not
	// depend on nonce values, so plain deterministic derivation is fine
	// and keeps runs reproducible.
	nonceSeed uint64
}

// NewHandshake enrolls n agents with group memberships given by labels;
// agents with equal labels receive the same group key, derived from a
// master secret seeded by seed.
func NewHandshake(labels []int, seed int64) *Handshake {
	master := make([]byte, 32)
	rng := rand.New(rand.NewSource(seed))
	for i := range master {
		master[i] = byte(rng.Intn(256))
	}
	groupKey := make(map[int][]byte)
	h := &Handshake{keys: make([][]byte, len(labels)), nonceSeed: uint64(seed) * 0x9e3779b97f4a7c15}
	for i, l := range labels {
		key, ok := groupKey[l]
		if !ok {
			mac := hmac.New(sha256.New, master)
			var buf [8]byte
			binary.BigEndian.PutUint64(buf[:], uint64(l))
			mac.Write(buf[:])
			key = mac.Sum(nil)
			groupKey[l] = key
		}
		h.keys[i] = key
	}
	return h
}

// N implements model.Oracle.
func (h *Handshake) N() int { return len(h.keys) }

// Same implements model.Oracle by running the handshake protocol between
// two agent goroutines connected by channels.
func (h *Handshake) Same(i, j int) bool {
	type message struct {
		nonce [8]byte
		tag   []byte
	}
	iToJ := make(chan message, 1)
	jToI := make(chan message, 1)
	result := make(chan bool, 2)

	agent := func(key []byte, nonce [8]byte, send, recv chan message) {
		// Phase 1: exchange nonces.
		send <- message{nonce: nonce}
		peer := <-recv
		// Phase 2: both sides MAC the canonically ordered transcript.
		lo, hi := nonce, peer.nonce
		if string(lo[:]) > string(hi[:]) {
			lo, hi = hi, lo
		}
		mac := hmac.New(sha256.New, key)
		mac.Write([]byte("ecsort-secret-handshake-v1"))
		mac.Write(lo[:])
		mac.Write(hi[:])
		tag := mac.Sum(nil)
		send <- message{tag: tag}
		peerTag := <-recv
		result <- hmac.Equal(tag, peerTag.tag)
	}

	go agent(h.keys[i], h.nonce(i, j, 0), iToJ, jToI)
	go agent(h.keys[j], h.nonce(i, j, 1), jToI, iToJ)
	a, b := <-result, <-result
	if a != b {
		// Both sides compare the same two tags; disagreement is
		// impossible unless the protocol is broken.
		panic("oracle: handshake sides disagree")
	}
	return a
}

// nonce derives a per-(pair, side) nonce deterministically.
func (h *Handshake) nonce(i, j, side int) [8]byte {
	v := h.nonceSeed
	v ^= uint64(i+1) * 0xbf58476d1ce4e5b9
	v ^= uint64(j+1) * 0x94d049bb133111eb
	v ^= uint64(side+1) * 0xd6e8feb86659fd93
	v ^= v >> 31
	v *= 0xff51afd7ed558ccd
	var out [8]byte
	binary.BigEndian.PutUint64(out[:], v)
	return out
}
