package adversary

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ecsort/internal/model"
)

// ErrInjected is the failure a Flaky oracle returns for an injected
// fault — the outright-error mode, as opposed to the silent-flip mode.
var ErrInjected = errors.New("adversary: injected oracle fault")

// FlakyConfig tunes the injected unreliability. All three fault modes
// compose; the zero value injects nothing.
type FlakyConfig struct {
	// FailRate is the probability in [0,1] that a call returns
	// ErrInjected instead of an answer.
	FailRate float64
	// FlipRate is the probability in [0,1] that a call silently answers
	// wrong — the noisy-oracle model the repair daemon converges against.
	FlipRate float64
	// Latency delays every call by this much (interruptible by ctx).
	Latency time.Duration
	// StuckAfter, when positive, wedges every call after the first
	// StuckAfter: the call blocks until its context is canceled and then
	// fails. This is the stuck-backend mode that exercises per-call
	// timeouts and the circuit breaker.
	StuckAfter int64
	// Seed makes the fault sequence reproducible.
	Seed int64
}

// Flaky wraps a ground-truth oracle in adversarial unreliability:
// outright errors, silently flipped answers, injected latency, and a
// stuck mode that hangs until the caller's deadline fires. It
// implements the Unreliable contract consumed by oracle.Resilient
// (TrySame with a context), which is how the service's fault-tolerance
// middleware is exercised end to end from tests and chaos runs. A
// mutex serializes the fault draws, so a seeded Flaky produces one
// deterministic fault sequence regardless of which goroutine asks.
type Flaky struct {
	base model.Oracle
	cfg  FlakyConfig

	mu    sync.Mutex
	rng   *rand.Rand
	calls int64
	fails int64
	flips int64
}

// NewFlaky wraps base with the configured fault injection. It panics on
// rates outside [0,1]; the service validates specs before building.
func NewFlaky(base model.Oracle, cfg FlakyConfig) *Flaky {
	if cfg.FailRate < 0 || cfg.FailRate > 1 || cfg.FlipRate < 0 || cfg.FlipRate > 1 {
		panic(fmt.Sprintf("adversary: fault rates out of [0,1]: fail %v, flip %v", cfg.FailRate, cfg.FlipRate))
	}
	return &Flaky{base: base, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// N returns the wrapped oracle's universe size.
func (f *Flaky) N() int { return f.base.N() }

// TrySame answers one equivalence test through the fault injector. The
// fault draws (fail, flip) are consumed from the seeded stream before
// any delay, so the sequence of injected faults is a deterministic
// function of the call order even under latency.
func (f *Flaky) TrySame(ctx context.Context, i, j int) (bool, error) {
	f.mu.Lock()
	f.calls++
	stuck := f.cfg.StuckAfter > 0 && f.calls > f.cfg.StuckAfter
	fail := f.cfg.FailRate > 0 && f.rng.Float64() < f.cfg.FailRate
	flip := f.cfg.FlipRate > 0 && f.rng.Float64() < f.cfg.FlipRate
	if fail {
		f.fails++
	}
	if flip {
		f.flips++
	}
	f.mu.Unlock()

	if f.cfg.Latency > 0 {
		t := time.NewTimer(f.cfg.Latency)
		select {
		case <-ctx.Done():
			t.Stop()
			return false, ctx.Err()
		case <-t.C:
		}
	}
	if stuck {
		<-ctx.Done()
		return false, fmt.Errorf("adversary: stuck call released: %w", ctx.Err())
	}
	if fail {
		return false, ErrInjected
	}
	//ecsort:ignore oracleround fault-injection wrapper: the session accounts the outer TrySame, not the inner ground-truth call
	ans := f.base.Same(i, j)
	if flip {
		ans = !ans
	}
	return ans, nil
}

// Counts reports how many calls Flaky has served and how many faults of
// each kind it injected.
func (f *Flaky) Counts() (calls, fails, flips int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls, f.fails, f.flips
}
