package adversary

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ecsort/internal/core"
	"ecsort/internal/model"
)

// runSorter executes a sequential sorter against the adversary with a
// single worker (answers are order-sensitive).
func runAgainst(t *testing.T, adv *Adversary, run func(*model.Session) (core.Result, error)) core.Result {
	t.Helper()
	s := model.NewSession(adv, model.ER, model.Workers(1))
	res, err := run(s)
	if err != nil {
		t.Fatalf("algorithm against adversary: %v", err)
	}
	return res
}

func TestEqualSizeForcesConsistentClasses(t *testing.T) {
	for _, tc := range []struct{ n, f int }{
		{16, 2}, {24, 4}, {60, 6}, {64, 8}, {96, 12},
	} {
		for _, algo := range []struct {
			name string
			run  func(*model.Session) (core.Result, error)
		}{
			{"Naive", core.Naive},
			{"RoundRobin", core.RoundRobin},
		} {
			adv := NewEqualSize(tc.n, tc.f)
			res := runAgainst(t, adv, algo.run)
			if err := adv.Audit(); err != nil {
				t.Fatalf("%s n=%d f=%d: %v", algo.name, tc.n, tc.f, err)
			}
			// The algorithm's answer must match the adversary's final
			// committed coloring.
			if !core.SameClassification(res.Labels(tc.n), adv.Labels()) {
				t.Fatalf("%s n=%d f=%d: answer disagrees with adversary's classes",
					algo.name, tc.n, tc.f)
			}
			// Every class has exactly f elements.
			for _, c := range res.Classes {
				if len(c) != tc.f {
					t.Fatalf("%s n=%d f=%d: class of size %d", algo.name, tc.n, tc.f, len(c))
				}
			}
		}
	}
}

// TestTheorem5LowerBound: completing a sort against the adversary marks
// all n elements, so by Lemma 3 at least n²/(64f) comparisons happened.
func TestTheorem5LowerBound(t *testing.T) {
	for _, tc := range []struct{ n, f int }{
		{64, 2}, {64, 4}, {128, 4}, {128, 8}, {240, 12},
	} {
		adv := NewEqualSize(tc.n, tc.f)
		res := runAgainst(t, adv, core.RoundRobin)
		lb := int64(tc.n * tc.n / (64 * tc.f))
		if res.Stats.Comparisons < lb {
			t.Errorf("n=%d f=%d: %d comparisons below Lemma 3 bound %d",
				tc.n, tc.f, res.Stats.Comparisons, lb)
		}
		if adv.MarkedWeight() != tc.n {
			t.Errorf("n=%d f=%d: only %d elements marked at completion",
				tc.n, tc.f, adv.MarkedWeight())
		}
	}
}

// TestTheorem5BeatsOldBound: the forced comparison counts scale like n²/f,
// clearly above the older Ω(n²/f²) bound — the paper's improvement.
func TestTheorem5BeatsOldBound(t *testing.T) {
	n := 192
	counts := map[int]int64{}
	for _, f := range []int{2, 4, 8, 16} {
		adv := NewEqualSize(n, f)
		res := runAgainst(t, adv, core.RoundRobin)
		counts[f] = res.Stats.Comparisons
	}
	for _, f := range []int{2, 4, 8, 16} {
		oldBound := int64(n * n / (f * f))
		if f >= 8 && counts[f] <= oldBound {
			t.Errorf("f=%d: forced %d comparisons, not above old n²/f² = %d",
				f, counts[f], oldBound)
		}
	}
}

func TestSmallestClassAdversary(t *testing.T) {
	for _, tc := range []struct{ n, l int }{
		{20, 2}, {40, 4}, {80, 8}, {100, 3},
	} {
		adv := NewSmallestClass(tc.n, tc.l)
		res := runAgainst(t, adv, core.RoundRobin)
		if err := adv.Audit(); err != nil {
			t.Fatalf("n=%d l=%d: %v", tc.n, tc.l, err)
		}
		if !core.SameClassification(res.Labels(tc.n), adv.Labels()) {
			t.Fatalf("n=%d l=%d: answer disagrees with adversary", tc.n, tc.l)
		}
		// The special class keeps exactly ℓ members.
		smallest := tc.n
		for _, c := range res.Classes {
			if len(c) < smallest {
				smallest = len(c)
			}
		}
		if smallest != tc.l {
			t.Errorf("n=%d l=%d: smallest class has %d members", tc.n, tc.l, smallest)
		}
		// Identifying the smallest class can't precede the first scc
		// mark, which requires many comparisons (Theorem 6 shape).
		if adv.FirstSCCMark() == 0 {
			t.Errorf("n=%d l=%d: scc never marked though sort completed", tc.n, tc.l)
		}
	}
}

// TestTheorem6Shape: comparisons until the first scc marking scale like
// n²/ℓ — doubling ℓ should roughly halve them, certainly not leave them
// at the n²/ℓ² decay rate.
func TestTheorem6Shape(t *testing.T) {
	n := 240
	marks := map[int]int64{}
	for _, l := range []int{4, 8, 16} {
		adv := NewSmallestClass(n, l)
		runAgainst(t, adv, core.RoundRobin)
		m := adv.FirstSCCMark()
		if m == 0 {
			t.Fatalf("l=%d: no scc mark recorded", l)
		}
		marks[l] = m
	}
	// n²/ℓ predicts ratio 2 between consecutive ℓ; n²/ℓ² predicts 4.
	// Accept anything < 3.4 as "n²/ℓ-like".
	r1 := float64(marks[4]) / float64(marks[8])
	r2 := float64(marks[8]) / float64(marks[16])
	if r1 > 3.4 || r2 > 3.4 {
		t.Errorf("scc-mark decay ratios %.2f, %.2f look like n²/ℓ² rather than n²/ℓ", r1, r2)
	}
}

func TestConstructorValidation(t *testing.T) {
	cases := []func(){
		func() { NewEqualSize(10, 3) }, // f does not divide n
		func() { NewEqualSize(10, 0) },
		func() { NewSmallestClass(5, 2) }, // n < 2l+2
		func() { NewSmallestClass(10, 0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestAdversaryNeverContradicts(t *testing.T) {
	// Fire random queries and record every answer; committed answers must
	// never flip.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, fsize := 24, 4
		adv := NewEqualSize(n, fsize)
		answers := map[[2]int]bool{}
		for q := 0; q < 400; q++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			key := [2]int{min(a, b), max(a, b)}
			got := adv.Same(a, b)
			if prev, ok := answers[key]; ok && prev && !got {
				return false // "equal" can never become "not equal"
			}
			if prev, ok := answers[key]; ok && !prev && got {
				return false // "not equal" can never become "equal"
			}
			answers[key] = got
		}
		return adv.Audit() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQueriesCounter(t *testing.T) {
	adv := NewEqualSize(8, 2)
	adv.Same(0, 1)
	adv.Same(2, 3)
	if q := adv.Queries(); q != 2 {
		t.Fatalf("Queries = %d, want 2", q)
	}
}

func TestMarkedWeightMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	adv := NewEqualSize(32, 4)
	last := 0
	for q := 0; q < 600; q++ {
		a, b := rng.Intn(32), rng.Intn(32)
		if a == b {
			continue
		}
		adv.Same(a, b)
		w := adv.MarkedWeight()
		if w < last {
			t.Fatalf("marked weight decreased: %d -> %d", last, w)
		}
		last = w
	}
}

// TestCaseCountersConsistent: after a complete sort, the counters must
// account for the structural facts — every element marked, contractions
// exactly n − (number of classes), answers sum to queries.
func TestCaseCountersConsistent(t *testing.T) {
	n, f := 96, 8
	adv := NewEqualSize(n, f)
	res := runAgainst(t, adv, core.RoundRobin)
	cs := adv.Cases()
	if cs.Contractions != n-n/f {
		t.Errorf("contractions = %d, want n−k = %d", cs.Contractions, n-n/f)
	}
	if cs.Equal+cs.Unequal != adv.Queries() {
		t.Errorf("answers %d+%d don't sum to queries %d", cs.Equal, cs.Unequal, adv.Queries())
	}
	if cs.Equal != res.Stats.Comparisons-cs.Unequal {
		t.Errorf("answer split inconsistent with comparisons")
	}
	// Every element ends marked; marks happen via degree or color.
	if cs.DegreeMarks == 0 && cs.ColorMarks == 0 {
		t.Error("sort completed without any marking")
	}
	// The early game must be all swaps/edges — at least one swap fires on
	// a same-color comparison before the colors run out of candidates.
	if cs.Swaps == 0 {
		t.Error("no swaps recorded: case 2 never exercised")
	}
}

// TestSwapScenario pins down case 2 on a hand-built scenario: with a
// fresh adversary, the very first same-color comparison must swap, not
// mark (plenty of unmarked candidates exist).
func TestSwapScenario(t *testing.T) {
	adv := NewEqualSize(12, 3) // colors {0,1,2}, {3,4,5}, ...
	if adv.Same(0, 1) {
		t.Fatal("same-color pair answered equal while unmarked")
	}
	cs := adv.Cases()
	if cs.Swaps != 1 || cs.ColorMarks != 0 || cs.DegreeMarks != 0 {
		t.Fatalf("cases = %+v, want exactly one swap", cs)
	}
	// Proper coloring must survive the swap.
	if err := adv.Audit(); err != nil {
		t.Fatal(err)
	}
}

// TestSCCProtectionFires: drive a smallest-class element's degree over
// the threshold and check the protection swap triggered before marking.
func TestSCCProtectionFires(t *testing.T) {
	n, l := 40, 2 // threshold n/(4l) = 5
	adv := NewSmallestClass(n, l)
	// Hammer element 0 (initially scc-colored) with distinct partners
	// until its degree crosses the threshold.
	for b := l; b < n; b++ {
		adv.Same(0, b)
		if adv.Cases().DegreeMarks > 0 {
			break
		}
	}
	cs := adv.Cases()
	if cs.DegreeMarks == 0 {
		t.Fatal("degree never crossed the threshold")
	}
	if cs.SCCProtects == 0 {
		t.Fatal("scc element was marked without a protection attempt")
	}
	if adv.FirstSCCMark() != 0 {
		t.Fatal("scc marked despite successful protection swap")
	}
	if err := adv.Audit(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdversaryQuery(b *testing.B) {
	adv := NewEqualSize(1024, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := i % 1024
		y := (i*31 + 7) % 1024
		if x != y {
			adv.Same(x, y)
		}
	}
}

// TestAdversaryAsOracleForParallelSorts: the parallel algorithms must also
// terminate correctly against the adaptive adversary.
func TestAdversaryAsOracleForParallelSorts(t *testing.T) {
	t.Run("SortER", func(t *testing.T) {
		adv := NewEqualSize(32, 4)
		s := model.NewSession(adv, model.ER, model.Workers(1))
		res, err := core.SortER(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := adv.Audit(); err != nil {
			t.Fatal(err)
		}
		if !core.SameClassification(res.Labels(32), adv.Labels()) {
			t.Fatal("SortER answer disagrees with adversary's classes")
		}
	})
	t.Run("SortCR", func(t *testing.T) {
		adv := NewEqualSize(32, 4)
		s := model.NewSession(adv, model.CR, model.Workers(1))
		res, err := core.SortCR(s, 8)
		if err != nil {
			t.Fatal(err)
		}
		if err := adv.Audit(); err != nil {
			t.Fatal(err)
		}
		if !core.SameClassification(res.Labels(32), adv.Labels()) {
			t.Fatal("SortCR answer disagrees with adversary's classes")
		}
	})
}
