// Package adversary implements the lower-bound constructions of Section 3
// of the paper as adaptive oracles: they answer equivalence tests online
// while maintaining a weighted equitable coloring of the knowledge graph,
// so that any algorithm is forced to spend Ω(n²/f) comparisons when every
// class has size f (Theorem 5) and Ω(n²/ℓ) comparisons to identify a
// member of the smallest class (Theorem 6).
//
// The adversary keeps one vertex per fragment (set of elements it has
// committed to being equivalent), colored so that each color class has a
// fixed total weight. Unmarked vertices always have weight one. A
// comparison is processed by the case analysis of Section 3:
//
//  1. an unmarked endpoint whose degree would exceed the threshold is
//     marked "high element degree";
//  2. if an endpoint is still unmarked and both endpoints share a color,
//     the adversary tries to swap the unmarked endpoint's color with some
//     other unmarked vertex, keeping the coloring proper;
//  3. if no swap candidate exists, the whole color is marked "high color
//     degree";
//  4. finally the answer is read off the colors: both endpoints marked and
//     same color → "equal" (fragments contract); otherwise → "not equal"
//     (an edge is added).
//
// Because the adversary implements model.Oracle, the upper-bound
// algorithms run against it unchanged; run them with model.Workers(1) so
// answers are order-deterministic.
package adversary

import (
	"fmt"
	"sync"

	"ecsort/internal/unionfind"
)

// Kind selects which lower-bound construction an Adversary realizes.
type Kind int

const (
	// EqualSize is the Theorem 5 adversary: every class ends with
	// exactly f elements and the degree threshold is n/(4f).
	EqualSize Kind = iota
	// SmallestClass is the Theorem 6 adversary: one special color (the
	// "scc") of ℓ elements is protected from marking for as long as
	// possible; the degree threshold is n/(4ℓ).
	SmallestClass
)

// Adversary is an adaptive equivalence oracle realizing the Section 3
// lower bounds. It is safe for concurrent use (a mutex serializes
// queries), but answers then depend on arrival order; use
// model.Workers(1) for reproducibility.
type Adversary struct {
	mu sync.Mutex

	kind      Kind
	n         int
	param     int     // f for EqualSize, ℓ for SmallestClass
	threshold float64 // degree bound: n/(4·param)

	dsu    *unionfind.DSU
	weight []int // at roots: number of elements in the fragment

	colorOf     []int // at roots
	marked      []bool
	colorMarked []bool
	// colorMembers lists the root vertices currently holding each color;
	// entries may be stale (non-roots) and are canonicalized lazily.
	colorMembers [][]int
	// adj[r] is the set of roots known unequal to root r.
	adj []map[int]struct{}
	// adjColor[r][c] counts neighbors of root r carrying color c; used
	// for O(1) proper-coloring checks during swaps.
	adjColor []map[int]int

	sccColor int // SmallestClass only; -1 otherwise

	queries          int64
	markedWeight     int   // total weight of marked vertices
	firstSCCMarkedAt int64 // query count when the first scc element was marked; 0 = not yet

	// Case counters, exposed for tests and reporting: how often the
	// adversary resolved a query through each branch of the Section 3
	// case analysis.
	degreeMarks   int // case 1: "high element degree" marks
	swaps         int // case 2: color swaps
	colorMarks    int // case 3: whole colors marked
	contractions  int // case 4, equal answers
	sccProtects   int // Theorem 6 only: scc vertices swapped out of danger
	equalAnswers  int64
	unequalAnswer int64
}

// NewEqualSize builds the Theorem 5 adversary over n elements destined for
// classes of exactly f elements each. f must divide n.
func NewEqualSize(n, f int) *Adversary {
	if f < 1 || n%f != 0 {
		panic(fmt.Sprintf("adversary: f=%d must divide n=%d", f, n))
	}
	a := newAdversary(EqualSize, n, f)
	// Arbitrary equitable coloring: element i gets color i/f, so each of
	// the n/f colors holds f weight-one vertices.
	for i := 0; i < n; i++ {
		a.setInitialColor(i, i/f)
	}
	return a
}

// NewSmallestClass builds the Theorem 6 adversary over n elements with a
// special smallest class of ℓ elements. The remaining n−ℓ elements are
// split into ⌊(n−ℓ)/(ℓ+1)⌋ color classes of nearly equal size (each at
// least ℓ+1). Requires n ≥ 2ℓ+2 so at least one non-scc color exists.
func NewSmallestClass(n, l int) *Adversary {
	if l < 1 || n < 2*l+2 {
		panic(fmt.Sprintf("adversary: need n >= 2l+2, got n=%d l=%d", n, l))
	}
	a := newAdversary(SmallestClass, n, l)
	a.sccColor = 0
	for i := 0; i < l; i++ {
		a.setInitialColor(i, 0)
	}
	rest := n - l
	classes := rest / (l + 1)
	// Distribute the rest as evenly as possible over `classes` colors
	// 1..classes.
	base := rest / classes
	extra := rest % classes
	idx := l
	for c := 0; c < classes; c++ {
		size := base
		if c < extra {
			size++
		}
		for j := 0; j < size; j++ {
			a.setInitialColor(idx, c+1)
			idx++
		}
	}
	return a
}

func newAdversary(kind Kind, n, param int) *Adversary {
	a := &Adversary{
		kind:      kind,
		n:         n,
		param:     param,
		threshold: float64(n) / (4 * float64(param)),
		dsu:       unionfind.New(n),
		weight:    make([]int, n),
		colorOf:   make([]int, n),
		marked:    make([]bool, n),
		adj:       make([]map[int]struct{}, n),
		adjColor:  make([]map[int]int, n),
		sccColor:  -1,
	}
	for i := range a.weight {
		a.weight[i] = 1
		a.colorOf[i] = -1
	}
	return a
}

func (a *Adversary) setInitialColor(v, c int) {
	for c >= len(a.colorMembers) {
		a.colorMembers = append(a.colorMembers, nil)
		a.colorMarked = append(a.colorMarked, false)
	}
	a.colorOf[v] = c
	a.colorMembers[c] = append(a.colorMembers[c], v)
}

// N implements model.Oracle.
func (a *Adversary) N() int { return a.n }

// Queries returns the number of equivalence tests answered so far.
func (a *Adversary) Queries() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queries
}

// MarkedWeight returns the total number of elements currently marked.
// Lemma 3 states that once n/8 elements are marked, Ω(n²/f) comparisons
// must already have happened.
func (a *Adversary) MarkedWeight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.markedWeight
}

// FirstSCCMark returns the query count at which the first element of the
// special smallest-class color was marked, or 0 if that has not happened.
// Only meaningful for SmallestClass adversaries: until this point, no
// algorithm can correctly commit to a member of the smallest class.
func (a *Adversary) FirstSCCMark() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.firstSCCMarkedAt
}

// Same implements model.Oracle by running the Section 3 case analysis.
func (a *Adversary) Same(x, y int) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.queries++

	u, v := a.dsu.Find(x), a.dsu.Find(y)
	if u == v {
		return true // already committed equal; a repeat costs the caller
	}

	// Case 1: mark endpoints whose degree would exceed the threshold. The
	// Theorem 6 adversary first tries to swap an endangered scc vertex
	// out of the protected color.
	for _, w := range [2]int{u, v} {
		if !a.marked[w] && float64(len(a.adj[w])+1) > a.threshold {
			if a.protectSCC(w) {
				a.sccProtects++
			}
			a.degreeMarks++
			a.markVertex(w)
		}
	}

	// Cases 2 and 3 apply only when an endpoint is unmarked and the two
	// endpoints share a color.
	if (!a.marked[u] || !a.marked[v]) && a.colorOf[u] == a.colorOf[v] {
		w := u
		if a.marked[u] {
			w = v
		}
		c := a.colorOf[u]
		if z, ok := a.findSwapCandidate(c, w, u, v); ok {
			a.swaps++
			a.swapColors(w, z)
		} else {
			a.colorMarks++
			a.markColor(c)
		}
	}

	// Case 4: answer from the colors.
	if a.marked[u] && a.marked[v] {
		if a.colorOf[u] == a.colorOf[v] {
			a.contractions++
			a.equalAnswers++
			a.contract(u, v)
			return true
		}
		a.unequalAnswer++
		a.addEdge(u, v)
		return false
	}
	// One endpoint is unmarked; the machinery above guarantees the
	// colors now differ.
	if a.colorOf[u] == a.colorOf[v] {
		panic("adversary: invariant violation, unmarked endpoints share a color after case 2/3")
	}
	a.unequalAnswer++
	a.addEdge(u, v)
	return false
}

// findSwapCandidate looks for an unmarked vertex z ∉ {u, v} of an
// unmarked color c' ≠ c with no neighbor colored c, such that w has no
// neighbor colored c'. Swapping w and z then keeps the coloring proper.
func (a *Adversary) findSwapCandidate(c, w, u, v int) (int, bool) {
	for cp := range a.colorMembers {
		if cp == c || a.colorMarked[cp] {
			continue
		}
		if a.neighborCount(w, cp) > 0 {
			continue
		}
		a.canonicalizeColor(cp)
		for _, z := range a.colorMembers[cp] {
			if z == u || z == v || a.marked[z] {
				continue
			}
			if a.neighborCount(z, c) == 0 {
				return z, true
			}
		}
	}
	return 0, false
}

// neighborCount returns how many neighbors of root r carry color c.
func (a *Adversary) neighborCount(r, c int) int {
	if a.adjColor[r] == nil {
		return 0
	}
	return a.adjColor[r][c]
}

// canonicalizeColor rewrites a color's member list to current roots,
// dropping duplicates left behind by contractions.
func (a *Adversary) canonicalizeColor(c int) {
	members := a.colorMembers[c][:0]
	seen := make(map[int]struct{}, len(a.colorMembers[c]))
	for _, m := range a.colorMembers[c] {
		r := a.dsu.Find(m)
		if a.colorOf[r] != c {
			continue // m was swapped away under an old identity
		}
		if _, dup := seen[r]; dup {
			continue
		}
		seen[r] = struct{}{}
		members = append(members, r)
	}
	a.colorMembers[c] = members
}

// swapColors exchanges the colors of roots w and z and patches every
// neighbor's color census.
func (a *Adversary) swapColors(w, z int) {
	cw, cz := a.colorOf[w], a.colorOf[z]
	a.recolor(w, cw, cz)
	a.recolor(z, cz, cw)
}

func (a *Adversary) recolor(r, from, to int) {
	a.colorOf[r] = to
	a.colorMembers[to] = append(a.colorMembers[to], r)
	for t := range a.adj[r] {
		a.adjColor[t][from]--
		if a.adjColor[t][from] == 0 {
			delete(a.adjColor[t], from)
		}
		a.adjColor[t][to]++
	}
	// The stale entry in colorMembers[from] is dropped lazily by
	// canonicalizeColor.
}

// markVertex marks a root (and thereby all its elements).
func (a *Adversary) markVertex(r int) {
	if a.marked[r] {
		return
	}
	a.marked[r] = true
	a.markedWeight += a.weight[r]
	a.noteSCCMark(r)
}

// markColor marks the color and every vertex carrying it.
func (a *Adversary) markColor(c int) {
	a.colorMarked[c] = true
	a.canonicalizeColor(c)
	for _, r := range a.colorMembers[c] {
		a.markVertex(r)
	}
}

// noteSCCMark records the first time an scc vertex becomes marked
// (SmallestClass only).
func (a *Adversary) noteSCCMark(r int) {
	if a.sccColor >= 0 && a.firstSCCMarkedAt == 0 && a.colorOf[r] == a.sccColor {
		a.firstSCCMarkedAt = a.queries
	}
}

// addEdge records that roots u and v are known unequal.
func (a *Adversary) addEdge(u, v int) {
	if a.adj[u] == nil {
		a.adj[u] = make(map[int]struct{})
	}
	if _, ok := a.adj[u][v]; ok {
		return
	}
	a.adj[u][v] = struct{}{}
	if a.adj[v] == nil {
		a.adj[v] = make(map[int]struct{})
	}
	a.adj[v][u] = struct{}{}
	a.bumpAdjColor(u, a.colorOf[v], 1)
	a.bumpAdjColor(v, a.colorOf[u], 1)
}

func (a *Adversary) bumpAdjColor(r, c, delta int) {
	if a.adjColor[r] == nil {
		a.adjColor[r] = make(map[int]int)
	}
	a.adjColor[r][c] += delta
	if a.adjColor[r][c] == 0 {
		delete(a.adjColor[r], c)
	}
}

// contract merges the fragments of marked roots u and v (same color).
func (a *Adversary) contract(u, v int) {
	root, _ := a.dsu.Union(u, v)
	absorbed := u
	if root == u {
		absorbed = v
	}
	a.weight[root] += a.weight[absorbed]
	// Move absorbed's edges onto root, collapsing duplicates.
	for t := range a.adj[absorbed] {
		delete(a.adj[t], absorbed)
		a.bumpAdjColor(t, a.colorOf[absorbed], -1)
		if _, dup := a.adj[root][t]; dup {
			continue // t already adjacent to root; censuses already counted
		}
		if a.adj[root] == nil {
			a.adj[root] = make(map[int]struct{})
		}
		a.adj[root][t] = struct{}{}
		a.adj[t][root] = struct{}{}
		a.bumpAdjColor(t, a.colorOf[root], 1)
		a.bumpAdjColor(root, a.colorOf[t], 1)
	}
	a.adj[absorbed] = nil
	a.adjColor[absorbed] = nil
	// colorMembers keeps a stale entry for absorbed; canonicalizeColor
	// will fold it into root.
}

// protectSCC is invoked before an scc vertex would be marked by case 1:
// the Theorem 6 adversary first tries to swap the endangered vertex's
// color with any valid unmarked vertex of another color.
func (a *Adversary) protectSCC(r int) bool {
	if a.sccColor < 0 || a.colorOf[r] != a.sccColor || a.marked[r] {
		return false
	}
	if z, ok := a.findSwapCandidate(a.colorOf[r], r, r, -1); ok {
		a.swapColors(r, z)
		return true
	}
	return false
}

// Classes returns the adversary's current classes (the color classes),
// usable as ground truth once the consulted algorithm finishes. Classes
// are keyed by color and contain element indices.
func (a *Adversary) Classes() [][]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	byColor := make([][]int, len(a.colorMembers))
	for e := 0; e < a.n; e++ {
		c := a.colorOf[a.dsu.Find(e)]
		byColor[c] = append(byColor[c], e)
	}
	out := make([][]int, 0, len(byColor))
	for _, g := range byColor {
		if len(g) > 0 {
			out = append(out, g)
		}
	}
	return out
}

// Labels returns the current color of each element — the adversary's
// committed classification.
func (a *Adversary) Labels() []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	labels := make([]int, a.n)
	for e := 0; e < a.n; e++ {
		labels[e] = a.colorOf[a.dsu.Find(e)]
	}
	return labels
}

// CaseStats reports how often each branch of the Section 3 case analysis
// fired — observability into the adversary's strategy.
type CaseStats struct {
	DegreeMarks  int   // case 1: elements marked for high degree
	Swaps        int   // case 2: color swaps performed
	ColorMarks   int   // case 3: whole colors marked
	Contractions int   // case 4: fragments contracted ("equal" answers)
	SCCProtects  int   // Theorem 6: scc vertices swapped out of danger
	Equal        int64 // total "equal" answers
	Unequal      int64 // total "not equal" answers
}

// Cases returns a snapshot of the case counters.
func (a *Adversary) Cases() CaseStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return CaseStats{
		DegreeMarks:  a.degreeMarks,
		Swaps:        a.swaps,
		ColorMarks:   a.colorMarks,
		Contractions: a.contractions,
		SCCProtects:  a.sccProtects,
		Equal:        a.equalAnswers,
		Unequal:      a.unequalAnswer,
	}
}

// Audit verifies the adversary's internal invariants: the coloring is
// proper (no inequality edge joins two vertices of one color, so the
// adversary can never have contradicted itself), every color class still
// carries its fixed total weight, and unmarked vertices have weight one.
// Tests call it after running an algorithm to completion.
func (a *Adversary) Audit() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	weights := make([]int, len(a.colorMembers))
	seen := make(map[int]struct{}, a.n)
	for e := 0; e < a.n; e++ {
		r := a.dsu.Find(e)
		if _, done := seen[r]; done {
			continue
		}
		seen[r] = struct{}{}
		c := a.colorOf[r]
		if c < 0 || c >= len(weights) {
			return fmt.Errorf("adversary: root %d has invalid color %d", r, c)
		}
		weights[c] += a.weight[r]
		if !a.marked[r] && a.weight[r] != 1 {
			return fmt.Errorf("adversary: unmarked root %d has weight %d", r, a.weight[r])
		}
		for t := range a.adj[r] {
			if a.dsu.Find(t) != t {
				return fmt.Errorf("adversary: root %d adjacent to non-root %d", r, t)
			}
			if a.colorOf[t] == c {
				return fmt.Errorf("adversary: improper coloring, edge (%d,%d) within color %d", r, t, c)
			}
		}
	}
	want := a.param // f for EqualSize
	for c, w := range weights {
		if a.kind == SmallestClass {
			if c == a.sccColor {
				want = a.param
			} else {
				want = weights[c] // sizes vary; only check non-negative
			}
		}
		if a.kind == EqualSize && w != want {
			return fmt.Errorf("adversary: color %d has weight %d, want %d", c, w, want)
		}
		if a.kind == SmallestClass && c == a.sccColor && w != a.param {
			return fmt.Errorf("adversary: scc color has weight %d, want %d", w, a.param)
		}
	}
	return nil
}
