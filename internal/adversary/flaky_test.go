package adversary

import (
	"context"
	"errors"
	"testing"
	"time"

	"ecsort/internal/oracle"
)

func TestFlakyPassthrough(t *testing.T) {
	base := oracle.NewLabel([]int{0, 1, 0})
	f := NewFlaky(base, FlakyConfig{})
	ctx := context.Background()
	v, err := f.TrySame(ctx, 0, 2)
	if err != nil || !v {
		t.Fatalf("TrySame(0,2) = %v, %v", v, err)
	}
	v, err = f.TrySame(ctx, 0, 1)
	if err != nil || v {
		t.Fatalf("TrySame(0,1) = %v, %v", v, err)
	}
	if f.N() != 3 {
		t.Fatalf("N = %d", f.N())
	}
}

func TestFlakyFailAndFlipRates(t *testing.T) {
	base := oracle.NewLabel(make([]int, 2)) // both elements equivalent
	f := NewFlaky(base, FlakyConfig{FailRate: 0.3, FlipRate: 0.3, Seed: 42})
	ctx := context.Background()
	const calls = 2000
	fails, flips := 0, 0
	for c := 0; c < calls; c++ {
		v, err := f.TrySame(ctx, 0, 1)
		switch {
		case errors.Is(err, ErrInjected):
			fails++
		case err != nil:
			t.Fatal(err)
		case !v: // truth is "equal", so false means flipped
			flips++
		}
	}
	if fails < calls/5 || fails > calls/2 {
		t.Fatalf("injected failures = %d of %d, want ≈30%%", fails, calls)
	}
	// Flips are only observable on non-failed calls (~70% of them).
	if flips < calls/10 || flips > calls/2 {
		t.Fatalf("observed flips = %d of %d, want ≈21%%", flips, calls)
	}
	gotCalls, gotFails, gotFlips := f.Counts()
	if gotCalls != calls || int(gotFails) != fails || gotFlips == 0 {
		t.Fatalf("Counts = %d, %d, %d", gotCalls, gotFails, gotFlips)
	}
}

func TestFlakyDeterministicSequence(t *testing.T) {
	run := func() []bool {
		f := NewFlaky(oracle.NewLabel(make([]int, 2)), FlakyConfig{FlipRate: 0.5, Seed: 7})
		out := make([]bool, 100)
		for i := range out {
			v, err := f.TrySame(context.Background(), 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = v
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequence diverged at call %d", i)
		}
	}
}

func TestFlakyStuckRespectsContext(t *testing.T) {
	f := NewFlaky(oracle.NewLabel(make([]int, 2)), FlakyConfig{StuckAfter: 1})
	ctx := context.Background()
	if _, err := f.TrySame(ctx, 0, 1); err != nil {
		t.Fatalf("call 1 should pass: %v", err)
	}
	tctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := f.TrySame(tctx, 0, 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stuck call err = %v, want deadline", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("stuck call did not release on ctx cancellation")
	}
}

func TestFlakyLatency(t *testing.T) {
	f := NewFlaky(oracle.NewLabel(make([]int, 2)), FlakyConfig{Latency: 10 * time.Millisecond})
	start := time.Now()
	if _, err := f.TrySame(context.Background(), 0, 1); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("latency not injected: call took %v", d)
	}
	// Cancellation interrupts the delay.
	tctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := f.TrySame(tctx, 0, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("latency call err = %v, want deadline", err)
	}
}
