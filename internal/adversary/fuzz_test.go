package adversary

import (
	"testing"
)

// FuzzAdversaryConsistency feeds arbitrary query sequences to both
// adversaries and checks the two commitments that make them sound:
// answers never flip, and the internal invariants (proper coloring, class
// weights) always audit clean.
func FuzzAdversaryConsistency(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6}, true)
	f.Add([]byte{9, 9, 9, 9}, false)
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, true)
	f.Fuzz(func(t *testing.T, data []byte, equalKind bool) {
		if len(data) < 2 {
			return
		}
		const n = 24
		var adv *Adversary
		if equalKind {
			adv = NewEqualSize(n, 4)
		} else {
			adv = NewSmallestClass(n, 3)
		}
		answers := map[[2]int]bool{}
		for step := 0; step+1 < len(data); step += 2 {
			a := int(data[step]) % n
			b := int(data[step+1]) % n
			if a == b {
				continue
			}
			key := [2]int{min(a, b), max(a, b)}
			got := adv.Same(a, b)
			if prev, seen := answers[key]; seen && prev != got {
				t.Fatalf("answer for %v flipped from %v to %v", key, prev, got)
			}
			answers[key] = got
		}
		if err := adv.Audit(); err != nil {
			t.Fatalf("audit failed: %v", err)
		}
	})
}
