// Package knowledge maintains the state of an ECS algorithm's knowledge as
// the graph of Figure 2 of the paper: each vertex is a "fragment" (a set of
// elements known pairwise equivalent), and an edge joins two fragments
// known to be in different classes. Testing two elements equal contracts
// their fragments; testing them unequal adds an edge. The algorithm has
// finished exactly when the graph is a clique, at which point the fragments
// are the equivalence classes.
//
// The implementation keeps enemy sets exact under contraction: when two
// fragments merge, their enemy sets are united (small-to-large) and every
// enemy's own set is rekeyed to the surviving root, so Known is always an
// O(1) lookup and the edge count is never stale.
package knowledge

import (
	"fmt"

	"ecsort/internal/unionfind"
)

// Graph tracks fragments and known-unequal edges over elements 0..n-1.
type Graph struct {
	dsu     *unionfind.DSU
	enemies []map[int]struct{} // valid only at DSU roots
	edges   int                // number of distinct fragment-pair edges
}

// New returns a knowledge graph with n singleton fragments and no edges.
func New(n int) *Graph {
	g := &Graph{
		dsu:     unionfind.New(n),
		enemies: make([]map[int]struct{}, n),
	}
	return g
}

// N returns the number of elements.
func (g *Graph) N() int { return g.dsu.Len() }

// Fragments returns the current number of fragments.
func (g *Graph) Fragments() int { return g.dsu.Sets() }

// Edges returns the number of distinct fragment pairs known unequal.
func (g *Graph) Edges() int { return g.edges }

// Find returns the fragment root of element x.
func (g *Graph) Find(x int) int { return g.dsu.Find(x) }

// Known reports the graph's knowledge about elements a and b:
// same == true means they are in one fragment; otherwise known == true
// means their fragments have an inequality edge. (same, known) == (false,
// false) means the relationship is still unknown.
func (g *Graph) Known(a, b int) (same, known bool) {
	ra, rb := g.dsu.Find(a), g.dsu.Find(b)
	if ra == rb {
		return true, true
	}
	if g.enemies[ra] != nil {
		if _, ok := g.enemies[ra][rb]; ok {
			return false, true
		}
	}
	return false, false
}

// RecordUnequal adds the inequality edge between the fragments of a and b.
// It panics if the fragments are already known equal (an oracle or
// algorithm inconsistency).
func (g *Graph) RecordUnequal(a, b int) {
	ra, rb := g.dsu.Find(a), g.dsu.Find(b)
	if ra == rb {
		panic(fmt.Sprintf("knowledge: elements %d and %d recorded unequal but already merged", a, b))
	}
	if g.addEdge(ra, rb) {
		g.edges++
	}
}

// addEdge inserts the undirected edge (ra, rb) between roots and reports
// whether it was new.
func (g *Graph) addEdge(ra, rb int) bool {
	if g.enemies[ra] == nil {
		g.enemies[ra] = make(map[int]struct{})
	}
	if _, ok := g.enemies[ra][rb]; ok {
		return false
	}
	g.enemies[ra][rb] = struct{}{}
	if g.enemies[rb] == nil {
		g.enemies[rb] = make(map[int]struct{})
	}
	g.enemies[rb][ra] = struct{}{}
	return true
}

// RecordEqual contracts the fragments of a and b. It panics if the
// fragments are known unequal (an oracle or algorithm inconsistency).
// Contracting fragments that are already one fragment is a no-op.
func (g *Graph) RecordEqual(a, b int) {
	ra, rb := g.dsu.Find(a), g.dsu.Find(b)
	if ra == rb {
		return
	}
	if g.enemies[ra] != nil {
		if _, ok := g.enemies[ra][rb]; ok {
			panic(fmt.Sprintf("knowledge: elements %d and %d recorded equal but known unequal", a, b))
		}
	}
	root, _ := g.dsu.Union(ra, rb)
	absorbed := ra
	if root == ra {
		absorbed = rb
	}
	// Rekey: every enemy of the absorbed root must now point at the
	// surviving root; duplicate edges (enemy knew both halves) collapse.
	for e := range g.enemies[absorbed] {
		delete(g.enemies[e], absorbed)
		if _, dup := g.enemies[e][root]; dup {
			g.edges-- // the two parallel edges collapse into one
			continue
		}
		g.enemies[e][root] = struct{}{}
		if g.enemies[root] == nil {
			g.enemies[root] = make(map[int]struct{})
		}
		g.enemies[root][e] = struct{}{}
	}
	g.enemies[absorbed] = nil
}

// DegreeOf returns the number of fragments known unequal to x's fragment.
func (g *Graph) DegreeOf(x int) int {
	return len(g.enemies[g.dsu.Find(x)])
}

// DoneFor reports whether x's fragment has a known relationship to every
// other fragment, i.e. x can learn nothing more.
func (g *Graph) DoneFor(x int) bool {
	return g.DegreeOf(x) == g.dsu.Sets()-1
}

// Complete reports whether the knowledge graph is a clique on the current
// fragments, i.e. the equivalence classes are fully determined.
func (g *Graph) Complete() bool {
	m := g.dsu.Sets()
	return g.edges == m*(m-1)/2
}

// Groups returns the current fragments as element-index groups ordered by
// smallest member.
func (g *Graph) Groups() [][]int { return g.dsu.Groups() }

// Labels returns a canonical fragment labeling (see unionfind.DSU.Labels).
func (g *Graph) Labels() []int { return g.dsu.Labels() }
