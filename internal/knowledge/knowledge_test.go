package knowledge

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFreshGraph(t *testing.T) {
	g := New(4)
	if g.N() != 4 || g.Fragments() != 4 || g.Edges() != 0 {
		t.Fatalf("fresh graph state wrong: n=%d frag=%d edges=%d", g.N(), g.Fragments(), g.Edges())
	}
	if same, known := g.Known(0, 1); same || known {
		t.Fatal("fresh graph should know nothing")
	}
	if g.Complete() {
		t.Fatal("graph with 4 fragments and no edges cannot be complete")
	}
}

func TestRecordUnequal(t *testing.T) {
	g := New(3)
	g.RecordUnequal(0, 1)
	if same, known := g.Known(0, 1); same || !known {
		t.Fatal("0-1 should be known unequal")
	}
	if g.Edges() != 1 {
		t.Fatalf("Edges = %d, want 1", g.Edges())
	}
	// Re-recording is idempotent.
	g.RecordUnequal(1, 0)
	if g.Edges() != 1 {
		t.Fatalf("Edges after duplicate = %d, want 1", g.Edges())
	}
}

func TestRecordEqualMergesKnowledge(t *testing.T) {
	g := New(4)
	g.RecordUnequal(0, 2)
	g.RecordEqual(0, 1)
	// 1 inherits 0's enemies.
	if same, known := g.Known(1, 2); same || !known {
		t.Fatal("1-2 should be known unequal after merging 0 and 1")
	}
	if g.Fragments() != 3 {
		t.Fatalf("Fragments = %d, want 3", g.Fragments())
	}
}

func TestEdgeCollapseOnMerge(t *testing.T) {
	g := New(4)
	g.RecordUnequal(0, 2)
	g.RecordUnequal(1, 2)
	if g.Edges() != 2 {
		t.Fatalf("Edges = %d, want 2", g.Edges())
	}
	g.RecordEqual(0, 1) // both enemies of 2 merge: parallel edges collapse
	if g.Edges() != 1 {
		t.Fatalf("Edges after collapse = %d, want 1", g.Edges())
	}
}

func TestCompleteAndDone(t *testing.T) {
	g := New(4)
	g.RecordEqual(0, 1)
	g.RecordEqual(2, 3)
	if g.Complete() {
		t.Fatal("two fragments with no edge are not complete")
	}
	if g.DoneFor(0) {
		t.Fatal("0 should not be done yet")
	}
	g.RecordUnequal(0, 2)
	if !g.Complete() {
		t.Fatal("two fragments joined by an edge are complete")
	}
	if !g.DoneFor(0) || !g.DoneFor(3) {
		t.Fatal("everyone should be done once complete")
	}
}

func TestInconsistencyPanics(t *testing.T) {
	t.Run("equal after unequal", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		g := New(2)
		g.RecordUnequal(0, 1)
		g.RecordEqual(0, 1)
	})
	t.Run("unequal after equal", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		g := New(2)
		g.RecordEqual(0, 1)
		g.RecordUnequal(0, 1)
	})
}

func TestRecordEqualIdempotent(t *testing.T) {
	g := New(3)
	g.RecordEqual(0, 1)
	g.RecordEqual(1, 0) // same fragment: no-op
	if g.Fragments() != 2 {
		t.Fatalf("Fragments = %d, want 2", g.Fragments())
	}
}

// mirror tracks pairwise knowledge naively for cross-checking.
type mirror struct {
	n       int
	label   []int
	unequal map[[2]int]bool // by element pair, canonical order
}

func newMirror(n int) *mirror {
	m := &mirror{n: n, label: make([]int, n), unequal: map[[2]int]bool{}}
	for i := range m.label {
		m.label[i] = i
	}
	return m
}

func (m *mirror) key(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

func (m *mirror) knownUnequal(a, b int) bool {
	// Any recorded unequal pair between the two fragments counts.
	for i := 0; i < m.n; i++ {
		if m.label[i] != m.label[a] {
			continue
		}
		for j := 0; j < m.n; j++ {
			if m.label[j] == m.label[b] && m.unequal[m.key(i, j)] {
				return true
			}
		}
	}
	return false
}

func (m *mirror) recordEqual(a, b int) {
	la, lb := m.label[a], m.label[b]
	if la == lb {
		return
	}
	for i, l := range m.label {
		if l == lb {
			m.label[i] = la
		}
	}
}

func (m *mirror) recordUnequal(a, b int) { m.unequal[m.key(a, b)] = true }

// TestQuickAgainstMirror replays random consistent operation sequences on
// the graph and a naive mirror, then checks Known agrees everywhere.
func TestQuickAgainstMirror(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		// Hidden truth drives consistent answers.
		truth := make([]int, n)
		for i := range truth {
			truth[i] = rng.Intn(3)
		}
		g := New(n)
		m := newMirror(n)
		for step := 0; step < 100; step++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			if truth[a] == truth[b] {
				g.RecordEqual(a, b)
				m.recordEqual(a, b)
			} else {
				if same, _ := g.Known(a, b); same {
					return false // graph disagrees with truth
				}
				g.RecordUnequal(a, b)
				m.recordUnequal(a, b)
			}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				same, known := g.Known(i, j)
				mSame := m.label[i] == m.label[j]
				mKnown := mSame || m.knownUnequal(i, j)
				if same != mSame || known != mKnown {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestEdgeCountMatchesDistinctPairs checks Edges always equals the number
// of distinct fragment pairs known unequal.
func TestEdgeCountMatchesDistinctPairs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(16)
		truth := make([]int, n)
		for i := range truth {
			truth[i] = rng.Intn(4)
		}
		g := New(n)
		for step := 0; step < 80; step++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			if truth[a] == truth[b] {
				g.RecordEqual(a, b)
			} else {
				g.RecordUnequal(a, b)
			}
		}
		distinct := map[[2]int]bool{}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if _, known := g.Known(i, j); known && g.Find(i) != g.Find(j) {
					ri, rj := g.Find(i), g.Find(j)
					if ri > rj {
						ri, rj = rj, ri
					}
					distinct[[2]int{ri, rj}] = true
				}
			}
		}
		return g.Edges() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupsAndLabels(t *testing.T) {
	g := New(5)
	g.RecordEqual(0, 3)
	g.RecordEqual(1, 4)
	groups := g.Groups()
	if len(groups) != 3 {
		t.Fatalf("groups = %v, want 3 groups", groups)
	}
	labels := g.Labels()
	if labels[0] != labels[3] || labels[1] != labels[4] || labels[0] == labels[1] {
		t.Fatalf("labels = %v", labels)
	}
}
