package knowledge

import (
	"testing"
)

// FuzzKnowledgeOps replays arbitrary byte strings as operation sequences
// against the knowledge graph and a brute-force matrix of known
// relations, driven by a hidden truth derived from the same bytes. The
// graph must agree with the matrix on every pair after every operation
// batch, and Complete/DoneFor must match the matrix's verdicts.
func FuzzKnowledgeOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 128, 64, 32, 16, 8, 4, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		n := 2 + int(data[0])%14
		truth := make([]int, n)
		for i := range truth {
			truth[i] = int(data[(i+1)%len(data)]) % 3
		}
		g := New(n)
		// knownUnequal[a][b]: some recorded unequal pair joins the
		// current fragments of a and b.
		recorded := [][2]int{}
		sameFrag := func(a, b int) bool { return g.Find(a) == g.Find(b) }
		for step := 0; step+1 < len(data); step += 2 {
			a := int(data[step]) % n
			b := int(data[step+1]) % n
			if a == b {
				continue
			}
			if truth[a] == truth[b] {
				g.RecordEqual(a, b)
			} else {
				if same, _ := g.Known(a, b); same {
					t.Fatalf("graph believes %d≡%d against truth", a, b)
				}
				g.RecordUnequal(a, b)
				recorded = append(recorded, [2]int{a, b})
			}
			// Validate Known against the brute-force view.
			for x := 0; x < n; x++ {
				for y := x + 1; y < n; y++ {
					same, known := g.Known(x, y)
					if same != sameFrag(x, y) {
						t.Fatalf("Known(%d,%d) same=%v, fragments say %v", x, y, same, sameFrag(x, y))
					}
					wantKnown := same
					for _, rec := range recorded {
						if (sameFrag(rec[0], x) && sameFrag(rec[1], y)) ||
							(sameFrag(rec[0], y) && sameFrag(rec[1], x)) {
							wantKnown = true
						}
					}
					if known != wantKnown {
						t.Fatalf("Known(%d,%d) known=%v, want %v", x, y, known, wantKnown)
					}
				}
			}
		}
		// Edge count must equal distinct fragment pairs with a recorded
		// inequality.
		distinct := map[[2]int]bool{}
		for _, rec := range recorded {
			ra, rb := g.Find(rec[0]), g.Find(rec[1])
			if ra > rb {
				ra, rb = rb, ra
			}
			distinct[[2]int{ra, rb}] = true
		}
		if g.Edges() != len(distinct) {
			t.Fatalf("Edges = %d, want %d", g.Edges(), len(distinct))
		}
	})
}
