package knowledge

import (
	"math/rand"
	"testing"
)

// BenchmarkKnowledgeUniform measures the merge/edge workload the
// round-robin regimen generates on a balanced-k input.
func BenchmarkKnowledgeUniform(b *testing.B) {
	const n, k = 4096, 16
	rng := rand.New(rand.NewSource(1))
	truth := make([]int, n)
	for i := range truth {
		truth[i] = rng.Intn(k)
	}
	type op struct {
		a, b  int
		equal bool
	}
	ops := make([]op, 0, 4*n)
	for len(ops) < cap(ops) {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			ops = append(ops, op{a, b, truth[a] == truth[b]})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := New(n)
		for _, o := range ops {
			if o.equal {
				g.RecordEqual(o.a, o.b)
			} else if same, known := g.Known(o.a, o.b); !same && !known {
				g.RecordUnequal(o.a, o.b)
			}
		}
	}
}

// BenchmarkKnownLookup measures the hot-path knowledge query.
func BenchmarkKnownLookup(b *testing.B) {
	const n = 1024
	g := New(n)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2*n; i++ {
		a, c := rng.Intn(n), rng.Intn(n)
		if a == c {
			continue
		}
		if same, known := g.Known(a, c); !same && !known {
			if rng.Intn(3) == 0 {
				g.RecordEqual(a, c)
			} else {
				g.RecordUnequal(a, c)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Known(i%n, (i*7+1)%n)
	}
}
