package dist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// zetaHead is the size of the cached inverse-CDF head table: the first
// zetaHead classes are sampled with one uniform draw and a binary
// search. For s ≥ 2 the head covers >99.9% of the mass; the rest falls
// through to an O(1)-expected rejection sampler for the tail.
const zetaHead = 512

// Zeta is the zeta (Zipf) distribution with exponent S: class i has
// probability (i+1)^−S / ζ(S), already ordered most-to-least likely.
// It is a concrete value type (not a pointer) so callers can recover the
// exponent with a type assertion d.(dist.Zeta) — the harness does this
// to decide which zeta series get a fit line.
type Zeta struct {
	S float64
	// Cached at construction: ζ(S), the head inverse-CDF table, and the
	// tail-sampler constants.
	zetaS     float64
	cum       []float64 // cum[i] = P[class ≤ i] for i < zetaHead
	inv       float64   // 1/(S−1): Pareto inversion exponent
	oneMinusS float64
	lo        float64 // zetaHead + 0.5: left edge of the tail envelope
}

// zeta parameter clamp bounds: the distribution only exists for s > 1,
// and very large s is numerically indistinguishable from "always class
// 0".
const (
	minZetaS = 1 + 1e-9
	maxZetaS = 500
)

// NewZeta returns the zeta (Zipf) distribution with exponent s > 1.
// Out-of-range parameters are clamped rather than rejected: s ≤ 1
// becomes 1+1e-9 (an extremely heavy tail whose draws mostly hit the
// maxClass clamp), s > 500 becomes 500, and NaN falls back to s = 2.
func NewZeta(s float64) Distribution {
	if isBadParam(s) {
		s = 2
	}
	if s < minZetaS {
		s = minZetaS
	}
	if s > maxZetaS {
		s = maxZetaS
	}
	z := Zeta{
		S:         s,
		zetaS:     riemannZeta(s),
		inv:       1 / (s - 1),
		oneMinusS: 1 - s,
		lo:        zetaHead + 0.5,
	}
	z.cum = make([]float64, zetaHead)
	acc := 0.0
	for i := 0; i < zetaHead; i++ {
		acc += math.Pow(float64(i+1), -s) / z.zetaS
		z.cum[i] = acc
	}
	return z
}

// Name returns e.g. "zeta(s=2.5)".
func (z Zeta) Name() string { return fmt.Sprintf("zeta(s=%g)", z.S) }

// Mean is the expected class index Σ i·(i+1)^−s/ζ(s) =
// (ζ(s−1) − ζ(s))/ζ(s) for s > 2, and +Inf for s ≤ 2 — the divergence
// that separates Theorem 9's linear regime from the paper's open
// problem.
func (z Zeta) Mean() float64 {
	if z.S <= 2 {
		return math.Inf(1)
	}
	return (riemannZeta(z.S-1) - z.zetaS) / z.zetaS
}

// PMF returns (i+1)^−s / ζ(s) for i ≥ 0.
func (z Zeta) PMF(i int) float64 {
	if i < 0 {
		return 0
	}
	return math.Pow(float64(i+1), -z.S) / z.zetaS
}

// Sample draws a class index: one uniform plus a binary search when the
// draw lands in the cached head, otherwise rejection sampling on the
// exact tail with a discretized Pareto envelope (acceptance ≥
// x^−s / ∫_{x−½}^{x+½} y^−s dy, which midpoint convexity keeps close
// to 1), O(1) expected time for every s > 1.
func (z Zeta) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	if u < z.cum[zetaHead-1] {
		return sort.SearchFloat64s(z.cum, u)
	}
	for {
		v := 1 - rng.Float64() // (0, 1]
		y := z.lo * math.Pow(v, -z.inv)
		if y >= float64(maxClass) {
			// Beyond the index horizon (only reachable for s close
			// to 1). A shared sentinel here would merge draws that
			// are almost surely distinct singleton classes — visibly
			// biasing the harness's s < 2 measurements, where
			// singletons are the expensive case — so smear them over
			// the top half of the index range instead: each keeps a
			// unique identity with overwhelming probability, the only
			// property consumers can observe this deep in the tail.
			return maxClass/2 + int(rng.Int63n(int64(maxClass/2)))
		}
		x := math.Floor(y + 0.5) // integer ≥ zetaHead+1 (1-based class)
		bin := (math.Pow(x-0.5, z.oneMinusS) - math.Pow(x+0.5, z.oneMinusS)) / (z.S - 1)
		if rng.Float64()*bin <= math.Pow(x, -z.S) {
			return int(x) - 1
		}
	}
}

var _ Distribution = Zeta{}

// riemannZeta evaluates ζ(s) for s > 1 to near machine precision with
// a 1000-term partial sum plus Euler–Maclaurin tail corrections.
func riemannZeta(s float64) float64 {
	const cut = 1000
	sum := 0.0
	for i := 1; i < cut; i++ {
		sum += math.Pow(float64(i), -s)
	}
	n := float64(cut)
	sum += math.Pow(n, 1-s)/(s-1) + 0.5*math.Pow(n, -s)
	sum += s * math.Pow(n, -s-1) / 12
	sum -= s * (s + 1) * (s + 2) * math.Pow(n, -s-3) / 720
	sum += s * (s + 1) * (s + 2) * (s + 3) * (s + 4) * math.Pow(n, -s-5) / 30240
	return sum
}
