package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Uniform is the uniform distribution on k classes: PMF(i) = 1/k for
// 0 ≤ i < k. All classes are equally likely, so the most-to-least-likely
// ordering is the natural one.
type Uniform struct {
	K int
}

// NewUniform returns the uniform distribution on k classes. k < 1 is
// clamped to 1 (the degenerate single-class distribution) rather than
// erroring, so constructors stay composable in table literals.
func NewUniform(k int) Distribution {
	if k < 1 {
		k = 1
	}
	return Uniform{K: k}
}

// Name returns e.g. "uniform(k=10)".
func (u Uniform) Name() string { return fmt.Sprintf("uniform(k=%d)", u.K) }

// Mean is the expected class index (k−1)/2.
func (u Uniform) Mean() float64 { return float64(u.K-1) / 2 }

// PMF returns 1/k on the support, 0 elsewhere.
func (u Uniform) PMF(i int) float64 {
	if i < 0 || i >= u.K {
		return 0
	}
	return 1 / float64(u.K)
}

// Sample draws a class index uniformly from [0, k).
func (u Uniform) Sample(rng *rand.Rand) int { return rng.Intn(u.K) }

var _ Distribution = Uniform{}

// maxClass bounds every sampled class index so labels stay inside the
// platform's int arithmetic. In practice only zeta with s near 1 can
// reach it; its sampler smears such far-tail draws over distinct
// indices below the bound (see Zeta.Sample), because class identity —
// not magnitude — is what the experiments observe. clampClass's
// sentinel return remains as a last-resort guard for degenerate
// parameter corners (e.g. geometric with p within 1e-12 of 1 on a
// 32-bit platform).
const maxClass = math.MaxInt / 2

func clampClass(x float64) int {
	if x != x || x < 0 { // NaN or negative from a degenerate draw
		return 0
	}
	if x >= float64(maxClass) {
		return maxClass
	}
	return int(x)
}

// isBadParam reports a parameter that cannot drive a sampler (NaN).
func isBadParam(p float64) bool { return math.IsNaN(p) }
