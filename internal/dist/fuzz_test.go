package dist

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzConstructors drives every constructor with arbitrary — including
// degenerate — parameters and checks the clamp-not-error contract: the
// returned distribution must always be well-formed (valid name,
// non-negative samples, pmf in [0,1], mean non-negative or +Inf, and a
// non-increasing pmf head).
func FuzzConstructors(f *testing.F) {
	f.Add(10, 0.5, 5.0, 2.5)
	f.Add(0, 0.0, 0.0, 1.0)
	f.Add(-7, 1.0, -3.0, 0.5)
	f.Add(1, -0.25, math.Inf(1), math.Inf(1))
	f.Add(1<<30, math.NaN(), math.NaN(), math.NaN())
	f.Add(3, 1e300, 1e300, -1e300)
	f.Fuzz(func(t *testing.T, k int, p, lambda, s float64) {
		rng := rand.New(rand.NewSource(1))
		for _, d := range []Distribution{
			NewUniform(k), NewGeometric(p), NewPoisson(lambda), NewZeta(s),
		} {
			if d.Name() == "" {
				t.Fatalf("empty name for k=%d p=%v λ=%v s=%v", k, p, lambda, s)
			}
			if m := d.Mean(); math.IsNaN(m) || m < 0 {
				t.Fatalf("%s: Mean() = %v", d.Name(), m)
			}
			prev := math.Inf(1)
			for i := -1; i < 20; i++ {
				q := d.PMF(i)
				if math.IsNaN(q) || q < 0 || q > 1 {
					t.Fatalf("%s: PMF(%d) = %v", d.Name(), i, q)
				}
				if i >= 0 {
					if q > prev+1e-15 {
						t.Fatalf("%s: pmf increases at %d (%v > %v)", d.Name(), i, q, prev)
					}
					prev = q
				}
			}
			for i := 0; i < 20; i++ {
				if l := d.Sample(rng); l < 0 {
					t.Fatalf("%s: negative sample %d", d.Name(), l)
				}
			}
		}
	})
}
