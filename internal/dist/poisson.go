package dist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Poisson is the Poisson distribution with rate λ, reindexed so that
// class 0 is the most likely Poisson outcome (the paper orders classes
// most-to-least likely; for Poisson that is ⌊λ⌋ first, not 0). The
// reindexed PMF is precomputed into a descending table and sampled with
// a Walker/Vose alias table in O(1) per draw.
type Poisson struct {
	Lambda float64
	probs  []float64 // descending reindexed pmf, renormalized
	mean   float64   // Σ i·probs[i]
	// alias table: draw column c uniformly, accept c with probability
	// accept[c], otherwise return alias[c].
	accept []float64
	alias  []int
}

// poisson parameter clamp bounds: λ = 0 degenerates to a single class;
// the upper clamp keeps the pmf window (≈ 90·√λ entries) at a sane size.
const maxPoissonLambda = 1e6

// NewPoisson returns the Poisson distribution with rate lambda,
// classes reindexed most-to-least likely. Out-of-range parameters are
// clamped rather than rejected: λ < 0 becomes 0 (all mass on one
// class), λ > 1e6 becomes 1e6, and NaN falls back to λ = 1.
func NewPoisson(lambda float64) Distribution {
	if isBadParam(lambda) {
		lambda = 1
	}
	if lambda < 0 {
		lambda = 0
	}
	if lambda > maxPoissonLambda {
		lambda = maxPoissonLambda
	}
	p := Poisson{Lambda: lambda}
	p.probs, p.mean = poissonRankedPMF(lambda)
	p.accept, p.alias = buildAlias(p.probs)
	return p
}

// poissonRankedPMF evaluates the Poisson pmf over the window that holds
// all but ~1e-15 of the mass, sorts it descending (ties broken by the
// smaller original outcome, for determinism), renormalizes, and returns
// the ranked pmf with its mean class index.
func poissonRankedPMF(lambda float64) (probs []float64, mean float64) {
	if lambda == 0 {
		return []float64{1}, 0
	}
	spread := 40*math.Sqrt(lambda) + 25
	lo := int(math.Max(0, math.Floor(lambda-spread)))
	hi := int(math.Ceil(lambda + spread))
	logLambda := math.Log(lambda)
	probs = make([]float64, 0, hi-lo+1)
	sum := 0.0
	for i := lo; i <= hi; i++ {
		lg, _ := math.Lgamma(float64(i) + 1)
		p := math.Exp(float64(i)*logLambda - lambda - lg)
		probs = append(probs, p)
		sum += p
	}
	sort.SliceStable(probs, func(a, b int) bool { return probs[a] > probs[b] })
	for i := range probs {
		probs[i] /= sum
		mean += float64(i) * probs[i]
	}
	return probs, mean
}

// buildAlias constructs a Walker/Vose alias table for the given pmf.
func buildAlias(probs []float64) (accept []float64, alias []int) {
	k := len(probs)
	accept = make([]float64, k)
	alias = make([]int, k)
	scaled := make([]float64, k)
	var small, large []int
	for i, p := range probs {
		scaled[i] = p * float64(k)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		accept[s] = scaled[s]
		alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Leftovers are 1 up to float rounding.
	for _, i := range large {
		accept[i] = 1
		alias[i] = i
	}
	for _, i := range small {
		accept[i] = 1
		alias[i] = i
	}
	return accept, alias
}

// Name returns e.g. "poisson(λ=5)".
func (p Poisson) Name() string { return fmt.Sprintf("poisson(λ=%g)", p.Lambda) }

// Mean is the expected class index under the most-to-least-likely
// reindexing (a converged series, not λ — λ is the mean of the raw
// Poisson outcome, not of its probability rank).
func (p Poisson) Mean() float64 { return p.mean }

// PMF returns the probability of rank i in the descending reindexing.
func (p Poisson) PMF(i int) float64 {
	if i < 0 || i >= len(p.probs) {
		return 0
	}
	return p.probs[i]
}

// Sample draws a class rank via the alias table: one Intn plus one
// Float64 per draw.
func (p Poisson) Sample(rng *rand.Rand) int {
	c := rng.Intn(len(p.accept))
	if rng.Float64() < p.accept[c] {
		return c
	}
	return p.alias[c]
}

var _ Distribution = Poisson{}
