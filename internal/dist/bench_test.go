package dist

import (
	"math/rand"
	"testing"
	"unsafe"
)

// benchDists covers each sampler implementation: direct Intn (uniform),
// closed-form inverse CDF (geometric), alias table (Poisson), head
// table + rejection tail (zeta, both a tail-heavy and a head-heavy
// exponent).
func benchDists() []Distribution {
	return []Distribution{
		NewUniform(100),
		NewGeometric(0.1),
		NewPoisson(25),
		NewZeta(1.5),
		NewZeta(2.5),
	}
}

// BenchmarkSample measures single-draw throughput per sampler.
func BenchmarkSample(b *testing.B) {
	for _, d := range benchDists() {
		b.Run(d.Name(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			acc := 0
			for i := 0; i < b.N; i++ {
				acc += d.Sample(rng)
			}
			sink = acc
		})
	}
}

// BenchmarkLabels compares the serial and goroutine-parallel fill paths
// at n = 2²⁰ (the large-n sweep regime of the Figure 5 harness). On a
// multi-core machine the parallel path should win clearly; both paths
// produce identical output for a given seed (see
// TestLabelsParallelSerialAgree).
func BenchmarkLabels(b *testing.B) {
	const n = 1 << 20
	out := make([]int, n)
	for _, d := range benchDists() {
		for _, mode := range []struct {
			name     string
			parallel bool
		}{{"serial", false}, {"parallel", true}} {
			b.Run(d.Name()+"/"+mode.name, func(b *testing.B) {
				rng := rand.New(rand.NewSource(1))
				b.SetBytes(n * int64(unsafe.Sizeof(int(0))))
				for i := 0; i < b.N; i++ {
					fillLabels(d, out, rng, mode.parallel)
				}
			})
		}
	}
}

var sink int
