package dist

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func allDists() []Distribution {
	return []Distribution{
		NewUniform(10),
		NewGeometric(0.3),
		NewPoisson(5),
		NewZeta(1.5),
		NewZeta(2.5),
	}
}

// TestPMFSumsToOne: the pmf over a generous prefix of the support must
// account for all the mass, up to the analytic tail of the heavy-tailed
// families.
func TestPMFSumsToOne(t *testing.T) {
	for _, tc := range []struct {
		d     Distribution
		terms int
		tol   float64
	}{
		{NewUniform(10), 10, 1e-12},
		{NewGeometric(0.3), 200, 1e-12},
		{NewPoisson(5), 200, 1e-9},
		{NewZeta(2.5), 1 << 20, 1e-4},
	} {
		sum := 0.0
		for i := 0; i < tc.terms; i++ {
			sum += tc.d.PMF(i)
		}
		if math.Abs(sum-1) > tc.tol {
			t.Errorf("%s: pmf prefix sums to %v, want 1±%v", tc.d.Name(), sum, tc.tol)
		}
	}
}

// TestPMFOrderedMostToLeastLikely: class 0 is the most likely class and
// the pmf never increases with the index (the paper's D_N convention).
// Poisson is the family where this is earned: the raw outcome pmf peaks
// at ⌊λ⌋, so the constructor must reindex by probability rank.
func TestPMFOrderedMostToLeastLikely(t *testing.T) {
	for _, d := range allDists() {
		prev := d.PMF(0)
		if prev <= 0 {
			t.Errorf("%s: PMF(0) = %v, want > 0", d.Name(), prev)
		}
		for i := 1; i < 300; i++ {
			p := d.PMF(i)
			if p > prev+1e-15 {
				t.Errorf("%s: PMF(%d)=%v > PMF(%d)=%v — not most-to-least likely",
					d.Name(), i, p, i-1, prev)
				break
			}
			prev = p
		}
	}
}

// TestMeanMatchesEmpirical: the analytic Mean() must agree with the
// empirical mean of a large sample for every finite-mean family.
// (zeta needs s > 3 here so the sample mean has finite variance.)
func TestMeanMatchesEmpirical(t *testing.T) {
	const n = 200_000
	for _, tc := range []struct {
		d   Distribution
		tol float64
	}{
		{NewUniform(10), 0.05},
		{NewGeometric(0.3), 0.05},
		{NewGeometric(0.9), 0.2},
		{NewPoisson(1), 0.05},
		{NewPoisson(25), 0.1},
		{NewZeta(4), 0.02},
	} {
		rng := rand.New(rand.NewSource(42))
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(tc.d.Sample(rng))
		}
		emp := sum / n
		if want := tc.d.Mean(); math.Abs(emp-want) > tc.tol {
			t.Errorf("%s: empirical mean %v vs Mean() %v (tol %v)",
				tc.d.Name(), emp, want, tc.tol)
		}
	}
}

// TestEmpiricalPMF: sampled frequencies of the head classes must track
// the pmf — this exercises the alias table (Poisson) and both the head
// table and the rejection tail (zeta).
func TestEmpiricalPMF(t *testing.T) {
	const n = 400_000
	for _, d := range allDists() {
		rng := rand.New(rand.NewSource(7))
		counts := map[int]int{}
		for i := 0; i < n; i++ {
			counts[d.Sample(rng)]++
		}
		for i := 0; i < 5; i++ {
			want := d.PMF(i)
			got := float64(counts[i]) / n
			if math.Abs(got-want) > 0.01 {
				t.Errorf("%s: class %d frequency %v vs pmf %v", d.Name(), i, got, want)
			}
		}
	}
}

// TestZetaTailMass: draws beyond the cached head table must appear with
// roughly the analytic tail probability — the rejection tail is not
// dead code and is not over-sampled.
func TestZetaTailMass(t *testing.T) {
	const n = 400_000
	s := 1.5
	d := NewZeta(s)
	rng := rand.New(rand.NewSource(11))
	tail := 0
	for i := 0; i < n; i++ {
		if d.Sample(rng) >= zetaHead {
			tail++
		}
	}
	// P[class ≥ zetaHead] ≈ ∫_{zetaHead}^∞ x^−s dx / ζ(s).
	want := math.Pow(zetaHead, 1-s) / (s - 1) / riemannZeta(s)
	got := float64(tail) / n
	if got < want/2 || got > want*2 {
		t.Errorf("zeta tail mass %v, want ≈ %v", got, want)
	}
}

// TestZetaFarTailDistinct: draws beyond the index horizon must keep
// distinct class identities (each is almost surely its own singleton
// class). A shared sentinel label here would merge them into one giant
// class and bias the harness's s < 2 growth measurements, where
// singletons are the expensive case.
func TestZetaFarTailDistinct(t *testing.T) {
	d := NewZeta(1.05) // ≈12% of draws land beyond maxClass
	rng := rand.New(rand.NewSource(1))
	seen := map[int]int{}
	smeared := 0
	for i := 0; i < 200_000; i++ {
		if l := d.Sample(rng); l >= maxClass/2 {
			smeared++
			seen[l]++
		}
	}
	if smeared < 1000 {
		t.Fatalf("only %d far-tail draws; smear path not exercised", smeared)
	}
	dups := 0
	for _, c := range seen {
		dups += c - 1
	}
	if dups > smeared/100 {
		t.Errorf("far-tail labels collide: %d duplicates among %d draws", dups, smeared)
	}
}

// TestMeanExactValues pins the analytic means the harness depends on:
// the dominance report's TheoryMeanBound uses uniform's (k−1)/2 exactly,
// and divergence for zeta with s ≤ 2 must surface as +Inf, not a big
// float.
func TestMeanExactValues(t *testing.T) {
	if m := NewUniform(10).Mean(); m != 4.5 {
		t.Errorf("uniform(10) mean %v, want exactly 4.5", m)
	}
	if m := NewGeometric(0.5).Mean(); math.Abs(m-1) > 1e-12 {
		t.Errorf("geometric(0.5) mean %v, want 1", m)
	}
	for _, s := range []float64{1.1, 1.5, 2} {
		if m := NewZeta(s).Mean(); !math.IsInf(m, 1) {
			t.Errorf("zeta(%v) mean %v, want +Inf", s, m)
		}
	}
	// ζ(2.5) regime: E[D] = (ζ(1.5) − ζ(2.5))/ζ(2.5).
	want := (riemannZeta(1.5) - riemannZeta(2.5)) / riemannZeta(2.5)
	if m := NewZeta(2.5).Mean(); math.Abs(m-want) > 1e-12 || math.IsInf(m, 1) {
		t.Errorf("zeta(2.5) mean %v, want %v", m, want)
	}
}

// TestRiemannZeta checks the series accelerator against closed forms.
func TestRiemannZeta(t *testing.T) {
	for _, tc := range []struct{ s, want float64 }{
		{2, math.Pi * math.Pi / 6},
		{4, math.Pow(math.Pi, 4) / 90},
		{3, 1.2020569031595942854},
	} {
		if got := riemannZeta(tc.s); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("ζ(%v) = %v, want %v", tc.s, got, tc.want)
		}
	}
}

// TestLabelsDeterministic: identical seeds give identical label slices,
// across the chunking threshold.
func TestLabelsDeterministic(t *testing.T) {
	for _, n := range []int{0, 100, labelChunk, labelChunk + 1, 3*labelChunk + 17} {
		for _, d := range allDists() {
			a := Labels(d, n, rand.New(rand.NewSource(5)))
			b := Labels(d, n, rand.New(rand.NewSource(5)))
			if len(a) != n || len(b) != n {
				t.Fatalf("%s n=%d: lengths %d, %d", d.Name(), n, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s n=%d: draw %d differs: %d vs %d", d.Name(), n, i, a[i], b[i])
				}
			}
		}
	}
}

// TestLabelsParallelSerialAgree: the goroutine fan-out must be purely a
// throughput optimization — for a fixed seed it yields byte-identical
// labels to the serial chunked fill.
func TestLabelsParallelSerialAgree(t *testing.T) {
	n := parallelMinN + 12345
	for _, d := range allDists() {
		serial := make([]int, n)
		parallel := make([]int, n)
		fillLabels(d, serial, rand.New(rand.NewSource(9)), false)
		fillLabels(d, parallel, rand.New(rand.NewSource(9)), true)
		for i := range serial {
			if serial[i] != parallel[i] {
				t.Fatalf("%s: draw %d differs: serial %d, parallel %d",
					d.Name(), i, serial[i], parallel[i])
			}
		}
	}
}

// TestLabelsNonNegative: every label is a valid 0-based class index.
func TestLabelsNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, d := range allDists() {
		for _, l := range Labels(d, 10_000, rng) {
			if l < 0 {
				t.Fatalf("%s: negative label %d", d.Name(), l)
			}
		}
	}
}

func TestCapAt(t *testing.T) {
	for _, tc := range []struct{ l, n, want int }{
		{0, 100, 0}, {99, 100, 99}, {100, 100, 100}, {101, 100, 100},
		{maxClass, 7, 7},
	} {
		if got := CapAt(tc.l, tc.n); got != tc.want {
			t.Errorf("CapAt(%d, %d) = %d, want %d", tc.l, tc.n, got, tc.want)
		}
	}
}

func TestNames(t *testing.T) {
	for _, tc := range []struct {
		d    Distribution
		want string
	}{
		{NewUniform(10), "uniform(k=10)"},
		{NewGeometric(0.5), "geometric(p=0.5)"},
		{NewPoisson(5), "poisson(λ=5)"},
		{NewZeta(2.5), "zeta(s=2.5)"},
	} {
		if got := tc.d.Name(); got != tc.want {
			t.Errorf("Name() = %q, want %q", got, tc.want)
		}
	}
}

// TestZetaConcreteType: the harness type-asserts d.(dist.Zeta) to read
// the exponent back; the constructor must box a Zeta value.
func TestZetaConcreteType(t *testing.T) {
	z, ok := NewZeta(2.5).(Zeta)
	if !ok {
		t.Fatal("NewZeta does not box a concrete Zeta value")
	}
	if z.S != 2.5 {
		t.Fatalf("Zeta.S = %v, want 2.5", z.S)
	}
}

// TestConstructorClamps documents the clamp-not-error policy for
// degenerate parameters: every constructor returns a usable
// distribution whose samples and pmf stay well-formed.
func TestConstructorClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []Distribution{
		NewUniform(0), NewUniform(-3),
		NewGeometric(0), NewGeometric(1), NewGeometric(-2), NewGeometric(math.NaN()),
		NewPoisson(0), NewPoisson(-1), NewPoisson(math.NaN()),
		NewZeta(1), NewZeta(0.5), NewZeta(-4), NewZeta(math.NaN()),
	} {
		if d.Name() == "" || strings.Contains(d.Name(), "NaN") {
			t.Errorf("clamped distribution has bad name %q", d.Name())
		}
		if m := d.Mean(); math.IsNaN(m) || m < 0 {
			t.Errorf("%s: Mean() = %v after clamping", d.Name(), m)
		}
		for i := 0; i < 50; i++ {
			if l := d.Sample(rng); l < 0 {
				t.Fatalf("%s: negative sample %d", d.Name(), l)
			}
		}
		if p := d.PMF(0); p < 0 || p > 1 || math.IsNaN(p) {
			t.Errorf("%s: PMF(0) = %v", d.Name(), p)
		}
	}
	// The degenerate single-class cases concentrate all mass on class 0.
	for _, d := range []Distribution{NewUniform(0), NewPoisson(0)} {
		if p := d.PMF(0); math.Abs(p-1) > 1e-12 {
			t.Errorf("%s: PMF(0) = %v, want 1", d.Name(), p)
		}
	}
}

// TestPoissonReindexedMean: the reported mean is the mean probability
// rank, which for λ ≥ 1 is strictly below λ (ranks hug 0 while raw
// outcomes hug λ).
func TestPoissonReindexedMean(t *testing.T) {
	for _, lambda := range []float64{1, 5, 25} {
		m := NewPoisson(lambda).Mean()
		if m <= 0 || m >= lambda+1 {
			t.Errorf("poisson(%v): rank mean %v out of range", lambda, m)
		}
	}
}
