package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Geometric is the geometric distribution over class indices:
// PMF(i) = pⁱ(1−p) for i ≥ 0, which is decreasing in i, so the natural
// indexing is already most-to-least likely.
type Geometric struct {
	P float64
	// invLogP caches 1/ln(p) for the closed-form inverse CDF
	// X = ⌊ln(U)/ln(p)⌋ (P[X ≥ i] = pⁱ), one log per draw.
	invLogP float64
}

// geometric parameter clamp bounds: p must lie strictly inside (0, 1)
// for the pmf pⁱ(1−p) to be a distribution with i ≥ 0.
const (
	minGeomP = 1e-12
	maxGeomP = 1 - 1e-12
)

// NewGeometric returns the geometric distribution with class i having
// probability pⁱ(1−p). Out-of-range parameters are clamped rather than
// rejected: p ≤ 0 becomes 1e-12 (essentially all mass on class 0),
// p ≥ 1 becomes 1−1e-12, and NaN falls back to p = 1/2.
func NewGeometric(p float64) Distribution {
	if isBadParam(p) {
		p = 0.5
	}
	if p < minGeomP {
		p = minGeomP
	}
	if p > maxGeomP {
		p = maxGeomP
	}
	return Geometric{P: p, invLogP: 1 / math.Log(p)}
}

// Name returns e.g. "geometric(p=0.5)".
func (g Geometric) Name() string { return fmt.Sprintf("geometric(p=%g)", g.P) }

// Mean is the expected class index p/(1−p).
func (g Geometric) Mean() float64 { return g.P / (1 - g.P) }

// PMF returns pⁱ(1−p) for i ≥ 0.
func (g Geometric) PMF(i int) float64 {
	if i < 0 {
		return 0
	}
	return math.Pow(g.P, float64(i)) * (1 - g.P)
}

// Sample draws ⌊ln(U)/ln(p)⌋ with U uniform on (0, 1] — the closed-form
// inverse of the tail CDF P[X ≥ i] = pⁱ.
func (g Geometric) Sample(rng *rand.Rand) int {
	u := 1 - rng.Float64() // (0, 1]: never take log of zero
	return clampClass(math.Floor(math.Log(u) * g.invLogP))
}

var _ Distribution = Geometric{}
