// Package dist implements the class-probability distributions of the
// paper's Section 4 ("Distribution-Based Analysis") and the samplers the
// experiment harness draws its inputs from.
//
// Section 4 analyzes the round-robin regimen of Jayapaul et al. when each
// element's equivalence class is drawn i.i.d. from a distribution D over
// class indices ordered most-to-least likely. Writing D_N(n) for a draw
// capped at n (CapAt), Theorem 7 dominates the comparison count X by
// 2·Σᵢ min(Yᵢ, n), which Theorems 8 and 9 convert into the expected
// bound E[X] ≤ 2n·E[D_N(n)]. The four rows of the paper's Section 4
// analysis map onto this package as follows:
//
//   - Uniform on k classes (Theorem 8: E[X] ≤ (k−1)·n; linear) — NewUniform.
//   - Geometric, class i with probability pⁱ(1−p) (finite mean p/(1−p);
//     linear expected comparisons) — NewGeometric.
//   - Poisson with rate λ, reindexed most-to-least likely (finite mean;
//     linear expected comparisons) — NewPoisson.
//   - Zeta/Zipf with exponent s, class i ∝ (i+1)^−s (Theorem 9: linear
//     for s > 2; for s ≤ 2 the mean diverges and the regimen's behavior
//     is the paper's open problem) — NewZeta.
//
// Class indices are 0-based: class 0 is the most likely class, and
// Mean() is the exact expected class index E[D] under that ordering
// (+Inf when the series diverges). Samplers are built for throughput —
// closed-form inverse-CDF for geometric, an alias table for Poisson, a
// cached inverse-CDF head table with an O(1) rejection tail for zeta —
// and Labels fills large draws with one goroutine per chunk.
package dist

import (
	"math/rand"
	"runtime"
	"sync"
)

// Distribution is a probability distribution over class indices
// 0, 1, 2, ... ordered most-to-least likely (the paper's convention for
// D_N). Implementations are immutable after construction and safe for
// concurrent use; Sample must use only the supplied rng for randomness so
// that draws are reproducible from a seed.
type Distribution interface {
	// Name identifies the distribution and its parameter, e.g.
	// "uniform(k=10)" or "zeta(s=2.5)".
	Name() string
	// Mean is the exact expected class index E[D]: analytic where a
	// closed form exists, a converged series otherwise, and +Inf when
	// the mean diverges (zeta with s ≤ 2).
	Mean() float64
	// PMF returns the probability of class index i; 0 for i < 0 and for
	// indices beyond the support.
	PMF(i int) float64
	// Sample draws one class index using rng.
	Sample(rng *rand.Rand) int
}

// CapAt caps a class label at n: min(l, n), the paper's V̂ = min(D, n)
// used by the Theorem 7 dominance bound.
func CapAt(l, n int) int {
	if l > n {
		return n
	}
	return l
}

// labelChunk is the number of labels drawn from one derived sub-seed.
// Labels splits any draw larger than this into chunks whose seeds come
// from the caller's rng, so serial and parallel fills produce identical
// output for a given seed.
const labelChunk = 1 << 15

// parallelMinN is the draw size at which Labels switches to one
// goroutine per chunk. Below it the fan-out overhead outweighs the
// sampling work.
const parallelMinN = 1 << 17

// Labels draws n independent class labels from d. The result is
// deterministic for a fixed rng seed: large draws are filled chunk by
// chunk from sub-seeds derived from rng, in parallel when n is large
// enough for the fan-out to pay for itself.
func Labels(d Distribution, n int, rng *rand.Rand) []int {
	if n <= 0 {
		return []int{}
	}
	out := make([]int, n)
	fillLabels(d, out, rng, n >= parallelMinN && runtime.GOMAXPROCS(0) > 1)
	return out
}

// fillLabels populates out, chunking exactly as Labels documents. The
// parallel flag selects goroutine fan-out; it never changes the output.
func fillLabels(d Distribution, out []int, rng *rand.Rand, parallel bool) {
	n := len(out)
	if n <= labelChunk {
		sampleInto(d, out, rng)
		return
	}
	numChunks := (n + labelChunk - 1) / labelChunk
	seeds := make([]int64, numChunks)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	chunk := func(c int) []int {
		lo := c * labelChunk
		hi := lo + labelChunk
		if hi > n {
			hi = n
		}
		return out[lo:hi]
	}
	if !parallel {
		for c := 0; c < numChunks; c++ {
			sampleInto(d, chunk(c), rand.New(rand.NewSource(seeds[c])))
		}
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > numChunks {
		workers = numChunks
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range next {
				sampleInto(d, chunk(c), rand.New(rand.NewSource(seeds[c])))
			}
		}()
	}
	for c := 0; c < numChunks; c++ {
		next <- c
	}
	close(next)
	wg.Wait()
}

func sampleInto(d Distribution, out []int, rng *rand.Rand) {
	for i := range out {
		out[i] = d.Sample(rng)
	}
}
