// Package sched builds comparison schedules for the exclusive-read (ER)
// variant of the equivalence class sorting problem.
//
// In ER mode each element may participate in at most one comparison per
// parallel round, so a set of desired tests must be decomposed into rounds
// of pairwise-disjoint pairs. The two schedules needed by the paper's
// algorithms are:
//
//   - all of A×B for two disjoint element sets A and B (merging two
//     answers: one representative per class on each side), done by rotating
//     B against A — max(|A|,|B|) rounds, a Latin-square decomposition;
//   - all pairs within one element set (merging many answers at once, or
//     cross-checking component representatives), done by the circle method
//     used for round-robin tournaments — |A| rounds (|A|−1 if even).
package sched

import "ecsort/internal/model"

// Rotation schedules every comparison in a × b, where a and b are disjoint
// sets of distinct elements, into rounds of disjoint pairs. It returns
// max(len(a), len(b)) rounds (nil if either side is empty). Each round
// uses every element of the smaller side exactly once and each element of
// the larger side at most once.
func Rotation(a, b []int) [][]model.Pair {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	rounds := make([][]model.Pair, len(large))
	for r := range rounds {
		round := make([]model.Pair, len(small))
		for i, e := range small {
			round[i] = model.Pair{A: e, B: large[(i+r)%len(large)]}
		}
		rounds[r] = round
	}
	return rounds
}

// AllPairs schedules every unordered pair within elems into rounds of
// disjoint pairs using the circle method: fix the last element and rotate
// the rest. For m elements it produces m−1 rounds when m is even and m
// rounds when m is odd, each of ⌊m/2⌋ disjoint pairs.
func AllPairs(elems []int) [][]model.Pair {
	m := len(elems)
	if m < 2 {
		return nil
	}
	// Work over a ring of positions; position m-1 (or a bye when m is odd)
	// stays fixed while the others rotate.
	ring := make([]int, 0, m+1)
	ring = append(ring, elems...)
	bye := -1
	if m%2 == 1 {
		ring = append(ring, bye)
	}
	sz := len(ring)
	roundsN := sz - 1
	rounds := make([][]model.Pair, 0, roundsN)
	// perm holds the rotating positions ring[0..sz-2]; ring[sz-1] is fixed.
	perm := make([]int, sz-1)
	for i := range perm {
		perm[i] = ring[i]
	}
	fixed := ring[sz-1]
	for r := 0; r < roundsN; r++ {
		round := make([]model.Pair, 0, sz/2)
		if x := perm[0]; x != bye && fixed != bye {
			round = append(round, orient(x, fixed))
		}
		for i := 1; i < (sz-1+1)/2; i++ {
			x, y := perm[i], perm[sz-1-i]
			if x != bye && y != bye {
				round = append(round, orient(x, y))
			}
		}
		if len(round) > 0 {
			rounds = append(rounds, round)
		}
		// Rotate: move last to front (classic circle-method step).
		last := perm[len(perm)-1]
		copy(perm[1:], perm[:len(perm)-1])
		perm[0] = last
	}
	return rounds
}

// orient returns the pair with the smaller element first, purely for
// deterministic output.
func orient(x, y int) model.Pair {
	if x > y {
		x, y = y, x
	}
	return model.Pair{A: x, B: y}
}

// Sweep schedules comparisons of every element in targets against the
// members of team, assigning in each round up to len(team) distinct
// targets, one per team member (all pairs disjoint). It is the schedule of
// step 3 of the constant-round algorithm (Theorem 4): a strongly connected
// component "sweeps" the rest of the input |C| elements at a time. The
// sets team and targets must be disjoint.
//
// Each target is compared against exactly one team member; which one is
// immaterial because all members of team are known equivalent.
func Sweep(team, targets []int) [][]model.Pair {
	if len(team) == 0 || len(targets) == 0 {
		return nil
	}
	rounds := make([][]model.Pair, 0, (len(targets)+len(team)-1)/len(team))
	for start := 0; start < len(targets); start += len(team) {
		end := min(start+len(team), len(targets))
		round := make([]model.Pair, 0, end-start)
		for i := start; i < end; i++ {
			round = append(round, model.Pair{A: team[i-start], B: targets[i]})
		}
		rounds = append(rounds, round)
	}
	return rounds
}
