package sched

import (
	"math/rand"
	"testing"

	"ecsort/internal/model"
)

func BenchmarkRotation(b *testing.B) {
	a := make([]int, 64)
	c := make([]int, 100)
	for i := range a {
		a[i] = i
	}
	for i := range c {
		c[i] = 1000 + i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Rotation(a, c)
	}
}

func BenchmarkAllPairs(b *testing.B) {
	elems := make([]int, 128)
	for i := range elems {
		elems[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AllPairs(elems)
	}
}

func BenchmarkGreedy(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pairs := make([]model.Pair, 0, 2000)
	for len(pairs) < cap(pairs) {
		a, c := rng.Intn(500), rng.Intn(500)
		if a != c {
			pairs = append(pairs, model.Pair{A: a, B: c})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy(pairs)
	}
}

func BenchmarkSweep(b *testing.B) {
	team := make([]int, 50)
	targets := make([]int, 1000)
	for i := range team {
		team[i] = 10000 + i
	}
	for i := range targets {
		targets[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sweep(team, targets)
	}
}
