package sched

import (
	"math/bits"

	"ecsort/internal/model"
)

// Greedy decomposes an arbitrary multiset of desired tests into ER rounds
// of vertex-disjoint pairs, first-fit: each test lands in the earliest
// round where both endpoints are still free. For a test set of maximum
// element degree Δ this uses at most 2Δ−1 rounds (first-fit edge coloring
// of a multigraph), which is within a factor ~2 of the optimum Δ.
//
// The structured schedules (Rotation, AllPairs, Sweep) are preferred when
// they apply — they hit the optimum exactly — but Greedy handles the
// irregular leftover sets that adaptive algorithms generate.
//
// Bookkeeping is slice-backed: elements map to dense ids and each id owns
// a round-occupancy bitset, so finding the first free round is a word
// scan instead of nested map probes.
func Greedy(pairs []model.Pair) [][]model.Pair {
	if len(pairs) == 0 {
		return nil
	}
	id := denseIDs(pairs)
	// busy[d] is the round-occupancy bitset of dense element d; rounds
	// are bounded by 2Δ−1 ≤ 2·len(pairs), so word counts stay tiny.
	busy := make([][]uint64, id.count)
	var rounds [][]model.Pair
	for _, p := range pairs {
		a, b := id.of(p.A), id.of(p.B)
		r := firstFreeRound(busy[a], busy[b])
		if r == len(rounds) {
			rounds = append(rounds, nil)
		}
		rounds[r] = append(rounds[r], p)
		busy[a] = setRound(busy[a], r)
		busy[b] = setRound(busy[b], r)
	}
	return rounds
}

// denseID maps arbitrary element values onto 0..count-1. When the value
// range is comparable to the pair count it is a direct-indexed slice;
// only pathologically sparse inputs fall back to a map.
type denseID struct {
	base  int
	dense []int32       // value-base -> id+1, 0 = unassigned
	slow  map[int]int32 // fallback for sparse ranges
	count int
}

func denseIDs(pairs []model.Pair) *denseID {
	lo, hi := pairs[0].A, pairs[0].A
	for _, p := range pairs {
		lo = min(lo, min(p.A, p.B))
		hi = max(hi, max(p.A, p.B))
	}
	d := &denseID{base: lo}
	if span := hi - lo + 1; span <= 8*len(pairs)+64 {
		d.dense = make([]int32, span)
	} else {
		d.slow = make(map[int]int32, 2*len(pairs))
	}
	for _, p := range pairs {
		d.assign(p.A)
		d.assign(p.B)
	}
	return d
}

func (d *denseID) assign(e int) {
	if d.dense != nil {
		if d.dense[e-d.base] == 0 {
			d.count++
			d.dense[e-d.base] = int32(d.count)
		}
		return
	}
	if _, ok := d.slow[e]; !ok {
		d.slow[e] = int32(d.count)
		d.count++
	}
}

func (d *denseID) of(e int) int {
	if d.dense != nil {
		return int(d.dense[e-d.base]) - 1
	}
	return int(d.slow[e])
}

// firstFreeRound returns the smallest round index not set in either
// occupancy bitset.
func firstFreeRound(a, b []uint64) int {
	for w := 0; ; w++ {
		var x uint64
		if w < len(a) {
			x = a[w]
		}
		if w < len(b) {
			x |= b[w]
		}
		if x != ^uint64(0) {
			return w*64 + bits.TrailingZeros64(^x)
		}
	}
}

// setRound marks round r occupied, growing the bitset as needed.
func setRound(s []uint64, r int) []uint64 {
	for r/64 >= len(s) {
		s = append(s, 0)
	}
	s[r/64] |= 1 << (r % 64)
	return s
}

// MaxDegree returns the maximum number of tests any single element
// appears in — the trivial lower bound on the number of ER rounds any
// decomposition of pairs needs.
func MaxDegree(pairs []model.Pair) int {
	if len(pairs) == 0 {
		return 0
	}
	id := denseIDs(pairs)
	deg := make([]int, id.count)
	best := 0
	for _, p := range pairs {
		a, b := id.of(p.A), id.of(p.B)
		deg[a]++
		deg[b]++
		best = max(best, max(deg[a], deg[b]))
	}
	return best
}
