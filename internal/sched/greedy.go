package sched

import "ecsort/internal/model"

// Greedy decomposes an arbitrary multiset of desired tests into ER rounds
// of vertex-disjoint pairs, first-fit: each test lands in the earliest
// round where both endpoints are still free. For a test set of maximum
// element degree Δ this uses at most 2Δ−1 rounds (first-fit edge coloring
// of a multigraph), which is within a factor ~2 of the optimum Δ.
//
// The structured schedules (Rotation, AllPairs, Sweep) are preferred when
// they apply — they hit the optimum exactly — but Greedy handles the
// irregular leftover sets that adaptive algorithms generate.
func Greedy(pairs []model.Pair) [][]model.Pair {
	if len(pairs) == 0 {
		return nil
	}
	// usedAt[e] lists rounds where e is busy, as a bitset grown on
	// demand; degrees here are small so a simple map of round sets is
	// plenty.
	usedAt := make(map[int]map[int]bool)
	busy := func(e, round int) bool { return usedAt[e][round] }
	reserve := func(e, round int) {
		if usedAt[e] == nil {
			usedAt[e] = make(map[int]bool)
		}
		usedAt[e][round] = true
	}
	var rounds [][]model.Pair
	for _, p := range pairs {
		r := 0
		for busy(p.A, r) || busy(p.B, r) {
			r++
		}
		if r == len(rounds) {
			rounds = append(rounds, nil)
		}
		rounds[r] = append(rounds[r], p)
		reserve(p.A, r)
		reserve(p.B, r)
	}
	return rounds
}

// MaxDegree returns the maximum number of tests any single element
// appears in — the trivial lower bound on the number of ER rounds any
// decomposition of pairs needs.
func MaxDegree(pairs []model.Pair) int {
	deg := make(map[int]int)
	best := 0
	for _, p := range pairs {
		deg[p.A]++
		deg[p.B]++
		if deg[p.A] > best {
			best = deg[p.A]
		}
		if deg[p.B] > best {
			best = deg[p.B]
		}
	}
	return best
}
