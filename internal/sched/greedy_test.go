package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ecsort/internal/model"
)

func TestGreedyEmpty(t *testing.T) {
	if Greedy(nil) != nil {
		t.Fatal("empty input should give nil")
	}
}

func TestGreedySingle(t *testing.T) {
	rounds := Greedy([]model.Pair{{A: 1, B: 2}})
	if len(rounds) != 1 || len(rounds[0]) != 1 {
		t.Fatalf("rounds = %v", rounds)
	}
}

func TestGreedyStar(t *testing.T) {
	// A star forces one round per edge (center degree = Δ).
	star := []model.Pair{{A: 0, B: 1}, {A: 0, B: 2}, {A: 0, B: 3}, {A: 0, B: 4}}
	rounds := Greedy(star)
	if len(rounds) != 4 {
		t.Fatalf("star rounds = %d, want 4", len(rounds))
	}
}

func TestGreedyMatchingFitsOneRound(t *testing.T) {
	matching := []model.Pair{{A: 0, B: 1}, {A: 2, B: 3}, {A: 4, B: 5}}
	rounds := Greedy(matching)
	if len(rounds) != 1 {
		t.Fatalf("disjoint matching used %d rounds", len(rounds))
	}
}

// TestGreedyProperties: disjointness within rounds, exact multiset
// coverage, and the 2Δ−1 first-fit bound.
func TestGreedyProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		m := rng.Intn(80)
		var ps []model.Pair
		for i := 0; i < m; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				ps = append(ps, model.Pair{A: a, B: b})
			}
		}
		rounds := Greedy(ps)
		total := 0
		for _, round := range rounds {
			used := map[int]bool{}
			for _, p := range round {
				if used[p.A] || used[p.B] {
					return false
				}
				used[p.A] = true
				used[p.B] = true
				total++
			}
		}
		if total != len(ps) {
			return false
		}
		if delta := MaxDegree(ps); len(rounds) > 0 && len(rounds) > 2*delta-1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxDegree(t *testing.T) {
	if d := MaxDegree(nil); d != 0 {
		t.Fatalf("empty degree = %d", d)
	}
	ps := []model.Pair{{A: 0, B: 1}, {A: 0, B: 2}, {A: 1, B: 2}, {A: 0, B: 3}}
	if d := MaxDegree(ps); d != 3 {
		t.Fatalf("degree = %d, want 3 (vertex 0)", d)
	}
}

// TestGreedyNeverBelowLowerBound: rounds ≥ Δ always.
func TestGreedyLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		var ps []model.Pair
		for i := 0; i < rng.Intn(50); i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				ps = append(ps, model.Pair{A: a, B: b})
			}
		}
		if len(ps) == 0 {
			return true
		}
		return len(Greedy(ps)) >= MaxDegree(ps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
