package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ecsort/internal/model"
)

// checkDisjoint verifies no element appears twice within one round.
func checkDisjoint(t *testing.T, rounds [][]model.Pair) {
	t.Helper()
	for r, round := range rounds {
		used := map[int]bool{}
		for _, p := range round {
			if used[p.A] || used[p.B] {
				t.Fatalf("round %d reuses an element: %v", r, round)
			}
			used[p.A] = true
			used[p.B] = true
		}
	}
}

// coverage collects the set of unordered pairs appearing in the rounds and
// fails on duplicates.
func coverage(t *testing.T, rounds [][]model.Pair) map[[2]int]bool {
	t.Helper()
	seen := map[[2]int]bool{}
	for _, round := range rounds {
		for _, p := range round {
			a, b := p.A, p.B
			if a > b {
				a, b = b, a
			}
			key := [2]int{a, b}
			if seen[key] {
				t.Fatalf("pair %v scheduled twice", key)
			}
			seen[key] = true
		}
	}
	return seen
}

func TestRotationCoversAllCrossPairs(t *testing.T) {
	a := []int{0, 1, 2}
	b := []int{10, 11, 12, 13, 14}
	rounds := Rotation(a, b)
	if len(rounds) != 5 {
		t.Fatalf("rounds = %d, want max(3,5) = 5", len(rounds))
	}
	checkDisjoint(t, rounds)
	seen := coverage(t, rounds)
	if len(seen) != len(a)*len(b) {
		t.Fatalf("covered %d pairs, want %d", len(seen), len(a)*len(b))
	}
	for _, x := range a {
		for _, y := range b {
			if !seen[[2]int{x, y}] {
				t.Fatalf("pair (%d,%d) missing", x, y)
			}
		}
	}
}

func TestRotationEmptySides(t *testing.T) {
	if Rotation(nil, []int{1}) != nil {
		t.Error("Rotation with empty side should be nil")
	}
	if Rotation([]int{1}, nil) != nil {
		t.Error("Rotation with empty side should be nil")
	}
}

func TestRotationQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ka, kb := 1+rng.Intn(12), 1+rng.Intn(12)
		a := make([]int, ka)
		b := make([]int, kb)
		for i := range a {
			a[i] = i
		}
		for i := range b {
			b[i] = 100 + i
		}
		rounds := Rotation(a, b)
		if len(rounds) != max(ka, kb) {
			return false
		}
		// Disjointness within rounds and exact coverage.
		seen := map[[2]int]bool{}
		for _, round := range rounds {
			used := map[int]bool{}
			for _, p := range round {
				if used[p.A] || used[p.B] {
					return false
				}
				used[p.A] = true
				used[p.B] = true
				key := [2]int{min(p.A, p.B), max(p.A, p.B)}
				if seen[key] {
					return false
				}
				seen[key] = true
			}
		}
		return len(seen) == ka*kb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAllPairsSmall(t *testing.T) {
	for m := 2; m <= 9; m++ {
		elems := make([]int, m)
		for i := range elems {
			elems[i] = i * 3 // non-contiguous ids
		}
		rounds := AllPairs(elems)
		checkDisjoint(t, rounds)
		seen := coverage(t, rounds)
		want := m * (m - 1) / 2
		if len(seen) != want {
			t.Fatalf("m=%d: covered %d pairs, want %d", m, len(seen), want)
		}
		wantRounds := m - 1
		if m%2 == 1 {
			wantRounds = m
		}
		if len(rounds) > wantRounds {
			t.Fatalf("m=%d: %d rounds, want <= %d", m, len(rounds), wantRounds)
		}
	}
}

func TestAllPairsDegenerate(t *testing.T) {
	if AllPairs(nil) != nil || AllPairs([]int{7}) != nil {
		t.Error("AllPairs on <2 elements should be nil")
	}
}

func TestAllPairsQuick(t *testing.T) {
	f := func(m uint8) bool {
		size := 2 + int(m)%40
		elems := make([]int, size)
		for i := range elems {
			elems[i] = i
		}
		rounds := AllPairs(elems)
		seen := map[[2]int]bool{}
		for _, round := range rounds {
			used := map[int]bool{}
			for _, p := range round {
				if used[p.A] || used[p.B] {
					return false
				}
				used[p.A] = true
				used[p.B] = true
				key := [2]int{min(p.A, p.B), max(p.A, p.B)}
				if seen[key] {
					return false
				}
				seen[key] = true
			}
		}
		return len(seen) == size*(size-1)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSweepCoversEveryTarget(t *testing.T) {
	team := []int{100, 101, 102}
	targets := []int{0, 1, 2, 3, 4, 5, 6}
	rounds := Sweep(team, targets)
	if len(rounds) != 3 { // ceil(7/3)
		t.Fatalf("rounds = %d, want 3", len(rounds))
	}
	checkDisjoint(t, rounds)
	covered := map[int]bool{}
	for _, round := range rounds {
		for _, p := range round {
			if p.A < 100 {
				t.Fatalf("pair %v: A should be a team member", p)
			}
			if covered[p.B] {
				t.Fatalf("target %d swept twice", p.B)
			}
			covered[p.B] = true
		}
	}
	for _, tg := range targets {
		if !covered[tg] {
			t.Fatalf("target %d never swept", tg)
		}
	}
}

func TestSweepDegenerate(t *testing.T) {
	if Sweep(nil, []int{1}) != nil || Sweep([]int{1}, nil) != nil {
		t.Error("Sweep with empty inputs should be nil")
	}
}

func TestSweepRoundCount(t *testing.T) {
	f := func(teamSize, targetCount uint8) bool {
		ts := 1 + int(teamSize)%20
		tc := int(targetCount) % 100
		team := make([]int, ts)
		for i := range team {
			team[i] = 1000 + i
		}
		targets := make([]int, tc)
		for i := range targets {
			targets[i] = i
		}
		rounds := Sweep(team, targets)
		want := (tc + ts - 1) / ts
		return len(rounds) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
