package majority_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ecsort/internal/majority"
	"ecsort/internal/model"
	"ecsort/internal/oracle"
)

func TestMajorityPresent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// 60 of class 0, 40 split among others.
	truth := oracle.RandomSizes([]int{60, 25, 15}, rng)
	s := model.NewSession(truth, model.ER)
	cand, size, isMaj := majority.Majority(s)
	if !isMaj {
		t.Fatal("majority not detected")
	}
	if size != 60 {
		t.Fatalf("size = %d, want 60", size)
	}
	if truth.Labels()[cand] != truth.Labels()[0] {
		// class 0 elements were shuffled; compare by size instead.
		counts := map[int]int{}
		for _, l := range truth.Labels() {
			counts[l]++
		}
		if counts[truth.Labels()[cand]] != 60 {
			t.Fatal("candidate not in the majority class")
		}
	}
	// Cost: at most 2(n−1).
	if c := s.Stats().Comparisons; c > 2*99 {
		t.Fatalf("comparisons = %d > 2(n−1)", c)
	}
}

func TestMajorityAbsent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	truth := oracle.RandomSizes([]int{50, 50}, rng)
	s := model.NewSession(truth, model.ER)
	_, size, isMaj := majority.Majority(s)
	if isMaj {
		t.Fatalf("false majority of size %d on a 50/50 split", size)
	}
}

func TestMajorityEmptyAndSingle(t *testing.T) {
	s := model.NewSession(oracle.NewLabel(nil), model.ER)
	if c, _, m := majority.Majority(s); c != -1 || m {
		t.Fatal("empty input mishandled")
	}
	s = model.NewSession(oracle.NewLabel([]int{9}), model.ER)
	c, size, m := majority.Majority(s)
	if c != 0 || size != 1 || !m {
		t.Fatalf("single element: c=%d size=%d maj=%v", c, size, m)
	}
}

// TestMajorityQuick: MJRTY must identify the majority whenever one
// exists, for arbitrary class profiles.
func TestMajorityQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(3)
		}
		counts := map[int]int{}
		for _, l := range labels {
			counts[l]++
		}
		best, bestL := 0, -1
		for l, c := range counts {
			if c > best {
				best, bestL = c, l
			}
		}
		truth := oracle.NewLabel(labels)
		s := model.NewSession(truth, model.ER)
		cand, size, isMaj := majority.Majority(s)
		if best > n/2 {
			return isMaj && labels[cand] == bestL && size == best
		}
		// No majority: the report must say so (candidate's true count
		// must match the returned size regardless).
		return !isMaj && size == counts[labels[cand]]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestModeFindsLargestClass(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	truth := oracle.RandomSizes([]int{7, 30, 12, 1}, rng)
	s := model.NewSession(truth, model.ER)
	cand, size := majority.Mode(s)
	if size != 30 {
		t.Fatalf("mode size = %d, want 30", size)
	}
	counts := map[int]int{}
	for _, l := range truth.Labels() {
		counts[l]++
	}
	if counts[truth.Labels()[cand]] != 30 {
		t.Fatal("candidate not in the largest class")
	}
}

func TestModeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(4)
		}
		counts := map[int]int{}
		for _, l := range labels {
			counts[l]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		truth := oracle.NewLabel(labels)
		s := model.NewSession(truth, model.ER)
		cand, size := majority.Mode(s)
		return size == best && counts[labels[cand]] == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestModeEmpty(t *testing.T) {
	s := model.NewSession(oracle.NewLabel(nil), model.ER)
	if c, size := majority.Mode(s); c != -1 || size != 0 {
		t.Fatalf("empty mode: c=%d size=%d", c, size)
	}
}
