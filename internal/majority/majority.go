// Package majority implements the classic equality-comparison algorithms
// the paper positions ECS against (Section 1.1): the Boyer–Moore MJRTY
// majority vote and a mode (largest equivalence class) finder. Both run
// on the same Session substrate as the sorting algorithms, so their
// comparison counts are directly comparable — and, as the paper notes,
// neither yields an efficient parallel ECS algorithm: they locate one
// class, not all of them.
package majority

import (
	"ecsort/internal/knowledge"
	"ecsort/internal/model"
)

// Vote asks an unreliable boolean question up to k times and returns
// the majority answer — the k-of-n re-ask primitive behind
// oracle.Resilient's vote mode for suspected-noisy oracles. Errors
// count as abstentions; if every ask errors, the last error is
// returned. Vote stops as soon as one side holds an unbeatable
// majority, so a consistently answering oracle costs ⌈k/2⌉+... calls,
// not k. A tie (possible with abstentions or even k) resolves to
// false: for equivalence tests that is "not equal", the conservative
// side — a wrong split is repairable by re-verification, a wrong merge
// contaminates a class.
func Vote(k int, ask func() (bool, error)) (bool, error) {
	if k < 1 {
		k = 1
	}
	need := k/2 + 1
	yes, no := 0, 0
	var lastErr error
	for c := 0; c < k; c++ {
		v, err := ask()
		if err != nil {
			lastErr = err
			continue
		}
		if v {
			if yes++; yes >= need {
				return true, nil
			}
		} else {
			if no++; no >= need {
				return false, nil
			}
		}
	}
	if yes == 0 && no == 0 {
		return false, lastErr
	}
	return yes > no, nil
}

// Majority finds an element of the strict-majority class (> n/2 members)
// using Boyer–Moore MJRTY plus a verification pass, all with equivalence
// tests. It returns the candidate element, the exact size of its class,
// and whether that class is a strict majority. The pairing phase costs at
// most n−1 comparisons and verification at most n−1 more.
func Majority(s *model.Session) (candidate, size int, isMajority bool) {
	n := s.N()
	if n == 0 {
		return -1, 0, false
	}
	// Phase 1: MJRTY vote. Maintain a candidate with a counter; equal
	// elements increment, unequal decrement (and replace at zero).
	candidate = 0
	count := 1
	for x := 1; x < n; x++ {
		if count == 0 {
			candidate = x
			count = 1
			continue
		}
		if s.Compare(candidate, x) {
			count++
		} else {
			count--
		}
	}
	// Phase 2: verify by counting the candidate's class exactly.
	size = 1
	for x := 0; x < n; x++ {
		if x == candidate {
			continue
		}
		if s.Compare(candidate, x) {
			size++
		}
	}
	return candidate, size, size > n/2
}

// Mode finds an element of the largest equivalence class and its size,
// using a pairing-and-knowledge strategy: run the round-robin knowledge
// build until the largest fragment can no longer be beaten by any
// undecided pool. For simplicity and exactness it completes the
// classification (the ECS lower bounds say finding the mode is not
// substantially cheaper than sorting when classes are balanced), so its
// cost mirrors the round-robin regimen's.
func Mode(s *model.Session) (candidate, size int) {
	n := s.N()
	if n == 0 {
		return -1, 0
	}
	g := knowledge.New(n)
	// Pair up elements round-robin until knowledge is complete (same
	// regimen as core.RoundRobin, restated here to avoid an import
	// cycle; the cost profile is identical).
	ptr := make([]int, n)
	for !g.Complete() {
		progress := false
		for x := 0; x < n; x++ {
			if g.DoneFor(x) {
				continue
			}
			for ptr[x] < n-1 {
				y := (x + 1 + ptr[x]) % n
				ptr[x]++
				if _, known := g.Known(x, y); known {
					continue
				}
				if s.Compare(x, y) {
					g.RecordEqual(x, y)
				} else {
					g.RecordUnequal(x, y)
				}
				progress = true
				break
			}
		}
		if !progress {
			break
		}
	}
	for _, group := range g.Groups() {
		if len(group) > size {
			size = len(group)
			candidate = group[0]
		}
	}
	return candidate, size
}
