package majority_test

import (
	"errors"
	"testing"

	"ecsort/internal/majority"
)

func TestVoteUnanimous(t *testing.T) {
	calls := 0
	v, err := majority.Vote(5, func() (bool, error) { calls++; return true, nil })
	if err != nil || !v {
		t.Fatalf("Vote = %v, %v", v, err)
	}
	if calls != 3 {
		t.Fatalf("unanimous vote made %d calls, want 3 (early exit)", calls)
	}
}

func TestVoteMajorityOverNoise(t *testing.T) {
	// false, true, true, true: majority true despite the first answer.
	answers := []bool{false, true, true, true, true}
	i := 0
	v, err := majority.Vote(5, func() (bool, error) { a := answers[i]; i++; return a, nil })
	if err != nil || !v {
		t.Fatalf("Vote = %v, %v", v, err)
	}
}

func TestVoteAbstentions(t *testing.T) {
	fault := errors.New("injected")
	// Two errors and two false answers out of 5: false wins 2-0.
	answers := []func() (bool, error){
		func() (bool, error) { return false, fault },
		func() (bool, error) { return false, nil },
		func() (bool, error) { return false, fault },
		func() (bool, error) { return false, nil },
		func() (bool, error) { return true, nil },
	}
	i := 0
	v, err := majority.Vote(5, func() (bool, error) { f := answers[i]; i++; return f() })
	if err != nil {
		t.Fatal(err)
	}
	if v {
		t.Fatal("Vote = true, want false")
	}
}

func TestVoteAllErrors(t *testing.T) {
	fault := errors.New("injected")
	if _, err := majority.Vote(3, func() (bool, error) { return false, fault }); !errors.Is(err, fault) {
		t.Fatalf("err = %v, want the last ask error", err)
	}
}

func TestVoteTieResolvesFalse(t *testing.T) {
	// Even k with a 2-2 split: the conservative "not equal" side wins.
	answers := []bool{true, false, true, false}
	i := 0
	v, err := majority.Vote(4, func() (bool, error) { a := answers[i]; i++; return a, nil })
	if err != nil {
		t.Fatal(err)
	}
	if v {
		t.Fatal("tie resolved to true")
	}
}
