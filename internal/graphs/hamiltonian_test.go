package graphs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ecsort/internal/model"
)

func TestEdgesCountAndForm(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := NewHamiltonian(10, 3, rng)
	edges := h.Edges()
	if len(edges) != 30 {
		t.Fatalf("edges = %d, want 30", len(edges))
	}
	// Each cycle visits every vertex exactly once as a source and once as
	// a destination.
	for c := 0; c < 3; c++ {
		src := map[int]int{}
		dst := map[int]int{}
		for _, e := range edges[c*10 : (c+1)*10] {
			src[e.A]++
			dst[e.B]++
		}
		for v := 0; v < 10; v++ {
			if src[v] != 1 || dst[v] != 1 {
				t.Fatalf("cycle %d: vertex %d has src=%d dst=%d", c, v, src[v], dst[v])
			}
		}
	}
}

func TestERRoundsDisjointAndComplete(t *testing.T) {
	f := func(seed int64, nRaw, dRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(nRaw)%30
		d := 1 + int(dRaw)%4
		h := NewHamiltonian(n, d, rng)
		rounds := h.ERRounds()
		// Round budget: 2 per even cycle, 3 per odd cycle.
		maxRounds := 2 * d
		if n%2 == 1 {
			maxRounds = 3 * d
		}
		if len(rounds) > maxRounds {
			return false
		}
		total := 0
		for _, round := range rounds {
			used := map[int]bool{}
			for _, p := range round {
				if p.A == p.B || used[p.A] || used[p.B] {
					return false
				}
				used[p.A] = true
				used[p.B] = true
				total++
			}
		}
		// Every edge of every cycle appears exactly once overall.
		return total == n*d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestERRoundsCoverEdgeSet(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHamiltonian(9, 2, rng)
	want := map[[2]int]int{}
	for _, e := range h.Edges() {
		a, b := e.A, e.B
		if a > b {
			a, b = b, a
		}
		want[[2]int{a, b}]++
	}
	got := map[[2]int]int{}
	for _, round := range h.ERRounds() {
		for _, p := range round {
			a, b := p.A, p.B
			if a > b {
				a, b = b, a
			}
			got[[2]int{a, b}]++
		}
	}
	if len(got) != len(want) {
		t.Fatalf("distinct edges: got %d want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("edge %v: got %d want %d", k, got[k], v)
		}
	}
}

func TestComponentsFromEqualities(t *testing.T) {
	edges := []model.Pair{{A: 0, B: 1}, {A: 1, B: 2}, {A: 3, B: 4}, {A: 2, B: 3}}
	results := []bool{true, true, true, false}
	comps := ComponentsFromEqualities(6, edges, results)
	if len(comps) != 3 {
		t.Fatalf("components = %v, want 3 groups", comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 {
		t.Fatalf("largest component = %v, want [0 1 2]", comps[0])
	}
	if len(comps[1]) != 2 || comps[1][0] != 3 {
		t.Fatalf("second component = %v, want [3 4]", comps[1])
	}
}

func TestComponentsSortedBySize(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		var edges []model.Pair
		var results []bool
		for i := 0; i < n; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			edges = append(edges, model.Pair{A: a, B: b})
			results = append(results, rng.Intn(2) == 0)
		}
		comps := ComponentsFromEqualities(n, edges, results)
		covered := 0
		for i, c := range comps {
			covered += len(c)
			if i > 0 && len(comps[i-1]) < len(c) {
				return false
			}
		}
		return covered == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeForLambda(t *testing.T) {
	// d(λ) must be finite, positive, and decreasing in λ.
	prev := int(1 << 30)
	for _, l := range []float64{0.05, 0.1, 0.2, 0.3, 0.4} {
		d := DegreeForLambda(l)
		if d < 1 {
			t.Fatalf("d(%v) = %d", l, d)
		}
		if d > prev {
			t.Fatalf("d(%v) = %d not decreasing (prev %d)", l, d, prev)
		}
		prev = d
	}
	// Spot value: λ=0.4 → 8·1.4·ln2/0.16 ≈ 48.5, +1 slack → 50.
	if d := DegreeForLambda(0.4); d != 50 {
		t.Errorf("d(0.4) = %d, want 50", d)
	}
}

func TestDegreeForLambdaPanics(t *testing.T) {
	for _, l := range []float64{0, -1, 0.41, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("DegreeForLambda(%v) did not panic", l)
				}
			}()
			DegreeForLambda(l)
		}()
	}
}

func TestNewHamiltonianPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("n=2 did not panic")
			}
		}()
		NewHamiltonian(2, 1, rng)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("d=0 did not panic")
			}
		}()
		NewHamiltonian(5, 0, rng)
	}()
}

// TestLargeSubsetHasBigComponent empirically exercises Theorem 3: with
// d = d(λ) cycles, a random class of size λn should contain a connected
// component of size ≥ λn/8 (we check the undirected relaxation the
// algorithm actually uses).
func TestLargeSubsetHasBigComponent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 300
	lambda := 0.3
	d := DegreeForLambda(lambda)
	size := int(lambda * float64(n))
	for trial := 0; trial < 5; trial++ {
		h := NewHamiltonian(n, d, rng)
		// Random subset W of size λn.
		perm := rng.Perm(n)
		inW := make([]bool, n)
		for _, v := range perm[:size] {
			inW[v] = true
		}
		// Keep only edges inside W.
		var edges []model.Pair
		var results []bool
		for _, e := range h.Edges() {
			if inW[e.A] && inW[e.B] {
				edges = append(edges, e)
				results = append(results, true)
			}
		}
		comps := ComponentsFromEqualities(n, edges, results)
		// comps[0] is the largest; subtract the singletons outside W.
		best := 0
		for _, c := range comps {
			if len(c) > best && inW[c[0]] {
				sz := 0
				for _, v := range c {
					if inW[v] {
						sz++
					}
				}
				if sz > best {
					best = sz
				}
			}
		}
		if best < size/8 {
			t.Fatalf("trial %d: largest component in W has %d vertices, want >= %d", trial, best, size/8)
		}
	}
}
