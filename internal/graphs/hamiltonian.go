// Package graphs provides the graph substrate for the constant-round ECS
// algorithm of Theorem 4: unions of random Hamiltonian cycles (the H_d
// construction of Goodrich, Theorem 3), connected components, and a Tarjan
// strongly-connected-components routine for the directed view.
package graphs

import (
	"math"
	"math/rand"
	"sort"

	"ecsort/internal/model"
	"ecsort/internal/unionfind"
)

// Hamiltonian is the directed graph H_d on n vertices formed by the union
// of d independent uniformly random Hamiltonian cycles. Theorem 3
// guarantees that, for suitable constant d = d(λ), every vertex subset of
// size λn induces a strongly connected component of size > γλn with high
// probability (γ = 1/4 in the paper's instantiation).
type Hamiltonian struct {
	n      int
	cycles [][]int // cycles[c] is a permutation of 0..n-1
}

// NewHamiltonian draws d independent random Hamiltonian cycles on n
// vertices using rng. It panics if n < 3 or d < 1 (a Hamiltonian cycle
// needs at least 3 vertices).
func NewHamiltonian(n, d int, rng *rand.Rand) *Hamiltonian {
	if n < 3 {
		panic("graphs: Hamiltonian cycles need n >= 3")
	}
	if d < 1 {
		panic("graphs: need at least one cycle")
	}
	h := &Hamiltonian{n: n, cycles: make([][]int, d)}
	for c := range h.cycles {
		h.cycles[c] = rng.Perm(n)
	}
	return h
}

// N returns the number of vertices.
func (h *Hamiltonian) N() int { return h.n }

// D returns the number of Hamiltonian cycles in the union.
func (h *Hamiltonian) D() int { return len(h.cycles) }

// Edges returns the directed edges of every cycle: for cycle c with vertex
// order v_0, v_1, ..., the edges (v_i, v_{i+1 mod n}).
func (h *Hamiltonian) Edges() []model.Pair {
	edges := make([]model.Pair, 0, h.n*len(h.cycles))
	for _, cyc := range h.cycles {
		for i, v := range cyc {
			edges = append(edges, model.Pair{A: v, B: cyc[(i+1)%h.n]})
		}
	}
	return edges
}

// ERRounds decomposes the edges of every cycle into rounds of
// vertex-disjoint pairs, suitable for the ER model. A cycle on an even
// number of vertices is 2-edge-colorable (alternate edges), and an odd
// cycle needs 3 colors, so the whole union needs at most 3d rounds — the
// constant number of rounds used by step 2 of the Theorem 4 algorithm.
func (h *Hamiltonian) ERRounds() [][]model.Pair {
	var rounds [][]model.Pair
	for _, cyc := range h.cycles {
		rounds = append(rounds, cycleRounds(cyc)...)
	}
	return rounds
}

// cycleRounds splits the edges of one cycle into 2 (even length) or 3 (odd
// length) rounds of vertex-disjoint pairs.
func cycleRounds(cyc []int) [][]model.Pair {
	n := len(cyc)
	edge := func(i int) model.Pair { return model.Pair{A: cyc[i], B: cyc[(i+1)%n]} }
	if n%2 == 0 {
		even := make([]model.Pair, 0, n/2)
		odd := make([]model.Pair, 0, n/2)
		for i := 0; i < n; i += 2 {
			even = append(even, edge(i))
			odd = append(odd, edge(i+1))
		}
		return [][]model.Pair{even, odd}
	}
	// Odd cycle: edges 0,2,4,...,n-3 are vertex-disjoint, edges
	// 1,3,...,n-2 are vertex-disjoint, and the wrap-around edge n-1 goes
	// alone in a third round.
	var a, b []model.Pair
	for i := 0; i+1 < n-1; i += 2 {
		a = append(a, edge(i))
		b = append(b, edge(i+1))
	}
	c := []model.Pair{edge(n - 1)}
	return [][]model.Pair{a, b, c}
}

// ComponentsFromEqualities returns the connected components induced by the
// subset of edges whose equivalence test answered true. edges and results
// run in parallel. Components are returned largest first; ties broken by
// smallest member.
func ComponentsFromEqualities(n int, edges []model.Pair, results []bool) [][]int {
	dsu := unionfind.New(n)
	for i, e := range edges {
		if results[i] {
			dsu.Union(e.A, e.B)
		}
	}
	groups := dsu.Groups()
	// Sort by size descending, stable on smallest member (Groups already
	// orders by smallest member).
	sortBySizeDesc(groups)
	return groups
}

func sortBySizeDesc(groups [][]int) {
	sort.SliceStable(groups, func(i, j int) bool {
		return len(groups[i]) > len(groups[j])
	})
}

// DegreeForLambda returns the constant number of Hamiltonian cycles d(λ)
// sufficient for Theorem 3 to hold with high probability with γ = 1/4, for
// 0 < λ ≤ 0.4. Following Section 2.2: the exponent's main term t satisfies
// t ≤ −λ²/8, so any d > 8(1+λ)·ln2/λ² drives the failure probability to
// e^{−Ω(n)}; we add one for slack.
func DegreeForLambda(lambda float64) int {
	if lambda <= 0 || lambda > 0.4 {
		panic("graphs: lambda must be in (0, 0.4]")
	}
	d := 8 * (1 + lambda) * math.Ln2 / (lambda * lambda)
	return int(math.Ceil(d)) + 1
}
