package graphs

import (
	"sort"

	"ecsort/internal/model"
)

// StronglyConnectedComponents computes the SCCs of the directed graph on
// n vertices given by edges, using Tarjan's algorithm (iterative, so deep
// cycle unions cannot overflow the goroutine stack). Components are
// returned largest first, ties broken by smallest member; members are
// sorted ascending.
//
// Theorem 3 is stated for strongly connected components of the directed
// H_d induced on a vertex subset. Because equivalence is symmetric, the
// algorithm of Theorem 4 may use plain connected components of the
// "equal" edges (every directed cycle edge whose test answered true is
// traversable both ways); this routine exists to validate that reading —
// on symmetric-closure inputs the two notions coincide — and to support
// the directed analysis directly.
func StronglyConnectedComponents(n int, edges []model.Pair) [][]int {
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e.A] = append(adj[e.A], e.B)
	}

	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack   []int // Tarjan stack
		counter int
		comps   [][]int
	)

	// Iterative DFS frame: vertex and position within its adjacency list.
	type frame struct {
		v, i int
	}
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		work := []frame{{v: root}}
		for len(work) > 0 {
			f := &work[len(work)-1]
			v := f.v
			if f.i == 0 {
				index[v] = counter
				low[v] = counter
				counter++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.i < len(adj[v]) {
				w := adj[v][f.i]
				f.i++
				if index[w] == unvisited {
					work = append(work, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is finished: pop a component if v is a root.
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sortInts(comp)
				comps = append(comps, comp)
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	sortBySizeDescStable(comps)
	return comps
}

func sortInts(xs []int) { sort.Ints(xs) }

func sortBySizeDescStable(groups [][]int) {
	sort.Slice(groups, func(i, j int) bool {
		if len(groups[i]) != len(groups[j]) {
			return len(groups[i]) > len(groups[j])
		}
		return groups[i][0] < groups[j][0]
	})
}
