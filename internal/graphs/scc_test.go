package graphs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ecsort/internal/model"
	"ecsort/internal/unionfind"
)

func pairs(es ...[2]int) []model.Pair {
	out := make([]model.Pair, len(es))
	for i, e := range es {
		out[i] = model.Pair{A: e[0], B: e[1]}
	}
	return out
}

func TestSCCSimpleCycle(t *testing.T) {
	comps := StronglyConnectedComponents(4, pairs([2]int{0, 1}, [2]int{1, 2}, [2]int{2, 0}))
	if len(comps) != 2 {
		t.Fatalf("comps = %v", comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 || comps[0][1] != 1 || comps[0][2] != 2 {
		t.Fatalf("big component = %v", comps[0])
	}
	if len(comps[1]) != 1 || comps[1][0] != 3 {
		t.Fatalf("singleton = %v", comps[1])
	}
}

func TestSCCDAGIsAllSingletons(t *testing.T) {
	comps := StronglyConnectedComponents(4, pairs([2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3}))
	if len(comps) != 4 {
		t.Fatalf("DAG should give 4 singletons, got %v", comps)
	}
}

func TestSCCTwoCycles(t *testing.T) {
	comps := StronglyConnectedComponents(6, pairs(
		[2]int{0, 1}, [2]int{1, 0},
		[2]int{2, 3}, [2]int{3, 4}, [2]int{4, 2},
		[2]int{1, 2}, // bridge, one direction only
	))
	if len(comps) != 3 {
		t.Fatalf("comps = %v", comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 2 {
		t.Fatalf("largest = %v", comps[0])
	}
}

func TestSCCEmptyAndSelfFree(t *testing.T) {
	if comps := StronglyConnectedComponents(0, nil); len(comps) != 0 {
		t.Fatalf("empty graph: %v", comps)
	}
	if comps := StronglyConnectedComponents(3, nil); len(comps) != 3 {
		t.Fatalf("edgeless graph: %v", comps)
	}
}

func TestSCCDeepPathNoOverflow(t *testing.T) {
	// A long two-way path is a single SCC and would blow a recursive
	// Tarjan's stack at this depth.
	const n = 200000
	es := make([]model.Pair, 0, 2*(n-1))
	for i := 0; i+1 < n; i++ {
		es = append(es, model.Pair{A: i, B: i + 1}, model.Pair{A: i + 1, B: i})
	}
	comps := StronglyConnectedComponents(n, es)
	if len(comps) != 1 || len(comps[0]) != n {
		t.Fatalf("got %d components, largest %d", len(comps), len(comps[0]))
	}
}

// TestSCCMatchesComponentsOnSymmetricGraphs: on symmetric edge sets, SCCs
// and plain connected components coincide — the fact the Theorem 4
// implementation relies on when it uses union-find on "equal" edges.
func TestSCCMatchesComponentsOnSymmetricGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		var es []model.Pair
		dsu := unionfind.New(n)
		for i := 0; i < n; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			es = append(es, model.Pair{A: a, B: b}, model.Pair{A: b, B: a})
			dsu.Union(a, b)
		}
		scc := StronglyConnectedComponents(n, es)
		want := dsu.Groups()
		if len(scc) != len(want) {
			return false
		}
		// Compare as label vectors.
		lab1 := make([]int, n)
		for ci, c := range scc {
			for _, v := range c {
				lab1[v] = ci
			}
		}
		lab2 := dsu.Labels()
		fwd := map[int]int{}
		for i := 0; i < n; i++ {
			if v, ok := fwd[lab1[i]]; ok {
				if v != lab2[i] {
					return false
				}
			} else {
				fwd[lab1[i]] = lab2[i]
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestSCCPartition: components always partition the vertex set.
func TestSCCPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		var es []model.Pair
		for i := 0; i < 2*n; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				es = append(es, model.Pair{A: a, B: b})
			}
		}
		comps := StronglyConnectedComponents(n, es)
		seen := make([]bool, n)
		count := 0
		for _, c := range comps {
			for _, v := range c {
				if seen[v] {
					return false
				}
				seen[v] = true
				count++
			}
		}
		return count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestSCCMutualReachability: two vertices share a component iff they
// reach each other (verified by brute-force BFS on small graphs).
func TestSCCMutualReachability(t *testing.T) {
	reach := func(n int, adj [][]int, from int) []bool {
		seen := make([]bool, n)
		queue := []int{from}
		seen[from] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range adj[v] {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		return seen
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		var es []model.Pair
		adj := make([][]int, n)
		for i := 0; i < n+rng.Intn(2*n); i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			es = append(es, model.Pair{A: a, B: b})
			adj[a] = append(adj[a], b)
		}
		comps := StronglyConnectedComponents(n, es)
		label := make([]int, n)
		for ci, c := range comps {
			for _, v := range c {
				label[v] = ci
			}
		}
		for a := 0; a < n; a++ {
			ra := reach(n, adj, a)
			for b := 0; b < n; b++ {
				rb := reach(n, adj, b)
				mutual := ra[b] && rb[a]
				if mutual != (label[a] == label[b]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestSCCOnHamiltonianUnion: H_d itself is one big SCC (each cycle alone
// is already strongly connected).
func TestSCCOnHamiltonianUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := NewHamiltonian(50, 2, rng)
	comps := StronglyConnectedComponents(50, h.Edges())
	if len(comps) != 1 || len(comps[0]) != 50 {
		t.Fatalf("H_d not strongly connected: %d comps", len(comps))
	}
}
