package wal

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestChurnRecordsRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 1, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch("demo", []int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendFlush("demo"); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendDelete("demo", 1); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendInvalidate("demo", 2); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendFlush("demo"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	recs, _ := collect(t, dir, 0)
	want := []Record{
		{Type: RecBatch, Key: "demo", Items: []int{0, 1, 2}},
		{Type: RecFlush, Key: "demo"},
		{Type: RecDelete, Key: "demo", Elem: 1},
		{Type: RecInvalidate, Key: "demo", Elem: 2},
		{Type: RecFlush, Key: "demo"},
	}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("records = %+v, want %+v", recs, want)
	}
}

func TestSizeTracksAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 1, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Size(); got != headerSize {
		t.Fatalf("fresh segment Size = %d, want %d", got, headerSize)
	}
	if err := l.AppendBatch("k", []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendDelete("k", 2); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(l.Path())
	if err != nil {
		t.Fatal(err)
	}
	if l.Size() != fi.Size() {
		t.Fatalf("Size = %d, file is %d bytes", l.Size(), fi.Size())
	}

	// Reopening for append must pick up the real size, not reset it.
	l2, err := OpenAppend(dir, 1, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Size() != fi.Size() {
		t.Fatalf("reopened Size = %d, want %d", l2.Size(), fi.Size())
	}
}

// TestVersion1SegmentRefused stamps a version-1 header and verifies
// every reader path refuses it loudly instead of reinterpreting it —
// the PERSISTENCE.md versioning contract for the v2 format bump.
func TestVersion1SegmentRefused(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 1, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendFlush("demo"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, SegmentName(1))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint16(raw[4:6], 1)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Replay(dir, 0, func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Replay of v1 segment: err = %v, want ErrCorrupt", err)
	} else if !strings.Contains(err.Error(), "version 1 unsupported") {
		t.Fatalf("Replay error does not name the version: %v", err)
	}
	if _, err := OpenAppend(dir, 1, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenAppend of v1 segment: err = %v, want ErrCorrupt", err)
	}
}

func TestVersion1CheckpointRefused(t *testing.T) {
	dir := t.TempDir()
	cp := &Checkpoint{WALGen: 3, Collections: []CollectionState{{Key: "k", Spec: []byte("{}")}}}
	if err := WriteCheckpoint(dir, cp); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, SnapshotName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint16(raw[4:6], 1)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadCheckpoint(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadCheckpoint of v1 file: err = %v, want ErrCorrupt", err)
	}
}
