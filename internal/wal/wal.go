// Package wal implements the durability layer of the classification
// service: per-shard append-only write-ahead logs plus flat-snapshot
// checkpoints, with replay-on-boot recovery. The on-disk format is
// specified in docs/PERSISTENCE.md; this package is deliberately
// stdlib-only and free of project dependencies so the same flat-partition
// framing can later double as the multi-node wire format.
//
// Each shard goroutine of the service owns one Log: records (collection
// create/drop, accepted item batches, flush boundaries) are framed as
// [length, CRC32C, payload] and appended to segment files named
// wal-<generation>.log. A checkpoint serializes every collection's flat
// answer backing (core.Answer's one-slice layout), class offsets, and
// pending buffer to checkpoint.snap via an atomic tmp+rename, then starts
// a fresh segment generation so the segments behind it can be deleted.
// Replay loads the checkpoint (if any) and re-applies the record tail of
// every surviving segment at or above the checkpoint's generation.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Policy selects when appended records are fsynced to stable storage.
type Policy string

// The three fsync policies. SyncAlways fsyncs on every committed
// operation (maximum durability, one disk flush per ingest call);
// SyncInterval fsyncs when Options.Interval has elapsed since the last
// sync (bounded data loss, amortized flushes); SyncNever leaves flushing
// to the OS page cache (fastest; a machine crash can lose the unsynced
// tail, a clean process exit loses nothing).
const (
	SyncAlways   Policy = "always"
	SyncInterval Policy = "interval"
	SyncNever    Policy = "never"
)

// ParsePolicy validates an fsync policy name, accepting the empty string
// as the default (SyncInterval).
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case "":
		return SyncInterval, nil
	case SyncAlways, SyncInterval, SyncNever:
		return Policy(s), nil
	}
	return "", fmt.Errorf("wal: unknown fsync policy %q (want %q, %q, or %q)", s, SyncAlways, SyncInterval, SyncNever)
}

// Record types. The type byte leads every record payload.
const (
	// RecCreate registers a collection: key + its oracle-spec JSON.
	RecCreate byte = 1
	// RecDrop removes a collection.
	RecDrop byte = 2
	// RecBatch is one accepted ingest batch: key + element ids.
	RecBatch byte = 3
	// RecFlush marks a successful fold boundary: the collection's pending
	// buffer, as of this point in the log, was folded into its answer.
	// Replay re-folds at exactly these boundaries, which is what makes a
	// recovered collection bit-identical (classes and stats) to one that
	// never crashed.
	RecFlush byte = 4
	// RecDelete removes one element from a collection — the churn inverse
	// of a RecBatch entry. Format version 2.
	RecDelete byte = 5
	// RecInvalidate withdraws the merged class containing one element,
	// re-queueing its members as pending. The class is keyed by a member
	// element (not a class index) because element identity is stable
	// across replay while class ordering is not. Format version 2.
	RecInvalidate byte = 6
	// RecResilience updates a collection's resilience profile in place:
	// key + the new profile's JSON encoding (the service stores
	// ResilienceSpec JSON). Replay re-applies the update at the same
	// point in the history, so a recovered collection runs with the
	// profile the operator last PATCHed, not the one frozen at create
	// time. Format version 3.
	RecResilience byte = 7
)

// Format constants shared by segment and checkpoint files. See
// docs/PERSISTENCE.md for the byte-level layout.
const (
	// segMagic opens every WAL segment file.
	segMagic = "ECSW"
	// snapMagic opens every checkpoint file.
	snapMagic = "ECSS"
	// FormatVersion is the current on-disk format version, stamped into
	// every header this build writes: version 2 added the
	// RecDelete/RecInvalidate record types, version 3 added
	// RecResilience (see docs/PERSISTENCE.md, "Versioning").
	FormatVersion = 3
	// MinFormatVersion is the oldest version this build still reads.
	// v3 is a strict superset of v2 — one new record type, no existing
	// record or checkpoint layout changed — so v2 segments and
	// checkpoints replay as-is and an upgraded node recovers its old
	// data. Versions below the floor, or above FormatVersion, are
	// rejected loudly: a reader must never skip records it cannot
	// interpret.
	MinFormatVersion = 2
	// headerSize is the fixed size of both file headers:
	// magic[4] version[u16] reserved[u16] generation[u64].
	headerSize = 16
	// frameOverhead is the per-record framing cost: length[u32] crc[u32].
	frameOverhead = 8
	// maxRecordSize bounds one record's payload; a longer length prefix
	// means corruption, not a huge record.
	maxRecordSize = 1 << 28
)

// castagnoli is the CRC32-C table used for all record checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt wraps every integrity failure found while reading WAL or
// checkpoint files: CRC mismatches, bad magic, impossible lengths.
// Torn tails (a final record cut short by a crash) are NOT corruption —
// replay truncates them silently and reports them in the summary.
var ErrCorrupt = errors.New("wal: corrupt")

// Counters aggregates append/fsync activity across all of a service's
// logs (segment rotation replaces Log values, so the counters live
// outside). All fields are atomics, safe to read from metrics scrapes
// while shard goroutines append.
type Counters struct {
	// Appends counts records appended.
	Appends atomic.Int64
	// Bytes counts framed bytes written (payload + frame overhead).
	Bytes atomic.Int64
	// Fsyncs counts file syncs issued by the policy, Commit, or Sync.
	Fsyncs atomic.Int64
	// FsyncNanos accumulates time spent in fsync.
	FsyncNanos atomic.Int64
	// LastFsyncNanos is the duration of the most recent fsync.
	LastFsyncNanos atomic.Int64
}

// Options configures a Log.
type Options struct {
	// Policy is the fsync policy; the zero value means SyncInterval.
	Policy Policy
	// Interval is the minimum spacing between fsyncs under SyncInterval;
	// 0 means 100ms.
	Interval time.Duration
	// Counters, when non-nil, receives append/fsync accounting. A service
	// passes one shared Counters to every shard's logs.
	Counters *Counters
}

func (o Options) interval() time.Duration {
	if o.Interval <= 0 {
		return 100 * time.Millisecond
	}
	return o.Interval
}

func (o Options) policy() Policy {
	if o.Policy == "" {
		return SyncInterval
	}
	return o.Policy
}

// Log is one shard's append-only record log: a single open segment file.
// A Log is single-writer by construction — the owning shard goroutine is
// the only appender — so it needs no internal locking; the shared
// Counters are atomic for cross-goroutine metric reads.
type Log struct {
	f        *os.File
	path     string
	gen      uint64
	opts     Options
	buf      []byte // reusable frame-encoding buffer
	size     int64  // file size in bytes (header + all appended frames)
	dirty    bool   // bytes written since the last fsync
	lastSync time.Time
}

// SegmentName renders the file name of generation gen. Generations are
// zero-padded so lexical directory order matches numeric order.
func SegmentName(gen uint64) string { return fmt.Sprintf("wal-%08d.log", gen) }

// Create starts a new empty segment file for generation gen in dir,
// writing its header. It fails if the segment already exists.
func Create(dir string, gen uint64, opts Options) (*Log, error) {
	path := filepath.Join(dir, SegmentName(gen))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create segment: %w", err)
	}
	var hdr [headerSize]byte
	copy(hdr[:4], segMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], FormatVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], gen)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: write segment header: %w", err)
	}
	l := &Log{f: f, path: path, gen: gen, opts: opts, size: headerSize, lastSync: time.Now()}
	if err := l.fsync(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// OpenAppend reopens an existing segment for appending — the boot path
// after replay has validated (and possibly truncated) it. The header is
// verified against gen.
func OpenAppend(dir string, gen uint64, opts Options) (*Log, error) {
	path := filepath.Join(dir, SegmentName(gen))
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open segment: %w", err)
	}
	var hdr [headerSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %s: short header: %v", ErrCorrupt, path, err)
	}
	if got := checkHeader(hdr, segMagic); got != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, path, got)
	}
	if g := binary.LittleEndian.Uint64(hdr[8:16]); g != gen {
		f.Close()
		return nil, fmt.Errorf("%w: %s: header generation %d, file name says %d", ErrCorrupt, path, g, gen)
	}
	end, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek segment end: %w", err)
	}
	return &Log{f: f, path: path, gen: gen, opts: opts, size: end, lastSync: time.Now()}, nil
}

// checkHeader validates a 16-byte file header's magic and version.
// Versions inside [MinFormatVersion, FormatVersion] are readable; new
// files are always written at FormatVersion.
func checkHeader(hdr [headerSize]byte, magic string) error {
	if string(hdr[:4]) != magic {
		return fmt.Errorf("bad magic %q (want %q)", hdr[:4], magic)
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v < MinFormatVersion || v > FormatVersion {
		return fmt.Errorf("format version %d unsupported (this build reads versions %d through %d)", v, MinFormatVersion, FormatVersion)
	}
	return nil
}

// Gen returns the segment's generation.
func (l *Log) Gen() uint64 { return l.gen }

// Path returns the segment file's path.
func (l *Log) Path() string { return l.path }

// AppendCreate appends a collection-create record: key plus its opaque
// spec encoding (the service stores OracleSpec JSON).
func (l *Log) AppendCreate(key string, spec []byte) error {
	p := l.payload(RecCreate, key)
	p = binary.AppendUvarint(p, uint64(len(spec)))
	p = append(p, spec...)
	return l.appendFrame(p)
}

// AppendDrop appends a collection-drop record.
func (l *Log) AppendDrop(key string) error {
	return l.appendFrame(l.payload(RecDrop, key))
}

// AppendBatch appends one accepted ingest batch. The element ids are
// uvarint-encoded into the log's reusable buffer, so a steady-state
// append allocates nothing.
//
//ecsort:hotpath
func (l *Log) AppendBatch(key string, items []int) error {
	p := l.payload(RecBatch, key)
	p = binary.AppendUvarint(p, uint64(len(items)))
	for _, e := range items {
		p = binary.AppendUvarint(p, uint64(e))
	}
	return l.appendFrame(p)
}

// AppendFlush appends a fold-boundary record for key.
//
//ecsort:hotpath
func (l *Log) AppendFlush(key string) error {
	return l.appendFrame(l.payload(RecFlush, key))
}

// AppendDelete appends a single-element delete record.
func (l *Log) AppendDelete(key string, elem int) error {
	p := l.payload(RecDelete, key)
	p = binary.AppendUvarint(p, uint64(elem))
	return l.appendFrame(p)
}

// AppendInvalidate appends a class-invalidation record, keyed by one
// member element of the invalidated class.
func (l *Log) AppendInvalidate(key string, elem int) error {
	p := l.payload(RecInvalidate, key)
	p = binary.AppendUvarint(p, uint64(elem))
	return l.appendFrame(p)
}

// AppendResilience appends a resilience-profile update record: key plus
// the new profile's opaque encoding (the service stores ResilienceSpec
// JSON).
func (l *Log) AppendResilience(key string, spec []byte) error {
	p := l.payload(RecResilience, key)
	p = binary.AppendUvarint(p, uint64(len(spec)))
	p = append(p, spec...)
	return l.appendFrame(p)
}

// Size returns the segment file's current size in bytes — header plus
// every appended frame. The service's size-based rotation compares it
// against Config.MaxSegmentBytes after each operation.
func (l *Log) Size() int64 { return l.size }

// payload starts a record payload in the reusable buffer, leaving room
// for the frame header: [len u32][crc u32] are back-filled by
// appendFrame.
func (l *Log) payload(typ byte, key string) []byte {
	p := append(l.buf[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	p = append(p, typ)
	p = binary.AppendUvarint(p, uint64(len(key)))
	p = append(p, key...)
	return p
}

// appendFrame back-fills the length and CRC of the encoded payload and
// writes the frame with one Write call.
//
//ecsort:hotpath
func (l *Log) appendFrame(p []byte) error {
	l.buf = p // retain growth for the next append
	payload := p[frameOverhead:]
	binary.LittleEndian.PutUint32(p[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(p[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := l.f.Write(p); err != nil {
		return l.appendErr(err)
	}
	l.size += int64(len(p))
	l.dirty = true
	if c := l.opts.Counters; c != nil {
		c.Appends.Add(1)
		c.Bytes.Add(int64(len(p)))
	}
	return nil
}

// appendErr wraps a write failure with the segment path. Kept out of the
// hot append path so its formatting never costs the steady state an
// allocation.
func (l *Log) appendErr(err error) error {
	return fmt.Errorf("wal: append to %s: %w", l.path, err)
}

// Commit applies the fsync policy at an operation boundary: SyncAlways
// syncs now, SyncInterval syncs if the interval has elapsed since the
// last sync, SyncNever does nothing. The service calls Commit once per
// accepted operation, after all of the operation's records are appended,
// so a multi-record operation costs at most one fsync.
func (l *Log) Commit() error {
	switch l.opts.policy() {
	case SyncAlways:
		return l.Sync()
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opts.interval() {
			return l.Sync()
		}
	}
	return nil
}

// Sync forces dirty bytes to stable storage now, regardless of policy.
func (l *Log) Sync() error {
	if !l.dirty {
		return nil
	}
	return l.fsync()
}

func (l *Log) fsync() error {
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", l.path, err)
	}
	d := time.Since(start)
	l.dirty = false
	l.lastSync = time.Now()
	if c := l.opts.Counters; c != nil {
		c.Fsyncs.Add(1)
		c.FsyncNanos.Add(d.Nanoseconds())
		c.LastFsyncNanos.Store(d.Nanoseconds())
	}
	return nil
}

// Close syncs and closes the segment file.
func (l *Log) Close() error {
	if err := l.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// Segment identifies one on-disk WAL segment file.
type Segment struct {
	// Gen is the generation parsed from the file name.
	Gen uint64
	// Path is the file's full path.
	Path string
}

// Segments lists dir's WAL segment files in ascending generation order.
// Non-segment files (the checkpoint, tmp leftovers) are ignored.
func Segments(dir string) ([]Segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list segments: %w", err)
	}
	var segs []Segment
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		gen, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, Segment{Gen: gen, Path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Gen < segs[j].Gen })
	return segs, nil
}

// RemoveSegmentsBelow deletes every segment of generation < gen — the
// log truncation step after a checkpoint at generation gen has been
// durably written.
func RemoveSegmentsBelow(dir string, gen uint64) error {
	segs, err := Segments(dir)
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if seg.Gen >= gen {
			continue
		}
		if err := os.Remove(seg.Path); err != nil {
			return fmt.Errorf("wal: remove stale segment: %w", err)
		}
	}
	return nil
}
