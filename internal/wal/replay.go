package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Record is one decoded WAL record handed to the replay callback.
type Record struct {
	// Type is one of RecCreate, RecDrop, RecBatch, RecFlush, RecDelete,
	// RecInvalidate, RecResilience.
	Type byte
	// Key is the collection the record applies to.
	Key string
	// Spec is the opaque collection spec (RecCreate) or resilience
	// profile (RecResilience).
	Spec []byte
	// Items is the accepted batch's element ids (RecBatch only).
	Items []int
	// Elem is the element a RecDelete removes, or a member element of the
	// class a RecInvalidate withdraws.
	Elem int
}

// ReplaySummary reports what a Replay pass found.
type ReplaySummary struct {
	// Records is the number of records successfully decoded and applied.
	Records int
	// Segments is the number of segment files visited.
	Segments int
	// LastGen is the highest segment generation seen; 0 when no segment
	// exists at or above the requested floor.
	LastGen uint64
	// TornTail reports that the final segment ended mid-frame (the
	// signature of a crash during an append) and was truncated back to
	// its last complete record.
	TornTail bool
	// TruncatedAt is the file offset the torn segment was truncated to.
	TruncatedAt int64
}

// Replay re-applies dir's record tail: every segment with generation >=
// fromGen, ascending, calling fn for each record in append order. The
// Record passed to fn (including its slices) is only valid during the
// call.
//
// An incomplete final frame in the final segment — a torn tail from a
// crash mid-append — is truncated in place and reported in the summary;
// the records before it are intact by the CRC check. Any other integrity
// failure (a CRC mismatch, an impossible length, a torn frame in a
// non-final segment) aborts with an ErrCorrupt error naming the file and
// byte offset: that is data loss in the middle of the history, and
// silently skipping it would replay a wrong state.
func Replay(dir string, fromGen uint64, fn func(Record) error) (ReplaySummary, error) {
	var sum ReplaySummary
	segs, err := Segments(dir)
	if err != nil {
		return sum, err
	}
	live := segs[:0]
	for _, seg := range segs {
		if seg.Gen >= fromGen {
			live = append(live, seg)
		}
	}
	for i, seg := range live {
		last := i == len(live)-1
		if err := replaySegment(seg, last, &sum, fn); err != nil {
			return sum, err
		}
		sum.Segments++
		sum.LastGen = seg.Gen
	}
	return sum, nil
}

// replaySegment scans one segment file. tolerateTorn is set only for the
// final segment, where a cut-short frame is a crash artifact rather than
// corruption.
func replaySegment(seg Segment, tolerateTorn bool, sum *ReplaySummary, fn func(Record) error) error {
	f, err := os.OpenFile(seg.Path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment for replay: %w", err)
	}
	defer f.Close()
	var hdr [headerSize]byte
	if n, err := io.ReadFull(f, hdr[:]); err != nil {
		if tolerateTorn {
			// A header cut short can only be the crash window inside
			// Create; nothing was ever appended.
			return truncateTorn(f, seg, 0, sum)
		}
		return fmt.Errorf("%w: %s: short header (%d bytes): %v", ErrCorrupt, seg.Path, n, err)
	}
	if err := checkHeader(hdr, segMagic); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrCorrupt, seg.Path, err)
	}
	if g := binary.LittleEndian.Uint64(hdr[8:16]); g != seg.Gen {
		return fmt.Errorf("%w: %s: header generation %d, file name says %d", ErrCorrupt, seg.Path, g, seg.Gen)
	}

	offset := int64(headerSize)
	var frame [frameOverhead]byte
	var payload []byte
	for {
		n, err := io.ReadFull(f, frame[:])
		if err == io.EOF {
			return nil // clean end of segment
		}
		if err != nil { // mid-frame-header EOF
			if tolerateTorn {
				return truncateTorn(f, seg, offset, sum)
			}
			return fmt.Errorf("%w: %s: torn frame header at offset %d (%d of %d bytes)", ErrCorrupt, seg.Path, offset, n, frameOverhead)
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		wantCRC := binary.LittleEndian.Uint32(frame[4:8])
		if length == 0 || length > maxRecordSize {
			if tolerateTorn {
				return truncateTorn(f, seg, offset, sum)
			}
			return fmt.Errorf("%w: %s: impossible record length %d at offset %d", ErrCorrupt, seg.Path, length, offset)
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if n, err := io.ReadFull(f, payload); err != nil {
			if tolerateTorn {
				return truncateTorn(f, seg, offset, sum)
			}
			return fmt.Errorf("%w: %s: torn record payload at offset %d (%d of %d bytes)", ErrCorrupt, seg.Path, offset, n, length)
		}
		if got := crc32.Checksum(payload, castagnoli); got != wantCRC {
			// A full-length record with a bad checksum is corruption even
			// at the tail: the length prefix was intact, so the bytes were
			// written and then damaged. Fail loudly with the location.
			return fmt.Errorf("%w: %s: CRC mismatch at offset %d (record %d): got %#08x, want %#08x",
				ErrCorrupt, seg.Path, offset, sum.Records, got, wantCRC)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return fmt.Errorf("%w: %s: record %d at offset %d: %v", ErrCorrupt, seg.Path, sum.Records, offset, err)
		}
		if err := fn(rec); err != nil {
			return fmt.Errorf("wal: %s: applying record %d at offset %d: %w", seg.Path, sum.Records, offset, err)
		}
		sum.Records++
		offset += int64(frameOverhead) + int64(length)
	}
}

// truncateTorn drops a torn tail: the segment is truncated back to the
// last complete record so the reopened log appends cleanly after it.
func truncateTorn(f *os.File, seg Segment, offset int64, sum *ReplaySummary) error {
	if offset < headerSize {
		// Even the header is incomplete; rewrite it whole so the segment
		// stays openable.
		if err := f.Truncate(0); err != nil {
			return fmt.Errorf("wal: truncate torn segment: %w", err)
		}
		var hdr [headerSize]byte
		copy(hdr[:4], segMagic)
		binary.LittleEndian.PutUint16(hdr[4:6], FormatVersion)
		binary.LittleEndian.PutUint64(hdr[8:16], seg.Gen)
		if _, err := f.WriteAt(hdr[:], 0); err != nil {
			return fmt.Errorf("wal: rewrite torn segment header: %w", err)
		}
		offset = headerSize
	} else if err := f.Truncate(offset); err != nil {
		return fmt.Errorf("wal: truncate torn segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: sync truncated segment: %w", err)
	}
	sum.TornTail = true
	sum.TruncatedAt = offset
	return nil
}

// decodeRecord parses one CRC-validated payload.
func decodeRecord(p []byte) (Record, error) {
	if len(p) == 0 {
		return Record{}, fmt.Errorf("empty payload")
	}
	rec := Record{Type: p[0]}
	rest := p[1:]
	key, rest, err := decodeBytes(rest, "key")
	if err != nil {
		return Record{}, err
	}
	rec.Key = string(key)
	switch rec.Type {
	case RecCreate, RecResilience:
		spec, rest2, err := decodeBytes(rest, "spec")
		if err != nil {
			return Record{}, err
		}
		rec.Spec = spec
		rest = rest2
	case RecDrop, RecFlush:
		// key only
	case RecDelete, RecInvalidate:
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return Record{}, fmt.Errorf("bad element")
		}
		rec.Elem = int(v)
		rest = rest[n:]
	case RecBatch:
		count, n := binary.Uvarint(rest)
		if n <= 0 {
			return Record{}, fmt.Errorf("bad batch count")
		}
		rest = rest[n:]
		if count > uint64(len(rest)) {
			// Each element takes >= 1 byte, so a count beyond the
			// remaining payload is structurally impossible.
			return Record{}, fmt.Errorf("batch count %d exceeds payload", count)
		}
		rec.Items = make([]int, count)
		for i := range rec.Items {
			v, n := binary.Uvarint(rest)
			if n <= 0 {
				return Record{}, fmt.Errorf("bad batch element %d", i)
			}
			rec.Items[i] = int(v)
			rest = rest[n:]
		}
	default:
		return Record{}, fmt.Errorf("unknown record type %d", rec.Type)
	}
	if len(rest) != 0 {
		return Record{}, fmt.Errorf("%d trailing bytes after record", len(rest))
	}
	return rec, nil
}

// decodeBytes reads one uvarint-length-prefixed byte string.
func decodeBytes(p []byte, what string) ([]byte, []byte, error) {
	n64, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, nil, fmt.Errorf("bad %s length", what)
	}
	p = p[n:]
	if n64 > uint64(len(p)) {
		return nil, nil, fmt.Errorf("%s length %d exceeds payload", what, n64)
	}
	return p[:n64], p[n64:], nil
}
