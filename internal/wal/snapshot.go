package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// SnapshotName is the checkpoint file's name within a shard directory.
// The write path stages to SnapshotName + ".tmp" and renames, so a
// checkpoint is either entirely present or entirely absent.
const SnapshotName = "checkpoint.snap"

// CollectionState is one collection's durable state inside a checkpoint:
// the flat answer (core.Answer's one-backing-slice layout: elements
// grouped by class plus the class-offset table), the pending buffer in
// arrival order, counters, and the opaque spec that rebuilds the oracle
// and regimen.
type CollectionState struct {
	// Key is the collection key.
	Key string
	// Spec is the collection's spec encoding (the service stores
	// OracleSpec JSON), replayed through the same validation as a live
	// create.
	Spec []byte
	// Members is the full arrival-order ingest history, for engines that
	// re-sort their whole sub-universe per fold (batch regimens). Engines
	// that fold incrementally leave it nil — their flushed state is fully
	// captured by Elems/Offs.
	Members []int
	// Pending is the buffered-not-yet-folded tail in arrival order.
	Pending []int
	// Elems and Offs are the flat answer: class i of the fold so far
	// occupies Elems[Offs[i]:Offs[i+1]].
	Elems []int
	// Offs is the class-offset table; nil/empty alongside empty Elems for
	// a collection that has never folded.
	Offs []int
	// Ingested, Batches, Flushes restore the collection's counters.
	Ingested int64
	Batches  int64
	Flushes  int64
	// Comparisons, Rounds, MaxRoundSize restore the session cost so
	// recovered stats continue bit-identically.
	Comparisons  int64
	Rounds       int64
	MaxRoundSize int64
}

// Checkpoint is one shard's full durable state at a fold boundary.
type Checkpoint struct {
	// WALGen is the generation of the segment that logically starts
	// after this checkpoint: recovery loads the checkpoint and replays
	// only segments with generation >= WALGen.
	WALGen uint64
	// Collections holds every live collection, sorted by key.
	Collections []CollectionState
}

// WriteCheckpoint atomically replaces dir's checkpoint: encode to a tmp
// file, fsync it, rename over SnapshotName, fsync the directory. A crash
// at any point leaves either the old checkpoint or the new one, never a
// torn mix.
func WriteCheckpoint(dir string, cp *Checkpoint) error {
	payload := encodeCheckpoint(cp)
	var buf []byte
	var hdr [headerSize]byte
	copy(hdr[:4], snapMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], FormatVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], cp.WALGen)
	buf = append(buf, hdr[:]...)
	var frame [frameOverhead]byte
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, frame[:]...)
	buf = append(buf, payload...)

	tmp := filepath.Join(dir, SnapshotName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create checkpoint tmp: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: write checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: sync checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, SnapshotName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: publish checkpoint: %w", err)
	}
	return syncDir(dir)
}

// ReadCheckpoint loads dir's checkpoint. ok is false when none exists
// (a fresh data directory, or one that has never checkpointed). A
// leftover .tmp from a crashed write is removed.
func ReadCheckpoint(dir string) (cp *Checkpoint, ok bool, err error) {
	os.Remove(filepath.Join(dir, SnapshotName+".tmp"))
	path := filepath.Join(dir, SnapshotName)
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("wal: open checkpoint: %w", err)
	}
	defer f.Close()
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, false, fmt.Errorf("%w: %s: short header: %v", ErrCorrupt, path, err)
	}
	if err := checkHeader(hdr, snapMagic); err != nil {
		return nil, false, fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
	}
	gen := binary.LittleEndian.Uint64(hdr[8:16])
	var frame [frameOverhead]byte
	if _, err := io.ReadFull(f, frame[:]); err != nil {
		return nil, false, fmt.Errorf("%w: %s: short frame at offset %d: %v", ErrCorrupt, path, headerSize, err)
	}
	length := binary.LittleEndian.Uint32(frame[0:4])
	wantCRC := binary.LittleEndian.Uint32(frame[4:8])
	if length > maxRecordSize {
		return nil, false, fmt.Errorf("%w: %s: impossible checkpoint length %d", ErrCorrupt, path, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(f, payload); err != nil {
		return nil, false, fmt.Errorf("%w: %s: torn checkpoint payload at offset %d: %v", ErrCorrupt, path, headerSize+frameOverhead, err)
	}
	if got := crc32.Checksum(payload, castagnoli); got != wantCRC {
		return nil, false, fmt.Errorf("%w: %s: CRC mismatch at offset %d: got %#08x, want %#08x",
			ErrCorrupt, path, headerSize, got, wantCRC)
	}
	cp = &Checkpoint{WALGen: gen}
	if err := decodeCheckpoint(payload, cp); err != nil {
		return nil, false, fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
	}
	return cp, true, nil
}

// encodeCheckpoint renders the collection list (everything after the
// header + frame).
func encodeCheckpoint(cp *Checkpoint) []byte {
	var p []byte
	p = binary.AppendUvarint(p, uint64(len(cp.Collections)))
	for i := range cp.Collections {
		cs := &cp.Collections[i]
		p = appendBytes(p, []byte(cs.Key))
		p = appendBytes(p, cs.Spec)
		p = binary.AppendUvarint(p, uint64(cs.Ingested))
		p = binary.AppendUvarint(p, uint64(cs.Batches))
		p = binary.AppendUvarint(p, uint64(cs.Flushes))
		p = binary.AppendUvarint(p, uint64(cs.Comparisons))
		p = binary.AppendUvarint(p, uint64(cs.Rounds))
		p = binary.AppendUvarint(p, uint64(cs.MaxRoundSize))
		p = appendInts(p, cs.Members)
		p = appendInts(p, cs.Pending)
		p = appendInts(p, cs.Elems)
		p = appendInts(p, cs.Offs)
	}
	return p
}

// decodeCheckpoint parses a CRC-validated checkpoint payload.
func decodeCheckpoint(p []byte, cp *Checkpoint) error {
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return fmt.Errorf("bad collection count")
	}
	p = p[n:]
	if count > uint64(len(p))+1 {
		return fmt.Errorf("collection count %d exceeds payload", count)
	}
	cp.Collections = make([]CollectionState, count)
	for i := range cp.Collections {
		cs := &cp.Collections[i]
		var key []byte
		var err error
		if key, p, err = decodeBytes(p, "key"); err != nil {
			return fmt.Errorf("collection %d: %v", i, err)
		}
		cs.Key = string(key)
		if cs.Spec, p, err = decodeBytes(p, "spec"); err != nil {
			return fmt.Errorf("collection %q: %v", cs.Key, err)
		}
		for _, dst := range []*int64{&cs.Ingested, &cs.Batches, &cs.Flushes, &cs.Comparisons, &cs.Rounds, &cs.MaxRoundSize} {
			v, n := binary.Uvarint(p)
			if n <= 0 {
				return fmt.Errorf("collection %q: bad counter", cs.Key)
			}
			*dst = int64(v)
			p = p[n:]
		}
		for _, dst := range []*[]int{&cs.Members, &cs.Pending, &cs.Elems, &cs.Offs} {
			if *dst, p, err = decodeInts(p); err != nil {
				return fmt.Errorf("collection %q: %v", cs.Key, err)
			}
		}
	}
	if len(p) != 0 {
		return fmt.Errorf("%d trailing bytes after checkpoint", len(p))
	}
	return nil
}

// appendBytes writes one uvarint-length-prefixed byte string.
func appendBytes(p, b []byte) []byte {
	p = binary.AppendUvarint(p, uint64(len(b)))
	return append(p, b...)
}

// appendInts writes one uvarint-length-prefixed int slice.
func appendInts(p []byte, ints []int) []byte {
	p = binary.AppendUvarint(p, uint64(len(ints)))
	for _, v := range ints {
		p = binary.AppendUvarint(p, uint64(v))
	}
	return p
}

// decodeInts reads one uvarint-length-prefixed int slice; a zero length
// decodes as nil.
func decodeInts(p []byte) ([]int, []byte, error) {
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, nil, fmt.Errorf("bad int-slice length")
	}
	p = p[n:]
	if count == 0 {
		return nil, p, nil
	}
	if count > uint64(len(p)) {
		return nil, nil, fmt.Errorf("int-slice length %d exceeds payload", count)
	}
	out := make([]int, count)
	for i := range out {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return nil, nil, fmt.Errorf("bad int-slice element %d", i)
		}
		out[i] = int(v)
		p = p[n:]
	}
	return out, p, nil
}

// syncDir fsyncs a directory so a just-renamed file survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}
