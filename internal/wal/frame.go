package wal

// Frame and header primitives, exported for reuse as a wire format.
// The WAL's on-disk framing — a 16-byte magic/version header followed
// by [length u32][CRC32-C u32][payload] frames — is deliberately
// self-contained (this package imports no project code), so the cluster
// transport (internal/cluster) speaks the same frames over TCP: same
// integrity rules, same versioning discipline, one codec to audit.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// HeaderSize is the fixed size of a stream or file header produced by
// NewHeader: magic[4] version[u16] reserved[u16] tag[u64].
const HeaderSize = headerSize

// NewHeader renders a 16-byte header: a 4-byte magic, a little-endian
// version, two reserved zero bytes, and a caller-defined u64 tag
// (segment files store their generation there; stream handshakes may
// use 0).
func NewHeader(magic string, version uint16, tag uint64) [HeaderSize]byte {
	var hdr [HeaderSize]byte
	copy(hdr[:4], magic)
	binary.LittleEndian.PutUint16(hdr[4:6], version)
	binary.LittleEndian.PutUint64(hdr[8:16], tag)
	return hdr
}

// VerifyHeader checks a header's magic and exact version, mirroring the
// segment reader's reject-unknown discipline: a version this build does
// not speak is an error, never something to skip past.
func VerifyHeader(hdr [HeaderSize]byte, magic string, version uint16) error {
	if string(hdr[:4]) != magic {
		return fmt.Errorf("%w: bad magic %q (want %q)", ErrCorrupt, hdr[:4], magic)
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != version {
		return fmt.Errorf("%w: format version %d unsupported (this build speaks version %d)", ErrCorrupt, v, version)
	}
	return nil
}

// AppendFrame appends one framed payload — [len u32][CRC32-C u32] then
// the payload bytes — to dst and returns the extended slice, allocating
// only when dst lacks capacity (pass the previous call's return value
// to amortize, exactly like Log's reusable encode buffer).
func AppendFrame(dst, payload []byte) []byte {
	var frame [frameOverhead]byte
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, frame[:]...)
	return append(dst, payload...)
}

// ReadFrame reads one frame from r, reusing buf when it has capacity,
// and returns the CRC-validated payload. Integrity failures — an
// impossible length, a checksum mismatch — return ErrCorrupt-wrapped
// errors: on a live connection they mean the peer (or the path) is
// damaged, and the caller must drop the connection rather than resync.
// A clean EOF before any frame byte returns io.EOF; an EOF mid-frame
// returns io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var frame [frameOverhead]byte
	if _, err := io.ReadFull(r, frame[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, io.ErrUnexpectedEOF
	}
	length := binary.LittleEndian.Uint32(frame[0:4])
	wantCRC := binary.LittleEndian.Uint32(frame[4:8])
	if length == 0 || length > maxRecordSize {
		return nil, fmt.Errorf("%w: impossible frame length %d", ErrCorrupt, length)
	}
	if cap(buf) < int(length) {
		buf = make([]byte, length)
	}
	buf = buf[:length]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, io.ErrUnexpectedEOF
	}
	if got := crc32.Checksum(buf, castagnoli); got != wantCRC {
		return nil, fmt.Errorf("%w: frame CRC mismatch: got %#08x, want %#08x", ErrCorrupt, got, wantCRC)
	}
	return buf, nil
}
