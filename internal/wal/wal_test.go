package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// collect replays dir from fromGen into a record slice.
func collect(t *testing.T, dir string, fromGen uint64) ([]Record, ReplaySummary) {
	t.Helper()
	var recs []Record
	sum, err := Replay(dir, fromGen, func(r Record) error {
		// The callback's record is only valid during the call; deep-copy.
		cp := Record{Type: r.Type, Key: r.Key, Elem: r.Elem}
		cp.Spec = append([]byte(nil), r.Spec...)
		cp.Items = append([]int(nil), r.Items...)
		recs = append(recs, cp)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs, sum
}

func TestSegmentRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 1, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	spec := []byte(`{"kind":"label","labels":[0,1,0]}`)
	if err := l.AppendCreate("demo", spec); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch("demo", []int{0, 2, 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendFlush("demo"); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch("demo", nil); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendDrop("demo"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	recs, sum := collect(t, dir, 0)
	want := []Record{
		{Type: RecCreate, Key: "demo", Spec: spec},
		{Type: RecBatch, Key: "demo", Items: []int{0, 2, 1}},
		{Type: RecFlush, Key: "demo"},
		{Type: RecBatch, Key: "demo", Items: []int{}},
		{Type: RecDrop, Key: "demo"},
	}
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if recs[i].Type != want[i].Type || recs[i].Key != want[i].Key ||
			string(recs[i].Spec) != string(want[i].Spec) ||
			!reflect.DeepEqual(append([]int{}, recs[i].Items...), append([]int{}, want[i].Items...)) {
			t.Errorf("record %d = %+v, want %+v", i, recs[i], want[i])
		}
	}
	if sum.TornTail || sum.Records != len(want) || sum.Segments != 1 || sum.LastGen != 1 {
		t.Errorf("summary = %+v", sum)
	}
}

func TestReplaySkipsSegmentsBelowGen(t *testing.T) {
	dir := t.TempDir()
	for gen := uint64(1); gen <= 3; gen++ {
		l, err := Create(dir, gen, Options{Policy: SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.AppendFlush("k"); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	recs, sum := collect(t, dir, 2)
	if len(recs) != 2 || sum.Segments != 2 || sum.LastGen != 3 {
		t.Fatalf("got %d records, summary %+v; want 2 records from gens 2..3", len(recs), sum)
	}
	if err := RemoveSegmentsBelow(dir, 3); err != nil {
		t.Fatal(err)
	}
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].Gen != 3 {
		t.Fatalf("segments after removal = %+v, want only gen 3", segs)
	}
}

// TestTornTailTruncated cuts the final record short at several points
// (mid frame header, mid payload) and checks replay drops only the torn
// record, truncates the file, and the segment stays appendable.
func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []int{1, frameOverhead - 1, frameOverhead + 2} {
		dir := t.TempDir()
		l, err := Create(dir, 1, Options{Policy: SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.AppendBatch("k", []int{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		intactSize, err := l.f.Seek(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.AppendFlush("k"); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, SegmentName(1))
		if err := os.Truncate(path, intactSize+int64(cut)); err != nil {
			t.Fatal(err)
		}

		recs, sum := collect(t, dir, 0)
		if len(recs) != 1 || recs[0].Type != RecBatch {
			t.Fatalf("cut=%d: replayed %d records, want the 1 intact batch", cut, len(recs))
		}
		if !sum.TornTail || sum.TruncatedAt != intactSize {
			t.Fatalf("cut=%d: summary = %+v, want torn tail truncated at %d", cut, sum, intactSize)
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != intactSize {
			t.Fatalf("cut=%d: file size %d after truncation, want %d", cut, fi.Size(), intactSize)
		}

		// The truncated segment must accept appends again.
		l2, err := OpenAppend(dir, 1, Options{Policy: SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		if err := l2.AppendDrop("k"); err != nil {
			t.Fatal(err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		recs, _ = collect(t, dir, 0)
		if len(recs) != 2 || recs[1].Type != RecDrop {
			t.Fatalf("cut=%d: after re-append got %d records", cut, len(recs))
		}
	}
}

// TestTornHeaderTruncated covers a crash inside Create itself: a
// segment shorter than its header is reset, not treated as corruption.
func TestTornHeaderTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 1, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, SegmentName(1))
	if err := os.Truncate(path, headerSize-3); err != nil {
		t.Fatal(err)
	}
	recs, sum := collect(t, dir, 0)
	if len(recs) != 0 || !sum.TornTail {
		t.Fatalf("got %d records, summary %+v", len(recs), sum)
	}
	if _, err := OpenAppend(dir, 1, Options{Policy: SyncNever}); err != nil {
		t.Fatalf("reopen after header repair: %v", err)
	}
}

// TestCorruptCRCFailsLoudly flips a payload byte of a non-final record:
// replay must fail with ErrCorrupt naming the file and offset, never
// silently skip.
func TestCorruptCRCFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 1, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch("k", []int{7, 8}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendFlush("k"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, SegmentName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+frameOverhead+2] ^= 0xFF // inside the first record's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Replay(dir, 0, func(Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Replay error = %v, want ErrCorrupt", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, SegmentName(1)) || !strings.Contains(msg, "offset 16") || !strings.Contains(msg, "CRC mismatch") {
		t.Errorf("error %q should name the file, the offset, and the CRC mismatch", msg)
	}
}

func TestCheckpointRoundtrip(t *testing.T) {
	dir := t.TempDir()
	cp := &Checkpoint{
		WALGen: 7,
		Collections: []CollectionState{
			{
				Key: "a", Spec: []byte(`{"kind":"label","labels":[0,0,1]}`),
				Pending: []int{2}, Elems: []int{0, 1}, Offs: []int{0, 2},
				Ingested: 3, Batches: 2, Flushes: 1,
				Comparisons: 5, Rounds: 2, MaxRoundSize: 4,
			},
			{
				Key: "b", Spec: []byte(`{"kind":"label","labels":[0],"algorithm":"er"}`),
				Members: []int{0},
			},
		},
	}
	if err := WriteCheckpoint(dir, cp); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadCheckpoint(dir)
	if err != nil || !ok {
		t.Fatalf("ReadCheckpoint: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, cp) {
		t.Errorf("checkpoint roundtrip:\n got %+v\nwant %+v", got, cp)
	}

	// Overwrite is atomic and leftover tmps are swept.
	if err := os.WriteFile(filepath.Join(dir, SnapshotName+".tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	cp2 := &Checkpoint{WALGen: 8}
	if err := WriteCheckpoint(dir, cp2); err != nil {
		t.Fatal(err)
	}
	got, ok, err = ReadCheckpoint(dir)
	if err != nil || !ok || got.WALGen != 8 || len(got.Collections) != 0 {
		t.Fatalf("second checkpoint: ok=%v err=%v got=%+v", ok, err, got)
	}
	if _, err := os.Stat(filepath.Join(dir, SnapshotName+".tmp")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("tmp leftover not cleaned up")
	}
}

func TestCheckpointAbsentAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := ReadCheckpoint(dir); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v, want absent", ok, err)
	}
	if err := WriteCheckpoint(dir, &Checkpoint{WALGen: 1}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, SnapshotName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadCheckpoint(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt checkpoint: err=%v, want ErrCorrupt", err)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"", SyncInterval, true},
		{"always", SyncAlways, true},
		{"interval", SyncInterval, true},
		{"never", SyncNever, true},
		{"sometimes", "", false},
	} {
		got, err := ParsePolicy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParsePolicy(%q) = %q, %v; want %q, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

// TestCommitPolicies checks the fsync accounting each policy produces.
func TestCommitPolicies(t *testing.T) {
	dir := t.TempDir()
	var ctr Counters
	l, err := Create(dir, 1, Options{Policy: SyncAlways, Counters: &ctr})
	if err != nil {
		t.Fatal(err)
	}
	base := ctr.Fsyncs.Load() // Create itself syncs the header
	for i := 0; i < 3; i++ {
		if err := l.AppendFlush("k"); err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if got := ctr.Fsyncs.Load() - base; got != 3 {
		t.Errorf("always: %d fsyncs for 3 commits, want 3", got)
	}
	if ctr.Appends.Load() != 3 || ctr.Bytes.Load() == 0 {
		t.Errorf("counters = appends %d bytes %d", ctr.Appends.Load(), ctr.Bytes.Load())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var ctr2 Counters
	l2, err := Create(t.TempDir(), 1, Options{Policy: SyncNever, Counters: &ctr2})
	if err != nil {
		t.Fatal(err)
	}
	base = ctr2.Fsyncs.Load()
	for i := 0; i < 3; i++ {
		if err := l2.AppendFlush("k"); err != nil {
			t.Fatal(err)
		}
		if err := l2.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if got := ctr2.Fsyncs.Load() - base; got != 0 {
		t.Errorf("never: %d fsyncs for 3 commits, want 0", got)
	}
	// Close still syncs so a clean shutdown loses nothing.
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := ctr2.Fsyncs.Load() - base; got != 1 {
		t.Errorf("never: %d fsyncs after Close, want 1", got)
	}
}

// TestOpenAppendRejectsWrongGen guards the header/file-name consistency
// check.
func TestOpenAppendRejectsWrongGen(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 1, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(dir, SegmentName(1)), filepath.Join(dir, SegmentName(2))); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenAppend(dir, 2, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenAppend with mismatched generation: %v, want ErrCorrupt", err)
	}
}

// TestFormatVersionWindow: files stamped inside [MinFormatVersion,
// FormatVersion] are readable (v3 only added a record type over v2, so
// an upgraded node must still recover its v2 data); anything outside
// the window is rejected as corruption.
func TestFormatVersionWindow(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 1, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCreate("k", []byte(`{"kind":"label"}`)); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch("k", []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(dir, SegmentName(1))
	stamp := func(path string, v uint16) {
		t.Helper()
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b[4], b[5] = byte(v), byte(v>>8)
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	replayCount := func() (int, error) {
		n := 0
		_, err := Replay(dir, 0, func(Record) error { n++; return nil })
		return n, err
	}

	stamp(segPath, MinFormatVersion)
	if n, err := replayCount(); err != nil || n != 2 {
		t.Fatalf("v%d segment replay: %d records, err %v; want 2, nil", MinFormatVersion, n, err)
	}
	for _, v := range []uint16{MinFormatVersion - 1, FormatVersion + 1} {
		stamp(segPath, v)
		if _, err := replayCount(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("v%d segment: got %v, want ErrCorrupt", v, err)
		}
	}
	stamp(segPath, FormatVersion) // restore for the checkpoint half

	// Checkpoints share the header check and the same window.
	cp := &Checkpoint{WALGen: 2, Collections: []CollectionState{{Key: "k", Spec: []byte(`{}`)}}}
	if err := WriteCheckpoint(dir, cp); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, SnapshotName)
	stamp(snapPath, MinFormatVersion)
	got, ok, err := ReadCheckpoint(dir)
	if err != nil || !ok {
		t.Fatalf("v%d checkpoint read: ok=%v err=%v", MinFormatVersion, ok, err)
	}
	if got.WALGen != 2 || len(got.Collections) != 1 || got.Collections[0].Key != "k" {
		t.Fatalf("v%d checkpoint decoded wrong: %+v", MinFormatVersion, got)
	}
	stamp(snapPath, FormatVersion+1)
	if _, _, err := ReadCheckpoint(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("v%d checkpoint: got %v, want ErrCorrupt", FormatVersion+1, err)
	}
}
