package algo

import (
	"fmt"
	"sort"

	"ecsort/internal/model"
)

// Info describes one registry entry for listings: the GET /v1/algorithms
// endpoint serves the JSON form, and the CLIs render the same rows.
type Info struct {
	// Name is the canonical registry name.
	Name string `json:"name"`
	// Mode is the comparison-model variant ("ER" or "CR"); "any" for
	// auto, which plans across both.
	Mode string `json:"mode"`
	// Hints lists the Hints fields the factory consumes, required ones
	// first (see Required).
	Hints []string `json:"hints,omitempty"`
	// Required lists the hints that must be set for the factory to
	// succeed (e.g. "k" for cr, "lambda" for const-round-er).
	Required []string `json:"required,omitempty"`
	// Rounds is the regimen's round complexity in Valiant's model.
	Rounds string `json:"rounds"`
	// Description is a one-line summary.
	Description string `json:"description"`
}

// entry is one registered factory.
type entry struct {
	info    Info
	aliases []string
	make    func(h Hints) (Algorithm, error)
}

// registry is the fixed table of built-in regimens, in listing order
// (cheapest-round families first, the planner last).
var registry = []entry{
	{
		info: Info{
			Name: "cr", Mode: "CR",
			Hints: []string{"k"}, Required: []string{"k"},
			Rounds:      "O(k + log log n)",
			Description: "Theorem 1 two-phase compounding; k steers the round schedule",
		},
		make: func(h Hints) (Algorithm, error) {
			if h.K < 1 {
				return nil, fmt.Errorf("algo: %q needs hint K >= 1, got %d", "cr", h.K)
			}
			return CR(h.K), nil
		},
	},
	{
		info: Info{
			Name: "cr-unknown-k", Mode: "CR",
			Rounds:      "O(k + log log n)",
			Description: "Theorem 1 compounding with the phase switch adapted to the observed class count",
		},
		aliases: []string{"cr-unknown"},
		make:    func(Hints) (Algorithm, error) { return CRUnknownK(), nil },
	},
	{
		info: Info{
			Name: "er", Mode: "ER",
			Rounds:      "O(k log n)",
			Description: "Theorem 2 level-synchronous merge tree of disjoint representative tests",
		},
		make: func(Hints) (Algorithm, error) { return ER(), nil },
	},
	{
		info: Info{
			Name: "const-round-er", Mode: "ER",
			Hints: []string{"lambda", "d", "max_retries", "seed"}, Required: []string{"lambda"},
			Rounds:      "O(1)",
			Description: "Theorem 4 random-Hamiltonian-cycle regimen; needs smallest class >= lambda*n",
		},
		aliases: []string{"const"},
		make: func(h Hints) (Algorithm, error) {
			if h.Lambda <= 0 || h.Lambda > 0.4 {
				return nil, fmt.Errorf("algo: %q needs hint Lambda in (0, 0.4], got %v", "const-round-er", h.Lambda)
			}
			return ConstRoundER(ConstRoundOpts{Lambda: h.Lambda, D: h.D, MaxRetries: h.retries(), Seed: h.Seed}), nil
		},
	},
	{
		info: Info{
			Name: "const-round-er-adaptive", Mode: "ER",
			Hints:       []string{"lambda", "d", "max_retries", "seed"},
			Rounds:      "O(1) for the final lambda",
			Description: "Theorem 4 without knowing lambda: halve a starting guess after every failure",
		},
		aliases: []string{"const-adaptive"},
		make: func(h Hints) (Algorithm, error) {
			return ConstRoundERAdaptive(ConstRoundOpts{Lambda: h.Lambda, D: h.D, MaxRetries: h.retries(), Seed: h.Seed}), nil
		},
	},
	{
		info: Info{
			Name: "two-class-er", Mode: "ER",
			Hints:       []string{"max_retries", "seed"},
			Rounds:      "O(1)",
			Description: "k = 2 constant-round sort (parallel fault diagnosis reduction); Certify if the promise is untrusted",
		},
		aliases: []string{"two-class"},
		make: func(h Hints) (Algorithm, error) {
			return TwoClassER(h.retries(), h.Seed), nil
		},
	},
	{
		info: Info{
			Name: "round-robin", Mode: "ER",
			Rounds:      "one comparison per round",
			Description: "sequential regimen of Jayapaul et al., the Section 4 analysis subject",
		},
		aliases: []string{"rr"},
		make:    func(Hints) (Algorithm, error) { return RoundRobin(), nil },
	},
	{
		info: Info{
			Name: "naive", Mode: "ER",
			Rounds:      "one comparison per round",
			Description: "sequential one-representative-per-class baseline (<= n*k comparisons)",
		},
		make: func(Hints) (Algorithm, error) { return Naive(), nil },
	},
	{
		info: Info{
			Name: "auto", Mode: "any",
			Hints:       []string{"k", "lambda", "mode", "online", "seed", "d", "max_retries"},
			Rounds:      "cheapest applicable",
			Description: "plans the cheapest applicable regimen from the workload hints and records its choice",
		},
		make: func(h Hints) (Algorithm, error) {
			a := Auto(h)
			if _, err := a.(*auto).Chosen(); err != nil {
				return nil, err
			}
			return a, nil
		},
	},
}

// Infos lists every registered regimen in registry order.
func Infos() []Info {
	out := make([]Info, len(registry))
	for i, e := range registry {
		out[i] = e.info
	}
	return out
}

// Names lists the canonical registry names, sorted.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.info.Name
	}
	sort.Strings(out)
	return out
}

// ByName builds the named regimen from the registry, resolving the
// short CLI aliases ("const", "rr", ...) to their canonical entries.
// The error distinguishes an unknown name from a known regimen whose
// required hints are missing.
func ByName(name string, h Hints) (Algorithm, error) {
	for _, e := range registry {
		if e.info.Name == name {
			return e.make(h)
		}
		for _, a := range e.aliases {
			if a == name {
				return e.make(h)
			}
		}
	}
	return nil, fmt.Errorf("algo: unknown algorithm %q (known: %v)", name, Names())
}

// ModeOf maps an Info.Mode string back to the model constant; ok is
// false for "any".
func ModeOf(mode string) (model.Mode, bool) {
	switch mode {
	case "ER":
		return model.ER, true
	case "CR":
		return model.CR, true
	default:
		return 0, false
	}
}
