package algo

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"ecsort/internal/core"
	"ecsort/internal/model"
	"ecsort/internal/oracle"
)

// balanced builds a label oracle with n elements spread over k classes
// round-robin, so every class has >= floor(n/k) members (lambda-friendly).
func balanced(n, k int, seed int64) (*oracle.Label, []int) {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % k
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })
	return oracle.NewLabel(labels), labels
}

// TestEveryAlgorithmSortsAndCertifies runs each constructor end to end
// through the Algorithm interface and certifies the partition.
func TestEveryAlgorithmSortsAndCertifies(t *testing.T) {
	const n, k = 120, 3
	for _, a := range []Algorithm{
		CR(k),
		CRUnknownK(),
		ER(),
		ConstRoundER(ConstRoundOpts{Lambda: 0.2, D: 10, MaxRetries: 6, Seed: 5}),
		ConstRoundERAdaptive(ConstRoundOpts{Lambda: 0.3, D: 10, MaxRetries: 6, Seed: 5}),
		RoundRobin(),
		Naive(),
	} {
		t.Run(a.Name(), func(t *testing.T) {
			o, labels := balanced(n, k, 77)
			res, err := Run(context.Background(), o, a)
			if err != nil {
				t.Fatal(err)
			}
			if res.Algorithm != a.Name() {
				t.Errorf("Result.Algorithm = %q, want %q", res.Algorithm, a.Name())
			}
			if !core.SameClassification(res.Labels(n), labels) {
				t.Fatal("wrong classification")
			}
			cert := model.NewSession(o, model.ER)
			if err := core.Certify(cert, res.Classes); err != nil {
				t.Fatalf("certificate rejected: %v", err)
			}
		})
	}
}

func TestTwoClassAlgorithm(t *testing.T) {
	o, labels := balanced(100, 2, 9)
	res, err := Run(context.Background(), o, TwoClassER(5, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "two-class-er" {
		t.Errorf("Result.Algorithm = %q", res.Algorithm)
	}
	if !core.SameClassification(res.Labels(100), labels) {
		t.Fatal("wrong classification")
	}
}

// TestAutoPlannerTable pins the planner's choice for each hint
// combination and certifies every choice's output on a matching input.
func TestAutoPlannerTable(t *testing.T) {
	cases := []struct {
		name string
		h    Hints
		want string
		k    int // classes of the input the chosen regimen must solve
	}{
		{"nothing known", Hints{}, "cr-unknown-k", 4},
		{"k known", Hints{K: 5}, "cr", 5},
		{"k=2 unlocks two-class", Hints{K: 2}, "two-class-er", 2},
		{"lambda unlocks const-round", Hints{Lambda: 0.2}, "const-round-er", 3},
		{"lambda beats known k", Hints{K: 4, Lambda: 0.2}, "const-round-er", 4},
		{"CR required ignores lambda", Hints{Lambda: 0.2, Mode: RequireCR}, "cr-unknown-k", 3},
		{"CR required with k", Hints{K: 3, Mode: RequireCR}, "cr", 3},
		{"ER required, nothing known", Hints{Mode: RequireER}, "er", 4},
		{"ER required with k", Hints{K: 6, Mode: RequireER}, "er", 6},
		{"ER required, k=2", Hints{K: 2, Mode: RequireER}, "two-class-er", 2},
		{"ER required with lambda", Hints{Lambda: 0.25, Mode: RequireER}, "const-round-er", 3},
		{"online pins the compounding family", Hints{Online: true, Lambda: 0.2}, "cr-unknown-k", 3},
		{"online with k", Hints{Online: true, K: 4}, "cr", 4},
		{"online but ER required", Hints{Online: true, Mode: RequireER, Lambda: 0.2}, "er", 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			chosen, err := Plan(tc.h)
			if err != nil {
				t.Fatal(err)
			}
			if chosen.Name() != tc.want {
				t.Fatalf("Plan(%+v) = %q, want %q", tc.h, chosen.Name(), tc.want)
			}
			// Auto must delegate to the same choice and record it.
			a := Auto(tc.h)
			if got := a.Name(); got != "auto("+tc.want+")" {
				t.Errorf("Auto name = %q", got)
			}
			o, _ := balanced(120, tc.k, int64(41+tc.k))
			res, err := Run(context.Background(), o, a)
			if err != nil {
				t.Fatal(err)
			}
			if res.Algorithm != tc.want {
				t.Errorf("Result.Algorithm = %q, want %q", res.Algorithm, tc.want)
			}
			cert := model.NewSession(o, model.ER)
			if err := core.Certify(cert, res.Classes); err != nil {
				t.Fatalf("certificate rejected: %v", err)
			}
		})
	}
}

func TestAutoRejectsBadHints(t *testing.T) {
	for _, h := range []Hints{{K: -1}, {Lambda: -0.1}, {Lambda: 0.5}} {
		if _, err := Plan(h); err == nil {
			t.Errorf("Plan(%+v) accepted invalid hints", h)
		}
		if _, err := Run(context.Background(), oracle.NewLabel([]int{0, 1}), Auto(h)); err == nil {
			t.Errorf("Auto(%+v).Sort accepted invalid hints", h)
		}
	}
}

// TestRegistryRoundTrip: every listed regimen is constructible by name
// (given satisfying hints) and reports the listed mode.
func TestRegistryRoundTrip(t *testing.T) {
	hints := Hints{K: 3, Lambda: 0.2, Seed: 1}
	for _, info := range Infos() {
		a, err := ByName(info.Name, hints)
		if err != nil {
			t.Errorf("ByName(%q): %v", info.Name, err)
			continue
		}
		if mode, ok := ModeOf(info.Mode); ok && a.Mode() != mode {
			t.Errorf("%q: Mode() = %v, listed %q", info.Name, a.Mode(), info.Mode)
		}
	}
	if len(Infos()) != len(Names()) {
		t.Errorf("Infos/Names length mismatch")
	}
}

func TestRegistryAliasesAndErrors(t *testing.T) {
	for alias, want := range map[string]string{
		"rr":             "round-robin",
		"const":          "const-round-er",
		"const-adaptive": "const-round-er-adaptive",
		"two-class":      "two-class-er",
		"cr-unknown":     "cr-unknown-k",
	} {
		a, err := ByName(alias, Hints{Lambda: 0.2})
		if err != nil {
			t.Errorf("alias %q: %v", alias, err)
			continue
		}
		if a.Name() != want {
			t.Errorf("alias %q resolved to %q, want %q", alias, a.Name(), want)
		}
	}
	if _, err := ByName("nope", Hints{}); err == nil {
		t.Error("unknown name accepted")
	}
	if _, err := ByName("cr", Hints{}); err == nil {
		t.Error("cr without K accepted")
	}
	if _, err := ByName("const-round-er", Hints{}); err == nil {
		t.Error("const-round-er without Lambda accepted")
	}
}

// TestRegistryErrorPaths pins the factory error behaviour the registry
// documents: boundary hint values, the auto entry surfacing its planner
// error, and error messages actionable enough to fix the call.
func TestRegistryErrorPaths(t *testing.T) {
	if _, err := ByName("const-round-er", Hints{Lambda: 0.41}); err == nil {
		t.Error("const-round-er accepted Lambda above 0.4")
	}
	if _, err := ByName("const-round-er", Hints{Lambda: 0.4}); err != nil {
		t.Errorf("const-round-er rejected boundary Lambda 0.4: %v", err)
	}
	if _, err := ByName("const-round-er", Hints{Lambda: -0.1}); err == nil {
		t.Error("const-round-er accepted negative Lambda")
	}
	if _, err := ByName("cr", Hints{K: -3}); err == nil {
		t.Error("cr accepted negative K")
	}
	if _, err := ByName("auto", Hints{K: -1}); err == nil {
		t.Error("auto entry accepted hints its planner rejects")
	}
	if _, err := ByName("auto", Hints{Lambda: 0.5}); err == nil {
		t.Error("auto entry accepted an out-of-range Lambda hint")
	}
	if a, err := ByName("auto", Hints{K: 2}); err != nil || a == nil {
		t.Errorf("auto entry with valid hints: %v", err)
	}
	_, err := ByName("nope", Hints{})
	if err == nil || !strings.Contains(err.Error(), "naive") {
		t.Errorf("unknown-name error should list known names, got: %v", err)
	}
	if _, err := ByName("cr", Hints{}); err == nil || !strings.Contains(err.Error(), "K >= 1") {
		t.Errorf("cr error should name the missing hint, got: %v", err)
	}
}

// TestRegistryTableInvariants checks the registry data itself: no name
// or alias collisions, required hints listed among consumed hints, and
// ModeOf round-tripping every listed mode.
func TestRegistryTableInvariants(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range registry {
		for _, name := range append([]string{e.info.Name}, e.aliases...) {
			if seen[name] {
				t.Errorf("registry name/alias %q registered twice", name)
			}
			seen[name] = true
		}
		hints := map[string]bool{}
		for _, h := range e.info.Hints {
			hints[h] = true
		}
		for _, r := range e.info.Required {
			if !hints[r] {
				t.Errorf("%q: required hint %q not listed in Hints", e.info.Name, r)
			}
		}
		if _, ok := ModeOf(e.info.Mode); !ok && e.info.Mode != "any" {
			t.Errorf("%q: unmappable mode %q", e.info.Name, e.info.Mode)
		}
	}
	if _, ok := ModeOf("any"); ok {
		t.Error(`ModeOf("any") should not map to a model constant`)
	}
	if m, ok := ModeOf("ER"); !ok || m != model.ER {
		t.Error(`ModeOf("ER") mismatch`)
	}
	if m, ok := ModeOf("CR"); !ok || m != model.CR {
		t.Error(`ModeOf("CR") mismatch`)
	}
}

// cancellingOracle cancels its context after a fixed number of tests.
type cancellingOracle struct {
	inner  model.Oracle
	after  int64
	count  atomic.Int64
	cancel context.CancelFunc
}

func (c *cancellingOracle) N() int { return c.inner.N() }

func (c *cancellingOracle) Same(i, j int) bool {
	if c.count.Add(1) == c.after {
		c.cancel()
	}
	return c.inner.Same(i, j)
}

// TestSortCancellation: a context cancelled mid-sort stops every
// regimen between rounds with ctx.Err().
func TestSortCancellation(t *testing.T) {
	const n = 2048
	for _, a := range []Algorithm{CR(8), ER(), RoundRobin(), Naive()} {
		t.Run(a.Name(), func(t *testing.T) {
			base, _ := balanced(n, 8, 13)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			o := &cancellingOracle{inner: base, after: 500, cancel: cancel}
			_, err := Run(ctx, o, a)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			// The sort must have stopped promptly: well short of the
			// comparisons a full run would charge (n*k/2 at minimum).
			if got := o.count.Load(); got > 3*n {
				t.Errorf("sort kept comparing after cancel: %d tests", got)
			}
		})
	}
}

// TestSortAlreadyCancelled: a dead context fails before any comparison.
func TestSortAlreadyCancelled(t *testing.T) {
	o, _ := balanced(256, 4, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, a := range []Algorithm{CR(4), ER(), RoundRobin(), Naive()} {
		_, err := Run(ctx, o, a)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", a.Name(), err)
		}
	}
}

func TestRunNilAlgorithm(t *testing.T) {
	if _, err := Run(context.Background(), oracle.NewLabel([]int{0, 1}), nil); err == nil {
		t.Fatal("nil algorithm accepted")
	}
}

func ExamplePlan() {
	for _, h := range []Hints{{}, {K: 2}, {Lambda: 0.2}, {Mode: RequireER}} {
		a, _ := Plan(h)
		fmt.Println(a.Name())
	}
	// Output:
	// cr-unknown-k
	// two-class-er
	// const-round-er
	// er
}
