package algo

import (
	"context"
	"fmt"

	"ecsort/internal/core"
	"ecsort/internal/model"
)

// ModeHint constrains which comparison-model variant the planner may
// pick. The zero value places no constraint.
type ModeHint int

const (
	// AnyMode lets the planner use either model variant.
	AnyMode ModeHint = iota
	// RequireER restricts the plan to exclusive-read regimens — the
	// elements perform the tests themselves (handshakes, fault probes).
	RequireER
	// RequireCR restricts the plan to concurrent-read regimens —
	// elements are passive objects an outside processor compares.
	RequireCR
)

// String returns "any", "ER", or "CR".
func (m ModeHint) String() string {
	switch m {
	case RequireER:
		return "ER"
	case RequireCR:
		return "CR"
	default:
		return "any"
	}
}

// Hints describes what a caller knows about a workload, for Auto and
// the registry factories. The zero value means "nothing is known".
type Hints struct {
	// K is the number of equivalence classes if known, 0 if not. K = 2
	// unlocks the constant-round two-class regimen.
	K int
	// Lambda is a guaranteed lower bound on (smallest class size)/n in
	// (0, 0.4], 0 if unknown. A positive Lambda unlocks the O(1)-round
	// Theorem 4 regimen.
	Lambda float64
	// Mode constrains the comparison-model variant.
	Mode ModeHint
	// Online marks workloads whose elements arrive over time; the
	// planner then prefers the compounding CR family, the engine behind
	// the incremental sorter, whose schedule stays cheap under
	// repeated folds.
	Online bool
	// Seed drives randomized regimens.
	Seed int64
	// D overrides the Hamiltonian-cycle count of the constant-round
	// regimens (0: theory constant).
	D int
	// MaxRetries bounds redraws of the constant-round random graphs
	// (0: defaultRetries for planned/registry-built regimens).
	MaxRetries int
}

// defaultRetries is applied when a factory or the planner builds a
// randomized regimen and the caller left MaxRetries at zero — one
// attempt with no retry is almost never what a hint-driven caller
// wants.
const defaultRetries = 5

func (h Hints) retries() int {
	if h.MaxRetries > 0 {
		return h.MaxRetries
	}
	return defaultRetries
}

func (h Hints) validate() error {
	if h.K < 0 {
		return fmt.Errorf("algo: hint K = %d is negative", h.K)
	}
	if h.Lambda < 0 || h.Lambda > 0.4 {
		return fmt.Errorf("algo: hint Lambda = %v outside [0, 0.4]", h.Lambda)
	}
	return nil
}

// Plan picks the cheapest applicable regimen for the hinted workload,
// ordering candidates by round complexity in Valiant's model:
//
//	O(1)            two-class-er (K = 2), const-round-er (Lambda > 0) — ER
//	O(k + log log n) cr / cr-unknown-k — CR
//	O(k log n)       er — ER, always applicable
//
// Online workloads are pinned to the compounding CR family when the
// mode allows it (that schedule is what the incremental sorter folds
// batches with); the constant-round regimens need the whole input at
// once, so they are never planned for online workloads.
//
//ecsort:ignore registrycomplete reached via Auto, the registry's "auto" entry
func Plan(h Hints) (Algorithm, error) {
	if err := h.validate(); err != nil {
		return nil, err
	}
	erOK := h.Mode == AnyMode || h.Mode == RequireER
	crOK := h.Mode == AnyMode || h.Mode == RequireCR
	switch {
	case h.Online:
		if crOK {
			return planCR(h), nil
		}
		return ER(), nil
	case erOK && h.K == 2:
		return TwoClassER(h.retries(), h.Seed), nil
	case erOK && h.Lambda > 0:
		return ConstRoundER(ConstRoundOpts{Lambda: h.Lambda, D: h.D, MaxRetries: h.retries(), Seed: h.Seed}), nil
	case crOK:
		return planCR(h), nil
	default:
		return ER(), nil
	}
}

func planCR(h Hints) Algorithm {
	if h.K > 0 {
		return CR(h.K)
	}
	return CRUnknownK()
}

// Auto is the planner as an Algorithm: it picks the cheapest applicable
// regimen for h up front and delegates to it, so Result.Algorithm
// records the regimen actually run. Invalid hints surface as the Sort
// error.
func Auto(h Hints) Algorithm {
	chosen, err := Plan(h)
	return &auto{chosen: chosen, err: err}
}

type auto struct {
	chosen Algorithm
	err    error
}

// Name returns "auto(<chosen>)", or "auto" when planning failed.
func (a *auto) Name() string {
	if a.err != nil {
		return "auto"
	}
	return "auto(" + a.chosen.Name() + ")"
}

// Mode returns the planned regimen's mode (ER when planning failed, so
// a session can still be built before Sort surfaces the error).
func (a *auto) Mode() model.Mode {
	if a.err != nil {
		return model.ER
	}
	return a.chosen.Mode()
}

// Chosen exposes the planned regimen, for tests and introspection.
func (a *auto) Chosen() (Algorithm, error) { return a.chosen, a.err }

func (a *auto) Sort(ctx context.Context, s *model.Session) (core.Result, error) {
	if a.err != nil {
		return core.Result{}, a.err
	}
	return a.chosen.Sort(ctx, s)
}
