package algo

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"ecsort/internal/core"
	"ecsort/internal/model"
	rt "ecsort/internal/runtime"
)

// maskBatch hides an oracle's batch capability so the session takes the
// per-pair path; the batch run must be indistinguishable from it.
type maskBatch struct{ o model.Oracle }

func (m maskBatch) N() int             { return m.o.N() }
func (m maskBatch) Same(i, j int) bool { return m.o.Same(i, j) }

// TestRegistryBatchEquivalence runs EVERY registry regimen twice per
// worker count — once over the batch-capable label oracle, once with
// the capability masked — and requires bit-identical classes, stats,
// and physical round logs. Batch dispatch changes who answers a chunk,
// never what is asked or charged.
func TestRegistryBatchEquivalence(t *testing.T) {
	pool := rt.NewPool(4)
	defer pool.Close()
	hints := Hints{K: 3, Lambda: 0.2, Seed: 1}
	for _, info := range Infos() {
		k := 3
		if info.Name == "two-class-er" {
			k = 2 // the regimen's promise
		}
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", info.Name, workers), func(t *testing.T) {
				run := func(mask bool) (core.Result, []int) {
					a, err := ByName(info.Name, hints)
					if err != nil {
						t.Fatalf("ByName(%q): %v", info.Name, err)
					}
					var o model.Oracle
					o, _ = balanced(240, k, 7)
					if _, ok := o.(model.BatchOracle); !ok {
						t.Fatal("label oracle must be batch-capable for this test to bite")
					}
					if mask {
						o = maskBatch{o}
					}
					s := model.NewSession(o, a.Mode(),
						model.Workers(workers), model.WithPool(pool), model.WithRoundLog())
					res, err := a.Sort(context.Background(), s)
					if err != nil {
						t.Fatalf("%q mask=%v: %v", info.Name, mask, err)
					}
					return res, s.RoundLog()
				}
				batch, batchLog := run(false)
				plain, plainLog := run(true)
				if !reflect.DeepEqual(batch.Classes, plain.Classes) {
					t.Errorf("classes diverge: batch %v, per-pair %v", batch.Classes, plain.Classes)
				}
				if batch.Stats != plain.Stats {
					t.Errorf("stats diverge: batch %+v, per-pair %+v", batch.Stats, plain.Stats)
				}
				if !reflect.DeepEqual(batchLog, plainLog) {
					t.Errorf("round logs diverge: batch %v, per-pair %v", batchLog, plainLog)
				}
				if batch.Algorithm != plain.Algorithm {
					t.Errorf("algorithm names diverge: %q vs %q", batch.Algorithm, plain.Algorithm)
				}
			})
		}
	}
}
