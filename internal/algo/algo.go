// Package algo turns the equivalence class sorting regimens of
// internal/core into first-class values: an Algorithm carries its name,
// the comparison-model variant it needs, and a context-aware Sort over a
// model.Session. On top of the values the package keeps a name→factory
// registry (the single dispatch point for the CLIs and the service) and
// a planner, Auto, that picks the cheapest applicable regimen from
// workload hints — mirroring how the partitioning-sorting literature
// treats algorithm selection as a tunable decision rather than a
// caller-side switch statement.
package algo

import (
	"context"
	"fmt"
	"math/rand"

	"ecsort/internal/core"
	"ecsort/internal/model"
)

// Algorithm is one equivalence class sorting regimen as a value: it
// knows its registry name, the read-concurrency mode its session must
// be in, and how to run itself. Sort installs ctx on the session, so
// cancellation is checked between physical rounds and the sort returns
// ctx.Err() promptly. Algorithm values are stateless and safe to reuse
// across sorts and goroutines (randomized regimens re-seed their rng
// from the configured seed on every Sort, so repeated runs are
// reproducible).
type Algorithm interface {
	// Name is the regimen's registry name, recorded in Result.Algorithm.
	Name() string
	// Mode is the comparison-model variant the session must be in.
	Mode() model.Mode
	// Sort runs the regimen on s, checking ctx between physical rounds.
	Sort(ctx context.Context, s *model.Session) (core.Result, error)
}

// alg is the common Algorithm implementation: a name, a mode, and a
// closure over the core entry point.
type alg struct {
	name string
	mode model.Mode
	run  func(s *model.Session) (core.Result, error)
}

func (a alg) Name() string     { return a.name }
func (a alg) Mode() model.Mode { return a.mode }

func (a alg) Sort(ctx context.Context, s *model.Session) (core.Result, error) {
	if ctx != nil {
		s.SetContext(ctx)
	}
	res, err := a.run(s)
	if err != nil {
		return core.Result{}, err
	}
	res.Algorithm = a.name
	return res, nil
}

// CR is the Theorem 1 regimen: O(k + log log n) rounds in the
// concurrent-read model via two-phase compounding. k must be the class
// count or an upper bound (correct for any k ≥ 1; k only steers the
// round schedule).
func CR(k int) Algorithm {
	return alg{name: "cr", mode: model.CR, run: func(s *model.Session) (core.Result, error) {
		return core.SortCR(s, k)
	}}
}

// CRUnknownK is the Theorem 1 regimen with no prior knowledge of k,
// adapting the compounding schedule to the largest class count observed.
func CRUnknownK() Algorithm {
	return alg{name: "cr-unknown-k", mode: model.CR, run: core.SortCRUnknownK}
}

// ER is the Theorem 2 regimen: O(k log n) rounds in the exclusive-read
// model, no knowledge of k required.
func ER() Algorithm {
	return alg{name: "er", mode: model.ER, run: core.SortER}
}

// ConstRoundOpts configures the randomized constant-round regimens.
type ConstRoundOpts struct {
	// Lambda is the guaranteed lower bound on (smallest class size)/n,
	// in (0, 0.4]. Required for ConstRoundER; the starting guess
	// (default 0.4) for ConstRoundERAdaptive.
	Lambda float64
	// D overrides the number of random Hamiltonian cycles; 0 selects
	// the theory constant d(λ).
	D int
	// MaxRetries redraws the random graph after a failure.
	MaxRetries int
	// Seed drives the random cycles; every Sort call re-seeds, so runs
	// are reproducible.
	Seed int64
}

// ConstRoundER is the Theorem 4 regimen: O(1) rounds in the
// exclusive-read model when every class has at least Lambda·n elements.
func ConstRoundER(opt ConstRoundOpts) Algorithm {
	return alg{name: "const-round-er", mode: model.ER, run: func(s *model.Session) (core.Result, error) {
		return core.SortConstRoundER(s, core.ConstRoundConfig{
			Lambda:     opt.Lambda,
			D:          opt.D,
			MaxRetries: opt.MaxRetries,
			Rng:        rand.New(rand.NewSource(opt.Seed)),
		})
	}}
}

// ConstRoundERAdaptive is the Theorem 4 regimen without knowing λ,
// halving opt.Lambda (default 0.4) after every failure per the paper's
// remark.
func ConstRoundERAdaptive(opt ConstRoundOpts) Algorithm {
	return alg{name: "const-round-er-adaptive", mode: model.ER, run: func(s *model.Session) (core.Result, error) {
		res, _, err := core.SortConstRoundERAdaptive(s, core.AdaptiveConstRoundConfig{
			StartLambda: opt.Lambda,
			D:           opt.D,
			MaxRetries:  opt.MaxRetries,
			Rng:         rand.New(rand.NewSource(opt.Seed)),
		})
		return res, err
	}}
}

// TwoClassER is the k = 2 constant-round regimen from the paper's
// conclusion: O(1) ER rounds for inputs promised to have at most two
// classes, with no lower bound on the smaller one. If the promise might
// be false, Certify the result.
func TwoClassER(maxRetries int, seed int64) Algorithm {
	return alg{name: "two-class-er", mode: model.ER, run: func(s *model.Session) (core.Result, error) {
		return core.SortTwoClassER(s, maxRetries, rand.New(rand.NewSource(seed)))
	}}
}

// RoundRobin is the sequential regimen of Jayapaul et al. whose
// comparison count Section 4 of the paper bounds distribution by
// distribution; one comparison per round.
func RoundRobin() Algorithm {
	return alg{name: "round-robin", mode: model.ER, run: core.RoundRobin}
}

// Naive is the sequential one-representative-per-class baseline
// (≤ n·k comparisons).
func Naive() Algorithm {
	return alg{name: "naive", mode: model.ER, run: core.Naive}
}

// Run is the one-call entry point: build a session over o in a's mode
// with the given options and sort. It is the substrate the facade's
// Sort and Classify stand on.
func Run(ctx context.Context, o model.Oracle, a Algorithm, opts ...model.Option) (core.Result, error) {
	if a == nil {
		return core.Result{}, fmt.Errorf("algo: nil Algorithm")
	}
	return a.Sort(ctx, model.NewSession(o, a.Mode(), opts...))
}
