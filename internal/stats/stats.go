// Package stats provides the small statistical toolkit behind the paper's
// Section 5 analysis: least-squares line fits with goodness-of-fit
// measures (the "best fit lines" of Figure 5) and basic summaries.
package stats

import (
	"fmt"
	"math"
)

// Fit is a least-squares line y = Slope·x + Intercept with goodness
// measures over the fitted points.
type Fit struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination.
	R2 float64
	// MaxRelResidual is max |y − ŷ| / ŷ over the points — the paper
	// remarks the zeta s=2 data varies "by as much as 10%" around its
	// fit, while the other distributions are visually on the line.
	MaxRelResidual float64
}

// LeastSquares fits a line to the points (x[i], y[i]). It panics if the
// slices differ in length or fewer than 2 points are given, or if all x
// are identical.
func LeastSquares(x, y []float64) Fit {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: mismatched lengths %d vs %d", len(x), len(y)))
	}
	if len(x) < 2 {
		panic("stats: need at least 2 points")
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy float64
	for i := range x {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx == 0 {
		panic("stats: degenerate fit, all x identical")
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	var ssRes, ssTot, maxRel float64
	for i := range x {
		pred := slope*x[i] + intercept
		r := y[i] - pred
		ssRes += r * r
		d := y[i] - my
		ssTot += d * d
		if pred != 0 {
			if rel := math.Abs(r / pred); rel > maxRel {
				maxRel = rel
			}
		}
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2, MaxRelResidual: maxRel}
}

// Predict evaluates the fitted line at x.
func (f Fit) Predict(x float64) float64 { return f.Slope*x + f.Intercept }

// Summary holds basic sample statistics.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	RelSpread      float64 // (Max − Min) / Mean, 0 if Mean == 0
	StdOverMean    float64 // coefficient of variation, 0 if Mean == 0
	Sum            float64
	SumIsOverflown bool
}

// Summarize computes summary statistics of xs. It panics on an empty
// sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, v := range xs {
		s.Sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = s.Sum / float64(len(xs))
	var ss float64
	for _, v := range xs {
		d := v - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	if s.Mean != 0 {
		s.RelSpread = (s.Max - s.Min) / s.Mean
		s.StdOverMean = s.Std / s.Mean
	}
	s.SumIsOverflown = math.IsInf(s.Sum, 0)
	return s
}

// LogLogSlope estimates the exponent b of a power law y ≈ a·x^b by a
// least-squares fit in log–log space. Used to check super-linearity of
// the zeta s < 2 series and the n²/f shape of the lower-bound sweeps.
// All inputs must be positive.
func LogLogSlope(x, y []float64) float64 {
	lx := make([]float64, len(x))
	ly := make([]float64, len(y))
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			panic("stats: log-log fit needs positive data")
		}
		lx[i] = math.Log(x[i])
		ly[i] = math.Log(y[i])
	}
	return LeastSquares(lx, ly).Slope
}
