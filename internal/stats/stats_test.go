package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExactLine(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{3, 5, 7, 9, 11} // y = 2x + 1
	f := LeastSquares(x, y)
	if math.Abs(f.Slope-2) > 1e-12 || math.Abs(f.Intercept-1) > 1e-12 {
		t.Fatalf("fit = %+v, want slope 2 intercept 1", f)
	}
	if f.R2 < 1-1e-12 {
		t.Fatalf("R2 = %v, want 1", f.R2)
	}
	if f.MaxRelResidual > 1e-12 {
		t.Fatalf("MaxRelResidual = %v, want 0", f.MaxRelResidual)
	}
	if p := f.Predict(10); math.Abs(p-21) > 1e-12 {
		t.Fatalf("Predict(10) = %v, want 21", p)
	}
}

func TestNoisyLineR2(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var x, y []float64
	for i := 1; i <= 50; i++ {
		x = append(x, float64(i))
		y = append(y, 3*float64(i)+10+rng.NormFloat64())
	}
	f := LeastSquares(x, y)
	if math.Abs(f.Slope-3) > 0.1 {
		t.Errorf("slope = %v, want ≈3", f.Slope)
	}
	if f.R2 < 0.99 {
		t.Errorf("R2 = %v, want > 0.99", f.R2)
	}
}

func TestLeastSquaresPanics(t *testing.T) {
	cases := []func(){
		func() { LeastSquares([]float64{1}, []float64{1}) },
		func() { LeastSquares([]float64{1, 2}, []float64{1}) },
		func() { LeastSquares([]float64{2, 2, 2}, []float64{1, 2, 3}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

// TestFitRecoversRandomLines: property test that noiseless lines are
// recovered exactly (up to float error).
func TestFitRecoversRandomLines(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		slope := rng.Float64()*20 - 10
		intercept := rng.Float64()*100 - 50
		var x, y []float64
		for i := 0; i < 10; i++ {
			xi := rng.Float64() * 1000
			x = append(x, xi)
			y = append(y, slope*xi+intercept)
		}
		// Guard the degenerate all-equal-x case.
		allSame := true
		for _, xi := range x {
			if xi != x[0] {
				allSame = false
			}
		}
		if allSame {
			return true
		}
		fit := LeastSquares(x, y)
		return math.Abs(fit.Slope-slope) < 1e-6 && math.Abs(fit.Intercept-intercept) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary = %+v", s)
	}
	// Sample std of this classic data set is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("Std = %v, want %v", s.Std, want)
	}
	if math.Abs(s.RelSpread-7.0/5.0) > 1e-12 {
		t.Fatalf("RelSpread = %v", s.RelSpread)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3})
	if s.Std != 0 || s.Mean != 3 || s.Min != 3 || s.Max != 3 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Summarize(nil)
}

func TestLogLogSlope(t *testing.T) {
	// y = 5·x² should give slope 2.
	var x, y []float64
	for i := 1; i <= 20; i++ {
		x = append(x, float64(i))
		y = append(y, 5*float64(i)*float64(i))
	}
	if got := LogLogSlope(x, y); math.Abs(got-2) > 1e-9 {
		t.Fatalf("slope = %v, want 2", got)
	}
	// y = 3·x^1.5.
	y = y[:0]
	for i := 1; i <= 20; i++ {
		y = append(y, 3*math.Pow(float64(i), 1.5))
	}
	if got := LogLogSlope(x, y); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("slope = %v, want 1.5", got)
	}
}

func TestLogLogSlopePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	LogLogSlope([]float64{1, 0}, []float64{1, 2})
}
