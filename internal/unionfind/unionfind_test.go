package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSingletons(t *testing.T) {
	d := New(5)
	if d.Len() != 5 {
		t.Fatalf("Len = %d, want 5", d.Len())
	}
	if d.Sets() != 5 {
		t.Fatalf("Sets = %d, want 5", d.Sets())
	}
	for i := 0; i < 5; i++ {
		if r := d.Find(i); r != i {
			t.Errorf("Find(%d) = %d, want %d", i, r, i)
		}
		if s := d.SizeOf(i); s != 1 {
			t.Errorf("SizeOf(%d) = %d, want 1", i, s)
		}
	}
}

func TestUnionBasics(t *testing.T) {
	d := New(4)
	if _, merged := d.Union(0, 1); !merged {
		t.Fatal("Union(0,1) did not merge")
	}
	if _, merged := d.Union(0, 1); merged {
		t.Fatal("second Union(0,1) reported a merge")
	}
	if !d.Same(0, 1) {
		t.Error("0 and 1 should be together")
	}
	if d.Same(0, 2) {
		t.Error("0 and 2 should be apart")
	}
	if d.Sets() != 3 {
		t.Errorf("Sets = %d, want 3", d.Sets())
	}
	if d.SizeOf(1) != 2 {
		t.Errorf("SizeOf(1) = %d, want 2", d.SizeOf(1))
	}
}

func TestUnionReturnsRoot(t *testing.T) {
	d := New(6)
	r, _ := d.Union(2, 3)
	if d.Find(2) != r || d.Find(3) != r {
		t.Errorf("Union root %d is not the root of both members", r)
	}
}

func TestGroupsOrdering(t *testing.T) {
	d := New(6)
	d.Union(5, 1)
	d.Union(2, 4)
	groups := d.Groups()
	want := [][]int{{0}, {1, 5}, {2, 4}, {3}}
	if len(groups) != len(want) {
		t.Fatalf("got %d groups, want %d: %v", len(groups), len(want), groups)
	}
	for i := range want {
		if len(groups[i]) != len(want[i]) {
			t.Fatalf("group %d = %v, want %v", i, groups[i], want[i])
		}
		for j := range want[i] {
			if groups[i][j] != want[i][j] {
				t.Fatalf("group %d = %v, want %v", i, groups[i], want[i])
			}
		}
	}
}

func TestLabelsCanonical(t *testing.T) {
	d := New(5)
	d.Union(0, 4)
	d.Union(1, 3)
	labels := d.Labels()
	want := []int{0, 1, 2, 1, 0}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("Labels = %v, want %v", labels, want)
		}
	}
}

// naivePartition mirrors DSU semantics with an O(n²) relabeling scheme.
type naivePartition struct{ label []int }

func newNaive(n int) *naivePartition {
	p := &naivePartition{label: make([]int, n)}
	for i := range p.label {
		p.label[i] = i
	}
	return p
}

func (p *naivePartition) union(a, b int) {
	la, lb := p.label[a], p.label[b]
	if la == lb {
		return
	}
	for i, l := range p.label {
		if l == lb {
			p.label[i] = la
		}
	}
}

func (p *naivePartition) same(a, b int) bool { return p.label[a] == p.label[b] }

func (p *naivePartition) sets() int {
	seen := map[int]bool{}
	for _, l := range p.label {
		seen[l] = true
	}
	return len(seen)
}

// TestQuickAgainstNaive drives random union sequences through both the DSU
// and a naive partition and checks they always agree on Same, Sets, and
// set sizes.
func TestQuickAgainstNaive(t *testing.T) {
	f := func(seed int64, opsRaw []uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		d := New(n)
		p := newNaive(n)
		for _, op := range opsRaw {
			a := int(op) % n
			b := int(op>>8) % n
			if a == b {
				continue
			}
			d.Union(a, b)
			p.union(a, b)
		}
		if d.Sets() != p.sets() {
			return false
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if d.Same(i, j) != p.same(i, j) {
					return false
				}
			}
			sz := 0
			for j := 0; j < n; j++ {
				if p.same(i, j) {
					sz++
				}
			}
			if d.SizeOf(i) != sz {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestGroupsPartition checks Groups always returns a partition of 0..n-1.
func TestGroupsPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		d := New(n)
		for i := 0; i < n; i++ {
			d.Union(rng.Intn(n), rng.Intn(n)%n)
		}
		seen := make([]bool, n)
		count := 0
		for _, g := range d.Groups() {
			for _, e := range g {
				if seen[e] {
					return false
				}
				seen[e] = true
				count++
			}
		}
		return count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSelfUnionIsNoop(t *testing.T) {
	d := New(3)
	if _, merged := d.Union(1, 1); merged {
		t.Fatal("Union(x,x) must not merge")
	}
	if d.Sets() != 3 {
		t.Fatalf("Sets = %d, want 3", d.Sets())
	}
}

func TestReset(t *testing.T) {
	d := New(6)
	d.Union(0, 1)
	d.Union(2, 3)
	d.Union(0, 3)

	// Shrinking reset: clean singletons, old state gone.
	d.Reset(4)
	if d.Len() != 4 || d.Sets() != 4 {
		t.Fatalf("after Reset(4): Len=%d Sets=%d", d.Len(), d.Sets())
	}
	for i := 0; i < 4; i++ {
		if d.Find(i) != i || d.SizeOf(i) != 1 {
			t.Fatalf("element %d not a singleton after reset", i)
		}
	}
	d.Union(1, 2)
	if !d.Same(1, 2) || d.Sets() != 3 {
		t.Fatalf("post-reset union broken: Sets=%d", d.Sets())
	}

	// Growing reset past the original capacity reallocates correctly.
	d.Reset(10)
	if d.Len() != 10 || d.Sets() != 10 {
		t.Fatalf("after Reset(10): Len=%d Sets=%d", d.Len(), d.Sets())
	}
	if d.Same(1, 2) {
		t.Fatal("old union survived a growing reset")
	}

	// Reset within capacity must not allocate.
	allocs := testing.AllocsPerRun(20, func() { d.Reset(8) })
	if allocs != 0 {
		t.Errorf("Reset within capacity allocates %v per run", allocs)
	}
}

func BenchmarkUnionFind(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 1 << 16
	for i := 0; i < b.N; i++ {
		d := New(n)
		for j := 0; j < n; j++ {
			d.Union(rng.Intn(n), rng.Intn(n))
		}
	}
}
