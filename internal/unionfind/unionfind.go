// Package unionfind provides a disjoint-set (union–find) data structure
// with union by size and path compression.
//
// Every algorithm in this repository maintains its knowledge of "which
// elements are known equivalent" as a union–find forest: testing two
// elements equal contracts their sets, exactly as in the knowledge graph of
// Figure 2 of the paper.
package unionfind

import "sort"

// DSU is a disjoint-set forest over the integers 0..n-1.
// The zero value is not usable; call New.
type DSU struct {
	parent []int
	size   []int
	sets   int
}

// New returns a DSU with n singleton sets, one per element 0..n-1.
func New(n int) *DSU {
	d := &DSU{}
	d.Reset(n)
	return d
}

// Reset reinitializes d to n singleton sets, reusing the backing arrays
// whenever they are large enough. Hot merge loops call this between
// merges so the forest costs no allocations in steady state.
//
//ecsort:hotpath
func (d *DSU) Reset(n int) {
	if cap(d.parent) < n {
		d.parent = make([]int, n)
		d.size = make([]int, n)
	}
	d.parent = d.parent[:n]
	d.size = d.size[:n]
	for i := range d.parent {
		d.parent[i] = i
		d.size[i] = 1
	}
	d.sets = n
}

// Len returns the number of elements in the universe.
func (d *DSU) Len() int { return len(d.parent) }

// Sets returns the current number of disjoint sets.
func (d *DSU) Sets() int { return d.sets }

// Find returns the canonical representative of x's set.
//
//ecsort:hotpath
func (d *DSU) Find(x int) int {
	root := x
	for d.parent[root] != root {
		root = d.parent[root]
	}
	// Path compression: point everything on the walk directly at the root.
	for d.parent[x] != root {
		d.parent[x], x = root, d.parent[x]
	}
	return root
}

// Union merges the sets containing a and b and returns the representative
// of the merged set. It reports whether a merge actually happened (false if
// a and b were already in the same set).
//
//ecsort:hotpath
func (d *DSU) Union(a, b int) (root int, merged bool) {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return ra, false
	}
	if d.size[ra] < d.size[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	d.size[ra] += d.size[rb]
	d.sets--
	return ra, true
}

// Same reports whether a and b are in the same set.
//
//ecsort:hotpath
func (d *DSU) Same(a, b int) bool { return d.Find(a) == d.Find(b) }

// SizeOf returns the size of the set containing x.
//
//ecsort:hotpath
func (d *DSU) SizeOf(x int) int { return d.size[d.Find(x)] }

// Groups returns the current sets as slices of element indices. Elements
// within a group appear in increasing order, and groups are ordered by
// their smallest element. The result is freshly allocated.
func (d *DSU) Groups() [][]int {
	n := len(d.parent)
	members := make(map[int][]int, d.sets)
	for i := 0; i < n; i++ {
		r := d.Find(i)
		members[r] = append(members[r], i)
	}
	groups := make([][]int, 0, len(members))
	for _, g := range members {
		groups = append(groups, g)
	}
	// Members were appended in increasing element order, so g[0] is each
	// group's smallest member; order groups by it.
	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
	return groups
}

// Labels returns a canonical labeling of the elements: two elements receive
// the same label iff they are in the same set, and labels are assigned
// 0,1,2,... in order of first appearance.
func (d *DSU) Labels() []int {
	n := len(d.parent)
	labels := make([]int, n)
	next := 0
	seen := make(map[int]int, d.sets)
	for i := 0; i < n; i++ {
		r := d.Find(i)
		l, ok := seen[r]
		if !ok {
			l = next
			next++
			seen[r] = l
		}
		labels[i] = l
	}
	return labels
}
