package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Transport carries one request payload to a backend node and returns
// its response payload. Implementations must be safe for concurrent
// Call use. A returned error means the exchange itself failed — the
// node is unreachable, the connection died, a frame failed its CRC —
// and the coordinator treats the node as down. A node that answered
// with a service failure is NOT a transport error: that failure rides
// inside the response payload (decoded to *RemoteError upstream), and
// the node is alive.
//
// The contract is message-passing-only: the bytes are the entire
// exchange. Callers must not retain req after Call returns, and must
// not mutate the returned slice's backing array across calls.
type Transport interface {
	Call(ctx context.Context, req []byte) ([]byte, error)
	Close() error
}

// ErrTransportClosed is returned by Call after Close.
var ErrTransportClosed = errors.New("cluster: transport closed")

// chanExchange is one in-flight ChanTransport request.
type chanExchange struct {
	req  []byte
	resp chan []byte
}

// ChanTransport is the in-process transport: requests cross a channel
// to a serving goroutine that runs the node's Handle, and responses
// cross back on a per-call channel. No memory is shared with the node
// beyond the copied payload — the same discipline as TCP, minus the
// socket — so tests and the default single-binary mode exercise the
// exact codec and ownership rules production traffic uses.
type ChanTransport struct {
	reqs    chan chanExchange
	quit    chan struct{}
	done    chan struct{}
	closing sync.Once
}

// NewChanTransport starts a serving goroutine answering via node.
// Close stops it.
func NewChanTransport(node *Node) *ChanTransport {
	t := &ChanTransport{
		reqs: make(chan chanExchange),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	go func() {
		defer close(t.done)
		for {
			select {
			case <-t.quit:
				return
			case ex := <-t.reqs:
				ex.resp <- node.Handle(ex.req)
			}
		}
	}()
	return t
}

// Call sends one request and waits for its response.
func (t *ChanTransport) Call(ctx context.Context, req []byte) ([]byte, error) {
	// Copy: the caller owns req only until Call returns, but the serving
	// goroutine reads it after the handoff.
	own := make([]byte, len(req))
	copy(own, req)
	ex := chanExchange{req: own, resp: make(chan []byte, 1)}
	select {
	case t.reqs <- ex:
	case <-t.quit:
		return nil, ErrTransportClosed
	case <-ctx.Done():
		return nil, fmt.Errorf("cluster: chan transport: %w", ctx.Err())
	}
	select {
	case resp := <-ex.resp:
		return resp, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("cluster: chan transport: %w", ctx.Err())
	}
}

// Close stops the serving goroutine. In-flight Handle calls finish
// first (their response lands in the buffered per-call channel).
func (t *ChanTransport) Close() error {
	t.closing.Do(func() { close(t.quit) })
	<-t.done
	return nil
}
