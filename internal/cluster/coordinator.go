package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ecsort/internal/service"
)

// Backend names one node and the transport that reaches it.
type Backend struct {
	Name      string
	Transport Transport
}

// Config tunes a Coordinator. The zero value is serviceable.
type Config struct {
	// DownCooldown is how long a node stays marked down — its
	// collections rejecting with 503 + Retry-After — after a transport
	// failure, before the next call probes it again. 0 means 3s.
	DownCooldown time.Duration
	// HeavyFactor is the estimated-weight multiple of the mean node
	// load past which a new collection is placed on the least-loaded
	// node instead of its hash slot. 0 means 2.0; negative disables
	// heavy placement.
	HeavyFactor float64
}

func (c Config) downCooldown() time.Duration {
	if c.DownCooldown <= 0 {
		return 3 * time.Second
	}
	return c.DownCooldown
}

// route is one collection's placement record.
type route struct {
	node   int
	weight float64
}

// nodeClient is the coordinator's view of one backend.
type nodeClient struct {
	name string
	t    Transport

	mu        sync.Mutex
	downUntil time.Time
	lastErr   error

	routed atomic.Int64 // requests routed to this node
	errs   atomic.Int64 // transport-level failures
}

// down reports whether the node is inside its down cooldown and how
// long remains.
func (nc *nodeClient) down() (time.Duration, bool) {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	if rem := time.Until(nc.downUntil); rem > 0 {
		return rem, true
	}
	return 0, false
}

func (nc *nodeClient) markDown(err error, cooldown time.Duration) {
	nc.errs.Add(1)
	nc.mu.Lock()
	nc.downUntil = time.Now().Add(cooldown)
	nc.lastErr = err
	nc.mu.Unlock()
}

func (nc *nodeClient) markUp() {
	nc.mu.Lock()
	nc.downUntil = time.Time{}
	nc.mu.Unlock()
}

// Coordinator owns the collection → node routing table and fans every
// operation out to the owning node (or, for list/health/metrics, to the
// whole fleet). It shares no memory with its nodes: every exchange is a
// Transport call. A node that stops answering degrades — its
// collections reject writes with 503 + Retry-After through the exact
// DegradedError path a tripped oracle breaker uses — without taking any
// other node's collections down.
type Coordinator struct {
	cfg         Config
	nodes       []*nodeClient
	heavyFactor float64
	start       time.Time

	mu     sync.RWMutex
	routes map[string]route
	load   []float64

	heavyPlacements atomic.Int64
}

// New assembles a coordinator over the given backends and discovers
// collections the nodes already own (durable nodes recover their
// collections before joining; the coordinator must route to them, not
// around them). Backends must be non-empty.
func New(cfg Config, backends []Backend) (*Coordinator, error) {
	if len(backends) == 0 {
		return nil, errors.New("cluster: coordinator needs at least one backend")
	}
	co := &Coordinator{
		cfg:         cfg,
		heavyFactor: cfg.HeavyFactor,
		start:       time.Now(),
		routes:      make(map[string]route),
		load:        make([]float64, len(backends)),
	}
	if co.heavyFactor == 0 {
		co.heavyFactor = defaultHeavyFactor
	}
	for _, b := range backends {
		co.nodes = append(co.nodes, &nodeClient{name: b.Name, t: b.Transport})
	}
	if err := co.discover(); err != nil {
		return nil, err
	}
	return co, nil
}

// discover asks each node what it already owns and seeds the routing
// table. A key owned by two nodes is a deployment error worth failing
// loudly over: routing would silently split its history.
func (co *Coordinator) discover() error {
	//ecsort:ignore ctxflow boot lifetime root: discovery runs once inside New, before any caller context exists
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	owner := make(map[string]int)
	for i, nc := range co.nodes {
		resp, err := nc.t.Call(ctx, encodeRequest(nil, opList, "", nil))
		if err != nil {
			return fmt.Errorf("cluster: discovering node %s: %w", nc.name, err)
		}
		body, err := decodeResponse(resp)
		if err != nil {
			return fmt.Errorf("cluster: discovering node %s: %w", nc.name, err)
		}
		var infos []service.CollectionInfo
		if err := json.Unmarshal(body, &infos); err != nil {
			return fmt.Errorf("cluster: discovering node %s: %w", nc.name, err)
		}
		for _, info := range infos {
			if prev, dup := owner[info.Key]; dup {
				return fmt.Errorf("cluster: collection %q owned by both %s and %s",
					info.Key, co.nodes[prev].name, nc.name)
			}
			owner[info.Key] = i
			// Recovered collections re-enter load accounting at the
			// estimator's floor for their universe (no spec on the wire:
			// weigh by size, skew unknown ≈ uniform).
			w := float64(info.Universe)
			co.routes[info.Key] = route{node: i, weight: w}
			co.load[i] += w
		}
	}
	return nil
}

// Close closes every backend transport.
func (co *Coordinator) Close() error {
	var first error
	for _, nc := range co.nodes {
		if err := nc.t.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// owner resolves a key's node index.
func (co *Coordinator) owner(key string) (int, error) {
	co.mu.RLock()
	r, ok := co.routes[key]
	co.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %q", service.ErrNotFound, key)
	}
	return r.node, nil
}

// call routes one exchange to node idx, translating transport failures
// into the degraded path: the node is marked down for the cooldown and
// the caller sees a DegradedError (503 + Retry-After upstream), exactly
// like a collection whose oracle breaker tripped. Remote service
// failures pass through typed (*service.DegradedError for degraded
// collections, *RemoteError otherwise).
func (co *Coordinator) call(ctx context.Context, idx int, o op, key string, body []byte) ([]byte, error) {
	nc := co.nodes[idx]
	if ra, down := nc.down(); down {
		return nil, &service.DegradedError{Key: key, RetryAfter: ra}
	}
	nc.routed.Add(1)
	resp, err := nc.t.Call(ctx, encodeRequest(nil, o, key, body))
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			// The caller's own context was canceled or hit its deadline
			// mid-call (a client disconnect, a short client timeout).
			// That says nothing about the node's health: surface the
			// context error without marking the node down, or one
			// impatient client would 503 the node's collections for
			// every other client for the whole cooldown.
			return nil, ctxErr
		}
		nc.markDown(err, co.cfg.downCooldown())
		return nil, &service.DegradedError{Key: key, RetryAfter: co.cfg.downCooldown()}
	}
	out, err := decodeResponse(resp)
	if err != nil {
		var re *RemoteError
		if !errors.As(err, &re) {
			// Not a remote failure but an undecodable response: the
			// stream produced garbage, treat the node as down.
			nc.markDown(err, co.cfg.downCooldown())
			return nil, &service.DegradedError{Key: key, RetryAfter: co.cfg.downCooldown()}
		}
		nc.markUp()
		if re.Status == 503 && re.RetryAfter > 0 {
			// Reconstruct the degraded rejection so the coordinator's
			// HTTP layer (and Go callers) see the same typed error a
			// single-binary deployment produces.
			return nil, &service.DegradedError{Key: key, RetryAfter: re.RetryAfter}
		}
		return nil, re
	}
	nc.markUp()
	return out, nil
}

// CreateCollection places key on a node — hash slot, or least-loaded
// for estimator-heavy specs — and creates it there.
func (co *Coordinator) CreateCollection(ctx context.Context, key string, spec service.OracleSpec) (service.CollectionInfo, error) {
	var info service.CollectionInfo
	if key == "" {
		return info, fmt.Errorf("%w: empty collection key", service.ErrBadSpec)
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return info, fmt.Errorf("%w: unencodable spec: %v", service.ErrBadSpec, err)
	}
	// Estimate outside the lock: sampling scales with the sample budget,
	// not the universe, but it still has no business inside the route
	// lock's critical section.
	weight := estimateWeight(&spec)
	co.mu.Lock()
	idx, reserved := 0, false
	if r, ok := co.routes[key]; ok {
		// Already placed (or reserved by a concurrent create): forward
		// and let the owner answer (409 if it truly exists).
		idx = r.node
	} else {
		idx = co.place(key, weight)
		// Reserve the route before the remote create so a concurrent
		// create for the same key forwards to this same node instead of
		// re-running place() against shifted load and planting a second,
		// silently orphaned copy elsewhere.
		co.routes[key] = route{node: idx, weight: weight}
		co.load[idx] += weight
		reserved = true
	}
	co.mu.Unlock()

	out, err := co.call(ctx, idx, opCreate, key, body)
	if err != nil {
		if reserved {
			// Keep the reservation on a 409: the collection exists on
			// that node (a concurrent create won), so the route is
			// correct. Anything else means the create did not take —
			// roll the reservation back so the key can be placed again.
			var re *RemoteError
			if !errors.As(err, &re) || re.Status != 409 {
				co.mu.Lock()
				if r, ok := co.routes[key]; ok && r.node == idx {
					co.load[idx] -= r.weight
					if co.load[idx] < 0 {
						co.load[idx] = 0
					}
					delete(co.routes, key)
				}
				co.mu.Unlock()
			}
		}
		return info, err
	}
	if err := json.Unmarshal(out, &info); err != nil {
		return info, fmt.Errorf("cluster: node %s: undecodable create response: %w", co.nodes[idx].name, err)
	}
	return info, nil
}

// DropCollection drops key on its owner and frees its route.
func (co *Coordinator) DropCollection(ctx context.Context, key string) error {
	idx, err := co.owner(key)
	if err != nil {
		return err
	}
	if _, err := co.call(ctx, idx, opDrop, key, nil); err != nil {
		return err
	}
	co.mu.Lock()
	if r, ok := co.routes[key]; ok {
		co.load[r.node] -= r.weight
		if co.load[r.node] < 0 {
			co.load[r.node] = 0
		}
		delete(co.routes, key)
	}
	co.mu.Unlock()
	return nil
}

// Ingest forwards a batch to key's owner.
func (co *Coordinator) Ingest(ctx context.Context, key string, items []int, flush bool) (service.IngestResult, error) {
	var res service.IngestResult
	idx, err := co.owner(key)
	if err != nil {
		return res, err
	}
	body, err := json.Marshal(ingestArgs{Items: items, Flush: flush})
	if err != nil {
		return res, err
	}
	out, err := co.call(ctx, idx, opIngest, key, body)
	if err != nil {
		return res, err
	}
	return res, json.Unmarshal(out, &res)
}

// Classes fetches key's current partition from its owner.
func (co *Coordinator) Classes(ctx context.Context, key string, fresh bool) (*service.Snapshot, error) {
	idx, err := co.owner(key)
	if err != nil {
		return nil, err
	}
	body, _ := json.Marshal(classArgs{Fresh: fresh})
	out, err := co.call(ctx, idx, opClasses, key, body)
	if err != nil {
		return nil, err
	}
	var snap service.Snapshot
	if err := json.Unmarshal(out, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// ClassOf point-looks-up one element's class on key's owner.
func (co *Coordinator) ClassOf(ctx context.Context, key string, element int, fresh bool) (service.ClassView, error) {
	var view service.ClassView
	idx, err := co.owner(key)
	if err != nil {
		return view, err
	}
	body, _ := json.Marshal(classOfArgs{Element: element, Fresh: fresh})
	out, err := co.call(ctx, idx, opClassOf, key, body)
	if err != nil {
		return view, err
	}
	return view, json.Unmarshal(out, &view)
}

// DeleteItem removes one element on key's owner.
func (co *Coordinator) DeleteItem(ctx context.Context, key string, element int) (service.ChurnResult, error) {
	var res service.ChurnResult
	idx, err := co.owner(key)
	if err != nil {
		return res, err
	}
	body, _ := json.Marshal(deleteArgs{Element: element})
	out, err := co.call(ctx, idx, opDelete, key, body)
	if err != nil {
		return res, err
	}
	return res, json.Unmarshal(out, &res)
}

// InvalidateClass withdraws a class on key's owner.
func (co *Coordinator) InvalidateClass(ctx context.Context, key string, class int, flush bool) (service.ChurnResult, error) {
	var res service.ChurnResult
	idx, err := co.owner(key)
	if err != nil {
		return res, err
	}
	body, _ := json.Marshal(invalidateArgs{Class: class, Flush: flush})
	out, err := co.call(ctx, idx, opInvalidate, key, body)
	if err != nil {
		return res, err
	}
	return res, json.Unmarshal(out, &res)
}

// Stats fetches key's counters and snapshot from its owner.
func (co *Coordinator) Stats(ctx context.Context, key string) (service.CollectionInfo, error) {
	var info service.CollectionInfo
	idx, err := co.owner(key)
	if err != nil {
		return info, err
	}
	out, err := co.call(ctx, idx, opStats, key, nil)
	if err != nil {
		return info, err
	}
	return info, json.Unmarshal(out, &info)
}

// UpdateResilience retunes key's resilience profile on its owner.
func (co *Coordinator) UpdateResilience(ctx context.Context, key string, rs service.ResilienceSpec) error {
	idx, err := co.owner(key)
	if err != nil {
		return err
	}
	body, err := json.Marshal(rs)
	if err != nil {
		return err
	}
	_, err = co.call(ctx, idx, opResilience, key, body)
	return err
}

// List merges every reachable node's collections, sorted by key. Down
// nodes contribute their routed keys as placeholders (key and owner
// only) so the listing shows what exists even when its owner is out.
func (co *Coordinator) List(ctx context.Context) []service.CollectionInfo {
	var infos []service.CollectionInfo
	seen := make(map[string]bool)
	for i := range co.nodes {
		out, err := co.call(ctx, i, opList, "", nil)
		if err != nil {
			continue
		}
		var part []service.CollectionInfo
		if json.Unmarshal(out, &part) == nil {
			for _, info := range part {
				infos = append(infos, info)
				seen[info.Key] = true
			}
		}
	}
	co.mu.RLock()
	for key := range co.routes {
		if !seen[key] {
			infos = append(infos, service.CollectionInfo{Key: key})
		}
	}
	co.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Key < infos[j].Key })
	return infos
}

// NodeState is one backend's status in a cluster health report.
type NodeState struct {
	Name        string            `json:"name"`
	Up          bool              `json:"up"`
	RetryAfterS float64           `json:"retry_after_seconds,omitempty"`
	LastError   string            `json:"last_error,omitempty"`
	Collections int               `json:"collections"`
	Degraded    []DegradedBackend `json:"degraded,omitempty"`
	Routed      int64             `json:"routed_total"`
	Errors      int64             `json:"route_errors_total"`
	Corrupt     int64             `json:"corrupt_frames,omitempty"`
}

// Health polls every node and reports per-node state. A node inside its
// down cooldown is reported down without a probe call; anything else is
// asked live (which itself probes nodes whose cooldown just elapsed).
func (co *Coordinator) Health(ctx context.Context) []NodeState {
	states := make([]NodeState, len(co.nodes))
	for i, nc := range co.nodes {
		st := NodeState{Name: nc.name, Routed: nc.routed.Load()}
		if ra, down := nc.down(); down {
			st.Up = false
			st.RetryAfterS = ra.Seconds()
			nc.mu.Lock()
			if nc.lastErr != nil {
				st.LastError = nc.lastErr.Error()
			}
			nc.mu.Unlock()
			st.Collections = co.routedTo(i)
			st.Errors = nc.errs.Load()
			states[i] = st
			continue
		}
		out, err := co.call(ctx, i, opHealth, "", nil)
		st.Errors = nc.errs.Load()
		if err != nil {
			st.Up = false
			st.RetryAfterS = co.cfg.downCooldown().Seconds()
			st.LastError = err.Error()
			st.Collections = co.routedTo(i)
			states[i] = st
			continue
		}
		var h nodeHealth
		if err := json.Unmarshal(out, &h); err == nil {
			st.Up = true
			st.Collections = h.Collections
			st.Degraded = h.Degraded
			st.Corrupt = h.Corrupt
		}
		states[i] = st
	}
	return states
}

// routedTo counts the routing table's collections on node idx.
func (co *Coordinator) routedTo(idx int) int {
	co.mu.RLock()
	defer co.mu.RUnlock()
	n := 0
	for _, r := range co.routes {
		if r.node == idx {
			n++
		}
	}
	return n
}

// Nodes reports the backend names in routing order.
func (co *Coordinator) Nodes() []string {
	names := make([]string, len(co.nodes))
	for i, nc := range co.nodes {
		names[i] = nc.name
	}
	return names
}

// Uptime is how long the coordinator has been assembled.
func (co *Coordinator) Uptime() time.Duration { return time.Since(co.start) }

// HeavyPlacements counts collections the estimator steered off their
// hash slot.
func (co *Coordinator) HeavyPlacements() int64 { return co.heavyPlacements.Load() }
