package cluster

import (
	"hash/fnv"

	"ecsort/internal/service"
)

// Placement: default routing is FNV(key) mod N — the service's own
// key → shard hash, one level up. The refinement is the sample-based
// weight estimator below, per the partitioning playbook of the
// parallel-sorting literature ("Optimal Round and Sample-Size
// Complexity for Partitioning in Parallel Sorting": a small sample
// suffices to pick good splitters; "Robust Massively Parallel Sorting":
// placement must be robust to skew and duplicates, which is exactly
// what zeta-distributed class sizes produce). A collection's fold cost
// scales with its universe and with how concentrated its classes are —
// one dominant class means most pairs compare equal and merge work
// piles onto one structure — so heavy-looking collections are biased
// onto the least-loaded node instead of their hash slot.

// placementSamples is the sample budget per collection. The sample-size
// literature's point is that this needs to be small: a constant-size
// sample estimates the class-mass distribution well enough for
// placement, and estimation cost must not scale with the universe.
const placementSamples = 64

// defaultHeavyFactor: a collection whose estimated weight is at least
// this multiple of the current mean node load abandons hash placement
// for least-loaded placement.
const defaultHeavyFactor = 2.0

// hashSlot is the default FNV(key) mod N route.
func hashSlot(key string, nodes int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(nodes))
}

// estimateWeight scores a collection spec's expected load from a
// constant-size sample of its universe: weight = n × (½ + skew), where
// skew is the sampled share of the most common class. A uniform
// workload scores ≈ n/2 + n/k̂; a single-giant-class workload (zeta
// head) scores ≈ 1.5 n. Only the identity sources the spec itself
// carries are sampled — labels, fault states, graph shape signatures —
// so estimation never touches an oracle.
func estimateWeight(spec *service.OracleSpec) float64 {
	n := spec.N()
	if n <= 0 {
		return 0
	}
	ids := make(map[uint64]int, placementSamples)
	samples := placementSamples
	if n < samples {
		samples = n
	}
	top := 0
	for s := 0; s < samples; s++ {
		// Evenly spaced positions: deterministic (placement must agree
		// across coordinator restarts) and immune to adversarial
		// front-loading in a way a prefix scan is not.
		i := s * n / samples
		var id uint64
		// The sampled field must be the one N() is keyed off — selected
		// by Kind, exactly mirroring OracleSpec.N() — or a spec carrying
		// a stray second field would be indexed past the field that
		// actually sized the loop. The bounds guard makes a malformed
		// spec score conservatively instead of panicking; Build rejects
		// it downstream either way.
		switch spec.Kind {
		case service.KindFault, service.KindFaultAgents:
			if i < len(spec.States) {
				id = spec.States[i]
			}
		case service.KindGraphIso:
			if i < len(spec.Graphs) {
				id = graphSignature(&spec.Graphs[i])
			}
		default:
			if i < len(spec.Labels) {
				id = uint64(spec.Labels[i])
			}
		}
		if ids[id]++; ids[id] > top {
			top = ids[id]
		}
	}
	skew := float64(top) / float64(samples)
	return float64(n) * (0.5 + skew)
}

// graphSignature is a cheap iso-invariant-ish bucket for a graph spec:
// vertex count, edge count, and a degree-sequence hash. Collisions
// only make the skew estimate conservative — two non-isomorphic graphs
// sharing a signature look like one heavier class.
func graphSignature(g *service.GraphSpec) uint64 {
	deg := make([]int, g.N)
	for _, e := range g.Edges {
		if e[0] >= 0 && e[0] < g.N {
			deg[e[0]]++
		}
		if e[1] >= 0 && e[1] < g.N {
			deg[e[1]]++
		}
	}
	// Degree histogram folded into an order-independent hash.
	var h uint64 = uint64(g.N)<<32 ^ uint64(len(g.Edges))
	for _, d := range deg {
		h += 0x9e3779b97f4a7c15 * (uint64(d)*uint64(d) + 1)
	}
	return h
}

// place picks the node for a new collection: the hash slot by default,
// the least-loaded node when the estimator calls the collection heavy
// relative to what nodes already carry. Caller holds the coordinator's
// route lock.
func (co *Coordinator) place(key string, weight float64) int {
	nodes := len(co.nodes)
	slot := hashSlot(key, nodes)
	if co.heavyFactor < 0 {
		// Heavy placement disabled: pure hash routing, never least-loaded.
		return slot
	}
	var total float64
	for _, l := range co.load {
		total += l
	}
	if total == 0 {
		// Empty cluster: no load signal yet, hash placement is as good
		// as any and keeps single-collection deployments deterministic.
		return slot
	}
	mean := total / float64(nodes)
	if weight < co.heavyFactor*mean {
		return slot
	}
	// Heavy: argmin load, ties to the lowest index for determinism.
	best := 0
	for i := 1; i < nodes; i++ {
		if co.load[i] < co.load[best] {
			best = i
		}
	}
	co.heavyPlacements.Add(1)
	return best
}
