package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ecsort/internal/service"
)

// httpCall performs one JSON request and decodes the response into out
// (when non-nil and the status is a success), returning the status.
func httpCall(t *testing.T, client *http.Client, method, url string, payload, out any) int {
	t.Helper()
	var body io.Reader
	if payload != nil {
		b, err := json.Marshal(payload)
		if err != nil {
			t.Fatal(err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

// TestCoordinatorHTTPWalkthrough drives the full route table of the
// coordinator's HTTP API against a 2-node ChanTransport fleet — the
// README quickstart, as a test.
func TestCoordinatorHTTPWalkthrough(t *testing.T) {
	co, _ := newChanCluster(t, 2, Config{}, service.Config{Shards: 2, BatchSize: 4})
	ts := httptest.NewServer(co.Handler())
	defer ts.Close()
	client := ts.Client()

	spec := service.OracleSpec{Kind: service.KindLabel, Labels: []int{0, 0, 1, 1, 2, 2}}
	var created struct {
		Key      string `json:"key"`
		Kind     string `json:"kind"`
		Universe int    `json:"universe"`
	}
	if code := httpCall(t, client, "PUT", ts.URL+"/v1/collections/demo", spec, &created); code != 201 {
		t.Fatalf("create: status %d", code)
	}
	if created.Key != "demo" || created.Universe != 6 {
		t.Fatalf("create response: %+v", created)
	}
	if code := httpCall(t, client, "PUT", ts.URL+"/v1/collections/demo", spec, nil); code != 409 {
		t.Fatalf("duplicate create: status %d, want 409", code)
	}

	var ing service.IngestResult
	if code := httpCall(t, client, "POST", ts.URL+"/v1/collections/demo/items",
		map[string]any{"items": []int{0, 1, 2, 3, 4, 5}}, &ing); code != 202 {
		t.Fatalf("ingest: status %d", code)
	}
	if !ing.Flushed {
		t.Fatalf("batch of 6 over BatchSize 4 did not flush: %+v", ing)
	}

	var snap service.Snapshot
	if code := httpCall(t, client, "GET", ts.URL+"/v1/collections/demo/classes", nil, &snap); code != 200 {
		t.Fatalf("classes: status %d", code)
	}
	if len(snap.Classes) != 3 {
		t.Fatalf("classes: got %d, want 3: %v", len(snap.Classes), snap.Classes)
	}

	var view service.ClassView
	if code := httpCall(t, client, "GET", ts.URL+"/v1/collections/demo/classes/3", nil, &view); code != 200 {
		t.Fatalf("classOf: status %d", code)
	}
	if len(view.Members) != 2 {
		t.Fatalf("classOf(3): members %v, want the pair", view.Members)
	}

	var churn service.ChurnResult
	if code := httpCall(t, client, "DELETE", ts.URL+"/v1/collections/demo/items/5", nil, &churn); code != 200 {
		t.Fatalf("delete item: status %d", code)
	}
	if code := httpCall(t, client, "POST", ts.URL+"/v1/collections/demo/classes/0/invalidate?flush=1", nil, &churn); code != 202 {
		t.Fatalf("invalidate: status %d", code)
	}

	var stats service.CollectionInfo
	if code := httpCall(t, client, "GET", ts.URL+"/v1/collections/demo/stats", nil, &stats); code != 200 {
		t.Fatalf("stats: status %d", code)
	}
	if stats.Deleted != 1 || stats.Invalidated != 1 {
		t.Fatalf("stats after churn: %+v", stats)
	}

	var listing struct {
		Collections []service.CollectionInfo `json:"collections"`
	}
	if code := httpCall(t, client, "GET", ts.URL+"/v1/collections", nil, &listing); code != 200 {
		t.Fatalf("list: status %d", code)
	}
	if len(listing.Collections) != 1 || listing.Collections[0].Key != "demo" {
		t.Fatalf("list: %+v", listing)
	}

	var algos struct {
		Default    string            `json:"default"`
		Algorithms []json.RawMessage `json:"algorithms"`
	}
	if code := httpCall(t, client, "GET", ts.URL+"/v1/algorithms", nil, &algos); code != 200 {
		t.Fatalf("algorithms: status %d", code)
	}
	if algos.Default == "" || len(algos.Algorithms) == 0 {
		t.Fatalf("algorithms served empty: %+v", algos)
	}

	// Error mapping: unknown key 404 (local route miss), bad element 400,
	// unknown field 400, out-of-universe 400 relayed from the node.
	if code := httpCall(t, client, "GET", ts.URL+"/v1/collections/ghost/stats", nil, nil); code != 404 {
		t.Fatalf("ghost stats: status %d, want 404", code)
	}
	if code := httpCall(t, client, "GET", ts.URL+"/v1/collections/demo/classes/xyz", nil, nil); code != 400 {
		t.Fatalf("non-integer element: status %d, want 400", code)
	}
	if code := httpCall(t, client, "POST", ts.URL+"/v1/collections/demo/items",
		map[string]any{"itemz": []int{1}}, nil); code != 400 {
		t.Fatalf("unknown field: status %d, want 400", code)
	}
	if code := httpCall(t, client, "POST", ts.URL+"/v1/collections/demo/items",
		map[string]any{"items": []int{999}}, nil); code != 400 {
		t.Fatalf("out-of-universe item: status %d, want 400 relayed", code)
	}

	if code := httpCall(t, client, "DELETE", ts.URL+"/v1/collections/demo", nil, nil); code != 204 {
		t.Fatalf("drop: status %d", code)
	}
	if code := httpCall(t, client, "GET", ts.URL+"/v1/collections/demo/stats", nil, nil); code != 404 {
		t.Fatalf("stats after drop: status %d, want 404", code)
	}
}

// TestCoordinatorHTTPResilience drives the PATCH endpoint through the
// coordinator and checks the degraded 503 carries Retry-After.
func TestCoordinatorHTTPResilience(t *testing.T) {
	co, _ := newChanCluster(t, 2, Config{DownCooldown: time.Second}, service.Config{Shards: 1})
	ts := httptest.NewServer(co.Handler())
	defer ts.Close()
	client := ts.Client()

	spec := service.OracleSpec{
		Kind:   service.KindLabel,
		Labels: []int{0, 1, 1},
		Resilience: &service.ResilienceSpec{
			TimeoutMs: 100, Retries: 1, BackoffMs: 1, MaxBackoffMs: 1,
		},
	}
	if code := httpCall(t, client, "PUT", ts.URL+"/v1/collections/tuned", spec, nil); code != 201 {
		t.Fatalf("create: status %d", code)
	}
	var patched struct {
		Key        string                 `json:"key"`
		Resilience service.ResilienceSpec `json:"resilience"`
	}
	update := service.ResilienceSpec{TimeoutMs: 900, Retries: 4, BackoffMs: 2, MaxBackoffMs: 50}
	if code := httpCall(t, client, "PATCH", ts.URL+"/v1/collections/tuned/resilience", update, &patched); code != 200 {
		t.Fatalf("patch: status %d", code)
	}
	if patched.Resilience.Retries != 4 {
		t.Fatalf("patch echo: %+v", patched)
	}
	if code := httpCall(t, client, "PATCH", ts.URL+"/v1/collections/ghost/resilience", update, nil); code != 404 {
		t.Fatalf("patch ghost: status %d, want 404", code)
	}

	// Kill the node owning "tuned": its writes 503 with Retry-After.
	idx, err := co.owner("tuned")
	if err != nil {
		t.Fatal(err)
	}
	co.nodes[idx].t.Close()
	req, _ := http.NewRequest("POST", ts.URL+"/v1/collections/tuned/items", strings.NewReader(`{"items":[0]}`))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("write to dead node: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After header")
	}
}

// TestCoordinatorHTTPHealthAndMetrics pins the fleet observability
// surface: ready flips to 503 on a node loss, and /metrics names the
// cluster families.
func TestCoordinatorHTTPHealthAndMetrics(t *testing.T) {
	co, _ := newChanCluster(t, 2, Config{DownCooldown: time.Minute}, service.Config{Shards: 1})
	ts := httptest.NewServer(co.Handler())
	defer ts.Close()
	client := ts.Client()

	for _, path := range []string{"/healthz", "/healthz/live"} {
		if code := httpCall(t, client, "GET", ts.URL+path, nil, nil); code != 200 {
			t.Fatalf("%s: status %d", path, code)
		}
	}
	var ready struct {
		Status string      `json:"status"`
		Nodes  []NodeState `json:"nodes"`
	}
	if code := httpCall(t, client, "GET", ts.URL+"/healthz/ready", nil, &ready); code != 200 {
		t.Fatalf("ready with healthy fleet: status %d", code)
	}
	if ready.Status != "ready" || len(ready.Nodes) != 2 {
		t.Fatalf("ready report: %+v", ready)
	}

	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, family := range []string{
		"ecsort_cluster_nodes 2",
		"ecsort_cluster_collections",
		`ecsort_cluster_node_up{node="node-0"} 1`,
		`ecsort_cluster_node_up{node="node-1"} 1`,
		"ecsort_cluster_routed_total",
		"ecsort_cluster_route_errors_total",
		"ecsort_cluster_heavy_placements_total",
	} {
		if !strings.Contains(string(raw), family) {
			t.Errorf("metrics missing %q", family)
		}
	}

	// One node down: ready degrades to 503 but still reports both nodes,
	// and node_up flips for exactly the dead one.
	co.nodes[1].t.Close()
	co.nodes[1].markDown(io.ErrClosedPipe, time.Minute)
	code := httpCall(t, client, "GET", ts.URL+"/healthz/ready", nil, nil)
	if code != 503 {
		t.Fatalf("ready with dead node: status %d, want 503", code)
	}
	resp, err = client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), `ecsort_cluster_node_up{node="node-1"} 0`) {
		t.Error("metrics did not flip node_up for the dead node")
	}
	if !strings.Contains(string(raw), `ecsort_cluster_node_up{node="node-0"} 1`) {
		t.Error("metrics took the live node down with the dead one")
	}
}
