package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync/atomic"
	"time"

	"ecsort/internal/core"
	"ecsort/internal/service"
)

// Node is one cluster backend: a service.Service answering the wire
// protocol. The same Node serves ChanTransport (Handle called from the
// transport's goroutine) and TCPTransport (ServeTCP's per-connection
// readers) — both paths run the identical decode → dispatch → encode
// sequence, which is what makes the two transports bit-identical by
// construction.
type Node struct {
	svc   *service.Service
	start time.Time
	// logf receives frame-corruption and connection-failure reports;
	// defaults to log.Printf. Corruption is never silent.
	logf func(format string, args ...any)

	corruptFrames atomic.Int64
	requests      atomic.Int64
}

// NewNode wraps svc as a cluster backend. The node does not own the
// service's lifecycle: callers close svc themselves after the node's
// listeners are down.
func NewNode(svc *service.Service) *Node {
	return &Node{svc: svc, start: time.Now(), logf: log.Printf}
}

// SetLogger redirects the node's corruption/connection reports.
func (n *Node) SetLogger(logf func(format string, args ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	n.logf = logf
}

// CorruptFrames reports how many integrity-failed frames this node has
// rejected (each one also closed its connection).
func (n *Node) CorruptFrames() int64 { return n.corruptFrames.Load() }

// Handle answers one decoded request payload with a response payload.
// Errors never escape as Go errors: they are encoded into the response
// so the transport stays a dumb byte pipe.
func (n *Node) Handle(req []byte) []byte {
	n.requests.Add(1)
	o, key, body, err := decodeRequest(req)
	if err != nil {
		return encodeErr(nil, http.StatusBadRequest, 0, err.Error())
	}
	out, err := n.dispatch(o, key, body)
	if err != nil {
		status, ra := statusOf(err)
		return encodeErr(nil, status, ra, err.Error())
	}
	return encodeOK(nil, out)
}

// dispatch runs one operation against the local service and marshals
// its result.
func (n *Node) dispatch(o op, key string, body []byte) ([]byte, error) {
	switch o {
	case opCreate:
		var spec service.OracleSpec
		if err := json.Unmarshal(body, &spec); err != nil {
			return nil, fmt.Errorf("%w: undecodable spec: %v", service.ErrBadSpec, err)
		}
		if err := n.svc.CreateCollection(key, spec); err != nil {
			return nil, err
		}
		info, err := n.svc.CollectionStats(key)
		if err != nil {
			return nil, err
		}
		info.Snapshot = nil // create responses carry identity, not data
		return json.Marshal(info)
	case opDrop:
		return nil, n.svc.DropCollection(key)
	case opIngest:
		var a ingestArgs
		if err := json.Unmarshal(body, &a); err != nil {
			return nil, fmt.Errorf("%w: undecodable ingest body: %v", service.ErrBadItem, err)
		}
		res, err := n.svc.Ingest(key, a.Items, a.Flush)
		if err != nil {
			return nil, err
		}
		return json.Marshal(res)
	case opDelete:
		var a deleteArgs
		if err := json.Unmarshal(body, &a); err != nil {
			return nil, fmt.Errorf("%w: undecodable delete body: %v", service.ErrBadItem, err)
		}
		res, err := n.svc.DeleteItem(key, a.Element)
		if err != nil {
			return nil, err
		}
		return json.Marshal(res)
	case opInvalidate:
		var a invalidateArgs
		if err := json.Unmarshal(body, &a); err != nil {
			return nil, fmt.Errorf("%w: undecodable invalidate body: %v", service.ErrBadItem, err)
		}
		res, err := n.svc.InvalidateClass(key, a.Class, a.Flush)
		if err != nil {
			return nil, err
		}
		return json.Marshal(res)
	case opClasses:
		var a classArgs
		if err := json.Unmarshal(body, &a); err != nil {
			return nil, fmt.Errorf("%w: undecodable classes body: %v", service.ErrBadItem, err)
		}
		snap, err := n.svc.Classes(key, a.Fresh)
		if err != nil {
			return nil, err
		}
		return json.Marshal(snap)
	case opClassOf:
		var a classOfArgs
		if err := json.Unmarshal(body, &a); err != nil {
			return nil, fmt.Errorf("%w: undecodable class-of body: %v", service.ErrBadItem, err)
		}
		view, err := n.svc.ClassOf(key, a.Element, a.Fresh)
		if err != nil {
			return nil, err
		}
		return json.Marshal(view)
	case opStats:
		info, err := n.svc.CollectionStats(key)
		if err != nil {
			return nil, err
		}
		return json.Marshal(info)
	case opList:
		return json.Marshal(n.svc.Collections())
	case opHealth:
		h := nodeHealth{UptimeSecs: time.Since(n.start).Seconds(), Corrupt: n.corruptFrames.Load()}
		for _, info := range n.svc.Collections() {
			h.Collections++
			if info.RetryAfterSeconds > 0 {
				h.Degraded = append(h.Degraded, DegradedBackend{
					Key:               info.Key,
					Breaker:           info.Breaker,
					RetryAfterSeconds: info.RetryAfterSeconds,
				})
			}
		}
		return json.Marshal(h)
	case opResilience:
		var rs service.ResilienceSpec
		if err := json.Unmarshal(body, &rs); err != nil {
			return nil, fmt.Errorf("%w: undecodable resilience body: %v", service.ErrBadSpec, err)
		}
		return nil, n.svc.UpdateResilience(key, rs)
	}
	return nil, fmt.Errorf("cluster: unhandled op %d", o)
}

// statusOf maps a service error to its HTTP status and degraded
// retry-after — the same table service.Handler's writeError uses, so a
// clustered deployment surfaces identical statuses to a single-binary
// one.
func statusOf(err error) (int, time.Duration) {
	var de *service.DegradedError
	if errors.As(err, &de) {
		return http.StatusServiceUnavailable, de.RetryAfter
	}
	switch {
	case errors.Is(err, service.ErrNotFound):
		return http.StatusNotFound, 0
	case errors.Is(err, service.ErrExists):
		return http.StatusConflict, 0
	case errors.Is(err, service.ErrBadItem), errors.Is(err, service.ErrBadSpec):
		return http.StatusBadRequest, 0
	case errors.Is(err, core.ErrConstRoundFailed), errors.Is(err, core.ErrAdaptiveExhausted):
		return http.StatusConflict, 0
	case errors.Is(err, service.ErrClosed), errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, 0
	}
	return http.StatusInternalServerError, 0
}
