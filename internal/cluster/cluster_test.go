package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"ecsort/internal/service"
)

// testLogf silences node logs under test while still exercising them.
func testLogf(t *testing.T) func(string, ...any) {
	return func(format string, args ...any) { t.Logf(format, args...) }
}

// newChanCluster assembles a coordinator over n in-process nodes.
func newChanCluster(t *testing.T, n int, cfg Config, svcCfg service.Config) (*Coordinator, []*service.Service) {
	t.Helper()
	svcs := make([]*service.Service, n)
	backends := make([]Backend, n)
	for i := range svcs {
		svcs[i] = service.New(svcCfg)
		node := NewNode(svcs[i])
		node.SetLogger(testLogf(t))
		backends[i] = Backend{Name: fmt.Sprintf("node-%d", i), Transport: NewChanTransport(node)}
	}
	co, err := New(cfg, backends)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		co.Close()
		for _, s := range svcs {
			s.Close()
		}
	})
	return co, svcs
}

// newTCPCluster assembles a coordinator over n nodes listening on
// loopback TCP.
func newTCPCluster(t *testing.T, n int, cfg Config, svcCfg service.Config) (*Coordinator, []*service.Service, []*Node) {
	t.Helper()
	svcs := make([]*service.Service, n)
	nodes := make([]*Node, n)
	backends := make([]Backend, n)
	for i := range svcs {
		svcs[i] = service.New(svcCfg)
		nodes[i] = NewNode(svcs[i])
		nodes[i].SetLogger(testLogf(t))
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		go nodes[i].ServeTCP(l)
		t.Cleanup(func() { l.Close() })
		backends[i] = Backend{Name: fmt.Sprintf("node-%d", i), Transport: NewTCPTransport(l.Addr().String())}
	}
	co, err := New(cfg, backends)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		co.Close()
		for _, s := range svcs {
			s.Close()
		}
	})
	return co, svcs, nodes
}

// workload is the fixed-seed multi-collection drive used by the
// bit-identity tests: every collection gets zeta-ish skewed labels and
// its items arrive shuffled in uneven batches.
type workload struct {
	keys   []string
	labels map[string][]int
	order  map[string][]int
}

func makeWorkload(seed int64, collections, n int) workload {
	rng := rand.New(rand.NewSource(seed))
	w := workload{labels: make(map[string][]int), order: make(map[string][]int)}
	for c := 0; c < collections; c++ {
		key := fmt.Sprintf("col-%d", c)
		labels := make([]int, n)
		for i := range labels {
			// Skewed: label 0 claims roughly half the universe, the rest
			// spread over a handful of classes.
			if rng.Intn(2) == 0 {
				labels[i] = 0
			} else {
				labels[i] = 1 + rng.Intn(5)
			}
		}
		order := rng.Perm(n)
		w.keys = append(w.keys, key)
		w.labels[key] = labels
		w.order[key] = order
	}
	return w
}

// clusterAPI is the slice of the coordinator/service surface the
// equivalence tests drive, so one driver serves both.
type clusterAPI interface {
	CreateCollection(ctx context.Context, key string, spec service.OracleSpec) (service.CollectionInfo, error)
	Ingest(ctx context.Context, key string, items []int, flush bool) (service.IngestResult, error)
	Classes(ctx context.Context, key string, fresh bool) (*service.Snapshot, error)
	DeleteItem(ctx context.Context, key string, element int) (service.ChurnResult, error)
	InvalidateClass(ctx context.Context, key string, class int, flush bool) (service.ChurnResult, error)
	Stats(ctx context.Context, key string) (service.CollectionInfo, error)
}

// localAPI adapts a plain single-binary service to clusterAPI — the
// control arm of the equivalence experiment.
type localAPI struct{ svc *service.Service }

func (l localAPI) CreateCollection(_ context.Context, key string, spec service.OracleSpec) (service.CollectionInfo, error) {
	if err := l.svc.CreateCollection(key, spec); err != nil {
		return service.CollectionInfo{}, err
	}
	return l.svc.CollectionStats(key)
}
func (l localAPI) Ingest(_ context.Context, key string, items []int, flush bool) (service.IngestResult, error) {
	return l.svc.Ingest(key, items, flush)
}
func (l localAPI) Classes(_ context.Context, key string, fresh bool) (*service.Snapshot, error) {
	return l.svc.Classes(key, fresh)
}
func (l localAPI) DeleteItem(_ context.Context, key string, element int) (service.ChurnResult, error) {
	return l.svc.DeleteItem(key, element)
}
func (l localAPI) InvalidateClass(_ context.Context, key string, class int, flush bool) (service.ChurnResult, error) {
	return l.svc.InvalidateClass(key, class, flush)
}
func (l localAPI) Stats(_ context.Context, key string) (service.CollectionInfo, error) {
	return l.svc.CollectionStats(key)
}

// drive runs the deterministic workload against one API arm and returns
// each collection's final state: classes JSON + the deterministic stats
// counters, marshaled so arms compare bit-for-bit.
func drive(t *testing.T, api clusterAPI, w workload) map[string]string {
	t.Helper()
	ctx := context.Background()
	for _, key := range w.keys {
		spec := service.OracleSpec{Kind: service.KindLabel, Labels: w.labels[key]}
		if _, err := api.CreateCollection(ctx, key, spec); err != nil {
			t.Fatalf("create %s: %v", key, err)
		}
	}
	// Uneven deterministic batches, interleaved across collections so
	// routing is exercised mid-stream, then churn: one delete and one
	// invalidation per collection.
	for _, key := range w.keys {
		order := w.order[key]
		for len(order) > 0 {
			sz := 1 + len(order)%7
			if sz > len(order) {
				sz = len(order)
			}
			if _, err := api.Ingest(ctx, key, order[:sz], false); err != nil {
				t.Fatalf("ingest %s: %v", key, err)
			}
			order = order[sz:]
		}
		if _, err := api.Ingest(ctx, key, nil, true); err != nil {
			t.Fatalf("flush %s: %v", key, err)
		}
		if _, err := api.DeleteItem(ctx, key, w.order[key][0]); err != nil {
			t.Fatalf("delete %s: %v", key, err)
		}
		if _, err := api.InvalidateClass(ctx, key, 0, true); err != nil {
			t.Fatalf("invalidate %s: %v", key, err)
		}
	}
	out := make(map[string]string)
	for _, key := range w.keys {
		snap, err := api.Classes(ctx, key, false)
		if err != nil {
			t.Fatalf("classes %s: %v", key, err)
		}
		info, err := api.Stats(ctx, key)
		if err != nil {
			t.Fatalf("stats %s: %v", key, err)
		}
		state := struct {
			Classes  [][]int `json:"classes"`
			Version  int64   `json:"version"`
			Size     int     `json:"size"`
			Ingested int64   `json:"ingested"`
			Pending  int64   `json:"pending"`
			Batches  int64   `json:"batches"`
			Flushes  int64   `json:"flushes"`
			NClasses int     `json:"n_classes"`
			Deleted  int64   `json:"deleted"`
			Invalid  int64   `json:"invalidated"`
		}{snap.Classes, snap.Version, snap.Size, info.Ingested, info.Pending,
			info.Batches, info.Flushes, info.Classes, info.Deleted, info.Invalidated}
		b, err := json.Marshal(state)
		if err != nil {
			t.Fatal(err)
		}
		out[key] = string(b)
	}
	return out
}

// TestTransportEquivalence is the transport-independence acceptance
// check: the same fixed-seed workload produces bit-identical classes and
// stats through a ChanTransport cluster, a TCPTransport cluster, and a
// plain single-binary service. The transports must be invisible.
func TestTransportEquivalence(t *testing.T) {
	const seed, collections, n = 42, 6, 90
	svcCfg := service.Config{Shards: 2, BatchSize: 16}

	control := service.New(svcCfg)
	defer control.Close()
	want := drive(t, localAPI{control}, makeWorkload(seed, collections, n))

	chanCo, _ := newChanCluster(t, 3, Config{}, svcCfg)
	gotChan := drive(t, chanCo, makeWorkload(seed, collections, n))

	tcpCo, _, _ := newTCPCluster(t, 3, Config{}, svcCfg)
	gotTCP := drive(t, tcpCo, makeWorkload(seed, collections, n))

	for _, key := range []string{"col-0", "col-1", "col-2", "col-3", "col-4", "col-5"} {
		if gotChan[key] != want[key] {
			t.Errorf("chan cluster diverged from single-node control on %s:\n  cluster: %s\n  control: %s",
				key, gotChan[key], want[key])
		}
		if gotTCP[key] != want[key] {
			t.Errorf("tcp cluster diverged from single-node control on %s:\n  cluster: %s\n  control: %s",
				key, gotTCP[key], want[key])
		}
	}
}

// TestClusterSpread checks collections actually land on more than one
// node — the coordinator is a router, not a proxy to node zero.
func TestClusterSpread(t *testing.T) {
	co, svcs := newChanCluster(t, 3, Config{}, service.Config{Shards: 1})
	ctx := context.Background()
	for i := 0; i < 12; i++ {
		key := fmt.Sprintf("spread-%d", i)
		if _, err := co.CreateCollection(ctx, key, service.OracleSpec{Kind: service.KindLabel, Labels: []int{0, 1}}); err != nil {
			t.Fatalf("create %s: %v", key, err)
		}
	}
	occupied := 0
	for _, s := range svcs {
		if len(s.Collections()) > 0 {
			occupied++
		}
	}
	if occupied < 2 {
		t.Fatalf("12 collections all landed on one node; want spread across >= 2 of 3")
	}
	if got := len(co.List(ctx)); got != 12 {
		t.Fatalf("List: got %d collections, want 12", got)
	}
}

// TestNodeDownRouting is the degraded-fleet acceptance check: killing
// one node 503s ONLY its collections (with Retry-After), everything on
// the surviving nodes keeps serving, and health reports the loss.
func TestNodeDownRouting(t *testing.T) {
	co, svcs := newChanCluster(t, 2, Config{DownCooldown: 50 * time.Millisecond}, service.Config{Shards: 1})
	ctx := context.Background()

	// Find one key per node so both sides of the partition are covered.
	keyOn := map[int]string{}
	for i := 0; len(keyOn) < 2; i++ {
		key := fmt.Sprintf("k-%d", i)
		keyOn[hashSlot(key, 2)] = key
	}
	for _, key := range keyOn {
		if _, err := co.CreateCollection(ctx, key, service.OracleSpec{Kind: service.KindLabel, Labels: []int{0, 0, 1, 1, 1}}); err != nil {
			t.Fatalf("create %s: %v", key, err)
		}
		if _, err := co.Ingest(ctx, key, []int{0, 1, 2}, true); err != nil {
			t.Fatalf("ingest %s: %v", key, err)
		}
	}

	// Kill node 1: close its transport. Calls now fail at the exchange.
	co.nodes[1].t.Close()

	if _, err := co.Ingest(ctx, keyOn[1], []int{0}, true); err == nil {
		t.Fatal("ingest to dead node succeeded")
	} else {
		var de *service.DegradedError
		if !errors.As(err, &de) {
			t.Fatalf("dead-node error: got %v (%T), want DegradedError", err, err)
		}
		if de.RetryAfter <= 0 {
			t.Fatalf("dead-node DegradedError carries no Retry-After: %v", err)
		}
	}
	// Second call hits the down-cooldown short-circuit, no transport use.
	if _, err := co.Ingest(ctx, keyOn[1], []int{0}, true); err == nil {
		t.Fatal("ingest during down cooldown succeeded")
	}

	// The surviving node is untouched: reads AND writes still serve.
	if _, err := co.Ingest(ctx, keyOn[0], []int{3, 4}, true); err != nil {
		t.Fatalf("surviving node rejected a write: %v", err)
	}
	snap, err := co.Classes(ctx, keyOn[0], false)
	if err != nil {
		t.Fatalf("surviving node rejected a read: %v", err)
	}
	if snap.Size == 0 {
		t.Fatal("surviving node returned an empty snapshot")
	}

	// Health names the dead node and keeps the live one up.
	states := co.Health(ctx)
	if states[0].Up != true || states[1].Up != false {
		t.Fatalf("health: got up=[%v %v], want [true false]", states[0].Up, states[1].Up)
	}
	if states[1].Collections != 1 {
		t.Fatalf("dead node should still show its 1 routed collection, got %d", states[1].Collections)
	}

	// Listing still includes the dead node's key as a placeholder.
	keys := map[string]bool{}
	for _, info := range co.List(ctx) {
		keys[info.Key] = true
	}
	if !keys[keyOn[0]] || !keys[keyOn[1]] {
		t.Fatalf("List dropped a key during partial outage: %v", keys)
	}

	_ = svcs
}

// TestDiscovery: nodes that already own collections (durable restarts)
// are routed to, and duplicate ownership fails loudly instead of
// splitting a collection's history.
func TestDiscovery(t *testing.T) {
	svcA, svcB := service.New(service.Config{Shards: 1}), service.New(service.Config{Shards: 1})
	defer svcA.Close()
	defer svcB.Close()
	spec := service.OracleSpec{Kind: service.KindLabel, Labels: []int{0, 1, 1}}
	if err := svcA.CreateCollection("alpha", spec); err != nil {
		t.Fatal(err)
	}
	if err := svcB.CreateCollection("beta", spec); err != nil {
		t.Fatal(err)
	}

	co, err := New(Config{}, []Backend{
		{Name: "a", Transport: NewChanTransport(NewNode(svcA))},
		{Name: "b", Transport: NewChanTransport(NewNode(svcB))},
	})
	if err != nil {
		t.Fatalf("New with pre-owned collections: %v", err)
	}
	defer co.Close()
	ctx := context.Background()
	for _, key := range []string{"alpha", "beta"} {
		if _, err := co.Ingest(ctx, key, []int{0, 1, 2}, true); err != nil {
			t.Fatalf("ingest discovered collection %s: %v", key, err)
		}
	}
	// Typed service errors cross the wire as *RemoteError carrying the
	// node's status mapping (only DegradedError is reconstructed).
	var re *RemoteError
	if _, err := co.CreateCollection(ctx, "alpha", spec); !errors.As(err, &re) || re.Status != 409 {
		t.Fatalf("re-create discovered collection: got %v, want RemoteError 409", err)
	}

	// Duplicate ownership across nodes is a deployment error.
	if err := svcB.CreateCollection("alpha", spec); err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{}, []Backend{
		{Name: "a", Transport: NewChanTransport(NewNode(svcA))},
		{Name: "b", Transport: NewChanTransport(NewNode(svcB))},
	})
	if err == nil {
		t.Fatal("New accepted a collection owned by two nodes")
	}
}

// TestRemoteErrorsKeepNodeUp: a service-level failure (404, 409, 400)
// crossing the wire must NOT mark the node down — only transport
// failures degrade.
func TestRemoteErrorsKeepNodeUp(t *testing.T) {
	co, _ := newChanCluster(t, 1, Config{}, service.Config{Shards: 1})
	ctx := context.Background()
	spec := service.OracleSpec{Kind: service.KindLabel, Labels: []int{0, 1}}
	if _, err := co.CreateCollection(ctx, "x", spec); err != nil {
		t.Fatal(err)
	}
	var re *RemoteError
	if _, err := co.CreateCollection(ctx, "x", spec); !errors.As(err, &re) || re.Status != 409 {
		t.Fatalf("duplicate create: got %v, want RemoteError 409", err)
	}
	_, err := co.Ingest(ctx, "x", []int{99}, false) // out of universe
	if !errors.As(err, &re) || re.Status != 400 {
		t.Fatalf("bad item: got %v, want RemoteError status 400", err)
	}
	if _, err := co.Stats(ctx, "ghost"); !errors.Is(err, service.ErrNotFound) {
		t.Fatalf("unknown key: got %v, want ErrNotFound (local route miss)", err)
	}
	if st := co.Health(ctx); !st[0].Up {
		t.Fatalf("service errors marked the node down: %+v", st[0])
	}
}

// TestClusterResilienceOps drives the degraded-collection path through
// the cluster: a faulty collection trips its breaker on one node, the
// coordinator relays 503 + Retry-After as a typed DegradedError, and a
// PATCH-equivalent UpdateResilience crosses the wire.
func TestClusterResilienceOps(t *testing.T) {
	co, _ := newChanCluster(t, 2, Config{}, service.Config{Shards: 1})
	ctx := context.Background()
	spec := service.OracleSpec{
		Kind:   service.KindLabel,
		Labels: []int{0, 0, 1, 1},
		Resilience: &service.ResilienceSpec{
			TimeoutMs: 200, Retries: 1, BackoffMs: 1, MaxBackoffMs: 1,
		},
	}
	if _, err := co.CreateCollection(ctx, "tuned", spec); err != nil {
		t.Fatal(err)
	}
	if _, err := co.Ingest(ctx, "tuned", []int{0, 1, 2, 3}, true); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	update := service.ResilienceSpec{TimeoutMs: 500, Retries: 3, BackoffMs: 2, MaxBackoffMs: 20}
	if err := co.UpdateResilience(ctx, "tuned", update); err != nil {
		t.Fatalf("UpdateResilience over the wire: %v", err)
	}
	info, err := co.Stats(ctx, "tuned")
	if err != nil {
		t.Fatal(err)
	}
	if info.Breaker != "closed" {
		t.Fatalf("breaker: got %q, want closed", info.Breaker)
	}
	// Retuning a plain collection is rejected with the node's 400.
	if _, err := co.CreateCollection(ctx, "plain", service.OracleSpec{Kind: service.KindLabel, Labels: []int{0, 1}}); err != nil {
		t.Fatal(err)
	}
	err = co.UpdateResilience(ctx, "plain", update)
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != 400 {
		t.Fatalf("retune plain collection: got %v, want RemoteError 400", err)
	}
}

// TestWireCodec pins the request/response byte format.
func TestWireCodec(t *testing.T) {
	req := encodeRequest(nil, opIngest, "key-1", []byte(`{"items":[1]}`))
	o, key, body, err := decodeRequest(req)
	if err != nil || o != opIngest || key != "key-1" || string(body) != `{"items":[1]}` {
		t.Fatalf("round trip: op=%d key=%q body=%q err=%v", o, key, body, err)
	}
	if _, _, _, err := decodeRequest([]byte{}); err == nil {
		t.Fatal("empty request decoded")
	}
	if _, _, _, err := decodeRequest([]byte{99, 0}); err == nil {
		t.Fatal("unknown op decoded")
	}
	if _, _, _, err := decodeRequest([]byte{byte(opList), 200}); err == nil {
		t.Fatal("key length past payload decoded")
	}

	if body, err := decodeResponse(encodeOK(nil, []byte("hi"))); err != nil || string(body) != "hi" {
		t.Fatalf("ok response: %q %v", body, err)
	}
	_, err = decodeResponse(encodeErr(nil, 503, 1500*time.Millisecond, "degraded"))
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != 503 || re.RetryAfter != 1500*time.Millisecond || re.Msg != "degraded" {
		t.Fatalf("err response: %v", err)
	}
	if _, err := decodeResponse(nil); err == nil {
		t.Fatal("empty response decoded")
	}
	if _, err := decodeResponse([]byte{7}); err == nil {
		t.Fatal("unknown tag decoded")
	}
	bad := encodeErr(nil, 9999, 0, "x")
	if _, err := decodeResponse(bad); err == nil || errors.As(err, &re) && re.Status == 9999 {
		t.Fatal("impossible status accepted")
	}
}

// TestPlacementEstimator pins the weight model: skew raises a
// collection's score, and a heavy collection abandons its hash slot for
// the least-loaded node.
func TestPlacementEstimator(t *testing.T) {
	n := 1024
	uniform := make([]int, n)
	for i := range uniform {
		uniform[i] = i % 64
	}
	skewed := make([]int, n) // all one class: maximal skew
	wUniform := estimateWeight(&service.OracleSpec{Kind: service.KindLabel, Labels: uniform})
	wSkewed := estimateWeight(&service.OracleSpec{Kind: service.KindLabel, Labels: skewed})
	if wSkewed <= wUniform {
		t.Fatalf("skewed weight %v not above uniform %v", wSkewed, wUniform)
	}
	if wSkewed != float64(n)*1.5 {
		t.Fatalf("single-class weight: got %v, want %v", wSkewed, float64(n)*1.5)
	}
	if w := estimateWeight(&service.OracleSpec{}); w != 0 {
		t.Fatalf("empty spec weight: got %v, want 0", w)
	}

	// place: loads [100, 10, 100] and a heavy weight → node 1, counted.
	co := &Coordinator{
		nodes:       []*nodeClient{{name: "a"}, {name: "b"}, {name: "c"}},
		heavyFactor: 2.0,
		load:        []float64{100, 10, 100},
		routes:      map[string]route{},
	}
	if got := co.place("whatever", 1000); got != 1 {
		t.Fatalf("heavy placement: got node %d, want 1 (least loaded)", got)
	}
	if co.HeavyPlacements() != 1 {
		t.Fatalf("heavy placement not counted")
	}
	// A light collection sticks to its hash slot regardless of load.
	for _, key := range []string{"a", "b", "c", "d"} {
		if got, want := co.place(key, 1), hashSlot(key, 3); got != want {
			t.Fatalf("light placement of %q: got %d, want hash slot %d", key, got, want)
		}
	}
	// Empty cluster: hash slot even for heavy specs.
	co.load = []float64{0, 0, 0}
	if got, want := co.place("x", 1e9), hashSlot("x", 3); got != want {
		t.Fatalf("empty-cluster placement: got %d, want hash slot %d", got, want)
	}
}

// TestHeavyPlacementEndToEnd: after uniform collections build baseline
// load, a giant skewed collection is steered to the least-loaded node.
func TestHeavyPlacementEndToEnd(t *testing.T) {
	co, svcs := newChanCluster(t, 2, Config{}, service.Config{Shards: 1})
	ctx := context.Background()
	small := make([]int, 32)
	for i := range small {
		small[i] = i
	}
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("light-%d", i)
		if _, err := co.CreateCollection(ctx, key, service.OracleSpec{Kind: service.KindLabel, Labels: small}); err != nil {
			t.Fatal(err)
		}
	}
	before := [2]int{len(svcs[0].Collections()), len(svcs[1].Collections())}
	argmin := 0
	if before[1] < before[0] {
		argmin = 1
	}
	giant := make([]int, 100_000) // one class, 100k universe: unmistakably heavy
	if _, err := co.CreateCollection(ctx, "giant", service.OracleSpec{Kind: service.KindLabel, Labels: giant}); err != nil {
		t.Fatal(err)
	}
	if co.HeavyPlacements() == 0 {
		t.Fatal("giant skewed collection was not heavy-placed")
	}
	found := false
	for _, info := range svcs[argmin].Collections() {
		if info.Key == "giant" {
			found = true
		}
	}
	if !found {
		t.Fatalf("giant not on least-loaded node %d (loads before: %v)", argmin, before)
	}
}

// TestShardownAnnotationsPresent pins the node-side ownership
// annotations: dropping one silently drops ecs-vet's static proof that
// the per-connection read buffer has a single owner goroutine.
func TestShardownAnnotationsPresent(t *testing.T) {
	data, err := os.ReadFile("tcp.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"buf []byte //ecsort:owned-by-shard",
		"//ecsort:shard-goroutine\nfunc (t *TCPTransport) Call(",
		"//ecsort:shard-goroutine\nfunc (n *Node) serveConn(",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("tcp.go lost its shardown annotation %q", want)
		}
	}
}

// TestListSorted pins the merged listing's order contract.
func TestListSorted(t *testing.T) {
	co, _ := newChanCluster(t, 3, Config{}, service.Config{Shards: 1})
	ctx := context.Background()
	for _, key := range []string{"zeta", "alpha", "mid"} {
		if _, err := co.CreateCollection(ctx, key, service.OracleSpec{Kind: service.KindLabel, Labels: []int{0}}); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	for _, info := range co.List(ctx) {
		got = append(got, info.Key)
	}
	if want := []string{"alpha", "mid", "zeta"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("List order: got %v, want %v", got, want)
	}
}

// TestEstimateWeightKindMismatch: the estimator sizes its sampling loop
// by OracleSpec.N(), which is keyed off Kind — so the sampled field must
// be selected by Kind too. A spec carrying a stray second identity field
// (valid to the node, which also picks by Kind) used to index the wrong
// field out of range.
func TestEstimateWeightKindMismatch(t *testing.T) {
	states := make([]uint64, 100)
	for i := range states {
		states[i] = uint64(i % 7)
	}
	// Kind says fault (N = len(States) = 100) but a short Labels field
	// rides along: sampling must stay inside States.
	spec := &service.OracleSpec{Kind: service.KindFault, States: states, Labels: []int{7}}
	if w := estimateWeight(spec); w <= 0 {
		t.Fatalf("fault spec with stray labels: weight %v, want > 0", w)
	}
	// Kind selects a field that is empty: N() is 0, weight 0, no panic.
	if w := estimateWeight(&service.OracleSpec{Kind: service.KindGraphIso, Labels: []int{1, 2, 3}}); w != 0 {
		t.Fatalf("graph-iso spec without graphs: weight %v, want 0", w)
	}
}

// TestMismatchedSpecCreateDoesNotWedge drives the same shape end to end:
// the old estimator panicked while CreateCollection held the route lock,
// wedging every later coordinator request.
func TestMismatchedSpecCreateDoesNotWedge(t *testing.T) {
	co, _ := newChanCluster(t, 2, Config{}, service.Config{Shards: 1})
	ctx := context.Background()
	states := make([]uint64, 100)
	mixed := service.OracleSpec{Kind: service.KindFault, States: states, Labels: []int{7}}
	if _, err := co.CreateCollection(ctx, "mixed", mixed); err != nil {
		t.Fatalf("create with stray second field: %v", err)
	}
	if _, err := co.Ingest(ctx, "mixed", []int{0, 1, 99}, true); err != nil {
		t.Fatalf("ingest after mixed create: %v", err)
	}
	if _, err := co.CreateCollection(ctx, "after", service.OracleSpec{Kind: service.KindLabel, Labels: []int{0, 1}}); err != nil {
		t.Fatalf("coordinator wedged after mixed create: %v", err)
	}
}

// TestNegativeHeavyFactorDisables pins the documented Config contract:
// a negative HeavyFactor means pure hash placement, never least-loaded.
func TestNegativeHeavyFactorDisables(t *testing.T) {
	co := &Coordinator{
		nodes:       []*nodeClient{{name: "a"}, {name: "b"}, {name: "c"}},
		heavyFactor: -1,
		load:        []float64{100, 10, 100},
		routes:      map[string]route{},
	}
	for _, key := range []string{"a", "b", "c", "heavy"} {
		if got, want := co.place(key, 1e12), hashSlot(key, 3); got != want {
			t.Fatalf("disabled heavy placement of %q: got %d, want hash slot %d", key, got, want)
		}
	}
	if co.HeavyPlacements() != 0 {
		t.Fatalf("heavy placements counted while disabled: %d", co.HeavyPlacements())
	}
}

// ctxErrTransport surfaces caller-context failures the way both real
// transports do: as a transport-level error wrapping ctx.Err().
type ctxErrTransport struct{ inner Transport }

func (t *ctxErrTransport) Call(ctx context.Context, req []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cluster: test transport: %w", err)
	}
	return t.inner.Call(ctx, req)
}

func (t *ctxErrTransport) Close() error { return t.inner.Close() }

// TestCallerCtxErrorKeepsNodeUp: a canceled caller context must surface
// as the context error, not mark the node down — one impatient client
// must not 503 the node's collections for everyone else.
func TestCallerCtxErrorKeepsNodeUp(t *testing.T) {
	svc := service.New(service.Config{Shards: 1})
	defer svc.Close()
	node := NewNode(svc)
	node.SetLogger(testLogf(t))
	co, err := New(Config{}, []Backend{{Name: "n", Transport: &ctxErrTransport{inner: NewChanTransport(node)}}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer co.Close()
	ctx := context.Background()
	if _, err := co.CreateCollection(ctx, "x", service.OracleSpec{Kind: service.KindLabel, Labels: []int{0, 0, 1}}); err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	_, err = co.Ingest(canceled, "x", []int{0}, false)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ingest: got %v, want context.Canceled", err)
	}
	var de *service.DegradedError
	if errors.As(err, &de) {
		t.Fatalf("caller cancellation misreported as degraded: %v", err)
	}
	// No cooldown: the very next call must reach the node.
	if _, err := co.Ingest(ctx, "x", []int{0, 1, 2}, true); err != nil {
		t.Fatalf("node marked down by caller cancellation: %v", err)
	}
	if st := co.Health(ctx); !st[0].Up {
		t.Fatalf("health down after caller cancellation: %+v", st[0])
	}
}

// TestCreateRollbackOnFailure: a create the node rejects must free its
// reserved route so the key can be created again.
func TestCreateRollbackOnFailure(t *testing.T) {
	co, _ := newChanCluster(t, 2, Config{}, service.Config{Shards: 1})
	ctx := context.Background()
	// Kind fault with no states: N() = 0, node rejects with 400.
	if _, err := co.CreateCollection(ctx, "k", service.OracleSpec{Kind: service.KindFault}); err == nil {
		t.Fatal("empty-universe spec accepted")
	}
	if _, err := co.Stats(ctx, "k"); !errors.Is(err, service.ErrNotFound) {
		t.Fatalf("failed create left a route behind: %v", err)
	}
	// The key is placeable again with a corrected spec.
	if _, err := co.CreateCollection(ctx, "k", service.OracleSpec{Kind: service.KindFault, States: []uint64{1, 2, 2}}); err != nil {
		t.Fatalf("re-create after rollback: %v", err)
	}
	if _, err := co.Ingest(ctx, "k", []int{0, 1, 2}, true); err != nil {
		t.Fatalf("ingest after re-create: %v", err)
	}
}

// TestConcurrentCreateSingleOwner: concurrent creates of one key must
// converge on a single node — the route is reserved before the remote
// create, so latecomers forward to the same owner (and get its 409)
// instead of re-running placement against shifted load.
func TestConcurrentCreateSingleOwner(t *testing.T) {
	co, svcs := newChanCluster(t, 2, Config{}, service.Config{Shards: 1})
	ctx := context.Background()
	labels := make([]int, 50_000) // heavy enough to trigger least-loaded placement
	const racers = 8
	errs := make(chan error, racers)
	for i := 0; i < racers; i++ {
		go func() {
			_, err := co.CreateCollection(ctx, "raced", service.OracleSpec{Kind: service.KindLabel, Labels: labels})
			errs <- err
		}()
	}
	okCount := 0
	for i := 0; i < racers; i++ {
		if err := <-errs; err == nil {
			okCount++
		} else {
			var re *RemoteError
			if !errors.As(err, &re) || re.Status != 409 {
				t.Fatalf("raced create: got %v, want nil or RemoteError 409", err)
			}
		}
	}
	if okCount != 1 {
		t.Fatalf("raced create succeeded %d times, want exactly 1", okCount)
	}
	owners := 0
	for i, svc := range svcs {
		for _, info := range svc.Collections() {
			if info.Key == "raced" {
				owners++
				if node, err := co.owner("raced"); err != nil || node != i {
					t.Fatalf("route (node %d, err %v) disagrees with owner node %d", node, err, i)
				}
			}
		}
	}
	if owners != 1 {
		t.Fatalf("collection exists on %d nodes, want exactly 1", owners)
	}
}
