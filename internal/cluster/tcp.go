package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"ecsort/internal/wal"
)

// defaultCallTimeout bounds a TCP exchange when the caller's context
// carries no deadline: a wedged node must not wedge the coordinator.
const defaultCallTimeout = 30 * time.Second

// TCPTransport speaks the wire protocol over TCP: each connection opens
// with a 16-byte header exchange (magic "ECSC", WireVersion — built and
// verified by internal/wal's header helpers), then carries one
// [len u32][CRC32-C u32][payload] frame per message, the WAL's exact
// framing. One request is in flight per connection; concurrency comes
// from a lazily grown idle-connection pool. Any error on a connection
// — dial failure, deadline, short read, CRC mismatch — discards that
// connection and fails the call: the coordinator decides whether the
// node is down, the transport never retries silently.
type TCPTransport struct {
	addr string

	mu     sync.Mutex
	idle   []*tcpConn
	closed bool
}

// tcpConn is one pooled connection with its reusable read buffer. A
// conn has exactly one owner at a time — the Call that checked it out
// of the pool, or the node-side serveConn loop — so buf is never
// touched concurrently; ecs-vet's shardown analyzer proves that
// discipline statically.
type tcpConn struct {
	c   net.Conn
	buf []byte //ecsort:owned-by-shard
}

// NewTCPTransport returns a transport for the node listening at addr.
// No connection is made until the first Call.
func NewTCPTransport(addr string) *TCPTransport {
	return &TCPTransport{addr: addr}
}

// Call sends one framed request and reads one framed response. Between
// conn() and release() this goroutine is the connection's sole owner.
//
//ecsort:shard-goroutine
func (t *TCPTransport) Call(ctx context.Context, req []byte) ([]byte, error) {
	conn, err := t.conn(ctx)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(defaultCallTimeout)
	if d, ok := ctx.Deadline(); ok {
		deadline = d
	}
	if err := conn.c.SetDeadline(deadline); err != nil {
		conn.c.Close()
		return nil, fmt.Errorf("cluster: tcp %s: %w", t.addr, err)
	}
	if _, err := conn.c.Write(wal.AppendFrame(nil, req)); err != nil {
		conn.c.Close()
		return nil, fmt.Errorf("cluster: tcp %s: write: %w", t.addr, err)
	}
	payload, err := wal.ReadFrame(conn.c, conn.buf)
	if err != nil {
		// CRC mismatch, impossible length, torn read: the connection can
		// no longer be trusted to be frame-aligned. Drop it loudly.
		conn.c.Close()
		return nil, fmt.Errorf("cluster: tcp %s: read: %w", t.addr, err)
	}
	conn.buf = payload[:0]
	// The pool reuses conn.buf for the next read on this connection, so
	// hand the caller its own copy.
	out := make([]byte, len(payload))
	copy(out, payload)
	t.release(conn)
	return out, nil
}

// conn returns an idle pooled connection or dials a new one, running
// the header handshake on fresh connections.
func (t *TCPTransport) conn(ctx context.Context) (*tcpConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrTransportClosed
	}
	if n := len(t.idle); n > 0 {
		conn := t.idle[n-1]
		t.idle = t.idle[:n-1]
		t.mu.Unlock()
		return conn, nil
	}
	t.mu.Unlock()

	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", t.addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: tcp %s: dial: %w", t.addr, err)
	}
	if err := handshake(c); err != nil {
		c.Close()
		return nil, fmt.Errorf("cluster: tcp %s: %w", t.addr, err)
	}
	return &tcpConn{c: c}, nil
}

// release parks a healthy connection for reuse.
func (t *TCPTransport) release(conn *tcpConn) {
	conn.c.SetDeadline(time.Time{})
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.c.Close()
		return
	}
	t.idle = append(t.idle, conn)
	t.mu.Unlock()
}

// Close discards every pooled connection. In-flight calls finish on
// their own connections and find the pool closed on release.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	for _, conn := range t.idle {
		conn.c.Close()
	}
	t.idle = nil
	return nil
}

// handshake exchanges and verifies stream headers on a new connection.
// Both sides send the same header shape; either side hanging is bounded
// by a short deadline.
func handshake(c net.Conn) error {
	c.SetDeadline(time.Now().Add(10 * time.Second))
	defer c.SetDeadline(time.Time{})
	hdr := wal.NewHeader(wireMagic, WireVersion, 0)
	if _, err := c.Write(hdr[:]); err != nil {
		return fmt.Errorf("handshake write: %w", err)
	}
	var peer [wal.HeaderSize]byte
	if _, err := io.ReadFull(c, peer[:]); err != nil {
		return fmt.Errorf("handshake read: %w", err)
	}
	if err := wal.VerifyHeader(peer, wireMagic, WireVersion); err != nil {
		return fmt.Errorf("handshake: %w", err)
	}
	return nil
}

// ServeTCP answers the wire protocol on l until l is closed (use the
// listener's Close as the stop signal). Each connection gets its own
// goroutine; a frame that fails its integrity checks is counted,
// logged, and kills the connection — corruption is rejected loudly,
// never resynced past.
func (n *Node) ServeTCP(l net.Listener) error {
	for {
		c, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go n.serveConn(c)
	}
}

// serveConn runs one connection's handshake-then-frames loop; it is
// the connection's owner goroutine for the connection's lifetime.
//
//ecsort:shard-goroutine
func (n *Node) serveConn(c net.Conn) {
	defer c.Close()
	if err := handshake(c); err != nil {
		n.corruptFrames.Add(1)
		n.logf("cluster: node: rejected connection from %s: %v", c.RemoteAddr(), err)
		return
	}
	var buf, out []byte
	for {
		req, err := wal.ReadFrame(c, buf)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return // clean disconnect between frames
			}
			if errors.Is(err, wal.ErrCorrupt) {
				// A CRC mismatch or impossible length on a live connection
				// means the stream is damaged; there is no safe way to find
				// the next frame boundary. Count it, say so, drop the link.
				n.corruptFrames.Add(1)
				n.logf("cluster: node: corrupt frame from %s: %v", c.RemoteAddr(), err)
			}
			return
		}
		buf = req[:0]
		out = wal.AppendFrame(out[:0], n.Handle(req))
		if _, err := c.Write(out); err != nil {
			return
		}
	}
}
