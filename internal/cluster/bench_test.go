package cluster

import (
	"context"
	"fmt"
	"testing"

	"ecsort/internal/service"
)

// BenchmarkClusterIngest measures coordinator-routed ingest over
// ChanTransport, 1 node vs 4: each iteration creates a collection,
// streams its universe through in batches, reads the classes fresh, and
// drops it — the single-collection service benchmark with the wire
// round trip (encode → channel → decode) layered on. Node count shifts
// routing, not total work, so the two sizes should track each other;
// the benchcmp gate holds the per-op allocation line.
func BenchmarkClusterIngest(b *testing.B) {
	labels := make([]int, 1024)
	for i := range labels {
		labels[i] = i % 16
	}
	for _, nodes := range []int{1, 4} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			svcs := make([]*service.Service, nodes)
			backends := make([]Backend, nodes)
			for i := range svcs {
				svcs[i] = service.New(service.Config{Shards: 1, BatchSize: 256, Workers: 1})
				node := NewNode(svcs[i])
				node.SetLogger(func(string, ...any) {})
				backends[i] = Backend{Name: fmt.Sprintf("n%d", i), Transport: NewChanTransport(node)}
			}
			co, err := New(Config{}, backends)
			if err != nil {
				b.Fatal(err)
			}
			defer func() {
				co.Close()
				for _, s := range svcs {
					s.Close()
				}
			}()

			ctx := context.Background()
			batch := make([]int, 64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key := fmt.Sprintf("bench-%d", i)
				if _, err := co.CreateCollection(ctx, key, service.OracleSpec{Kind: service.KindLabel, Labels: labels}); err != nil {
					b.Fatal(err)
				}
				for lo := 0; lo < len(labels); lo += len(batch) {
					for j := range batch {
						batch[j] = lo + j
					}
					if _, err := co.Ingest(ctx, key, batch, false); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := co.Classes(ctx, key, true); err != nil {
					b.Fatal(err)
				}
				if err := co.DropCollection(ctx, key); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
