package cluster

import (
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"ecsort/internal/service"
	"ecsort/internal/wal"
)

// startTCPNode runs one node on a loopback listener and returns its
// address.
func startTCPNode(t *testing.T) (*Node, string) {
	t.Helper()
	svc := service.New(service.Config{Shards: 1})
	t.Cleanup(func() { svc.Close() })
	node := NewNode(svc)
	node.SetLogger(testLogf(t))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go node.ServeTCP(l)
	t.Cleanup(func() { l.Close() })
	return node, l.Addr().String()
}

// clientHandshake dials addr and completes the header exchange,
// returning the raw connection for frame-level poking.
func clientHandshake(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := handshake(c); err != nil {
		c.Close()
		t.Fatalf("handshake: %v", err)
	}
	return c
}

// TestTCPServerRejectsCorruptFrame: a frame whose CRC does not match is
// counted, the connection dies, and the node keeps serving fresh
// connections — corruption is loud and contained.
func TestTCPServerRejectsCorruptFrame(t *testing.T) {
	node, addr := startTCPNode(t)

	c := clientHandshake(t, addr)
	defer c.Close()
	frame := wal.AppendFrame(nil, encodeRequest(nil, opList, "", nil))
	frame[len(frame)-1] ^= 0xFF // flip a payload byte: CRC now lies
	if _, err := c.Write(frame); err != nil {
		t.Fatal(err)
	}
	// The server must close the connection without answering.
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadAll(c); err != nil {
		t.Fatalf("expected clean close after corrupt frame, got read error: %v", err)
	}
	if got := node.CorruptFrames(); got != 1 {
		t.Fatalf("CorruptFrames: got %d, want 1", got)
	}

	// The node is not poisoned: a fresh, well-formed exchange works.
	tr := NewTCPTransport(addr)
	defer tr.Close()
	resp, err := tr.Call(context.Background(), encodeRequest(nil, opList, "", nil))
	if err != nil {
		t.Fatalf("well-formed call after corruption: %v", err)
	}
	if _, err := decodeResponse(resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
}

// TestTCPServerRejectsBadHandshake: wrong magic or an unknown version
// closes the connection before any frame is read.
func TestTCPServerRejectsBadHandshake(t *testing.T) {
	node, addr := startTCPNode(t)
	for _, hdr := range [][wal.HeaderSize]byte{
		wal.NewHeader("XXXX", WireVersion, 0),      // wrong magic
		wal.NewHeader(wireMagic, WireVersion+7, 0), // future version
	} {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		c.Write(hdr[:])
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		buf := make([]byte, 64)
		// The server may send its own header before noticing ours is bad;
		// either way the connection must end without a frame.
		for {
			if _, err := c.Read(buf); err != nil {
				break
			}
		}
		c.Close()
	}
	if got := node.CorruptFrames(); got != 2 {
		t.Fatalf("CorruptFrames after bad handshakes: got %d, want 2", got)
	}
}

// TestTCPClientRejectsCorruptResponse: a server answering with a
// CRC-broken frame fails the Call with wal.ErrCorrupt — the client
// never hands damaged bytes upstream.
func TestTCPClientRejectsCorruptResponse(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		hdr := wal.NewHeader(wireMagic, WireVersion, 0)
		var peer [wal.HeaderSize]byte
		io.ReadFull(c, peer[:])
		c.Write(hdr[:])
		buf := make([]byte, 4096)
		c.Read(buf) // swallow the request frame
		resp := wal.AppendFrame(nil, encodeOK(nil, []byte("[]")))
		resp[len(resp)-1] ^= 0xFF
		c.Write(resp)
	}()

	tr := NewTCPTransport(l.Addr().String())
	defer tr.Close()
	_, err = tr.Call(context.Background(), encodeRequest(nil, opList, "", nil))
	if !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("corrupt response: got %v, want wal.ErrCorrupt", err)
	}
}

// TestTCPClientRejectsBadServerHandshake: a server speaking the wrong
// protocol fails the first Call at dial time.
func TestTCPClientRejectsBadServerHandshake(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		hdr := wal.NewHeader("NOPE", WireVersion, 0)
		c.Write(hdr[:])
		var peer [wal.HeaderSize]byte
		io.ReadFull(c, peer[:])
	}()
	tr := NewTCPTransport(l.Addr().String())
	defer tr.Close()
	_, err = tr.Call(context.Background(), encodeRequest(nil, opList, "", nil))
	if err == nil || !strings.Contains(err.Error(), "handshake") {
		t.Fatalf("bad server handshake: got %v, want handshake failure", err)
	}
}

// TestTCPTransportClosed: Call after Close fails fast.
func TestTCPTransportClosed(t *testing.T) {
	_, addr := startTCPNode(t)
	tr := NewTCPTransport(addr)
	if _, err := tr.Call(context.Background(), encodeRequest(nil, opList, "", nil)); err != nil {
		t.Fatal(err)
	}
	tr.Close()
	if _, err := tr.Call(context.Background(), encodeRequest(nil, opList, "", nil)); !errors.Is(err, ErrTransportClosed) {
		t.Fatalf("Call after Close: got %v, want ErrTransportClosed", err)
	}
}

// TestTCPConnReuse: sequential calls share a pooled connection instead
// of redialing (observed through the node's request counter staying on
// one stream: the pool holds exactly one idle conn between calls).
func TestTCPConnReuse(t *testing.T) {
	_, addr := startTCPNode(t)
	tr := NewTCPTransport(addr)
	defer tr.Close()
	for i := 0; i < 5; i++ {
		if _, err := tr.Call(context.Background(), encodeRequest(nil, opList, "", nil)); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	tr.mu.Lock()
	idle := len(tr.idle)
	tr.mu.Unlock()
	if idle != 1 {
		t.Fatalf("idle pool after sequential calls: got %d conns, want 1 (reuse)", idle)
	}
}

// TestChanTransportClosed mirrors the TCP lifecycle contract for the
// in-process transport, including double Close.
func TestChanTransportClosed(t *testing.T) {
	svc := service.New(service.Config{Shards: 1})
	defer svc.Close()
	tr := NewChanTransport(NewNode(svc))
	if _, err := tr.Call(context.Background(), encodeRequest(nil, opList, "", nil)); err != nil {
		t.Fatal(err)
	}
	tr.Close()
	tr.Close() // idempotent
	if _, err := tr.Call(context.Background(), encodeRequest(nil, opList, "", nil)); !errors.Is(err, ErrTransportClosed) {
		t.Fatalf("Call after Close: got %v, want ErrTransportClosed", err)
	}
}
