// Package cluster turns shard = goroutine into node = config change: a
// coordinator routes whole collections across N backend nodes, each
// node running its own service.Service, with every exchange behind the
// Transport interface. Two transports ship — ChanTransport (in-process
// message passing, the default single-binary mode) and TCPTransport
// (length-prefixed CRC-framed messages reusing internal/wal's framing,
// so the wire format is versioned and integrity-checked the same way
// the on-disk log is). The discipline is message-passing-only: the
// coordinator and its nodes share no memory, which is what makes every
// later scale-out step a transport swap instead of a rewrite.
//
// Placement follows the sample-based splitter playbook of the parallel
// sorting literature: a cheap estimator samples each new collection's
// spec for size and class skew, and collections that look heavy are
// biased onto the least-loaded node instead of their hash slot (see
// placement.go). Everything else is FNV(key) → node, mirroring the
// service's own key → shard hash one level up.
package cluster

import (
	"encoding/binary"
	"fmt"
	"net/http"
	"time"
)

// Wire stream identity: every TCP connection opens with a 16-byte
// header (magic "ECSC", version, zero tag) from each side, built and
// checked by internal/wal's exported header helpers. A version this
// build does not speak closes the connection — same reject-unknown
// discipline as the WAL segment reader.
const (
	wireMagic = "ECSC"
	// WireVersion is the cluster protocol version. Version 1: the op
	// set below, JSON bodies, wal-framed.
	WireVersion uint16 = 1
)

// op identifies one request kind on the wire.
type op byte

const (
	opCreate     op = iota + 1 // body: service.OracleSpec JSON → CollectionInfo JSON
	opDrop                     // no body → no body
	opIngest                   // body: ingestArgs → service.IngestResult
	opDelete                   // body: deleteArgs → service.ChurnResult
	opInvalidate               // body: invalidateArgs → service.ChurnResult
	opClasses                  // body: classArgs → service.Snapshot
	opClassOf                  // body: classOfArgs → service.ClassView
	opStats                    // no body → service.CollectionInfo (with snapshot)
	opList                     // no body, no key → []service.CollectionInfo
	opHealth                   // no body, no key → nodeHealth
	opResilience               // body: service.ResilienceSpec JSON → no body
)

// Request argument bodies (JSON). Kept tiny and explicit so the wire
// contract is readable in one place.
type ingestArgs struct {
	Items []int `json:"items"`
	Flush bool  `json:"flush,omitempty"`
}

type deleteArgs struct {
	Element int `json:"element"`
}

type invalidateArgs struct {
	Class int  `json:"class"`
	Flush bool `json:"flush,omitempty"`
}

type classArgs struct {
	Fresh bool `json:"fresh,omitempty"`
}

type classOfArgs struct {
	Element int  `json:"element"`
	Fresh   bool `json:"fresh,omitempty"`
}

// nodeHealth is one backend's self-report, aggregated by the
// coordinator's readiness and metrics endpoints.
type nodeHealth struct {
	Collections int               `json:"collections"`
	Degraded    []DegradedBackend `json:"degraded,omitempty"`
	UptimeSecs  float64           `json:"uptime_seconds"`
	Corrupt     int64             `json:"corrupt_frames,omitempty"`
}

// DegradedBackend is one degraded collection in a node's health report.
type DegradedBackend struct {
	Key               string  `json:"key"`
	Breaker           string  `json:"breaker"`
	RetryAfterSeconds float64 `json:"retry_after_seconds"`
}

// RemoteError is a service error that crossed the wire: the owning node
// answered, but with a failure. Status preserves the node's HTTP
// mapping so the coordinator's HTTP layer relays it verbatim, and Go
// callers can still switch on it. RetryAfter is non-zero only for
// degraded-collection rejections (503 + Retry-After).
type RemoteError struct {
	Status     int
	Msg        string
	RetryAfter time.Duration
}

func (e *RemoteError) Error() string { return e.Msg }

// encodeRequest appends one request — [op][uvarint keylen][key][body] —
// to dst and returns the extended slice. The body is opaque here
// (JSON per the op table above).
func encodeRequest(dst []byte, o op, key string, body []byte) []byte {
	dst = append(dst, byte(o))
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	return append(dst, body...)
}

// decodeRequest splits a request payload back into its parts. The
// returned key and body alias p.
func decodeRequest(p []byte) (op, string, []byte, error) {
	if len(p) < 2 {
		return 0, "", nil, fmt.Errorf("cluster: request too short (%d bytes)", len(p))
	}
	o := op(p[0])
	if o < opCreate || o > opResilience {
		return 0, "", nil, fmt.Errorf("cluster: unknown op %d", p[0])
	}
	rest := p[1:]
	klen, n := binary.Uvarint(rest)
	if n <= 0 || klen > uint64(len(rest)-n) {
		return 0, "", nil, fmt.Errorf("cluster: bad key length")
	}
	rest = rest[n:]
	return o, string(rest[:klen]), rest[klen:], nil
}

// Response payloads: [0][body] on success, or
// [1][uvarint status][uvarint retryAfterNanos][message] on error.
const (
	respOK  = 0
	respErr = 1
)

// encodeOK appends a success response carrying body.
func encodeOK(dst, body []byte) []byte {
	dst = append(dst, respOK)
	return append(dst, body...)
}

// encodeErr appends an error response: the node's HTTP status mapping,
// the degraded retry-after (0 otherwise), and the error text.
func encodeErr(dst []byte, status int, retryAfter time.Duration, msg string) []byte {
	dst = append(dst, respErr)
	dst = binary.AppendUvarint(dst, uint64(status))
	dst = binary.AppendUvarint(dst, uint64(retryAfter))
	return append(dst, msg...)
}

// decodeResponse returns the success body, or the remote failure as a
// *RemoteError. A malformed response is a protocol error (the caller
// should drop the connection), returned as a plain error.
func decodeResponse(p []byte) ([]byte, error) {
	if len(p) < 1 {
		return nil, fmt.Errorf("cluster: empty response")
	}
	switch p[0] {
	case respOK:
		return p[1:], nil
	case respErr:
		rest := p[1:]
		status, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("cluster: bad error status")
		}
		rest = rest[n:]
		ra, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("cluster: bad error retry-after")
		}
		rest = rest[n:]
		if status < 100 || status > 599 {
			return nil, fmt.Errorf("cluster: impossible error status %d", status)
		}
		return nil, &RemoteError{Status: int(status), Msg: string(rest), RetryAfter: time.Duration(ra)}
	default:
		return nil, fmt.Errorf("cluster: unknown response tag %d", p[0])
	}
}

// statusText falls back to the standard reason phrase for error bodies.
func statusText(status int) string {
	if t := http.StatusText(status); t != "" {
		return t
	}
	return "error"
}
