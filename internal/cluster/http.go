package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ecsort/internal/algo"
	"ecsort/internal/service"
)

// Handler returns the coordinator's HTTP API — the same route table a
// single-binary service exposes (clients cannot tell a coordinator
// from a node), plus per-node fleet state on the health and metrics
// endpoints. Collection operations are forwarded to the owning node;
// /v1/algorithms is answered locally (the registry is compiled in,
// identical on every binary).
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", co.handleHealthz)
	mux.HandleFunc("GET /healthz/live", co.handleHealthz)
	mux.HandleFunc("GET /healthz/ready", co.handleReady)
	mux.HandleFunc("GET /metrics", co.handleMetrics)
	mux.HandleFunc("GET /v1/collections", co.handleList)
	mux.HandleFunc("GET /v1/algorithms", co.handleAlgorithms)
	mux.HandleFunc("PUT /v1/collections/{key}", co.handleCreate)
	mux.HandleFunc("DELETE /v1/collections/{key}", co.handleDrop)
	mux.HandleFunc("POST /v1/collections/{key}/items", co.handleIngest)
	mux.HandleFunc("DELETE /v1/collections/{key}/items/{element}", co.handleDeleteItem)
	mux.HandleFunc("GET /v1/collections/{key}/classes", co.handleClasses)
	mux.HandleFunc("GET /v1/collections/{key}/classes/{element}", co.handleClassOf)
	mux.HandleFunc("POST /v1/collections/{key}/classes/{class}/invalidate", co.handleInvalidate)
	mux.HandleFunc("GET /v1/collections/{key}/stats", co.handleStats)
	mux.HandleFunc("PATCH /v1/collections/{key}/resilience", co.handleUpdateResilience)
	return mux
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError maps coordinator-side errors to statuses: degraded
// rejections (tripped breaker OR down node) become 503 + Retry-After,
// remote failures relay the owning node's status, local routing errors
// use the service table.
func writeError(w http.ResponseWriter, err error) {
	var de *service.DegradedError
	if errors.As(err, &de) {
		secs := int64((de.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	}
	var re *RemoteError
	if errors.As(err, &re) {
		writeJSON(w, re.Status, errorResponse{Error: re.Msg})
		return
	}
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, service.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, service.ErrExists):
		status = http.StatusConflict
	case errors.Is(err, service.ErrBadItem), errors.Is(err, service.ErrBadSpec):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("cluster: bad request body: %w", err)
	}
	return nil
}

func boolParam(r *http.Request, name string) bool {
	switch strings.ToLower(r.URL.Query().Get(name)) {
	case "1", "true", "yes", "on":
		return true
	}
	return false
}

func (co *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	co.mu.RLock()
	collections := len(co.routes)
	co.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"role":           "coordinator",
		"uptime_seconds": co.Uptime().Seconds(),
		"nodes":          len(co.nodes),
		"collections":    collections,
	})
}

// handleReady aggregates readiness across the fleet: 200 when every
// node is up and no collection is degraded, 503 with per-node state
// otherwise. One dead node degrades ONLY its own section — the report
// names it, and the other nodes' collections keep serving.
func (co *Coordinator) handleReady(w http.ResponseWriter, r *http.Request) {
	states := co.Health(r.Context())
	ready := true
	for _, st := range states {
		if !st.Up || len(st.Degraded) > 0 {
			ready = false
		}
	}
	body := map[string]any{"status": "ready", "nodes": states}
	status := http.StatusOK
	if !ready {
		body["status"] = "degraded"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

func (co *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"collections": co.List(r.Context())})
}

func (co *Coordinator) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"default":    service.AlgorithmIncremental,
		"algorithms": algo.Infos(),
	})
}

func (co *Coordinator) handleCreate(w http.ResponseWriter, r *http.Request) {
	var spec service.OracleSpec
	if err := decodeBody(r, &spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	info, err := co.CreateCollection(r.Context(), r.PathValue("key"), spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"key":       info.Key,
		"kind":      info.Kind,
		"universe":  info.Universe,
		"algorithm": info.Algorithm,
	})
}

func (co *Coordinator) handleDrop(w http.ResponseWriter, r *http.Request) {
	if err := co.DropCollection(r.Context(), r.PathValue("key")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (co *Coordinator) handleIngest(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Items []int `json:"items"`
	}
	if err := decodeBody(r, &body); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	res, err := co.Ingest(r.Context(), r.PathValue("key"), body.Items, boolParam(r, "flush"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, res)
}

func (co *Coordinator) handleDeleteItem(w http.ResponseWriter, r *http.Request) {
	element, err := strconv.Atoi(r.PathValue("element"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: fmt.Sprintf("cluster: bad element %q: not an integer", r.PathValue("element"))})
		return
	}
	res, err := co.DeleteItem(r.Context(), r.PathValue("key"), element)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (co *Coordinator) handleClasses(w http.ResponseWriter, r *http.Request) {
	snap, err := co.Classes(r.Context(), r.PathValue("key"), boolParam(r, "fresh"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (co *Coordinator) handleClassOf(w http.ResponseWriter, r *http.Request) {
	element, err := strconv.Atoi(r.PathValue("element"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: fmt.Sprintf("cluster: bad element %q: not an integer", r.PathValue("element"))})
		return
	}
	view, err := co.ClassOf(r.Context(), r.PathValue("key"), element, boolParam(r, "fresh"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (co *Coordinator) handleInvalidate(w http.ResponseWriter, r *http.Request) {
	class, err := strconv.Atoi(r.PathValue("class"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: fmt.Sprintf("cluster: bad class %q: not an integer", r.PathValue("class"))})
		return
	}
	res, err := co.InvalidateClass(r.Context(), r.PathValue("key"), class, boolParam(r, "flush"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, res)
}

func (co *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	info, err := co.Stats(r.Context(), r.PathValue("key"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (co *Coordinator) handleUpdateResilience(w http.ResponseWriter, r *http.Request) {
	var rs service.ResilienceSpec
	if err := decodeBody(r, &rs); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	key := r.PathValue("key")
	if err := co.UpdateResilience(r.Context(), key, rs); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"key": key, "resilience": rs})
}

// handleMetrics renders cluster-level metrics: fleet shape, per-node
// routing and health gauges, and placement counters. Node-internal
// metrics (WAL, folds, oracle counters) stay on each node's own
// /metrics — scraping both gives the full picture without the
// coordinator re-exporting anything.
func (co *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	states := co.Health(r.Context())
	fmt.Fprintf(w, "# HELP ecsort_cluster_nodes Backend nodes in the cluster.\n")
	fmt.Fprintf(w, "# TYPE ecsort_cluster_nodes gauge\n")
	fmt.Fprintf(w, "ecsort_cluster_nodes %d\n", len(states))
	co.mu.RLock()
	fmt.Fprintf(w, "# HELP ecsort_cluster_collections Collections in the routing table.\n")
	fmt.Fprintf(w, "# TYPE ecsort_cluster_collections gauge\n")
	fmt.Fprintf(w, "ecsort_cluster_collections %d\n", len(co.routes))
	co.mu.RUnlock()
	fmt.Fprintf(w, "# HELP ecsort_cluster_node_up Whether the node answered its last exchange.\n")
	fmt.Fprintf(w, "# TYPE ecsort_cluster_node_up gauge\n")
	for _, st := range states {
		up := 0
		if st.Up {
			up = 1
		}
		fmt.Fprintf(w, "ecsort_cluster_node_up{node=%q} %d\n", st.Name, up)
	}
	fmt.Fprintf(w, "# HELP ecsort_cluster_node_collections Collections owned by the node.\n")
	fmt.Fprintf(w, "# TYPE ecsort_cluster_node_collections gauge\n")
	for _, st := range states {
		fmt.Fprintf(w, "ecsort_cluster_node_collections{node=%q} %d\n", st.Name, st.Collections)
	}
	fmt.Fprintf(w, "# HELP ecsort_cluster_routed_total Requests routed to the node.\n")
	fmt.Fprintf(w, "# TYPE ecsort_cluster_routed_total counter\n")
	for _, st := range states {
		fmt.Fprintf(w, "ecsort_cluster_routed_total{node=%q} %d\n", st.Name, st.Routed)
	}
	fmt.Fprintf(w, "# HELP ecsort_cluster_route_errors_total Transport-level failures per node.\n")
	fmt.Fprintf(w, "# TYPE ecsort_cluster_route_errors_total counter\n")
	for _, st := range states {
		fmt.Fprintf(w, "ecsort_cluster_route_errors_total{node=%q} %d\n", st.Name, st.Errors)
	}
	fmt.Fprintf(w, "# HELP ecsort_cluster_node_degraded_collections Degraded collections reported by the node.\n")
	fmt.Fprintf(w, "# TYPE ecsort_cluster_node_degraded_collections gauge\n")
	for _, st := range states {
		fmt.Fprintf(w, "ecsort_cluster_node_degraded_collections{node=%q} %d\n", st.Name, len(st.Degraded))
	}
	fmt.Fprintf(w, "# HELP ecsort_cluster_heavy_placements_total Collections the weight estimator steered off their hash slot.\n")
	fmt.Fprintf(w, "# TYPE ecsort_cluster_heavy_placements_total counter\n")
	fmt.Fprintf(w, "ecsort_cluster_heavy_placements_total %d\n", co.HeavyPlacements())
}
