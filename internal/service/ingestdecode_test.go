package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"testing"
)

// stdDecode is the generic path the streaming decoder replaced on the
// ingest route: encoding/json with unknown fields rejected, the exact
// decodeBody configuration.
func stdDecode(body string) ([]int, error) {
	dec := json.NewDecoder(io.LimitReader(strings.NewReader(body), maxIngestBody))
	dec.DisallowUnknownFields()
	var req ingestRequest
	if err := dec.Decode(&req); err != nil {
		return nil, err
	}
	return req.Items, nil
}

// TestItemsDecoderParity: on every body the old path accepted, the
// streaming decoder must produce the same items; on every body it
// rejected, the streaming decoder must reject too. (The reverse is not
// required — the handler contract only promises a 400, so the decoder
// may reject pathological bodies like escaped keys that encoding/json
// would have accepted.)
func TestItemsDecoderParity(t *testing.T) {
	bodies := []string{
		`{"items":[1,2,3]}`,
		`{"items":[0]}`,
		`{"items":[]}`,
		`{"items":[-5,17,-1]}`,
		`{"items":null}`,
		`{}`,
		`null`,
		`  {
			"items" : [ 1 ,	2 ]
		}  `,
		`{"items":[1,2]} trailing garbage ignored`,
		`{"items":[1],"items":[7,8]}`, // dup key: last wins
		`{"items":[9223372036854775807]}`,
		"{\"items\":[1,2]}\n",
		// Rejected by both paths:
		``,
		`{`,
		`{"items":`,
		`{"items":[1,`,
		`{"items":[1`,
		`{"items":[1.5]}`,
		`{"items":[1e3]}`,
		`{"items":["a"]}`,
		`{"items":[true]}`,
		`{"items":[01]}`,
		`{"items":[9223372036854775808]}`,
		`{"items":{}}`,
		`{"items":[[1]]}`,
		`{"other":[1]}`,
		`{"items":[1],"other":2}`,
		`[1,2]`,
		`"items"`,
		`42`,
		`nul`,
		`{"items" [1]}`,
		`{"items":[1] "x":2}`,
		`{items:[1]}`,
	}
	for _, body := range bodies {
		t.Run(fmt.Sprintf("%.32q", body), func(t *testing.T) {
			want, wantErr := stdDecode(body)
			d := getItemsDecoder()
			defer putItemsDecoder(d)
			got, gotErr := d.decode(strings.NewReader(body))
			if wantErr != nil {
				if gotErr == nil {
					t.Fatalf("encoding/json rejected (%v); streaming decoder accepted %v", wantErr, got)
				}
				return
			}
			if gotErr != nil {
				t.Fatalf("encoding/json accepted %v; streaming decoder rejected: %v", want, gotErr)
			}
			if len(got) != len(want) {
				t.Fatalf("items = %v, encoding/json got %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("items = %v, encoding/json got %v", got, want)
				}
			}
		})
	}
}

// TestItemsDecoderSmallReads: correctness must not depend on read
// chunking — a body dribbled one byte at a time decodes identically.
func TestItemsDecoderSmallReads(t *testing.T) {
	body := `{"items":[10,20,30,40,50]}`
	d := getItemsDecoder()
	defer putItemsDecoder(d)
	got, err := d.decode(iotest{r: strings.NewReader(body)})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{10, 20, 30, 40, 50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("items = %v, want %v", got, want)
		}
	}
}

// iotest yields one byte per Read.
type iotest struct{ r io.Reader }

func (o iotest) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return o.r.Read(p)
}

// TestItemsDecoderAllocs pins the zero-copy claim: a pooled decoder in
// steady state decodes a batch with zero allocations — no per-item
// staging, no []json.RawMessage, nothing.
func TestItemsDecoderAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	var body bytes.Buffer
	body.WriteString(`{"items":[0`)
	for i := 1; i < 512; i++ {
		fmt.Fprintf(&body, ",%d", i)
	}
	body.WriteString(`]}`)
	d := getItemsDecoder()
	defer putItemsDecoder(d)
	r := bytes.NewReader(body.Bytes())
	if _, err := d.decode(r); err != nil { // warm the arena
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		r.Reset(body.Bytes())
		items, err := d.decode(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(items) != 512 {
			t.Fatalf("decoded %d items", len(items))
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state decode = %v allocs/op, want 0", allocs)
	}
}

// BenchmarkIngestZeroCopy is the tracked-baseline benchmark of the
// ingest body decode (see BENCH_baseline.json and the CI bench smoke):
// the pooled streaming decoder (zerocopy) against the encoding/json
// path it replaced (stdjson) on an identical 512-element batch. The
// zerocopy steady state is 0 allocs/op; stdjson pays reflection plus
// slice staging per batch.
func BenchmarkIngestZeroCopy(b *testing.B) {
	var body bytes.Buffer
	body.WriteString(`{"items":[0`)
	for i := 1; i < 512; i++ {
		fmt.Fprintf(&body, ",%d", i)
	}
	body.WriteString(`]}`)
	raw := body.Bytes()

	b.Run("zerocopy", func(b *testing.B) {
		d := getItemsDecoder()
		defer putItemsDecoder(d)
		r := bytes.NewReader(raw)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Reset(raw)
			if _, err := d.decode(r); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stdjson", func(b *testing.B) {
		r := bytes.NewReader(raw)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Reset(raw)
			dec := json.NewDecoder(io.LimitReader(r, maxIngestBody))
			dec.DisallowUnknownFields()
			var req ingestRequest
			if err := dec.Decode(&req); err != nil {
				b.Fatal(err)
			}
		}
	})
}
