package service

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// resilientSpec is a label-oracle spec carrying the resilience
// middleware so UpdateResilience has something to retune.
func resilientSpec() OracleSpec {
	return OracleSpec{
		Kind: KindLabel, Labels: []int{0, 0, 1, 1},
		Resilience: &ResilienceSpec{TimeoutMs: 200, Retries: 1, BackoffMs: 1, MaxBackoffMs: 1},
	}
}

// col reaches into the service for a collection's live handle —
// white-box access for asserting on middleware state.
func col(t *testing.T, svc *Service, key string) *collection {
	t.Helper()
	c, err := svc.shardOf(key).lookup(key)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestUpdateResilienceLive(t *testing.T) {
	svc := New(Config{Shards: 1, Workers: 1})
	defer svc.Close()
	if err := svc.CreateCollection("r", resilientSpec()); err != nil {
		t.Fatal(err)
	}
	// Baseline: one attempt per ask.
	if _, err := svc.Ingest("r", []int{0, 1}, true); err != nil {
		t.Fatal(err)
	}
	base := col(t, svc, "r").res.Stats().Attempts

	// Raise votes to 3: every subsequent ask is re-asked until one side
	// is unbeatable, so attempts grow ~3x per test.
	update := ResilienceSpec{TimeoutMs: 200, Retries: 1, BackoffMs: 1, MaxBackoffMs: 1, Votes: 3}
	if err := svc.UpdateResilience("r", update); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Ingest("r", []int{2, 3}, true); err != nil {
		t.Fatal(err)
	}
	c := col(t, svc, "r")
	if got := c.res.Stats().Attempts - base; got < 3 {
		t.Fatalf("attempts after votes=3 update = %d, want >= 3 (vote mode not applied live)", got)
	}
	if c.spec.Resilience == nil || c.spec.Resilience.Votes != 3 {
		t.Fatalf("collection spec not updated: %+v", c.spec.Resilience)
	}

	// Updates validate like creates: negatives are rejected.
	if err := svc.UpdateResilience("r", ResilienceSpec{Retries: -1}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("negative update err = %v, want ErrBadSpec", err)
	}
}

func TestUpdateResilienceRejectsPlainCollection(t *testing.T) {
	svc := New(Config{Shards: 1, Workers: 1})
	defer svc.Close()
	if err := svc.CreateCollection("plain", OracleSpec{Kind: KindLabel, Labels: []int{0, 1}}); err != nil {
		t.Fatal(err)
	}
	err := svc.UpdateResilience("plain", ResilienceSpec{Votes: 3})
	if !errors.Is(err, ErrBadSpec) {
		t.Fatalf("retune of a middleware-free collection err = %v, want ErrBadSpec", err)
	}
	if err := svc.UpdateResilience("ghost", ResilienceSpec{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("retune of a missing collection err = %v, want ErrNotFound", err)
	}
}

func TestUpdateResilienceHTTP(t *testing.T) {
	svc := New(Config{Shards: 1, Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	if code := call(t, client, "PUT", ts.URL+"/v1/collections/r", resilientSpec(), nil); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	patch := ResilienceSpec{TimeoutMs: 500, Votes: 5, BreakerThreshold: 9}
	var out struct {
		Key        string         `json:"key"`
		Resilience ResilienceSpec `json:"resilience"`
	}
	if code := call(t, client, "PATCH", ts.URL+"/v1/collections/r/resilience", patch, &out); code != http.StatusOK {
		t.Fatalf("patch: %d", code)
	}
	if out.Key != "r" || out.Resilience.Votes != 5 {
		t.Fatalf("patch response = %+v", out)
	}
	if got := col(t, svc, "r").spec.Resilience.BreakerThreshold; got != 9 {
		t.Fatalf("threshold after PATCH = %d, want 9", got)
	}

	// Error mapping: unknown key 404, invalid profile 400, junk body 400.
	if code := call(t, client, "PATCH", ts.URL+"/v1/collections/ghost/resilience", patch, nil); code != http.StatusNotFound {
		t.Fatalf("patch missing collection: %d, want 404", code)
	}
	if code := call(t, client, "PATCH", ts.URL+"/v1/collections/r/resilience", ResilienceSpec{Votes: -1}, nil); code != http.StatusBadRequest {
		t.Fatalf("patch negative votes: %d, want 400", code)
	}
	if code := call(t, client, "PATCH", ts.URL+"/v1/collections/r/resilience", map[string]any{"nope": 1}, nil); code != http.StatusBadRequest {
		t.Fatalf("patch unknown field: %d, want 400", code)
	}
}

// TestUpdateResilienceDurable proves the PATCH survives both recovery
// paths: WAL replay (update → crashless close → reopen) and checkpoint
// restore (checkpoint → close → reopen).
func TestUpdateResilienceDurable(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shards: 1, Workers: 1, DataDir: dir, Fsync: "never"}
	svc, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.CreateCollection("r", resilientSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Ingest("r", []int{0, 1, 2}, true); err != nil {
		t.Fatal(err)
	}
	update := ResilienceSpec{TimeoutMs: 750, Retries: 4, BackoffMs: 1, MaxBackoffMs: 2, Votes: 3, BreakerThreshold: 7}
	if err := svc.UpdateResilience("r", update); err != nil {
		t.Fatal(err)
	}
	svc.Close()

	// WAL replay path: the RecResilience record re-applies the profile.
	svc, err = Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := col(t, svc, "r").spec.Resilience
	if got == nil || *got != update {
		t.Fatalf("profile after WAL replay = %+v, want %+v", got, update)
	}
	// Checkpoint path: the spec in the snapshot carries the profile.
	if err := svc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	svc.Close()
	svc, err = Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	got = col(t, svc, "r").spec.Resilience
	if got == nil || *got != update {
		t.Fatalf("profile after checkpoint restore = %+v, want %+v", got, update)
	}
}

// TestProbeWriteAdmission pins the service-level probe-write contract:
// while the breaker cools, every write 503s; once the cooldown elapses,
// exactly one write per cooldown window is admitted as a probe (it
// reaches the oracle — attempts grow) while concurrent writes keep
// getting 503 until the probe settles.
func TestProbeWriteAdmission(t *testing.T) {
	svc := New(Config{Shards: 1, Workers: 1})
	defer svc.Close()
	spec := OracleSpec{
		Kind: KindLabel, Labels: []int{0, 0, 1, 1, 2, 2},
		Faults: &FaultSpec{FailRate: 1, Seed: 1}, // permanently dead backend
		Resilience: &ResilienceSpec{
			TimeoutMs: 200, Retries: 1, BackoffMs: 1, MaxBackoffMs: 1,
			BreakerThreshold: 1, BreakerCooldownMs: 150,
		},
	}
	if err := svc.CreateCollection("p", spec); err != nil {
		t.Fatal(err)
	}
	// First folding ingest meets the dead oracle and trips the breaker;
	// the accepted items stay buffered.
	if _, err := svc.Ingest("p", []int{0, 1}, true); err == nil {
		t.Fatal("folding ingest against a dead oracle succeeded")
	}
	c := col(t, svc, "p")
	if ra, bad := c.degraded(); !bad || ra <= 0 {
		t.Fatalf("collection not degraded after trip (ra=%v)", ra)
	}
	// While cooling: writes rejected with DegradedError.
	var de *DegradedError
	if _, err := svc.Ingest("p", []int{2}, true); !errors.As(err, &de) {
		t.Fatalf("write while cooling err = %v, want DegradedError", err)
	}

	// After the cooldown: the first write is the probe — admitted past
	// the gate, batch accepted, and it actually asks the (still dead)
	// oracle. The probe's fold then fails and re-opens the breaker, so
	// the call still surfaces a DegradedError — but one earned by a real
	// oracle attempt, not a fast rejection.
	time.Sleep(200 * time.Millisecond)
	before := c.res.Stats().Attempts
	ingestedBefore := c.ingested.Load()
	svc.Ingest("p", []int{2}, false) // no forceFlush: a probe must fold anyway
	if got := c.res.Stats().Attempts; got <= before {
		t.Fatalf("probe write issued no oracle attempts (%d -> %d)", before, got)
	}
	if got := c.ingested.Load(); got != ingestedBefore+1 {
		t.Fatalf("probe write's batch not accepted (ingested %d -> %d)", ingestedBefore, got)
	}
	// The failed probe re-opened the breaker: the next write 503s fast,
	// without touching the oracle or accepting the batch.
	before = c.res.Stats().Attempts
	ingestedBefore = c.ingested.Load()
	if _, err := svc.Ingest("p", []int{3}, true); !errors.As(err, &de) {
		t.Fatalf("write after failed probe err = %v, want DegradedError", err)
	}
	if got := c.res.Stats().Attempts; got != before {
		t.Fatalf("rejected write touched the oracle (%d -> %d)", before, got)
	}
	if got := c.ingested.Load(); got != ingestedBefore {
		t.Fatalf("rejected write accepted items (ingested %d -> %d)", ingestedBefore, got)
	}
}
