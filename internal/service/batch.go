package service

import (
	"fmt"

	"ecsort/internal/model"
)

// Batch-oracle plumbing: the counting wrapper buildSorter installs
// around batch-capable effective oracles (feeding the
// ecsort_oracle_batch_* metrics), the capability mask behind
// Config.DisableBatchOracle, and the ingest batch validator shared by
// the item routes.

// countingBatchOracle decorates a batch-capable effective oracle so
// the service can export chunk-amortization metrics: one SameBatch
// call is one "batch round", however many pairs it carried. Same/N
// promote from the embedded interface, so per-pair callers (the repair
// daemon's re-verification) pass through untouched.
type countingBatchOracle struct {
	model.Oracle
	batch model.BatchOracle
	svc   *Service
}

// SameBatch implements model.BatchOracle.
func (o *countingBatchOracle) SameBatch(pairs []model.Pair, out []bool) {
	o.svc.batchRounds.Add(1)
	o.svc.batchPairs.Add(int64(len(pairs)))
	o.batch.SameBatch(pairs, out)
}

// oracleOnly masks an oracle's batch capability: its method set is
// exactly N/Same, so a session built over it never detects
// model.BatchOracle. This is Config.DisableBatchOracle's mechanism.
type oracleOnly struct{ model.Oracle }

// BatchOracleStats reports the service-wide batch-oracle amortization
// counters: rounds is whole-chunk SameBatch invocations across every
// collection, pairs the equivalence tests they carried. pairs/rounds
// is the per-invocation amortization; both are zero when
// DisableBatchOracle is set or no collection's oracle is
// batch-capable.
func (s *Service) BatchOracleStats() (rounds, pairs int64) {
	return s.batchRounds.Load(), s.batchPairs.Load()
}

// validateBatch pre-validates one ingest batch against the collection
// engine — range, within-batch duplicates, already-ingested elements —
// so the whole batch is rejected before the WAL or the sorter sees any
// of it. Small batches (the common case) dup-check by quadratic scan
// instead of allocating a set; the crossover keeps the scan well under
// the map's constant factor.
func validateBatch(items []int, n int, srt sorter) error {
	small := len(items) <= 128
	var inBatch map[int]struct{}
	if !small {
		inBatch = make(map[int]struct{}, len(items))
	}
	for i, e := range items {
		if e < 0 || e >= n {
			return fmt.Errorf("%w: element %d out of range [0,%d)", ErrBadItem, e, n)
		}
		dup := false
		if small {
			for j := 0; j < i && !dup; j++ {
				dup = items[j] == e
			}
		} else {
			_, dup = inBatch[e]
		}
		if dup {
			return fmt.Errorf("%w: element %d appears twice in batch", ErrBadItem, e)
		}
		if srt.Has(e) {
			return fmt.Errorf("%w: element %d already ingested", ErrBadItem, e)
		}
		if !small {
			inBatch[e] = struct{}{}
		}
	}
	return nil
}
