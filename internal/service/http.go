package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"ecsort/internal/algo"
	"ecsort/internal/core"
	"ecsort/internal/oracle"
)

// Handler returns the service's HTTP API:
//
//	PUT    /v1/collections/{key}         create a collection (body: OracleSpec; "algorithm" picks the regimen)
//	DELETE /v1/collections/{key}         drop a collection
//	GET    /v1/collections               list collections
//	GET    /v1/algorithms                list the sorting-regimen registry (name, mode, hints)
//	POST   /v1/collections/{key}/items   batch add (body: {"items":[...]}; ?flush=1 forces a flush)
//	DELETE /v1/collections/{key}/items/{element}    remove one element (WAL-logged; re-addable later)
//	GET    /v1/collections/{key}/classes current partition (?fresh=1 flushes first)
//	GET    /v1/collections/{key}/classes/{element}  one element's class (O(1) index lookup; ?fresh=1 flushes first)
//	POST   /v1/collections/{key}/classes/{class}/invalidate  withdraw a class for re-verification (?flush=1 re-folds now)
//	GET    /v1/collections/{key}/stats   per-collection counters + snapshot
//	PATCH  /v1/collections/{key}/resilience  live-update the resilience profile (body: ResilienceSpec)
//	GET    /healthz                      liveness (also /healthz/live)
//	GET    /healthz/ready                readiness: 503 while any collection is degraded or recovery failed
//	GET    /metrics                      Prometheus-style text metrics
//
// All request and response bodies are JSON except /metrics. Writes
// against a degraded collection (oracle circuit breaker open) get 503
// with a Retry-After header; reads keep serving the last published
// snapshot.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /healthz/live", s.handleHealthz)
	mux.HandleFunc("GET /healthz/ready", s.handleReady)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/collections", s.handleList)
	mux.HandleFunc("GET /v1/algorithms", s.handleAlgorithms)
	mux.HandleFunc("PUT /v1/collections/{key}", s.handleCreate)
	mux.HandleFunc("DELETE /v1/collections/{key}", s.handleDrop)
	mux.HandleFunc("POST /v1/collections/{key}/items", s.handleIngest)
	mux.HandleFunc("DELETE /v1/collections/{key}/items/{element}", s.handleDeleteItem)
	mux.HandleFunc("GET /v1/collections/{key}/classes", s.handleClasses)
	mux.HandleFunc("GET /v1/collections/{key}/classes/{element}", s.handleClassOf)
	mux.HandleFunc("POST /v1/collections/{key}/classes/{class}/invalidate", s.handleInvalidate)
	mux.HandleFunc("GET /v1/collections/{key}/stats", s.handleStats)
	mux.HandleFunc("PATCH /v1/collections/{key}/resilience", s.handleUpdateResilience)
	return mux
}

// ingestRequest is the POST items body.
type ingestRequest struct {
	Items []int `json:"items"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError maps service errors onto HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	var de *DegradedError
	if errors.As(err, &de) {
		// Degraded write: tell the client when the breaker admits its
		// next probe. Ceil to whole seconds, minimum 1 — Retry-After: 0
		// would invite an immediate hammer.
		secs := int64((de.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	}
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrExists):
		status = http.StatusConflict
	case errors.Is(err, ErrBadItem), errors.Is(err, ErrBadSpec):
		status = http.StatusBadRequest
	case errors.Is(err, core.ErrConstRoundFailed), errors.Is(err, core.ErrAdaptiveExhausted):
		// A const-round fold failed its λ promise on the collection's
		// current sub-universe — a documented, retryable regimen outcome
		// (the buffered items survive; a later fold may succeed as data
		// arrives), not a server bug.
		status = http.StatusConflict
	case errors.Is(err, ErrClosed), errors.Is(err, context.Canceled):
		// context.Canceled surfaces from folds aborted by Close.
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// decodeBody parses a JSON request body into v, rejecting unknown fields
// so client typos fail loudly.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("service: bad request body: %w", err)
	}
	return nil
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": s.Uptime().Seconds(),
		"shards":         len(s.shards),
		"collections":    len(s.Collections()),
	})
}

// handleReady is the readiness probe: 200 when every collection's
// oracle breaker admits writes, 503 with the degraded collections —
// their breaker state and probe cooldown — otherwise. Liveness
// (/healthz, /healthz/live) stays 200 throughout: a degraded service is
// alive, still serving snapshots, and must not be restarted into losing
// them.
func (s *Service) handleReady(w http.ResponseWriter, r *http.Request) {
	type degradedInfo struct {
		Key               string  `json:"key"`
		Breaker           string  `json:"breaker"`
		RetryAfterSeconds float64 `json:"retry_after_seconds"`
	}
	var degraded []degradedInfo
	collections := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, c := range sh.cols {
			collections++
			if ra, bad := c.degraded(); bad {
				degraded = append(degraded, degradedInfo{
					Key:               c.key,
					Breaker:           c.res.State().String(),
					RetryAfterSeconds: ra.Seconds(),
				})
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(degraded, func(i, j int) bool { return degraded[i].Key < degraded[j].Key })
	body := map[string]any{
		"status":      "ready",
		"collections": collections,
		"recovery":    s.recovery,
	}
	status := http.StatusOK
	if len(degraded) > 0 {
		body["status"] = "degraded"
		body["degraded"] = degraded
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"collections": s.Collections()})
}

// handleAlgorithms serves the sorting-regimen registry: the names a
// collection spec's "algorithm" field accepts, each with its
// comparison-model mode, consumed/required hints, and round complexity.
func (s *Service) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"default":    AlgorithmIncremental,
		"algorithms": algo.Infos(),
	})
}

func (s *Service) handleCreate(w http.ResponseWriter, r *http.Request) {
	var spec OracleSpec
	if err := decodeBody(r, &spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	key := r.PathValue("key")
	if err := s.CreateCollection(key, spec); err != nil {
		writeError(w, err)
		return
	}
	_, algoName, _ := spec.algorithm() // validated by CreateCollection
	writeJSON(w, http.StatusCreated, map[string]any{
		"key":       key,
		"kind":      spec.Kind,
		"universe":  spec.N(),
		"algorithm": algoName,
	})
}

func (s *Service) handleDrop(w http.ResponseWriter, r *http.Request) {
	if err := s.DropCollection(r.PathValue("key")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request) {
	// The hottest write path decodes through the pooled streaming
	// decoder (ingestdecode.go) instead of decodeBody: items land in a
	// reusable arena with zero per-item allocations. Ingest copies what
	// it keeps (WAL encode buffer, sorter Adds), so the arena is safe
	// to recycle once the call returns.
	d := getItemsDecoder()
	items, err := d.decode(io.LimitReader(r.Body, maxIngestBody))
	if err != nil {
		putItemsDecoder(d)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	force := boolParam(r, "flush")
	res, err := s.Ingest(r.PathValue("key"), items, force)
	putItemsDecoder(d)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, res)
}

func (s *Service) handleDeleteItem(w http.ResponseWriter, r *http.Request) {
	element, err := strconv.Atoi(r.PathValue("element"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: fmt.Sprintf("service: bad element %q: not an integer", r.PathValue("element"))})
		return
	}
	res, err := s.DeleteItem(r.PathValue("key"), element)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Service) handleInvalidate(w http.ResponseWriter, r *http.Request) {
	class, err := strconv.Atoi(r.PathValue("class"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: fmt.Sprintf("service: bad class %q: not an integer", r.PathValue("class"))})
		return
	}
	res, err := s.InvalidateClass(r.PathValue("key"), class, boolParam(r, "flush"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, res)
}

func (s *Service) handleClasses(w http.ResponseWriter, r *http.Request) {
	snap, err := s.Classes(r.PathValue("key"), boolParam(r, "fresh"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Service) handleClassOf(w http.ResponseWriter, r *http.Request) {
	element, err := strconv.Atoi(r.PathValue("element"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: fmt.Sprintf("service: bad element %q: not an integer", r.PathValue("element"))})
		return
	}
	view, err := s.ClassOf(r.PathValue("key"), element, boolParam(r, "fresh"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleUpdateResilience live-updates a collection's resilience profile
// — votes, timeouts, breaker tuning — without recreating it. The update
// is WAL-logged, so it survives a restart.
func (s *Service) handleUpdateResilience(w http.ResponseWriter, r *http.Request) {
	var rs ResilienceSpec
	if err := decodeBody(r, &rs); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	key := r.PathValue("key")
	if err := s.UpdateResilience(key, rs); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"key": key, "resilience": rs})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	info, err := s.CollectionStats(r.PathValue("key"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleMetrics renders Prometheus-style text metrics: service-wide
// totals plus per-collection series, labeled by collection key. Each
// collection's snapshot is loaded exactly once per scrape, so every
// series of one collection comes from the same flush.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var infos []CollectionInfo
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, c := range sh.cols {
			infos = append(infos, c.info(true))
		}
		sh.mu.RUnlock()
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Key < infos[j].Key })
	var totalElems, totalPending, totalBatches, totalFlushes int64
	for _, in := range infos {
		totalElems += in.Ingested
		totalPending += in.Pending
		totalBatches += in.Batches
		totalFlushes += in.Flushes
	}
	fmt.Fprintf(w, "# HELP ecsort_collections Number of live collections.\n")
	fmt.Fprintf(w, "# TYPE ecsort_collections gauge\n")
	fmt.Fprintf(w, "ecsort_collections %d\n", len(infos))
	fmt.Fprintf(w, "# HELP ecsort_elements_ingested_total Elements accepted across all collections.\n")
	fmt.Fprintf(w, "# TYPE ecsort_elements_ingested_total counter\n")
	fmt.Fprintf(w, "ecsort_elements_ingested_total %d\n", totalElems)
	fmt.Fprintf(w, "# HELP ecsort_elements_pending Buffered elements awaiting a flush.\n")
	fmt.Fprintf(w, "# TYPE ecsort_elements_pending gauge\n")
	fmt.Fprintf(w, "ecsort_elements_pending %d\n", totalPending)
	fmt.Fprintf(w, "# HELP ecsort_batches_total Accepted ingest batches.\n")
	fmt.Fprintf(w, "# TYPE ecsort_batches_total counter\n")
	fmt.Fprintf(w, "ecsort_batches_total %d\n", totalBatches)
	fmt.Fprintf(w, "# HELP ecsort_flushes_total Compounding flush rounds executed.\n")
	fmt.Fprintf(w, "# TYPE ecsort_flushes_total counter\n")
	fmt.Fprintf(w, "ecsort_flushes_total %d\n", totalFlushes)

	// Execution runtime: the persistent pool every collection's session
	// runs its parallel rounds on.
	rs := s.pool.Stats()
	fmt.Fprintf(w, "# HELP ecsort_runtime_workers Parallel width of the shared execution pool.\n")
	fmt.Fprintf(w, "# TYPE ecsort_runtime_workers gauge\n")
	fmt.Fprintf(w, "ecsort_runtime_workers %d\n", rs.Workers)
	fmt.Fprintf(w, "# HELP ecsort_runtime_jobs_total Parallel round jobs dispatched to the pool.\n")
	fmt.Fprintf(w, "# TYPE ecsort_runtime_jobs_total counter\n")
	fmt.Fprintf(w, "ecsort_runtime_jobs_total %d\n", rs.Jobs)
	fmt.Fprintf(w, "# HELP ecsort_runtime_chunks_total Work chunks executed across all pool jobs.\n")
	fmt.Fprintf(w, "# TYPE ecsort_runtime_chunks_total counter\n")
	fmt.Fprintf(w, "ecsort_runtime_chunks_total %d\n", rs.Chunks)
	fmt.Fprintf(w, "# HELP ecsort_runtime_inline_rounds_total Rounds executed serially on the submitting goroutine.\n")
	fmt.Fprintf(w, "# TYPE ecsort_runtime_inline_rounds_total counter\n")
	fmt.Fprintf(w, "ecsort_runtime_inline_rounds_total %d\n", rs.Inline)

	// Backpressure: shard op-queue depth (writer backlog under overload)
	// and batch-fold latency (how long Flush+publish holds a shard).
	fmt.Fprintf(w, "# HELP ecsort_shard_queue_depth Queued writer ops per shard.\n")
	fmt.Fprintf(w, "# TYPE ecsort_shard_queue_depth gauge\n")
	for i, sh := range s.shards {
		fmt.Fprintf(w, "ecsort_shard_queue_depth{shard=\"%d\"} %d\n", i, len(sh.ops))
	}
	fmt.Fprintf(w, "# HELP ecsort_shard_queue_capacity Bound of each shard's op queue.\n")
	fmt.Fprintf(w, "# TYPE ecsort_shard_queue_capacity gauge\n")
	fmt.Fprintf(w, "ecsort_shard_queue_capacity %d\n", cap(s.shards[0].ops))
	fmt.Fprintf(w, "# HELP ecsort_fold_total Batch folds (flush+publish) executed on shard goroutines.\n")
	fmt.Fprintf(w, "# TYPE ecsort_fold_total counter\n")
	fmt.Fprintf(w, "ecsort_fold_total %d\n", s.folds.Load())
	fmt.Fprintf(w, "# HELP ecsort_fold_duration_seconds_total Cumulative batch-fold latency.\n")
	fmt.Fprintf(w, "# TYPE ecsort_fold_duration_seconds_total counter\n")
	fmt.Fprintf(w, "ecsort_fold_duration_seconds_total %.9f\n", float64(s.foldNanos.Load())/1e9)
	fmt.Fprintf(w, "# HELP ecsort_fold_last_duration_seconds Latency of the most recent batch fold.\n")
	fmt.Fprintf(w, "# TYPE ecsort_fold_last_duration_seconds gauge\n")
	fmt.Fprintf(w, "ecsort_fold_last_duration_seconds %.9f\n", float64(s.lastFoldNanos.Load())/1e9)

	// Durability: WAL append/fsync activity, checkpoint progress, and
	// what the last boot recovered. ecsort_durable is 0 for a
	// memory-only service, and the families below then read as zeros.
	fmt.Fprintf(w, "# HELP ecsort_durable Whether the service runs with a write-ahead-logged data directory.\n")
	fmt.Fprintf(w, "# TYPE ecsort_durable gauge\n")
	fmt.Fprintf(w, "ecsort_durable %d\n", boolMetric(s.recovery.Durable))
	fmt.Fprintf(w, "# HELP ecsort_wal_appends_total Records appended across all shard WALs.\n")
	fmt.Fprintf(w, "# TYPE ecsort_wal_appends_total counter\n")
	fmt.Fprintf(w, "ecsort_wal_appends_total %d\n", s.walCtr.Appends.Load())
	fmt.Fprintf(w, "# HELP ecsort_wal_bytes_total Framed bytes written to shard WALs.\n")
	fmt.Fprintf(w, "# TYPE ecsort_wal_bytes_total counter\n")
	fmt.Fprintf(w, "ecsort_wal_bytes_total %d\n", s.walCtr.Bytes.Load())
	fmt.Fprintf(w, "# HELP ecsort_wal_fsyncs_total WAL fsyncs issued by the durability policy.\n")
	fmt.Fprintf(w, "# TYPE ecsort_wal_fsyncs_total counter\n")
	fmt.Fprintf(w, "ecsort_wal_fsyncs_total %d\n", s.walCtr.Fsyncs.Load())
	fmt.Fprintf(w, "# HELP ecsort_wal_fsync_duration_seconds_total Cumulative time spent in WAL fsync.\n")
	fmt.Fprintf(w, "# TYPE ecsort_wal_fsync_duration_seconds_total counter\n")
	fmt.Fprintf(w, "ecsort_wal_fsync_duration_seconds_total %.9f\n", float64(s.walCtr.FsyncNanos.Load())/1e9)
	fmt.Fprintf(w, "# HELP ecsort_wal_last_fsync_duration_seconds Duration of the most recent WAL fsync.\n")
	fmt.Fprintf(w, "# TYPE ecsort_wal_last_fsync_duration_seconds gauge\n")
	fmt.Fprintf(w, "ecsort_wal_last_fsync_duration_seconds %.9f\n", float64(s.walCtr.LastFsyncNanos.Load())/1e9)
	fmt.Fprintf(w, "# HELP ecsort_wal_rotations_total Size-triggered WAL segment rotations (no checkpoint).\n")
	fmt.Fprintf(w, "# TYPE ecsort_wal_rotations_total counter\n")
	fmt.Fprintf(w, "ecsort_wal_rotations_total %d\n", s.walRotations.Load())
	fmt.Fprintf(w, "# HELP ecsort_checkpoints_total Shard checkpoints written (snapshot + WAL truncation).\n")
	fmt.Fprintf(w, "# TYPE ecsort_checkpoints_total counter\n")
	fmt.Fprintf(w, "ecsort_checkpoints_total %d\n", s.checkpoints.Load())
	fmt.Fprintf(w, "# HELP ecsort_checkpoint_errors_total Failed checkpoint attempts.\n")
	fmt.Fprintf(w, "# TYPE ecsort_checkpoint_errors_total counter\n")
	fmt.Fprintf(w, "ecsort_checkpoint_errors_total %d\n", s.checkpointErrors.Load())
	fmt.Fprintf(w, "# HELP ecsort_checkpoint_last_age_seconds Seconds since the most recent checkpoint; -1 before the first.\n")
	fmt.Fprintf(w, "# TYPE ecsort_checkpoint_last_age_seconds gauge\n")
	if last := s.lastCheckpointNano.Load(); last > 0 {
		fmt.Fprintf(w, "ecsort_checkpoint_last_age_seconds %.3f\n", time.Since(time.Unix(0, last)).Seconds())
	} else {
		fmt.Fprintf(w, "ecsort_checkpoint_last_age_seconds -1\n")
	}
	fmt.Fprintf(w, "# HELP ecsort_recovery_duration_seconds Wall time the last boot spent replaying durable state.\n")
	fmt.Fprintf(w, "# TYPE ecsort_recovery_duration_seconds gauge\n")
	fmt.Fprintf(w, "ecsort_recovery_duration_seconds %.9f\n", s.recovery.Duration.Seconds())
	fmt.Fprintf(w, "# HELP ecsort_recovery_records_replayed WAL records replayed by the last boot.\n")
	fmt.Fprintf(w, "# TYPE ecsort_recovery_records_replayed gauge\n")
	fmt.Fprintf(w, "ecsort_recovery_records_replayed %d\n", s.recovery.Records)
	fmt.Fprintf(w, "# HELP ecsort_recovery_torn_tails Segments whose crash-torn final record the last boot truncated.\n")
	fmt.Fprintf(w, "# TYPE ecsort_recovery_torn_tails gauge\n")
	fmt.Fprintf(w, "ecsort_recovery_torn_tails %d\n", s.recovery.TornTails)

	// Self-repair daemon: sweep/sample/divergence/correction totals plus
	// how recently a divergence was last seen (-1 before the first).
	for _, m := range []struct {
		name, help string
		value      int64
	}{
		{"ecsort_repair_sweeps_total", "Repair sweeps executed.", s.repairSweeps.Load()},
		{"ecsort_repair_samples_total", "Element pairs re-verified against their oracle.", s.repairSamples.Load()},
		{"ecsort_repair_divergences_total", "Sampled pairs whose oracle verdict contradicted the published partition.", s.repairDivergences.Load()},
		{"ecsort_repair_corrections_total", "Divergences repaired (classes withdrawn and re-folded).", s.repairCorrections.Load()},
		{"ecsort_repair_skipped_degraded_total", "Collection sweeps skipped because the oracle breaker was open.", s.repairSkipped.Load()},
		{"ecsort_repair_errors_total", "Failed repair oracle asks and correction attempts.", s.repairErrors.Load()},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", m.name, m.help, m.name, m.name, m.value)
	}
	fmt.Fprintf(w, "# HELP ecsort_repair_last_divergence_age_seconds Seconds since the repair daemon last saw a divergence; -1 before the first.\n")
	fmt.Fprintf(w, "# TYPE ecsort_repair_last_divergence_age_seconds gauge\n")
	if last := s.lastDivergenceNano.Load(); last > 0 {
		fmt.Fprintf(w, "ecsort_repair_last_divergence_age_seconds %.3f\n", time.Since(time.Unix(0, last)).Seconds())
	} else {
		fmt.Fprintf(w, "ecsort_repair_last_divergence_age_seconds -1\n")
	}

	// Fault tolerance: per-collection degraded/breaker gauges and the
	// resilience middleware's counters, only for collections that carry
	// the middleware.
	fmt.Fprintf(w, "# HELP ecsort_collection_degraded Whether the collection's oracle breaker currently refuses writes.\n")
	fmt.Fprintf(w, "# TYPE ecsort_collection_degraded gauge\n")
	for _, in := range infos {
		fmt.Fprintf(w, "ecsort_collection_degraded{collection=%q} %d\n", in.Key, boolMetric(in.RetryAfterSeconds > 0))
	}
	resStats := make(map[string]oracle.ResilientStats)
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, c := range sh.cols {
			if c.res != nil {
				resStats[c.key] = c.res.Stats()
			}
		}
		sh.mu.RUnlock()
	}
	resKeys := make([]string, 0, len(resStats))
	for k := range resStats {
		resKeys = append(resKeys, k)
	}
	sort.Strings(resKeys)
	for _, m := range []struct {
		name, help string
		value      func(oracle.ResilientStats) int64
	}{
		{"ecsort_oracle_attempts_total", "Oracle calls issued through the resilience middleware (incl. retries and votes).",
			func(st oracle.ResilientStats) int64 { return st.Attempts }},
		{"ecsort_oracle_retries_total", "Backed-off oracle re-attempts.",
			func(st oracle.ResilientStats) int64 { return st.Retries }},
		{"ecsort_oracle_failures_total", "Oracle asks that exhausted their retry budget.",
			func(st oracle.ResilientStats) int64 { return st.Failures }},
		{"ecsort_oracle_fast_fails_total", "Oracle calls rejected by an open circuit breaker.",
			func(st oracle.ResilientStats) int64 { return st.FastFails }},
		{"ecsort_oracle_breaker_trips_total", "Circuit breaker trips.",
			func(st oracle.ResilientStats) int64 { return st.Trips }},
		{"ecsort_oracle_batch_asks_total", "Whole-chunk exchanges issued through the middleware's batch path.",
			func(st oracle.ResilientStats) int64 { return st.BatchAsks }},
		{"ecsort_oracle_batch_fallbacks_total", "Pairs re-asked individually after a batch exchange failed them.",
			func(st oracle.ResilientStats) int64 { return st.BatchFallbacks }},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", m.name, m.help, m.name)
		for _, k := range resKeys {
			fmt.Fprintf(w, "%s{collection=%q} %d\n", m.name, k, m.value(resStats[k]))
		}
	}

	// Batch-oracle amortization, service-wide: rounds is SameBatch
	// invocations (one per worker-pool chunk), pairs the tests they
	// carried — pairs/rounds is the amortization factor the batch path
	// buys over per-pair dispatch.
	batchRounds, batchPairs := s.BatchOracleStats()
	fmt.Fprintf(w, "# HELP ecsort_oracle_batch_rounds_total Whole-chunk oracle invocations across all collections.\n")
	fmt.Fprintf(w, "# TYPE ecsort_oracle_batch_rounds_total counter\n")
	fmt.Fprintf(w, "ecsort_oracle_batch_rounds_total %d\n", batchRounds)
	fmt.Fprintf(w, "# HELP ecsort_oracle_batch_pairs_total Equivalence tests answered through whole-chunk oracle invocations.\n")
	fmt.Fprintf(w, "# TYPE ecsort_oracle_batch_pairs_total counter\n")
	fmt.Fprintf(w, "ecsort_oracle_batch_pairs_total %d\n", batchPairs)

	// Per-collection gauges from the published snapshots (comparisons,
	// rounds, widest round, class counts), never touching the writers.
	fmt.Fprintf(w, "# HELP ecsort_collection_classes Classes in the published snapshot.\n")
	fmt.Fprintf(w, "# TYPE ecsort_collection_classes gauge\n")
	for _, in := range infos {
		fmt.Fprintf(w, "ecsort_collection_classes{collection=%q} %d\n", in.Key, in.Classes)
	}
	for _, m := range []struct {
		name, typ, help string
		value           func(*Snapshot) int64
	}{
		{"ecsort_collection_comparisons_total", "counter", "Equivalence tests charged to the collection's session.",
			func(sn *Snapshot) int64 { return sn.Stats.Comparisons }},
		{"ecsort_collection_rounds_total", "counter", "Physical comparison rounds executed.",
			func(sn *Snapshot) int64 { return int64(sn.Stats.Rounds) }},
		{"ecsort_collection_max_round_size", "gauge", "Widest physical round so far.",
			func(sn *Snapshot) int64 { return int64(sn.Stats.MaxRoundSize) }},
		{"ecsort_collection_elements", "gauge", "Elements covered by the published snapshot.",
			func(sn *Snapshot) int64 { return int64(sn.Size) }},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ)
		for _, in := range infos {
			fmt.Fprintf(w, "%s{collection=%q} %d\n", m.name, in.Key, m.value(in.Snapshot))
		}
	}

	// Churn counters: deletes, class withdrawals, repair corrections.
	for _, m := range []struct {
		name, help string
		value      func(CollectionInfo) int64
	}{
		{"ecsort_collection_deleted_total", "Elements removed by delete calls.",
			func(in CollectionInfo) int64 { return in.Deleted }},
		{"ecsort_collection_invalidated_total", "Class withdrawals (explicit invalidations plus repair corrections).",
			func(in CollectionInfo) int64 { return in.Invalidated }},
		{"ecsort_collection_repaired_total", "Divergences the repair daemon corrected.",
			func(in CollectionInfo) int64 { return in.Repaired }},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", m.name, m.help, m.name)
		for _, in := range infos {
			fmt.Fprintf(w, "%s{collection=%q} %d\n", m.name, in.Key, m.value(in))
		}
	}
}

// boolMetric renders a bool as the 0/1 gauge Prometheus expects.
func boolMetric(b bool) int {
	if b {
		return 1
	}
	return 0
}

// boolParam interprets ?name=1 / true / yes (any case) as true.
func boolParam(r *http.Request, name string) bool {
	switch strings.ToLower(r.URL.Query().Get(name)) {
	case "1", "true", "yes", "on":
		return true
	}
	return false
}
