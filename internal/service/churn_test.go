package service

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ecsort/internal/wal"
)

// TestChurnSemantics pins the delete/invalidate contract on both sorter
// engines: the incremental session (in-place answer compaction) and a
// batch regimen (buffer/answer splice in batchSorter).
func TestChurnSemantics(t *testing.T) {
	labels := []int{0, 0, 1, 1, 2, 2}
	for _, tc := range []struct {
		name string
		spec OracleSpec
	}{
		{"incremental", OracleSpec{Kind: KindLabel, Labels: labels}},
		{"er", OracleSpec{Kind: KindLabel, Labels: labels, Algorithm: "er", Seed: 5}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			svc := New(Config{Shards: 1, Workers: 1})
			defer svc.Close()
			if err := svc.CreateCollection("k", tc.spec); err != nil {
				t.Fatal(err)
			}
			if _, err := svc.Ingest("k", []int{0, 1, 2, 3, 4, 5}, true); err != nil {
				t.Fatal(err)
			}
			full := [][]int{{0, 1}, {2, 3}, {4, 5}}
			assertClasses := func(want [][]int) {
				t.Helper()
				snap, err := svc.Classes("k", false)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(snap.Classes, want) {
					t.Fatalf("classes = %v, want %v", snap.Classes, want)
				}
			}
			assertClasses(full)

			// Delete a merged element: it leaves its class immediately.
			res, err := svc.DeleteItem("k", 1)
			if err != nil {
				t.Fatal(err)
			}
			if res.Element != 1 || res.Pending != 0 {
				t.Fatalf("delete result = %+v", res)
			}
			assertClasses([][]int{{0}, {2, 3}, {4, 5}})

			// Deleting again, out-of-range, or on a missing key fails.
			if _, err := svc.DeleteItem("k", 1); !errors.Is(err, ErrNotFound) {
				t.Fatalf("double delete: %v, want ErrNotFound", err)
			}
			if _, err := svc.DeleteItem("k", 99); !errors.Is(err, ErrBadItem) {
				t.Fatalf("out-of-range delete: %v, want ErrBadItem", err)
			}
			if _, err := svc.DeleteItem("nosuch", 0); !errors.Is(err, ErrNotFound) {
				t.Fatalf("delete on missing key: %v, want ErrNotFound", err)
			}

			// A deleted element can be re-ingested.
			if _, err := svc.Ingest("k", []int{1}, true); err != nil {
				t.Fatal(err)
			}
			assertClasses(full)

			// Invalidate without folding: the members go pending.
			inv, err := svc.InvalidateClass("k", 1, false)
			if err != nil {
				t.Fatal(err)
			}
			if inv.Element != 2 || inv.Requeued != 2 || inv.Pending != 2 {
				t.Fatalf("invalidate result = %+v", inv)
			}
			assertClasses([][]int{{0, 1}, {4, 5}})

			// Deleting a pending element removes it from the buffer.
			if _, err := svc.DeleteItem("k", 3); err != nil {
				t.Fatal(err)
			}
			if _, err := svc.Flush("k"); err != nil {
				t.Fatal(err)
			}
			assertClasses([][]int{{0, 1}, {2}, {4, 5}})
			if _, err := svc.Ingest("k", []int{3}, true); err != nil {
				t.Fatal(err)
			}
			assertClasses(full)

			// Invalidate with an immediate fold: the class re-merges in
			// the same call.
			inv, err = svc.InvalidateClass("k", 0, true)
			if err != nil {
				t.Fatal(err)
			}
			if inv.Element != 0 || inv.Requeued != 2 || inv.Pending != 0 {
				t.Fatalf("folding invalidate result = %+v", inv)
			}
			assertClasses(full)

			// A class index outside the snapshot is not found.
			if _, err := svc.InvalidateClass("k", 5, false); !errors.Is(err, ErrNotFound) {
				t.Fatalf("bad class index: %v, want ErrNotFound", err)
			}

			info, err := svc.CollectionStats("k")
			if err != nil {
				t.Fatal(err)
			}
			if info.Deleted != 2 || info.Invalidated != 2 {
				t.Fatalf("churn counters = deleted %d, invalidated %d, want 2, 2", info.Deleted, info.Invalidated)
			}
		})
	}
}

// TestChurnHTTP drives the delete and invalidate routes end to end.
func TestChurnHTTP(t *testing.T) {
	svc := New(Config{Shards: 1, Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	spec := OracleSpec{Kind: KindLabel, Labels: []int{0, 0, 1, 1}}
	if code := call(t, client, "PUT", ts.URL+"/v1/collections/c", spec, nil); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	if code := call(t, client, "POST", ts.URL+"/v1/collections/c/items?flush=1",
		map[string][]int{"items": []int{0, 1, 2, 3}}, nil); code != http.StatusAccepted {
		t.Fatalf("ingest: %d", code)
	}

	var res ChurnResult
	if code := call(t, client, "DELETE", ts.URL+"/v1/collections/c/items/1", nil, &res); code != http.StatusOK {
		t.Fatalf("delete: %d", code)
	}
	if res.Element != 1 || res.Pending != 0 {
		t.Fatalf("delete result = %+v", res)
	}
	if code := call(t, client, "DELETE", ts.URL+"/v1/collections/c/items/1", nil, nil); code != http.StatusNotFound {
		t.Fatalf("double delete: %d, want 404", code)
	}
	if code := call(t, client, "DELETE", ts.URL+"/v1/collections/c/items/xyz", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("non-numeric element: %d, want 400", code)
	}
	if code := call(t, client, "DELETE", ts.URL+"/v1/collections/c/items/99", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("out-of-range element: %d, want 400", code)
	}

	res = ChurnResult{}
	if code := call(t, client, "POST", ts.URL+"/v1/collections/c/classes/1/invalidate?flush=1", nil, &res); code != http.StatusAccepted {
		t.Fatalf("invalidate: %d", code)
	}
	if res.Element != 2 || res.Requeued != 2 || res.Pending != 0 {
		t.Fatalf("invalidate result = %+v", res)
	}
	if code := call(t, client, "POST", ts.URL+"/v1/collections/c/classes/9/invalidate", nil, nil); code != http.StatusNotFound {
		t.Fatalf("bad class index: %d, want 404", code)
	}
	if code := call(t, client, "POST", ts.URL+"/v1/collections/c/classes/x/invalidate", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("non-numeric class: %d, want 400", code)
	}

	var snap Snapshot
	if code := call(t, client, "GET", ts.URL+"/v1/collections/c/classes?fresh=1", nil, &snap); code != http.StatusOK {
		t.Fatalf("classes: %d", code)
	}
	if want := [][]int{{0}, {2, 3}}; !reflect.DeepEqual(snap.Classes, want) {
		t.Fatalf("classes after churn = %v, want %v", snap.Classes, want)
	}
}

// driveChurnOps is driveOps' churn-heavy sibling: a deterministic
// workload of ingests, deletes, re-ingests, and class invalidations over
// two collections (incremental and a batch ER regimen), split in two
// halves so crash-recovery tests can kill the service at the seam.
func driveChurnOps(t *testing.T, svc *Service, half int) []string {
	t.Helper()
	keys := []string{"inc", "erc"}
	labels := make([]int, 48)
	for i := range labels {
		labels[i] = i % 6
	}
	if half == 0 {
		if err := svc.CreateCollection("inc", OracleSpec{Kind: KindLabel, Labels: labels}); err != nil {
			t.Fatal(err)
		}
		if err := svc.CreateCollection("erc", OracleSpec{Kind: KindLabel, Labels: labels, Algorithm: "er", Seed: 3}); err != nil {
			t.Fatal(err)
		}
	}
	perm := rand.New(rand.NewSource(21)).Perm(48) // same order both runs
	lo, hi := 0, 24
	if half == 1 {
		lo, hi = 24, 48
	}
	for at := lo; at < hi; at += 6 {
		batch := perm[at : at+6]
		for _, k := range keys {
			if _, err := svc.Ingest(k, batch, true); err != nil {
				t.Fatal(err)
			}
		}
		// Churn: drop the batch's first element, then bring it back —
		// sometimes leaving it pending across the crash seam.
		e := batch[0]
		for _, k := range keys {
			if _, err := svc.DeleteItem(k, e); err != nil {
				t.Fatal(err)
			}
			if _, err := svc.Ingest(k, []int{e}, at%12 == 0); err != nil {
				t.Fatal(err)
			}
		}
		if at%12 == 6 {
			if _, err := svc.InvalidateClass("inc", 0, true); err != nil {
				t.Fatal(err)
			}
			// Left unfolded: the withdrawn members stay pending.
			if _, err := svc.InvalidateClass("erc", 0, false); err != nil {
				t.Fatal(err)
			}
		}
	}
	return keys
}

// TestDurableChurnRecoveryBitIdentical extends the recovery anchor to
// the churn records: a service crashed mid-way through a delete- and
// invalidate-heavy workload must recover bit-identical — classes, stats,
// churn counters — to one that never crashed.
func TestDurableChurnRecoveryBitIdentical(t *testing.T) {
	control := New(Config{Shards: 2, Workers: 1})
	defer control.Close()
	keys := driveChurnOps(t, control, 0)
	driveChurnOps(t, control, 1)
	want := map[string]fingerprint{}
	for _, k := range keys {
		want[k] = snapshotKeyed(t, control, k)
	}

	dir := t.TempDir()
	cfg := Config{Shards: 2, Workers: 1, DataDir: dir, Fsync: "never"}
	svc, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	driveChurnOps(t, svc, 0)
	svc.crash()

	revived, err := Open(cfg)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer revived.Close()
	if rec := revived.Recovery(); rec.Records == 0 {
		t.Errorf("expected replayed records, got %+v", rec)
	}
	driveChurnOps(t, revived, 1)
	for _, k := range keys {
		got := snapshotKeyed(t, revived, k)
		if !reflect.DeepEqual(got.Classes, want[k].Classes) {
			t.Errorf("%s: classes diverged after churn recovery:\n got %v\nwant %v", k, got.Classes, want[k].Classes)
		}
		if got.Info != want[k].Info {
			t.Errorf("%s: stats fingerprint diverged:\n got %+v\nwant %+v", k, got.Info, want[k].Info)
		}
	}
}

// TestWALRotationBySize pins size-triggered segment rotation: with a
// tiny MaxSegmentBytes the shard log splits into multiple generations,
// the rotation counter moves, and recovery walks the whole chain back
// to a bit-identical collection.
func TestWALRotationBySize(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shards: 1, Workers: 1, DataDir: dir, Fsync: "never", MaxSegmentBytes: 256}
	svc, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]int, 32)
	for i := range labels {
		labels[i] = i % 4
	}
	if err := svc.CreateCollection("r", OracleSpec{Kind: KindLabel, Labels: labels}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if _, err := svc.Ingest("r", []int{i}, true); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := svc.DeleteItem("r", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.InvalidateClass("r", 0, true); err != nil {
		t.Fatal(err)
	}
	if got := svc.walRotations.Load(); got == 0 {
		t.Error("walRotations = 0, want size-triggered rotations")
	}
	segs, err := wal.Segments(filepath.Join(dir, "shard-0"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Errorf("segments after rotation = %+v, want at least 2 generations", segs)
	}
	want := snapshotKeyed(t, svc, "r")
	svc.crash()

	revived, err := Open(cfg)
	if err != nil {
		t.Fatalf("recovery across rotated segments: %v", err)
	}
	defer revived.Close()
	if rec := revived.Recovery(); rec.Segments < 2 {
		t.Errorf("recovery visited %d segments, want the whole rotated chain; info %+v", rec.Segments, rec)
	}
	if got := snapshotKeyed(t, revived, "r"); !reflect.DeepEqual(got, want) {
		t.Errorf("state diverged across rotated-segment recovery:\n got %+v\nwant %+v", got, want)
	}
}

// TestDurableV1DirectoryRefused pins the format-version gate at the
// service level, on both layers: a data directory stamped version 1 in
// its meta file, and a segment whose header claims version 1, must each
// refuse to open — a v2 reader never reinterprets v1 bytes.
func TestDurableV1DirectoryRefused(t *testing.T) {
	t.Run("meta", func(t *testing.T) {
		dir := t.TempDir()
		cfg := Config{Shards: 1, Workers: 1, DataDir: dir}
		svc, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		svc.Close()
		path := filepath.Join(dir, "ecsort-meta.json")
		if err := os.WriteFile(path, []byte(`{"format_version":1,"shards":1}`), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = Open(cfg)
		if err == nil {
			t.Fatal("Open accepted a version-1 data directory")
		}
		if !strings.Contains(err.Error(), "format version 1") {
			t.Errorf("error %q does not name the refused version", err)
		}
	})
	t.Run("segment", func(t *testing.T) {
		dir := t.TempDir()
		cfg := Config{Shards: 1, Workers: 1, DataDir: dir, Fsync: "never"}
		svc, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.CreateCollection("k", OracleSpec{Kind: KindLabel, Labels: []int{0, 1}}); err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Ingest("k", []int{0, 1}, true); err != nil {
			t.Fatal(err)
		}
		svc.crash()
		// Rewrite the segment header's version field to 1.
		seg := filepath.Join(dir, "shard-0", wal.SegmentName(1))
		f, err := os.OpenFile(seg, os.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		var v [2]byte
		binary.LittleEndian.PutUint16(v[:], 1)
		if _, err := f.WriteAt(v[:], 4); err != nil {
			t.Fatal(err)
		}
		f.Close()
		_, err = Open(cfg)
		if err == nil {
			t.Fatal("Open accepted a version-1 WAL segment")
		}
		if !strings.Contains(err.Error(), "version 1 unsupported") {
			t.Errorf("error %q does not name the refused version", err)
		}
	})
}
