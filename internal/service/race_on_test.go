//go:build race

package service

// raceEnabled reports that this test binary was built with the race
// detector, under which allocation counts are not meaningful (sync.Pool
// is deliberately leaky and instrumentation allocates).
const raceEnabled = true
