package service

import (
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ecsort/internal/core"
)

// TestRepairSamplerValidation pins the repair-config boundary: unknown
// distribution names are ErrBadSpec at Open time, and every supported
// sampler draws in-range positions.
func TestRepairSamplerValidation(t *testing.T) {
	if _, err := Open(Config{Repair: RepairConfig{Dist: "nosuch"}}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("Open with unknown repair distribution: %v, want ErrBadSpec", err)
	}
	rng := rand.New(rand.NewSource(1))
	for _, name := range []string{"", "uniform", "geometric", "poisson", "zeta"} {
		sp, err := newRepairSampler(RepairConfig{Dist: name, Param: 0})
		if err != nil {
			t.Fatalf("sampler %q: %v", name, err)
		}
		for k := 0; k < 200; k++ {
			if got := sp.index(rng, 7); got < 0 || got >= 7 {
				t.Fatalf("sampler %q drew %d, want [0,7)", name, got)
			}
		}
	}
}

// matchesTruth reports whether a snapshot covers all n elements and its
// partition equals the label partition.
func matchesTruth(snap *Snapshot, labels []int) bool {
	if snap.Size != len(labels) {
		return false
	}
	got := core.Result{Classes: snap.Classes}
	return core.SameClassification(got.Labels(len(labels)), labels)
}

// TestRepairConvergence is the robustness anchor: a collection folded
// through a noisy oracle (30% transient failures masked by retries, 12%
// silent flips masked by 5-vote majorities — residual wrong-verdict
// rate under 2%) accumulates wrong merges, and repeated repair sweeps
// must converge the published partition back to ground truth.
func TestRepairConvergence(t *testing.T) {
	// Small universe on purpose: every retry pays a jittered backoff
	// sleep, and a full re-fold is O(n²) comparisons, so the wall clock
	// scales with n² × FailRate. 16 elements keep the worst-case fold
	// under half a second while still leaving room for wrong merges.
	const n = 16
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % 4
	}
	svc := New(Config{Shards: 1, Workers: 1, Repair: RepairConfig{Samples: 48, Seed: 3}})
	defer svc.Close()
	spec := OracleSpec{
		Kind: KindLabel, Labels: labels,
		Faults: &FaultSpec{FailRate: 0.3, FlipRate: 0.12, Seed: 9},
		Resilience: &ResilienceSpec{
			Votes: 5, Retries: 3, BackoffMs: 1, MaxBackoffMs: 2,
			// High enough that the fail rate cannot produce the
			// consecutive-exhaustion streak that would trip the breaker:
			// this test is about flipped answers, not availability.
			BreakerThreshold: 1000,
		},
	}
	if err := svc.CreateCollection("noisy", spec); err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < n; lo += 4 {
		items := make([]int, 4)
		for i := range items {
			items[i] = lo + i
		}
		if _, err := svc.Ingest("noisy", items, true); err != nil {
			t.Fatal(err)
		}
	}

	converged := -1
	for sweep := 0; sweep < 60; sweep++ {
		snap, err := svc.Classes("noisy", false)
		if err != nil {
			t.Fatal(err)
		}
		if matchesTruth(snap, labels) {
			converged = sweep
			break
		}
		svc.RepairSweep()
	}
	if converged < 0 {
		snap, _ := svc.Classes("noisy", false)
		t.Fatalf("no convergence after 60 repair sweeps; classes %v", snap.Classes)
	}
	t.Logf("converged after %d sweeps, %d samples, %d divergences, %d corrections, %d errors",
		converged, svc.repairSamples.Load(), svc.repairDivergences.Load(),
		svc.repairCorrections.Load(), svc.repairErrors.Load())
	info, err := svc.CollectionStats("noisy")
	if err != nil {
		t.Fatal(err)
	}
	if svc.repairCorrections.Load() != info.Repaired {
		t.Errorf("corrections %d != collection repaired counter %d", svc.repairCorrections.Load(), info.Repaired)
	}
}

// TestRepairDaemonLoop pins the background daemon wiring: with an
// interval set, sweeps run without explicit calls.
func TestRepairDaemonLoop(t *testing.T) {
	svc := New(Config{Shards: 1, Workers: 1, Repair: RepairConfig{Interval: time.Millisecond, Samples: 4}})
	defer svc.Close()
	labels := []int{0, 0, 1, 1}
	if err := svc.CreateCollection("k", OracleSpec{Kind: KindLabel, Labels: labels}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Ingest("k", []int{0, 1, 2, 3}, true); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for svc.repairSweeps.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if svc.repairSweeps.Load() == 0 {
		t.Fatal("repair daemon never swept")
	}
	if svc.repairDivergences.Load() != 0 {
		t.Errorf("fault-free collection produced %d divergences", svc.repairDivergences.Load())
	}
}

// TestDegradedBreakerHTTP pins the degraded-mode contract over HTTP: a
// collection whose oracle breaker is open keeps serving its last
// snapshot on reads, rejects every write with 503 and a Retry-After
// header, reports degraded on the readiness probe while liveness stays
// 200, and is skipped by repair sweeps.
func TestDegradedBreakerHTTP(t *testing.T) {
	svc := New(Config{Shards: 1, Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	spec := OracleSpec{
		Kind: KindLabel, Labels: []int{0, 0, 1, 1},
		Faults: &FaultSpec{FailRate: 1, Seed: 1},
		Resilience: &ResilienceSpec{
			TimeoutMs: 200, Retries: 1, BackoffMs: 1, MaxBackoffMs: 1,
			BreakerThreshold: 1, BreakerCooldownMs: 600_000, // stays open for the whole test
		},
	}
	if code := call(t, client, "PUT", ts.URL+"/v1/collections/d", spec, nil); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}

	// The first folding ingest meets the dead oracle, trips the breaker
	// mid-fold, and comes back degraded.
	req, err := http.NewRequest("POST", ts.URL+"/v1/collections/d/items?flush=1",
		strings.NewReader(`{"items":[0,1,2,3]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("folding ingest against a dead oracle: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("degraded ingest response has no Retry-After header")
	}

	// Writes stay rejected with Retry-After while the breaker is open.
	for _, w := range []struct{ method, path, body string }{
		{"POST", "/v1/collections/d/items", `{"items":[0]}`},
		{"DELETE", "/v1/collections/d/items/0", ""},
		{"POST", "/v1/collections/d/classes/0/invalidate", ""},
	} {
		var body io.Reader
		if w.body != "" {
			body = strings.NewReader(w.body)
		}
		req, err := http.NewRequest(w.method, ts.URL+w.path, body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s %s while degraded: %d, want 503", w.method, w.path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s %s while degraded: no Retry-After header", w.method, w.path)
		}
	}

	// Reads fall back to the last published snapshot — both the stale
	// path and the fresh path, whose flush is refused.
	var snap Snapshot
	if code := call(t, client, "GET", ts.URL+"/v1/collections/d/classes", nil, &snap); code != http.StatusOK {
		t.Fatalf("stale read while degraded: %d, want 200", code)
	}
	if code := call(t, client, "GET", ts.URL+"/v1/collections/d/classes?fresh=1", nil, &snap); code != http.StatusOK {
		t.Fatalf("fresh read while degraded: %d, want 200 (stale fallback)", code)
	}

	// Liveness stays up; readiness reports the degraded collection.
	if code := call(t, client, "GET", ts.URL+"/healthz/live", nil, nil); code != http.StatusOK {
		t.Fatalf("liveness while degraded: %d, want 200", code)
	}
	req, _ = http.NewRequest("GET", ts.URL+"/healthz/ready", nil)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	ready, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readiness while degraded: %d, want 503", resp.StatusCode)
	}
	for _, want := range []string{`"status": "degraded"`, `"key": "d"`, `"breaker": "open"`} {
		if !strings.Contains(string(ready), want) {
			t.Errorf("readiness body missing %s:\n%s", want, ready)
		}
	}

	// Metrics expose the degraded gauge and the breaker trip.
	resp, err = client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`ecsort_collection_degraded{collection="d"} 1`,
		`ecsort_oracle_breaker_trips_total{collection="d"} 1`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Repair skips the collection instead of hammering the dead oracle.
	if rep := svc.RepairSweep(); rep.SkippedDegraded != 1 {
		t.Errorf("repair sweep on a degraded collection: %+v, want SkippedDegraded 1", rep)
	}

	// The collection's stats name the breaker state.
	info, err := svc.CollectionStats("d")
	if err != nil {
		t.Fatal(err)
	}
	if info.Breaker != "open" || info.RetryAfterSeconds <= 0 {
		t.Errorf("degraded stats = breaker %q, retry-after %v", info.Breaker, info.RetryAfterSeconds)
	}
}

// TestHealthzSplit pins the healthy case of the liveness/readiness
// split: both probes answer 200, and the legacy /healthz stays alive.
func TestHealthzSplit(t *testing.T) {
	svc := New(Config{Shards: 1, Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()
	for _, path := range []string{"/healthz", "/healthz/live"} {
		if code := call(t, client, "GET", ts.URL+path, nil, nil); code != http.StatusOK {
			t.Errorf("GET %s: %d, want 200", path, code)
		}
	}
	resp, err := client.Get(ts.URL + "/healthz/ready")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz/ready: %d, want 200", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"status": "ready"`) {
		t.Errorf("readiness body missing ready status:\n%s", body)
	}
}
