package service

// Durability glue: boot-time recovery (checkpoint + WAL-tail replay) and
// checkpointing, bridging the service's collections to internal/wal. All
// of the code here runs either before the shard goroutines start (Open's
// recovery pass, which inherits the same single-writer exclusivity — the
// go statement publishes the recovered state) or on a shard goroutine
// (checkpoints), so the shard-ownership discipline checked by ecs-vet
// holds throughout. The on-disk format is specified in
// docs/PERSISTENCE.md.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"ecsort/internal/adversary"
	"ecsort/internal/agents"
	"ecsort/internal/core"
	"ecsort/internal/model"
	"ecsort/internal/oracle"
	"ecsort/internal/wal"
)

// engine bundles what buildSorter assembles for one collection: the
// classification engine, the regimen name, the effective oracle the
// engine tests against (the resilience middleware when configured, the
// bare spec oracle otherwise), and the middleware handle itself (nil
// for plain collections) — the breaker the service consults for
// degraded-mode gating.
type engine struct {
	srt      sorter
	algoName string
	orc      model.Oracle
	res      *oracle.Resilient
}

// buildSorter constructs the classification stack a spec asks for: the
// ground-truth oracle, optionally wrapped in fault injection
// (spec.Faults) and the resilience middleware (any Faults or Resilience
// setting), feeding the incremental compounding engine by default or a
// batch regimen from the registry. Spec errors surface here — at create
// time and again on recovery, where a checkpointed spec that no longer
// validates must fail the boot rather than silently drop a collection.
func (s *Service) buildSorter(spec OracleSpec) (engine, error) {
	base, err := spec.Build()
	if err != nil {
		return engine{}, err
	}
	alg, algoName, err := spec.algorithm()
	if err != nil {
		return engine{}, err
	}
	if nw, ok := base.(*agents.Network); ok && !s.cfg.DisableBatchOracle {
		// Agent collections answer whole worker-pool chunks as waves of
		// real protocol sessions on the service pool — the batch-oracle
		// sibling of Network.Bound — instead of one handshake per Same.
		base = nw.Batch(s.pool)
	}
	eng := engine{algoName: algoName, orc: base}
	if spec.Faults != nil || spec.Resilience != nil {
		// A faulted oracle is always fronted by the middleware: raw
		// injected errors must never reach a session, whose oracle
		// interface has no failure channel.
		var un oracle.Unreliable
		if spec.Faults != nil {
			un = adversary.NewFlaky(base, spec.Faults.config())
		} else {
			un = oracle.AsUnreliable(base)
		}
		var rcfg oracle.ResilientConfig
		if spec.Resilience != nil {
			rcfg = spec.Resilience.config()
		}
		// Bind asks to the service lifetime so Close interrupts them.
		rcfg.Ctx = s.ctx
		eng.res = oracle.NewResilient(un, rcfg)
		eng.orc = eng.res
	}
	if b, ok := eng.orc.(model.BatchOracle); ok {
		if s.cfg.DisableBatchOracle {
			// Mask the capability so sessions fall back to per-pair Same
			// (Resilient always carries SameBatch, so the mask is what
			// makes the switch effective for resilient collections too).
			eng.orc = oracleOnly{b}
		} else {
			eng.orc = &countingBatchOracle{Oracle: b, batch: b, svc: s}
		}
	}
	opts := []model.Option{model.WithPool(s.pool), model.Workers(s.pool.Size()), model.WithContext(s.ctx)}
	if s.cfg.Processors > 0 {
		opts = append(opts, model.Processors(s.cfg.Processors))
	}
	if alg == nil {
		inc, err := core.NewIncremental(model.NewSession(eng.orc, model.CR, opts...))
		if err != nil {
			return engine{}, err
		}
		eng.srt = incSorter{inc}
		return eng, nil
	}
	eng.srt = newBatchSorter(alg, eng.orc, s.ctx, opts)
	return eng, nil
}

// metaName is the data-directory identity file, written on first boot.
// It pins the parameters that must not drift across restarts.
const metaName = "ecsort-meta.json"

// dirMeta is the data directory's identity. Shards is load-bearing:
// collections hash onto shards by key, so reopening a directory with a
// different shard count would place recovered collections on shards no
// lookup ever routes to. Recovery refuses the mismatch instead.
type dirMeta struct {
	FormatVersion int `json:"format_version"`
	Shards        int `json:"shards"`
}

// checkMeta verifies the data directory matches this service's
// configuration, stamping a fresh directory with the current identity.
func (s *Service) checkMeta() error {
	path := filepath.Join(s.cfg.DataDir, metaName)
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		b, err = json.Marshal(dirMeta{FormatVersion: wal.FormatVersion, Shards: len(s.shards)})
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			return fmt.Errorf("service: stamp data directory: %w", err)
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("service: read data directory meta: %w", err)
	}
	var m dirMeta
	if err := json.Unmarshal(b, &m); err != nil {
		return fmt.Errorf("%w: %s: %v", wal.ErrCorrupt, path, err)
	}
	if m.FormatVersion < wal.MinFormatVersion || m.FormatVersion > wal.FormatVersion {
		return fmt.Errorf("service: data directory %s uses format version %d; this build reads versions %d through %d",
			s.cfg.DataDir, m.FormatVersion, wal.MinFormatVersion, wal.FormatVersion)
	}
	if m.FormatVersion < wal.FormatVersion {
		// Readable older directory: restamp to the current version now
		// that this build will write current-version segments and
		// checkpoints into it, so a later downgrade fails here — at the
		// meta file, with a clear message — instead of mid-replay on an
		// unreadable newer segment header.
		b, err := json.Marshal(dirMeta{FormatVersion: wal.FormatVersion, Shards: m.Shards})
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			return fmt.Errorf("service: restamp data directory: %w", err)
		}
	}
	if m.Shards != len(s.shards) {
		return fmt.Errorf("service: data directory %s was written with %d shards but the service is configured with %d; "+
			"collection placement would change — reopen with Shards=%d", s.cfg.DataDir, m.Shards, len(s.shards), m.Shards)
	}
	return nil
}

// recoverAll rebuilds every shard from the data directory. Called by Open
// before any shard goroutine starts.
func (s *Service) recoverAll() error {
	start := time.Now()
	if err := os.MkdirAll(s.cfg.DataDir, 0o755); err != nil {
		return fmt.Errorf("service: create data directory: %w", err)
	}
	if err := s.checkMeta(); err != nil {
		return err
	}
	for _, sh := range s.shards {
		if err := s.recoverShard(sh); err != nil {
			s.closeRecoveredLogs()
			return fmt.Errorf("service: recover %s: %w", sh.dir, err)
		}
	}
	s.recovery.Durable = true
	s.recovery.Duration = time.Since(start)
	return nil
}

// closeRecoveredLogs closes every log a failed recovery pass already
// opened, so Open does not leak file handles. Runs before any shard
// goroutine starts, with the exclusivity the goroutines would have had.
//
//ecsort:shard-goroutine
func (s *Service) closeRecoveredLogs() {
	for _, sh := range s.shards {
		if sh.wal != nil {
			sh.wal.Close()
		}
	}
}

// recoverShard rebuilds one shard: load its checkpoint (if any), replay
// the WAL tail at or above the checkpoint's generation, reopen the final
// segment for appending (creating generation 1 in a fresh directory), and
// sweep segments the last checkpoint already superseded.
//
// Runs before the shard goroutine starts, with the same exclusivity the
// goroutine will have — nothing else can touch the shard until Open's go
// statement publishes it.
//
//ecsort:shard-goroutine
func (s *Service) recoverShard(sh *shard) error {
	if err := os.MkdirAll(sh.dir, 0o755); err != nil {
		return fmt.Errorf("create shard directory: %w", err)
	}
	fromGen := uint64(1)
	cp, ok, err := wal.ReadCheckpoint(sh.dir)
	if err != nil {
		return err
	}
	if ok {
		fromGen = cp.WALGen
		for i := range cp.Collections {
			if err := s.restoreCollection(sh, &cp.Collections[i]); err != nil {
				return err
			}
		}
		s.recovery.Collections += len(cp.Collections)
	}
	sum, err := wal.Replay(sh.dir, fromGen, func(rec wal.Record) error {
		return s.applyRecord(sh, rec)
	})
	if err != nil {
		return err
	}
	s.recovery.Records += sum.Records
	s.recovery.Segments += sum.Segments
	if sum.TornTail {
		s.recovery.TornTails++
	}
	openGen := fromGen
	if sum.LastGen > openGen {
		openGen = sum.LastGen
	}
	var l *wal.Log
	if sum.Segments == 0 {
		// Fresh directory, or a crash after the checkpoint was published
		// but before its new segment was created.
		l, err = wal.Create(sh.dir, openGen, s.walOptions())
	} else {
		l, err = wal.OpenAppend(sh.dir, openGen, s.walOptions())
	}
	if err != nil {
		return err
	}
	sh.wal = l
	sh.gen = openGen
	// A crash between checkpoint publication and log truncation leaves
	// superseded segments behind; replay ignored them, now delete them.
	return wal.RemoveSegmentsBelow(sh.dir, fromGen)
}

// restoreCollection rebuilds one collection from its checkpointed state:
// spec → oracle + engine through the same validation as a live create,
// then Restore hands the engine its flat answer, pending tail, and cost
// so it continues bit-identically.
//
//ecsort:shard-goroutine
func (s *Service) restoreCollection(sh *shard, cs *wal.CollectionState) error {
	var spec OracleSpec
	if err := json.Unmarshal(cs.Spec, &spec); err != nil {
		return fmt.Errorf("%w: collection %q: undecodable spec: %v", wal.ErrCorrupt, cs.Key, err)
	}
	eng, err := s.buildSorter(spec)
	if err != nil {
		return fmt.Errorf("collection %q: %w", cs.Key, err)
	}
	st := model.Stats{Comparisons: cs.Comparisons, Rounds: int(cs.Rounds), MaxRoundSize: int(cs.MaxRoundSize)}
	if err := eng.srt.Restore(cs.Members, cs.Pending, cs.Elems, cs.Offs, st, int(cs.Flushes)); err != nil {
		return fmt.Errorf("%w: collection %q: %v", wal.ErrCorrupt, cs.Key, err)
	}
	if _, taken := sh.cols[cs.Key]; taken {
		return fmt.Errorf("%w: collection %q appears twice in checkpoint", wal.ErrCorrupt, cs.Key)
	}
	c := newCollection(cs.Key, spec, eng)
	c.ingested.Store(cs.Ingested)
	c.batches.Store(cs.Batches)
	c.publish()
	sh.cols[cs.Key] = c
	if eng.srt.Pending() > 0 {
		sh.dirty[c] = struct{}{}
	}
	return nil
}

// applyRecord re-applies one replayed WAL record — the same mutations the
// live operation performed, minus the appends (the record already exists).
// Flush records re-fold at exactly the boundaries the live service chose,
// which is what makes replayed classes and stats bit-identical: the fold
// schedule is read back from the log, never re-decided from (possibly
// changed) batching config.
//
//ecsort:shard-goroutine
func (s *Service) applyRecord(sh *shard, rec wal.Record) error {
	switch rec.Type {
	case wal.RecCreate:
		var spec OracleSpec
		if err := json.Unmarshal(rec.Spec, &spec); err != nil {
			return fmt.Errorf("create %q: undecodable spec: %v", rec.Key, err)
		}
		if _, taken := sh.cols[rec.Key]; taken {
			return fmt.Errorf("create %q: collection already exists", rec.Key)
		}
		eng, err := s.buildSorter(spec)
		if err != nil {
			return fmt.Errorf("create %q: %w", rec.Key, err)
		}
		c := newCollection(rec.Key, spec, eng)
		c.snap.Store(&Snapshot{Classes: [][]int{}})
		sh.cols[rec.Key] = c
	case wal.RecDrop:
		c, ok := sh.cols[rec.Key]
		if !ok {
			return fmt.Errorf("drop %q: no such collection", rec.Key)
		}
		delete(sh.cols, rec.Key)
		delete(sh.dirty, c)
	case wal.RecBatch:
		c, ok := sh.cols[rec.Key]
		if !ok {
			return fmt.Errorf("batch for %q: no such collection", rec.Key)
		}
		for _, e := range rec.Items {
			if err := c.srt.Add(e); err != nil {
				return fmt.Errorf("batch for %q: %v", rec.Key, err)
			}
		}
		c.ingested.Add(int64(len(rec.Items)))
		c.batches.Add(1)
		c.pending.Store(int64(c.srt.Pending()))
		sh.dirty[c] = struct{}{}
	case wal.RecFlush:
		c, ok := sh.cols[rec.Key]
		if !ok {
			return fmt.Errorf("flush for %q: no such collection", rec.Key)
		}
		// Publish directly instead of going through Service.fold: replay
		// must not append new flush records or skew the live fold-latency
		// gauges.
		if err := c.srt.Flush(); err != nil {
			return fmt.Errorf("flush for %q: %w", rec.Key, err)
		}
		c.publish()
		delete(sh.dirty, c)
	case wal.RecDelete:
		c, ok := sh.cols[rec.Key]
		if !ok {
			return fmt.Errorf("delete for %q: no such collection", rec.Key)
		}
		if err := c.srt.Delete(rec.Elem); err != nil {
			return fmt.Errorf("delete for %q: %v", rec.Key, err)
		}
		c.deleted.Add(1)
		c.publish()
		if c.srt.Pending() == 0 {
			delete(sh.dirty, c)
		}
	case wal.RecInvalidate:
		c, ok := sh.cols[rec.Key]
		if !ok {
			return fmt.Errorf("invalidate for %q: no such collection", rec.Key)
		}
		if !c.srt.Has(rec.Elem) {
			return fmt.Errorf("invalidate for %q: element %d not added", rec.Key, rec.Elem)
		}
		// A live invalidate only logs for merged elements, so under a
		// deterministic oracle the element is merged here too. Under a
		// noisy oracle replayed folds may merge differently, leaving the
		// element pending — then the withdrawal it asked for has already
		// happened, and skipping is the consistent reading (replay
		// bit-identity is only promised for deterministic oracles; see
		// docs/PERSISTENCE.md).
		if _, err := c.srt.Invalidate(rec.Elem); err == nil {
			c.invalidated.Add(1)
		}
		c.publish()
		if c.srt.Pending() > 0 {
			sh.dirty[c] = struct{}{}
		}
	case wal.RecResilience:
		c, ok := sh.cols[rec.Key]
		if !ok {
			return fmt.Errorf("resilience update for %q: no such collection", rec.Key)
		}
		var rs ResilienceSpec
		if err := json.Unmarshal(rec.Spec, &rs); err != nil {
			return fmt.Errorf("resilience update for %q: undecodable spec: %v", rec.Key, err)
		}
		if err := s.applyResilience(c, rs); err != nil {
			return fmt.Errorf("resilience update for %q: %v", rec.Key, err)
		}
	default:
		return fmt.Errorf("unknown record type %d", rec.Type)
	}
	return nil
}

// applyResilience installs rs as c's live resilience profile: the spec
// (so checkpoints persist the new profile) and the middleware's tuning
// (breaker history preserved — see oracle.Resilient.UpdateConfig). Runs
// on the owning shard goroutine only, from the live update op or replay.
//
//ecsort:shard-goroutine
func (s *Service) applyResilience(c *collection, rs ResilienceSpec) error {
	if c.res == nil {
		return fmt.Errorf("%w: collection has no resilience middleware to retune (create it with a resilience or faults profile)", ErrBadSpec)
	}
	rsCopy := rs
	c.spec.Resilience = &rsCopy
	rcfg := rsCopy.config()
	rcfg.Ctx = s.ctx
	c.res.UpdateConfig(rcfg)
	return nil
}

// durableState captures the collection for a checkpoint. The slices are
// live views into the sorter — valid because the checkpoint encodes them
// synchronously on the shard goroutine, before any further Add or Flush
// can run.
func (c *collection) durableState() (wal.CollectionState, error) {
	specJSON, err := json.Marshal(c.spec)
	if err != nil {
		return wal.CollectionState{}, fmt.Errorf("collection %q: unencodable spec: %v", c.key, err)
	}
	elems, offs := c.srt.Flat()
	st := c.srt.Stats()
	return wal.CollectionState{
		Key:          c.key,
		Spec:         specJSON,
		Members:      c.srt.Members(),
		Pending:      c.srt.PendingSlice(),
		Elems:        elems,
		Offs:         offs,
		Ingested:     c.ingested.Load(),
		Batches:      c.batches.Load(),
		Flushes:      int64(c.srt.Flushes()),
		Comparisons:  st.Comparisons,
		Rounds:       int64(st.Rounds),
		MaxRoundSize: int64(st.MaxRoundSize),
	}, nil
}

// checkpointShard serializes the shard's collections to the snapshot
// file, rotates to a fresh WAL segment, and deletes the segments the
// checkpoint superseded. Shard goroutine only. The step order makes every
// crash window safe:
//
//  1. Create the next segment (empty; replaying it is a no-op).
//  2. Durably publish the checkpoint pointing at that segment. Until the
//     rename lands, boots use the old checkpoint and replay the old
//     segments — including the new empty one — in order.
//  3. Swap the shard's log to the new segment. Only now do appends go to
//     a generation the new checkpoint covers.
//  4. Delete segments below the checkpoint generation. A crash first
//     leaves stale segments that replay ignores and the next boot sweeps.
//
//ecsort:shard-goroutine
func (s *Service) checkpointShard(sh *shard) error {
	if sh.wal == nil {
		return nil
	}
	cp := &wal.Checkpoint{WALGen: sh.gen + 1}
	sh.mu.RLock()
	keys := make([]string, 0, len(sh.cols))
	for key := range sh.cols {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		cs, err := sh.cols[key].durableState()
		if err != nil {
			sh.mu.RUnlock()
			return err
		}
		cp.Collections = append(cp.Collections, cs)
	}
	sh.mu.RUnlock()

	next, err := wal.Create(sh.dir, cp.WALGen, s.walOptions())
	if err != nil {
		return err
	}
	if err := wal.WriteCheckpoint(sh.dir, cp); err != nil {
		// Abandon the rotation: remove the unused segment so the next
		// attempt can recreate it, and keep appending to the current one.
		next.Close()
		os.Remove(next.Path())
		return err
	}
	old := sh.wal
	sh.wal = next
	sh.gen = cp.WALGen
	old.Close()
	if err := wal.RemoveSegmentsBelow(sh.dir, cp.WALGen); err != nil {
		return err
	}
	s.checkpoints.Add(1)
	s.lastCheckpointNano.Store(time.Now().UnixNano())
	return nil
}
