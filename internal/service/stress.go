package service

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ecsort/internal/core"
)

// ingestTolerant ingests one batch, riding out degraded windows: an open
// breaker rejects writes with Retry-After semantics, so the stress
// writer waits and retries like a well-behaved client instead of
// failing the run. Gives up after degradedRetries attempts.
const degradedRetries = 400

func ingestTolerant(svc *Service, key string, items []int) error {
	var err error
	for attempt := 0; attempt < degradedRetries; attempt++ {
		if _, err = svc.Ingest(key, items, false); !errors.Is(err, ErrDegraded) {
			return err
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("stress writer never escaped degraded mode: %w", err)
}

// StressConfig shapes a synthetic ingestion workload: Writers concurrent
// clients streaming batched inserts into Collections independent
// label-oracle collections, hashed across the service's shards.
type StressConfig struct {
	// Collections is the number of independent collections. 0 means 8.
	Collections int
	// Elements is the universe size per collection. 0 means 2048.
	Elements int
	// Classes is the class count per collection. 0 means 16.
	Classes int
	// Batch is the number of elements per ingest call. 0 means 64.
	Batch int
	// Writers is the number of concurrent client goroutines. 0 means 4.
	Writers int
	// Seed drives the synthetic labels and ingestion order.
	Seed int64
	// Service tunes the service under test.
	Service Config

	// Faults, when set, injects this fault profile into every
	// collection's oracle (per-collection seeds derived from Seed),
	// turning the drive into a chaos soak: folds run against timeouts,
	// injected errors, and flipped answers instead of clean ground truth.
	Faults *FaultSpec
	// Resilience tunes the fault-tolerance middleware for faulted runs;
	// nil with Faults set takes the middleware defaults.
	Resilience *ResilienceSpec
	// DeleteFraction is the per-batch probability that the writer
	// deletes one element of the batch it just ingested and immediately
	// re-ingests it — churn that exercises the delete path without
	// changing the final ground truth.
	DeleteFraction float64
	// InvalidateFraction is the per-batch probability that the writer
	// withdraws the collection's first snapshot class for
	// re-verification.
	InvalidateFraction float64
	// RepairSweeps bounds how many repair sweeps the verifier may spend
	// converging a flip-contaminated run back to ground truth. 0 means
	// 40. Ignored for fault-free runs, which must verify immediately.
	RepairSweeps int
}

func (c *StressConfig) setDefaults() {
	if c.Collections <= 0 {
		c.Collections = 8
	}
	if c.Elements <= 0 {
		c.Elements = 2048
	}
	if c.Classes <= 0 {
		c.Classes = 16
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.Writers <= 0 {
		c.Writers = 4
	}
}

// StressReport is the outcome of one RunStress drive: the first
// service-level throughput numbers of the bench trajectory.
type StressReport struct {
	Config      StressConfig  `json:"config"`
	Elapsed     time.Duration `json:"elapsed"`
	Elements    int64         `json:"elements"`
	Batches     int64         `json:"batches"`
	Flushes     int64         `json:"flushes"`
	Comparisons int64         `json:"comparisons"`
	Rounds      int64         `json:"rounds"`
	// BatchRounds and BatchPairs are the service's batch-oracle
	// amortization counters after the drive: whole-chunk oracle
	// invocations and the equivalence tests they carried. Both zero when
	// Service.DisableBatchOracle is set. BatchPairs/BatchRounds is the
	// per-invocation amortization the batch path buys.
	BatchRounds int64 `json:"batch_rounds,omitempty"`
	BatchPairs  int64 `json:"batch_pairs,omitempty"`
	// ElementsPerSec is ingestion throughput end to end: buffered,
	// flushed, and snapshot-published.
	ElementsPerSec float64 `json:"elements_per_sec"`
	BatchesPerSec  float64 `json:"batches_per_sec"`
	// Deletes and Invalidates count the churn operations applied.
	Deletes     int64 `json:"deletes,omitempty"`
	Invalidates int64 `json:"invalidates,omitempty"`
	// RepairSweepsRun is how many repair sweeps the verifier spent
	// converging a faulted run (0 for fault-free runs).
	RepairSweepsRun int `json:"repair_sweeps_run,omitempty"`
	// Divergences and Corrections aggregate what those sweeps found and
	// fixed.
	Divergences int64 `json:"divergences,omitempty"`
	Corrections int64 `json:"corrections,omitempty"`
	// Verified reports that every collection's final fresh classes
	// matched its ground-truth partition — for faulted runs, after at
	// most RepairSweeps repair sweeps.
	Verified bool `json:"verified"`
}

// RunStress creates a fresh Service, drives it with cfg's concurrent
// batched workload, verifies every collection's final answer against
// ground truth, and reports throughput. Each writer goroutine works
// through a disjoint slice of the collections so batch streams for one
// collection stay ordered while different collections contend only at
// the shard level — the scaling claim this harness exists to measure.
func RunStress(cfg StressConfig) (StressReport, error) {
	cfg.setDefaults()
	svc := New(cfg.Service)
	defer svc.Close()

	type job struct {
		key    string
		labels []int
		order  []int
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	jobs := make([]job, cfg.Collections)
	for i := range jobs {
		labels := make([]int, cfg.Elements)
		for e := range labels {
			labels[e] = rng.Intn(cfg.Classes)
		}
		jobs[i] = job{
			key:    fmt.Sprintf("stress-%03d", i),
			labels: labels,
			order:  rng.Perm(cfg.Elements),
		}
		spec := OracleSpec{Kind: KindLabel, Labels: labels, Resilience: cfg.Resilience}
		if cfg.Faults != nil {
			// Each collection gets its own fault stream so chaos isn't
			// correlated across shards.
			f := *cfg.Faults
			f.Seed = cfg.Seed + int64(i)*7919
			spec.Faults = &f
		}
		if err := svc.CreateCollection(jobs[i].key, spec); err != nil {
			return StressReport{}, err
		}
	}

	errCh := make(chan error, cfg.Writers)
	var deletes, invalidates atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(cfg.Seed ^ int64(w+1)*104729))
			for i := w; i < len(jobs); i += cfg.Writers {
				j := jobs[i]
				for lo := 0; lo < len(j.order); lo += cfg.Batch {
					hi := min(lo+cfg.Batch, len(j.order))
					batch := j.order[lo:hi]
					if err := ingestTolerant(svc, j.key, batch); err != nil {
						errCh <- err
						return
					}
					// Churn: drop one element of the batch we just wrote
					// and put it straight back, so the final ground truth
					// is unchanged but the delete path sees concurrency.
					if cfg.DeleteFraction > 0 && wrng.Float64() < cfg.DeleteFraction {
						e := batch[wrng.Intn(len(batch))]
						switch _, err := svc.DeleteItem(j.key, e); {
						case err == nil:
							deletes.Add(1)
							if err := ingestTolerant(svc, j.key, []int{e}); err != nil {
								errCh <- err
								return
							}
						case errors.Is(err, ErrDegraded):
							// The breaker beat us to it; the element stays.
						default:
							errCh <- err
							return
						}
					}
					// Withdraw the front class for re-verification.
					if cfg.InvalidateFraction > 0 && wrng.Float64() < cfg.InvalidateFraction {
						switch _, err := svc.InvalidateClass(j.key, 0, false); {
						case err == nil:
							invalidates.Add(1)
						case errors.Is(err, ErrNotFound), errors.Is(err, ErrDegraded):
							// Nothing folded yet, or the oracle is down.
						default:
							errCh <- err
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return StressReport{}, err
	default:
	}

	rep := StressReport{Config: cfg, Elapsed: elapsed}
	rep.Deletes = deletes.Load()
	rep.Invalidates = invalidates.Load()

	// Verification. A fault-free run must match ground truth on the
	// first fresh read; a flip-contaminated run is allowed repair sweeps
	// to converge — the chaos soak's acceptance criterion.
	verify := func() (bool, error) {
		ok := true
		for _, j := range jobs {
			snap, err := svc.Classes(j.key, true)
			if err != nil {
				return false, err
			}
			// Full coverage first — a partition over a subset of the
			// ingested elements must not count as verified — then the
			// exact class structure against ground truth.
			got := core.Result{Classes: snap.Classes}
			if snap.Size != cfg.Elements || !core.SameClassification(got.Labels(cfg.Elements), j.labels) {
				ok = false
			}
		}
		return ok, nil
	}
	verified, err := verify()
	if err != nil {
		return StressReport{}, err
	}
	if !verified && cfg.Faults != nil {
		sweeps := cfg.RepairSweeps
		if sweeps <= 0 {
			sweeps = 40
		}
		for s := 0; s < sweeps && !verified; s++ {
			svc.RepairSweep()
			rep.RepairSweepsRun++
			if verified, err = verify(); err != nil {
				return StressReport{}, err
			}
		}
	}
	rep.Verified = verified
	rep.Divergences = svc.repairDivergences.Load()
	rep.Corrections = svc.repairCorrections.Load()
	rep.BatchRounds, rep.BatchPairs = svc.BatchOracleStats()

	for _, j := range jobs {
		snap, err := svc.Classes(j.key, false)
		if err != nil {
			return StressReport{}, err
		}
		rep.Comparisons += snap.Stats.Comparisons
		rep.Rounds += int64(snap.Stats.Rounds)
		info, err := svc.CollectionStats(j.key)
		if err != nil {
			return StressReport{}, err
		}
		rep.Elements += info.Ingested
		rep.Batches += info.Batches
		rep.Flushes += info.Flushes
	}
	secs := elapsed.Seconds()
	if secs > 0 {
		rep.ElementsPerSec = float64(rep.Elements) / secs
		rep.BatchesPerSec = float64(rep.Batches) / secs
	}
	return rep, nil
}

// WriteStressReport renders rep as an aligned text block for the
// experiments CLI.
func WriteStressReport(w io.Writer, rep StressReport) error {
	cfg := rep.Config
	_, err := fmt.Fprintf(w, `service ingestion stress
  workload:    %d collections × %d elements (%d classes), batch %d, %d writers, %d shards
  elapsed:     %v
  ingested:    %d elements in %d batches (%d flushes)
  throughput:  %.0f elements/s, %.0f batches/s
  model cost:  %d comparisons in %d rounds
  verified:    %v
`,
		cfg.Collections, cfg.Elements, cfg.Classes, cfg.Batch, cfg.Writers, cfg.Service.shards(),
		rep.Elapsed.Round(time.Millisecond),
		rep.Elements, rep.Batches, rep.Flushes,
		rep.ElementsPerSec, rep.BatchesPerSec,
		rep.Comparisons, rep.Rounds,
		rep.Verified)
	if err != nil {
		return err
	}
	if rep.BatchRounds > 0 {
		_, err = fmt.Fprintf(w, "  batch:       %d whole-chunk invocations carried %d tests (%.1f pairs/invocation)\n",
			rep.BatchRounds, rep.BatchPairs, float64(rep.BatchPairs)/float64(rep.BatchRounds))
		if err != nil {
			return err
		}
	}
	if cfg.Faults != nil || rep.Deletes > 0 || rep.Invalidates > 0 {
		var faults string
		if cfg.Faults != nil {
			faults = fmt.Sprintf("fail %.2f, flip %.2f", cfg.Faults.FailRate, cfg.Faults.FlipRate)
		} else {
			faults = "none"
		}
		_, err = fmt.Fprintf(w, `  chaos:       faults %s; %d deletes, %d invalidates
  repair:      %d sweeps to converge, %d divergences, %d corrections
`,
			faults, rep.Deletes, rep.Invalidates,
			rep.RepairSweepsRun, rep.Divergences, rep.Corrections)
	}
	return err
}
