package service

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"ecsort/internal/core"
)

// StressConfig shapes a synthetic ingestion workload: Writers concurrent
// clients streaming batched inserts into Collections independent
// label-oracle collections, hashed across the service's shards.
type StressConfig struct {
	// Collections is the number of independent collections. 0 means 8.
	Collections int
	// Elements is the universe size per collection. 0 means 2048.
	Elements int
	// Classes is the class count per collection. 0 means 16.
	Classes int
	// Batch is the number of elements per ingest call. 0 means 64.
	Batch int
	// Writers is the number of concurrent client goroutines. 0 means 4.
	Writers int
	// Seed drives the synthetic labels and ingestion order.
	Seed int64
	// Service tunes the service under test.
	Service Config
}

func (c *StressConfig) setDefaults() {
	if c.Collections <= 0 {
		c.Collections = 8
	}
	if c.Elements <= 0 {
		c.Elements = 2048
	}
	if c.Classes <= 0 {
		c.Classes = 16
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.Writers <= 0 {
		c.Writers = 4
	}
}

// StressReport is the outcome of one RunStress drive: the first
// service-level throughput numbers of the bench trajectory.
type StressReport struct {
	Config      StressConfig  `json:"config"`
	Elapsed     time.Duration `json:"elapsed"`
	Elements    int64         `json:"elements"`
	Batches     int64         `json:"batches"`
	Flushes     int64         `json:"flushes"`
	Comparisons int64         `json:"comparisons"`
	Rounds      int64         `json:"rounds"`
	// ElementsPerSec is ingestion throughput end to end: buffered,
	// flushed, and snapshot-published.
	ElementsPerSec float64 `json:"elements_per_sec"`
	BatchesPerSec  float64 `json:"batches_per_sec"`
	// Verified reports that every collection's final fresh classes
	// matched its ground-truth partition.
	Verified bool `json:"verified"`
}

// RunStress creates a fresh Service, drives it with cfg's concurrent
// batched workload, verifies every collection's final answer against
// ground truth, and reports throughput. Each writer goroutine works
// through a disjoint slice of the collections so batch streams for one
// collection stay ordered while different collections contend only at
// the shard level — the scaling claim this harness exists to measure.
func RunStress(cfg StressConfig) (StressReport, error) {
	cfg.setDefaults()
	svc := New(cfg.Service)
	defer svc.Close()

	type job struct {
		key    string
		labels []int
		order  []int
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	jobs := make([]job, cfg.Collections)
	for i := range jobs {
		labels := make([]int, cfg.Elements)
		for e := range labels {
			labels[e] = rng.Intn(cfg.Classes)
		}
		jobs[i] = job{
			key:    fmt.Sprintf("stress-%03d", i),
			labels: labels,
			order:  rng.Perm(cfg.Elements),
		}
		if err := svc.CreateCollection(jobs[i].key, OracleSpec{Kind: KindLabel, Labels: labels}); err != nil {
			return StressReport{}, err
		}
	}

	errCh := make(chan error, cfg.Writers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(jobs); i += cfg.Writers {
				j := jobs[i]
				for lo := 0; lo < len(j.order); lo += cfg.Batch {
					hi := min(lo+cfg.Batch, len(j.order))
					if _, err := svc.Ingest(j.key, j.order[lo:hi], false); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return StressReport{}, err
	default:
	}

	rep := StressReport{Config: cfg, Elapsed: elapsed, Verified: true}
	for _, j := range jobs {
		snap, err := svc.Classes(j.key, true)
		if err != nil {
			return StressReport{}, err
		}
		// Full coverage first — a partition over a subset of the
		// ingested elements must not count as verified — then the exact
		// class structure against ground truth.
		got := core.Result{Classes: snap.Classes}
		if snap.Size != cfg.Elements || !core.SameClassification(got.Labels(cfg.Elements), j.labels) {
			rep.Verified = false
		}
		rep.Comparisons += snap.Stats.Comparisons
		rep.Rounds += int64(snap.Stats.Rounds)
		info, err := svc.CollectionStats(j.key)
		if err != nil {
			return StressReport{}, err
		}
		rep.Elements += info.Ingested
		rep.Batches += info.Batches
		rep.Flushes += info.Flushes
	}
	secs := elapsed.Seconds()
	if secs > 0 {
		rep.ElementsPerSec = float64(rep.Elements) / secs
		rep.BatchesPerSec = float64(rep.Batches) / secs
	}
	return rep, nil
}

// WriteStressReport renders rep as an aligned text block for the
// experiments CLI.
func WriteStressReport(w io.Writer, rep StressReport) error {
	cfg := rep.Config
	_, err := fmt.Fprintf(w, `service ingestion stress
  workload:    %d collections × %d elements (%d classes), batch %d, %d writers, %d shards
  elapsed:     %v
  ingested:    %d elements in %d batches (%d flushes)
  throughput:  %.0f elements/s, %.0f batches/s
  model cost:  %d comparisons in %d rounds
  verified:    %v
`,
		cfg.Collections, cfg.Elements, cfg.Classes, cfg.Batch, cfg.Writers, cfg.Service.shards(),
		rep.Elapsed.Round(time.Millisecond),
		rep.Elements, rep.Batches, rep.Flushes,
		rep.ElementsPerSec, rep.BatchesPerSec,
		rep.Comparisons, rep.Rounds,
		rep.Verified)
	return err
}
