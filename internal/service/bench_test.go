package service

import (
	"fmt"
	"testing"
)

// BenchmarkIngest measures end-to-end service ingestion throughput — the
// CI smoke runs it with -benchtime 1x to catch pathological regressions
// in the batch→flush→snapshot path. Sub-benchmarks vary the shard count
// so contention effects show up on multi-core hardware. Workers: 1 pins
// each session to the serial execute path so allocs/op stays comparable
// against BENCH_baseline.json regardless of the runner's core count;
// shard and writer parallelism is still exercised.
func BenchmarkIngest(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := RunStress(StressConfig{
					Collections: 2 * shards,
					Elements:    512,
					Classes:     8,
					Batch:       64,
					Writers:     4,
					Seed:        int64(i),
					Service:     Config{Shards: shards, BatchSize: 128, Workers: 1},
				})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Verified {
					b.Fatal("wrong partition under benchmark load")
				}
				b.ReportMetric(rep.ElementsPerSec, "elems/s")
			}
		})
	}
}

// BenchmarkIngestSingleCollection isolates the per-batch cost on one
// collection (no sharding win available): the compounding flush itself.
func BenchmarkIngestSingleCollection(b *testing.B) {
	labels := make([]int, 4096)
	for i := range labels {
		labels[i] = i % 16
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		svc := New(Config{Shards: 1, BatchSize: 256, Workers: 1})
		if err := svc.CreateCollection("bench", OracleSpec{Kind: KindLabel, Labels: labels}); err != nil {
			b.Fatal(err)
		}
		for lo := 0; lo < len(labels); lo += 64 {
			if _, err := svc.Ingest("bench", seq(lo, lo+64), false); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := svc.Classes("bench", true); err != nil {
			b.Fatal(err)
		}
		svc.Close()
	}
}

// BenchmarkIngestDurable is BenchmarkIngestSingleCollection with the
// write-ahead log on (fsync "never", so it measures the append/encode
// cost, not the disk): the price of durability on the hot ingest path.
// The WAL encodes into a reusable buffer, so allocs/op should track the
// memory-only benchmark closely — the benchcmp gate holds that line.
func BenchmarkIngestDurable(b *testing.B) {
	labels := make([]int, 4096)
	for i := range labels {
		labels[i] = i % 16
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		b.StartTimer()
		svc, err := Open(Config{Shards: 1, BatchSize: 256, Workers: 1, DataDir: dir, Fsync: "never"})
		if err != nil {
			b.Fatal(err)
		}
		if err := svc.CreateCollection("bench", OracleSpec{Kind: KindLabel, Labels: labels}); err != nil {
			b.Fatal(err)
		}
		for lo := 0; lo < len(labels); lo += 64 {
			if _, err := svc.Ingest("bench", seq(lo, lo+64), false); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := svc.Classes("bench", true); err != nil {
			b.Fatal(err)
		}
		svc.Close()
	}
}

func seq(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
