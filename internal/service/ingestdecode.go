package service

import (
	"fmt"
	"io"
	"math"
	"sync"
)

// Streaming decoder for the POST items body. The generic json.Decoder
// path costs reflection plus intermediate storage per element; ingest
// is the service's hottest write, so its body — {"items":[ints]} and
// nothing else — is parsed by hand, straight from the read buffer into
// a reusable []int arena. Decoders are pooled: in steady state a batch
// of any size costs zero per-item allocations (the arena and read
// buffer are reused, nothing is staged through []json.RawMessage or
// interface boxes).
//
// Accepted bodies match decodeBody's semantics on the ingestRequest
// shape: an object with at most the "items" key (unknown fields
// rejected), whose value is an array of JSON integers or null; a bare
// null body is the empty ingest; trailing bytes after the top-level
// value are ignored; floats and other non-integer tokens are rejected.

// maxIngestBody bounds the POST items body, matching decodeBody's
// limit for the other routes.
const maxIngestBody = 64 << 20

// itemsDecoder holds one decode's streaming state plus the reusable
// buffers that make repeat decodes allocation-free.
type itemsDecoder struct {
	r     io.Reader
	buf   []byte // read buffer, refilled in place
	pos   int    // next unread byte in buf[:end]
	end   int    // valid bytes in buf
	items []int  // output arena, reused across decodes
}

var itemsDecoders = sync.Pool{
	New: func() any {
		return &itemsDecoder{buf: make([]byte, 16<<10), items: make([]int, 0, 256)}
	},
}

// getItemsDecoder checks a decoder out of the pool; putItemsDecoder
// returns it once the decoded slice is no longer referenced (Ingest
// copies what it keeps, so after the service call returns).
func getItemsDecoder() *itemsDecoder  { return itemsDecoders.Get().(*itemsDecoder) }
func putItemsDecoder(d *itemsDecoder) { d.r = nil; itemsDecoders.Put(d) }

func (d *itemsDecoder) badf(format string, args ...any) error {
	return fmt.Errorf("service: bad request body: "+format, args...)
}

// bad wraps a read error; a body that ends mid-value surfaces as
// unexpected EOF rather than a silent truncation.
func (d *itemsDecoder) bad(err error) error {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return fmt.Errorf("service: bad request body: %w", err)
}

// readByte returns the next body byte, refilling the buffer in place.
func (d *itemsDecoder) readByte() (byte, error) {
	for d.pos >= d.end {
		n, err := d.r.Read(d.buf)
		d.pos, d.end = 0, n
		if n == 0 {
			if err == nil {
				continue
			}
			return 0, err
		}
	}
	c := d.buf[d.pos]
	d.pos++
	return c, nil
}

// unread steps back over the byte readByte just returned. Valid only
// immediately after a successful readByte (pos > 0 then).
func (d *itemsDecoder) unread() { d.pos-- }

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

// nextNonSpace returns the next non-whitespace byte.
func (d *itemsDecoder) nextNonSpace() (byte, error) {
	for {
		c, err := d.readByte()
		if err != nil || !isSpace(c) {
			return c, err
		}
	}
}

// expect consumes exactly the bytes of lit ("ull" after an 'n', ...).
func (d *itemsDecoder) expect(lit string) error {
	for i := 0; i < len(lit); i++ {
		c, err := d.readByte()
		if err != nil {
			return d.bad(err)
		}
		if c != lit[i] {
			return d.badf("invalid token")
		}
	}
	return nil
}

// decode parses one ingest body from r into the reusable arena and
// returns the decoded items. The returned slice aliases the decoder;
// callers must finish with it before putItemsDecoder.
//
//ecsort:hotpath
func (d *itemsDecoder) decode(r io.Reader) ([]int, error) {
	d.r = r
	d.pos, d.end = 0, 0
	d.items = d.items[:0]
	c, err := d.nextNonSpace()
	if err != nil {
		return nil, d.bad(err)
	}
	if c == 'n' {
		// A bare null body is the zero ingestRequest: no items.
		if err := d.expect("ull"); err != nil {
			return nil, err
		}
		return d.items, nil
	}
	if c != '{' {
		return nil, d.badf("expected an object")
	}
	if c, err = d.nextNonSpace(); err != nil {
		return nil, d.bad(err)
	}
	if c == '}' {
		return d.items, nil
	}
	for {
		if c != '"' {
			return nil, d.badf("expected an object key")
		}
		isItems, err := d.readKey()
		if err != nil {
			return nil, err
		}
		if !isItems {
			return nil, d.badf("unknown field in ingest body")
		}
		if c, err = d.nextNonSpace(); err != nil {
			return nil, d.bad(err)
		}
		if c != ':' {
			return nil, d.badf("expected ':' after object key")
		}
		if c, err = d.nextNonSpace(); err != nil {
			return nil, d.bad(err)
		}
		switch c {
		case 'n':
			// null leaves the field untouched, like encoding/json.
			if err := d.expect("ull"); err != nil {
				return nil, err
			}
		case '[':
			if err := d.readArray(); err != nil {
				return nil, err
			}
		default:
			return nil, d.badf("items must be an array of integers")
		}
		if c, err = d.nextNonSpace(); err != nil {
			return nil, d.bad(err)
		}
		if c == '}' {
			return d.items, nil
		}
		if c != ',' {
			return nil, d.badf("expected ',' or '}' in object")
		}
		if c, err = d.nextNonSpace(); err != nil {
			return nil, d.bad(err)
		}
	}
}

// readKey consumes an object key (opening quote already read) and
// reports whether it is exactly "items". Escaped keys are rejected —
// the only accepted field name needs none.
func (d *itemsDecoder) readKey() (bool, error) {
	const want = "items"
	n := 0
	match := true
	for {
		c, err := d.readByte()
		if err != nil {
			return false, d.bad(err)
		}
		switch {
		case c == '"':
			return match && n == len(want), nil
		case c == '\\':
			return false, d.badf("escaped object keys are not supported")
		}
		if match {
			match = n < len(want) && c == want[n]
		}
		n++
	}
}

// readArray parses the items array (opening bracket already read) into
// the arena. A repeated "items" key replaces the earlier value —
// encoding/json's last-wins semantics — via the reset here.
//
//ecsort:hotpath
func (d *itemsDecoder) readArray() error {
	d.items = d.items[:0]
	c, err := d.nextNonSpace()
	if err != nil {
		return d.bad(err)
	}
	if c == ']' {
		return nil
	}
	for {
		v, err := d.readInt(c)
		if err != nil {
			return err
		}
		d.items = append(d.items, v)
		if c, err = d.nextNonSpace(); err != nil {
			return d.bad(err)
		}
		if c == ']' {
			return nil
		}
		if c != ',' {
			return d.badf("expected ',' or ']' in items array")
		}
		if c, err = d.nextNonSpace(); err != nil {
			return d.bad(err)
		}
	}
}

// readInt parses one JSON integer whose first byte is c: an optional
// minus, digits with no leading zero, and none of the float syntax
// ('.', 'e') — ingest elements are indexes, a fraction is a client
// bug.
//
//ecsort:hotpath
func (d *itemsDecoder) readInt(c byte) (int, error) {
	neg := false
	if c == '-' {
		neg = true
		var err error
		if c, err = d.readByte(); err != nil {
			return 0, d.bad(err)
		}
	}
	if c < '0' || c > '9' {
		return 0, d.badf("items must be an array of integers")
	}
	v := int64(c - '0')
	first := c
	for {
		nc, err := d.readByte()
		if err != nil {
			if err == io.EOF {
				break // the missing ']' surfaces in the caller
			}
			return 0, d.bad(err)
		}
		if nc >= '0' && nc <= '9' {
			if first == '0' {
				return 0, d.badf("invalid number (leading zero)")
			}
			dig := int64(nc - '0')
			if v > (math.MaxInt64-dig)/10 {
				return 0, d.badf("number out of range")
			}
			v = v*10 + dig
			continue
		}
		if nc == '.' || nc == 'e' || nc == 'E' {
			return 0, d.badf("items must be integers, found a non-integer number")
		}
		d.unread()
		break
	}
	if neg {
		v = -v
	}
	if int64(int(v)) != v {
		// Unreachable on 64-bit; keeps 32-bit builds honest.
		return 0, d.badf("number out of range")
	}
	return int(v), nil
}
