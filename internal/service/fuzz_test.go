package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"net/url"
	"testing"
)

// specLimits keeps fuzzed specs inside the harness's memory budget:
// oracle construction is allowed to be O(N) (and graph oracles O(V²) per
// graph), so a 30-byte JSON input must not be able to demand gigabytes.
func specWithinLimits(sp OracleSpec) bool {
	if sp.N() > 1<<12 {
		return false
	}
	for _, g := range sp.Graphs {
		if g.N > 1<<8 || len(g.Edges) > 1<<12 {
			return false
		}
	}
	return true
}

// FuzzOracleSpec hammers the service's spec boundary: any JSON bytes
// must either fail to decode, fail validation with an error, or build a
// working oracle — never panic, and never produce an oracle whose Same
// is asymmetric on its first elements.
func FuzzOracleSpec(f *testing.F) {
	seeds := []string{
		`{"kind":"label","labels":[0,0,1]}`,
		`{"kind":"handshake","labels":[0,1,0],"seed":7}`,
		`{"kind":"fault","states":[1,2,3]}`,
		`{"kind":"graph-iso","graphs":[{"n":3,"edges":[[0,1]]},{"n":3,"edges":[[1,2]]}]}`,
		`{"kind":"label","labels":[0,1],"algorithm":"auto","k":2,"mode":"ER"}`,
		`{"kind":"label","labels":[0,1],"algorithm":"const-round-er","lambda":0.3}`,
		`{"kind":"label","labels":[0,1],"algorithm":"nosuch"}`,
		`{"kind":"label","labels":[0,1],"mode":"XX"}`,
		`{"kind":"graph-iso","graphs":[{"n":2,"edges":[[0,0]]}]}`,
		`{"kind":""}`,
		`{"kind":"label","labels":[0,1],"lambda":-1}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var sp OracleSpec
		if err := json.Unmarshal(data, &sp); err != nil {
			return
		}
		if !specWithinLimits(sp) {
			return
		}
		alg, name, algErr := sp.algorithm()
		if algErr == nil && name == "" {
			t.Errorf("algorithm() returned an empty regimen name for %s", data)
		}
		if algErr == nil && name != AlgorithmIncremental && alg == nil {
			t.Errorf("algorithm() returned nil batch regimen named %q for %s", name, data)
		}
		o, err := sp.Build()
		if err != nil {
			if o != nil {
				t.Errorf("Build returned both an oracle and error %v for %s", err, data)
			}
			return
		}
		if o.N() != sp.N() {
			t.Errorf("oracle N() = %d, spec N() = %d for %s", o.N(), sp.N(), data)
		}
		if o.N() >= 2 {
			if o.Same(0, 1) != o.Same(1, 0) {
				t.Errorf("oracle Same is asymmetric on (0,1) for %s", data)
			}
		}
	})
}

// FuzzItemsHandler drives the POST items endpoint end to end with
// arbitrary bodies and keys: the handler must always answer a known
// status with a JSON body, and the service must stay consistent enough
// to flush and serve classes afterwards.
func FuzzItemsHandler(f *testing.F) {
	f.Add([]byte(`{"items":[0,1,2]}`), "c0", true)
	f.Add([]byte(`{"items":[]}`), "c0", false)
	f.Add([]byte(`{"items":[0,0]}`), "c0", false)
	f.Add([]byte(`{"items":[99]}`), "c0", true)
	f.Add([]byte(`{"items":[3],"bogus":1}`), "c0", false)
	f.Add([]byte(`not json`), "c0", true)
	f.Add([]byte(`{"items":[1]}`), "nosuch", false)
	f.Add([]byte(`{"items":[2]}`), "we/ird key\x00", true)
	f.Add([]byte(`{"items":[0,1,2,3,4,5]}`), "c0", true)
	f.Add([]byte(`{"items":[5,4,3]}`), "c0", false)
	f.Fuzz(func(t *testing.T, body []byte, key string, flush bool) {
		svc := New(Config{Shards: 1, Workers: 1, BatchSize: 2})
		defer svc.Close()
		if err := svc.CreateCollection("c0", OracleSpec{Kind: KindLabel, Labels: []int{0, 0, 1, 1, 2, 2}}); err != nil {
			t.Fatal(err)
		}
		h := svc.Handler()

		target := "/v1/collections/" + url.PathEscape(key) + "/items"
		if flush {
			target += "?flush=1"
		}
		req := httptest.NewRequest("POST", target, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)

		switch rec.Code {
		case 200, 202, 400, 409:
			if !json.Valid(rec.Body.Bytes()) {
				t.Errorf("POST %s -> non-JSON body: %q", target, rec.Body.Bytes())
			}
		case 404:
			// Unknown collections get the handler's JSON error, but keys
			// like "/" (escaped %2F) are rejected by ServeMux itself with
			// its plain-text not-found page, so the body shape is mixed.
		case 301, 308:
			// ServeMux path cleaning (e.g. the empty key's double slash)
			// redirects before the handler runs.
		default:
			t.Errorf("POST %s -> unexpected status %d: %s", target, rec.Code, rec.Body.Bytes())
		}

		// Whatever the ingest did, the collection must still flush and
		// serve a coherent partition.
		req = httptest.NewRequest("GET", "/v1/collections/c0/classes?fresh=1", nil)
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Errorf("GET classes after fuzzed ingest -> status %d: %s", rec.Code, rec.Body.Bytes())
		}
	})
}

// FuzzChurnHandlers drives the delete and invalidate routes with
// arbitrary keys, path elements, and op orders: every response must be
// a known status, and the collection must keep serving a coherent
// partition afterwards — churn can never wedge a shard.
func FuzzChurnHandlers(f *testing.F) {
	f.Add([]byte(`{"items":[0,1,2,3]}`), "c0", "1", uint8(3), true)
	f.Add([]byte(`{"items":[0,1]}`), "c0", "0", uint8(1), false)
	f.Add([]byte(`{"items":[2,3]}`), "c0", "2", uint8(2), true)
	f.Add([]byte(`{"items":[0,1,2,3,4,5]}`), "c0", "99", uint8(3), false)
	f.Add([]byte(`{"items":[4]}`), "c0", "-1", uint8(3), true)
	f.Add([]byte(`{"items":[5]}`), "c0", "xyz", uint8(3), false)
	f.Add([]byte(`{"items":[0]}`), "nosuch", "0", uint8(3), true)
	f.Add([]byte(`{"items":[1]}`), "we/ird\x00", "0\x00", uint8(3), false)
	f.Add([]byte(``), "c0", "", uint8(255), true)
	f.Fuzz(func(t *testing.T, body []byte, key, elem string, churn uint8, flush bool) {
		svc := New(Config{Shards: 1, Workers: 1, BatchSize: 2})
		defer svc.Close()
		if err := svc.CreateCollection("c0", OracleSpec{Kind: KindLabel, Labels: []int{0, 0, 1, 1, 2, 2}}); err != nil {
			t.Fatal(err)
		}
		h := svc.Handler()

		do := func(method, target string, body []byte, okStatuses ...int) {
			t.Helper()
			var rd io.Reader
			if body != nil {
				rd = bytes.NewReader(body)
			}
			req := httptest.NewRequest(method, target, rd)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			for _, ok := range okStatuses {
				if rec.Code == ok {
					if rec.Code < 300 && !json.Valid(rec.Body.Bytes()) {
						t.Errorf("%s %s -> non-JSON body: %q", method, target, rec.Body.Bytes())
					}
					return
				}
			}
			switch rec.Code {
			case 400, 404:
				// Handler-level rejections and ServeMux's own not-found page.
			case 301, 308:
				// ServeMux path cleaning redirects before the handler runs.
			default:
				t.Errorf("%s %s -> unexpected status %d: %s", method, target, rec.Code, rec.Body.Bytes())
			}
		}

		do("POST", "/v1/collections/"+url.PathEscape(key)+"/items", body, 202)
		if churn&1 != 0 {
			do("DELETE", "/v1/collections/"+url.PathEscape(key)+"/items/"+url.PathEscape(elem), nil, 200)
		}
		if churn&2 != 0 {
			target := "/v1/collections/" + url.PathEscape(key) + "/classes/" + url.PathEscape(elem) + "/invalidate"
			if flush {
				target += "?flush=1"
			}
			do("POST", target, nil, 202)
		}
		do("GET", "/v1/collections/c0/classes?fresh=1", nil, 200)

		// The shard is still alive and coherent: a fresh fold over a new
		// ingest must succeed no matter what the churn did.
		do("POST", "/v1/collections/c0/items?flush=1", []byte(`{"items":[0]}`), 202, 400)
		do("GET", "/v1/collections/c0/classes?fresh=1", nil, 200)
	})
}
