// Package service exposes the incremental equivalence class sorter as a
// long-running classification service: named collections, each owning a
// core.Incremental session over a pluggable oracle, sharded across
// independent single-writer goroutines so ingestion for different
// collections never contends. Batched inserts are folded with one
// compounding CR group round per flush, and answers are served from
// copy-on-flush snapshots so reads never block writes.
//
// The HTTP layer in this package (Handler) is a thin JSON mapping over
// the Go API (CreateCollection / Ingest / Classes / CollectionStats);
// cmd/ecs-serve wires it to a net/http server.
//
// With Config.DataDir set the service is durable: each shard
// write-ahead-logs accepted operations to internal/wal before applying
// them, checkpoints its collections' flat answers, and Open replays
// snapshot-then-tail so a restart rebuilds every collection
// bit-identically. docs/ARCHITECTURE.md maps the layer stack and the
// shard/WAL ownership model; docs/PERSISTENCE.md specifies the on-disk
// format and recovery protocol.
package service

import (
	"fmt"
	"time"

	"ecsort/internal/adversary"
	"ecsort/internal/agents"
	"ecsort/internal/algo"
	"ecsort/internal/model"
	"ecsort/internal/oracle"
)

// Oracle kinds accepted by OracleSpec.Kind, covering the paper's three
// applications plus the plain reference oracle.
const (
	// KindLabel is the reference oracle: Labels[i] defines element i's
	// class, each test a slice lookup.
	KindLabel = "label"
	// KindHandshake runs an in-process HMAC challenge–response secret
	// handshake per test (oracle.Handshake); group membership from Labels.
	KindHandshake = "handshake"
	// KindHandshakeAgents routes every test through a two-goroutine
	// message-passing protocol session on an agents.Network of key agents
	// — the distributed reality of the secret-handshake application.
	KindHandshakeAgents = "handshake-agents"
	// KindFault is generalized fault diagnosis over worm-infection
	// bitmasks (States).
	KindFault = "fault"
	// KindFaultAgents is fault diagnosis over an agents.Network of state
	// agents comparing salted digests.
	KindFaultAgents = "fault-agents"
	// KindGraphIso classifies Graphs by isomorphism with cached canonical
	// certificates.
	KindGraphIso = "graph-iso"
)

// GraphSpec is the wire form of one small simple undirected graph for
// KindGraphIso collections.
type GraphSpec struct {
	// N is the vertex count; vertices are 0..N-1.
	N int `json:"n"`
	// Edges lists undirected edges as [u, v] pairs, no loops, no
	// duplicates.
	Edges [][2]int `json:"edges,omitempty"`
}

// AlgorithmIncremental is the default collection regimen: the online
// incremental sorter folding each batch with one compounding CR round.
const AlgorithmIncremental = "incremental"

// OracleSpec declares the ground-truth oracle behind a collection. Kind
// selects the application; exactly one of Labels / States / Graphs must
// be populated, matching the kind. The universe of insertable elements
// is 0..N-1 where N is the length of that field.
type OracleSpec struct {
	Kind string `json:"kind"`
	// Labels drives KindLabel, KindHandshake, and KindHandshakeAgents.
	Labels []int `json:"labels,omitempty"`
	// States drives KindFault and KindFaultAgents.
	States []uint64 `json:"states,omitempty"`
	// Graphs drives KindGraphIso.
	Graphs []GraphSpec `json:"graphs,omitempty"`
	// Seed feeds key derivation for the handshake kinds and the
	// randomized sorting regimens.
	Seed int64 `json:"seed,omitempty"`

	// Algorithm selects the sorting regimen folding this collection's
	// batches. Empty or "incremental" keeps the default online
	// compounding engine; any registry name (er, const-round-er, auto,
	// ...) re-sorts the ingested sub-universe with that regimen on every
	// flush. "auto" plans from the K/Lambda hints with the online flag
	// set, landing on the incremental engine when the plan is in the CR
	// family.
	Algorithm string `json:"algorithm,omitempty"`
	// K is the expected class count, a workload hint for "cr" and
	// "auto".
	K int `json:"k,omitempty"`
	// Lambda is a guaranteed lower bound on (smallest class size)/n, a
	// workload hint for the const-round regimens and "auto".
	Lambda float64 `json:"lambda,omitempty"`
	// D overrides the Hamiltonian-cycle count of the const-round
	// regimens (0: the theory constant d(λ), which is safe but
	// pessimistic — hundreds of cycles for small λ).
	D int `json:"d,omitempty"`
	// Mode constrains which model variant "auto" may plan: "" (any),
	// "ER", or "CR". ER-bound workloads (agents performing their own
	// tests) set "ER" so the planner stays inside exclusive-read
	// regimens.
	Mode string `json:"mode,omitempty"`

	// Faults, when set, wraps the collection's oracle in adversarial
	// fault injection (adversary.Flaky): outright errors, silently
	// flipped answers, latency, and a stuck mode. A faulted collection
	// is always fronted by the resilience middleware, so folds see
	// timeouts/retries/voting rather than raw injected failures.
	Faults *FaultSpec `json:"faults,omitempty"`
	// Resilience tunes the oracle.Resilient fault-tolerance middleware
	// (per-attempt timeouts, retries with jittered backoff, k-of-n
	// majority voting, circuit breaker). Setting it on a fault-free
	// collection is allowed — voting then guards against nothing, but
	// the breaker still protects against future backends.
	Resilience *ResilienceSpec `json:"resilience,omitempty"`
}

// FaultSpec is the wire form of adversary.FlakyConfig: the
// fault-injection profile of a chaos-tested collection. Durations are
// integer milliseconds so specs stay plain JSON numbers.
type FaultSpec struct {
	// FailRate is the probability in [0,1] that an oracle call returns
	// an injected error instead of an answer.
	FailRate float64 `json:"fail_rate,omitempty"`
	// FlipRate is the probability in [0,1] that an oracle call silently
	// answers wrong — the noisy-oracle model the repair daemon converges
	// against.
	FlipRate float64 `json:"flip_rate,omitempty"`
	// LatencyMs delays every oracle call by this many milliseconds.
	LatencyMs int `json:"latency_ms,omitempty"`
	// StuckAfter, when positive, wedges every oracle call after the
	// first StuckAfter until its timeout fires.
	StuckAfter int64 `json:"stuck_after,omitempty"`
	// Seed makes the fault sequence reproducible.
	Seed int64 `json:"seed,omitempty"`
}

// validate bounds the fault profile; NewFlaky treats violations as
// caller bugs and panics, so the service boundary rejects them first.
func (f *FaultSpec) validate() error {
	if f.FailRate < 0 || f.FailRate > 1 || f.FlipRate < 0 || f.FlipRate > 1 {
		return fmt.Errorf("%w: fault rates out of [0,1]: fail %v, flip %v", ErrBadSpec, f.FailRate, f.FlipRate)
	}
	if f.LatencyMs < 0 || f.StuckAfter < 0 {
		return fmt.Errorf("%w: negative fault latency or stuck-after", ErrBadSpec)
	}
	return nil
}

// config converts the wire form to the adversary's native config.
func (f *FaultSpec) config() adversary.FlakyConfig {
	return adversary.FlakyConfig{
		FailRate:   f.FailRate,
		FlipRate:   f.FlipRate,
		Latency:    time.Duration(f.LatencyMs) * time.Millisecond,
		StuckAfter: f.StuckAfter,
		Seed:       f.Seed,
	}
}

// ResilienceSpec is the wire form of oracle.ResilientConfig. Zero
// fields take the middleware's defaults (1s timeout, 2 retries,
// 2ms–100ms backoff, breaker threshold 5 with 1s cooldown, no voting).
type ResilienceSpec struct {
	// TimeoutMs bounds each oracle attempt, in milliseconds.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// Retries is how many extra attempts follow a failed one.
	Retries int `json:"retries,omitempty"`
	// BackoffMs is the base of the jittered exponential backoff.
	BackoffMs int `json:"backoff_ms,omitempty"`
	// MaxBackoffMs caps the backoff growth.
	MaxBackoffMs int `json:"max_backoff_ms,omitempty"`
	// Votes enables k-of-n majority voting per answer; values <= 1 ask
	// once. Odd values avoid ties.
	Votes int `json:"votes,omitempty"`
	// BreakerThreshold is how many consecutive exhausted asks trip the
	// circuit breaker into degraded mode.
	BreakerThreshold int `json:"breaker_threshold,omitempty"`
	// BreakerCooldownMs is the open → half-open delay.
	BreakerCooldownMs int `json:"breaker_cooldown_ms,omitempty"`
	// Seed makes the backoff jitter reproducible.
	Seed int64 `json:"seed,omitempty"`
}

// validate bounds the middleware profile. Negative values are rejected
// at the wire boundary — the Go API's negative-means-disable idiom is
// not part of the JSON contract.
func (r *ResilienceSpec) validate() error {
	if r.TimeoutMs < 0 || r.Retries < 0 || r.BackoffMs < 0 || r.MaxBackoffMs < 0 ||
		r.Votes < 0 || r.BreakerThreshold < 0 || r.BreakerCooldownMs < 0 {
		return fmt.Errorf("%w: negative resilience parameter", ErrBadSpec)
	}
	return nil
}

// config converts the wire form to the middleware's native config.
func (r *ResilienceSpec) config() oracle.ResilientConfig {
	return oracle.ResilientConfig{
		Timeout:          time.Duration(r.TimeoutMs) * time.Millisecond,
		Retries:          r.Retries,
		Backoff:          time.Duration(r.BackoffMs) * time.Millisecond,
		MaxBackoff:       time.Duration(r.MaxBackoffMs) * time.Millisecond,
		Votes:            r.Votes,
		BreakerThreshold: r.BreakerThreshold,
		BreakerCooldown:  time.Duration(r.BreakerCooldownMs) * time.Millisecond,
		Seed:             r.Seed,
	}
}

// hints assembles the spec's workload hints for the algorithm registry.
func (sp OracleSpec) hints() (algo.Hints, error) {
	h := algo.Hints{K: sp.K, Lambda: sp.Lambda, D: sp.D, Seed: sp.Seed, Online: true}
	switch sp.Mode {
	case "":
	case "ER":
		h.Mode = algo.RequireER
	case "CR":
		h.Mode = algo.RequireCR
	default:
		return h, fmt.Errorf("%w: mode %q (want \"\", \"ER\", or \"CR\")", ErrBadSpec, sp.Mode)
	}
	return h, nil
}

// algorithm resolves the spec's sorting regimen. It returns (nil, name,
// nil) for the default incremental engine — also when "auto" plans into
// the compounding CR family, which the incremental sorter is the online
// form of — and a batch Algorithm otherwise. Unknown names and missing
// required hints surface as ErrBadSpec.
func (sp OracleSpec) algorithm() (algo.Algorithm, string, error) {
	h, err := sp.hints()
	if err != nil {
		return nil, "", err
	}
	switch sp.Algorithm {
	case "", AlgorithmIncremental:
		return nil, AlgorithmIncremental, nil
	case "auto":
		planned, err := algo.Plan(h)
		if err != nil {
			return nil, "", fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
		if planned.Mode() == model.CR {
			return nil, AlgorithmIncremental, nil
		}
		return planned, planned.Name(), nil
	default:
		a, err := algo.ByName(sp.Algorithm, h)
		if err != nil {
			return nil, "", fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
		return a, a.Name(), nil
	}
}

// N returns the universe size the spec defines.
func (sp OracleSpec) N() int {
	switch sp.Kind {
	case KindFault, KindFaultAgents:
		return len(sp.States)
	case KindGraphIso:
		return len(sp.Graphs)
	default:
		return len(sp.Labels)
	}
}

// Build validates the spec and constructs its oracle. The returned
// oracle is safe for concurrent use, as model.Oracle requires.
func (sp OracleSpec) Build() (model.Oracle, error) {
	if sp.N() == 0 {
		return nil, fmt.Errorf("%w: kind %q defines an empty universe", ErrBadSpec, sp.Kind)
	}
	// Fault and resilience profiles validate with the oracle so a
	// checkpointed spec that no longer passes fails recovery loudly too.
	if sp.Faults != nil {
		if err := sp.Faults.validate(); err != nil {
			return nil, err
		}
	}
	if sp.Resilience != nil {
		if err := sp.Resilience.validate(); err != nil {
			return nil, err
		}
	}
	switch sp.Kind {
	case KindLabel:
		if len(sp.Labels) == 0 {
			return nil, fmt.Errorf("%w: kind %q requires labels", ErrBadSpec, sp.Kind)
		}
		return oracle.NewLabel(sp.Labels), nil
	case KindHandshake:
		if len(sp.Labels) == 0 {
			return nil, fmt.Errorf("%w: kind %q requires labels", ErrBadSpec, sp.Kind)
		}
		return oracle.NewHandshake(sp.Labels, sp.Seed), nil
	case KindHandshakeAgents:
		if len(sp.Labels) == 0 {
			return nil, fmt.Errorf("%w: kind %q requires labels", ErrBadSpec, sp.Kind)
		}
		return agents.NewNetwork(agents.GroupKeys(sp.Labels, sp.Seed)), nil
	case KindFault:
		if len(sp.States) == 0 {
			return nil, fmt.Errorf("%w: kind %q requires states", ErrBadSpec, sp.Kind)
		}
		return oracle.NewFault(sp.States), nil
	case KindFaultAgents:
		if len(sp.States) == 0 {
			return nil, fmt.Errorf("%w: kind %q requires states", ErrBadSpec, sp.Kind)
		}
		return agents.NewNetwork(agents.StateRoster(sp.States)), nil
	case KindGraphIso:
		if len(sp.Graphs) == 0 {
			return nil, fmt.Errorf("%w: kind %q requires graphs", ErrBadSpec, sp.Kind)
		}
		graphs := make([]*oracle.Graph, len(sp.Graphs))
		for i, gs := range sp.Graphs {
			g, err := gs.build()
			if err != nil {
				return nil, fmt.Errorf("%w: graph %d: %v", ErrBadSpec, i, err)
			}
			graphs[i] = g
		}
		return oracle.NewGraphIsoCached(graphs), nil
	default:
		return nil, fmt.Errorf("%w: unknown oracle kind %q", ErrBadSpec, sp.Kind)
	}
}

// build validates and constructs one graph. Validation happens here, at
// the service boundary, because oracle.Graph treats malformed edges as
// caller bugs and panics.
func (gs GraphSpec) build() (*oracle.Graph, error) {
	if gs.N < 0 {
		return nil, fmt.Errorf("negative vertex count %d", gs.N)
	}
	g := oracle.NewGraph(gs.N)
	for _, e := range gs.Edges {
		u, v := e[0], e[1]
		if u < 0 || u >= gs.N || v < 0 || v >= gs.N {
			return nil, fmt.Errorf("edge (%d,%d) out of range [0,%d)", u, v, gs.N)
		}
		if u == v {
			return nil, fmt.Errorf("self-loop at vertex %d", u)
		}
		if g.HasEdge(u, v) {
			return nil, fmt.Errorf("duplicate edge (%d,%d)", u, v)
		}
		g.AddEdge(u, v)
	}
	return g, nil
}
