package service

import (
	"context"
	"fmt"
	"sync"

	"ecsort/internal/algo"
	"ecsort/internal/core"
	"ecsort/internal/model"
)

// sorter is what a collection needs from its classification engine. The
// default implementation is core.Incremental (online compounding CR
// folds); batchSorter adapts any batch Algorithm from the registry so a
// collection can run ER or const-round regimens instead.
type sorter interface {
	// Add buffers element e; it rejects out-of-range and duplicates.
	Add(e int) error
	// Has reports whether e was already added (buffered or folded).
	Has(e int) bool
	// Pending counts buffered elements awaiting the next Flush.
	Pending() int
	// Flush folds the buffer into the answer.
	Flush() error
	// Flushes counts non-empty folds so far.
	Flushes() int
	// Stats is the accumulated session cost.
	Stats() model.Stats
	// Flat exposes the answer's flat storage (elements grouped by
	// class + class offsets), valid until the next Flush.
	Flat() (elems, offs []int)
	// PendingSlice exposes the buffered elements in arrival order — the
	// order the next Flush will fold them in, which checkpoints must
	// preserve for bit-identical recovery. Read-only, valid until the
	// next Add or Flush.
	PendingSlice() []int
	// Members exposes the full arrival-order ingest history for engines
	// that re-sort their whole sub-universe per fold (batch regimens);
	// engines that fold incrementally return nil — their folded state is
	// fully captured by Flat.
	Members() []int
	// Restore rebuilds a fresh engine from checkpointed state so it
	// continues bit-identically: members (nil for incremental engines),
	// the pending tail, the flat answer, the accumulated cost, and the
	// fold count.
	Restore(members, pending, elems, offs []int, st model.Stats, flushes int) error
	// Delete removes element e entirely — from the pending buffer or the
	// merged answer — so it may be re-added later. It rejects elements
	// that are not currently added.
	Delete(e int) error
	// Invalidate withdraws the merged class containing element e: its
	// members leave the answer and re-enter the pending buffer, so the
	// next Flush re-verifies them against the oracle. It returns the
	// number of re-queued members, and an error when e is not added or
	// has no merged class (still pending).
	Invalidate(e int) (int, error)
	// SetContext rebinds the context bounding subsequent folds. The
	// service wires a cancelable context per fold so a tripped oracle
	// circuit breaker aborts the fold between rounds.
	SetContext(ctx context.Context)
}

// incSorter adapts core.Incremental to the sorter interface's durability
// hooks. The incremental engine folds arrivals into its answer as it
// goes, so it has no use for a full arrival-order history — Members is
// nil and a checkpoint captures it with the flat answer plus the pending
// buffer alone.
type incSorter struct {
	*core.Incremental
}

func (w incSorter) PendingSlice() []int { return w.Incremental.PendingElements() }

func (w incSorter) Members() []int { return nil }

func (w incSorter) Invalidate(e int) (int, error) {
	members, err := w.Incremental.InvalidateClassOf(e)
	return len(members), err
}

func (w incSorter) Restore(members, pending, elems, offs []int, st model.Stats, flushes int) error {
	if len(members) != 0 {
		return fmt.Errorf("service: incremental engine restored with a members list (%d entries)", len(members))
	}
	return w.Incremental.Restore(elems, offs, pending, st, flushes)
}

// subOracle restricts a base oracle to the sub-universe ids, the view a
// batch regimen sorts: position i of the sub-universe is base element
// ids[i]. Build one with newSubOracle, which preserves the base's
// batch capability.
type subOracle struct {
	base model.Oracle
	ids  []int
}

func (o *subOracle) N() int { return len(o.ids) }

func (o *subOracle) Same(i, j int) bool { return o.base.Same(o.ids[i], o.ids[j]) }

// newSubOracle builds the sub-universe view, returning a batch-capable
// view when base itself implements model.BatchOracle so the capability
// survives into the per-flush sessions.
func newSubOracle(base model.Oracle, ids []int) model.Oracle {
	o := &subOracle{base: base, ids: ids}
	if b, ok := base.(model.BatchOracle); ok {
		return &subBatchOracle{subOracle: o, batch: b}
	}
	return o
}

// subBatchOracle forwards whole chunks through the id translation: a
// chunk's pairs are rewritten into base element ids in a pooled scratch
// buffer, then answered by one base SameBatch call. The scratch is per
// call (pooled), not per view — a parallel round invokes SameBatch
// concurrently on disjoint chunks.
type subBatchOracle struct {
	*subOracle
	batch model.BatchOracle
	bufs  sync.Pool
}

// SameBatch implements model.BatchOracle.
func (o *subBatchOracle) SameBatch(pairs []model.Pair, out []bool) {
	bp, _ := o.bufs.Get().(*[]model.Pair)
	if bp == nil {
		bp = new([]model.Pair)
	}
	buf := *bp
	if cap(buf) < len(pairs) {
		buf = make([]model.Pair, len(pairs))
	}
	buf = buf[:len(pairs)]
	ids := o.ids
	for i, p := range pairs {
		buf[i] = model.Pair{A: ids[p.A], B: ids[p.B]}
	}
	o.batch.SameBatch(buf, out)
	*bp = buf
	o.bufs.Put(bp)
}

// batchSorter runs a batch Algorithm as a collection engine. Where the
// incremental sorter folds only the new arrivals, a batch regimen is
// defined over its whole input at once, so every flush re-sorts the
// sub-universe of members ingested so far through the chosen regimen
// (on a fresh session whose costs accumulate into Stats). That trades
// fold cost for the regimen's guarantees — e.g. const-round-er spends
// O(1) physical rounds per fold no matter how large the collection has
// grown, where the compounding fold's single logical round widens with
// (batch + k)².
type batchSorter struct {
	alg  algo.Algorithm
	base model.Oracle
	opts []model.Option
	ctx  context.Context

	members []int // ingested elements in arrival order
	seen    []bool
	pending int // members added since the last completed flush

	elems   []int // flat answer in base-oracle element ids
	offs    []int
	stats   model.Stats
	flushes int
}

func newBatchSorter(alg algo.Algorithm, base model.Oracle, ctx context.Context, opts []model.Option) *batchSorter {
	return &batchSorter{
		alg:  alg,
		base: base,
		opts: opts,
		ctx:  ctx,
		seen: make([]bool, base.N()),
		offs: []int{0},
	}
}

func (b *batchSorter) Add(e int) error {
	if e < 0 || e >= len(b.seen) {
		return fmt.Errorf("service: element %d out of range [0,%d)", e, len(b.seen))
	}
	if b.seen[e] {
		return fmt.Errorf("service: element %d added twice", e)
	}
	b.seen[e] = true
	b.members = append(b.members, e)
	b.pending++
	return nil
}

func (b *batchSorter) Has(e int) bool { return e >= 0 && e < len(b.seen) && b.seen[e] }

func (b *batchSorter) Pending() int { return b.pending }

func (b *batchSorter) Flush() error {
	if b.pending == 0 {
		return nil
	}
	s := model.NewSession(newSubOracle(b.base, b.members), b.alg.Mode(), b.opts...)
	res, err := b.alg.Sort(b.ctx, s)
	if err != nil {
		// The answer and pending count are untouched, so a failed fold
		// (cancellation, a const-round λ overestimate) leaves the
		// collection consistent and retryable.
		return err
	}
	b.elems = b.elems[:0]
	b.offs = b.offs[:1]
	for _, cls := range res.Classes {
		for _, i := range cls {
			b.elems = append(b.elems, b.members[i])
		}
		b.offs = append(b.offs, len(b.elems))
	}
	b.stats.Comparisons += res.Stats.Comparisons
	b.stats.Rounds += res.Stats.Rounds
	if res.Stats.MaxRoundSize > b.stats.MaxRoundSize {
		b.stats.MaxRoundSize = res.Stats.MaxRoundSize
	}
	b.pending = 0
	b.flushes++
	return nil
}

func (b *batchSorter) Flushes() int { return b.flushes }

func (b *batchSorter) Stats() model.Stats { return b.stats }

func (b *batchSorter) Flat() (elems, offs []int) {
	if len(b.elems) == 0 {
		return nil, nil
	}
	return b.elems, b.offs
}

func (b *batchSorter) PendingSlice() []int {
	return b.members[len(b.members)-b.pending:]
}

func (b *batchSorter) Members() []int { return b.members }

// Delete removes element e from the engine: from the pending tail
// (shrinking the next fold) or from the folded sub-universe and the
// current flat answer. Later folds simply re-sort the surviving members.
func (b *batchSorter) Delete(e int) error {
	if e < 0 || e >= len(b.seen) || !b.seen[e] {
		return fmt.Errorf("service: element %d not added", e)
	}
	b.seen[e] = false
	idx := -1
	for i, m := range b.members {
		if m == e {
			idx = i
			break
		}
	}
	if idx >= len(b.members)-b.pending {
		b.pending--
	}
	b.members = append(b.members[:idx], b.members[idx+1:]...)
	b.removeFromAnswer(e)
	return nil
}

// Invalidate withdraws the merged class containing e: the class leaves
// the flat answer and its members move to the members tail, joining the
// pending region so the next fold re-verifies them. Moving them keeps
// the checkpoint invariant — the pending buffer is always a contiguous
// members suffix.
func (b *batchSorter) Invalidate(e int) (int, error) {
	if e < 0 || e >= len(b.seen) || !b.seen[e] {
		return 0, fmt.Errorf("service: element %d not added", e)
	}
	ci := -1
	for k := 0; k+1 < len(b.offs) && ci < 0; k++ {
		for pos := b.offs[k]; pos < b.offs[k+1]; pos++ {
			if b.elems[pos] == e {
				ci = k
				break
			}
		}
	}
	if ci < 0 {
		return 0, fmt.Errorf("service: element %d is pending, no merged class to invalidate", e)
	}
	lo, hi := b.offs[ci], b.offs[ci+1]
	cls := make([]int, hi-lo)
	copy(cls, b.elems[lo:hi])
	copy(b.elems[lo:], b.elems[hi:])
	b.elems = b.elems[:len(b.elems)-(hi-lo)]
	copy(b.offs[ci:], b.offs[ci+1:])
	b.offs = b.offs[:len(b.offs)-1]
	for i := ci; i < len(b.offs); i++ {
		b.offs[i] -= hi - lo
	}
	inCls := make(map[int]bool, len(cls))
	for _, m := range cls {
		inCls[m] = true
	}
	kept := make([]int, 0, len(b.members))
	moved := make([]int, 0, len(cls))
	for _, m := range b.members {
		if inCls[m] {
			moved = append(moved, m)
		} else {
			kept = append(kept, m)
		}
	}
	b.members = append(kept, moved...)
	b.pending += len(cls)
	return len(cls), nil
}

// removeFromAnswer compacts element e out of the flat answer (a no-op
// when e is pending and not in the answer), removing its class if that
// empties it.
func (b *batchSorter) removeFromAnswer(e int) {
	for ci := 0; ci+1 < len(b.offs); ci++ {
		for pos := b.offs[ci]; pos < b.offs[ci+1]; pos++ {
			if b.elems[pos] != e {
				continue
			}
			copy(b.elems[pos:], b.elems[pos+1:])
			b.elems = b.elems[:len(b.elems)-1]
			for i := ci + 1; i < len(b.offs); i++ {
				b.offs[i]--
			}
			if b.offs[ci] == b.offs[ci+1] {
				copy(b.offs[ci+1:], b.offs[ci+2:])
				b.offs = b.offs[:len(b.offs)-1]
			}
			return
		}
	}
}

func (b *batchSorter) SetContext(ctx context.Context) { b.ctx = ctx }

// Restore rebuilds a fresh batch engine from checkpointed state. The
// members list is the whole arrival order — the sub-universe every later
// fold re-sorts — so preserving it exactly is what keeps post-recovery
// folds bit-identical.
func (b *batchSorter) Restore(members, pending, elems, offs []int, st model.Stats, flushes int) error {
	if len(b.members) != 0 || b.flushes != 0 {
		return fmt.Errorf("service: Restore on a used batch engine (%d members, %d flushes)", len(b.members), b.flushes)
	}
	if len(pending) > len(members) {
		return fmt.Errorf("service: %d pending exceed %d members", len(pending), len(members))
	}
	for i, e := range pending {
		if got := members[len(members)-len(pending)+i]; got != e {
			return fmt.Errorf("service: pending buffer is not the members tail (index %d: %d vs %d)", i, e, got)
		}
	}
	if len(elems) > 0 && (len(offs) < 2 || offs[0] != 0 || offs[len(offs)-1] != len(elems)) {
		return fmt.Errorf("service: malformed offset table (len %d over %d elements)", len(offs), len(elems))
	}
	for _, e := range members {
		if e < 0 || e >= len(b.seen) {
			return fmt.Errorf("service: member %d out of range [0,%d)", e, len(b.seen))
		}
		if b.seen[e] {
			return fmt.Errorf("service: member %d appears twice", e)
		}
		b.seen[e] = true
	}
	b.members = append(b.members, members...)
	b.pending = len(pending)
	b.elems = append(b.elems[:0], elems...)
	if len(elems) > 0 {
		b.offs = append(b.offs[:0], offs...)
	}
	b.stats = st
	b.flushes = flushes
	return nil
}
