package service

import (
	"context"
	"fmt"

	"ecsort/internal/algo"
	"ecsort/internal/model"
)

// sorter is what a collection needs from its classification engine. The
// default implementation is core.Incremental (online compounding CR
// folds); batchSorter adapts any batch Algorithm from the registry so a
// collection can run ER or const-round regimens instead.
type sorter interface {
	// Add buffers element e; it rejects out-of-range and duplicates.
	Add(e int) error
	// Has reports whether e was already added (buffered or folded).
	Has(e int) bool
	// Pending counts buffered elements awaiting the next Flush.
	Pending() int
	// Flush folds the buffer into the answer.
	Flush() error
	// Flushes counts non-empty folds so far.
	Flushes() int
	// Stats is the accumulated session cost.
	Stats() model.Stats
	// Flat exposes the answer's flat storage (elements grouped by
	// class + class offsets), valid until the next Flush.
	Flat() (elems, offs []int)
}

// subOracle restricts a base oracle to the sub-universe ids, the view a
// batch regimen sorts: position i of the sub-universe is base element
// ids[i].
type subOracle struct {
	base model.Oracle
	ids  []int
}

func (o *subOracle) N() int { return len(o.ids) }

func (o *subOracle) Same(i, j int) bool { return o.base.Same(o.ids[i], o.ids[j]) }

// batchSorter runs a batch Algorithm as a collection engine. Where the
// incremental sorter folds only the new arrivals, a batch regimen is
// defined over its whole input at once, so every flush re-sorts the
// sub-universe of members ingested so far through the chosen regimen
// (on a fresh session whose costs accumulate into Stats). That trades
// fold cost for the regimen's guarantees — e.g. const-round-er spends
// O(1) physical rounds per fold no matter how large the collection has
// grown, where the compounding fold's single logical round widens with
// (batch + k)².
type batchSorter struct {
	alg  algo.Algorithm
	base model.Oracle
	opts []model.Option
	ctx  context.Context

	members []int // ingested elements in arrival order
	seen    []bool
	pending int // members added since the last completed flush

	elems   []int // flat answer in base-oracle element ids
	offs    []int
	stats   model.Stats
	flushes int
}

func newBatchSorter(alg algo.Algorithm, base model.Oracle, ctx context.Context, opts []model.Option) *batchSorter {
	return &batchSorter{
		alg:  alg,
		base: base,
		opts: opts,
		ctx:  ctx,
		seen: make([]bool, base.N()),
		offs: []int{0},
	}
}

func (b *batchSorter) Add(e int) error {
	if e < 0 || e >= len(b.seen) {
		return fmt.Errorf("service: element %d out of range [0,%d)", e, len(b.seen))
	}
	if b.seen[e] {
		return fmt.Errorf("service: element %d added twice", e)
	}
	b.seen[e] = true
	b.members = append(b.members, e)
	b.pending++
	return nil
}

func (b *batchSorter) Has(e int) bool { return e >= 0 && e < len(b.seen) && b.seen[e] }

func (b *batchSorter) Pending() int { return b.pending }

func (b *batchSorter) Flush() error {
	if b.pending == 0 {
		return nil
	}
	s := model.NewSession(&subOracle{base: b.base, ids: b.members}, b.alg.Mode(), b.opts...)
	res, err := b.alg.Sort(b.ctx, s)
	if err != nil {
		// The answer and pending count are untouched, so a failed fold
		// (cancellation, a const-round λ overestimate) leaves the
		// collection consistent and retryable.
		return err
	}
	b.elems = b.elems[:0]
	b.offs = b.offs[:1]
	for _, cls := range res.Classes {
		for _, i := range cls {
			b.elems = append(b.elems, b.members[i])
		}
		b.offs = append(b.offs, len(b.elems))
	}
	b.stats.Comparisons += res.Stats.Comparisons
	b.stats.Rounds += res.Stats.Rounds
	if res.Stats.MaxRoundSize > b.stats.MaxRoundSize {
		b.stats.MaxRoundSize = res.Stats.MaxRoundSize
	}
	b.pending = 0
	b.flushes++
	return nil
}

func (b *batchSorter) Flushes() int { return b.flushes }

func (b *batchSorter) Stats() model.Stats { return b.stats }

func (b *batchSorter) Flat() (elems, offs []int) {
	if len(b.elems) == 0 {
		return nil, nil
	}
	return b.elems, b.offs
}
