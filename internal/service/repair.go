package service

// The self-repair daemon: a background loop that samples element pairs
// from each collection's published snapshot, re-verifies them against
// the collection's oracle, and — when the oracle's verdict diverges
// from the snapshot — withdraws the classes involved and re-folds, all
// through the shard's single-writer loop. Under a noisy oracle
// (spec.Faults.FlipRate > 0) occasional wrong answers contaminate
// classes; repeated sweeps converge the partition back to ground truth
// because a withdrawn class re-merges against every surviving
// representative (wrong merges split, wrong splits re-merge).
// docs/REPAIR.md covers the convergence argument and tuning.

import (
	"fmt"
	"math/rand"
	"time"

	"ecsort/internal/dist"
)

// RepairConfig tunes the background self-repair daemon.
type RepairConfig struct {
	// Interval between sweeps; 0 disables the daemon (explicit
	// RepairSweep calls still work).
	Interval time.Duration
	// Samples is how many element pairs each collection gets per sweep;
	// 0 means 32.
	Samples int
	// Dist selects the distribution sampling element positions within a
	// collection's snapshot (elements ordered by class, classes by
	// smallest member): "uniform" (the default) spreads verification
	// evenly; "geometric", "poisson", and "zeta" skew it toward the
	// front classes — the internal/dist samplers from the paper's
	// Section 4, capped at the collection size.
	Dist string
	// Param is the distribution parameter: p for geometric, lambda for
	// poisson, s for zeta; ignored for uniform. 0 takes the sampler's
	// default.
	Param float64
	// Seed makes the sampling sequence reproducible.
	Seed int64
}

func (c RepairConfig) samples() int {
	if c.Samples <= 0 {
		return 32
	}
	return c.Samples
}

// repairSampler draws element positions. A nil dist means uniform over
// the collection's current size — the only distribution whose support
// must track the collection, so it samples directly instead of through
// a fixed-support dist.Distribution.
type repairSampler struct {
	d dist.Distribution
}

// newRepairSampler validates and builds the sampler for a repair
// config. Unknown distribution names are spec errors.
func newRepairSampler(cfg RepairConfig) (repairSampler, error) {
	switch cfg.Dist {
	case "", "uniform":
		return repairSampler{}, nil
	case "geometric":
		p := cfg.Param
		if p == 0 {
			p = 0.5
		}
		return repairSampler{d: dist.NewGeometric(p)}, nil
	case "poisson":
		l := cfg.Param
		if l == 0 {
			l = 4
		}
		return repairSampler{d: dist.NewPoisson(l)}, nil
	case "zeta":
		z := cfg.Param
		if z == 0 {
			z = 2.5
		}
		return repairSampler{d: dist.NewZeta(z)}, nil
	default:
		return repairSampler{}, fmt.Errorf("%w: repair distribution %q (want uniform, geometric, poisson, or zeta)",
			ErrBadSpec, cfg.Dist)
	}
}

// index draws one position in [0, n).
func (sp repairSampler) index(rng *rand.Rand, n int) int {
	if sp.d == nil {
		return rng.Intn(n)
	}
	return dist.CapAt(sp.d.Sample(rng), n-1)
}

// RepairReport summarizes one repair sweep.
type RepairReport struct {
	// Collections is how many collections the sweep sampled.
	Collections int `json:"collections"`
	// Samples is how many element pairs were re-verified.
	Samples int `json:"samples"`
	// Divergences counts pairs where the oracle's verdict contradicted
	// the published partition.
	Divergences int `json:"divergences"`
	// Corrections counts divergences repaired (classes withdrawn and
	// re-folded).
	Corrections int `json:"corrections"`
	// SkippedDegraded counts collections skipped because their oracle
	// breaker was open — re-verifying against a dead oracle would only
	// re-trip it.
	SkippedDegraded int `json:"skipped_degraded"`
	// Errors counts oracle asks and correction attempts that failed.
	Errors int `json:"errors"`
}

// repairLoop is the daemon goroutine: one RepairSweep per interval
// until the service closes.
func (s *Service) repairLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.Repair.Interval)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
			s.RepairSweep()
		}
	}
}

// RepairSweep runs one synchronous repair pass over every collection:
// sample pairs, re-verify against the oracle, and withdraw + re-fold
// the classes of any pair whose published relation the oracle
// contradicts. Sweeps serialize on an internal lock (the daemon and
// explicit callers share one seeded sampling stream). Corrections are
// WAL-logged (invalidate + flush records) through the shard's writer
// loop, so a recovered service replays them like any client operation.
func (s *Service) RepairSweep() RepairReport {
	s.repairMu.Lock()
	defer s.repairMu.Unlock()
	var rep RepairReport
	for _, sh := range s.shards {
		sh.mu.RLock()
		cols := make([]*collection, 0, len(sh.cols))
		for _, c := range sh.cols {
			cols = append(cols, c)
		}
		sh.mu.RUnlock()
		for _, c := range cols {
			s.repairCollection(sh, c, &rep)
		}
	}
	s.repairSweeps.Add(1)
	s.repairSamples.Add(int64(rep.Samples))
	s.repairDivergences.Add(int64(rep.Divergences))
	s.repairCorrections.Add(int64(rep.Corrections))
	s.repairSkipped.Add(int64(rep.SkippedDegraded))
	s.repairErrors.Add(int64(rep.Errors))
	if rep.Divergences > 0 {
		s.lastDivergenceNano.Store(time.Now().UnixNano())
	}
	return rep
}

// repairCollection samples and re-verifies one collection.
func (s *Service) repairCollection(sh *shard, c *collection, rep *RepairReport) {
	if _, bad := c.degraded(); bad {
		rep.SkippedDegraded++
		return
	}
	snap := c.snap.Load()
	if snap.Size < 2 {
		return
	}
	rep.Collections++
	elems := snapshotElements(snap)
	for k := 0; k < s.cfg.Repair.samples(); k++ {
		i := s.sampler.index(s.repairRng, len(elems))
		j := s.sampler.index(s.repairRng, len(elems))
		for tries := 0; i == j && tries < 8; tries++ {
			j = s.sampler.index(s.repairRng, len(elems))
		}
		if i == j {
			continue // degenerate draw (e.g. a heavily skewed sampler on a tiny collection)
		}
		a, b := elems[i], elems[j]
		rep.Samples++
		verdict, err := s.reverify(c, a, b)
		if err != nil {
			rep.Errors++
			if _, bad := c.degraded(); bad {
				rep.SkippedDegraded++
				return // the breaker tripped mid-sweep; stop hammering it
			}
			continue
		}
		if verdict == (snap.ClassIndexOf(a) == snap.ClassIndexOf(b)) {
			continue
		}
		rep.Divergences++
		if err := s.repairCorrect(sh, c, a, b); err != nil {
			rep.Errors++
			continue
		}
		rep.Corrections++
		c.repaired.Add(1)
		// The correction re-folded and republished; refresh the sampling
		// frame so later draws see the repaired partition.
		snap = c.snap.Load()
		if snap.Size < 2 {
			return
		}
		elems = snapshotElements(snap)
	}
}

// reverify asks the collection's oracle about one pair, reporting
// middleware failures instead of folding them into a conservative
// answer (a repair verdict must not itself be a guess).
func (s *Service) reverify(c *collection, a, b int) (bool, error) {
	if c.res != nil {
		return c.res.TrySame(s.ctx, a, b)
	}
	//ecsort:ignore oracleround repair re-verification is out-of-session by design: its cost must not skew any sort's Result stats
	return c.orc.Same(a, b), nil
}

// snapshotElements flattens a snapshot's classes into one element list,
// ordered by class (classes by smallest member, members ascending) —
// the frame the repair sampler draws positions from. Skewed samplers
// therefore concentrate verification on the front classes.
func snapshotElements(snap *Snapshot) []int {
	out := make([]int, 0, snap.Size)
	for _, cls := range snap.Classes {
		out = append(out, cls...)
	}
	return out
}

// repairCorrect applies one correction on the shard's writer loop:
// withdraw the merged classes of both elements (WAL-logged per element)
// and re-fold, so the members re-verify against the oracle and the
// published partition moves toward ground truth. The fold is logged as
// an ordinary flush record; replay applies the same withdrawal and
// re-fold.
func (s *Service) repairCorrect(sh *shard, c *collection, a, b int) error {
	return s.do(sh, func() error {
		if cur, err := sh.lookup(c.key); err != nil {
			return err
		} else if cur != c {
			return fmt.Errorf("%w: %q was recreated mid-repair", ErrNotFound, c.key)
		}
		if ra, bad := c.degraded(); bad {
			return &DegradedError{Key: c.key, RetryAfter: ra}
		}
		for _, e := range []int{a, b} {
			// Re-check against the live snapshot (in sync on the writer):
			// the first withdrawal may have pulled the second element
			// pending already — same class, or a concurrent delete won.
			if c.snap.Load().ClassIndexOf(e) < 0 {
				continue
			}
			if sh.wal != nil {
				if err := sh.wal.AppendInvalidate(c.key, e); err != nil {
					return err
				}
			}
			if _, err := c.srt.Invalidate(e); err != nil {
				return err
			}
			c.invalidated.Add(1)
			c.publish()
		}
		sh.dirty[c] = struct{}{}
		if err := s.fold(sh, c); err != nil {
			c.pending.Store(int64(c.srt.Pending()))
			if sh.wal != nil {
				sh.wal.Commit()
			}
			return err
		}
		delete(sh.dirty, c)
		if sh.wal != nil {
			return sh.wal.Commit()
		}
		return nil
	})
}
