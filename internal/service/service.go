package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ecsort/internal/model"
	"ecsort/internal/oracle"
	rt "ecsort/internal/runtime"
	"ecsort/internal/wal"
)

// Errors reported by the service API. The HTTP layer maps them to status
// codes.
var (
	// ErrClosed is returned once Close has been called.
	ErrClosed = errors.New("service: closed")
	// ErrNotFound is returned for operations on a collection that does
	// not exist.
	ErrNotFound = errors.New("service: collection not found")
	// ErrExists is returned when creating a collection whose key is
	// taken.
	ErrExists = errors.New("service: collection already exists")
	// ErrBadItem is returned when an ingest batch contains an
	// out-of-range or duplicate element; the whole batch is rejected.
	ErrBadItem = errors.New("service: bad item")
	// ErrBadSpec is returned when a collection spec fails validation
	// (unknown kind, empty universe, malformed graphs, empty key).
	ErrBadSpec = errors.New("service: bad spec")
	// ErrDegraded matches (via errors.Is) the DegradedError writes
	// receive while a collection's oracle circuit breaker is open:
	// the collection is read-only — snapshots still serve — until the
	// breaker's cooldown admits a successful probe.
	ErrDegraded = errors.New("service: collection degraded (oracle unavailable)")
)

// DegradedError rejects a write against a collection whose oracle
// breaker is open. RetryAfter is how long until the breaker admits its
// next probe; the HTTP layer maps it to 503 + Retry-After.
type DegradedError struct {
	Key        string
	RetryAfter time.Duration
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("service: collection %q degraded (oracle unavailable); retry after %s", e.Key, e.RetryAfter)
}

// Is makes errors.Is(err, ErrDegraded) match.
func (e *DegradedError) Is(target error) bool { return target == ErrDegraded }

// Config tunes a Service. The zero value is ready to use.
type Config struct {
	// Shards is the number of independent single-writer goroutines
	// collections are hashed across. 0 means 8.
	Shards int
	// BatchSize is the pending-element threshold that triggers a flush
	// during ingestion. 0 flushes after every ingest call (one
	// compounding round per HTTP batch); larger values accumulate across
	// calls and amortize further, at the cost of staler snapshots.
	BatchSize int
	// FlushInterval, when positive, bounds snapshot staleness: each
	// shard flushes its dirty collections at this period even if no
	// batch fills up.
	FlushInterval time.Duration
	// Processors caps comparisons per physical round in each
	// collection's session (Valiant's p); 0 means n.
	Processors int
	// Workers is the size of the service-wide execution pool: one
	// persistent runtime.Pool shared by every collection's session, so
	// concurrent shard flushes time-slice a fixed set of goroutines
	// instead of spawning per round. 0 means GOMAXPROCS.
	Workers int

	// DataDir, when non-empty, makes collections durable: each shard
	// goroutine appends accepted operations to its own write-ahead log
	// under DataDir/shard-<i>/ and periodically checkpoints its
	// collections' flat answers, and Open replays snapshot-then-tail on
	// boot. Empty keeps the service memory-only (a restart loses all
	// collections). The on-disk format is specified in
	// docs/PERSISTENCE.md.
	DataDir string
	// Fsync selects when WAL appends reach stable storage: "always"
	// (fsync per accepted operation), "interval" (fsync at most every
	// FsyncInterval; the default), or "never" (leave flushing to the OS
	// page cache — a machine crash may lose the unsynced tail, a clean
	// shutdown loses nothing). Ignored when DataDir is empty.
	Fsync string
	// FsyncInterval bounds data loss under Fsync "interval"; 0 means
	// 100ms.
	FsyncInterval time.Duration
	// CheckpointInterval, when positive, makes each shard checkpoint its
	// collections at this period, truncating the WAL behind the
	// snapshot. 0 checkpoints only on Close and explicit Checkpoint
	// calls, so the WAL grows until then.
	CheckpointInterval time.Duration
	// MaxSegmentBytes, when positive, rotates a shard's WAL to a fresh
	// segment once the current one grows past this size, bounding the
	// largest file recovery must scan in one piece. Rotation does not
	// checkpoint — replay walks the whole segment chain — so it bounds
	// file size, not recovery work. 0 never rotates on size.
	MaxSegmentBytes int64
	// Repair configures the background self-repair daemon that samples
	// element pairs, re-verifies them against the oracle, and withdraws
	// diverging classes for re-sorting. The zero value disables the
	// daemon; RepairSweep can still be called explicitly.
	Repair RepairConfig
	// DisableBatchOracle hides every oracle's batch capability from the
	// collection sessions, forcing per-pair Same dispatch. Batch
	// answering is on by default; this switch exists for A/B
	// measurement (serve-stress -batch-oracle) and as an operational
	// escape hatch.
	DisableBatchOracle bool
}

func (c Config) shards() int {
	if c.Shards <= 0 {
		return 8
	}
	return c.Shards
}

// Snapshot is an immutable view of a collection published at its last
// flush. Readers get the snapshot without touching the writer goroutine,
// so queries never block ingestion. A snapshot is flat underneath: all
// classes are views into one backing array copied from the sorter with a
// single memmove, and an element→class index makes ClassIndexOf an O(1)
// point lookup. Treat Classes as read-only.
type Snapshot struct {
	// Version counts flushes; it increments each time a new snapshot is
	// published.
	Version int64 `json:"version"`
	// Classes is the partition of all flushed elements, members sorted
	// ascending, classes ordered by smallest member.
	Classes [][]int `json:"classes"`
	// Size is the number of elements covered by Classes.
	Size int `json:"size"`
	// Stats is the session cost at publish time.
	Stats model.Stats `json:"stats"`

	// classOf maps element -> index into Classes, -1 when the element is
	// not covered (never ingested, or still pending). nil on the empty
	// snapshot a fresh collection publishes.
	classOf []int32
}

// ClassIndexOf returns the index into Classes of element e's class, or -1
// if e is not covered by this snapshot. O(1).
//
//ecsort:hotpath
func (s *Snapshot) ClassIndexOf(e int) int {
	if s == nil || e < 0 || e >= len(s.classOf) {
		return -1
	}
	return int(s.classOf[e])
}

// numClasses is a convenience for metrics.
func (s *Snapshot) numClasses() int { return len(s.Classes) }

// ClassView is one element's class as served from a snapshot — the
// payload of the ClassOf point lookup.
type ClassView struct {
	// Element is the queried element.
	Element int `json:"element"`
	// ClassIndex is the class's index in the snapshot's Classes.
	ClassIndex int `json:"class_index"`
	// Members is the full class, sorted ascending.
	Members []int `json:"members"`
	// Version is the snapshot version the lookup was served from.
	Version int64 `json:"version"`
}

// CollectionInfo reports a collection's identity and counters for the
// stats endpoint.
type CollectionInfo struct {
	Key string `json:"key"`
	// Kind is the oracle kind behind the collection.
	Kind string `json:"kind"`
	// Algorithm is the sorting regimen folding the collection's batches
	// ("incremental" for the default online engine).
	Algorithm string `json:"algorithm"`
	// Universe is the oracle's element count (insertable ids are
	// 0..Universe-1).
	Universe int `json:"universe"`
	// Ingested counts elements accepted so far (flushed or pending).
	Ingested int64 `json:"ingested"`
	// Pending counts buffered elements not yet folded into a snapshot.
	Pending int64 `json:"pending"`
	// Batches counts accepted ingest calls.
	Batches int64 `json:"batches"`
	// Flushes counts compounding rounds spent (snapshot publications).
	Flushes int64 `json:"flushes"`
	// Classes is the class count of the current snapshot.
	Classes int `json:"classes"`
	// Deleted counts elements removed by Delete calls.
	Deleted int64 `json:"deleted,omitempty"`
	// Invalidated counts class withdrawals (explicit invalidations plus
	// repair-daemon corrections).
	Invalidated int64 `json:"invalidated,omitempty"`
	// Repaired counts divergences the repair daemon corrected.
	Repaired int64 `json:"repaired,omitempty"`
	// Breaker is the oracle circuit breaker's state ("closed", "open",
	// "half-open"); empty for collections without resilience middleware.
	Breaker string `json:"breaker,omitempty"`
	// RetryAfterSeconds is how long writes stay rejected while the
	// breaker is open; 0 when writes are admitted.
	RetryAfterSeconds float64 `json:"retry_after_seconds,omitempty"`
	// Snapshot is the current published answer.
	Snapshot *Snapshot `json:"snapshot,omitempty"`
}

// IngestResult summarizes one accepted batch.
type IngestResult struct {
	// Accepted is the number of elements buffered by this call.
	Accepted int `json:"accepted"`
	// Pending is the buffer size after the call (0 if it flushed).
	Pending int `json:"pending"`
	// Flushed reports whether this call folded the buffer into the
	// answer and published a new snapshot.
	Flushed bool `json:"flushed"`
	// Version is the snapshot version after the call.
	Version int64 `json:"version"`
}

// collection is one keyed namespace: a sorter (the incremental engine,
// or a batch regimen from the registry) plus its published snapshot.
// The srt field is owned by the shard goroutine; snap and the atomic
// counters are shared with readers.
type collection struct {
	key      string
	spec     OracleSpec
	algoName string
	srt      sorter //ecsort:owned-by-shard
	// orc is the effective oracle the collection's folds test against —
	// the resilience middleware when the spec configures faults or
	// resilience, the bare spec oracle otherwise. The repair daemon
	// re-verifies sampled pairs against it.
	orc model.Oracle
	// res is the resilience middleware handle (nil for plain
	// collections): the circuit breaker the service consults for
	// degraded-mode write gating and the /metrics oracle counters.
	res *oracle.Resilient

	snap        atomic.Pointer[Snapshot]
	ingested    atomic.Int64
	pending     atomic.Int64
	batches     atomic.Int64
	flushes     atomic.Int64
	deleted     atomic.Int64
	invalidated atomic.Int64
	repaired    atomic.Int64
}

// newCollection assembles a collection around a built engine. Runs on
// the owning shard goroutine (the create op) or during Open's recovery
// pass, which precedes the goroutine and inherits its exclusivity.
//
//ecsort:shard-goroutine
func newCollection(key string, spec OracleSpec, eng engine) *collection {
	return &collection{key: key, spec: spec, algoName: eng.algoName, srt: eng.srt, orc: eng.orc, res: eng.res}
}

// degraded reports whether the collection currently refuses writes —
// its oracle breaker is open and still cooling down — and how long
// until the next probe is admitted. Once the cooldown elapses the
// breaker is half-open and writes flow again (the first fold probes).
func (c *collection) degraded() (time.Duration, bool) {
	if c.res == nil {
		return 0, false
	}
	if ra := c.res.RetryAfter(); ra > 0 {
		return ra, true
	}
	return 0, false
}

// admitWrite is the fold-triggering write gate: like degraded, but in
// half-open it claims the breaker's single probe-write slot — one write
// per cooldown is admitted (and must fold, so the oracle is actually
// probed) while the rest stay rejected until the probe settles. This is
// how write-only workloads recover: without it no ask is ever issued
// and the breaker can never re-close. Returns (retryAfter, probe,
// admitted).
func (c *collection) admitWrite() (time.Duration, bool, bool) {
	if c.res == nil {
		return 0, false, true
	}
	return c.res.AdmitWrite()
}

// publish rebuilds the snapshot from the sorter. Shard goroutine only.
// The sorter's flat answer is copied with one memmove; classes become
// views into that copy, so publication costs a handful of allocations
// regardless of how many classes the collection has grown.
func (c *collection) publish() {
	elems, offs := c.srt.Flat()
	k := 0
	if len(offs) > 0 {
		k = len(offs) - 1
	}
	backing := make([]int, len(elems))
	copy(backing, elems)
	classes := make([][]int, k)
	for i := 0; i < k; i++ {
		cls := backing[offs[i]:offs[i+1]:offs[i+1]]
		sort.Ints(cls)
		classes[i] = cls
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i][0] < classes[j][0] })
	classOf := make([]int32, c.spec.N())
	for i := range classOf {
		classOf[i] = -1
	}
	for ci, cls := range classes {
		for _, e := range cls {
			classOf[e] = int32(ci)
		}
	}
	c.snap.Store(&Snapshot{
		Version: int64(c.srt.Flushes()),
		Classes: classes,
		Size:    len(backing),
		Stats:   c.srt.Stats(),
		classOf: classOf,
	})
	c.pending.Store(int64(c.srt.Pending()))
	c.flushes.Store(int64(c.srt.Flushes()))
}

func (c *collection) info(withSnapshot bool) CollectionInfo {
	snap := c.snap.Load()
	info := CollectionInfo{
		Key:       c.key,
		Kind:      c.spec.Kind,
		Algorithm: c.algoName,
		Universe:  c.spec.N(),
		Ingested:  c.ingested.Load(),
		Pending:   c.pending.Load(),
		Batches:   c.batches.Load(),
		Flushes:   c.flushes.Load(),
		Classes:   snap.numClasses(),
	}
	info.Deleted = c.deleted.Load()
	info.Invalidated = c.invalidated.Load()
	info.Repaired = c.repaired.Load()
	if c.res != nil {
		info.Breaker = c.res.State().String()
		info.RetryAfterSeconds = c.res.RetryAfter().Seconds()
	}
	if withSnapshot {
		info.Snapshot = snap
	}
	return info
}

// op is one unit of work executed by a shard's writer goroutine.
type op struct {
	fn   func() error
	done chan error
}

// shard owns a disjoint set of collections behind one writer goroutine:
// every mutation of a collection's sorter runs on that goroutine,
// serialized by the ops channel, so sorters need no locks and batches
// from concurrent clients interleave at batch (not element) granularity.
type shard struct {
	ops  chan op
	quit chan struct{}
	// die is the crash-test hatch: closing it makes the goroutine return
	// immediately, skipping the durable shutdown (WAL sync + final
	// checkpoint + segment close) — the in-process equivalent of SIGKILL
	// that the recovery tests are built on. Never closed in production.
	die chan struct{}

	mu   sync.RWMutex // guards cols (lookups come from reader goroutines)
	cols map[string]*collection

	// dirty tracks collections with unflushed pending elements, for the
	// FlushInterval ticker. Shard goroutine only.
	dirty map[*collection]struct{} //ecsort:owned-by-shard

	// dir is the shard's data directory; empty for a memory-only
	// service.
	dir string
	// wal is the shard's append-only log. The single-writer goroutine is
	// the only appender, which is what lets the log skip locking; nil
	// for a memory-only service. Shard goroutine only (recovery runs
	// before the goroutine starts and inherits the same exclusivity).
	wal *wal.Log //ecsort:owned-by-shard
	// gen is the current WAL segment generation, bumped by checkpoints.
	// Shard goroutine only.
	gen uint64 //ecsort:owned-by-shard
}

// Service is the sharded classification engine. Create one with New,
// serve it over HTTP with Handler, and Close it when done.
type Service struct {
	cfg    Config
	shards []*shard
	pool   *rt.Pool // execution pool shared by every collection's session
	start  time.Time

	// ctx is bound to every collection session; Close cancels it so
	// in-flight folds stop between physical rounds instead of holding
	// shutdown hostage to a large batch.
	ctx    context.Context
	cancel context.CancelFunc

	// Batch-fold latency counters: how long Flush+publish takes on the
	// shard goroutines, for the /metrics backpressure gauges.
	folds         atomic.Int64
	foldNanos     atomic.Int64
	lastFoldNanos atomic.Int64

	// Batch-oracle amortization counters, service-wide: batchRounds is
	// whole-chunk SameBatch invocations, batchPairs the pairs they
	// carried; pairs/rounds is the per-invocation amortization the
	// batch path exists for. Fed by the counting wrapper buildSorter
	// installs around batch-capable effective oracles.
	batchRounds atomic.Int64
	batchPairs  atomic.Int64

	// Durability accounting. walCtr is shared by every shard's logs
	// (segment rotation replaces Log values, so counters live here);
	// the checkpoint gauges and the recovery summary feed /metrics and
	// the boot log line.
	walCtr             wal.Counters
	checkpoints        atomic.Int64
	checkpointErrors   atomic.Int64
	lastCheckpointNano atomic.Int64
	walRotations       atomic.Int64 // size-triggered segment rotations
	recovery           RecoveryInfo // written once by Open, read-only after

	// Repair daemon state: the pair sampler built from Config.Repair
	// plus the convergence counters surfaced in /metrics. repairMu
	// serializes sweeps — the background daemon and explicit
	// RepairSweep calls share one seeded rng.
	repairMu           sync.Mutex
	repairRng          *rand.Rand
	sampler            repairSampler
	repairSweeps       atomic.Int64
	repairSamples      atomic.Int64
	repairDivergences  atomic.Int64
	repairCorrections  atomic.Int64
	repairSkipped      atomic.Int64
	repairErrors       atomic.Int64
	lastDivergenceNano atomic.Int64

	closeMu sync.RWMutex // write-held by Close; read-held around ops sends
	closed  bool
	wg      sync.WaitGroup
}

// RecoveryInfo summarizes what Open rebuilt from the data directory.
type RecoveryInfo struct {
	// Durable reports whether the service runs with a data directory.
	Durable bool `json:"durable"`
	// Collections is the number of collections restored from
	// checkpoints (tail-replayed creates are counted in Records).
	Collections int `json:"collections"`
	// Records is the number of WAL records replayed after checkpoints.
	Records int `json:"records"`
	// Segments is the number of WAL segment files visited.
	Segments int `json:"segments"`
	// TornTails counts segments whose final record was cut short by a
	// crash and truncated away.
	TornTails int `json:"torn_tails"`
	// Duration is the wall time recovery took.
	Duration time.Duration `json:"duration"`
}

// Recovery returns what Open rebuilt from Config.DataDir; the zero value
// with Durable false for a memory-only service.
func (s *Service) Recovery() RecoveryInfo { return s.recovery }

// New starts a service with cfg.shards() writer goroutines. A negative
// Workers is a caller bug and panics with model.ErrBadWorkers, matching
// the model layer's loud-failure policy for bad widths. New panics if
// durable recovery fails — a memory-only config (no DataDir) cannot
// fail; durable callers should prefer Open, which reports recovery
// errors instead.
func New(cfg Config) *Service {
	s, err := Open(cfg)
	if err != nil {
		panic(fmt.Errorf("service: New with durable config: %w (use Open to handle recovery errors)", err))
	}
	return s
}

// Open starts a service, recovering durable state first when
// Config.DataDir is set: each shard loads its latest checkpoint, replays
// the WAL tail behind it (truncating a torn final record), and resumes
// appending to the surviving segment. Recovery failures — a corrupted
// record in the middle of the history, a shard-count mismatch with the
// data directory — are returned, not papered over. The rebuilt
// collections are bit-identical (classes and stats) to the pre-crash
// state implied by the durable log. See Recovery for what was rebuilt.
func Open(cfg Config) (*Service, error) {
	if cfg.Workers < 0 {
		panic(fmt.Errorf("%w: service Workers(%d); use 0 for the GOMAXPROCS default", model.ErrBadWorkers, cfg.Workers))
	}
	if cfg.DataDir != "" {
		if _, err := wal.ParsePolicy(cfg.Fsync); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
	}
	s := &Service{cfg: cfg, pool: rt.NewPool(cfg.Workers), start: time.Now()}
	smp, err := newRepairSampler(cfg.Repair)
	if err != nil {
		s.pool.Close()
		return nil, err
	}
	s.sampler = smp
	s.repairRng = rand.New(rand.NewSource(cfg.Repair.Seed))
	//ecsort:ignore ctxflow service lifetime root: Close cancels it; per-request contexts layer on top
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.shards = make([]*shard, cfg.shards())
	for i := range s.shards {
		sh := &shard{
			ops:  make(chan op, 64),
			quit: make(chan struct{}),
			die:  make(chan struct{}),
			cols: make(map[string]*collection),
			//ecsort:ignore shardown constructed before the shard goroutine starts; the go statement publishes it
			dirty: make(map[*collection]struct{}),
		}
		if cfg.DataDir != "" {
			sh.dir = filepath.Join(cfg.DataDir, fmt.Sprintf("shard-%d", i))
		}
		s.shards[i] = sh
	}
	if cfg.DataDir != "" {
		if err := s.recoverAll(); err != nil {
			s.cancel()
			s.pool.Close()
			return nil, err
		}
	}
	for _, sh := range s.shards {
		s.wg.Add(1)
		go s.runShard(sh)
	}
	if cfg.Repair.Interval > 0 {
		s.wg.Add(1)
		go s.repairLoop()
	}
	return s, nil
}

// walOptions assembles the per-shard log options from the config, with
// the service-wide counters attached.
func (s *Service) walOptions() wal.Options {
	policy, _ := wal.ParsePolicy(s.cfg.Fsync) // validated by Open
	return wal.Options{Policy: policy, Interval: s.cfg.FsyncInterval, Counters: &s.walCtr}
}

// runShard is the single-writer loop of one shard.
//
//ecsort:shard-goroutine
func (s *Service) runShard(sh *shard) {
	defer s.wg.Done()
	var tick <-chan time.Time
	if s.cfg.FlushInterval > 0 {
		t := time.NewTicker(s.cfg.FlushInterval)
		defer t.Stop()
		tick = t.C
	}
	var ckpt <-chan time.Time
	if s.cfg.CheckpointInterval > 0 && sh.wal != nil {
		t := time.NewTicker(s.cfg.CheckpointInterval)
		defer t.Stop()
		ckpt = t.C
	}
	for {
		select {
		case o := <-sh.ops:
			o.done <- o.fn()
			s.maybeRotate(sh)
		case <-tick:
			for c := range sh.dirty {
				if err := s.fold(sh, c); err != nil {
					// An oracle/session failure here has no caller to
					// report to; leave the collection dirty and let the
					// next synchronous op surface the error.
					continue
				}
				delete(sh.dirty, c)
			}
			if sh.wal != nil {
				// Ticker folds appended flush records with no operation
				// boundary of their own; commit applies the fsync policy.
				sh.wal.Commit()
			}
			s.maybeRotate(sh)
		case <-sh.die:
			// Crash simulation: exit with the WAL unsynced and unclosed.
			return
		case <-ckpt:
			if err := s.checkpointShard(sh); err != nil {
				// Nowhere to report to synchronously; surface through the
				// error counter (and /metrics) and retry next tick.
				s.checkpointErrors.Add(1)
			}
		case <-sh.quit:
			// Reject anything that raced past the closed check.
			for {
				select {
				case o := <-sh.ops:
					o.done <- ErrClosed
				default:
					if sh.wal != nil {
						// Shutdown ordering: sync first so every acked
						// operation is durable even if the checkpoint
						// fails, then checkpoint so the next boot is
						// snapshot-only, then close the segment.
						sh.wal.Sync()
						if err := s.checkpointShard(sh); err != nil {
							s.checkpointErrors.Add(1)
						}
						sh.wal.Close()
					}
					return
				}
			}
		}
	}
}

// fold flushes c's pending buffer into its answer, publishes the new
// snapshot, and appends the fold-boundary record to the shard's WAL, so
// replay re-folds at exactly the same points (the determinism anchor).
// Batch-fold latency feeds the /metrics backpressure gauges. Shard
// goroutine only.
//
//ecsort:shard-goroutine
func (s *Service) fold(sh *shard, c *collection) error {
	start := time.Now()
	if c.res != nil {
		// Bind the fold to a cancelable context and register it with the
		// breaker: the moment the oracle trips, the fold aborts between
		// physical rounds instead of grinding through the dead oracle's
		// remaining comparisons (each burning its full timeout+retry
		// budget). The pending buffer survives the abort for retry.
		fctx, cancel := context.WithCancel(s.ctx)
		c.res.OnTrip(func(error) { cancel() })
		c.srt.SetContext(fctx)
		// The middleware's own asks follow the same fold lifetime: a trip
		// interrupts in-flight backoffs and timeouts immediately instead
		// of letting them run against the service root context.
		c.res.BindContext(fctx)
		defer func() {
			c.res.OnTrip(nil)
			cancel()
			c.srt.SetContext(s.ctx)
			c.res.BindContext(nil)
		}()
	}
	if err := c.srt.Flush(); err != nil {
		if ra, bad := c.degraded(); bad {
			// The fold died because the breaker tripped mid-flush; report
			// the degradation (503 + Retry-After upstream) rather than the
			// bare cancellation.
			return &DegradedError{Key: c.key, RetryAfter: ra}
		}
		return err
	}
	c.publish()
	d := time.Since(start).Nanoseconds()
	s.folds.Add(1)
	s.foldNanos.Add(d)
	s.lastFoldNanos.Store(d)
	if sh.wal != nil {
		// An append failure after a successful in-memory fold means the
		// fold boundary may not survive a crash — replay would leave the
		// batch pending instead, which is consistent but not what the
		// caller observed. Surface the disk error loudly.
		if err := sh.wal.AppendFlush(c.key); err != nil {
			return err
		}
	}
	return nil
}

// maybeRotate rolls the shard's WAL to a fresh segment once the current
// one exceeds Config.MaxSegmentBytes. Unlike a checkpoint rotation, no
// snapshot is taken — recovery replays the whole segment chain in
// generation order — so this only bounds individual file size. Runs
// between operations, never inside one, so every record of an accepted
// operation lands in a single segment. Shard goroutine only.
//
//ecsort:shard-goroutine
func (s *Service) maybeRotate(sh *shard) {
	if sh.wal == nil || s.cfg.MaxSegmentBytes <= 0 || sh.wal.Size() < s.cfg.MaxSegmentBytes {
		return
	}
	next, err := wal.Create(sh.dir, sh.gen+1, s.walOptions())
	if err != nil {
		// Keep appending to the oversized segment; the next boundary
		// retries. Rotation is an optimization, not a correctness step.
		return
	}
	old := sh.wal
	sh.wal = next
	sh.gen++
	// Close syncs the retired segment, so everything committed to it is
	// durable before appends move on.
	old.Close()
	s.walRotations.Add(1)
}

// RuntimeStats reports the shared execution pool's counters (parallel
// width, jobs, chunks, inline rounds) — surfaced in /metrics.
func (s *Service) RuntimeStats() rt.Stats { return s.pool.Stats() }

// do runs fn on the shard's writer goroutine and waits for it.
//
//ecsort:shard-dispatch
func (s *Service) do(sh *shard, fn func() error) error {
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return ErrClosed
	}
	o := op{fn: fn, done: make(chan error, 1)}
	sh.ops <- o
	s.closeMu.RUnlock()
	return <-o.done
}

// Checkpoint forces an immediate checkpoint on every shard: each
// serializes its collections' flat answers to its snapshot file and
// truncates the WAL behind it. A no-op without a data directory. The
// first shard error is returned; remaining shards still checkpoint.
func (s *Service) Checkpoint() error {
	if s.cfg.DataDir == "" {
		return nil
	}
	var first error
	for _, sh := range s.shards {
		sh := sh
		if err := s.do(sh, func() error { return s.checkpointShard(sh) }); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close stops all shard goroutines. The service context is cancelled
// first, so a fold in flight stops at its next physical round (its
// collection keeps the pending buffer and stays consistent); operations
// still queued (and all subsequent calls) may be rejected with
// ErrClosed or the cancellation error. With durability on, each shard
// then syncs its WAL (every acked operation reaches disk), writes a
// final checkpoint (the next boot recovers from the snapshot alone), and
// closes its segment.
func (s *Service) Close() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	s.cancel()
	for _, sh := range s.shards {
		close(sh.quit)
	}
	s.closeMu.Unlock()
	s.wg.Wait()
	// All shard goroutines have exited, so no session can still be
	// submitting rounds — safe to stop the pool's workers.
	s.pool.Close()
}

// shardOf hashes a collection key onto its shard. The modulo happens in
// uint32 space: converting the hash to int first would go negative for
// half of all keys on 32-bit platforms.
func (s *Service) shardOf(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return s.shards[int(h.Sum32()%uint32(len(s.shards)))]
}

// lookup finds an existing collection.
func (sh *shard) lookup(key string) (*collection, error) {
	sh.mu.RLock()
	c, ok := sh.cols[key]
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return c, nil
}

// CreateCollection registers key with the given oracle spec. The oracle
// and the sorting regimen are built eagerly so spec errors surface
// here, not during ingestion. The spec's Algorithm field selects the
// regimen: the default incremental engine, or any registry regimen
// re-sorting the ingested sub-universe per flush.
func (s *Service) CreateCollection(key string, spec OracleSpec) error {
	if key == "" {
		return fmt.Errorf("%w: empty collection key", ErrBadSpec)
	}
	eng, err := s.buildSorter(spec)
	if err != nil {
		return err
	}
	var specJSON []byte
	if s.cfg.DataDir != "" {
		// Only durable creates pay for the spec encoding (the create
		// record's payload and the checkpoint's rebuild recipe).
		if specJSON, err = json.Marshal(spec); err != nil {
			return fmt.Errorf("%w: unencodable spec: %v", ErrBadSpec, err)
		}
	}
	sh := s.shardOf(key)
	return s.do(sh, func() error {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if _, ok := sh.cols[key]; ok {
			return fmt.Errorf("%w: %q", ErrExists, key)
		}
		if sh.wal != nil {
			if err := sh.wal.AppendCreate(key, specJSON); err != nil {
				return err
			}
			if err := sh.wal.Commit(); err != nil {
				return err
			}
		}
		c := newCollection(key, spec, eng)
		c.snap.Store(&Snapshot{Classes: [][]int{}})
		sh.cols[key] = c
		return nil
	})
}

// DropCollection removes key and its state. With durability on, the
// drop is logged before it takes effect, so a recovered service stays
// dropped.
func (s *Service) DropCollection(key string) error {
	sh := s.shardOf(key)
	return s.do(sh, func() error {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		c, ok := sh.cols[key]
		if !ok {
			return fmt.Errorf("%w: %q", ErrNotFound, key)
		}
		if sh.wal != nil {
			if err := sh.wal.AppendDrop(key); err != nil {
				return err
			}
			if err := sh.wal.Commit(); err != nil {
				return err
			}
		}
		delete(sh.cols, key)
		delete(sh.dirty, c)
		return nil
	})
}

// UpdateResilience replaces key's resilience profile in place — a live
// retune of votes, timeouts, and breaker settings without recreating
// the collection (the profile is otherwise frozen at create time). Only
// collections built with the middleware (a faults or resilience profile
// in their spec) can be retuned: the middleware cannot be retrofitted
// onto a bare oracle, so others reject with ErrBadSpec. The update is
// WAL-logged before it applies and the checkpointed spec carries it, so
// a recovered collection runs with the profile the operator last set.
// Breaker position and failure history survive the update.
func (s *Service) UpdateResilience(key string, rs ResilienceSpec) error {
	if err := rs.validate(); err != nil {
		return err
	}
	sh := s.shardOf(key)
	c, err := sh.lookup(key)
	if err != nil {
		return err
	}
	var specJSON []byte
	if s.cfg.DataDir != "" {
		if specJSON, err = json.Marshal(&rs); err != nil {
			return fmt.Errorf("%w: unencodable resilience spec: %v", ErrBadSpec, err)
		}
	}
	return s.do(sh, func() error {
		if cur, lookupErr := sh.lookup(key); lookupErr != nil {
			return lookupErr
		} else if cur != c {
			return fmt.Errorf("%w: %q was recreated mid-update", ErrNotFound, key)
		}
		if c.res == nil {
			return fmt.Errorf("%w: %q has no resilience middleware to retune (create it with a resilience or faults profile)", ErrBadSpec, key)
		}
		if sh.wal != nil {
			if err := sh.wal.AppendResilience(key, specJSON); err != nil {
				return err
			}
			if err := sh.wal.Commit(); err != nil {
				return err
			}
		}
		return s.applyResilience(c, rs)
	})
}

// Ingest buffers a batch of element ids into key's collection and flushes
// per the batching policy (always when forceFlush is set, when the
// pending buffer reaches Config.BatchSize, or — with BatchSize 0 — at the
// end of every call). The batch is atomic: if any item is out of range or
// already present, nothing is added and ErrBadItem is returned.
func (s *Service) Ingest(key string, items []int, forceFlush bool) (IngestResult, error) {
	sh := s.shardOf(key)
	c, err := sh.lookup(key)
	if err != nil {
		return IngestResult{}, err
	}
	var res IngestResult
	err = s.do(sh, func() error {
		// Revalidate on the writer goroutine: a concurrent drop (or
		// drop-and-recreate) between lookup and execution must not let
		// writes land on an orphaned sorter and report success.
		if cur, lookupErr := sh.lookup(key); lookupErr != nil {
			return lookupErr
		} else if cur != c {
			return fmt.Errorf("%w: %q was recreated mid-ingest", ErrNotFound, key)
		}
		ra, probe, admitted := c.admitWrite()
		if !admitted {
			// Read-only mode: accepting the batch would either wedge on
			// the dead oracle at fold time or silently defer work the
			// client believes accepted. Reject with the cooldown.
			return &DegradedError{Key: key, RetryAfter: ra}
		}
		n := c.spec.N()
		if err := validateBatch(items, n, c.srt); err != nil {
			return err
		}
		if sh.wal != nil {
			// Write-ahead: the accepted batch is logged before any sorter
			// mutation, so an append failure rejects the batch with the
			// collection untouched, and a crash after this point replays
			// the batch on boot.
			if err := sh.wal.AppendBatch(key, items); err != nil {
				return err
			}
		}
		for _, e := range items {
			if err := c.srt.Add(e); err != nil {
				// Unreachable after pre-validation; Add only rejects
				// out-of-range and duplicate elements.
				return err
			}
		}
		c.ingested.Add(int64(len(items)))
		c.batches.Add(1)
		res.Accepted = len(items)
		// A probe write must fold now: buffering it would claim the
		// half-open slot without ever asking the oracle, and nothing
		// would learn whether the backend healed.
		flush := forceFlush || probe || s.cfg.BatchSize <= 0 || c.srt.Pending() >= s.cfg.BatchSize
		if flush && c.srt.Pending() > 0 {
			if err := s.fold(sh, c); err != nil {
				// A failed fold is live now that batch regimens can fail
				// (const-round λ overestimates, Close cancellation). The
				// accepted items stay buffered; keep the pending gauge
				// truthful and the collection dirty so the interval
				// flusher retries and staleness stays bounded. The batch
				// record is already in the WAL, so the buffered items
				// survive a crash too.
				c.pending.Store(int64(c.srt.Pending()))
				sh.dirty[c] = struct{}{}
				if sh.wal != nil {
					sh.wal.Commit()
				}
				return err
			}
			delete(sh.dirty, c)
			res.Flushed = true
		} else if c.srt.Pending() > 0 {
			c.pending.Store(int64(c.srt.Pending()))
			sh.dirty[c] = struct{}{}
		}
		if sh.wal != nil {
			// One commit per accepted operation: under fsync "always" the
			// batch and its fold boundary reach disk in a single flush
			// before the client sees the ack.
			if err := sh.wal.Commit(); err != nil {
				return err
			}
		}
		res.Pending = c.srt.Pending()
		res.Version = c.snap.Load().Version
		return nil
	})
	if err != nil {
		return IngestResult{}, err
	}
	return res, nil
}

// Flush folds key's pending buffer immediately and publishes a fresh
// snapshot.
func (s *Service) Flush(key string) (*Snapshot, error) {
	sh := s.shardOf(key)
	c, err := sh.lookup(key)
	if err != nil {
		return nil, err
	}
	var snap *Snapshot
	err = s.do(sh, func() error {
		if cur, lookupErr := sh.lookup(key); lookupErr != nil {
			return lookupErr
		} else if cur != c {
			return fmt.Errorf("%w: %q was recreated mid-flush", ErrNotFound, key)
		}
		if ra, _, admitted := c.admitWrite(); !admitted {
			return &DegradedError{Key: key, RetryAfter: ra}
		}
		if c.srt.Pending() == 0 {
			// Nothing buffered: the published snapshot is already
			// current, so skip the O(n) rebuild a republish would cost.
			snap = c.snap.Load()
			return nil
		}
		if err := s.fold(sh, c); err != nil {
			// Same bookkeeping as the Ingest fold path: buffered items
			// survive, so the gauge and the dirty set must say so.
			c.pending.Store(int64(c.srt.Pending()))
			sh.dirty[c] = struct{}{}
			return err
		}
		delete(sh.dirty, c)
		if sh.wal != nil {
			if err := sh.wal.Commit(); err != nil {
				return err
			}
		}
		snap = c.snap.Load()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return snap, nil
}

// ChurnResult summarizes one delete or invalidate operation.
type ChurnResult struct {
	// Element is the element deleted, or the withdrawn class's
	// representative (its smallest member) for an invalidation.
	Element int `json:"element"`
	// Requeued counts members returned to the pending buffer for
	// re-verification (invalidate only).
	Requeued int `json:"requeued,omitempty"`
	// Pending is the collection's buffer size after the call.
	Pending int `json:"pending"`
	// Version is the published snapshot version after the call.
	Version int64 `json:"version"`
}

// DeleteItem removes element from key's collection — from the pending
// buffer or from its merged class (which disappears if emptied). The
// removal is WAL-logged before it mutates, and the snapshot republishes
// immediately (same version: the fold count is unchanged). The element
// can be re-ingested later. Deletes are rejected while the collection
// is degraded.
func (s *Service) DeleteItem(key string, element int) (ChurnResult, error) {
	sh := s.shardOf(key)
	c, err := sh.lookup(key)
	if err != nil {
		return ChurnResult{}, err
	}
	if n := c.spec.N(); element < 0 || element >= n {
		return ChurnResult{}, fmt.Errorf("%w: element %d out of range [0,%d)", ErrBadItem, element, n)
	}
	var res ChurnResult
	err = s.do(sh, func() error {
		if cur, lookupErr := sh.lookup(key); lookupErr != nil {
			return lookupErr
		} else if cur != c {
			return fmt.Errorf("%w: %q was recreated mid-delete", ErrNotFound, key)
		}
		if ra, bad := c.degraded(); bad {
			return &DegradedError{Key: key, RetryAfter: ra}
		}
		if !c.srt.Has(element) {
			return fmt.Errorf("%w: element %d not in %q", ErrNotFound, element, key)
		}
		if sh.wal != nil {
			// Write-ahead, same discipline as Ingest: an append failure
			// rejects the delete with the collection untouched.
			if err := sh.wal.AppendDelete(key, element); err != nil {
				return err
			}
		}
		if err := c.srt.Delete(element); err != nil {
			// Unreachable after the Has check; Delete only rejects
			// elements that are not added.
			return err
		}
		c.deleted.Add(1)
		c.publish()
		if c.srt.Pending() == 0 {
			delete(sh.dirty, c)
		}
		if sh.wal != nil {
			if err := sh.wal.Commit(); err != nil {
				return err
			}
		}
		res = ChurnResult{Element: element, Pending: c.srt.Pending(), Version: c.snap.Load().Version}
		return nil
	})
	if err != nil {
		return ChurnResult{}, err
	}
	return res, nil
}

// InvalidateClass withdraws class classIndex (an index into the
// published snapshot's Classes) from key's collection: its members
// leave the answer and re-enter the pending buffer, so the next fold
// re-verifies them against the oracle from scratch — the client-facing
// repair primitive for answers suspected stale or wrong. The withdrawal
// is WAL-logged keyed by the class's smallest member (class indexes are
// not replay-stable; element identity is). With foldNow set the
// re-verification happens before the call returns; otherwise the
// members wait for the next batch or interval fold. Rejected while the
// collection is degraded.
func (s *Service) InvalidateClass(key string, classIndex int, foldNow bool) (ChurnResult, error) {
	sh := s.shardOf(key)
	c, err := sh.lookup(key)
	if err != nil {
		return ChurnResult{}, err
	}
	var res ChurnResult
	err = s.do(sh, func() error {
		if cur, lookupErr := sh.lookup(key); lookupErr != nil {
			return lookupErr
		} else if cur != c {
			return fmt.Errorf("%w: %q was recreated mid-invalidate", ErrNotFound, key)
		}
		if ra, bad := c.degraded(); bad {
			return &DegradedError{Key: key, RetryAfter: ra}
		}
		// Resolve the class on the writer goroutine, where the snapshot
		// is exactly in sync with the merged answer (every mutation
		// republishes before the next op runs).
		snap := c.snap.Load()
		if classIndex < 0 || classIndex >= len(snap.Classes) {
			return fmt.Errorf("%w: class %d not in %q (snapshot has %d classes)",
				ErrNotFound, classIndex, key, len(snap.Classes))
		}
		rep := snap.Classes[classIndex][0]
		if sh.wal != nil {
			if err := sh.wal.AppendInvalidate(key, rep); err != nil {
				return err
			}
		}
		n, err := c.srt.Invalidate(rep)
		if err != nil {
			// Unreachable: a snapshot class member is merged by
			// construction.
			return err
		}
		c.invalidated.Add(1)
		c.publish()
		sh.dirty[c] = struct{}{}
		if foldNow {
			if err := s.fold(sh, c); err != nil {
				// The members stay pending; the interval flusher retries.
				c.pending.Store(int64(c.srt.Pending()))
				if sh.wal != nil {
					sh.wal.Commit()
				}
				return err
			}
			delete(sh.dirty, c)
		}
		if sh.wal != nil {
			if err := sh.wal.Commit(); err != nil {
				return err
			}
		}
		res = ChurnResult{Element: rep, Requeued: n, Pending: c.srt.Pending(), Version: c.snap.Load().Version}
		return nil
	})
	if err != nil {
		return ChurnResult{}, err
	}
	return res, nil
}

// Classes returns key's answer. With fresh=false it is the published
// snapshot — a lock-free atomic load that never waits on the writer.
// With fresh=true the call routes through the shard goroutine, flushing
// pending elements first, so it reflects every ingest accepted before
// it — unless the collection is degraded, in which case the last
// published snapshot serves instead: reads stay available while the
// oracle is down.
func (s *Service) Classes(key string, fresh bool) (*Snapshot, error) {
	if fresh {
		snap, err := s.Flush(key)
		if err == nil || !errors.Is(err, ErrDegraded) {
			return snap, err
		}
		// Degraded: fall through to the stale snapshot.
	}
	sh := s.shardOf(key)
	c, err := sh.lookup(key)
	if err != nil {
		return nil, err
	}
	return c.snap.Load(), nil
}

// CollectionStats returns key's counters plus its current snapshot.
func (s *Service) CollectionStats(key string) (CollectionInfo, error) {
	sh := s.shardOf(key)
	c, err := sh.lookup(key)
	if err != nil {
		return CollectionInfo{}, err
	}
	return c.info(true), nil
}

// Collections lists every collection's counters (no snapshots), sorted
// by key.
func (s *Service) Collections() []CollectionInfo {
	var out []CollectionInfo
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, c := range sh.cols {
			out = append(out, c.info(false))
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// ClassOf returns element's class in key's collection — an O(1) lookup
// against the published snapshot's element→class index, never touching
// the writer goroutine. With fresh=true the collection flushes first, so
// the answer reflects every ingest accepted before the call. It returns
// ErrBadItem for elements outside the collection's universe and
// ErrNotFound for elements with no flushed class yet (never ingested, or
// still pending).
func (s *Service) ClassOf(key string, element int, fresh bool) (ClassView, error) {
	sh := s.shardOf(key)
	c, err := sh.lookup(key)
	if err != nil {
		return ClassView{}, err
	}
	if n := c.spec.N(); element < 0 || element >= n {
		return ClassView{}, fmt.Errorf("%w: element %d out of range [0,%d)", ErrBadItem, element, n)
	}
	snap := c.snap.Load()
	if fresh {
		fs, err := s.Flush(key)
		if err == nil {
			snap = fs
		} else if !errors.Is(err, ErrDegraded) {
			return ClassView{}, err
		}
		// Degraded: serve the point lookup from the stale snapshot.
	}
	ci := snap.ClassIndexOf(element)
	if ci < 0 {
		return ClassView{}, fmt.Errorf("%w: element %d has no flushed class in %q", ErrNotFound, element, key)
	}
	return ClassView{
		Element:    element,
		ClassIndex: ci,
		Members:    snap.Classes[ci],
		Version:    snap.Version,
	}, nil
}

// Uptime reports how long the service has been running.
func (s *Service) Uptime() time.Duration { return time.Since(s.start) }
