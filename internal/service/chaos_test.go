package service

import (
	"os"
	"testing"
	"time"
)

// TestRunStressChaosSmoke always runs: a small faulted, churned stress
// drive whose final partitions must converge to ground truth within the
// repair budget. No fail rate is injected so the run pays no retry
// backoff, and the vote count keeps the residual wrong-verdict rate
// far below one error per corrective fold (see docs/REPAIR.md: a
// correction re-folds O(class²) comparisons, each a fresh chance to go
// wrong, so convergence needs residual-error × fold-size ≪ 1).
func TestRunStressChaosSmoke(t *testing.T) {
	rep, err := RunStress(StressConfig{
		Collections: 2, Elements: 48, Classes: 4, Batch: 12, Writers: 2, Seed: 17,
		Faults:         &FaultSpec{FlipRate: 0.04},
		Resilience:     &ResilienceSpec{Votes: 5, BreakerThreshold: 1000},
		DeleteFraction: 0.25, InvalidateFraction: 0.1, RepairSweeps: 40,
		Service: Config{Shards: 2, Workers: 1, BatchSize: 12, Repair: RepairConfig{Samples: 64, Seed: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatalf("chaos smoke did not converge: %+v", rep)
	}
	if rep.Deletes == 0 {
		t.Error("chaos smoke exercised no deletes")
	}
}

// TestChaosSoak is the CI chaos job, gated behind ECSORT_CHAOS=1: a
// larger soak with injected failures, flips, latency-free retries, and
// heavy churn, required to converge with no wedged shards.
func TestChaosSoak(t *testing.T) {
	if os.Getenv("ECSORT_CHAOS") == "" {
		t.Skip("set ECSORT_CHAOS=1 to run the chaos soak")
	}
	start := time.Now()
	rep, err := RunStress(StressConfig{
		Collections: 6, Elements: 192, Classes: 16, Batch: 24, Writers: 4, Seed: 23,
		Faults:         &FaultSpec{FailRate: 0.05, FlipRate: 0.05},
		Resilience:     &ResilienceSpec{Votes: 7, Retries: 3, BackoffMs: 1, MaxBackoffMs: 1, BreakerThreshold: 10_000},
		DeleteFraction: 0.3, InvalidateFraction: 0.1, RepairSweeps: 80,
		Service: Config{Shards: 4, Workers: 2, BatchSize: 24, Repair: RepairConfig{Samples: 192, Seed: 29}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak: %v elapsed, %d deletes, %d invalidates, %d sweeps, %d divergences, %d corrections (wall %v)",
		rep.Elapsed.Round(time.Millisecond), rep.Deletes, rep.Invalidates,
		rep.RepairSweepsRun, rep.Divergences, rep.Corrections, time.Since(start).Round(time.Millisecond))
	if !rep.Verified {
		t.Fatalf("chaos soak did not converge: %+v", rep)
	}
	if rep.Elements == 0 || rep.Flushes == 0 {
		t.Fatalf("soak made no progress: %+v", rep)
	}
}
