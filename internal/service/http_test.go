package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ecsort/internal/core"
	"ecsort/internal/model"
	"ecsort/internal/oracle"
)

// call performs one JSON request against the test server and decodes the
// response into out (when non-nil), returning the status code.
func call(t *testing.T, client *http.Client, method, url string, payload, out any) int {
	t.Helper()
	var body io.Reader
	if payload != nil {
		b, err := json.Marshal(payload)
		if err != nil {
			t.Fatal(err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

// TestHTTPIntegration is the acceptance check: the service ingests two
// concurrent batched collections over HTTP, and GET /classes returns the
// same partition a batch SortCR run produces on the union of the
// inserted elements.
func TestHTTPIntegration(t *testing.T) {
	svc := New(Config{Shards: 4, BatchSize: 10})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	const n = 120
	rng := rand.New(rand.NewSource(7))
	truthA := oracle.RandomBalanced(n, 5, rng)
	statesB := make([]uint64, n)
	for i := range statesB {
		statesB[i] = uint64(rng.Intn(6))
	}
	truthB := oracle.NewFault(statesB)

	if code := call(t, client, "PUT", ts.URL+"/v1/collections/alpha",
		OracleSpec{Kind: KindLabel, Labels: truthA.Labels()}, nil); code != http.StatusCreated {
		t.Fatalf("create alpha: %d", code)
	}
	if code := call(t, client, "PUT", ts.URL+"/v1/collections/beta",
		OracleSpec{Kind: KindFault, States: statesB}, nil); code != http.StatusCreated {
		t.Fatalf("create beta: %d", code)
	}

	// Two clients ingest both collections concurrently, in batches of 7.
	var wg sync.WaitGroup
	for ci, key := range []string{"alpha", "beta"} {
		wg.Add(1)
		go func(ci int, key string) {
			defer wg.Done()
			order := rand.New(rand.NewSource(int64(ci))).Perm(n)
			for lo := 0; lo < n; lo += 7 {
				hi := min(lo+7, n)
				var res IngestResult
				code := call(t, client, "POST", ts.URL+"/v1/collections/"+key+"/items",
					map[string][]int{"items": order[lo:hi]}, &res)
				if code != http.StatusAccepted || res.Accepted != hi-lo {
					t.Errorf("%s batch [%d,%d): code %d, res %+v", key, lo, hi, code, res)
					return
				}
			}
		}(ci, key)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for key, truth := range map[string]model.Oracle{"alpha": truthA, "beta": truthB} {
		var snap Snapshot
		if code := call(t, client, "GET", ts.URL+"/v1/collections/"+key+"/classes?fresh=1", nil, &snap); code != http.StatusOK {
			t.Fatalf("classes %s: %d", key, code)
		}
		if snap.Size != n {
			t.Fatalf("%s: snapshot covers %d of %d elements", key, snap.Size, n)
		}
		batch, err := core.SortCR(model.NewSession(truth, model.CR), 8)
		if err != nil {
			t.Fatal(err)
		}
		got := core.Result{Classes: snap.Classes}
		if !core.SameClassification(got.Labels(n), batch.Labels(n)) {
			t.Fatalf("%s: HTTP partition differs from batch SortCR", key)
		}
	}

	// Stats and metrics reflect the ingestion.
	var info CollectionInfo
	if code := call(t, client, "GET", ts.URL+"/v1/collections/alpha/stats", nil, &info); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if info.Ingested != n || info.Pending != 0 || info.Classes != 5 {
		t.Fatalf("alpha info = %+v", info)
	}
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"ecsort_collections 2",
		fmt.Sprintf("ecsort_elements_ingested_total %d", 2*n),
		`ecsort_collection_classes{collection="alpha"} 5`,
		`ecsort_collection_comparisons_total{collection="beta"}`,
		`ecsort_collection_max_round_size{collection="alpha"}`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

func TestHTTPStatusCodes(t *testing.T) {
	svc := New(Config{Shards: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	spec := OracleSpec{Kind: KindLabel, Labels: []int{0, 1}}
	if code := call(t, client, "PUT", ts.URL+"/v1/collections/a", spec, nil); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	if code := call(t, client, "PUT", ts.URL+"/v1/collections/a", spec, nil); code != http.StatusConflict {
		t.Fatalf("duplicate create: %d", code)
	}
	if code := call(t, client, "PUT", ts.URL+"/v1/collections/b",
		OracleSpec{Kind: "bogus", Labels: []int{0}}, nil); code != http.StatusBadRequest {
		t.Fatalf("bogus spec: %d, want 400", code)
	}
	if code := call(t, client, "PUT", ts.URL+"/v1/collections/c",
		OracleSpec{Kind: KindGraphIso, Graphs: []GraphSpec{{N: 2, Edges: [][2]int{{0, 5}}}}}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad graph spec: %d, want 400", code)
	}
	if code := call(t, client, "POST", ts.URL+"/v1/collections/missing/items",
		map[string][]int{"items": {0}}, nil); code != http.StatusNotFound {
		t.Fatalf("ingest missing: %d", code)
	}
	if code := call(t, client, "POST", ts.URL+"/v1/collections/a/items",
		map[string][]int{"items": {0, 7}}, nil); code != http.StatusBadRequest {
		t.Fatalf("out-of-range item: %d", code)
	}
	if code := call(t, client, "POST", ts.URL+"/v1/collections/a/items",
		map[string]string{"wrong": "shape"}, nil); code != http.StatusBadRequest {
		t.Fatalf("malformed body: %d", code)
	}
	if code := call(t, client, "GET", ts.URL+"/v1/collections/missing/classes", nil, nil); code != http.StatusNotFound {
		t.Fatalf("classes missing: %d", code)
	}
	if code := call(t, client, "DELETE", ts.URL+"/v1/collections/a", nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	if code := call(t, client, "DELETE", ts.URL+"/v1/collections/a", nil, nil); code != http.StatusNotFound {
		t.Fatalf("double delete: %d", code)
	}

	var health map[string]any
	if code := call(t, client, "GET", ts.URL+"/healthz", nil, &health); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if health["status"] != "ok" {
		t.Fatalf("health = %v", health)
	}
}

// TestHTTPClassOf exercises the point-lookup endpoint: O(1) class-of
// queries served from the snapshot's element→class index, with fresh and
// stale reads, and the 400/404 edges.
func TestHTTPClassOf(t *testing.T) {
	svc := New(Config{Shards: 2, BatchSize: 100})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	labels := []int{0, 1, 0, 2, 1, 0}
	if code := call(t, client, "PUT", ts.URL+"/v1/collections/a",
		OracleSpec{Kind: KindLabel, Labels: labels}, nil); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	if code := call(t, client, "POST", ts.URL+"/v1/collections/a/items?flush=1",
		map[string][]int{"items": {0, 1, 2, 3}}, nil); code != http.StatusAccepted {
		t.Fatalf("ingest: %d", code)
	}

	var view ClassView
	if code := call(t, client, "GET", ts.URL+"/v1/collections/a/classes/2", nil, &view); code != http.StatusOK {
		t.Fatalf("class of 2: %d", code)
	}
	if view.Element != 2 || len(view.Members) != 2 || view.Members[0] != 0 || view.Members[1] != 2 {
		t.Fatalf("class of 2 = %+v", view)
	}
	// Classes are ordered by smallest member, so {0,2} is class 0.
	if view.ClassIndex != 0 || view.Version != 1 {
		t.Fatalf("class of 2 = %+v", view)
	}

	// Element 4 is pending (BatchSize not reached): stale read 404s,
	// fresh read flushes and finds it.
	if code := call(t, client, "POST", ts.URL+"/v1/collections/a/items",
		map[string][]int{"items": {4}}, nil); code != http.StatusAccepted {
		t.Fatalf("ingest pending: %d", code)
	}
	if code := call(t, client, "GET", ts.URL+"/v1/collections/a/classes/4", nil, nil); code != http.StatusNotFound {
		t.Fatalf("pending stale lookup: %d, want 404", code)
	}
	if code := call(t, client, "GET", ts.URL+"/v1/collections/a/classes/4?fresh=1", nil, &view); code != http.StatusOK {
		t.Fatalf("pending fresh lookup: %d", code)
	}
	if len(view.Members) != 2 || view.Members[0] != 1 || view.Members[1] != 4 {
		t.Fatalf("class of 4 = %+v", view)
	}

	// Never-ingested element in range: 404. Out of universe: 400. Not an
	// integer: 400. Missing collection: 404.
	if code := call(t, client, "GET", ts.URL+"/v1/collections/a/classes/5", nil, nil); code != http.StatusNotFound {
		t.Fatalf("never-ingested lookup: %d, want 404", code)
	}
	if code := call(t, client, "GET", ts.URL+"/v1/collections/a/classes/99", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("out-of-universe lookup: %d, want 400", code)
	}
	if code := call(t, client, "GET", ts.URL+"/v1/collections/a/classes/x", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("non-integer lookup: %d, want 400", code)
	}
	if code := call(t, client, "GET", ts.URL+"/v1/collections/nope/classes/0", nil, nil); code != http.StatusNotFound {
		t.Fatalf("missing collection lookup: %d, want 404", code)
	}
}

// TestHTTPGraphIsoCollection drives the graph-mining application over
// the wire: permuted copies classify together via fresh reads.
func TestHTTPGraphIsoCollection(t *testing.T) {
	svc := New(Config{Shards: 2})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	graphs := []GraphSpec{
		{N: 4, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}}},         // path
		{N: 4, Edges: [][2]int{{3, 2}, {2, 1}, {1, 0}}},         // path, relabeled
		{N: 4, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}}, // cycle
		{N: 4, Edges: [][2]int{{0, 2}, {2, 1}, {1, 3}, {3, 0}}}, // cycle, relabeled
		{N: 4, Edges: [][2]int{{0, 1}, {0, 2}, {0, 3}}},         // star
	}
	if code := call(t, client, "PUT", ts.URL+"/v1/collections/g",
		OracleSpec{Kind: KindGraphIso, Graphs: graphs}, nil); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	if code := call(t, client, "POST", ts.URL+"/v1/collections/g/items",
		map[string][]int{"items": {0, 1, 2, 3, 4}}, nil); code != http.StatusAccepted {
		t.Fatalf("ingest: %d", code)
	}
	var snap Snapshot
	if code := call(t, client, "GET", ts.URL+"/v1/collections/g/classes?fresh=1", nil, &snap); code != http.StatusOK {
		t.Fatalf("classes: %d", code)
	}
	got := core.Result{Classes: snap.Classes}
	want := core.Result{Classes: [][]int{{0, 1}, {2, 3}, {4}}}
	if !core.SameClassification(got.Labels(5), want.Labels(5)) {
		t.Fatalf("graph classes = %v", snap.Classes)
	}
}

// TestHTTPMetricsRuntimeAndBackpressure: /metrics must expose the shared
// execution pool's counters, per-shard op-queue depth, and batch-fold
// latency — the backpressure view of the single-writer shards.
func TestHTTPMetricsRuntimeAndBackpressure(t *testing.T) {
	svc := New(Config{Shards: 2, BatchSize: 4, Workers: 3})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	labels := []int{0, 1, 0, 1, 2, 2, 0, 1}
	if st := call(t, client, http.MethodPut, ts.URL+"/v1/collections/bp",
		OracleSpec{Kind: KindLabel, Labels: labels}, nil); st != http.StatusCreated {
		t.Fatalf("create status %d", st)
	}
	var res IngestResult
	if st := call(t, client, http.MethodPost, ts.URL+"/v1/collections/bp/items?flush=1",
		map[string]any{"items": []int{0, 1, 2, 3, 4, 5, 6, 7}}, &res); st != http.StatusAccepted {
		t.Fatalf("ingest status %d", st)
	}
	if !res.Flushed {
		t.Fatal("forced ingest did not flush")
	}

	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	metrics := string(raw)
	for _, want := range []string{
		"ecsort_runtime_workers 3",
		"ecsort_runtime_jobs_total",
		"ecsort_runtime_chunks_total",
		"ecsort_runtime_inline_rounds_total",
		`ecsort_shard_queue_depth{shard="0"} `,
		`ecsort_shard_queue_depth{shard="1"} `,
		"ecsort_shard_queue_capacity 64",
		"ecsort_fold_total 1",
		"ecsort_fold_duration_seconds_total",
		"ecsort_fold_last_duration_seconds",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
	// The fold-latency counters must have recorded the forced flush.
	if strings.Contains(metrics, "ecsort_fold_duration_seconds_total 0.000000000\n") {
		t.Fatal("fold duration total stayed zero after a forced flush")
	}
	if svc.RuntimeStats().Workers != 3 {
		t.Fatalf("RuntimeStats().Workers = %d, want 3", svc.RuntimeStats().Workers)
	}
}

// TestHTTPAlgorithms: GET /v1/algorithms lists the registry, and a
// collection created with a per-collection regimen over HTTP reports it
// and classifies correctly.
func TestHTTPAlgorithms(t *testing.T) {
	svc := New(Config{Shards: 2})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	var listing struct {
		Default    string `json:"default"`
		Algorithms []struct {
			Name     string   `json:"name"`
			Mode     string   `json:"mode"`
			Hints    []string `json:"hints"`
			Required []string `json:"required"`
			Rounds   string   `json:"rounds"`
		} `json:"algorithms"`
	}
	if code := call(t, client, "GET", ts.URL+"/v1/algorithms", nil, &listing); code != http.StatusOK {
		t.Fatalf("GET /v1/algorithms = %d", code)
	}
	if listing.Default != AlgorithmIncremental {
		t.Errorf("default = %q, want %q", listing.Default, AlgorithmIncremental)
	}
	byName := map[string]bool{}
	for _, a := range listing.Algorithms {
		byName[a.Name] = true
		if a.Mode == "" || a.Rounds == "" {
			t.Errorf("%s: incomplete listing %+v", a.Name, a)
		}
	}
	for _, want := range []string{"cr", "cr-unknown-k", "er", "const-round-er", "const-round-er-adaptive", "two-class-er", "round-robin", "naive", "auto"} {
		if !byName[want] {
			t.Errorf("registry listing missing %q", want)
		}
	}
	for _, a := range listing.Algorithms {
		if a.Name == "cr" && (len(a.Required) != 1 || a.Required[0] != "k") {
			t.Errorf("cr required hints = %v, want [k]", a.Required)
		}
		if a.Name == "const-round-er" && (len(a.Required) != 1 || a.Required[0] != "lambda") {
			t.Errorf("const-round-er required hints = %v, want [lambda]", a.Required)
		}
	}

	// Create an ER-regimen collection through the PUT body and use it.
	labels := []int{0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2}
	var created struct {
		Algorithm string `json:"algorithm"`
	}
	code := call(t, client, "PUT", ts.URL+"/v1/collections/hats",
		OracleSpec{Kind: KindLabel, Labels: labels, Algorithm: "er"}, &created)
	if code != http.StatusCreated {
		t.Fatalf("PUT = %d", code)
	}
	if created.Algorithm != "er" {
		t.Errorf("created algorithm = %q", created.Algorithm)
	}
	items := map[string][]int{"items": seq(0, len(labels))}
	if code := call(t, client, "POST", ts.URL+"/v1/collections/hats/items?flush=1", items, nil); code != http.StatusAccepted {
		t.Fatalf("POST items = %d", code)
	}
	var snap Snapshot
	if code := call(t, client, "GET", ts.URL+"/v1/collections/hats/classes", nil, &snap); code != http.StatusOK {
		t.Fatalf("GET classes = %d", code)
	}
	res := core.Result{Classes: snap.Classes}
	if !core.SameClassification(res.Labels(len(labels)), labels) {
		t.Fatal("wrong classification over HTTP with per-collection regimen")
	}
	var info CollectionInfo
	if code := call(t, client, "GET", ts.URL+"/v1/collections/hats/stats", nil, &info); code != http.StatusOK {
		t.Fatalf("GET stats = %d", code)
	}
	if info.Algorithm != "er" {
		t.Errorf("stats algorithm = %q, want er", info.Algorithm)
	}

	// A bad regimen spec is a 400.
	if code := call(t, client, "PUT", ts.URL+"/v1/collections/bad",
		OracleSpec{Kind: KindLabel, Labels: labels, Algorithm: "quantum"}, nil); code != http.StatusBadRequest {
		t.Errorf("PUT bad algorithm = %d, want 400", code)
	}
}

// TestHTTPConstRoundFoldConflict: a λ-promise fold failure is a 409,
// not a 500 — a documented retryable regimen outcome.
func TestHTTPConstRoundFoldConflict(t *testing.T) {
	labels := make([]int, 40)
	labels[3] = 1
	svc := New(Config{Shards: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()
	spec := OracleSpec{Kind: KindLabel, Labels: labels, Algorithm: "const-round-er", Lambda: 0.4, D: 2, Seed: 5}
	if code := call(t, client, "PUT", ts.URL+"/v1/collections/c", spec, nil); code != http.StatusCreated {
		t.Fatalf("PUT = %d", code)
	}
	items := map[string][]int{"items": seq(0, 40)}
	if code := call(t, client, "POST", ts.URL+"/v1/collections/c/items?flush=1", items, nil); code != http.StatusConflict {
		t.Fatalf("POST with failing fold = %d, want 409", code)
	}
}

// TestHTTPMetricsBatchOracle: /metrics must expose the service-wide
// batch-oracle amortization counters, and a label collection — whose
// oracle answers whole chunks — must move them on the first flush.
// With Config.DisableBatchOracle the capability is masked and the
// counters stay zero while the partition comes out the same.
func TestHTTPMetricsBatchOracle(t *testing.T) {
	labels := []int{0, 1, 0, 1, 2, 2, 0, 1}
	run := func(t *testing.T, cfg Config) (string, [][]int) {
		t.Helper()
		svc := New(cfg)
		defer svc.Close()
		ts := httptest.NewServer(svc.Handler())
		defer ts.Close()
		client := ts.Client()
		if st := call(t, client, http.MethodPut, ts.URL+"/v1/collections/b",
			OracleSpec{Kind: KindLabel, Labels: labels}, nil); st != http.StatusCreated {
			t.Fatalf("create status %d", st)
		}
		if st := call(t, client, http.MethodPost, ts.URL+"/v1/collections/b/items?flush=1",
			map[string]any{"items": []int{0, 1, 2, 3, 4, 5, 6, 7}}, nil); st != http.StatusAccepted {
			t.Fatalf("ingest status %d", st)
		}
		var snap Snapshot
		if st := call(t, client, http.MethodGet, ts.URL+"/v1/collections/b/classes?fresh=1",
			nil, &snap); st != http.StatusOK {
			t.Fatalf("classes status %d", st)
		}
		resp, err := client.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return string(raw), snap.Classes
	}

	metrics, classes := run(t, Config{Shards: 1, BatchSize: 4, Workers: 2})
	for _, want := range []string{
		"ecsort_oracle_batch_rounds_total ",
		"ecsort_oracle_batch_pairs_total ",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
	if strings.Contains(metrics, "ecsort_oracle_batch_rounds_total 0\n") {
		t.Fatal("batch rounds stayed zero after a flush over a batch-capable oracle")
	}
	if strings.Contains(metrics, "ecsort_oracle_batch_pairs_total 0\n") {
		t.Fatal("batch pairs stayed zero after a flush over a batch-capable oracle")
	}

	off, offClasses := run(t, Config{Shards: 1, BatchSize: 4, Workers: 2, DisableBatchOracle: true})
	if !strings.Contains(off, "ecsort_oracle_batch_rounds_total 0\n") {
		t.Fatal("DisableBatchOracle still charged batch rounds")
	}
	if !strings.Contains(off, "ecsort_oracle_batch_pairs_total 0\n") {
		t.Fatal("DisableBatchOracle still charged batch pairs")
	}
	want := core.Result{Classes: classes}
	got := core.Result{Classes: offClasses}
	if !core.SameClassification(got.Labels(len(labels)), want.Labels(len(labels))) {
		t.Fatalf("partitions diverge: batch %v, disabled %v", classes, offClasses)
	}
}
