package service

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ecsort/internal/wal"
)

// crash simulates a hard kill: every shard goroutine exits immediately,
// skipping the durable shutdown (no WAL sync, no final checkpoint, no
// segment close). The data directory is left exactly as a SIGKILL would
// leave it — possibly with an unsynced tail, which stays visible to the
// recovery pass because the test reopens within the same OS page cache.
func (s *Service) crash() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	s.cancel()
	for _, sh := range s.shards {
		close(sh.die)
	}
	s.closeMu.Unlock()
	s.wg.Wait()
	s.pool.Close()
}

// fingerprint captures everything recovery promises to preserve about a
// collection: the fresh classes, the cost stats, and the counters.
type fingerprint struct {
	Classes [][]int
	Info    CollectionInfo
}

func snapshotKeyed(t *testing.T, svc *Service, key string) fingerprint {
	t.Helper()
	snap, err := svc.Classes(key, true)
	if err != nil {
		t.Fatalf("classes(%q): %v", key, err)
	}
	info, err := svc.CollectionStats(key)
	if err != nil {
		t.Fatalf("stats(%q): %v", key, err)
	}
	info.Snapshot = nil // compared via Classes
	return fingerprint{Classes: snap.Classes, Info: info}
}

// driveOps runs a deterministic mixed workload — two label collections
// (one batched, one force-flushed) and one ER-regimen collection — split
// in two halves so recovery tests can crash at the seam. Returns the
// collection keys.
func driveOps(t *testing.T, svc *Service, half int, rng *rand.Rand) []string {
	t.Helper()
	keys := []string{"alpha", "beta", "er"}
	if half == 0 {
		labels := make([]int, 64)
		for i := range labels {
			labels[i] = rng.Intn(5)
		}
		if err := svc.CreateCollection("alpha", OracleSpec{Kind: KindLabel, Labels: labels}); err != nil {
			t.Fatal(err)
		}
		if err := svc.CreateCollection("beta", OracleSpec{Kind: KindLabel, Labels: labels}); err != nil {
			t.Fatal(err)
		}
		if err := svc.CreateCollection("er", OracleSpec{Kind: KindLabel, Labels: labels, Algorithm: "er", Seed: 7}); err != nil {
			t.Fatal(err)
		}
	}
	perm := rand.New(rand.NewSource(11)).Perm(64) // same order both runs
	lo, hi := 0, 32
	if half == 1 {
		lo, hi = 32, 64
	}
	for at := lo; at < hi; at += 8 {
		batch := perm[at : at+8]
		if _, err := svc.Ingest("alpha", batch, false); err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Ingest("beta", batch, true); err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Ingest("er", batch, at%16 == 0); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

// TestDurableRecoveryBitIdentical is the tentpole anchor: a service that
// crashes mid-workload and recovers must end bit-identical — classes,
// stats fingerprints, counters — to one that ran the same operations
// without ever crashing.
func TestDurableRecoveryBitIdentical(t *testing.T) {
	for _, checkpointMidway := range []bool{false, true} {
		name := "tail-only"
		if checkpointMidway {
			name = "checkpoint-then-tail"
		}
		t.Run(name, func(t *testing.T) {
			// Control: memory-only, straight through.
			control := New(Config{Shards: 4, BatchSize: 12, Workers: 1})
			defer control.Close()
			rng := rand.New(rand.NewSource(3))
			keys := driveOps(t, control, 0, rng)
			driveOps(t, control, 1, rng)
			want := map[string]fingerprint{}
			for _, k := range keys {
				want[k] = snapshotKeyed(t, control, k)
			}

			// Crashing run: same ops, killed at the halfway seam.
			dir := t.TempDir()
			cfg := Config{Shards: 4, BatchSize: 12, Workers: 1, DataDir: dir, Fsync: "never"}
			svc, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng2 := rand.New(rand.NewSource(3))
			driveOps(t, svc, 0, rng2)
			if checkpointMidway {
				if err := svc.Checkpoint(); err != nil {
					t.Fatalf("checkpoint: %v", err)
				}
			}
			svc.crash()

			revived, err := Open(cfg)
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			defer revived.Close()
			rec := revived.Recovery()
			if !rec.Durable {
				t.Fatal("recovery info not marked durable")
			}
			if checkpointMidway && rec.Collections == 0 {
				t.Errorf("expected checkpoint-restored collections, got %+v", rec)
			}
			if !checkpointMidway && rec.Records == 0 {
				t.Errorf("expected replayed records, got %+v", rec)
			}
			driveOps(t, revived, 1, rng2)
			for _, k := range keys {
				got := snapshotKeyed(t, revived, k)
				if !reflect.DeepEqual(got.Classes, want[k].Classes) {
					t.Errorf("%s: classes diverged after recovery:\n got %v\nwant %v", k, got.Classes, want[k].Classes)
				}
				if got.Info != want[k].Info {
					t.Errorf("%s: stats fingerprint diverged:\n got %+v\nwant %+v", k, got.Info, want[k].Info)
				}
			}
		})
	}
}

// TestDurableCleanRestart pins the Close path: a clean shutdown writes a
// final checkpoint, so the next boot is snapshot-only (no tail records)
// and bit-identical.
func TestDurableCleanRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shards: 2, BatchSize: 10, Workers: 1, DataDir: dir}
	svc, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	keys := driveOps(t, svc, 0, rng)
	driveOps(t, svc, 1, rng)
	want := map[string]fingerprint{}
	for _, k := range keys {
		want[k] = snapshotKeyed(t, svc, k)
	}
	svc.Close()

	revived, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer revived.Close()
	rec := revived.Recovery()
	if rec.Records != 0 {
		t.Errorf("clean restart replayed %d tail records, want 0 (checkpoint-only boot); info %+v", rec.Records, rec)
	}
	if rec.Collections != len(keys) {
		t.Errorf("restored %d collections, want %d", rec.Collections, len(keys))
	}
	for _, k := range keys {
		got := snapshotKeyed(t, revived, k)
		if !reflect.DeepEqual(got, want[k]) {
			t.Errorf("%s: state diverged across clean restart:\n got %+v\nwant %+v", k, got, want[k])
		}
	}
}

// TestDurableFreshQueryAfterReplay drives the HTTP surface: elements that
// were pending (logged but never folded) at crash time must show up in a
// ?fresh=1 classes query after recovery.
func TestDurableFreshQueryAfterReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shards: 1, BatchSize: 1 << 20, Workers: 1, DataDir: dir, Fsync: "never"}
	svc, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	labels := []int{0, 1, 0, 1, 2, 2}
	if err := svc.CreateCollection("p", OracleSpec{Kind: KindLabel, Labels: labels}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Ingest("p", []int{0, 1, 2, 3, 4, 5}, false); err != nil {
		t.Fatal(err)
	}
	svc.crash() // everything still pending: no flush was forced

	revived, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer revived.Close()
	srv := httptest.NewServer(revived.Handler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/v1/collections/p/classes?fresh=1")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("fresh classes after replay: status %d", res.StatusCode)
	}
	snap, err := revived.Classes("p", false)
	if err != nil {
		t.Fatal(err)
	}
	wantClasses := [][]int{{0, 2}, {1, 3}, {4, 5}}
	if !reflect.DeepEqual(snap.Classes, wantClasses) {
		t.Errorf("fresh classes after replay = %v, want %v", snap.Classes, wantClasses)
	}
}

// TestDurableDropRecreate pins that a replayed drop erases the first
// incarnation: after crash recovery the key serves the second
// incarnation's universe, not a merge of both.
func TestDurableDropRecreate(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shards: 2, Workers: 1, DataDir: dir, Fsync: "never"}
	svc, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.CreateCollection("k", OracleSpec{Kind: KindLabel, Labels: []int{0, 0, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Ingest("k", []int{0, 1, 2, 3}, true); err != nil {
		t.Fatal(err)
	}
	if err := svc.DropCollection("k"); err != nil {
		t.Fatal(err)
	}
	if err := svc.CreateCollection("k", OracleSpec{Kind: KindLabel, Labels: []int{0, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Ingest("k", []int{1}, true); err != nil {
		t.Fatal(err)
	}
	svc.crash()

	revived, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer revived.Close()
	snap, err := revived.Classes("k", true)
	if err != nil {
		t.Fatal(err)
	}
	if want := [][]int{{1}}; !reflect.DeepEqual(snap.Classes, want) {
		t.Errorf("recovered recreated collection = %v, want %v", snap.Classes, want)
	}
	info, err := revived.CollectionStats("k")
	if err != nil {
		t.Fatal(err)
	}
	if info.Universe != 2 || info.Ingested != 1 {
		t.Errorf("recovered recreated collection info = %+v, want universe 2, ingested 1", info)
	}
}

// TestDurableTornTailTruncated pins crash-atomicity of appends: a record
// cut short mid-write (here: a frame header promising more bytes than
// exist) is truncated away on boot and reported, and the state before it
// survives intact.
func TestDurableTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shards: 1, Workers: 1, DataDir: dir, Fsync: "never"}
	svc, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.CreateCollection("k", OracleSpec{Kind: KindLabel, Labels: []int{0, 1, 0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Ingest("k", []int{0, 1, 2}, true); err != nil {
		t.Fatal(err)
	}
	want := snapshotKeyed(t, svc, "k")
	svc.crash()

	// Tear the tail: a frame header claiming a 64-byte record, then EOF.
	seg := filepath.Join(dir, "shard-0", wal.SegmentName(1))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var torn [8]byte
	binary.LittleEndian.PutUint32(torn[0:4], 64)
	if _, err := f.Write(torn[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	revived, err := Open(cfg)
	if err != nil {
		t.Fatalf("torn tail should recover, got %v", err)
	}
	defer revived.Close()
	if rec := revived.Recovery(); rec.TornTails != 1 {
		t.Errorf("TornTails = %d, want 1 (info %+v)", rec.TornTails, rec)
	}
	if got := snapshotKeyed(t, revived, "k"); !reflect.DeepEqual(got, want) {
		t.Errorf("state behind the torn tail was lost:\n got %+v\nwant %+v", got, want)
	}
}

// TestDurableCorruptCRCFailsLoudly pins the corruption contract: a
// complete record whose checksum no longer matches is data loss in the
// middle of the history, and Open must refuse with ErrCorrupt naming the
// file and offset — never silently skip it.
func TestDurableCorruptCRCFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shards: 1, Workers: 1, DataDir: dir, Fsync: "never"}
	svc, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.CreateCollection("k", OracleSpec{Kind: KindLabel, Labels: []int{0, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Ingest("k", []int{0, 1}, true); err != nil {
		t.Fatal(err)
	}
	svc.crash()

	// Flip one payload byte of the first record (the create).
	seg := filepath.Join(dir, "shard-0", wal.SegmentName(1))
	f, err := os.OpenFile(seg, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	at := int64(16 + 8 + 3) // header + frame + a few bytes into the payload
	var b [1]byte
	if _, err := f.ReadAt(b[:], at); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], at); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, err = Open(cfg)
	if err == nil {
		t.Fatal("Open accepted a corrupted WAL record")
	}
	if !errors.Is(err, wal.ErrCorrupt) {
		t.Errorf("error is not ErrCorrupt: %v", err)
	}
	for _, frag := range []string{wal.SegmentName(1), "CRC mismatch", "offset 16"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not name %q", err, frag)
		}
	}
}

// TestDurableCheckpointTruncatesLog pins log truncation: after a
// checkpoint, superseded segments are gone and the next boot replays
// nothing from before it.
func TestDurableCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shards: 1, Workers: 1, DataDir: dir, Fsync: "never"}
	svc, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.CreateCollection("k", OracleSpec{Kind: KindLabel, Labels: []int{0, 1, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Ingest("k", []int{0, 1}, true); err != nil {
		t.Fatal(err)
	}
	if err := svc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	segs, err := wal.Segments(filepath.Join(dir, "shard-0"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].Gen != 2 {
		t.Fatalf("after checkpoint, segments = %+v, want only generation 2", segs)
	}
	if _, err := svc.Ingest("k", []int{2}, true); err != nil {
		t.Fatal(err)
	}
	svc.crash()

	revived, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer revived.Close()
	rec := revived.Recovery()
	if rec.Collections != 1 {
		t.Errorf("Collections = %d, want 1 (from the checkpoint)", rec.Collections)
	}
	// Only the post-checkpoint tail replays: one batch + one flush.
	if rec.Records != 2 {
		t.Errorf("Records = %d, want 2 (post-checkpoint tail only); info %+v", rec.Records, rec)
	}
	snap, err := revived.Classes("k", true)
	if err != nil {
		t.Fatal(err)
	}
	if want := [][]int{{0}, {1, 2}}; !reflect.DeepEqual(snap.Classes, want) {
		t.Errorf("recovered classes = %v, want %v", snap.Classes, want)
	}
}

// TestDurableShardCountPinned pins the placement guard: a data directory
// written with one shard count refuses to open under another, because
// key→shard hashing would orphan recovered collections.
func TestDurableShardCountPinned(t *testing.T) {
	dir := t.TempDir()
	svc, err := Open(Config{Shards: 4, Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()
	if _, err := Open(Config{Shards: 8, Workers: 1, DataDir: dir}); err == nil {
		t.Fatal("Open accepted a shard-count mismatch")
	} else if !strings.Contains(err.Error(), "4 shards") {
		t.Errorf("error %q does not explain the recorded shard count", err)
	}
	// The recorded count still works.
	svc, err = Open(Config{Shards: 4, Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatalf("reopen with matching shard count: %v", err)
	}
	svc.Close()
}

// TestOpenRejectsBadFsyncPolicy pins config validation: an unknown fsync
// policy is ErrBadSpec at Open time, not a latent failure.
func TestOpenRejectsBadFsyncPolicy(t *testing.T) {
	_, err := Open(Config{DataDir: t.TempDir(), Fsync: "sometimes"})
	if !errors.Is(err, ErrBadSpec) {
		t.Fatalf("Open with bad fsync policy: %v, want ErrBadSpec", err)
	}
}

// TestMemoryOnlyCheckpointNoop pins that Checkpoint is a safe no-op
// without a data directory.
func TestMemoryOnlyCheckpointNoop(t *testing.T) {
	svc := New(Config{Shards: 1, Workers: 1})
	defer svc.Close()
	if err := svc.Checkpoint(); err != nil {
		t.Fatalf("memory-only Checkpoint: %v", err)
	}
}

// TestMetaVersionUpgrade: a data directory stamped with the previous
// (still-readable) format version opens cleanly, recovers its
// collections, and is restamped to the current version so a later
// downgrade fails at the meta check. Versions below the readable floor
// still refuse to open.
func TestMetaVersionUpgrade(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shards: 2, DataDir: dir, Fsync: "never"}
	svc, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.CreateCollection("k", OracleSpec{Kind: KindLabel, Labels: []int{0, 0, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Ingest("k", []int{0, 1, 2}, true); err != nil {
		t.Fatal(err)
	}
	svc.Close()

	path := filepath.Join(dir, metaName)
	if err := os.WriteFile(path, []byte(`{"format_version": 2, "shards": 2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	revived, err := Open(cfg)
	if err != nil {
		t.Fatalf("open v2-stamped directory: %v", err)
	}
	if _, err := revived.CollectionStats("k"); err != nil {
		t.Fatalf("collection lost across version upgrade: %v", err)
	}
	revived.Close()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m dirMeta
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m.FormatVersion != wal.FormatVersion || m.Shards != 2 {
		t.Fatalf("meta not restamped after upgrade: %+v", m)
	}

	if err := os.WriteFile(path, []byte(`{"format_version": 1, "shards": 2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(cfg); err == nil {
		t.Fatal("format version below the readable floor accepted")
	}
}
