package service

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ecsort/internal/core"
	"ecsort/internal/model"
	"ecsort/internal/oracle"
)

func TestSpecBuild(t *testing.T) {
	cases := []struct {
		name string
		spec OracleSpec
		ok   bool
	}{
		{"label", OracleSpec{Kind: KindLabel, Labels: []int{0, 1, 0}}, true},
		{"handshake", OracleSpec{Kind: KindHandshake, Labels: []int{0, 1}, Seed: 7}, true},
		{"handshake-agents", OracleSpec{Kind: KindHandshakeAgents, Labels: []int{0, 0, 1}, Seed: 7}, true},
		{"fault", OracleSpec{Kind: KindFault, States: []uint64{1, 2, 1}}, true},
		{"fault-agents", OracleSpec{Kind: KindFaultAgents, States: []uint64{3, 3}}, true},
		{"graph-iso", OracleSpec{Kind: KindGraphIso, Graphs: []GraphSpec{
			{N: 3, Edges: [][2]int{{0, 1}, {1, 2}}},
			{N: 3, Edges: [][2]int{{2, 1}, {1, 0}}},
			{N: 3, Edges: [][2]int{{0, 1}, {1, 2}, {2, 0}}},
		}}, true},
		{"unknown kind", OracleSpec{Kind: "nope", Labels: []int{0}}, false},
		{"empty universe", OracleSpec{Kind: KindLabel}, false},
		{"label kind with states only", OracleSpec{Kind: KindLabel, Labels: nil, States: []uint64{1}}, false},
		{"graph edge out of range", OracleSpec{Kind: KindGraphIso, Graphs: []GraphSpec{{N: 2, Edges: [][2]int{{0, 2}}}}}, false},
		{"graph self loop", OracleSpec{Kind: KindGraphIso, Graphs: []GraphSpec{{N: 2, Edges: [][2]int{{1, 1}}}}}, false},
		{"graph duplicate edge", OracleSpec{Kind: KindGraphIso, Graphs: []GraphSpec{{N: 2, Edges: [][2]int{{0, 1}, {1, 0}}}}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o, err := tc.spec.Build()
			if tc.ok {
				if err != nil {
					t.Fatalf("Build: %v", err)
				}
				if o.N() != tc.spec.N() {
					t.Fatalf("N = %d, want %d", o.N(), tc.spec.N())
				}
			} else if err == nil {
				t.Fatal("Build accepted a bad spec")
			}
		})
	}
}

// TestSpecOracleAgreement: every kind's oracle must realize the same
// partition as the plain label oracle it was derived from.
func TestSpecOracleAgreement(t *testing.T) {
	labels := []int{0, 1, 0, 2, 1, 2, 0}
	states := []uint64{9, 4, 9, 7, 4, 7, 9}
	g := func(edges ...[2]int) GraphSpec { return GraphSpec{N: 4, Edges: edges} }
	// Three isomorphism classes matching labels: 0 = path on 4 vertices,
	// 1 = triangle plus isolated vertex, 2 = star.
	graphs := []GraphSpec{
		g([2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3}), // path
		g([2]int{0, 1}, [2]int{1, 2}, [2]int{2, 0}), // triangle + isolated 3
		g([2]int{3, 2}, [2]int{2, 1}, [2]int{1, 0}), // path, relabeled
		g([2]int{0, 1}, [2]int{0, 2}, [2]int{0, 3}), // star, center 0
		g([2]int{1, 3}, [2]int{3, 2}, [2]int{2, 1}), // triangle + isolated 0
		g([2]int{2, 0}, [2]int{2, 1}, [2]int{2, 3}), // star, center 2
		g([2]int{2, 0}, [2]int{0, 3}, [2]int{3, 1}), // path 2-0-3-1
	}
	want := oracle.NewLabel(labels)
	for _, spec := range []OracleSpec{
		{Kind: KindHandshake, Labels: labels, Seed: 11},
		{Kind: KindHandshakeAgents, Labels: labels, Seed: 11},
		{Kind: KindFault, States: states},
		{Kind: KindFaultAgents, States: states},
		{Kind: KindGraphIso, Graphs: graphs},
	} {
		t.Run(spec.Kind, func(t *testing.T) {
			o, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < len(labels); i++ {
				for j := i + 1; j < len(labels); j++ {
					if got := o.Same(i, j); got != want.Same(i, j) {
						t.Fatalf("Same(%d,%d) = %v, want %v", i, j, got, want.Same(i, j))
					}
				}
			}
		})
	}
}

func TestServiceLifecycle(t *testing.T) {
	svc := New(Config{Shards: 2})
	defer svc.Close()

	spec := OracleSpec{Kind: KindLabel, Labels: []int{0, 1, 0, 1}}
	if err := svc.CreateCollection("a", spec); err != nil {
		t.Fatal(err)
	}
	if err := svc.CreateCollection("a", spec); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if err := svc.CreateCollection("", spec); err == nil {
		t.Fatal("empty key accepted")
	}
	if _, err := svc.Ingest("missing", []int{0}, false); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ingest into missing: %v", err)
	}
	if _, err := svc.Classes("missing", false); !errors.Is(err, ErrNotFound) {
		t.Fatalf("classes of missing: %v", err)
	}

	res, err := svc.Ingest("a", []int{0, 1, 2, 3}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flushed || res.Accepted != 4 || res.Pending != 0 || res.Version != 1 {
		t.Fatalf("ingest result = %+v", res)
	}
	snap, err := svc.Classes("a", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Classes) != 2 || snap.Size != 4 {
		t.Fatalf("snapshot = %+v", snap)
	}

	if err := svc.DropCollection("a"); err != nil {
		t.Fatal(err)
	}
	if err := svc.DropCollection("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double drop: %v", err)
	}

	svc.Close()
	if err := svc.CreateCollection("b", spec); !errors.Is(err, ErrClosed) {
		t.Fatalf("create after close: %v", err)
	}
	svc.Close() // idempotent
}

func TestIngestAtomicRejection(t *testing.T) {
	svc := New(Config{Shards: 1})
	defer svc.Close()
	if err := svc.CreateCollection("a", OracleSpec{Kind: KindLabel, Labels: []int{0, 0, 1, 1}}); err != nil {
		t.Fatal(err)
	}
	for _, items := range [][]int{
		{0, 4},    // out of range
		{0, -1},   // negative
		{1, 2, 1}, // duplicate within batch
	} {
		if _, err := svc.Ingest("a", items, false); !errors.Is(err, ErrBadItem) {
			t.Fatalf("items %v: err = %v", items, err)
		}
	}
	// Nothing from the rejected batches may have stuck: 0 is still free.
	if res, err := svc.Ingest("a", []int{0, 1}, false); err != nil || res.Accepted != 2 {
		t.Fatalf("clean ingest after rejections: %+v, %v", res, err)
	}
	// Cross-batch duplicate.
	if _, err := svc.Ingest("a", []int{1, 2}, false); !errors.Is(err, ErrBadItem) {
		t.Fatal("cross-batch duplicate accepted")
	}
	snap, err := svc.Classes("a", true)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Size != 2 {
		t.Fatalf("size = %d after atomic rejections, want 2", snap.Size)
	}
}

// TestBatchingPolicy: with BatchSize B, flushes happen only when the
// buffer reaches B (or on a fresh read), and each flush costs one
// compounding group — visible as a version bump.
func TestBatchingPolicy(t *testing.T) {
	svc := New(Config{Shards: 1, BatchSize: 6})
	defer svc.Close()
	labels := make([]int, 32)
	for i := range labels {
		labels[i] = i % 4
	}
	if err := svc.CreateCollection("a", OracleSpec{Kind: KindLabel, Labels: labels}); err != nil {
		t.Fatal(err)
	}
	res, err := svc.Ingest("a", []int{0, 1, 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flushed || res.Pending != 3 || res.Version != 0 {
		t.Fatalf("first batch: %+v", res)
	}
	// Snapshot still empty: reads don't see pending elements.
	snap, _ := svc.Classes("a", false)
	if snap.Size != 0 || snap.Version != 0 {
		t.Fatalf("stale snapshot = %+v", snap)
	}
	res, err = svc.Ingest("a", []int{3, 4, 5}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flushed || res.Pending != 0 || res.Version != 1 {
		t.Fatalf("threshold batch: %+v", res)
	}
	// Force-flush flag flushes a sub-threshold batch.
	res, err = svc.Ingest("a", []int{6}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flushed || res.Version != 2 {
		t.Fatalf("forced batch: %+v", res)
	}
	// Fresh read flushes the remainder.
	if _, err := svc.Ingest("a", []int{7, 8}, false); err != nil {
		t.Fatal(err)
	}
	snap, err = svc.Classes("a", true)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 3 || snap.Size != 9 {
		t.Fatalf("fresh snapshot = %+v", snap)
	}
}

func TestFlushIntervalBoundsStaleness(t *testing.T) {
	svc := New(Config{Shards: 1, BatchSize: 1 << 20, FlushInterval: 5 * time.Millisecond})
	defer svc.Close()
	if err := svc.CreateCollection("a", OracleSpec{Kind: KindLabel, Labels: []int{0, 1, 0, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Ingest("a", []int{0, 1, 2}, false); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap, err := svc.Classes("a", false)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Size == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ticker flush never published the pending elements")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConcurrentCollections is the sharding contract: many goroutines
// ingesting into many collections concurrently, every final answer
// exactly the batch SortCR partition of what was ingested.
func TestConcurrentCollections(t *testing.T) {
	svc := New(Config{Shards: 4, BatchSize: 16})
	defer svc.Close()
	const (
		collections = 12
		n           = 200
		k           = 7
	)
	rng := rand.New(rand.NewSource(42))
	truths := make([]*oracle.Label, collections)
	orders := make([][]int, collections)
	for i := range truths {
		truths[i] = oracle.RandomBalanced(n, k, rng)
		orders[i] = rng.Perm(n)
		key := fmt.Sprintf("col-%d", i)
		if err := svc.CreateCollection(key, OracleSpec{Kind: KindLabel, Labels: truths[i].Labels()}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, collections)
	for i := 0; i < collections; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("col-%d", i)
			for lo := 0; lo < n; lo += 13 {
				hi := min(lo+13, n)
				if _, err := svc.Ingest(key, orders[i][lo:hi], false); err != nil {
					errCh <- fmt.Errorf("%s: %w", key, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	for i := 0; i < collections; i++ {
		key := fmt.Sprintf("col-%d", i)
		snap, err := svc.Classes(key, true)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := core.SortCR(model.NewSession(truths[i], model.CR), k)
		if err != nil {
			t.Fatal(err)
		}
		got := core.Result{Classes: snap.Classes}
		if !core.SameClassification(got.Labels(n), batch.Labels(n)) {
			t.Fatalf("%s: service partition differs from batch SortCR", key)
		}
	}
}

// TestSnapshotImmutable: a held snapshot must not change under later
// ingestion.
func TestSnapshotImmutable(t *testing.T) {
	svc := New(Config{Shards: 1})
	defer svc.Close()
	labels := []int{0, 0, 1, 1, 2, 2}
	if err := svc.CreateCollection("a", OracleSpec{Kind: KindLabel, Labels: labels}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Ingest("a", []int{0, 2}, false); err != nil {
		t.Fatal(err)
	}
	snap, _ := svc.Classes("a", false)
	classesBefore := fmt.Sprint(snap.Classes)
	if _, err := svc.Ingest("a", []int{1, 3, 4, 5}, false); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(snap.Classes); got != classesBefore {
		t.Fatalf("held snapshot mutated: %s -> %s", classesBefore, got)
	}
	fresh, _ := svc.Classes("a", false)
	if fresh.Size != 6 {
		t.Fatalf("fresh snapshot size = %d", fresh.Size)
	}
}

func TestCollectionsListingAndStats(t *testing.T) {
	svc := New(Config{Shards: 3})
	defer svc.Close()
	for _, key := range []string{"zeta", "alpha", "mid"} {
		if err := svc.CreateCollection(key, OracleSpec{Kind: KindLabel, Labels: []int{0, 1}}); err != nil {
			t.Fatal(err)
		}
	}
	infos := svc.Collections()
	if len(infos) != 3 {
		t.Fatalf("Collections = %v", infos)
	}
	for i, want := range []string{"alpha", "mid", "zeta"} {
		if infos[i].Key != want {
			t.Fatalf("listing order = %v", infos)
		}
	}
	if _, err := svc.Ingest("alpha", []int{1, 0}, false); err != nil {
		t.Fatal(err)
	}
	info, err := svc.CollectionStats("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if info.Ingested != 2 || info.Batches != 1 || info.Flushes != 1 || info.Classes != 2 || info.Universe != 2 {
		t.Fatalf("info = %+v", info)
	}
	if info.Snapshot == nil || info.Snapshot.Stats.Comparisons == 0 {
		t.Fatalf("stats snapshot = %+v", info.Snapshot)
	}
}

func TestRunStress(t *testing.T) {
	rep, err := RunStress(StressConfig{
		Collections: 4,
		Elements:    120,
		Classes:     5,
		Batch:       16,
		Writers:     3,
		Seed:        1,
		Service:     Config{Shards: 2, BatchSize: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatal("stress run produced a wrong partition")
	}
	if rep.Elements != 4*120 {
		t.Fatalf("elements = %d", rep.Elements)
	}
	if rep.Batches != 4*8 {
		t.Fatalf("batches = %d", rep.Batches)
	}
	if rep.Comparisons == 0 || rep.ElementsPerSec <= 0 {
		t.Fatalf("report = %+v", rep)
	}
}

// TestNegativeWorkersPanics: the service boundary must reject a negative
// pool width as loudly as the model layer does.
func TestNegativeWorkersPanics(t *testing.T) {
	defer func() {
		r := recover()
		err, ok := r.(error)
		if !ok || !errors.Is(err, model.ErrBadWorkers) {
			t.Errorf("New(Config{Workers: -1}) panicked with %v, want model.ErrBadWorkers", r)
		}
	}()
	New(Config{Workers: -1})
	t.Error("New(Config{Workers: -1}) did not panic")
}
