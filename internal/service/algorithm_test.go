package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ecsort/internal/core"
)

// labelsFor spreads n elements over k classes round-robin and shuffles.
func labelsFor(n, k int, seed int64) []int {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % k
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })
	return labels
}

// TestPerCollectionAlgorithms: collections created with different
// regimens in one service all classify correctly, report their regimen,
// and accumulate cost across flushes.
func TestPerCollectionAlgorithms(t *testing.T) {
	svc := New(Config{Shards: 2, BatchSize: 16})
	defer svc.Close()

	const n, k = 96, 3
	labels := labelsFor(n, k, 5)
	for _, tc := range []struct {
		key  string
		spec OracleSpec
		want string // expected CollectionInfo.Algorithm
	}{
		{"default", OracleSpec{Kind: KindLabel, Labels: labels}, AlgorithmIncremental},
		{"explicit-incremental", OracleSpec{Kind: KindLabel, Labels: labels, Algorithm: AlgorithmIncremental}, AlgorithmIncremental},
		{"er", OracleSpec{Kind: KindLabel, Labels: labels, Algorithm: "er"}, "er"},
		{"const", OracleSpec{Kind: KindLabel, Labels: labels, Algorithm: "const-round-er", Lambda: 0.25, Seed: 7}, "const-round-er"},
		{"adaptive", OracleSpec{Kind: KindLabel, Labels: labels, Algorithm: "const-round-er-adaptive", Seed: 7}, "const-round-er-adaptive"},
		{"auto-any", OracleSpec{Kind: KindLabel, Labels: labels, Algorithm: "auto", K: k}, AlgorithmIncremental},
		{"auto-er", OracleSpec{Kind: KindLabel, Labels: labels, Algorithm: "auto", Mode: "ER"}, "er"},
		{"handshake-er", OracleSpec{Kind: KindHandshake, Labels: labels, Seed: 3, Algorithm: "er"}, "er"},
	} {
		t.Run(tc.key, func(t *testing.T) {
			if err := svc.CreateCollection(tc.key, tc.spec); err != nil {
				t.Fatal(err)
			}
			perm := rand.New(rand.NewSource(9)).Perm(n)
			for start := 0; start < n; start += 24 {
				end := min(start+24, n)
				if _, err := svc.Ingest(tc.key, perm[start:end], false); err != nil {
					t.Fatal(err)
				}
			}
			snap, err := svc.Classes(tc.key, true)
			if err != nil {
				t.Fatal(err)
			}
			if snap.Size != n {
				t.Fatalf("snapshot covers %d elements, want %d", snap.Size, n)
			}
			res := core.Result{Classes: snap.Classes}
			if !core.SameClassification(res.Labels(n), labels) {
				t.Fatal("wrong classification")
			}
			info, err := svc.CollectionStats(tc.key)
			if err != nil {
				t.Fatal(err)
			}
			if info.Algorithm != tc.want {
				t.Errorf("CollectionInfo.Algorithm = %q, want %q", info.Algorithm, tc.want)
			}
			if info.Flushes < 2 {
				t.Errorf("flushes = %d, want >= 2 (batched ingestion)", info.Flushes)
			}
			if snap.Stats.Comparisons == 0 || snap.Stats.Rounds == 0 {
				t.Errorf("cost not accumulated: %+v", snap.Stats)
			}
			// Point lookups work over batch-regimen snapshots too.
			view, err := svc.ClassOf(tc.key, perm[0], false)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range view.Members {
				if labels[m] != labels[perm[0]] {
					t.Errorf("ClassOf mixed classes: %d with %d", m, perm[0])
				}
			}
		})
	}
}

// TestBatchRegimenRoundEconomy: the point of a per-collection regimen —
// a const-round collection spends O(1) physical rounds per fold no
// matter how large the collection grows (Theorem 4), where the ER merge
// tree's rounds grow with log n.
func TestBatchRegimenRoundEconomy(t *testing.T) {
	rounds := func(n int) int {
		labels := labelsFor(n, 3, 21)
		svc := New(Config{Shards: 1})
		defer svc.Close()
		spec := OracleSpec{Kind: KindLabel, Labels: labels, Algorithm: "const-round-er", Lambda: 0.25, D: 10, Seed: 3}
		if err := svc.CreateCollection("c", spec); err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Ingest("c", seq(0, n), true); err != nil {
			t.Fatal(err)
		}
		snap, err := svc.Classes("c", false)
		if err != nil {
			t.Fatal(err)
		}
		res := core.Result{Classes: snap.Classes}
		if !core.SameClassification(res.Labels(n), labels) {
			t.Fatal("wrong classification")
		}
		return snap.Stats.Rounds
	}
	small, large := rounds(512), rounds(4096)
	// O(1) in n: an 8x larger input may cost retries but not a
	// log-factor blowup. Allow 2x slack for unlucky redraws.
	if large > 2*small {
		t.Errorf("const-round fold rounds grew with n: %d @ n=512 vs %d @ n=4096", small, large)
	}
}

// TestBadAlgorithmSpecs: unknown names, missing required hints, and bad
// mode strings are rejected at collection creation with ErrBadSpec.
func TestBadAlgorithmSpecs(t *testing.T) {
	svc := New(Config{Shards: 1})
	defer svc.Close()
	labels := []int{0, 1, 0, 1}
	for name, spec := range map[string]OracleSpec{
		"unknown algorithm": {Kind: KindLabel, Labels: labels, Algorithm: "quantum"},
		"cr without k":      {Kind: KindLabel, Labels: labels, Algorithm: "cr"},
		"const without λ":   {Kind: KindLabel, Labels: labels, Algorithm: "const-round-er"},
		"bad mode":          {Kind: KindLabel, Labels: labels, Algorithm: "auto", Mode: "XR"},
		"bad lambda":        {Kind: KindLabel, Labels: labels, Algorithm: "auto", Lambda: 0.7},
	} {
		if err := svc.CreateCollection("bad", spec); !errors.Is(err, ErrBadSpec) {
			t.Errorf("%s: err = %v, want ErrBadSpec", name, err)
		}
	}
}

// TestCloseUnderInFlightBatches: Close during a storm of concurrent
// batched ingestion must return promptly (the service context aborts
// folds between rounds), and every in-flight call must either succeed
// or fail with ErrClosed/cancellation — never hang or corrupt state.
func TestCloseUnderInFlightBatches(t *testing.T) {
	const n, k, writers = 4096, 8, 6
	labels := labelsFor(n, k, 31)
	svc := New(Config{Shards: 4, BatchSize: 0})
	for w := 0; w < writers; w++ {
		key := fmt.Sprintf("col-%d", w)
		if err := svc.CreateCollection(key, OracleSpec{Kind: KindLabel, Labels: labels}); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	var unexpected atomic.Int64
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := fmt.Sprintf("col-%d", w)
			<-start
			for e := 0; e < n; e += 64 {
				_, err := svc.Ingest(key, seq(e, min(e+64, n)), false)
				if err != nil {
					if !errors.Is(err, ErrClosed) && !errors.Is(err, context.Canceled) {
						unexpected.Add(1)
					}
					return
				}
			}
		}(w)
	}
	close(start)
	time.Sleep(5 * time.Millisecond) // let batches get in flight

	done := make(chan struct{})
	go func() {
		svc.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung under in-flight batches")
	}
	wg.Wait()
	if got := unexpected.Load(); got != 0 {
		t.Errorf("%d writers saw unexpected errors", got)
	}
	// The service is fully closed: subsequent calls are rejected.
	if _, err := svc.Ingest("col-0", []int{0}, false); !errors.Is(err, ErrClosed) {
		t.Errorf("post-Close ingest err = %v, want ErrClosed", err)
	}
}

// TestFailedFoldKeepsCollectionConsistent is the regression test for
// the fold-error bookkeeping: a const-round collection whose λ promise
// is violated fails its fold, but the accepted items stay buffered, the
// pending gauge stays truthful, the collection stays retryable, and
// reads keep serving the last good snapshot.
func TestFailedFoldKeepsCollectionConsistent(t *testing.T) {
	// 39:1 split — smallest class fraction 1/40, hopeless for λ = 0.4.
	labels := make([]int, 40)
	labels[7] = 1
	svc := New(Config{Shards: 1})
	defer svc.Close()
	spec := OracleSpec{Kind: KindLabel, Labels: labels, Algorithm: "const-round-er", Lambda: 0.4, D: 2, Seed: 3}
	if err := svc.CreateCollection("c", spec); err != nil {
		t.Fatal(err)
	}
	_, err := svc.Ingest("c", seq(0, 40), true)
	if !errors.Is(err, core.ErrConstRoundFailed) {
		t.Fatalf("ingest err = %v, want ErrConstRoundFailed", err)
	}
	info, err := svc.CollectionStats("c")
	if err != nil {
		t.Fatal(err)
	}
	if info.Pending != 40 {
		t.Errorf("pending gauge = %d after failed fold, want 40", info.Pending)
	}
	if info.Ingested != 40 {
		t.Errorf("ingested = %d, want 40", info.Ingested)
	}
	// The last good (empty) snapshot still serves.
	snap, err := svc.Classes("c", false)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Size != 0 {
		t.Errorf("failed fold published a snapshot of size %d", snap.Size)
	}
	// Retry is reachable: an explicit flush re-runs the fold (and fails
	// the same way — λ is still violated — without corrupting state).
	if _, err := svc.Flush("c"); !errors.Is(err, core.ErrConstRoundFailed) {
		t.Fatalf("flush retry err = %v, want ErrConstRoundFailed", err)
	}
	if info, _ = svc.CollectionStats("c"); info.Pending != 40 {
		t.Errorf("pending gauge = %d after retried fold, want 40", info.Pending)
	}
}
