// Package agents simulates the distributed reality behind the paper's
// exclusive-read model: n autonomous agents, each holding private state,
// that can only learn about each other by running a pairwise protocol
// over a message channel. The Network executes one comparison round at a
// time, physically enforcing the ER rule — every agent participates in at
// most one protocol session per round — and running a round's sessions
// concurrently on the persistent runtime pool, one goroutine per agent
// side within each session.
//
// The package provides two concrete agents matching the paper's first two
// applications:
//
//   - KeyAgent — the secret-handshake intern: holds a group key and runs
//     a nonce-exchange + HMAC-SHA256 challenge–response; transcripts
//     reveal only same-group/different-group.
//   - StateAgent — the fault-diagnosis machine: holds a worm-state value
//     and compares via salted commitments, revealing only whether the
//     states coincide. (The simulation models the information flow, not a
//     cryptographically binding commitment: small state spaces would
//     admit dictionary attacks in a real deployment.)
//
// A Network plugs into the comparison-model substrate as a
// model.Executor, so every ER algorithm in internal/core runs unchanged
// on top of genuinely message-passing agents.
package agents

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"

	"ecsort/internal/model"
	rt "ecsort/internal/runtime"
)

// Message is one protocol message between two agents.
type Message []byte

// Agent is one participant: Handshake runs the agent's side of the
// pairwise protocol and decides whether the peer is equivalent. sessionID
// is distinct per pairing and identical for both sides; implementations
// derive nonces from it so protocol runs are reproducible.
type Agent interface {
	Handshake(sessionID uint64, send chan<- Message, recv <-chan Message) bool
}

// Network owns n agents and executes comparison rounds between them.
type Network struct {
	agents []Agent
	pool   *rt.Pool // dispatches a round's protocol sessions; nil = shared
	// sessions counts pairwise protocol runs, for reporting.
	sessions int64
	mu       sync.Mutex
	seq      uint64
}

// NewNetwork wraps a set of agents. Rounds dispatch their protocol
// sessions from the process-wide shared runtime pool; use UsePool to
// route them through a dedicated one. The shared pool is resolved
// lazily at the first round, so wrapping a roster (or running single
// Same probes) never spins up pool workers.
func NewNetwork(agents []Agent) *Network {
	return &Network{agents: agents}
}

// UsePool makes subsequent rounds dispatch their protocol sessions from
// p instead of the shared runtime pool; nil restores the shared pool.
// Not safe to call concurrently with ExecuteRound. The binding is
// network-wide and last-writer-wins; sessions that need their own pool
// without re-routing everyone else's rounds should execute through
// Bound instead.
func (nw *Network) UsePool(p *rt.Pool) { nw.pool = p }

// Bound returns an executor view of the network whose rounds dispatch
// from p (nil: the shared pool), without touching the network's own
// binding. Each session gets its own Bound executor, so creating a
// second session never silently re-routes an earlier session's rounds —
// the per-session binding NewAgentSession relies on.
func (nw *Network) Bound(p *rt.Pool) model.Executor {
	return &boundNetwork{nw: nw, pool: p}
}

// boundNetwork pins one pool to the network's round executor.
type boundNetwork struct {
	nw   *Network
	pool *rt.Pool
}

// ExecuteRound implements model.Executor on the pinned pool.
func (b *boundNetwork) ExecuteRound(pairs []model.Pair) []bool {
	return b.nw.executeRound(b.pool, pairs)
}

// Batch returns a batch-oracle view of the network whose chunks
// dispatch from p (nil: the shared pool), the concurrent-read sibling
// of Bound: handing it to model.NewSession schedules every worker-pool
// chunk as a wave of real protocol sessions instead of one session per
// Same call. Unlike ExecuteRound it skips the ER-disjointness check —
// a CR chunk may legitimately schedule one agent into several
// concurrent sessions, which is safe because handshakes are pure
// functions of (sessionID, private state). Like Bound, the pool
// binding is per-view and never re-routes the network's own rounds.
func (nw *Network) Batch(p *rt.Pool) model.BatchOracle {
	return &batchNetwork{nw: nw, pool: p}
}

// batchNetwork pins one pool to a batch-oracle view of the network.
type batchNetwork struct {
	nw   *Network
	pool *rt.Pool
}

// N implements model.Oracle.
func (b *batchNetwork) N() int { return b.nw.N() }

// Same implements model.Oracle via a single protocol session.
func (b *batchNetwork) Same(i, j int) bool { return b.nw.Same(i, j) }

// SameBatch implements model.BatchOracle: one mutex acquisition
// allocates the whole chunk's session-ID block, then every pair's
// handshake wave runs concurrently on the pinned pool. This is
// executeRound minus the busy-map check and the result allocation —
// verdicts land in the caller's out slice by index.
//
//ecsort:hotpath
func (b *batchNetwork) SameBatch(pairs []model.Pair, out []bool) {
	nw := b.nw
	nw.mu.Lock()
	base := nw.seq
	nw.seq += uint64(len(pairs))
	nw.sessions += int64(len(pairs))
	nw.mu.Unlock()
	pool := b.pool
	if pool == nil {
		pool = rt.Shared()
	}
	// run is per call, not per view: a parallel round invokes SameBatch
	// concurrently on disjoint chunks.
	run := roundRun{nw: nw, base: base, pairs: pairs, out: out}
	pool.Run(len(pairs), len(pairs), &run)
}

// N returns the number of agents.
func (nw *Network) N() int { return len(nw.agents) }

// Sessions returns how many pairwise protocol sessions have run.
func (nw *Network) Sessions() int64 {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.sessions
}

// Same implements model.Oracle by running a single protocol session, so a
// Network can be handed directly to model.NewSession — pass the network
// both as the oracle and as the executor (model.WithExecutor) to route
// whole rounds through concurrent agent sessions.
func (nw *Network) Same(i, j int) bool {
	nw.mu.Lock()
	id := nw.seq
	nw.seq++
	nw.sessions++
	nw.mu.Unlock()
	return nw.runSession(id, i, j)
}

// ExecuteRound implements model.Executor: it runs a round's protocol
// sessions concurrently after checking the ER rule, dispatching one
// session per runtime chunk so the concurrency of a round is bounded by
// the pool's width instead of spawning an unbounded goroutine per pair
// (each session still runs its two agent goroutines internally). Both
// sides of a session must agree on the verdict; disagreement panics,
// because it means the pairwise protocol itself is broken.
func (nw *Network) ExecuteRound(pairs []model.Pair) []bool {
	return nw.executeRound(nw.pool, pairs)
}

// executeRound runs one round's protocol sessions on the given pool
// (nil: shared), the common core of ExecuteRound and Bound executors.
func (nw *Network) executeRound(pool *rt.Pool, pairs []model.Pair) []bool {
	busy := make(map[int]struct{}, 2*len(pairs))
	for _, p := range pairs {
		if _, dup := busy[p.A]; dup {
			panic(fmt.Sprintf("agents: agent %d scheduled twice in one round", p.A))
		}
		if _, dup := busy[p.B]; dup {
			panic(fmt.Sprintf("agents: agent %d scheduled twice in one round", p.B))
		}
		busy[p.A] = struct{}{}
		busy[p.B] = struct{}{}
	}
	nw.mu.Lock()
	base := nw.seq
	nw.seq += uint64(len(pairs))
	nw.sessions += int64(len(pairs))
	nw.mu.Unlock()

	if pool == nil {
		pool = rt.Shared()
	}
	run := roundRun{nw: nw, base: base, pairs: pairs, out: make([]bool, len(pairs))}
	pool.Run(len(pairs), len(pairs), &run)
	return run.out
}

// roundRun adapts one round of protocol sessions to the runtime's chunk
// interface; with one pair per chunk, verdicts land by index.
type roundRun struct {
	nw    *Network
	base  uint64
	pairs []model.Pair
	out   []bool
}

// RunChunk implements runtime.Runner.
func (r *roundRun) RunChunk(lo, hi int) {
	for i := lo; i < hi; i++ {
		r.out[i] = r.nw.runSession(r.base+uint64(i), r.pairs[i].A, r.pairs[i].B)
	}
}

// runSession wires two agents together and runs their handshakes.
func (nw *Network) runSession(sessionID uint64, a, b int) bool {
	aToB := make(chan Message, 4)
	bToA := make(chan Message, 4)
	verdicts := make(chan bool, 2)
	go func() { verdicts <- nw.agents[a].Handshake(sessionID, aToB, bToA) }()
	go func() { verdicts <- nw.agents[b].Handshake(sessionID, bToA, aToB) }()
	va, vb := <-verdicts, <-verdicts
	if va != vb {
		panic(fmt.Sprintf("agents: session %d: sides disagree (%v vs %v)", sessionID, va, vb))
	}
	return va
}

// KeyAgent runs the secret-handshake protocol with a group key.
type KeyAgent struct {
	key []byte
}

// NewKeyAgent creates an agent holding the given group key.
func NewKeyAgent(key []byte) *KeyAgent {
	cp := make([]byte, len(key))
	copy(cp, key)
	return &KeyAgent{key: cp}
}

// GroupKeys derives one 32-byte group key per distinct label from a
// master seed, and returns the agent roster realizing labels.
func GroupKeys(labels []int, masterSeed int64) []Agent {
	var master [32]byte
	binary.BigEndian.PutUint64(master[:8], uint64(masterSeed))
	keys := map[int][]byte{}
	out := make([]Agent, len(labels))
	for i, l := range labels {
		key, ok := keys[l]
		if !ok {
			mac := hmac.New(sha256.New, master[:])
			var buf [8]byte
			binary.BigEndian.PutUint64(buf[:], uint64(l))
			mac.Write(buf[:])
			key = mac.Sum(nil)
			keys[l] = key
		}
		out[i] = NewKeyAgent(key)
	}
	return out
}

// Handshake implements Agent: exchange session-derived nonces, then
// exchange HMACs of the ordered transcript; equal tags ⇔ equal keys.
func (a *KeyAgent) Handshake(sessionID uint64, send chan<- Message, recv <-chan Message) bool {
	nonce := deriveNonce(sessionID, a.key)
	send <- nonce
	peerNonce := <-recv
	lo, hi := nonce, peerNonce
	if string(lo) > string(hi) {
		lo, hi = hi, lo
	}
	mac := hmac.New(sha256.New, a.key)
	mac.Write([]byte("agents-handshake-v1"))
	mac.Write(lo)
	mac.Write(hi)
	tag := mac.Sum(nil)
	send <- tag
	peerTag := <-recv
	return hmac.Equal(tag, peerTag)
}

// StateAgent compares a private state value by exchanging salted digests.
type StateAgent struct {
	state uint64
}

// NewStateAgent creates an agent with the given private state (e.g. a
// worm-infection bitmask).
func NewStateAgent(state uint64) *StateAgent { return &StateAgent{state: state} }

// StateRoster builds agents from explicit states.
func StateRoster(states []uint64) []Agent {
	out := make([]Agent, len(states))
	for i, s := range states {
		out[i] = NewStateAgent(s)
	}
	return out
}

// Handshake implements Agent: both sides hash (sessionID, state) — equal
// states produce equal digests, and the digest hides the state value up
// to dictionary search over the state space.
func (a *StateAgent) Handshake(sessionID uint64, send chan<- Message, recv <-chan Message) bool {
	h := sha256.New()
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], sessionID)
	binary.BigEndian.PutUint64(buf[8:], a.state)
	h.Write(buf[:])
	digest := h.Sum(nil)
	send <- digest
	peer := <-recv
	return hmac.Equal(digest, peer)
}

func deriveNonce(sessionID uint64, key []byte) Message {
	h := sha256.New()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], sessionID)
	h.Write(buf[:])
	h.Write(key)
	return h.Sum(nil)[:16]
}
