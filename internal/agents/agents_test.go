package agents

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ecsort/internal/core"
	"ecsort/internal/model"
	rt "ecsort/internal/runtime"
)

func TestKeyAgentsHandshake(t *testing.T) {
	labels := []int{0, 1, 0, 2}
	nw := NewNetwork(GroupKeys(labels, 42))
	for i := range labels {
		for j := range labels {
			if i == j {
				continue
			}
			want := labels[i] == labels[j]
			if got := nw.Same(i, j); got != want {
				t.Fatalf("Same(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestStateAgentsHandshake(t *testing.T) {
	states := []uint64{3, 7, 3, 0}
	nw := NewNetwork(StateRoster(states))
	if !nw.Same(0, 2) || nw.Same(0, 1) || nw.Same(1, 3) {
		t.Fatal("state handshakes wrong")
	}
}

func TestExecuteRoundConcurrentSessions(t *testing.T) {
	labels := []int{0, 0, 1, 1, 2, 2}
	nw := NewNetwork(GroupKeys(labels, 7))
	res := nw.ExecuteRound([]model.Pair{{A: 0, B: 1}, {A: 2, B: 3}, {A: 4, B: 5}})
	for i, r := range res {
		if !r {
			t.Fatalf("pair %d should match", i)
		}
	}
	res = nw.ExecuteRound([]model.Pair{{A: 0, B: 2}, {A: 1, B: 4}})
	if res[0] || res[1] {
		t.Fatal("cross-group handshakes matched")
	}
	if nw.Sessions() != 5 {
		t.Fatalf("Sessions = %d, want 5", nw.Sessions())
	}
}

func TestExecuteRoundEnforcesER(t *testing.T) {
	nw := NewNetwork(GroupKeys([]int{0, 0, 0}, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("double-booked agent did not panic")
		}
	}()
	nw.ExecuteRound([]model.Pair{{A: 0, B: 1}, {A: 1, B: 2}})
}

// TestFullSortsOverNetwork runs every ER algorithm on a live agent
// network plugged in as the session executor.
func TestFullSortsOverNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 60
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(4)
	}

	t.Run("SortER over key agents", func(t *testing.T) {
		nw := NewNetwork(GroupKeys(labels, 99))
		s := model.NewSession(nw, model.ER, model.WithExecutor(nw))
		res, err := core.SortER(s)
		if err != nil {
			t.Fatal(err)
		}
		if !core.SameClassification(res.Labels(n), labels) {
			t.Fatal("wrong classification")
		}
		// Every comparison went through a protocol session.
		if nw.Sessions() != res.Stats.Comparisons {
			t.Fatalf("sessions %d != comparisons %d", nw.Sessions(), res.Stats.Comparisons)
		}
	})

	t.Run("RoundRobin over state agents", func(t *testing.T) {
		states := make([]uint64, n)
		for i, l := range labels {
			states[i] = uint64(l) * 0x9e3779b97f4a7c15
		}
		nw := NewNetwork(StateRoster(states))
		s := model.NewSession(nw, model.ER, model.WithExecutor(nw))
		res, err := core.RoundRobin(s)
		if err != nil {
			t.Fatal(err)
		}
		if !core.SameClassification(res.Labels(n), labels) {
			t.Fatal("wrong classification")
		}
	})

	t.Run("ConstRound over key agents", func(t *testing.T) {
		balanced := make([]int, n)
		for i := range balanced {
			balanced[i] = i % 3
		}
		nw := NewNetwork(GroupKeys(balanced, 5))
		s := model.NewSession(nw, model.ER, model.WithExecutor(nw))
		res, err := core.SortConstRoundER(s, core.ConstRoundConfig{
			Lambda:     0.2,
			D:          10,
			MaxRetries: 5,
			Rng:        rand.New(rand.NewSource(11)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !core.SameClassification(res.Labels(n), balanced) {
			t.Fatal("wrong classification")
		}
	})
}

// TestNetworkQuick fuzzes rosters and verifies protocol verdicts always
// match label equality.
func TestNetworkQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(3)
		}
		nw := NewNetwork(GroupKeys(labels, seed))
		for trial := 0; trial < 15; trial++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			if nw.Same(i, j) != (labels[i] == labels[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSessionIDsDistinct: parallel rounds must hand each pair a distinct
// session id (nonce reuse across sessions would be a protocol smell).
func TestSessionIDsDistinct(t *testing.T) {
	nw := NewNetwork(GroupKeys([]int{0, 0, 0, 0}, 3))
	nw.ExecuteRound([]model.Pair{{A: 0, B: 1}, {A: 2, B: 3}})
	nw.ExecuteRound([]model.Pair{{A: 0, B: 2}, {A: 1, B: 3}})
	if nw.seq != 4 {
		t.Fatalf("seq = %d, want 4", nw.seq)
	}
}

func BenchmarkNetworkRound(b *testing.B) {
	labels := make([]int, 256)
	for i := range labels {
		labels[i] = i % 4
	}
	nw := NewNetwork(GroupKeys(labels, 1))
	pairs := make([]model.Pair, 0, 128)
	for i := 0; i < 256; i += 2 {
		pairs = append(pairs, model.Pair{A: i, B: i + 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.ExecuteRound(pairs)
	}
}

// TestBoundExecutorPerSessionPools is the regression test for the pool
// rebinding bug: creating a second session over the same network (with a
// different pool) must not re-route the first session's rounds. Each
// Bound executor pins its own pool, so rounds land on the pool the
// session was created with.
func TestBoundExecutorPerSessionPools(t *testing.T) {
	labels := make([]int, 32)
	for i := range labels {
		labels[i] = i % 2
	}
	nw := NewNetwork(GroupKeys(labels, 11))
	poolA := rt.NewPool(3)
	defer poolA.Close()
	poolB := rt.NewPool(3)
	defer poolB.Close()

	sessA := model.NewSession(nw, model.ER, model.WithExecutor(nw.Bound(poolA)))
	// Creating a second bound executor (the NewAgentSession path) must
	// not rebind A's rounds.
	sessB := model.NewSession(nw, model.ER, model.WithExecutor(nw.Bound(poolB)))

	round := make([]model.Pair, 0, 16)
	for i := 0; i < 32; i += 2 {
		round = append(round, model.Pair{A: i, B: i + 1})
	}
	if _, err := sessA.Round(round); err != nil {
		t.Fatal(err)
	}
	if jobs := poolA.Stats().Jobs; jobs == 0 {
		t.Errorf("session A's round did not dispatch on its own pool")
	}
	if jobs := poolB.Stats().Jobs; jobs != 0 {
		t.Errorf("session A's round leaked onto session B's pool (%d jobs)", jobs)
	}
	if _, err := sessB.Round(round); err != nil {
		t.Fatal(err)
	}
	if jobs := poolB.Stats().Jobs; jobs == 0 {
		t.Errorf("session B's round did not dispatch on its own pool")
	}
}

// TestBatchOracleView: the batch view answers whole chunks with a block
// of real protocol sessions, matching per-pair handshakes bit for bit
// — including CR chunks that repeat an agent, which ExecuteRound's ER
// check would reject.
func TestBatchOracleView(t *testing.T) {
	labels := []int{0, 1, 0, 2, 1, 0}
	nw := NewNetwork(GroupKeys(labels, 21))
	b := nw.Batch(nil)
	pairs := []model.Pair{
		{A: 0, B: 2}, {A: 0, B: 5}, {A: 1, B: 4}, // agent 0 repeats: CR-legal
		{A: 0, B: 3}, {A: 1, B: 2},
	}
	out := make([]bool, len(pairs))
	before := nw.Sessions()
	b.SameBatch(pairs, out)
	if got := nw.Sessions() - before; got != int64(len(pairs)) {
		t.Fatalf("batch chunk ran %d sessions, want %d", got, len(pairs))
	}
	for i, p := range pairs {
		if want := labels[p.A] == labels[p.B]; out[i] != want {
			t.Errorf("pair %d (%d,%d) = %v, want %v", i, p.A, p.B, out[i], want)
		}
	}
}

// TestBatchOracleViewFullSort: a session over the batch view sorts the
// roster with the same accounting as a session over the plain network.
func TestBatchOracleViewFullSort(t *testing.T) {
	labels := make([]int, 64)
	rng := rand.New(rand.NewSource(5))
	for i := range labels {
		labels[i] = rng.Intn(4)
	}
	pool := rt.NewPool(4)
	defer pool.Close()

	nwPlain := NewNetwork(GroupKeys(labels, 9))
	sPlain := model.NewSession(nwPlain, model.CR, model.Workers(4), model.WithPool(pool))
	resPlain, err := core.SortCRUnknownK(sPlain)
	if err != nil {
		t.Fatal(err)
	}

	nwBatch := NewNetwork(GroupKeys(labels, 9))
	sBatch := model.NewSession(nwBatch.Batch(pool), model.CR, model.Workers(4), model.WithPool(pool))
	resBatch, err := core.SortCRUnknownK(sBatch)
	if err != nil {
		t.Fatal(err)
	}

	if !core.SameClassification(resBatch.Labels(len(labels)), resPlain.Labels(len(labels))) {
		t.Fatal("batch view sorted differently")
	}
	if resBatch.Stats != resPlain.Stats {
		t.Errorf("stats diverge: batch %+v, plain %+v", resBatch.Stats, resPlain.Stats)
	}
	if nwBatch.Sessions() != nwPlain.Sessions() {
		t.Errorf("protocol sessions diverge: batch %d, plain %d", nwBatch.Sessions(), nwPlain.Sessions())
	}
}
