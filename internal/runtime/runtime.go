// Package runtime is the persistent parallel execution layer behind
// comparison rounds: a fixed set of long-lived worker goroutines that
// execute chunked index ranges of a round's work, replacing the
// goroutine-per-round spawning the model layer started with.
//
// A Pool never allocates in steady state: jobs are recycled through a
// sync.Pool, work is announced over a fixed channel, and chunks are
// claimed with an atomic cursor, so executing a physical round costs no
// goroutine creation and no garbage. Results are always written by index
// into caller-owned storage, so the output of a parallel run is
// bit-identical to a serial one regardless of how chunks land on
// workers — the determinism guarantee the golden tests pin.
//
// The submitting goroutine always participates in its own job, so a Pool
// makes progress even when every worker is busy with other submitters
// (the sharded service shares one pool across all shard goroutines) and
// a nested Run from inside a chunk cannot deadlock.
package runtime

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Runner executes one chunk of a job: the half-open index range [lo, hi)
// of the work the Run call described. Implementations must be safe for
// concurrent invocation on disjoint ranges and must write any results by
// index, never by append, so parallel execution stays deterministic.
type Runner interface {
	RunChunk(lo, hi int)
}

// Stats is a snapshot of a pool's lifetime counters.
type Stats struct {
	// Workers is the pool's parallel width (goroutines executing chunks,
	// counting the submitter's own participation).
	Workers int
	// Jobs counts parallel jobs dispatched through the worker machinery.
	Jobs int64
	// Chunks counts chunks executed across all parallel jobs.
	Chunks int64
	// Inline counts runs executed serially on the submitting goroutine
	// (width 1, single-chunk jobs, or a closed pool).
	Inline int64
}

// job is one parallel run in flight. Workers claim chunks with the next
// cursor and the last finisher signals done; refs delays recycling until
// every goroutine holding the pointer (announcements included) lets go.
type job struct {
	runner Runner
	n      int
	chunk  int
	next   atomic.Int64
	live   atomic.Int64
	refs   atomic.Int64
	done   chan struct{} // buffered(1): one send per job, drained by the submitter
}

// Pool is a persistent worker pool. Create one with NewPool, or use the
// process-wide Shared pool. A Pool is safe for concurrent Run calls from
// many goroutines; Close may only be called once no Run is in flight.
type Pool struct {
	size int
	jobs chan *job

	jobPool sync.Pool
	wg      sync.WaitGroup
	closed  atomic.Bool

	jobsRun   atomic.Int64
	chunksRun atomic.Int64
	inlineRun atomic.Int64
}

// NewPool starts a pool of the given parallel width: size-1 persistent
// worker goroutines plus the submitting goroutine's own participation.
// size <= 0 means runtime.GOMAXPROCS(0). Close the pool to stop the
// workers; the process-wide Shared pool is never closed.
func NewPool(size int) *Pool {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		size: size,
		jobs: make(chan *job, size),
	}
	p.jobPool.New = func() any { return &job{done: make(chan struct{}, 1)} }
	p.wg.Add(size - 1)
	for i := 0; i < size-1; i++ {
		go p.worker()
	}
	return p
}

// shared is the lazily created process-wide pool used by sessions that
// were not given an explicit pool. It is sized to GOMAXPROCS at first
// use and lives for the rest of the process.
var (
	sharedOnce sync.Once
	shared     *Pool
)

// Shared returns the process-wide pool, creating it on first use.
func Shared() *Pool {
	sharedOnce.Do(func() { shared = NewPool(0) })
	return shared
}

// Size returns the pool's parallel width.
func (p *Pool) Size() int { return p.size }

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Workers: p.size,
		Jobs:    p.jobsRun.Load(),
		Chunks:  p.chunksRun.Load(),
		Inline:  p.inlineRun.Load(),
	}
}

// Close stops the worker goroutines and waits for them to exit. It is
// idempotent. Runs issued after Close execute inline on the submitting
// goroutine; Close must not race a Run still in flight.
func (p *Pool) Close() {
	if !p.closed.CompareAndSwap(false, true) {
		return
	}
	close(p.jobs)
	p.wg.Wait()
}

// Run executes r over [0, n) with at most par chunks, blocking until
// every chunk has finished. The range is split into ceil(n/ceil(n/par))
// contiguous chunks claimed by the pool's workers and the calling
// goroutine; par <= 1 (or n < 2, or a closed pool) runs the whole range
// inline. Run allocates nothing in steady state.
//
//ecsort:hotpath
func (p *Pool) Run(n, par int, r Runner) {
	if n <= 0 {
		return
	}
	if par > n {
		par = n
	}
	if par <= 1 || p.size <= 1 || p.closed.Load() {
		p.inlineRun.Add(1)
		r.RunChunk(0, n)
		return
	}
	// 2 <= par <= n, so chunk < n and nchunks >= 2: parallel dispatch
	// always has at least one chunk to hand out.
	chunk := (n + par - 1) / par
	nchunks := (n + chunk - 1) / chunk
	j := p.jobPool.Get().(*job)
	j.runner, j.n, j.chunk = r, n, chunk
	j.next.Store(0)
	j.live.Store(int64(nchunks))
	j.refs.Store(1) // the submitter's own hold
	// Announce to at most worker-count peers; the sends are non-blocking
	// so a saturated pool just leaves more chunks to the submitter.
	want := nchunks - 1
	if want > p.size-1 {
		want = p.size - 1
	}
	for sent := 0; sent < want; sent++ {
		j.refs.Add(1)
		select {
		case p.jobs <- j:
			continue
		default:
			j.refs.Add(-1)
		}
		break
	}
	p.jobsRun.Add(1)
	p.work(j)
	<-j.done
	p.release(j)
}

// NumChunks reports how many chunks Run splits n units of work into at
// parallel width par — equivalently, the number of RunChunk calls one
// Run(n, par, r) issues on a pool wide enough to go parallel (a
// single-worker or closed pool always runs 1 inline chunk). This is the
// chunk-granularity contract batch-capable oracles amortize against:
// a model.BatchOracle is invoked NumChunks(len(pairs), workers) times
// per physical round instead of len(pairs) times.
func NumChunks(n, par int) int {
	if n <= 0 {
		return 0
	}
	if par > n {
		par = n
	}
	if par <= 1 {
		return 1
	}
	chunk := (n + par - 1) / par
	return (n + chunk - 1) / chunk
}

// worker is the loop of one persistent goroutine.
func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		p.work(j)
		p.release(j)
	}
}

// work claims and executes chunks of j until none remain. The goroutine
// that finishes the last live chunk signals the job's done channel.
//
//ecsort:hotpath
func (p *Pool) work(j *job) {
	for {
		c := j.next.Add(1) - 1
		lo := int(c) * j.chunk
		if lo >= j.n {
			return
		}
		hi := lo + j.chunk
		if hi > j.n {
			hi = j.n
		}
		j.runner.RunChunk(lo, hi)
		p.chunksRun.Add(1)
		if j.live.Add(-1) == 0 {
			j.done <- struct{}{}
		}
	}
}

// release drops one hold on j and recycles it once nobody — submitter or
// announced worker, however late it dequeues — references it anymore.
//
//ecsort:hotpath
func (p *Pool) release(j *job) {
	if j.refs.Add(-1) == 0 {
		j.runner = nil
		p.jobPool.Put(j)
	}
}
