package runtime

import (
	"sync"
	"testing"
)

// squareRunner writes f(i) by index — the write-by-index contract every
// session round obeys.
type squareRunner struct {
	out []int
}

func (r *squareRunner) RunChunk(lo, hi int) {
	for i := lo; i < hi; i++ {
		r.out[i] = i * i
	}
}

func checkSquares(t *testing.T, out []int) {
	t.Helper()
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestRunMatchesSerial(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
		for _, par := range []int{1, 2, 3, 4, 9, 1000} {
			out := make([]int, n)
			p.Run(n, par, &squareRunner{out: out})
			checkSquares(t, out)
		}
	}
}

func TestConcurrentSubmitters(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	const submitters = 8
	const n = 512
	var wg sync.WaitGroup
	outs := make([][]int, submitters)
	for s := 0; s < submitters; s++ {
		outs[s] = make([]int, n)
		wg.Add(1)
		go func(out []int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for i := range out {
					out[i] = -1
				}
				p.Run(n, 3, &squareRunner{out: out})
			}
		}(outs[s])
	}
	wg.Wait()
	for _, out := range outs {
		checkSquares(t, out)
	}
}

func TestInlineFastPaths(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	out := make([]int, 100)
	before := p.Stats()
	p.Run(len(out), 1, &squareRunner{out: out}) // par 1 → inline
	p.Run(1, 8, &squareRunner{out: out[:1]})    // single element → inline
	p.Run(0, 8, &squareRunner{out: nil})        // empty → free
	st := p.Stats()
	if got := st.Inline - before.Inline; got != 2 {
		t.Errorf("inline runs = %d, want 2", got)
	}
	if st.Jobs != before.Jobs {
		t.Errorf("inline runs dispatched %d pool jobs", st.Jobs-before.Jobs)
	}
	checkSquares(t, out)
}

func TestStatsCountJobsAndChunks(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	out := make([]int, 400)
	for i := 0; i < 5; i++ {
		p.Run(len(out), 4, &squareRunner{out: out})
	}
	st := p.Stats()
	if st.Workers != 4 {
		t.Errorf("Workers = %d, want 4", st.Workers)
	}
	if st.Jobs != 5 {
		t.Errorf("Jobs = %d, want 5", st.Jobs)
	}
	if st.Chunks != 20 { // 4 chunks per job
		t.Errorf("Chunks = %d, want 20", st.Chunks)
	}
}

func TestSizeDefaultsToGOMAXPROCS(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Size() < 1 {
		t.Errorf("Size = %d, want >= 1", p.Size())
	}
}

func TestCloseIsIdempotentAndRunsInline(t *testing.T) {
	p := NewPool(4)
	p.Close()
	p.Close() // second close must not panic
	out := make([]int, 64)
	p.Run(len(out), 4, &squareRunner{out: out}) // closed pool → inline
	checkSquares(t, out)
	if st := p.Stats(); st.Inline != 1 {
		t.Errorf("Inline = %d, want 1", st.Inline)
	}
}

func TestSharedIsSingleton(t *testing.T) {
	if Shared() != Shared() {
		t.Fatal("Shared() returned different pools")
	}
	if Shared().Size() < 1 {
		t.Fatalf("shared pool width %d", Shared().Size())
	}
}

// nestedRunner resubmits to the same pool from inside a chunk; the
// submitter-participates design must not deadlock even when every worker
// is occupied by the outer job.
type nestedRunner struct {
	pool *Pool
	out  []int
}

func (r *nestedRunner) RunChunk(lo, hi int) {
	for i := lo; i < hi; i++ {
		sub := make([]int, 8)
		r.pool.Run(len(sub), 2, &squareRunner{out: sub})
		r.out[i] = sub[4] // 16
	}
}

func TestNestedRunDoesNotDeadlock(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	out := make([]int, 32)
	p.Run(len(out), 2, &nestedRunner{pool: p, out: out})
	for i, v := range out {
		if v != 16 {
			t.Fatalf("out[%d] = %d, want 16", i, v)
		}
	}
}
