package model

import (
	"testing"
)

func TestRecorderTranscript(t *testing.T) {
	r := NewRecorder(parityOracle{n: 6})
	s := NewSession(r, ER, Workers(1))
	if _, err := s.Round([]Pair{{0, 2}, {1, 3}}); err != nil {
		t.Fatal(err)
	}
	s.Compare(0, 1)
	if r.Tests() != 3 {
		t.Fatalf("Tests = %d, want 3", r.Tests())
	}
	if !r.Log[0].Answer || !r.Log[1].Answer || r.Log[2].Answer {
		t.Fatalf("log answers wrong: %+v", r.Log)
	}
	if r.DistinctPairs() != 3 {
		t.Fatalf("DistinctPairs = %d", r.DistinctPairs())
	}
	if len(r.RepeatedPairs()) != 0 {
		t.Fatalf("unexpected repeats: %v", r.RepeatedPairs())
	}
}

func TestRecorderDetectsRepeats(t *testing.T) {
	r := NewRecorder(parityOracle{n: 4})
	s := NewSession(r, CR, Workers(1))
	if _, err := s.Round([]Pair{{0, 1}, {1, 0}, {0, 1}}); err != nil {
		t.Fatal(err)
	}
	reps := r.RepeatedPairs()
	if reps[[2]int{0, 1}] != 3 {
		t.Fatalf("repeats = %v, want {0 1}:3", reps)
	}
	if r.DistinctPairs() != 1 {
		t.Fatalf("DistinctPairs = %d, want 1", r.DistinctPairs())
	}
}
