package model

import (
	"math/rand"
	"sync"
	"testing"

	rt "ecsort/internal/runtime"
)

// BenchmarkExecute is the tracked-baseline benchmark of physical-round
// execution (see BENCH_baseline.json and the CI bench smoke): the same
// one-round workload driven through the persistent runtime pool versus
// the spawn-per-round path it replaced (fresh goroutines, a WaitGroup,
// and a result slice every round, reproduced here as a custom executor).
// Both variants pin the parallel width to 4 so allocs/op is independent
// of the runner's core count; run with -cpu 1,4 to see the pool's
// multi-core win on real hardware.

// mixOracle burns a fixed amount of CPU per test — a stand-in for a real
// equivalence test (certificate comparison, HMAC exchange) that gives
// parallel execution something to chew on.
type mixOracle struct {
	labels []int
}

func (o mixOracle) N() int { return len(o.labels) }

func (o mixOracle) Same(i, j int) bool {
	h := uint64(i)*0x9e3779b97f4a7c15 ^ uint64(j)*0xbf58476d1ce4e5b9
	for r := 0; r < 32; r++ {
		h ^= h >> 27
		h *= 0x94d049bb133111eb
	}
	return o.labels[i] == o.labels[j] && h != 0
}

// spawnExecutor reproduces the pre-runtime execute path for comparison:
// per-round goroutines over chunked ranges.
type spawnExecutor struct {
	oracle  Oracle
	workers int
}

func (e spawnExecutor) ExecuteRound(pairs []Pair) []bool {
	out := make([]bool, len(pairs))
	w := e.workers
	if w > len(pairs) {
		w = len(pairs)
	}
	var wg sync.WaitGroup
	chunk := (len(pairs) + w - 1) / w
	for start := 0; start < len(pairs); start += chunk {
		end := min(start+chunk, len(pairs))
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = e.oracle.Same(pairs[i].A, pairs[i].B)
			}
		}(start, end)
	}
	wg.Wait()
	return out
}

func BenchmarkExecute(b *testing.B) {
	const n = 4096
	rng := rand.New(rand.NewSource(42))
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(8)
	}
	o := mixOracle{labels: labels}
	pairs := make([]Pair, n)
	for i := range pairs {
		a, c := rng.Intn(n), rng.Intn(n)
		for a == c {
			c = rng.Intn(n)
		}
		pairs[i] = Pair{a, c}
	}
	buf := make([]bool, len(pairs))

	bench := func(b *testing.B, s *Session) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.RoundBuf(pairs, buf); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("pool", func(b *testing.B) {
		pool := rt.NewPool(4)
		defer pool.Close()
		bench(b, NewSession(o, CR, Workers(4), WithPool(pool), Processors(len(pairs))))
	})
	b.Run("spawn", func(b *testing.B) {
		bench(b, NewSession(o, CR,
			WithExecutor(spawnExecutor{oracle: o, workers: 4}), Processors(len(pairs))))
	})
}

// batchMixOracle is mixOracle with the whole-chunk answering path: the
// same per-pair work, minus one oracle invocation per pair — chunks
// cost runtime.NumChunks(len(pairs), workers) calls per round.
type batchMixOracle struct{ mixOracle }

func (o batchMixOracle) SameBatch(pairs []Pair, out []bool) {
	for i, p := range pairs {
		out[i] = o.Same(p.A, p.B)
	}
}

// BenchmarkRoundBatch is the tracked-baseline benchmark of the batch
// round path (see BENCH_baseline.json and the CI bench smoke): the
// identical one-round workload answered whole-chunk (batch) versus
// pair-at-a-time (perpair), both through the persistent pool at a
// pinned width of 4. The stats, answers, and chunking are bit-identical
// by construction; the delta is dispatch overhead — per-pair interface
// calls versus one SameBatch per chunk.
func BenchmarkRoundBatch(b *testing.B) {
	const n = 4096
	rng := rand.New(rand.NewSource(42))
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(8)
	}
	o := mixOracle{labels: labels}
	pairs := make([]Pair, n)
	for i := range pairs {
		a, c := rng.Intn(n), rng.Intn(n)
		for a == c {
			c = rng.Intn(n)
		}
		pairs[i] = Pair{a, c}
	}
	buf := make([]bool, len(pairs))

	bench := func(b *testing.B, s *Session) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.RoundBuf(pairs, buf); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("batch", func(b *testing.B) {
		pool := rt.NewPool(4)
		defer pool.Close()
		bench(b, NewSession(batchMixOracle{o}, CR, Workers(4), WithPool(pool), Processors(len(pairs))))
	})
	b.Run("perpair", func(b *testing.B) {
		pool := rt.NewPool(4)
		defer pool.Close()
		bench(b, NewSession(o, CR, Workers(4), WithPool(pool), Processors(len(pairs))))
	})
}
