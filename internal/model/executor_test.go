package model

import (
	"errors"
	"testing"
)

// flipExecutor answers the opposite of the oracle, proving the executor
// path is actually taken.
type flipExecutor struct{ o Oracle }

func (f flipExecutor) ExecuteRound(pairs []Pair) []bool {
	out := make([]bool, len(pairs))
	for i, p := range pairs {
		out[i] = !f.o.Same(p.A, p.B)
	}
	return out
}

func TestWithExecutorRoutesRounds(t *testing.T) {
	o := parityOracle{n: 4}
	s := NewSession(o, CR, WithExecutor(flipExecutor{o}))
	res, err := s.Round([]Pair{{0, 2}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0] || !res[1] {
		t.Fatalf("executor not consulted: %v", res)
	}
	// Compare bypasses the executor by design.
	if !s.Compare(0, 2) {
		t.Fatal("Compare should use the oracle directly")
	}
}

func TestExecutorRespectsBudgetSplits(t *testing.T) {
	o := parityOracle{n: 16}
	calls := 0
	s := NewSession(o, ER, Processors(2), WithExecutor(executorFunc(func(pairs []Pair) []bool {
		calls++
		if len(pairs) > 2 {
			t.Fatalf("executor saw %d pairs, budget is 2", len(pairs))
		}
		out := make([]bool, len(pairs))
		for i, p := range pairs {
			out[i] = o.Same(p.A, p.B)
		}
		return out
	})))
	if _, err := s.Round([]Pair{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}}); err != nil {
		t.Fatal(err)
	}
	if calls != 3 { // ceil(5/2)
		t.Fatalf("executor calls = %d, want 3", calls)
	}
}

type executorFunc func(pairs []Pair) []bool

func (f executorFunc) ExecuteRound(pairs []Pair) []bool { return f(pairs) }

// TestExecutorResultLengthValidated: an executor that returns the wrong
// number of answers must fail the round loudly instead of silently
// truncating the tail to false.
func TestExecutorResultLengthValidated(t *testing.T) {
	o := parityOracle{n: 8}
	for _, tc := range []struct {
		name string
		skew int
	}{{"short", -1}, {"long", +1}} {
		s := NewSession(o, ER, WithExecutor(executorFunc(func(pairs []Pair) []bool {
			return make([]bool, len(pairs)+tc.skew)
		})))
		_, err := s.Round([]Pair{{0, 1}, {2, 3}})
		if !errors.Is(err, ErrExecutorResults) {
			t.Errorf("%s executor: err = %v, want ErrExecutorResults", tc.name, err)
		}
		// The failed physical round must not be charged.
		if st := s.Stats(); st.Comparisons != 0 || st.Rounds != 0 {
			t.Errorf("%s executor: stats = %+v, want zero", tc.name, st)
		}
	}
}

func TestRoundLog(t *testing.T) {
	o := parityOracle{n: 8}
	s := NewSession(o, ER, Processors(2), WithRoundLog())
	if _, err := s.Round([]Pair{{0, 1}, {2, 3}, {4, 5}}); err != nil {
		t.Fatal(err)
	}
	s.Compare(0, 2)
	log := s.RoundLog()
	want := []int{2, 1, 1}
	if len(log) != len(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestRoundLogOffByDefault(t *testing.T) {
	s := NewSession(parityOracle{n: 4}, ER)
	if _, err := s.Round([]Pair{{0, 1}}); err != nil {
		t.Fatal(err)
	}
	if len(s.RoundLog()) != 0 {
		t.Fatal("round log recorded without WithRoundLog")
	}
}
