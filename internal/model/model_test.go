package model

import (
	"errors"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"

	rt "ecsort/internal/runtime"
)

// parityOracle puts even and odd elements in two classes.
type parityOracle struct{ n int }

func (o parityOracle) N() int             { return o.n }
func (o parityOracle) Same(i, j int) bool { return i%2 == j%2 }

// countingOracle records how many times Same is invoked.
type countingOracle struct {
	n     int
	calls int64
}

func (o *countingOracle) N() int { return o.n }
func (o *countingOracle) Same(i, j int) bool {
	atomic.AddInt64(&o.calls, 1)
	return false
}

func TestRoundAnswers(t *testing.T) {
	s := NewSession(parityOracle{n: 10}, CR)
	res, err := s.Round([]Pair{{0, 2}, {0, 1}, {3, 5}, {4, 7}})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true, false}
	for i := range want {
		if res[i] != want[i] {
			t.Fatalf("res = %v, want %v", res, want)
		}
	}
}

func TestEmptyRoundIsFree(t *testing.T) {
	s := NewSession(parityOracle{n: 4}, ER)
	if _, err := s.Round(nil); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Rounds != 0 || st.Comparisons != 0 {
		t.Fatalf("empty round charged cost: %+v", st)
	}
}

func TestERConflictDetected(t *testing.T) {
	s := NewSession(parityOracle{n: 10}, ER)
	_, err := s.Round([]Pair{{0, 1}, {1, 2}})
	if !errors.Is(err, ErrERConflict) {
		t.Fatalf("err = %v, want ErrERConflict", err)
	}
}

func TestCRAllowsReuse(t *testing.T) {
	s := NewSession(parityOracle{n: 10}, CR)
	if _, err := s.Round([]Pair{{0, 1}, {1, 2}, {0, 2}}); err != nil {
		t.Fatal(err)
	}
}

func TestValidationErrors(t *testing.T) {
	s := NewSession(parityOracle{n: 4}, CR)
	if _, err := s.Round([]Pair{{0, 4}}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	if _, err := s.Round([]Pair{{-1, 0}}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	if _, err := s.Round([]Pair{{2, 2}}); !errors.Is(err, ErrSelfCompare) {
		t.Fatalf("err = %v, want ErrSelfCompare", err)
	}
}

func TestFailedRoundChargesNothing(t *testing.T) {
	s := NewSession(parityOracle{n: 4}, ER)
	s.Round([]Pair{{0, 1}, {1, 2}}) //nolint:errcheck // intentionally invalid
	if st := s.Stats(); st.Rounds != 0 || st.Comparisons != 0 {
		t.Fatalf("invalid round charged cost: %+v", st)
	}
}

func TestProcessorBudgetSplitsRounds(t *testing.T) {
	o := &countingOracle{n: 100}
	s := NewSession(o, ER, Processors(3))
	pairs := []Pair{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}, {10, 11}, {12, 13}}
	if _, err := s.Round(pairs); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Rounds != 3 { // ceil(7/3)
		t.Errorf("Rounds = %d, want 3", st.Rounds)
	}
	if st.Comparisons != 7 {
		t.Errorf("Comparisons = %d, want 7", st.Comparisons)
	}
	if st.MaxRoundSize != 3 {
		t.Errorf("MaxRoundSize = %d, want 3", st.MaxRoundSize)
	}
	if o.calls != 7 {
		t.Errorf("oracle calls = %d, want 7", o.calls)
	}
}

func TestDefaultBudgetIsN(t *testing.T) {
	o := &countingOracle{n: 8}
	s := NewSession(o, CR)
	pairs := make([]Pair, 0, 12)
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8 && len(pairs) < 12; j++ {
			pairs = append(pairs, Pair{i, j})
		}
	}
	if _, err := s.Round(pairs); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Rounds != 2 { // 12 comparisons, budget 8
		t.Errorf("Rounds = %d, want 2", st.Rounds)
	}
}

func TestCompareCharges(t *testing.T) {
	s := NewSession(parityOracle{n: 6}, ER)
	if !s.Compare(0, 2) {
		t.Error("Compare(0,2) = false, want true")
	}
	if s.Compare(0, 1) {
		t.Error("Compare(0,1) = true, want false")
	}
	st := s.Stats()
	if st.Comparisons != 2 || st.Rounds != 2 {
		t.Errorf("stats = %+v, want 2 comparisons in 2 rounds", st)
	}
}

func TestComparePanics(t *testing.T) {
	s := NewSession(parityOracle{n: 3}, ER)
	for _, tc := range []struct{ i, j int }{{0, 3}, {-1, 1}, {2, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Compare(%d,%d) did not panic", tc.i, tc.j)
				}
			}()
			s.Compare(tc.i, tc.j)
		}()
	}
}

// TestParallelExecutionMatchesSequential checks that worker parallelism
// never changes answers or their order.
func TestParallelExecutionMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16 + rng.Intn(64)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(4)
		}
		oracle := labelOracle{labels}
		var pairs []Pair
		for len(pairs) < 200 {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				pairs = append(pairs, Pair{a, b})
			}
		}
		seq := NewSession(oracle, CR, Workers(1), Processors(1<<20))
		par := NewSession(oracle, CR, Workers(8), Processors(1<<20))
		r1, err1 := seq.Round(pairs)
		r2, err2 := par.Round(pairs)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range r1 {
			if r1[i] != r2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

type labelOracle struct{ labels []int }

func (o labelOracle) N() int             { return len(o.labels) }
func (o labelOracle) Same(i, j int) bool { return o.labels[i] == o.labels[j] }

// TestWorkersZeroMeansGOMAXPROCS: Workers(0) is the documented explicit
// spelling of the default.
func TestWorkersZeroMeansGOMAXPROCS(t *testing.T) {
	s := NewSession(parityOracle{n: 4}, CR, Workers(1), Workers(0))
	if want := runtime.GOMAXPROCS(0); s.workers != want {
		t.Errorf("Workers(0) set width %d, want GOMAXPROCS %d", s.workers, want)
	}
}

// TestWorkersNegativePanics: a negative width is a caller bug and must
// fail loudly with ErrBadWorkers instead of being silently ignored.
func TestWorkersNegativePanics(t *testing.T) {
	defer func() {
		r := recover()
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrBadWorkers) {
			t.Errorf("Workers(-3) panicked with %v, want ErrBadWorkers", r)
		}
	}()
	NewSession(parityOracle{n: 4}, CR, Workers(-3))
	t.Error("Workers(-3) did not panic")
}

// TestWithPoolMatchesDefault: an explicit pool changes where rounds run,
// never what they answer.
func TestWithPoolMatchesDefault(t *testing.T) {
	pool := rt.NewPool(3)
	defer pool.Close()
	labels := make([]int, 64)
	for i := range labels {
		labels[i] = i % 5
	}
	o := labelOracle{labels}
	var pairs []Pair
	for i := 0; i+1 < len(labels); i++ {
		pairs = append(pairs, Pair{i, i + 1})
	}
	def := NewSession(o, CR, Workers(8))
	pooled := NewSession(o, CR, Workers(8), WithPool(pool))
	want, err1 := def.Round(pairs)
	got, err2 := pooled.Round(pairs)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pooled answers diverge at %d", i)
		}
	}
	if pool.Stats().Jobs == 0 {
		t.Error("explicit pool executed no jobs")
	}
	if def.Stats() != pooled.Stats() {
		t.Errorf("stats diverge: %+v vs %+v", def.Stats(), pooled.Stats())
	}
}

func TestModeString(t *testing.T) {
	if ER.String() != "ER" || CR.String() != "CR" {
		t.Errorf("Mode strings wrong: %v %v", ER, CR)
	}
	if Mode(7).String() != "Mode(7)" {
		t.Errorf("unknown mode string: %v", Mode(7))
	}
}

// TestERStampReset ensures an element used in round r can be used again in
// round r+1 (the conflict check is per-round).
func TestERStampReset(t *testing.T) {
	s := NewSession(parityOracle{n: 4}, ER)
	if _, err := s.Round([]Pair{{0, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Round([]Pair{{0, 2}}); err != nil {
		t.Fatalf("element reuse across rounds rejected: %v", err)
	}
}

// TestRoundBufReuse: with a big enough buffer the results land in the
// caller's storage and the round allocates nothing for them; answers
// match Round's.
func TestRoundBufReuse(t *testing.T) {
	s := NewSession(parityOracle{n: 8}, CR, Workers(1))
	pairs := []Pair{{0, 2}, {0, 1}, {3, 5}, {4, 7}}
	want, err := s.Round(pairs)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]bool, 0, 16)
	got, err := s.RoundBuf(pairs, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("RoundBuf did not reuse the caller's buffer")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RoundBuf answers %v, Round answers %v", got, want)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := s.RoundBuf(pairs, buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("RoundBuf with capacity allocates %v per run", allocs)
	}
	// A too-small buffer falls back to allocating, like Round.
	small := make([]bool, 0, 1)
	got, err = s.RoundBuf(pairs, small)
	if err != nil || len(got) != len(pairs) {
		t.Fatalf("small-buffer RoundBuf: %v %v", got, err)
	}
}

// TestParallelExecuteAllocs guards the pool execute path's zero-alloc
// steady state at Workers > 1. The benchcmp gate cannot (a 0-alloc
// baseline disables it) and TestRoundBufReuse only covers the serial
// Workers(1) path, so this is the deterministic line for the headline
// no-goroutines-no-garbage claim of the persistent runtime.
func TestParallelExecuteAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	pool := rt.NewPool(4)
	defer pool.Close()
	labels := make([]int, 256)
	for i := range labels {
		labels[i] = i % 7
	}
	s := NewSession(labelOracle{labels}, CR, Workers(4), WithPool(pool), Processors(1<<20))
	pairs := make([]Pair, 512)
	for i := range pairs {
		pairs[i] = Pair{i % 256, (i*3 + 1) % 256}
	}
	buf := make([]bool, len(pairs))
	if _, err := s.RoundBuf(pairs, buf); err != nil { // warm the job pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := s.RoundBuf(pairs, buf); err != nil {
			t.Fatal(err)
		}
	})
	// Steady state is zero; allow only sync.Pool jitter from a GC that
	// lands mid-measurement.
	if allocs > 0.5 {
		t.Errorf("parallel RoundBuf steady state = %v allocs/op, want 0", allocs)
	}
}
