package model

import (
	"math/rand"
	"sync/atomic"
	"testing"

	rt "ecsort/internal/runtime"
)

// Tests for the batch round path: a session over a BatchOracle must
// produce bit-identical answers and stats to the per-pair path while
// invoking the oracle once per chunk — runtime.NumChunks(len(pairs),
// workers) times per physical round instead of len(pairs) times.

// countBatchOracle answers from labels and counts each answering path.
// Counters are atomic: parallel chunks call SameBatch concurrently.
type countBatchOracle struct {
	labels     []int
	sames      atomic.Int64
	batches    atomic.Int64
	batchPairs atomic.Int64
}

func (o *countBatchOracle) N() int { return len(o.labels) }

func (o *countBatchOracle) Same(i, j int) bool {
	o.sames.Add(1)
	return o.labels[i] == o.labels[j]
}

func (o *countBatchOracle) SameBatch(pairs []Pair, out []bool) {
	o.batches.Add(1)
	o.batchPairs.Add(int64(len(pairs)))
	for i, p := range pairs {
		out[i] = o.labels[p.A] == o.labels[p.B]
	}
}

// pairwiseOnly hides an oracle's batch capability: its method set is
// exactly N/Same, so NewSession never detects BatchOracle.
type pairwiseOnly struct{ o *countBatchOracle }

func (p pairwiseOnly) N() int             { return p.o.N() }
func (p pairwiseOnly) Same(i, j int) bool { return p.o.Same(i, j) }

func batchTestWorkload(n, k int, seed int64) ([]int, []Pair) {
	rng := rand.New(rand.NewSource(seed))
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(k)
	}
	pairs := make([]Pair, n)
	for i := range pairs {
		a, b := rng.Intn(n), rng.Intn(n)
		for a == b {
			b = rng.Intn(n)
		}
		pairs[i] = Pair{a, b}
	}
	return labels, pairs
}

func TestBatchRoundEquivalenceAndChunkCount(t *testing.T) {
	const n = 1000
	labels, pairs := batchTestWorkload(n, 5, 97)
	pool := rt.NewPool(4)
	defer pool.Close()

	for _, workers := range []int{1, 4} {
		// Per-pair reference run over the capability-hidden oracle.
		ref := &countBatchOracle{labels: labels}
		sRef := NewSession(pairwiseOnly{ref}, CR,
			Workers(workers), WithPool(pool), Processors(len(pairs)), WithRoundLog())
		want, err := sRef.Round(pairs)
		if err != nil {
			t.Fatalf("workers=%d: per-pair round: %v", workers, err)
		}
		if got := ref.batches.Load(); got != 0 {
			t.Fatalf("workers=%d: capability-hidden oracle got %d SameBatch calls", workers, got)
		}
		if got := ref.sames.Load(); got != int64(len(pairs)) {
			t.Fatalf("workers=%d: per-pair path made %d Same calls, want %d", workers, got, len(pairs))
		}

		// Batch run over the same labels.
		bo := &countBatchOracle{labels: labels}
		sBatch := NewSession(bo, CR,
			Workers(workers), WithPool(pool), Processors(len(pairs)), WithRoundLog())
		got, err := sBatch.Round(pairs)
		if err != nil {
			t.Fatalf("workers=%d: batch round: %v", workers, err)
		}

		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: answer %d = %v, per-pair path said %v", workers, i, got[i], want[i])
			}
		}
		if sBatch.Stats() != sRef.Stats() {
			t.Errorf("workers=%d: batch stats %+v, per-pair stats %+v", workers, sBatch.Stats(), sRef.Stats())
		}
		if bl, rl := sBatch.RoundLog(), sRef.RoundLog(); len(bl) != len(rl) || bl[0] != rl[0] {
			t.Errorf("workers=%d: batch round log %v, per-pair %v", workers, bl, rl)
		}

		if got := bo.sames.Load(); got != 0 {
			t.Errorf("workers=%d: batch path leaked %d per-pair Same calls", workers, got)
		}
		wantChunks := int64(rt.NumChunks(len(pairs), workers))
		if got := bo.batches.Load(); got != wantChunks {
			t.Errorf("workers=%d: %d SameBatch invocations, want NumChunks(%d,%d) = %d",
				workers, got, len(pairs), workers, wantChunks)
		}
		if got := bo.batchPairs.Load(); got != int64(len(pairs)) {
			t.Errorf("workers=%d: SameBatch chunks carried %d pairs, want %d", workers, got, len(pairs))
		}
		// The amortization claim: >= 5x fewer oracle invocations per round.
		if got := bo.batches.Load(); got*5 > int64(len(pairs)) {
			t.Errorf("workers=%d: %d batch invocations for %d pairs; want >= 5x amortization",
				workers, got, len(pairs))
		}
	}
}

func TestBatchRoundAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	labels, pairs := batchTestWorkload(2048, 6, 131)
	pool := rt.NewPool(4)
	defer pool.Close()
	bo := &countBatchOracle{labels: labels}
	s := NewSession(bo, CR, Workers(4), WithPool(pool), Processors(len(pairs)))
	buf := make([]bool, len(pairs))
	if _, err := s.RoundBuf(pairs, buf); err != nil { // warm the pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := s.RoundBuf(pairs, buf); err != nil {
			t.Fatal(err)
		}
	})
	// Steady state: the batch dispatch reuses the session's embedded
	// roundExec and the caller's buffer end to end.
	if allocs > 2 {
		t.Errorf("batch round steady state = %v allocs/op, want <= 2", allocs)
	}
}
