package model

// Recorder wraps an Oracle and keeps a transcript of every test, grouped
// by the order queries arrive. It exists for tests and post-hoc analysis:
// verifying ER-exclusivity externally, replaying runs, or counting
// repeated pairs (a well-formed algorithm never re-asks a settled pair).
//
// Recorder serializes queries with no mutex of its own — wrap it before
// handing it to a Session and run with Workers(1), or guard externally.
type Recorder struct {
	inner Oracle
	// Log is the transcript in arrival order.
	Log []RecordedTest
	// pairCount tracks how many times each unordered pair was asked.
	pairCount map[[2]int]int
}

// RecordedTest is one answered equivalence test.
type RecordedTest struct {
	A, B   int
	Answer bool
}

// NewRecorder wraps an oracle.
func NewRecorder(o Oracle) *Recorder {
	return &Recorder{inner: o, pairCount: make(map[[2]int]int)}
}

// N implements Oracle.
func (r *Recorder) N() int { return r.inner.N() }

// Same implements Oracle, recording the test.
func (r *Recorder) Same(i, j int) bool {
	ans := r.inner.Same(i, j)
	r.Log = append(r.Log, RecordedTest{A: i, B: j, Answer: ans})
	a, b := i, j
	if a > b {
		a, b = b, a
	}
	r.pairCount[[2]int{a, b}]++
	return ans
}

// Tests returns the number of tests recorded.
func (r *Recorder) Tests() int { return len(r.Log) }

// RepeatedPairs returns the unordered pairs that were asked more than
// once, with their ask counts. An algorithm that tracks its knowledge
// correctly never repeats a pair.
func (r *Recorder) RepeatedPairs() map[[2]int]int {
	out := make(map[[2]int]int)
	for p, c := range r.pairCount {
		if c > 1 {
			out[p] = c
		}
	}
	return out
}

// DistinctPairs returns how many distinct unordered pairs were tested.
func (r *Recorder) DistinctPairs() int { return len(r.pairCount) }
